#include <gtest/gtest.h>

#include <sstream>

#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace qcp2p::util {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row();
  t.cell("alpha").cell(std::uint64_t{42});
  t.add_row();
  t.cell("b").cell(1.5, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, PercentFormatting) {
  Table t({"p"});
  t.add_row();
  t.percent(0.12345, 1);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("12.3%"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row();
  t.cell("plain").cell("has,comma");
  t.add_row();
  t.cell("has\"quote").cell("x");
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CellWithoutRowStartsOne) {
  Table t({"x"});
  t.cell("auto");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, FormatPrecision) {
  EXPECT_EQ(Table::format(3.14159, 2), "3.14");
  EXPECT_EQ(Table::format(2.0, 0), "2");
}

TEST(Cli, ParsesFlagForms) {
  const char* argv[] = {"prog", "--alpha", "5", "pos1",
                        "--beta=x", "--flag", "--gamma"};
  const Cli cli(7, argv);
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_EQ(cli.get_int("alpha", 0), 5);
  EXPECT_EQ(cli.get("beta", ""), "x");
  EXPECT_TRUE(cli.get_bool("flag"));  // followed by a flag: bare boolean
  EXPECT_TRUE(cli.get_bool("gamma"));  // last arg: bare boolean
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, BareFlagConsumesFollowingValue) {
  // Documented behavior: "--flag value" binds value to the flag.
  const char* argv[] = {"prog", "--flag", "value"};
  const Cli cli(3, argv);
  EXPECT_EQ(cli.get("flag", ""), "value");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  const Cli cli(1, argv);
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get("missing", "d"), "d");
  EXPECT_EQ(cli.get_int("missing", -3), -3);
  EXPECT_EQ(cli.get_uint("missing", 9u), 9u);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("missing"));
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, NumericAndBoolConversions) {
  const char* argv[] = {"prog", "--n=12", "--f=0.25", "--off=false", "--no=0"};
  const Cli cli(5, argv);
  EXPECT_EQ(cli.get_uint("n", 0), 12u);
  EXPECT_DOUBLE_EQ(cli.get_double("f", 0.0), 0.25);
  EXPECT_FALSE(cli.get_bool("off", true));
  EXPECT_FALSE(cli.get_bool("no", true));
}

}  // namespace
}  // namespace qcp2p::util
