// WorldSnapshot round-trip coverage: a built world saved to disk,
// memory-mapped back, and wired into every registered engine must be
// observationally identical to the in-memory world it came from —
// bit-identical SearchOutcomes per engine, and bit-identical TrialRunner
// aggregates at threads 1/2/8 over the mapped views. Also pins the
// parallel PeerStore::finalize() (finalize(1) == finalize(2) ==
// finalize(8), byte for byte), view-store semantics (no build data, deep
// copy materializes), and load-time rejection of truncated or corrupt
// snapshots. Runs under TSan/ASan (ctest -L tsan/asan) for the sharded
// finalize passes.
#include "src/sim/world_snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/sim/engine_registry.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {
namespace {

constexpr std::size_t kNodes = 200;

/// Popular object 1 {1,2} on every 7th peer, one singleton, random
/// filler — the conformance-store shape.
void fill_store(PeerStore& store, std::size_t nodes) {
  util::Rng rng(12);
  for (NodeId v = 0; v < nodes; v += 7) store.add_object(v, 1, {1, 2});
  store.add_object(static_cast<NodeId>(123 % nodes), 2, {40, 41});
  for (std::uint64_t i = 0; i < 3 * nodes; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(nodes));
    std::vector<TermId> terms;
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      terms.push_back(static_cast<TermId>(rng.bounded(50)));
    }
    store.add_object(peer, 1000 + i, std::move(terms));
  }
}

PeerStore build_store(std::size_t nodes, std::size_t finalize_threads = 1) {
  PeerStore store(nodes);
  fill_store(store, nodes);
  store.finalize(finalize_threads);
  return store;
}

Graph build_graph(std::size_t nodes) {
  util::Rng rng(11);
  return overlay::random_regular(nodes, 6, rng);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// Engines wired to one (graph, store) pair — built identically for the
/// owned world and the mapped-view world so only the storage backing
/// differs.
struct EngineHarness {
  EngineHarness(const Graph& graph_in, const PeerStore& store_in)
      : graph(&graph_in), store(&store_in), dht(graph_in.num_nodes(), 7) {
    dht.publish_store(store_in);
    overlay::TwoTierParams tp;
    tp.num_nodes = graph_in.num_nodes();
    util::Rng topo_rng(13);
    topo = overlay::gnutella_two_tier(tp, topo_rng);
    overlay::GiaParams gp;
    gp.num_nodes = graph_in.num_nodes();
    util::Rng gia_rng(17);
    gia = std::make_unique<GiaNetwork>(overlay::gia_topology(gp, gia_rng),
                                       store_in);
    qrp = std::make_unique<QrpNetwork>(topo, store_in);
  }

  [[nodiscard]] EngineWorld world() const {
    EngineWorld w;
    w.graph = graph;
    w.store = store;
    w.dht = &dht;
    w.gia = gia.get();
    w.qrp = qrp.get();
    w.walk.walkers = 4;
    w.walk.max_steps = 32;
    w.gia_search.max_steps = 128;
    return w;
  }

  const Graph* graph;
  const PeerStore* store;
  ChordDht dht;
  overlay::TwoTierTopology topo{Graph(0), {}};
  std::unique_ptr<GiaNetwork> gia;
  std::unique_ptr<QrpNetwork> qrp;
};

std::vector<TermId> query_for(std::size_t t) {
  switch (t % 3) {
    case 0: return {1, 2};
    case 1: return {40, 41};
    default: return {static_cast<TermId>(t % 50)};
  }
}

void expect_same_outcome(const SearchOutcome& a, const SearchOutcome& b,
                         const char* engine, std::size_t trial) {
  EXPECT_EQ(a.hits, b.hits) << engine << " trial " << trial;
  EXPECT_EQ(a.messages, b.messages) << engine << " trial " << trial;
  EXPECT_EQ(a.per_hop, b.per_hop) << engine << " trial " << trial;
  EXPECT_EQ(a.peers_probed, b.peers_probed) << engine << " trial " << trial;
  EXPECT_EQ(a.success, b.success) << engine << " trial " << trial;
}

TEST(WorldSnapshot, RoundTripPreservesEveryArray) {
  const Graph graph = build_graph(kNodes);
  const PeerStore store = build_store(kNodes);
  const std::string path = temp_path("roundtrip.wsnap");
  save_world_snapshot(path, graph, store, /*seed=*/1234);

  const WorldSnapshot snap = WorldSnapshot::load(path);
  EXPECT_EQ(snap.meta().num_nodes, graph.num_nodes());
  EXPECT_EQ(snap.meta().num_edges, graph.num_edges());
  EXPECT_EQ(snap.meta().num_peers, store.num_peers());
  EXPECT_EQ(snap.meta().total_objects, store.total_objects());
  EXPECT_EQ(snap.meta().seed, 1234u);

  const Graph view = snap.graph_view();
  EXPECT_TRUE(view.frozen());
  EXPECT_TRUE(view.borrowed());
  const auto go = graph.csr_offsets();
  const auto vo = view.csr_offsets();
  ASSERT_TRUE(std::equal(go.begin(), go.end(), vo.begin(), vo.end()));
  const auto gn = graph.csr_neighbors();
  const auto vn = view.csr_neighbors();
  ASSERT_TRUE(std::equal(gn.begin(), gn.end(), vn.begin(), vn.end()));

  const PeerStore sview = snap.store_view();
  EXPECT_TRUE(sview.finalized());
  EXPECT_TRUE(sview.borrowed());
  const PeerStore::FlatLayout a = store.flat_layout();
  const PeerStore::FlatLayout b = sview.flat_layout();
  const auto eq = [](const auto& x, const auto& y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end());
  };
  EXPECT_EQ(a.num_peers, b.num_peers);
  EXPECT_TRUE(eq(a.peer_term_offsets, b.peer_term_offsets));
  EXPECT_TRUE(eq(a.peer_terms_flat, b.peer_terms_flat));
  EXPECT_TRUE(eq(a.obj_offsets, b.obj_offsets));
  EXPECT_TRUE(eq(a.obj_ids, b.obj_ids));
  EXPECT_TRUE(eq(a.obj_term_offsets, b.obj_term_offsets));
  EXPECT_TRUE(eq(a.obj_terms_flat, b.obj_terms_flat));
  EXPECT_TRUE(eq(a.index_terms, b.index_terms));
  EXPECT_TRUE(eq(a.index_offsets, b.index_offsets));
  EXPECT_TRUE(eq(a.postings, b.postings));
  EXPECT_TRUE(eq(a.obj_scores, b.obj_scores));
}

TEST(WorldSnapshot, EveryEngineIsBitIdenticalOnTheMappedWorld) {
  const Graph graph = build_graph(kNodes);
  const PeerStore store = build_store(kNodes);
  const std::string path = temp_path("engines.wsnap");
  save_world_snapshot(path, graph, store);
  const WorldSnapshot snap = WorldSnapshot::load(path);
  const Graph view_graph = snap.graph_view();
  const PeerStore view_store = snap.store_view();

  const EngineHarness mem(graph, store);
  const EngineHarness mapped(view_graph, view_store);

  for (const EngineEntry& entry : engine_registry()) {
    const auto mem_engine = entry.make(mem.world());
    const auto map_engine = entry.make(mapped.world());
    ASSERT_NE(mem_engine, nullptr) << entry.name;
    ASSERT_NE(map_engine, nullptr) << entry.name;
    for (std::size_t t = 0; t < 24; ++t) {
      // Keep the term vector alive: Query::terms is a span over it.
      const std::vector<TermId> terms = query_for(t);
      Query q;
      q.source = static_cast<NodeId>((t * 13) % kNodes);
      q.terms = terms;
      q.ttl = 4;
      q.trial = t;
      util::Rng rng_a(900 + t);
      util::Rng rng_b(900 + t);
      EngineContext ctx_a;
      ctx_a.rng = &rng_a;
      EngineContext ctx_b;
      ctx_b.rng = &rng_b;
      expect_same_outcome(mem_engine->search(q, ctx_a),
                          map_engine->search(q, ctx_b),
                          std::string(entry.name).c_str(), t);
    }
  }
}

TEST(WorldSnapshot, TrialRunnerAggregatesMatchAcrossThreadCounts) {
  const Graph graph = build_graph(kNodes);
  const PeerStore store = build_store(kNodes);
  const std::string path = temp_path("trials.wsnap");
  save_world_snapshot(path, graph, store);
  const WorldSnapshot snap = WorldSnapshot::load(path);
  const Graph view_graph = snap.graph_view();
  const PeerStore view_store = snap.store_view();
  const EngineHarness mem(graph, store);
  const EngineHarness mapped(view_graph, view_store);

  const auto sweep = [](const EngineHarness& h, std::size_t threads) {
    TrialRunner runner({threads, /*seed=*/77});
    return runner.run(
        96,
        [&h] { return make_engine("flood", h.world()); },
        [](std::size_t t, util::Rng& rng, auto& engine) {
          // Keep the term vector alive: Query::terms is a span over it.
          const std::vector<TermId> terms = query_for(t);
          Query q;
          q.source = static_cast<NodeId>(rng.bounded(kNodes));
          q.terms = terms;
          q.ttl = 4;
          q.trial = t;
          EngineContext ctx;
          ctx.rng = &rng;
          const SearchOutcome out = engine->search(q, ctx);
          TrialOutcome res;
          res.success = out.success;
          res.messages = out.messages;
          res.peers_probed = out.peers_probed;
          return res;
        });
  };

  const TrialAggregate base = sweep(mem, 1);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const TrialAggregate agg = sweep(mapped, threads);
    EXPECT_EQ(agg.successes, base.successes) << threads;
    EXPECT_EQ(agg.messages, base.messages) << threads;
    EXPECT_EQ(agg.peers_probed, base.peers_probed) << threads;
    EXPECT_EQ(agg.trials, base.trials) << threads;
  }
}

TEST(ParallelFinalize, ByteIdenticalAcrossThreadCounts) {
  const PeerStore base = build_store(kNodes, 1);
  const PeerStore::FlatLayout a = base.flat_layout();
  for (const std::size_t threads : {2u, 3u, 8u}) {
    const PeerStore other = build_store(kNodes, threads);
    const PeerStore::FlatLayout b = other.flat_layout();
    const auto eq = [](const auto& x, const auto& y) {
      return std::equal(x.begin(), x.end(), y.begin(), y.end());
    };
    EXPECT_TRUE(eq(a.peer_term_offsets, b.peer_term_offsets)) << threads;
    EXPECT_TRUE(eq(a.peer_terms_flat, b.peer_terms_flat)) << threads;
    EXPECT_TRUE(eq(a.obj_offsets, b.obj_offsets)) << threads;
    EXPECT_TRUE(eq(a.obj_ids, b.obj_ids)) << threads;
    EXPECT_TRUE(eq(a.obj_term_offsets, b.obj_term_offsets)) << threads;
    EXPECT_TRUE(eq(a.obj_terms_flat, b.obj_terms_flat)) << threads;
    EXPECT_TRUE(eq(a.index_terms, b.index_terms)) << threads;
    EXPECT_TRUE(eq(a.index_offsets, b.index_offsets)) << threads;
    EXPECT_TRUE(eq(a.postings, b.postings)) << threads;
    EXPECT_TRUE(eq(a.obj_scores, b.obj_scores)) << threads;
  }
}

TEST(ViewStore, MatchesOwnedStoreAndRefusesMutation) {
  const Graph graph = build_graph(kNodes);
  const PeerStore store = build_store(kNodes);
  const std::string path = temp_path("viewstore.wsnap");
  save_world_snapshot(path, graph, store);
  const WorldSnapshot snap = WorldSnapshot::load(path);
  PeerStore view = snap.store_view();

  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(kNodes));
    const std::vector<TermId> q{static_cast<TermId>(rng.bounded(50)),
                                static_cast<TermId>(rng.bounded(50))};
    EXPECT_EQ(view.match(peer, q), store.match(peer, q));
    EXPECT_EQ(view.match_reference(peer, q), store.match_reference(peer, q));
    EXPECT_EQ(view.may_match(peer, q), store.may_match(peer, q));
    const auto vt = view.peer_terms(peer);
    const auto st = store.peer_terms(peer);
    EXPECT_TRUE(std::equal(vt.begin(), vt.end(), st.begin(), st.end()));
    EXPECT_EQ(view.object_count(peer), store.object_count(peer));
  }
  EXPECT_THROW(view.add_object(0, 99, {1}), std::logic_error);
  EXPECT_THROW((void)view.objects(0), std::logic_error);

  // Deep copy materializes owned storage with identical behavior.
  const PeerStore copy(view);
  EXPECT_FALSE(copy.borrowed());
  EXPECT_EQ(copy.match(3, std::vector<TermId>{1, 2}),
            store.match(3, std::vector<TermId>{1, 2}));
}

TEST(ViewStore, ReleaseBuildDataKeepsTheFlatReadPath) {
  PeerStore store = build_store(kNodes);
  const std::vector<TermId> q{1, 2};
  const auto before = store.match(0, q);
  store.release_build_data();
  EXPECT_EQ(store.match(0, q), before);
  EXPECT_EQ(store.match_reference(0, q), before);
  EXPECT_GT(store.object_count(0), 0u);
  EXPECT_THROW((void)store.objects(0), std::logic_error);
  EXPECT_THROW(store.add_object(0, 99, {1}), std::logic_error);
}

TEST(WorldSnapshot, RejectsTruncatedAndCorruptFiles) {
  const Graph graph = build_graph(64);
  const PeerStore store = build_store(64);
  const std::string path = temp_path("valid.wsnap");
  save_world_snapshot(path, graph, store);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const auto write_bytes = [](const std::string& p,
                              const std::vector<char>& data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Truncated to half: size mismatch.
  const std::string trunc = temp_path("trunc.wsnap");
  write_bytes(trunc,
              {bytes.begin(),
               bytes.begin() + static_cast<std::ptrdiff_t>(bytes.size() / 2)});
  EXPECT_THROW(WorldSnapshot::load(trunc), std::runtime_error);

  // Truncated below the header.
  const std::string tiny = temp_path("tiny.wsnap");
  write_bytes(tiny, {bytes.begin(), bytes.begin() + 16});
  EXPECT_THROW(WorldSnapshot::load(tiny), std::runtime_error);

  // Flipped magic.
  std::vector<char> bad_magic = bytes;
  bad_magic[0] ^= 0x5A;
  const std::string magic = temp_path("magic.wsnap");
  write_bytes(magic, bad_magic);
  EXPECT_THROW(WorldSnapshot::load(magic), std::runtime_error);

  // Corrupt section offset (first table entry, offset field).
  std::vector<char> bad_section = bytes;
  // Header is 8 + 4 + 4 + 8 + 5*8 bytes; entry = {u32 kind, u32
  // element_size, u64 offset, u64 count}; poke the offset.
  const std::size_t entry_off = 64 + 8;
  bad_section[entry_off] ^= 0x7F;
  const std::string corrupt = temp_path("corrupt.wsnap");
  write_bytes(corrupt, bad_section);
  EXPECT_THROW(WorldSnapshot::load(corrupt), std::runtime_error);

  // Missing file.
  EXPECT_THROW(WorldSnapshot::load(temp_path("nope.wsnap")),
               std::runtime_error);

  std::remove(trunc.c_str());
  std::remove(tiny.c_str());
  std::remove(magic.c_str());
  std::remove(corrupt.c_str());
  std::remove(path.c_str());
}

TEST(WorldSnapshot, OldVersionIsRejectedWithRebuildHint) {
  // A version-1 snapshot has no kObjScores section; loading it would
  // yield a store whose every score is garbage. The loader must refuse
  // with a message that tells the operator exactly what to do.
  const Graph graph = build_graph(64);
  const PeerStore store = build_store(64);
  const std::string path = temp_path("v1.wsnap");
  save_world_snapshot(path, graph, store);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Header: 8-byte magic, then the u32 version.
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));
  const std::string old = temp_path("old.wsnap");
  {
    std::ofstream out(old, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  try {
    (void)WorldSnapshot::load(old);
    FAIL() << "version 1 snapshot must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(
        std::string(e.what()).find("version 1 snapshot predates object "
                                   "scores"),
        std::string::npos)
        << e.what();
  }
  std::remove(old.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qcp2p::sim
