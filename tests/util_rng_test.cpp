#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace qcp2p::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BoundedCoversFullRangeUniformly) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> histogram(kBound, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t v = rng.bounded(kBound);
    ASSERT_LT(v, kBound);
    ++histogram[v];
  }
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(histogram[b], kN / kBound, kN / kBound * 0.15)
        << "bucket " << b;
  }
}

TEST(Rng, BoundedEdgeCases) {
  Rng rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, Mix64IsDeterministicAndSpread) {
  EXPECT_EQ(mix64(1), mix64(1));
  std::set<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.insert(mix64(i));
  EXPECT_EQ(values.size(), 1000u);  // no collisions among small inputs
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace qcp2p::util
