// Streaming CSR construction equivalence: for every topology kind, the
// CsrGraphBuilder fast path must produce edge-for-edge (and therefore
// byte-for-byte CSR) identical graphs to the legacy adjacency+freeze
// path from identically seeded Rngs — including identical RNG
// consumption — and the parallel scatter must be invariant to the
// thread count (1/2/8). Runs under TSan/ASan (ctest -L tsan/asan) to
// vouch for the sharded fill.
#include "src/overlay/csr_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::overlay {
namespace {

void expect_identical(const Graph& a, const Graph& b, const char* what) {
  ASSERT_TRUE(a.frozen()) << what;
  ASSERT_TRUE(b.frozen()) << what;
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what;
  ASSERT_EQ(a.num_edges(), b.num_edges()) << what;
  const auto ao = a.csr_offsets();
  const auto bo = b.csr_offsets();
  ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()))
      << what << ": offsets differ";
  const auto an = a.csr_neighbors();
  const auto bn = b.csr_neighbors();
  ASSERT_TRUE(std::equal(an.begin(), an.end(), bn.begin(), bn.end()))
      << what << ": neighbors differ";
}

/// Runs one generator closure under both construction paths with
/// identically seeded Rngs and asserts CSR identity plus identical RNG
/// consumption (the next draw after building must agree).
template <typename Gen>
void check_paths(std::uint64_t seed, const char* what, Gen&& gen) {
  util::Rng legacy_rng(seed);
  util::Rng stream_rng(seed);
  const Graph legacy =
      gen(legacy_rng, BuildOptions{.threads = 1, .legacy_adjacency = true});
  const Graph stream =
      gen(stream_rng, BuildOptions{.threads = 1, .legacy_adjacency = false});
  expect_identical(legacy, stream, what);
  EXPECT_EQ(legacy_rng(), stream_rng())
      << what << ": RNG consumption diverged";
  for (const std::size_t threads : {2u, 8u}) {
    util::Rng rng(seed);
    const Graph parallel =
        gen(rng, BuildOptions{.threads = threads, .legacy_adjacency = false});
    expect_identical(legacy, parallel, what);
  }
}

TEST(StreamBuild, RandomGraphMatchesLegacy) {
  util::Rng meta(101);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 50 + meta.bounded(400);
    const double mean_degree = 2.0 + 6.0 * meta.uniform();
    check_paths(meta(), "random_graph", [&](util::Rng& rng,
                                                 const BuildOptions& opts) {
      return random_graph(n, mean_degree, rng, opts);
    });
  }
}

TEST(StreamBuild, RandomRegularMatchesLegacy) {
  util::Rng meta(102);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 50 + meta.bounded(400);
    const std::size_t degree = 2 + meta.bounded(8);
    check_paths(meta(), "random_regular", [&](util::Rng& rng,
                                                   const BuildOptions& opts) {
      return random_regular(n, degree, rng, opts);
    });
  }
}

TEST(StreamBuild, BarabasiAlbertMatchesLegacy) {
  util::Rng meta(103);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 50 + meta.bounded(400);
    const std::size_t m = 1 + meta.bounded(5);
    check_paths(meta(), "barabasi_albert", [&](util::Rng& rng,
                                                    const BuildOptions& opts) {
      return barabasi_albert(n, m, rng, opts);
    });
  }
}

TEST(StreamBuild, WattsStrogatzMatchesLegacy) {
  util::Rng meta(104);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 50 + meta.bounded(400);
    const std::size_t k = 2 * (1 + meta.bounded(4));
    const double beta = meta.uniform();
    check_paths(meta(), "watts_strogatz", [&](util::Rng& rng,
                                                   const BuildOptions& opts) {
      return watts_strogatz(n, k, beta, rng, opts);
    });
  }
}

TEST(StreamBuild, TwoTierMatchesLegacy) {
  util::Rng meta(105);
  for (int round = 0; round < 3; ++round) {
    TwoTierParams params;
    params.num_nodes = 200 + meta.bounded(2000);
    params.ultrapeer_fraction = 0.05 + 0.2 * meta.uniform();
    params.up_up_degree = 4 + meta.bounded(10);
    params.leaf_up_count = 1 + meta.bounded(4);
    const std::uint64_t seed = meta();
    util::Rng legacy_rng(seed);
    util::Rng stream_rng(seed);
    const TwoTierTopology legacy = gnutella_two_tier(
        params, legacy_rng, {.threads = 1, .legacy_adjacency = true});
    const TwoTierTopology stream = gnutella_two_tier(
        params, stream_rng, {.threads = 1, .legacy_adjacency = false});
    expect_identical(legacy.graph, stream.graph, "two_tier");
    EXPECT_EQ(legacy.is_ultrapeer, stream.is_ultrapeer);
    EXPECT_EQ(legacy_rng(), stream_rng());
    util::Rng par_rng(seed);
    const TwoTierTopology parallel = gnutella_two_tier(
        params, par_rng, {.threads = 8, .legacy_adjacency = false});
    expect_identical(legacy.graph, parallel.graph, "two_tier threads=8");
  }
}

TEST(StreamBuild, GiaMatchesLegacy) {
  util::Rng meta(106);
  for (int round = 0; round < 3; ++round) {
    GiaParams params;
    params.num_nodes = 200 + meta.bounded(2000);
    params.base_degree = 2.0 + 3.0 * meta.uniform();
    const std::uint64_t seed = meta();
    util::Rng legacy_rng(seed);
    util::Rng stream_rng(seed);
    const GiaTopology legacy = gia_topology(
        params, legacy_rng, {.threads = 1, .legacy_adjacency = true});
    const GiaTopology stream = gia_topology(
        params, stream_rng, {.threads = 1, .legacy_adjacency = false});
    expect_identical(legacy.graph, stream.graph, "gia");
    EXPECT_EQ(legacy.capacity, stream.capacity);
    EXPECT_EQ(legacy_rng(), stream_rng());
    util::Rng par_rng(seed);
    const GiaTopology parallel = gia_topology(
        params, par_rng, {.threads = 8, .legacy_adjacency = false});
    expect_identical(legacy.graph, parallel.graph, "gia threads=8");
  }
}

TEST(StreamBuild, DegenerateSizesAreFrozenAndEmpty) {
  util::Rng rng(1);
  for (const bool legacy : {false, true}) {
    const BuildOptions opts{.threads = 1, .legacy_adjacency = legacy};
    const Graph empty = random_regular(0, 4, rng, opts);
    EXPECT_TRUE(empty.frozen());
    EXPECT_EQ(empty.num_edges(), 0u);
    const Graph one = random_graph(1, 4.0, rng, opts);
    EXPECT_TRUE(one.frozen());
    EXPECT_EQ(one.num_edges(), 0u);
  }
}

TEST(CsrGraphBuilder, MatchesGraphAddEdgeSemantics) {
  CsrGraphBuilder b(10);
  Graph g(10);
  EXPECT_EQ(b.add_edge(1, 2), g.add_edge(1, 2));   // true
  EXPECT_EQ(b.add_edge(2, 1), g.add_edge(2, 1));   // duplicate, reversed
  EXPECT_EQ(b.add_edge(3, 3), g.add_edge(3, 3));   // self-loop
  EXPECT_EQ(b.add_edge(4, 10), g.add_edge(4, 10)); // out of range
  EXPECT_EQ(b.add_edge(0, 9), g.add_edge(0, 9));   // true
  EXPECT_TRUE(b.has_edge(2, 1));
  EXPECT_FALSE(b.has_edge(1, 3));
  EXPECT_EQ(b.num_edges(), g.num_edges());
  EXPECT_EQ(b.degree(1), g.degree(1));
  EXPECT_EQ(b.degree(2), g.degree(2));
  g.freeze();
  const Graph built = b.build(1);
  expect_identical(g, built, "builder semantics");
}

TEST(CsrGraphBuilder, SurvivesRehashGrowth) {
  // Zero reservation forces the duplicate set through its growth path.
  const std::size_t n = 500;
  CsrGraphBuilder b(n, 0);
  Graph g(n);
  util::Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    const auto u = static_cast<NodeId>(rng.bounded(n));
    const auto v = static_cast<NodeId>(rng.bounded(n));
    EXPECT_EQ(b.add_edge(u, v), g.add_edge(u, v));
  }
  g.freeze();
  expect_identical(g, b.build(4), "rehash growth");
}

TEST(CsrGraphBuilder, BuildResetsTheBuilder) {
  CsrGraphBuilder b(4);
  ASSERT_TRUE(b.add_edge(0, 1));
  (void)b.build(1);
  EXPECT_EQ(b.num_edges(), 0u);
  EXPECT_FALSE(b.has_edge(0, 1));
  EXPECT_TRUE(b.add_edge(0, 1));  // reusable after build
}

}  // namespace
}  // namespace qcp2p::overlay
