// Randomized consistency properties of the DHT keyword layer: after
// publishing an arbitrary store, every term's postings must match a
// brute-force scan, regardless of which node asks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/sim/dht.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {
namespace {

struct RandomStoreFixture : ::testing::TestWithParam<std::uint64_t> {
  RandomStoreFixture() : store(40) {
    util::Rng rng(GetParam());
    for (NodeId peer = 0; peer < 40; ++peer) {
      const std::size_t objects = rng.bounded(6);
      for (std::size_t o = 0; o < objects; ++o) {
        std::vector<TermId> terms;
        const std::size_t nterms = 1 + rng.bounded(4);
        for (std::size_t t = 0; t < nterms; ++t) {
          terms.push_back(static_cast<TermId>(rng.bounded(25)));
        }
        store.add_object(peer, (static_cast<std::uint64_t>(peer) << 8) | o,
                         terms);
      }
    }
    store.finalize();
  }
  PeerStore store;
};

TEST_P(RandomStoreFixture, TermPostingsMatchBruteForce) {
  ChordDht dht(40, GetParam() + 1);
  dht.publish_store(store);

  // Brute-force ground truth: term -> set of (object, holder).
  std::map<TermId, std::set<std::pair<std::uint64_t, NodeId>>> truth;
  for (NodeId peer = 0; peer < 40; ++peer) {
    for (const PeerStore::Object& o : store.objects(peer)) {
      for (TermId t : o.terms) truth[t].insert({o.id, peer});
    }
  }

  util::Rng rng(GetParam() + 2);
  for (TermId t = 0; t < 25; ++t) {
    const auto from = static_cast<NodeId>(rng.bounded(40));
    const auto result = dht.search_term(t, from);
    std::set<std::pair<std::uint64_t, NodeId>> seen;
    for (const ChordDht::Posting& p : result.postings) {
      seen.insert({p.object_id, p.holder});
    }
    ASSERT_EQ(seen, truth[t]) << "term " << t;
  }
}

TEST_P(RandomStoreFixture, ObjectHoldersMatchBruteForce) {
  ChordDht dht(40, GetParam() + 3);
  dht.publish_store(store);

  std::map<std::uint64_t, std::set<NodeId>> truth;
  for (NodeId peer = 0; peer < 40; ++peer) {
    for (const PeerStore::Object& o : store.objects(peer)) {
      truth[o.id].insert(peer);
    }
  }
  util::Rng rng(GetParam() + 4);
  for (const auto& [object, holders] : truth) {
    const auto from = static_cast<NodeId>(rng.bounded(40));
    const auto result = dht.search_object(object, from);
    const std::set<NodeId> seen(result.holders.begin(), result.holders.end());
    ASSERT_EQ(seen, holders) << "object " << object;
  }
}

TEST_P(RandomStoreFixture, LookupAnswerIsIndependentOfTheAskingNode) {
  ChordDht dht(40, GetParam() + 5);
  util::Rng rng(GetParam() + 6);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t key = rng();
    const NodeId expected = dht.lookup(key, 0).node;
    for (NodeId from = 1; from < 40; from += 7) {
      ASSERT_EQ(dht.lookup(key, from).node, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStoreFixture,
                         ::testing::Values<std::uint64_t>(11, 222, 3'333,
                                                          44'444));

}  // namespace
}  // namespace qcp2p::sim
