// Advertising-cost accounting of the query-centric overlay.
#include <gtest/gtest.h>

#include "src/core/query_centric.hpp"
#include "src/overlay/topology.hpp"

namespace qcp2p::core {
namespace {

struct AdvertisingFixture : ::testing::Test {
  AdvertisingFixture() {
    util::Rng rng(2);
    graph = overlay::random_regular(100, 6, rng);
    store = std::make_unique<PeerStore>(100);
    for (NodeId v = 0; v < 100; ++v) {
      store->add_object(v, v, {static_cast<TermId>(v % 10), 77});
    }
    store->finalize();
  }
  Graph graph{0};
  std::unique_ptr<PeerStore> store;
};

TEST_F(AdvertisingFixture, ConstructionAdvertisesEveryPeerOnce) {
  SynopsisParams sp;
  QueryCentricOverlay overlay(graph, *store, sp,
                              SynopsisPolicy::kContentCentric);
  EXPECT_EQ(overlay.synopses_built(), 100u);
  // bytes = sum(degree) * bits/8 = 2 * edges * bits/8.
  const std::uint64_t expected =
      2ULL * graph.num_edges() * (sp.bloom_bits / 8);
  EXPECT_EQ(overlay.advertisement_bytes(), expected);
}

TEST_F(AdvertisingFixture, FullRebuildDoublesTheBill) {
  QueryCentricOverlay overlay(graph, *store, SynopsisParams{},
                              SynopsisPolicy::kQueryCentric);
  const auto after_build = overlay.advertisement_bytes();
  TermPopularityTracker tracker;
  overlay.rebuild_synopses(&tracker);
  EXPECT_EQ(overlay.synopses_built(), 200u);
  EXPECT_EQ(overlay.advertisement_bytes(), 2 * after_build);
}

TEST_F(AdvertisingFixture, TransientAdaptationChargesOnlyAffectedPeers) {
  SynopsisParams sp;
  sp.term_budget = 1;
  QueryCentricOverlay overlay(graph, *store, sp,
                              SynopsisPolicy::kQueryCentric);
  const auto baseline_builds = overlay.synopses_built();

  TermPopularityTracker tracker;
  for (int i = 0; i < 2'000; ++i) tracker.observe_query({5});
  // Burst on a term only peers v with v % 10 == 3 hold.
  for (int i = 0; i < 60; ++i) tracker.observe_query({3});
  ASSERT_TRUE(tracker.is_transient(3));

  const std::size_t readvertised = overlay.adapt_to_transients(tracker);
  EXPECT_EQ(readvertised, 10u);  // exactly the holders of term 3
  EXPECT_EQ(overlay.synopses_built(), baseline_builds + 10);
}

TEST_F(AdvertisingFixture, ContentCentricAdaptationIsFree) {
  QueryCentricOverlay overlay(graph, *store, SynopsisParams{},
                              SynopsisPolicy::kContentCentric);
  const auto baseline = overlay.advertisement_bytes();
  TermPopularityTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.observe_query({3});
  EXPECT_EQ(overlay.adapt_to_transients(tracker), 0u);
  EXPECT_EQ(overlay.advertisement_bytes(), baseline);
}

}  // namespace
}  // namespace qcp2p::core
