// Servent state machine tested in isolation with a synchronous queue
// (no latency): verifies GUID dedup, TTL/hops semantics and reverse-path
// hit routing on hand-built topologies.
#include "src/gnutella/servent.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace qcp2p::gnutella {
namespace {

/// Synchronous fixture: delivers descriptors breadth-first.
struct Harness {
  explicit Harness(std::size_t n, const sim::PeerStore* store,
                   const std::vector<std::vector<NodeId>>& adjacency) {
    for (NodeId v = 0; v < n; ++v) {
      servents.emplace_back(v, store, adjacency[v]);
    }
  }

  void pump() {
    while (!queue.empty()) {
      auto [from, to, d] = queue.front();
      queue.pop_front();
      ++delivered;
      servents[to].handle(
          from, d,
          [&, to = to](NodeId next, const Descriptor& out) {
            queue.emplace_back(to, next, out);
          },
          [&](const Descriptor& hit) { arrived.push_back(hit); });
    }
  }

  void send_from(NodeId origin, NodeId to, const Descriptor& d) {
    queue.emplace_back(origin, to, d);
  }

  std::vector<Servent> servents;
  std::deque<std::tuple<NodeId, NodeId, Descriptor>> queue;
  std::vector<Descriptor> arrived;
  std::size_t delivered = 0;
};

/// Line topology 0-1-2-3-4 with an object at the far end.
struct LineFixture : ::testing::Test {
  LineFixture() : store(5) {
    store.add_object(4, 999, {7, 8});
    store.finalize();
    adjacency = {{1}, {0, 2}, {1, 3}, {2, 4}, {3}};
  }
  sim::PeerStore store;
  std::vector<std::vector<NodeId>> adjacency;
};

TEST_F(LineFixture, QueryHitRoutesBackAlongReversePath) {
  Harness h(5, &store, adjacency);
  util::Rng rng(1);
  const Servent::SendFn send = [&](NodeId to, const Descriptor& d) {
    h.send_from(0, to, d);
  };
  const Guid guid =
      h.servents[0].originate_query({7, 8}, /*ttl=*/5, rng, send);
  h.pump();

  ASSERT_EQ(h.arrived.size(), 1u);
  EXPECT_EQ(h.arrived[0].header.type, DescriptorType::kQueryHit);
  EXPECT_EQ(h.arrived[0].header.guid, guid);
  EXPECT_EQ(h.arrived[0].hit.responder, 4u);
  EXPECT_EQ(h.arrived[0].hit.object_ids, (std::vector<std::uint64_t>{999}));
}

TEST_F(LineFixture, TtlLimitsQueryReach) {
  Harness h(5, &store, adjacency);
  util::Rng rng(2);
  const Servent::SendFn send = [&](NodeId to, const Descriptor& d) {
    h.send_from(0, to, d);
  };
  // TTL 3 reaches node 3 but not node 4 (the holder): no hit.
  h.servents[0].originate_query({7, 8}, 3, rng, send);
  h.pump();
  EXPECT_TRUE(h.arrived.empty());
  // Node 4 never saw a descriptor.
  EXPECT_EQ(h.servents[4].descriptors_seen(), 0u);
}

TEST_F(LineFixture, ZeroTtlQuerySendsNothing) {
  Harness h(5, &store, adjacency);
  util::Rng rng(3);
  const Servent::SendFn send = [&](NodeId to, const Descriptor& d) {
    h.send_from(0, to, d);
  };
  h.servents[0].originate_query({7}, 0, rng, send);
  h.pump();
  EXPECT_EQ(h.delivered, 0u);
}

TEST(Servent, DuplicateGuidsAreDropped) {
  sim::PeerStore store(3);
  store.finalize();
  // Triangle: 0-1, 1-2, 0-2. A query from 0 reaches 1 and 2 directly,
  // and each relays to the other -> one duplicate at each.
  const std::vector<std::vector<NodeId>> adjacency{{1, 2}, {0, 2}, {0, 1}};
  Harness h(3, &store, adjacency);
  util::Rng rng(4);
  const Servent::SendFn send = [&](NodeId to, const Descriptor& d) {
    h.send_from(0, to, d);
  };
  h.servents[0].originate_query({1}, 7, rng, send);
  h.pump();
  EXPECT_EQ(h.servents[1].duplicates_dropped(), 1u);
  EXPECT_EQ(h.servents[2].duplicates_dropped(), 1u);
  // Total deliveries: 0->{1,2} (2), then the 1->2 and 2->1 relays (2);
  // relays never return to their sender, so nothing reaches 0 again.
  EXPECT_EQ(h.delivered, 4u);
}

TEST(Servent, PongCarriesLibrarySizeAndRoutesBack) {
  sim::PeerStore store(3);
  store.add_object(2, 1, {5});
  store.add_object(2, 2, {6});
  store.finalize();
  const std::vector<std::vector<NodeId>> adjacency{{1}, {0, 2}, {1}};
  Harness h(3, &store, adjacency);
  util::Rng rng(5);
  const Servent::SendFn send = [&](NodeId to, const Descriptor& d) {
    h.send_from(0, to, d);
  };
  h.servents[0].originate_ping(7, rng, send);
  h.pump();
  ASSERT_EQ(h.arrived.size(), 2u);  // pongs from 1 and 2
  std::size_t lib2 = 0;
  for (const Descriptor& d : h.arrived) {
    EXPECT_EQ(d.header.type, DescriptorType::kPong);
    if (d.pong.responder == 2) lib2 = d.pong.shared_files;
  }
  EXPECT_EQ(lib2, 2u);
}

TEST(Servent, MultipleHoldersAllRespond) {
  sim::PeerStore store(4);
  store.add_object(1, 10, {3});
  store.add_object(2, 20, {3});
  store.add_object(3, 30, {3});
  store.finalize();
  // Star around 0.
  const std::vector<std::vector<NodeId>> adjacency{
      {1, 2, 3}, {0}, {0}, {0}};
  Harness h(4, &store, adjacency);
  util::Rng rng(6);
  const Servent::SendFn send = [&](NodeId to, const Descriptor& d) {
    h.send_from(0, to, d);
  };
  h.servents[0].originate_query({3}, 2, rng, send);
  h.pump();
  EXPECT_EQ(h.arrived.size(), 3u);
}

TEST(Servent, ExpireRoutesDropsOldestFirstAndSurvivesCompaction) {
  sim::PeerStore store(3);
  store.finalize();
  Servent sv(1, &store, {0, 2});
  const Servent::SendFn no_send = [](NodeId, const Descriptor&) {};
  const Servent::HitFn no_hit = [](const Descriptor&) {};
  std::vector<Guid> guids;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Descriptor q;
    q.header.guid = Guid{i + 1, i + 1};
    q.header.type = DescriptorType::kQuery;
    q.header.ttl = 1;
    q.header.hops = 0;
    q.query.terms = {static_cast<sim::TermId>(i)};
    guids.push_back(q.header.guid);
    sv.handle(0, q, no_send, no_hit);
  }
  ASSERT_EQ(sv.route_table_size(), 10u);
  // Drops guids[0..4]; the dead prefix passes the midpoint, so the
  // order log compacts — which must not disturb oldest-first order.
  sv.expire_routes(5);
  EXPECT_EQ(sv.route_table_size(), 5u);
  sv.expire_routes(3);  // drops guids[5..6] from the compacted log
  EXPECT_EQ(sv.route_table_size(), 3u);

  // A surviving route still delivers hits toward the query's neighbor...
  std::vector<NodeId> sent_to;
  const Servent::SendFn record = [&](NodeId to, const Descriptor&) {
    sent_to.push_back(to);
  };
  Descriptor hit;
  hit.header.type = DescriptorType::kQueryHit;
  hit.header.guid = guids[9];
  hit.hit.responder = 2;
  sv.handle(2, hit, record, no_hit);
  EXPECT_EQ(sent_to, (std::vector<NodeId>{0}));

  // ...but a hit for an expired route is undeliverable, as in the
  // protocol: late answers die at the first hop lacking routing state.
  sent_to.clear();
  hit.header.guid = guids[4];
  sv.handle(2, hit, record, no_hit);
  EXPECT_TRUE(sent_to.empty());
}

TEST(Servent, LateHitAfterOriginRouteExpiryIsDropped) {
  sim::PeerStore store(2);
  store.finalize();
  Servent sv(0, &store, {1});
  util::Rng rng(9);
  const Servent::SendFn no_send = [](NodeId, const Descriptor&) {};
  const Guid guid = sv.originate_query({1}, 3, rng, no_send);
  sv.expire_routes(0);  // bounded table flushed before the answer returns
  bool hit_arrived = false;
  Descriptor hit;
  hit.header.type = DescriptorType::kQueryHit;
  hit.header.guid = guid;
  hit.hit.responder = 1;
  sv.handle(1, hit, no_send,
            [&](const Descriptor&) { hit_arrived = true; });
  EXPECT_FALSE(hit_arrived);
}

TEST(Servent, ResetForgetsRoutingStateSoGuidsAreFreshAgain) {
  sim::PeerStore store(2);
  store.finalize();
  Servent sv(1, &store, {0});
  const Servent::SendFn no_send = [](NodeId, const Descriptor&) {};
  const Servent::HitFn no_hit = [](const Descriptor&) {};
  Descriptor q;
  q.header.guid = Guid{42, 42};
  q.header.type = DescriptorType::kQuery;
  q.header.ttl = 1;
  q.query.terms = {1};
  sv.handle(0, q, no_send, no_hit);
  sv.handle(0, q, no_send, no_hit);
  EXPECT_EQ(sv.duplicates_dropped(), 1u);
  sv.reset();
  EXPECT_EQ(sv.route_table_size(), 0u);
  sv.handle(0, q, no_send, no_hit);  // fresh again: not a duplicate
  EXPECT_EQ(sv.duplicates_dropped(), 1u);
  EXPECT_EQ(sv.route_table_size(), 1u);
}

TEST(Servent, HitForUnknownGuidIsDropped) {
  sim::PeerStore store(2);
  store.finalize();
  const std::vector<std::vector<NodeId>> adjacency{{1}, {0}};
  Harness h(2, &store, adjacency);
  Descriptor stray;
  stray.header.type = DescriptorType::kQueryHit;
  stray.header.guid = Guid{123, 456};  // never originated here
  stray.hit.responder = 1;
  h.send_from(1, 0, stray);
  h.pump();
  EXPECT_TRUE(h.arrived.empty());  // no route, silently dropped
}

}  // namespace
}  // namespace qcp2p::gnutella
