#include "src/trace/itunes.hpp"

#include <gtest/gtest.h>

#include "src/analysis/replication.hpp"
#include "src/util/stats.hpp"

namespace qcp2p::trace {
namespace {

ContentModelParams model_params() {
  ContentModelParams p;
  p.core_lexicon_size = 8'000;
  p.catalog_songs = 300'000;
  p.artists = 150'000;
  p.seed = 31;
  return p;
}

TEST(ItunesCrawlParams, ScaledValidates) {
  ItunesCrawlParams p;
  EXPECT_THROW((void)p.scaled(0.0), std::invalid_argument);
  EXPECT_EQ(p.scaled(0.5).num_clients, 120u);
}

TEST(ItunesCrawl, Deterministic) {
  const ContentModel model(model_params());
  ItunesCrawlParams params;
  params.num_clients = 10;
  params.mean_tracks_per_client = 100;
  const ItunesSnapshot a = generate_itunes_crawl(model, params);
  const ItunesSnapshot b = generate_itunes_crawl(model, params);
  ASSERT_EQ(a.total_tracks(), b.total_tracks());
  for (std::size_t c = 0; c < a.num_clients(); ++c) {
    const auto& ta = a.client_tracks(c);
    const auto& tb = b.client_tracks(c);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].key.bits, tb[i].key.bits);
      EXPECT_EQ(ta[i].genre, tb[i].genre);
    }
  }
}

TEST(ItunesCrawl, LibrariesDeduplicated) {
  const ContentModel model(model_params());
  ItunesCrawlParams params;
  params.num_clients = 20;
  params.mean_tracks_per_client = 500;
  const ItunesSnapshot snap = generate_itunes_crawl(model, params);
  for (std::size_t c = 0; c < snap.num_clients(); ++c) {
    const auto& lib = snap.client_tracks(c);
    for (std::size_t i = 1; i < lib.size(); ++i) {
      ASSERT_LT(lib[i - 1].key.bits, lib[i].key.bits);
    }
  }
}

// Fig 4 calibration: paper numbers are 239 clients, 533,768 tracks,
// 64% singleton songs, 8.7% missing genre, 8.1% missing album, ~56%
// singleton genres, ~65% singleton albums/artists.
TEST(ItunesCrawl, CalibratedAnnotationMarginals) {
  const ContentModel model(model_params());
  const ItunesCrawlParams params;  // full client count; libraries ~2.2k
  const ItunesSnapshot snap = generate_itunes_crawl(model, params);

  EXPECT_NEAR(static_cast<double>(snap.total_tracks()), 533'768.0,
              533'768.0 * 0.35);

  const auto songs = snap.song_client_counts();
  EXPECT_NEAR(util::singleton_fraction(songs), 0.64, 0.12);
  // Mean copies per unique song: paper 533,768 / 117,068 ~ 4.6.
  double total = 0;
  for (auto c : songs) total += static_cast<double>(c);
  // song_client_counts collapses within-client duplicates, so compare
  // against distinct (client, song) pairs rather than raw track count.
  EXPECT_GT(total / static_cast<double>(songs.size()), 1.8);

  EXPECT_NEAR(snap.missing_genre_fraction(), 0.087, 0.02);
  EXPECT_NEAR(snap.missing_album_fraction(), 0.081, 0.02);

  const auto genres = snap.genre_client_counts();
  EXPECT_GT(genres.size(), 100u);     // paper: 1,452 genres
  EXPECT_LT(genres.size(), 10'000u);
  EXPECT_GT(util::singleton_fraction(genres), 0.35);  // paper: 56%

  const auto albums = snap.album_client_counts();
  EXPECT_GT(util::singleton_fraction(albums), 0.35);  // paper: 65.7%

  const auto artists = snap.artist_client_counts();
  EXPECT_GT(util::singleton_fraction(artists), 0.30);  // paper: 65%
  EXPECT_LT(util::singleton_fraction(artists), 0.90);
}

TEST(ItunesCrawl, AnnotationsFollowLongTail) {
  const ContentModel model(model_params());
  ItunesCrawlParams params;
  params.num_clients = 120;
  params.mean_tracks_per_client = 800;
  const ItunesSnapshot snap = generate_itunes_crawl(model, params);
  for (const auto& counts :
       {snap.song_client_counts(), snap.album_client_counts(),
        snap.artist_client_counts()}) {
    const auto curve = util::rank_frequency(counts);
    const auto fit = util::fit_zipf(curve, std::min<std::size_t>(200, curve.size()));
    EXPECT_GT(fit.exponent, 0.2);
  }
}

TEST(ItunesCrawl, GenreCountsBoundedByClients) {
  const ContentModel model(model_params());
  ItunesCrawlParams params;
  params.num_clients = 25;
  params.mean_tracks_per_client = 200;
  const ItunesSnapshot snap = generate_itunes_crawl(model, params);
  for (auto c : snap.genre_client_counts()) {
    EXPECT_LE(c, snap.num_clients());
    EXPECT_GE(c, 1u);
  }
}

TEST(ItunesCrawl, PersonalTracksAreSingletons) {
  const ContentModel model(model_params());
  ItunesCrawlParams params;
  params.num_clients = 30;
  params.mean_tracks_per_client = 300;
  params.p_personal = 1.0;  // everything personal
  const ItunesSnapshot snap = generate_itunes_crawl(model, params);
  const auto songs = snap.song_client_counts();
  EXPECT_DOUBLE_EQ(util::singleton_fraction(songs), 1.0);
}

}  // namespace
}  // namespace qcp2p::trace
