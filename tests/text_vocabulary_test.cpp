#include "src/text/vocabulary.hpp"

#include <gtest/gtest.h>

namespace qcp2p::text {
namespace {

TEST(Vocabulary, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.intern("alpha"), 0u);
  EXPECT_EQ(v.intern("beta"), 1u);
  EXPECT_EQ(v.intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(v.size(), 2u);
}

TEST(Vocabulary, FindDoesNotInsert) {
  Vocabulary v;
  EXPECT_FALSE(v.find("ghost").has_value());
  EXPECT_EQ(v.size(), 0u);
  v.intern("real");
  ASSERT_TRUE(v.find("real").has_value());
  EXPECT_EQ(*v.find("real"), 0u);
}

TEST(Vocabulary, SpellRoundTrips) {
  Vocabulary v;
  const TermId a = v.intern("hello");
  const TermId b = v.intern("world");
  EXPECT_EQ(v.spell(a), "hello");
  EXPECT_EQ(v.spell(b), "world");
}

TEST(Vocabulary, SpellRejectsBadId) {
  Vocabulary v;
  EXPECT_THROW((void)v.spell(0), std::out_of_range);
  v.intern("x");
  EXPECT_THROW((void)v.spell(1), std::out_of_range);
}

TEST(Vocabulary, InternAllPreservesOrder) {
  Vocabulary v;
  const std::vector<std::string> tokens{"b", "a", "b", "c"};
  const auto ids = v.intern_all(tokens);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], ids[2]);  // same token, same id
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_EQ(v.size(), 3u);
}

TEST(Vocabulary, StableAcrossRehash) {
  Vocabulary v;
  std::vector<TermId> ids;
  for (int i = 0; i < 10'000; ++i) {
    std::string token = "t";
    token += std::to_string(i);
    ids.push_back(v.intern(token));
  }
  for (int i = 0; i < 10'000; ++i) {
    std::string token = "t";
    token += std::to_string(i);
    ASSERT_EQ(v.spell(ids[static_cast<std::size_t>(i)]), token);
  }
}

TEST(Vocabulary, EmptyStringIsValidTerm) {
  Vocabulary v;
  const TermId id = v.intern("");
  EXPECT_EQ(v.spell(id), "");
  EXPECT_TRUE(v.find("").has_value());
}

}  // namespace
}  // namespace qcp2p::text
