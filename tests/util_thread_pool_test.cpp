#include "src/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qcp2p::util {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelBlocksCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> touched(kN);
  pool.parallel_blocks(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelBlocksEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_blocks(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelBlocksPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_blocks(
                   100,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::logic_error("first block");
                   }),
               std::logic_error);
}

TEST(ParallelForBlocks, SerialFallbackForSingleThread) {
  std::vector<int> touched(100, 0);
  parallel_for_blocks(100, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 100);
}

TEST(ParallelForBlocks, SumMatchesSerial) {
  constexpr std::size_t kN = 100'000;
  std::atomic<long long> sum{0};
  parallel_for_blocks(kN, 4, [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i)
      local += static_cast<long long>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kN) * (static_cast<long long>(kN) - 1) / 2);
}

}  // namespace
}  // namespace qcp2p::util
