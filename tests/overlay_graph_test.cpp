#include "src/overlay/graph.hpp"

#include <gtest/gtest.h>

namespace qcp2p::overlay {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RejectsSelfLoopsDuplicatesAndOutOfRange) {
  Graph g(3);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_FALSE(g.add_edge(0, 3));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, NeighborsSpan) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_TRUE((nbrs[0] == 1 && nbrs[1] == 2) || (nbrs[0] == 2 && nbrs[1] == 1));
}

TEST(Graph, MeanDegree) {
  Graph g(4);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 0.0);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.0);
}

TEST(Graph, ComponentOf) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto comp = g.component_of(0);
  std::sort(comp.begin(), comp.end());
  EXPECT_EQ(comp, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_FALSE(g.is_connected());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

}  // namespace
}  // namespace qcp2p::overlay
