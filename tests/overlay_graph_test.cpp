#include "src/overlay/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/util/rng.hpp"

namespace qcp2p::overlay {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RejectsSelfLoopsDuplicatesAndOutOfRange) {
  Graph g(3);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_FALSE(g.add_edge(0, 3));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, NeighborsSpan) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_TRUE((nbrs[0] == 1 && nbrs[1] == 2) || (nbrs[0] == 2 && nbrs[1] == 1));
}

TEST(Graph, MeanDegree) {
  Graph g(4);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 0.0);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.0);
}

TEST(Graph, ComponentOf) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto comp = g.component_of(0);
  std::sort(comp.begin(), comp.end());
  EXPECT_EQ(comp, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_FALSE(g.is_connected());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

// ---------------------------------------------------------------------------
// apply_delta: batched frozen-CSR maintenance for the serving path.

Graph random_graph(std::size_t n, std::size_t edges, std::uint64_t seed) {
  Graph g(n);
  util::Rng rng(seed);
  while (g.num_edges() < edges) {
    g.add_edge(static_cast<NodeId>(rng.bounded(n)),
               static_cast<NodeId>(rng.bounded(n)));
  }
  return g;
}

TEST(GraphApplyDelta, MatchesPerEdgeOpsPlusFreeze) {
  constexpr std::size_t kN = 120;
  Graph frozen = random_graph(kN, 400, 3);
  Graph reference = frozen;  // same adjacency; stays thawed
  frozen.freeze();

  util::Rng rng(9);
  std::vector<std::pair<NodeId, NodeId>> removes, adds;
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<NodeId>(rng.bounded(kN));
    if (frozen.degree(u) > 0) {
      removes.emplace_back(u, frozen.neighbors(u)[rng.bounded(
                                  frozen.degree(u))]);
    }
    adds.emplace_back(static_cast<NodeId>(rng.bounded(kN)),
                      static_cast<NodeId>(rng.bounded(kN)));
  }
  // Stress the dedup/validation paths: duplicates (both directions), a
  // self-loop, an out-of-range endpoint, a remove of a missing edge, and
  // a remove-then-readd of the same edge in one batch.
  if (!removes.empty()) {
    removes.push_back({removes[0].second, removes[0].first});
    adds.push_back(removes[0]);  // re-add an edge removed in this batch
  }
  removes.push_back({5, 5});
  removes.push_back({0, static_cast<NodeId>(kN + 7)});
  adds.push_back({7, 7});
  adds.push_back({static_cast<NodeId>(kN + 1), 0});
  if (!adds.empty()) adds.push_back({adds[0].second, adds[0].first});

  const auto [removed, added] = frozen.apply_delta(removes, adds);
  std::size_t ref_removed = 0, ref_added = 0;
  for (const auto& [u, v] : removes) ref_removed += reference.remove_edge(u, v);
  for (const auto& [u, v] : adds) ref_added += reference.add_edge(u, v);
  reference.freeze();

  EXPECT_EQ(removed, ref_removed);
  EXPECT_EQ(added, ref_added);
  EXPECT_TRUE(frozen.frozen());
  EXPECT_EQ(frozen.num_edges(), reference.num_edges());
  // Identical CSR, including within-row neighbor order.
  const auto fo = frozen.csr_offsets();
  const auto ro = reference.csr_offsets();
  ASSERT_TRUE(std::equal(fo.begin(), fo.end(), ro.begin(), ro.end()));
  const auto fn = frozen.csr_neighbors();
  const auto rn = reference.csr_neighbors();
  EXPECT_TRUE(std::equal(fn.begin(), fn.end(), rn.begin(), rn.end()));
}

TEST(GraphApplyDelta, ThawedGraphFallsBackToPerEdgeOps) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<std::pair<NodeId, NodeId>> removes{{0, 1}, {4, 4}};
  const std::vector<std::pair<NodeId, NodeId>> adds{{2, 3}, {2, 3}, {1, 2}};
  const auto [removed, added] = g.apply_delta(removes, adds);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(added, 1u);
  EXPECT_FALSE(g.frozen());
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphApplyDelta, EmptyAndNoopBatches) {
  Graph g = random_graph(20, 30, 4);
  g.freeze();
  const std::uint64_t edges = g.num_edges();
  EXPECT_EQ(g.apply_delta({}, {}), (std::pair<std::size_t, std::size_t>{0, 0}));
  // Removing absent edges / adding present edges is a no-op batch.
  const std::vector<std::pair<NodeId, NodeId>> removes{{0, 0}};
  const std::vector<std::pair<NodeId, NodeId>> adds{
      {g.neighbors(0).empty() ? NodeId{1} : NodeId{0},
       g.neighbors(0).empty() ? NodeId{1} : g.neighbors(0)[0]}};
  const auto [removed, added] = g.apply_delta(removes, adds);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(added, 0u);
  EXPECT_EQ(g.num_edges(), edges);
  EXPECT_TRUE(g.frozen());
}

}  // namespace
}  // namespace qcp2p::overlay
