// Failure injection for flooding: offline peers neither relay nor answer.
#include <gtest/gtest.h>

#include "src/overlay/churn.hpp"
#include "src/sim/flood.hpp"

namespace qcp2p::sim {
namespace {

Graph line_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(FloodChurn, OfflineNodeBlocksTheLine) {
  const Graph g = line_graph(10);
  std::vector<bool> online(10, true);
  online[3] = false;  // cut the line at node 3
  const FloodResult r = flood(g, 0, 9, nullptr, &online);
  // Nodes 1, 2 reachable; 3 is dead, everything beyond unreachable.
  EXPECT_EQ(r.reached.size(), 2u);
}

TEST(FloodChurn, MessagesToDeadPeersAreStillCharged) {
  const Graph g = line_graph(4);
  std::vector<bool> online(4, true);
  online[1] = false;
  const FloodResult r = flood(g, 0, 3, nullptr, &online);
  EXPECT_TRUE(r.reached.empty());
  EXPECT_EQ(r.messages, 1u);  // the send to the dead neighbor
}

TEST(FloodChurn, OfflineSourceCannotSearch) {
  const Graph g = line_graph(5);
  std::vector<bool> online(5, false);
  const FloodResult r = flood(g, 0, 3, nullptr, &online);
  EXPECT_TRUE(r.reached.empty());
  EXPECT_EQ(r.messages, 0u);
}

TEST(FloodChurn, ReachesAnyRequiresOnlineHolder) {
  const Graph g = line_graph(6);
  FloodEngine engine(g);
  const std::vector<NodeId> holders{0, 5};
  std::vector<bool> online(6, true);
  online[0] = false;
  // Source 0 is offline: its own copy does not count, and it cannot
  // flood either.
  EXPECT_FALSE(engine.reaches_any(0, 5, holders, nullptr, nullptr, &online));
  // Source 1 is online and can reach holder 5.
  EXPECT_TRUE(engine.reaches_any(1, 4, holders, nullptr, nullptr, &online));
}

TEST(FloodChurn, SuccessDegradesWithChurnOnSingletons) {
  util::Rng rng(9);
  Graph g(500);
  for (int i = 0; i < 2'000; ++i) {
    g.add_edge(static_cast<NodeId>(rng.bounded(500)),
               static_cast<NodeId>(rng.bounded(500)));
  }
  FloodEngine engine(g);
  const std::vector<NodeId> holders{250};  // a singleton object

  auto success_rate = [&](double online_fraction) {
    util::Rng crng(4);
    int ok = 0;
    for (int trial = 0; trial < 200; ++trial) {
      const auto online = overlay::sample_online(500, online_fraction, crng);
      const auto src = static_cast<NodeId>(crng.bounded(500));
      ok += engine.reaches_any(src, 6, holders, nullptr, nullptr, &online);
    }
    return ok;
  };
  const int full = success_rate(1.0);
  const int half = success_rate(0.5);
  EXPECT_GT(full, half);       // churn strictly hurts singletons...
  EXPECT_LE(half, full / 2 + 20);  // ...roughly in proportion to uptime
}

TEST(FloodChurn, ChurnProcessDrivesLiveness) {
  const Graph g = line_graph(50);
  overlay::ChurnParams params;
  params.mean_online_s = 10.0;
  params.mean_offline_s = 10.0;
  overlay::ChurnProcess churn(50, params);
  churn.advance(100.0);
  const FloodResult r = flood(g, 0, 49, nullptr, &churn.online());
  // With ~50% uptime the line is almost surely cut early.
  EXPECT_LT(r.reached.size(), 49u);
}

}  // namespace
}  // namespace qcp2p::sim
