#include "src/des/simulator.hpp"

#include <gtest/gtest.h>

namespace qcp2p::des {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(1.0, recurse);
  };
  sim.schedule(0.0, recurse);
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 4);
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.clear();
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RelativeDelaysCompose) {
  Simulator sim;
  double second_fire_time = -1.0;
  sim.schedule(2.0, [&] {
    sim.schedule(3.0, [&] { second_fire_time = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(second_fire_time, 5.0);
}

TEST(Simulator, ExecutedAccumulatesAcrossRuns) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(Simulator, ClearKeepsClockAndCounters) {
  Simulator sim;
  sim.schedule(2.0, [] {});
  sim.run();
  sim.schedule(1.0, [] {});
  sim.clear();
  // clear() only drops pending events: the timeline continues.
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, ResetRestoresFreshlyConstructedState) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  sim.run();
  sim.schedule(5.0, [] {});  // still pending when reset() hits
  sim.reset();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.executed(), 0u);
  // The next run is a fresh timeline: a 1s delay fires at t = 1 (not
  // t = 3), and per-run event counts start from zero.
  double fired_at = -1.0;
  sim.schedule(1.0, [&] { fired_at = sim.now(); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_DOUBLE_EQ(fired_at, 1.0);
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.5, [&] { ++fired; });
  sim.schedule(2.5, [&] { ++fired; });  // also exactly at t_end
  sim.schedule(2.6, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(2.5), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, HandlerScheduledEventsRespectTheDeadline) {
  Simulator sim;
  std::vector<double> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(sim.now());
    sim.schedule(1.0, chain);  // self-rescheduling: 1, 2, 3, ...
  };
  sim.schedule(1.0, chain);
  EXPECT_EQ(sim.run_until(3.5), 3u);  // 1, 2, 3 fire; 4 stays pending
  EXPECT_EQ(fire_times, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.5);
}

TEST(Simulator, ZeroDelayFromHandlerRunsAfterAlreadyQueuedPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(0);
    sim.schedule(0.0, [&] { order.push_back(2); });  // same timestamp
  });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.run();
  // The reentrantly scheduled event shares t = 1 but a later sequence
  // number, so it fires after every already-queued t = 1 event.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace qcp2p::des
