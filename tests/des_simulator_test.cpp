#include "src/des/simulator.hpp"

#include <gtest/gtest.h>

namespace qcp2p::des {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(1.0, recurse);
  };
  sim.schedule(0.0, recurse);
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 4);
}

TEST(Simulator, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.clear();
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, RelativeDelaysCompose) {
  Simulator sim;
  double second_fire_time = -1.0;
  sim.schedule(2.0, [&] {
    sim.schedule(3.0, [&] { second_fire_time = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(second_fire_time, 5.0);
}

TEST(Simulator, ExecutedAccumulatesAcrossRuns) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 2u);
}

}  // namespace
}  // namespace qcp2p::des
