// Cross-layer integration: the protocol-level Gnutella network, the QRP
// two-tier network, the crawler and the global result index must agree
// with each other on the same underlying content.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/analysis/rare_queries.hpp"
#include "src/crawler/crawler.hpp"
#include "src/gnutella/network.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/qrp.hpp"
#include "src/sim/result_cache.hpp"

namespace qcp2p {
namespace {

struct WorldFixture : ::testing::Test {
  static void SetUpTestSuite() {
    trace::ContentModelParams mp;
    mp.core_lexicon_size = 2'000;
    mp.catalog_songs = 20'000;
    mp.artists = 3'000;
    mp.tail_lexicon_size = 40'000;
    mp.seed = 91;
    model = new trace::ContentModel(mp);
    trace::GnutellaCrawlParams cp;
    cp.num_peers = 600;
    cp.mean_objects_per_peer = 60;
    truth = new trace::CrawlSnapshot(generate_gnutella_crawl(*model, cp));
    store = new sim::PeerStore(sim::peer_store_from_crawl(*truth, 600));
    util::Rng rng(17);
    overlay::TwoTierParams tp;
    tp.num_nodes = 600;
    tp.ultrapeer_fraction = 0.2;
    topo = new overlay::TwoTierTopology(overlay::gnutella_two_tier(tp, rng));
  }
  static void TearDownTestSuite() {
    delete topo;
    delete store;
    delete truth;
    delete model;
    topo = nullptr;
    store = nullptr;
    truth = nullptr;
    model = nullptr;
  }

  /// Terms of some real object held by a leaf.
  static std::vector<sim::TermId> answerable_query() {
    for (sim::NodeId v = 0; v < 600; ++v) {
      if (!store->objects(v).empty() &&
          !store->objects(v)[0].terms.empty()) {
        return {store->objects(v)[0].terms[0]};
      }
    }
    return {};
  }

  /// A rare-but-answerable query: a genuine tail-lexicon annotation term
  /// (held by very few peers), so selective routing is observable.
  static std::vector<sim::TermId> rare_query() {
    for (sim::NodeId v = 0; v < 600; ++v) {
      for (const auto& obj : store->objects(v)) {
        if (!obj.terms.empty() &&
            obj.terms.back() >= model->core_lexicon_size()) {
          return {obj.terms.back()};
        }
      }
    }
    return answerable_query();
  }

  static trace::ContentModel* model;
  static trace::CrawlSnapshot* truth;
  static sim::PeerStore* store;
  static overlay::TwoTierTopology* topo;
};

trace::ContentModel* WorldFixture::model = nullptr;
trace::CrawlSnapshot* WorldFixture::truth = nullptr;
sim::PeerStore* WorldFixture::store = nullptr;
overlay::TwoTierTopology* WorldFixture::topo = nullptr;

TEST_F(WorldFixture, ProtocolHitsNeverExceedGlobalResultCount) {
  const analysis::GlobalResultIndex index(*truth);
  gnutella::GnutellaNetwork net(topo->graph, *store);
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = answerable_query();
    ASSERT_FALSE(q.empty());
    const auto src = static_cast<gnutella::NodeId>(rng.bounded(600));
    const auto out = net.query(src, q, 7);
    std::uint64_t protocol_results = 0;
    for (const auto& hit : out.hits) protocol_results += hit.objects;
    EXPECT_LE(protocol_results, index.result_count(q));
  }
}

TEST_F(WorldFixture, QrpFindsWhatPlainProtocolFindsWithFewerLeafMessages) {
  sim::QrpNetwork qrp(*topo, *store);
  gnutella::NetworkParams np;
  np.min_link_latency_s = np.max_link_latency_s = 0.05;  // BFS-equivalent
  gnutella::GnutellaNetwork plain(topo->graph, *store, np);

  sim::NodeId up = 0;
  while (!topo->is_ultrapeer[up]) ++up;
  const auto q = rare_query();  // selective: filtering is observable
  const auto qrp_result = qrp.search(up, q, 4);
  const auto plain_result = plain.query(up, q, 4);

  // QRP must not lose results relative to the unfiltered protocol (its
  // tables are complete, so suppression never hides a match)...
  std::unordered_set<sim::NodeId> plain_responders;
  for (const auto& hit : plain_result.hits) {
    plain_responders.insert(hit.responder);
  }
  EXPECT_GE(qrp_result.results.size(),
            std::min<std::size_t>(1, plain_responders.size()));
  if (!plain_responders.empty()) {
    EXPECT_FALSE(qrp_result.results.empty());
  }
  // ...while the filtered leaf traffic stays far below one message per
  // leaf candidate.
  EXPECT_GT(qrp_result.leaf_suppressed, qrp_result.leaf_messages);
}

TEST_F(WorldFixture, CrawledSampleIndexIsASubsetOfTheTruthIndex) {
  const crawler::Crawler crawler;  // default loss
  const crawler::FileCrawl observed = crawler.crawl(topo->graph, *truth);
  const analysis::GlobalResultIndex truth_index(*truth);
  const analysis::GlobalResultIndex observed_index(observed.observed);

  util::Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const auto q = answerable_query();
    EXPECT_LE(observed_index.result_count(q), truth_index.result_count(q));
  }
  EXPECT_LE(observed_index.indexed_terms(), truth_index.indexed_terms());
}

TEST_F(WorldFixture, CachingNetworkConvergesOnRepeatedHeadQueries) {
  sim::ResultCacheParams params;
  params.flood_ttl = 3;
  sim::CachingSearchNetwork net(topo->graph, *store, params);
  const auto q = answerable_query();
  util::Rng rng(7);
  const auto src = static_cast<sim::NodeId>(rng.bounded(600));
  std::uint64_t first_messages = 0, later_messages = 0;
  for (int i = 0; i < 10; ++i) {
    const auto r = net.search(src, q);
    (i == 0 ? first_messages : later_messages) += r.messages;
  }
  EXPECT_LT(later_messages, first_messages + 9);  // ~free after warm-up
}

}  // namespace
}  // namespace qcp2p
