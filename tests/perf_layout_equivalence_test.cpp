// Property tests for the flat-memory hot-path layouts: the CSR Graph and
// the inverted-index PeerStore must be drop-in result-identical to the
// adjacency-list / linear-scan implementations they replaced, and every
// search engine must stay bit-identical across thread counts and for any
// SearchScratch reuse pattern.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/gia.hpp"
#include "src/sim/hybrid.hpp"
#include "src/sim/qrp.hpp"
#include "src/sim/random_walk.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/sim/trial_runner.hpp"
#include "src/trace/gnutella.hpp"

namespace qcp2p {
namespace {

using overlay::Graph;
using overlay::NodeId;
using sim::PeerStore;
using text::TermId;

std::vector<NodeId> neighbor_list(const Graph& g, NodeId u) {
  const auto nbrs = g.neighbors(u);
  return {nbrs.begin(), nbrs.end()};
}

/// Random multigraph-free edge set via repeated add_edge attempts.
Graph random_build(std::size_t n, std::size_t attempts, util::Rng& rng) {
  Graph g(n);
  for (std::size_t i = 0; i < attempts; ++i) {
    g.add_edge(static_cast<NodeId>(rng.bounded(n)),
               static_cast<NodeId>(rng.bounded(n)));
  }
  return g;
}

TEST(CsrGraph, FreezePreservesNeighborOrderExactly) {
  util::Rng rng(11);
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.bounded(120);
    Graph g = random_build(n, 4 * n, rng);

    std::vector<std::vector<NodeId>> before(n);
    for (NodeId u = 0; u < n; ++u) before[u] = neighbor_list(g, u);
    const std::size_t edges = g.num_edges();

    g.freeze();
    ASSERT_TRUE(g.frozen());
    EXPECT_EQ(g.num_edges(), edges);
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(neighbor_list(g, u), before[u]) << "node " << u;
      EXPECT_EQ(g.degree(u), before[u].size());
    }
    g.freeze();  // idempotent
    ASSERT_TRUE(g.frozen());
  }
}

TEST(CsrGraph, MutationThawsAndRefreezeRoundTrips) {
  util::Rng rng(12);
  Graph g = random_build(60, 240, rng);
  g.freeze();

  // Pick an existing edge off the frozen form, remove it, re-add it.
  NodeId u = 0;
  while (g.degree(u) == 0) ++u;
  const NodeId v = g.neighbors(u)[0];
  ASSERT_TRUE(g.remove_edge(u, v));  // implicit thaw
  EXPECT_FALSE(g.frozen());
  EXPECT_FALSE(g.has_edge(u, v));
  ASSERT_TRUE(g.add_edge(u, v));

  std::vector<std::vector<NodeId>> before(g.num_nodes());
  for (NodeId w = 0; w < g.num_nodes(); ++w) before[w] = neighbor_list(g, w);
  g.freeze();
  for (NodeId w = 0; w < g.num_nodes(); ++w) {
    EXPECT_EQ(neighbor_list(g, w), before[w]);
  }
  EXPECT_TRUE(g.has_edge(u, v));
  EXPECT_FALSE(g.add_edge(u, v));  // duplicate still rejected while frozen
  EXPECT_TRUE(g.frozen());         // rejected add must not thaw
}

TEST(CsrGraph, GeneratorsReturnFrozenConnectedGraphs) {
  util::Rng rng(13);
  const Graph a = overlay::random_graph(300, 6.0, rng);
  EXPECT_TRUE(a.frozen());
  EXPECT_TRUE(a.is_connected());
  const Graph b = overlay::random_regular(300, 6, rng);
  EXPECT_TRUE(b.frozen());
  const Graph c = overlay::barabasi_albert(300, 3, rng);
  EXPECT_TRUE(c.frozen());
  const Graph d = overlay::watts_strogatz(300, 6, 0.1, rng);
  EXPECT_TRUE(d.frozen());
  overlay::TwoTierParams tp;
  tp.num_nodes = 400;
  EXPECT_TRUE(overlay::gnutella_two_tier(tp, rng).graph.frozen());
  overlay::GiaParams gp;
  gp.num_nodes = 300;
  EXPECT_TRUE(overlay::gia_topology(gp, rng).graph.frozen());
}

/// Randomized library: `peers` peers, each holding geometric-ish object
/// counts with small random term sets over a vocabulary of `vocab`.
PeerStore random_store(std::size_t peers, std::size_t vocab, util::Rng& rng) {
  PeerStore store(peers);
  std::uint64_t next_id = 1;
  for (NodeId p = 0; p < peers; ++p) {
    const std::size_t objects = rng.bounded(8);  // includes empty peers
    for (std::size_t o = 0; o < objects; ++o) {
      std::vector<TermId> terms;
      const std::size_t nterms = 1 + rng.bounded(5);
      for (std::size_t t = 0; t < nterms; ++t) {
        terms.push_back(static_cast<TermId>(rng.bounded(vocab)));
      }
      store.add_object(p, next_id++, terms);
    }
  }
  return store;
}

TEST(InvertedIndexPeerStore, MatchAgreesWithReferenceOnRandomLibraries) {
  util::Rng rng(21);
  for (std::size_t trial = 0; trial < 15; ++trial) {
    const std::size_t peers = 1 + rng.bounded(40);
    const std::size_t vocab = 4 + rng.bounded(60);
    PeerStore store = random_store(peers, vocab, rng);
    store.finalize();

    PeerStore::MatchScratch scratch;
    for (std::size_t q = 0; q < 200; ++q) {
      const auto peer = static_cast<NodeId>(rng.bounded(peers));
      std::vector<TermId> query;
      const std::size_t nterms = rng.bounded(4);  // includes empty queries
      for (std::size_t t = 0; t < nterms; ++t) {
        query.push_back(static_cast<TermId>(rng.bounded(vocab)));
      }
      std::sort(query.begin(), query.end());
      query.erase(std::unique(query.begin(), query.end()), query.end());

      const auto expected = store.match_reference(peer, query);
      const auto flat = store.match(peer, query, scratch);
      EXPECT_EQ(std::vector<std::uint64_t>(flat.begin(), flat.end()), expected)
          << "peer " << peer << " trial " << trial;
      EXPECT_EQ(store.match(peer, query), expected);  // wrapper overload

      // may_match is a sound prefilter: never a false negative, and it
      // answers exactly "peer holds every query term somewhere".
      if (!expected.empty()) {
        EXPECT_TRUE(store.may_match(peer, query));
      }
      const auto terms = store.peer_terms(peer);
      const bool holds_all =
          std::all_of(query.begin(), query.end(), [&](TermId t) {
            return std::binary_search(terms.begin(), terms.end(), t);
          });
      EXPECT_EQ(store.may_match(peer, query), holds_all);
    }
  }
}

TEST(InvertedIndexPeerStore, UnfinalizedStoreFallsBackToReference) {
  util::Rng rng(22);
  PeerStore store = random_store(10, 20, rng);
  ASSERT_FALSE(store.finalized());
  const std::vector<TermId> query{3, 7};
  for (NodeId p = 0; p < 10; ++p) {
    EXPECT_EQ(store.match(p, query), store.match_reference(p, query));
  }
  store.finalize();
  EXPECT_TRUE(store.finalized());
  // Adding after finalize() drops back to the build phase.
  store.add_object(0, 99'999, {3, 7});
  EXPECT_FALSE(store.finalized());
  EXPECT_EQ(store.match(0, query), store.match_reference(0, query));
}

/// Shared fixture for the engine-determinism tests: a small crawl-backed
/// network, object-derived queries.
struct EngineFixture {
  static constexpr std::size_t kNodes = 300;
  sim::PeerStore store;
  overlay::Graph graph;
  std::vector<std::vector<TermId>> queries;

  EngineFixture() : store(0), graph(0) {
    trace::ContentModelParams mp;
    mp.core_lexicon_size = 400;
    mp.tail_lexicon_size = 2'000;
    mp.catalog_songs = 3'000;
    mp.artists = 300;
    mp.seed = 5;
    const trace::ContentModel model(mp);
    trace::GnutellaCrawlParams cp;
    cp.num_peers = 400;
    cp.seed = 5;
    const trace::CrawlSnapshot crawl = generate_gnutella_crawl(model, cp);
    store = sim::peer_store_from_crawl(crawl, kNodes);

    util::Rng rng(5);
    graph = overlay::random_regular(kNodes, 6, rng);

    util::Rng qrng(6);
    std::size_t guard = 0;
    while (queries.size() < 60 && guard++ < 10'000) {
      const auto peer = static_cast<NodeId>(qrng.bounded(kNodes));
      if (store.objects(peer).empty()) continue;
      const auto& obj =
          store.objects(peer)[qrng.bounded(store.objects(peer).size())];
      if (obj.terms.empty()) continue;
      const std::size_t take =
          1 + qrng.bounded(std::min<std::size_t>(2, obj.terms.size()));
      queries.emplace_back(obj.terms.begin(),
                           obj.terms.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(take, obj.terms.size())));
    }
  }
};

const EngineFixture& engine_fixture() {
  static const EngineFixture fx;
  return fx;
}

void expect_same_aggregate(const sim::TrialAggregate& a,
                           const sim::TrialAggregate& b, const char* what) {
  EXPECT_EQ(a.trials, b.trials) << what;
  EXPECT_EQ(a.successes, b.successes) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.peers_probed, b.peers_probed) << what;
  EXPECT_EQ(a.extra, b.extra) << what;
}

TEST(EngineDeterminism, AllFiveEnginesBitIdenticalAcrossThreadCounts) {
  const EngineFixture& fx = engine_fixture();
  sim::ChordDht dht(EngineFixture::kNodes, 77);
  dht.publish_store(fx.store);

  overlay::GiaParams gp;
  gp.num_nodes = EngineFixture::kNodes;
  util::Rng grng(9);
  const sim::GiaNetwork gia(overlay::gia_topology(gp, grng), fx.store);

  overlay::TwoTierParams tp;
  tp.num_nodes = EngineFixture::kNodes;
  util::Rng trng(10);
  const overlay::TwoTierTopology two_tier = overlay::gnutella_two_tier(tp, trng);
  const sim::PeerStore tt_store = fx.store;  // same content, two-tier graph

  sim::RandomWalkParams wp;
  wp.walkers = 4;
  wp.max_steps = 32;
  sim::GiaSearchParams gsp;
  gsp.max_steps = 128;
  const sim::HybridParams hp{2, 20};

  const auto run_all = [&](std::size_t threads) {
    const sim::TrialRunner runner({threads, 123});
    const auto make_scratch = [] { return sim::SearchScratch{}; };
    std::vector<sim::TrialAggregate> out;
    out.push_back(runner.run(
        fx.queries.size(), make_scratch,
        [&](std::size_t q, util::Rng& rng, sim::SearchScratch& scratch) {
          const auto src = static_cast<NodeId>(rng.bounded(fx.graph.num_nodes()));
          const auto r =
              sim::flood_search(fx.graph, fx.store, src, fx.queries[q], 2,
                                scratch);
          sim::TrialOutcome o;
          o.success = !r.results.empty();
          o.messages = r.messages;
          o.peers_probed = r.peers_probed;
          return o;
        }));
    out.push_back(runner.run(
        fx.queries.size(), make_scratch,
        [&](std::size_t q, util::Rng& rng, sim::SearchScratch& scratch) {
          const auto src = static_cast<NodeId>(rng.bounded(fx.graph.num_nodes()));
          const auto r = sim::random_walk_search(fx.graph, fx.store, src,
                                                 fx.queries[q], wp, rng,
                                                 scratch);
          sim::TrialOutcome o;
          o.success = r.success;
          o.messages = r.messages;
          o.peers_probed = r.peers_probed;
          return o;
        }));
    out.push_back(runner.run(
        fx.queries.size(), make_scratch,
        [&](std::size_t q, util::Rng& rng, sim::SearchScratch& scratch) {
          const auto src = static_cast<NodeId>(rng.bounded(fx.graph.num_nodes()));
          const auto r = gia.search(src, fx.queries[q], gsp, rng, scratch);
          sim::TrialOutcome o;
          o.success = r.success;
          o.messages = r.messages;
          o.peers_probed = r.peers_probed;
          return o;
        }));
    out.push_back(runner.run(
        fx.queries.size(), make_scratch,
        [&](std::size_t q, util::Rng& rng, sim::SearchScratch& scratch) {
          const auto src = static_cast<NodeId>(rng.bounded(fx.graph.num_nodes()));
          const auto r = sim::hybrid_search(fx.graph, fx.store, dht, src,
                                            fx.queries[q], hp, scratch);
          sim::TrialOutcome o;
          o.success = r.success();
          o.messages = r.total_messages();
          return o;
        }));
    // QRP is stateful (engine + epoch marks), so each worker shard owns a
    // whole network; search order across shards must not matter.
    out.push_back(runner.run(
        fx.queries.size(),
        [&] { return sim::QrpNetwork(two_tier, tt_store, 4'096); },
        [&](std::size_t q, util::Rng& rng, sim::QrpNetwork& qrp) {
          const auto src = static_cast<NodeId>(rng.bounded(tt_store.num_peers()));
          const auto r = qrp.search(src, fx.queries[q], 2);
          sim::TrialOutcome o;
          o.success = !r.results.empty();
          o.messages = r.total_messages();
          o.peers_probed = r.peers_probed;
          return o;
        }));
    return out;
  };

  const auto t1 = run_all(1);
  const auto t2 = run_all(2);
  const auto t8 = run_all(8);
  const char* names[] = {"flood", "random-walk", "gia", "hybrid", "qrp"};
  ASSERT_EQ(t1.size(), std::size(names));
  for (std::size_t i = 0; i < t1.size(); ++i) {
    expect_same_aggregate(t1[i], t2[i], names[i]);
    expect_same_aggregate(t1[i], t8[i], names[i]);
  }
}

TEST(EngineDeterminism, ScratchReuseMatchesFreshScratch) {
  const EngineFixture& fx = engine_fixture();
  sim::SearchScratch reused;
  for (std::size_t q = 0; q < fx.queries.size(); ++q) {
    const auto src = static_cast<NodeId>(q % fx.graph.num_nodes());
    const auto warm =
        sim::flood_search(fx.graph, fx.store, src, fx.queries[q], 2, reused);
    sim::SearchScratch fresh;
    const auto cold =
        sim::flood_search(fx.graph, fx.store, src, fx.queries[q], 2, fresh);
    EXPECT_EQ(warm.results, cold.results);
    EXPECT_EQ(warm.messages, cold.messages);
    EXPECT_EQ(warm.peers_probed, cold.peers_probed);
  }
}

}  // namespace
}  // namespace qcp2p
