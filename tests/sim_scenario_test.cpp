// Structured failure scenarios: the Gilbert–Elliott burst channel,
// partition cuts with heal schedules, heavy-tailed stragglers, mid-query
// churn, the named-scenario registry, and the adaptive recovery pieces
// (latency estimator, hedging, circuit breaker) they drive.
// (Inert-scenario bit-identity and thread-count invariance live in
// sim_engine_conformance_test.)
#include "src/sim/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/overlay/topology.hpp"
#include "src/sim/engine_registry.hpp"
#include "src/sim/fault_decorator.hpp"

namespace qcp2p::sim {
namespace {

Graph ring_graph(std::size_t n) {
  util::Rng rng(3);
  return overlay::random_regular(n, 6, rng);
}

TEST(ScenarioRegistry, EveryEntryIsNamedValidAndFindable) {
  ASSERT_FALSE(scenario_registry().empty());
  for (const Scenario& s : scenario_registry()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty());
    EXPECT_NO_THROW(s.spec.validate());
    const Scenario* found = find_scenario(s.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &s);
    EXPECT_NE(scenario_names().find(s.name), std::string::npos);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(BurstLoss, StationaryBadAndActivation) {
  BurstLossParams p;
  EXPECT_FALSE(p.active());
  p.loss_bad = 0.9;
  p.p_good_to_bad = 0.1;
  p.p_bad_to_good = 0.3;
  EXPECT_TRUE(p.active());
  EXPECT_NEAR(p.stationary_bad(), 0.1 / 0.4, 1e-12);
}

TEST(BurstLoss, AlwaysBadChannelDropsEverything) {
  ScenarioSpec spec;
  spec.burst.loss_good = 0.0;
  spec.burst.loss_bad = 1.0;
  spec.burst.p_good_to_bad = 1.0;
  spec.burst.p_bad_to_good = 0.0;  // stationary: always Bad
  const Graph g = ring_graph(50);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 9);
  FaultSession s(plan, 0);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(s.deliver(1, 2));
  EXPECT_EQ(s.dropped(), 50u);
}

TEST(BurstLoss, DropsAreDeterministicPerTrialAndCorrelated) {
  ScenarioSpec spec;
  spec.burst.loss_good = 0.0;
  spec.burst.loss_bad = 0.95;
  spec.burst.p_good_to_bad = 0.05;
  spec.burst.p_bad_to_good = 0.2;
  const Graph g = ring_graph(50);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 17);

  // Same trial -> identical drop sequence (the chain is replayable).
  std::vector<bool> first, second;
  {
    FaultSession a(plan, 4);
    for (int i = 0; i < 400; ++i) first.push_back(a.deliver(1, 2));
  }
  {
    FaultSession b(plan, 4);
    for (int i = 0; i < 400; ++i) second.push_back(b.deliver(1, 2));
  }
  EXPECT_EQ(first, second);

  // Correlation: a drop is far more likely right after a drop than the
  // marginal rate (that is what "bursty" means). Pool many trials.
  std::size_t drops = 0, pairs_after_drop = 0, drops_after_drop = 0, total = 0;
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    FaultSession s(plan, trial);
    bool prev_dropped = false;
    for (int i = 0; i < 300; ++i) {
      const bool ok = s.deliver(1, 2);
      ++total;
      drops += !ok;
      if (prev_dropped) {
        ++pairs_after_drop;
        drops_after_drop += !ok;
      }
      prev_dropped = !ok;
    }
  }
  const double marginal = static_cast<double>(drops) / static_cast<double>(total);
  const double conditional = static_cast<double>(drops_after_drop) /
                             static_cast<double>(pairs_after_drop);
  EXPECT_GT(marginal, 0.05);
  EXPECT_LT(marginal, 0.5);
  EXPECT_GT(conditional, marginal * 1.5);
}

TEST(Partition, CutsCrossEdgesUntilHealed) {
  ScenarioSpec spec;
  spec.partition.minority_fraction = 0.3;
  spec.partition.heal_after_index = 10;
  const Graph g = ring_graph(100);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 21);
  ASSERT_TRUE(plan.partition_active());

  const auto& side = plan.partition_side();
  const auto minority = static_cast<std::size_t>(
      std::count(side.begin(), side.end(), std::uint8_t{1}));
  EXPECT_GE(minority, 15u);
  EXPECT_LE(minority, 45u);

  NodeId inside = 0, outside = 0;
  for (NodeId v = 0; v < 100; ++v) (side[v] ? inside : outside) = v;
  EXPECT_TRUE(plan.cut(inside, outside, 0));
  EXPECT_TRUE(plan.cut(outside, inside, 9));
  EXPECT_FALSE(plan.cut(inside, outside, 10));  // healed
  EXPECT_FALSE(plan.cut(inside, inside, 0));    // same side
  // A healing partition never severs permanently; degradation counts
  // these holders as reachable.
  EXPECT_FALSE(plan.severed(inside, outside));
  EXPECT_TRUE(plan.reachable_at_launch(outside, inside));

  // Session-level: messages across the cut are dropped while the
  // session's message index is below the heal point, delivered after.
  FaultSession s(plan, 0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(s.deliver(inside, outside));
  EXPECT_TRUE(s.deliver(inside, outside));
  EXPECT_EQ(s.dropped(), 10u);
}

TEST(Partition, PermanentSplitSeversReachability) {
  ScenarioSpec spec;
  spec.partition.minority_fraction = 0.25;  // heal_after_index = kNeverHeals
  const Graph g = ring_graph(80);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 8);
  const auto& side = plan.partition_side();
  NodeId inside = 0, outside = 0;
  for (NodeId v = 0; v < 80; ++v) (side[v] ? inside : outside) = v;
  EXPECT_TRUE(plan.severed(inside, outside));
  EXPECT_FALSE(plan.reachable_at_launch(outside, inside));
  EXPECT_TRUE(plan.reachable_at_launch(outside, outside));
}

TEST(Straggler, ScalesAreCappedDeterministicAndHitTheFraction) {
  ScenarioSpec spec;
  spec.straggler.fraction = 0.5;
  spec.straggler.tail_alpha = 1.2;
  spec.straggler.max_multiplier = 10.0;
  const Graph g = ring_graph(200);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 33);
  std::size_t stragglers = 0;
  for (NodeId v = 0; v < 200; ++v) {
    const double scale = plan.straggler_scale(7, v);
    EXPECT_GE(scale, 1.0);
    EXPECT_LE(scale, 10.0);
    EXPECT_DOUBLE_EQ(scale, plan.straggler_scale(7, v));  // deterministic
    stragglers += scale > 1.0;
  }
  EXPECT_GE(stragglers, 60u);
  EXPECT_LE(stragglers, 140u);
  // Inactive shape: everyone is a non-straggler.
  EXPECT_DOUBLE_EQ(FaultPlan{}.straggler_scale(7, 3), 1.0);
}

TEST(MidQueryChurn, VictimsCrashWithinTheHorizonAndStayDown) {
  ScenarioSpec spec;
  spec.mid_churn.crash_fraction = 1.0;  // everyone is a victim
  spec.mid_churn.horizon_index = 10;
  const Graph g = ring_graph(40);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 2);

  for (NodeId v = 0; v < 40; ++v) {
    const std::uint64_t crash = plan.crash_index(0, v);
    EXPECT_GE(crash, 1u);
    EXPECT_LE(crash, 10u);
    // Liveness is monotone: once down, down for good.
    bool was_down = false;
    for (std::uint64_t i = 0; i <= 12; ++i) {
      const bool up = plan.online(v, 0, i);
      if (was_down) {
        EXPECT_FALSE(up);
      }
      was_down = !up;
    }
    EXPECT_TRUE(plan.online(v, 0, 0));  // nobody is dead at launch
  }

  // Session view: after the horizon's worth of messages, every victim is
  // down — and observing that flips the session's fault suspicion.
  FaultSession s(plan, 0);
  EXPECT_FALSE(s.suspects_faults());
  for (int i = 0; i < 10; ++i) s.deliver();
  for (NodeId v = 0; v < 40; ++v) EXPECT_FALSE(s.online(v));
  EXPECT_TRUE(s.suspects_faults());
}

TEST(MidQueryChurn, CrashFractionSelectsRoughlyThatManyVictims) {
  ScenarioSpec spec;
  spec.mid_churn.crash_fraction = 0.25;
  spec.mid_churn.horizon_index = 100;
  const Graph g = ring_graph(400);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 12);
  std::size_t victims = 0;
  for (NodeId v = 0; v < 400; ++v) {
    victims += plan.crash_index(1, v) != kNeverHeals;
  }
  EXPECT_GE(victims, 60u);
  EXPECT_LE(victims, 140u);
}

TEST(FaultSessionAdaptive, BreakerTripsAfterRepeatedFailures) {
  FaultParams params;
  const FaultPlan plan(params, std::vector<bool>(20, false));  // all dead
  FaultSession s(plan, 0);
  s.arm_breaker(2);
  EXPECT_FALSE(s.tripped(5));
  EXPECT_FALSE(s.online(5));
  EXPECT_FALSE(s.tripped(5));  // one failure: still closed
  EXPECT_FALSE(s.online(5));
  EXPECT_TRUE(s.tripped(5));  // two failures: open
  EXPECT_FALSE(s.tripped(6));  // per-neighbor, not global

  // Peeking is side-effect free: it never trips the breaker.
  FaultSession peeker(plan, 0);
  peeker.arm_breaker(1);
  EXPECT_FALSE(peeker.online_peek(5));
  EXPECT_FALSE(peeker.online_peek(5));
  EXPECT_FALSE(peeker.tripped(5));

  // Disarmed (the default): failures never trip anything.
  FaultSession unarmed(plan, 0);
  EXPECT_FALSE(unarmed.online(5));
  EXPECT_FALSE(unarmed.online(5));
  EXPECT_FALSE(unarmed.tripped(5));
}

TEST(FaultSessionAdaptive, LatencyEstimatorTracksJitterQuantiles) {
  FaultParams params;
  params.jitter_max_ms = 50.0;
  const FaultPlan plan(params);
  FaultSession s(plan, 3);
  EXPECT_FALSE(s.has_latency_samples());
  EXPECT_DOUBLE_EQ(s.latency_quantile(0.9, 999.0), 999.0);  // fallback
  for (int i = 0; i < 300; ++i) s.deliver_timed();
  ASSERT_TRUE(s.has_latency_samples());
  const double q50 = s.latency_quantile(0.5, 999.0);
  const double q95 = s.latency_quantile(0.95, 999.0);
  EXPECT_GT(q50, 0.0);
  EXPECT_LE(q95, 50.0);
  EXPECT_LE(q50, q95);

  // Zero-signal plans never observe: the estimator stays on fallback, so
  // adaptive timeouts degrade to the fixed ones (inert transparency).
  const FaultPlan inert_plan;
  FaultSession inert(inert_plan, 3);
  inert.observe_latency(123.0);
  EXPECT_FALSE(inert.has_latency_samples());
}

TEST(DegradationRecord, SplitsFailureModes) {
  DegradationRecord nothing{5, 0, 0};
  EXPECT_TRUE(nothing.nothing_reachable());
  EXPECT_FALSE(nothing.gave_up_early(false));  // graceful: nothing to find

  DegradationRecord gave_up{5, 3, 0};
  EXPECT_FALSE(gave_up.nothing_reachable());
  EXPECT_TRUE(gave_up.gave_up_early(false));
  EXPECT_FALSE(gave_up.gave_up_early(true));  // success is never giving up
}

TEST(ScenarioCompile, SeedsDrawIndependentFaultPatterns) {
  const Scenario* scenario = find_scenario("straggler-tail");
  ASSERT_NE(scenario, nullptr);
  const Graph g = ring_graph(150);
  const FaultPlan a = FaultPlan::from_scenario(scenario->spec, g, 1);
  const FaultPlan b = FaultPlan::from_scenario(scenario->spec, g, 2);
  bool any_difference = false;
  for (NodeId v = 0; v < 150 && !any_difference; ++v) {
    any_difference = a.straggler_scale(0, v) != b.straggler_scale(0, v);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioCompile, OfflineFractionSamplesAStaticMask) {
  ScenarioSpec spec;
  spec.offline_fraction = 0.2;
  const Graph g = ring_graph(300);
  const FaultPlan plan = FaultPlan::from_scenario(spec, g, 5);
  ASSERT_NE(plan.online_mask(), nullptr);
  std::size_t offline = 0;
  for (NodeId v = 0; v < 300; ++v) offline += !plan.online(v);
  EXPECT_GE(offline, 30u);
  EXPECT_LE(offline, 90u);
}

TEST(ScenarioCompile, InvalidSpecsThrow) {
  const Graph g = ring_graph(20);
  ScenarioSpec bad_burst;
  bad_burst.burst.loss_bad = 1.5;
  EXPECT_THROW(FaultPlan::from_scenario(bad_burst, g, 1),
               std::invalid_argument);
  ScenarioSpec bad_partition;
  bad_partition.partition.minority_fraction = 0.9;  // majority "minority"
  EXPECT_THROW(FaultPlan::from_scenario(bad_partition, g, 1),
               std::invalid_argument);
  ScenarioSpec bad_straggler;
  bad_straggler.straggler.fraction = 0.1;
  bad_straggler.straggler.max_multiplier = 0.5;
  EXPECT_THROW(FaultPlan::from_scenario(bad_straggler, g, 1),
               std::invalid_argument);
  ScenarioSpec bad_churn;
  bad_churn.mid_churn.crash_fraction = std::nan("");
  EXPECT_THROW(FaultPlan::from_scenario(bad_churn, g, 1),
               std::invalid_argument);
  ScenarioSpec bad_offline;
  bad_offline.offline_fraction = -0.1;
  EXPECT_THROW(FaultPlan::from_scenario(bad_offline, g, 1),
               std::invalid_argument);
}

// Hedging fires only under suspicion: an engine that fails with zero
// fault evidence gets no hedges (re-asking an identical question is
// pointless), while a lossy plan does hedge.
TEST(HedgedRecovery, HedgesRequireFaultSuspicion) {
  constexpr std::size_t kNodes = 120;
  util::Rng rng(6);
  const Graph graph = overlay::random_regular(kNodes, 6, rng);
  PeerStore store(kNodes);
  store.add_object(3, 1, {7, 8});  // a single rare object
  store.finalize();
  EngineWorld world;
  world.graph = &graph;
  world.store = &store;
  const auto flood = make_engine("flood", world);
  ASSERT_NE(flood, nullptr);

  RecoveryPolicy policy;
  policy.max_retries = 0;
  policy.max_hedges = 3;

  Query query;
  const std::vector<TermId> terms{9};  // matches nothing anywhere
  query.terms = terms;
  query.source = 0;
  query.ttl = 2;

  // Inert plan: the query fails with no fault evidence -> zero hedges.
  const FaultPlan inert;
  EngineContext ctx;
  util::Rng qrng(1);
  ctx.rng = &qrng;
  const auto clean = with_faults(*flood, inert, policy).search(query, ctx);
  EXPECT_FALSE(clean.success);
  EXPECT_EQ(clean.fault.hedges, 0u);
  EXPECT_EQ(clean.fault.retries, 0u);

  // Heavy loss: drops are observed, hedges fire (and are capped).
  FaultParams lossy;
  lossy.loss_rate = 0.6;
  lossy.seed = 99;
  const FaultPlan plan(lossy);
  std::uint64_t total_hedges = 0;
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    util::Rng trng(trial);
    ctx.rng = &trng;
    query.trial = trial;
    const auto out = with_faults(*flood, plan, policy).search(query, ctx);
    EXPECT_LE(out.fault.hedges, 3u);
    total_hedges += out.fault.hedges;
  }
  EXPECT_GT(total_hedges, 0u);
}

}  // namespace
}  // namespace qcp2p::sim
