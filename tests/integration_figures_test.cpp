// End-to-end integration tests: each paper figure's pipeline is run at a
// tiny scale and its *shape* asserted — the same code paths as the bench
// binaries, faster and deterministic.
#include <gtest/gtest.h>

#include "src/analysis/query_analysis.hpp"
#include "src/analysis/replication.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/hybrid.hpp"
#include "src/trace/gnutella.hpp"
#include "src/trace/itunes.hpp"
#include "src/trace/query_trace.hpp"
#include "src/util/stats.hpp"

namespace qcp2p {
namespace {

using overlay::NodeId;

trace::ContentModelParams tiny_model_params() {
  trace::ContentModelParams p;
  p.core_lexicon_size = 3'000;
  p.catalog_songs = 40'000;
  p.artists = 25'000;
  p.seed = 101;
  return p;
}

struct PipelineFixture : ::testing::Test {
  static void SetUpTestSuite() {
    model = new trace::ContentModel(tiny_model_params());
    trace::GnutellaCrawlParams cp = trace::GnutellaCrawlParams{}.scaled(0.02);
    cp.seed = 7;
    crawl = new trace::CrawlSnapshot(
        trace::generate_gnutella_crawl(*model, cp));
    trace::QueryTraceParams qp;
    qp.num_queries = 150'000;
    qp.duration_hours = 84.0;
    qp.background_lexicon = 30'000;
    qp.seed = 13;
    queries = new trace::QueryTrace(trace::generate_query_trace(*model, qp));
  }
  static void TearDownTestSuite() {
    delete queries;
    delete crawl;
    delete model;
    queries = nullptr;
    crawl = nullptr;
    model = nullptr;
  }

  static trace::ContentModel* model;
  static trace::CrawlSnapshot* crawl;
  static trace::QueryTrace* queries;
};

trace::ContentModel* PipelineFixture::model = nullptr;
trace::CrawlSnapshot* PipelineFixture::crawl = nullptr;
trace::QueryTrace* PipelineFixture::queries = nullptr;

// Fig 1-3 shape: long tail across objects, sanitized objects, and terms.
TEST_F(PipelineFixture, Fig1To3LongTails) {
  const auto objects = crawl->object_replica_counts();
  const auto sanitized = crawl->sanitized_replica_counts();
  const auto terms = crawl->term_peer_counts();
  for (const auto& counts : {objects, sanitized, terms}) {
    const auto s = analysis::summarize_replication(counts, crawl->num_peers());
    EXPECT_GT(s.singleton_fraction, 0.5);
    // Paper's cut is "on <= 37 peers"; the absolute cut transfers to the
    // scaled crawl because per-object replica counts are preserved.
    EXPECT_GT(util::fraction_at_or_below(counts, 37), 0.95);
  }
  EXPECT_LT(sanitized.size(), objects.size());
}

// Fig 4 shape: iTunes annotations are long-tailed too.
TEST_F(PipelineFixture, Fig4ItunesAnnotations) {
  trace::ItunesCrawlParams ip;
  ip.num_clients = 60;
  ip.mean_tracks_per_client = 400;
  const trace::ItunesSnapshot snap = generate_itunes_crawl(*model, ip);
  EXPECT_GT(util::singleton_fraction(snap.song_client_counts()), 0.4);
  EXPECT_GT(util::singleton_fraction(snap.album_client_counts()), 0.3);
  EXPECT_GT(util::singleton_fraction(snap.artist_client_counts()), 0.2);
}

// Fig 5/6/7 shape: transients exist but are few; the popular set is
// stable; the query/file overlap is low — and stability >> disconnect.
TEST_F(PipelineFixture, Fig5To7TemporalProperties) {
  // 2-hour intervals keep per-interval counts near the paper's density
  // at this reduced trace volume.
  const analysis::QueryTermAnalyzer analyzer(
      queries->queries(), queries->duration_s(), 7'200.0, 0.10);

  const auto transients =
      analyzer.transient_count_series(analysis::TransientPolicy{});
  util::RunningStats transient_stats;
  for (auto c : transients) transient_stats.add(c);
  EXPECT_LT(transient_stats.mean(), 10.0);   // "overall mean was low"
  EXPECT_GT(transient_stats.max(), 0.0);     // but bursts do occur

  analysis::PopularPolicy policy;
  policy.top_k = 50;
  const auto stability = analyzer.stability_series(policy);
  ASSERT_GT(stability.size(), 10u);
  // Skip the warm-up the paper also excludes; then require a high mean.
  util::RunningStats stab;
  for (std::size_t i = stability.size() / 4; i < stability.size(); ++i) {
    stab.add(stability[i]);
  }
  EXPECT_GT(stab.mean(), 0.80);

  const auto file_terms = crawl->popular_file_terms(50);
  const auto disconnect = analyzer.disconnect_series(file_terms, policy);
  util::RunningStats disc;
  for (double j : disconnect) disc.add(j);
  EXPECT_LT(disc.mean(), 0.25);       // paper: < 20%, ~15%
  EXPECT_GT(disc.mean(), 0.01);       // but not fully disjoint
  EXPECT_GT(stab.mean(), 3.0 * disc.mean());
}

// Fig 8 shape: Zipf placement tracks the WORST uniform curve, and the
// uniform curves order by replication ratio.
TEST_F(PipelineFixture, Fig8ZipfVsUniformFloodSuccess) {
  constexpr std::size_t kNodes = 4'000;  // scaled-down 40k
  util::Rng rng(3);
  overlay::TwoTierParams tp;
  tp.num_nodes = kNodes;
  const overlay::TwoTierTopology topo = overlay::gnutella_two_tier(tp, rng);

  const auto crawl_counts = crawl->object_replica_counts();
  constexpr int kTrials = 400;
  constexpr std::uint32_t kTtl = 3;

  sim::FloodEngine engine(topo.graph);
  auto success_rate = [&](const std::vector<std::uint64_t>& counts) {
    util::Rng prng(17);
    const sim::Placement placement =
        sim::place_by_counts(counts, kNodes, prng);
    int ok = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto src = static_cast<NodeId>(prng.bounded(kNodes));
      const auto obj = prng.bounded(placement.num_objects());
      ok += engine.reaches_any(src, kTtl, placement.holders[obj],
                               &topo.is_ultrapeer);
    }
    return static_cast<double>(ok) / kTrials;
  };

  // Uniform curves: 2 vs 40 copies (0.05% vs 1% at this scale).
  const double uni2 = success_rate(std::vector<std::uint64_t>(500, 2));
  const double uni40 = success_rate(std::vector<std::uint64_t>(500, 40));
  util::Rng sample_rng(5);
  const double zipf = success_rate(
      sim::sample_replica_counts(crawl_counts, 2'000, sample_rng));

  EXPECT_GT(uni40, uni2);
  EXPECT_LT(zipf, uni40 * 0.7);  // Zipf far below the high-uniform curve
  EXPECT_LE(zipf, uni2 + 0.25);  // and near the bottom curve
}

// Section V/VII: hybrid pays flood + DHT almost every time under Zipf
// content, so it costs more messages than DHT-only at equal success.
TEST_F(PipelineFixture, HybridCostsMoreThanDhtUnderZipf) {
  constexpr std::size_t kNodes = 600;
  util::Rng rng(9);
  const overlay::Graph graph = overlay::random_regular(kNodes, 8, rng);
  const sim::PeerStore store = sim::peer_store_from_crawl(*crawl, kNodes);
  sim::ChordDht dht(kNodes);
  dht.publish_store(store);

  sim::HybridParams hp;
  hp.flood_ttl = 2;
  hp.rare_cutoff = 20;

  // Queries drawn from real object annotations (so DHT can resolve them).
  util::Rng qrng(31);
  std::uint64_t hybrid_msgs = 0, dht_msgs = 0;
  int hybrid_ok = 0, dht_ok = 0, trials = 0;
  for (int t = 0; t < 60; ++t) {
    const auto peer = static_cast<NodeId>(qrng.bounded(kNodes));
    if (store.objects(peer).empty()) continue;
    const auto& obj =
        store.objects(peer)[qrng.bounded(store.objects(peer).size())];
    if (obj.terms.empty()) continue;
    std::vector<sim::TermId> q{obj.terms[qrng.bounded(obj.terms.size())]};
    const auto src = static_cast<NodeId>(qrng.bounded(kNodes));

    const auto hr = sim::hybrid_search(graph, store, dht, src, q, hp);
    const auto dr = sim::dht_only_search(dht, src, q);
    hybrid_msgs += hr.total_messages();
    dht_msgs += dr.total_messages();
    hybrid_ok += hr.success();
    dht_ok += dr.success();
    ++trials;
  }
  ASSERT_GT(trials, 30);
  EXPECT_GE(hybrid_ok, dht_ok);  // hybrid can only add results
  EXPECT_GT(hybrid_msgs, dht_msgs);  // ...but pays the failed floods
}

}  // namespace
}  // namespace qcp2p
