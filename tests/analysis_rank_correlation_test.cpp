#include <gtest/gtest.h>

#include "src/analysis/query_analysis.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::analysis {
namespace {

using trace::Query;

std::vector<Query> interval_stream(
    const std::vector<std::vector<std::pair<TermId, int>>>& interval_counts,
    double interval_s) {
  std::vector<Query> queries;
  for (std::size_t t = 0; t < interval_counts.size(); ++t) {
    for (const auto& [term, count] : interval_counts[t]) {
      for (int i = 0; i < count; ++i) {
        queries.push_back({(static_cast<double>(t) + 0.5) * interval_s, {term}});
      }
    }
  }
  return queries;
}

TEST(RankCorrelation, IdenticalRankingsScoreOne) {
  const std::vector<std::vector<std::pair<TermId, int>>> data{
      {{1, 30}, {2, 20}, {3, 10}},
      {{1, 30}, {2, 20}, {3, 10}},
      {{1, 30}, {2, 20}, {3, 10}},
  };
  const auto queries = interval_stream(data, 10.0);
  const QueryTermAnalyzer analyzer(queries, 30.0, 10.0, 0.0);
  PopularPolicy policy;
  policy.top_k = 3;
  policy.min_count = 1;
  for (double tau : analyzer.rank_correlation_series(policy)) {
    EXPECT_DOUBLE_EQ(tau, 1.0);
  }
}

TEST(RankCorrelation, ReversedRankingsScoreMinusOne) {
  const std::vector<std::vector<std::pair<TermId, int>>> data{
      {{1, 30}, {2, 20}, {3, 10}},
      {{1, 10}, {2, 20}, {3, 30}},
  };
  const auto queries = interval_stream(data, 10.0);
  const QueryTermAnalyzer analyzer(queries, 20.0, 10.0, 0.0);
  PopularPolicy policy;
  policy.top_k = 3;
  policy.min_count = 1;
  const auto series = analyzer.rank_correlation_series(policy);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], -1.0);
}

TEST(RankCorrelation, PartialShuffleLandsBetween) {
  const std::vector<std::vector<std::pair<TermId, int>>> data{
      {{1, 40}, {2, 30}, {3, 20}, {4, 10}},
      {{1, 40}, {2, 20}, {3, 30}, {4, 10}},  // one adjacent swap
  };
  const auto queries = interval_stream(data, 10.0);
  const QueryTermAnalyzer analyzer(queries, 20.0, 10.0, 0.0);
  PopularPolicy policy;
  policy.top_k = 4;
  policy.min_count = 1;
  const auto series = analyzer.rank_correlation_series(policy);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_GT(series[0], 0.3);
  EXPECT_LT(series[0], 1.0);
}

TEST(RankCorrelation, StationaryZipfStreamIsHighlyCorrelated) {
  util::Rng rng(3);
  std::vector<Query> queries;
  for (int t = 0; t < 12; ++t) {
    for (int i = 0; i < 3'000; ++i) {
      // Skewed stationary popularity over 30 terms.
      const TermId term = static_cast<TermId>(
          std::min<std::uint64_t>(29, rng.bounded(30) * rng.bounded(30) / 30));
      queries.push_back({t * 100.0 + 0.5, {term}});
    }
  }
  const QueryTermAnalyzer analyzer(queries, 1'200.0, 100.0, 0.0);
  PopularPolicy policy;
  policy.top_k = 15;
  double sum = 0;
  const auto series = analyzer.rank_correlation_series(policy);
  ASSERT_FALSE(series.empty());
  for (double tau : series) sum += tau;
  EXPECT_GT(sum / static_cast<double>(series.size()), 0.6);
}

TEST(RankCorrelation, EmptyAnalyzerYieldsEmptySeries) {
  const std::vector<Query> none;
  const QueryTermAnalyzer analyzer(none, 10.0, 10.0, 0.0);
  EXPECT_TRUE(analyzer.rank_correlation_series(PopularPolicy{}).empty());
}

}  // namespace
}  // namespace qcp2p::analysis
