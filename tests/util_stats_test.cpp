#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qcp2p::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantile, Validates) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.1), std::invalid_argument);
}

TEST(RankFrequency, SortsDescending) {
  const std::vector<std::uint64_t> counts{3, 1, 4, 1, 5};
  const auto curve = rank_frequency(counts);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_EQ(curve[0].y, 5.0);
  EXPECT_EQ(curve[0].x, 1.0);
  EXPECT_EQ(curve[4].y, 1.0);
  EXPECT_EQ(curve[4].x, 5.0);
}

TEST(Ccdf, FractionsAtOrAbove) {
  const std::vector<std::uint64_t> counts{1, 1, 2, 5};
  const auto curve = ccdf(counts);
  ASSERT_EQ(curve.size(), 3u);  // distinct values 1, 2, 5
  EXPECT_EQ(curve[0].x, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].y, 1.0);
  EXPECT_EQ(curve[1].x, 2.0);
  EXPECT_DOUBLE_EQ(curve[1].y, 0.5);
  EXPECT_EQ(curve[2].x, 5.0);
  EXPECT_DOUBLE_EQ(curve[2].y, 0.25);
}

TEST(FitZipf, ExactPowerLaw) {
  std::vector<CurvePoint> curve;
  for (int r = 1; r <= 200; ++r) {
    curve.push_back({static_cast<double>(r), 1000.0 * std::pow(r, -1.4)});
  }
  const ZipfFit fit = fit_zipf(curve);
  EXPECT_NEAR(fit.exponent, 1.4, 1e-9);
  EXPECT_NEAR(fit.intercept, std::log(1000.0), 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitZipf, MaxRankLimitsWindow) {
  std::vector<CurvePoint> curve;
  for (int r = 1; r <= 100; ++r) {
    // Power law head, flat tail.
    const double y = r <= 50 ? 100.0 * std::pow(r, -1.0) : 1.0;
    curve.push_back({static_cast<double>(r), y});
  }
  const ZipfFit head = fit_zipf(curve, 50);
  EXPECT_NEAR(head.exponent, 1.0, 1e-9);
  EXPECT_NEAR(head.r_squared, 1.0, 1e-9);
  const ZipfFit all = fit_zipf(curve);
  // The flat tail breaks the power law: the full-range fit is visibly
  // worse and its slope deviates from the head's.
  EXPECT_LT(all.r_squared, 0.99);
  EXPECT_GT(std::abs(all.exponent - 1.0), 0.01);
}

TEST(FitZipf, DegenerateInputs) {
  EXPECT_EQ(fit_zipf({}).exponent, 0.0);
  const std::vector<CurvePoint> one{{1.0, 5.0}};
  EXPECT_EQ(fit_zipf(one).exponent, 0.0);
}

TEST(Fractions, ThresholdHelpers) {
  const std::vector<std::uint64_t> counts{1, 1, 1, 2, 5, 40};
  EXPECT_DOUBLE_EQ(singleton_fraction(counts), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_or_below(counts, 2), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(fraction_at_or_above(counts, 5), 2.0 / 6.0);
  EXPECT_EQ(singleton_fraction({}), 0.0);
  EXPECT_EQ(fraction_at_or_below({}, 1), 0.0);
  EXPECT_EQ(fraction_at_or_above({}, 1), 0.0);
}

}  // namespace
}  // namespace qcp2p::util
