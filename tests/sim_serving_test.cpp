// Serving-mode coverage: the overlay-as-a-service refactor's three
// contracts.
//
//  1. Determinism — a ServingWorld's report (every counter, every
//     window, every latency quantile) is byte-identical at threads
//     1/2/8: the parallel query phase cannot leak shard structure into
//     results.
//  2. Incremental == from-scratch — a store maintained through
//     apply_membership()/add_object_delta()/compact() under a
//     randomized join/leave/content schedule produces the same flat
//     arrays and the same match() results as finalize()-from-scratch
//     over the final content.
//  3. Isolation — mmap'd WorldSnapshot views stay readable from
//     concurrent threads while a separate ServingWorld mutates its own
//     private copy of the same world (run under `ctest -L tsan`).
//
// Plus the satellite regressions: the de-finalize policy flag, and
// LatencyHistogram quantile/merge sanity.
#include "src/sim/serving.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/sim/world_snapshot.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {
namespace {

constexpr std::size_t kNodes = 300;

PeerStore build_store(std::size_t nodes) {
  PeerStore store(nodes);
  util::Rng rng(12);
  for (NodeId v = 0; v < nodes; v += 7) store.add_object(v, 1, {1, 2});
  for (std::uint64_t i = 0; i < 4 * nodes; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(nodes));
    std::vector<TermId> terms;
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      terms.push_back(static_cast<TermId>(rng.bounded(60)));
    }
    store.add_object(peer, 1000 + i, std::move(terms));
  }
  store.finalize();
  return store;
}

Graph build_graph(std::size_t nodes) {
  util::Rng rng(11);
  return overlay::random_regular(nodes, 6, rng);
}

/// A small timestamped stream with head repetition (so the cache path
/// exercises) and a tail of rarer conjunctions.
std::vector<trace::Query> build_stream(std::size_t count, double duration_s) {
  util::Rng rng(21);
  std::vector<trace::Query> qs(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs[i].time_s = duration_s * static_cast<double>(i) /
                   static_cast<double>(count);
    if (rng.chance(0.4)) {
      qs[i].terms = {1, 2};  // popular head query
    } else {
      qs[i].terms = {static_cast<TermId>(rng.bounded(60))};
      if (rng.chance(0.5)) {
        qs[i].terms.push_back(static_cast<TermId>(rng.bounded(60)));
      }
    }
  }
  return qs;
}

ServingConfig serving_config(std::size_t threads) {
  ServingConfig cfg;
  cfg.engine = "flood";
  cfg.threads = threads;
  cfg.window_s = 30.0;
  cfg.flood_ttl = 3;
  cfg.churn.mean_online_s = 400.0;
  cfg.churn.mean_offline_s = 150.0;
  cfg.churn.seed = 5;
  cfg.refreeze_batch = 40;
  cfg.compact_max_delta = 60;
  cfg.content_add_prob = 0.9;  // exercise the delta/compact path hard
  cfg.seed = 77;
  return cfg;
}

void expect_same_window(const WindowStats& a, const WindowStats& b,
                        std::size_t i) {
  EXPECT_DOUBLE_EQ(a.start_s, b.start_s) << "window " << i;
  EXPECT_DOUBLE_EQ(a.end_s, b.end_s) << "window " << i;
  EXPECT_EQ(a.queries, b.queries) << "window " << i;
  EXPECT_EQ(a.successes, b.successes) << "window " << i;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << "window " << i;
  EXPECT_EQ(a.timed, b.timed) << "window " << i;
  EXPECT_EQ(a.messages, b.messages) << "window " << i;
  EXPECT_EQ(a.joins, b.joins) << "window " << i;
  EXPECT_EQ(a.leaves, b.leaves) << "window " << i;
  EXPECT_EQ(a.latency.count(), b.latency.count()) << "window " << i;
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.latency.quantile(q), b.latency.quantile(q))
        << "window " << i << " q" << q;
  }
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean()) << "window " << i;
  EXPECT_DOUBLE_EQ(a.latency.max(), b.latency.max()) << "window " << i;
}

void expect_same_report(const ServingReport& a, const ServingReport& b) {
  EXPECT_EQ(a.refreezes, b.refreezes);
  EXPECT_EQ(a.compactions, b.compactions);
  EXPECT_EQ(a.edges_removed, b.edges_removed);
  EXPECT_EQ(a.edges_added, b.edges_added);
  EXPECT_EQ(a.content_adds, b.content_adds);
  EXPECT_EQ(a.cache_invalidations, b.cache_invalidations);
  EXPECT_EQ(a.dht_publish_messages, b.dht_publish_messages);
  EXPECT_DOUBLE_EQ(a.final_online_fraction, b.final_online_fraction);
  ASSERT_EQ(a.stats.windows().size(), b.stats.windows().size());
  for (std::size_t i = 0; i < a.stats.windows().size(); ++i) {
    expect_same_window(a.stats.windows()[i], b.stats.windows()[i], i);
  }
  expect_same_window(a.stats.total(), b.stats.total(), 9999);
}

TEST(ServingWorld, ReportByteIdenticalAcrossThreadCounts) {
  const Graph graph = build_graph(kNodes);
  const PeerStore store = build_store(kNodes);
  const std::vector<trace::Query> stream = build_stream(1500, 300.0);

  ServingWorld base(graph, store, stream, 300.0, serving_config(1));
  const ServingReport ref = base.run();
  EXPECT_GT(ref.stats.total().queries, 0u);
  EXPECT_GT(ref.stats.total().successes, 0u);
  EXPECT_GT(ref.refreezes, 0u);
  EXPECT_GT(ref.compactions, 0u);
  EXPECT_GT(ref.stats.total().cache_hits, 0u);

  for (const std::size_t threads : {2u, 8u}) {
    ServingWorld other(graph, store, stream, 300.0, serving_config(threads));
    expect_same_report(ref, other.run());
  }
}

TEST(ServingWorld, RunIsSingleShot) {
  const Graph graph = build_graph(64);
  const PeerStore store = build_store(64);
  ServingConfig cfg = serving_config(1);
  cfg.churn_enabled = false;
  ServingWorld world(graph, store, build_stream(50, 60.0), 60.0, cfg);
  (void)world.run();
  EXPECT_THROW((void)world.run(), std::logic_error);
}

TEST(ServingWorld, RejectsBadConfigurations) {
  const Graph graph = build_graph(64);
  const PeerStore store = build_store(64);
  ServingConfig cfg = serving_config(1);
  cfg.engine = "no-such-engine";
  EXPECT_THROW(ServingWorld(graph, store, {}, 10.0, cfg),
               std::invalid_argument);
  cfg = serving_config(1);
  cfg.window_s = 0.0;
  EXPECT_THROW(ServingWorld(graph, store, {}, 10.0, cfg),
               std::invalid_argument);
  cfg = serving_config(1);
  EXPECT_THROW(ServingWorld(build_graph(32), store, {}, 10.0, cfg),
               std::invalid_argument);  // size mismatch
}

// ---------------------------------------------------------------------------
// Incremental maintenance == finalize-from-scratch.

struct Op {
  enum Kind { kLeave, kJoin, kAdd } kind;
  NodeId peer;
  std::uint64_t id;
  std::vector<TermId> terms;
};

TEST(IncrementalStore, RandomizedScheduleMatchesFromScratch) {
  constexpr std::size_t kPeers = 120;
  util::Rng rng(31);

  // Base content, mirrored into both stores.
  std::vector<Op> base;
  for (std::uint64_t i = 0; i < 5 * kPeers; ++i) {
    Op op{Op::kAdd, static_cast<NodeId>(rng.bounded(kPeers)), 100 + i, {}};
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      op.terms.push_back(static_cast<TermId>(rng.bounded(40)));
    }
    base.push_back(std::move(op));
  }

  PeerStore live(kPeers);
  for (const Op& op : base) live.add_object(op.peer, op.id, op.terms);
  live.finalize();
  live.set_definalize_policy(PeerStore::DefinalizePolicy::kForbid);

  // Randomized serving schedule: joins/leaves, delta adds, periodic
  // mid-schedule compactions.
  std::vector<std::uint8_t> expect_live(kPeers, 1);
  std::map<NodeId, std::vector<Op>> delta_per_peer;
  std::uint64_t next_id = 10'000;
  for (int step = 0; step < 600; ++step) {
    const auto peer = static_cast<NodeId>(rng.bounded(kPeers));
    const double roll = rng.uniform();
    if (roll < 0.35) {
      const NodeId one[1] = {peer};
      live.apply_membership({}, one);
      expect_live[peer] = 0;
    } else if (roll < 0.7) {
      const NodeId one[1] = {peer};
      live.apply_membership(one, {});
      expect_live[peer] = 1;
    } else {
      Op op{Op::kAdd, peer, next_id++, {}};
      const std::size_t n = 1 + rng.bounded(3);
      for (std::size_t k = 0; k < n; ++k) {
        op.terms.push_back(static_cast<TermId>(rng.bounded(40)));
      }
      live.add_object_delta(peer, op.id, op.terms);
      delta_per_peer[peer].push_back(op);
    }
    if (step % 180 == 179) {
      // Mid-schedule compaction folds the accumulated delta into the
      // base; subsequent delta adds land AFTER it in per-peer order,
      // which is exactly the order the mirror below reproduces.
      live.compact(1 + rng.bounded(3));
      for (auto& [p, ops] : delta_per_peer) {
        for (Op& op : ops) {
          base.push_back(std::move(op));  // now part of the base layer
        }
      }
      // Keep base grouped per peer in fold order: stable partition by
      // rebuilding the per-peer sequences below instead.
      delta_per_peer.clear();
    }
  }
  live.compact(2);
  EXPECT_EQ(live.delta_objects(), 0u);

  // From-scratch mirror: per peer, base objects in their original
  // insertion order, then each compaction epoch's delta objects in
  // insertion order. Replaying `base` + remaining delta through a map
  // keyed by peer reproduces exactly that.
  std::map<NodeId, std::vector<const Op*>> final_per_peer;
  for (const Op& op : base) final_per_peer[op.peer].push_back(&op);
  for (const auto& [p, ops] : delta_per_peer) {
    for (const Op& op : ops) final_per_peer[p].push_back(&op);
  }
  PeerStore scratch(kPeers);
  for (const auto& [p, ops] : final_per_peer) {
    for (const Op* op : ops) scratch.add_object(p, op->id, op->terms);
  }
  scratch.finalize();

  const PeerStore::FlatLayout a = live.flat_layout();
  const PeerStore::FlatLayout b = scratch.flat_layout();
  const auto eq = [](const auto& x, const auto& y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end());
  };
  EXPECT_EQ(a.num_peers, b.num_peers);
  EXPECT_TRUE(eq(a.peer_term_offsets, b.peer_term_offsets));
  EXPECT_TRUE(eq(a.peer_terms_flat, b.peer_terms_flat));
  EXPECT_TRUE(eq(a.obj_offsets, b.obj_offsets));
  EXPECT_TRUE(eq(a.obj_ids, b.obj_ids));
  EXPECT_TRUE(eq(a.obj_term_offsets, b.obj_term_offsets));
  EXPECT_TRUE(eq(a.obj_terms_flat, b.obj_terms_flat));
  EXPECT_TRUE(eq(a.index_terms, b.index_terms));
  EXPECT_TRUE(eq(a.index_offsets, b.index_offsets));
  EXPECT_TRUE(eq(a.postings, b.postings));

  // Tombstones survive compaction; match() honors them while the
  // from-scratch store (no tombstones) sees everything.
  for (NodeId p = 0; p < kPeers; ++p) {
    EXPECT_EQ(live.peer_live(p), expect_live[p] != 0) << p;
    for (TermId t = 0; t < 40; t += 7) {
      const std::vector<TermId> q{t};
      if (expect_live[p] != 0) {
        EXPECT_EQ(live.match(p, q), scratch.match(p, q)) << p << " " << t;
      } else {
        EXPECT_TRUE(live.match(p, q).empty()) << p << " " << t;
      }
    }
  }
}

TEST(IncrementalStore, DeltaMatchesBeforeCompaction) {
  constexpr std::size_t kPeers = 40;
  PeerStore live(kPeers);
  PeerStore mirror(kPeers);
  util::Rng rng(8);
  std::vector<Op> all;
  for (std::uint64_t i = 0; i < 3 * kPeers; ++i) {
    Op op{Op::kAdd, static_cast<NodeId>(rng.bounded(kPeers)), i, {}};
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      op.terms.push_back(static_cast<TermId>(rng.bounded(25)));
    }
    all.push_back(std::move(op));
  }
  for (const Op& op : all) live.add_object(op.peer, op.id, op.terms);
  live.finalize();

  // Delta adds visible to match()/may_match() WITHOUT compaction.
  std::map<NodeId, std::vector<Op>> delta;
  for (std::uint64_t i = 0; i < kPeers; ++i) {
    Op op{Op::kAdd, static_cast<NodeId>(rng.bounded(kPeers)), 5000 + i, {}};
    op.terms.push_back(static_cast<TermId>(rng.bounded(25)));
    live.add_object_delta(op.peer, op.id, op.terms);
    delta[op.peer].push_back(op);
    all.push_back(op);
  }
  std::map<NodeId, std::vector<const Op*>> per_peer;
  for (const Op& op : all) per_peer[op.peer].push_back(&op);
  for (const auto& [p, ops] : per_peer) {
    for (const Op* op : ops) mirror.add_object(p, op->id, op->terms);
  }
  mirror.finalize();

  for (NodeId p = 0; p < kPeers; ++p) {
    for (TermId t = 0; t < 25; ++t) {
      const std::vector<TermId> q{t};
      EXPECT_EQ(live.match(p, q), mirror.match(p, q)) << p << " " << t;
      EXPECT_EQ(live.match(p, q), live.match_reference(p, q)) << p << " " << t;
      EXPECT_EQ(live.may_match(p, q), mirror.may_match(p, q)) << p << " " << t;
    }
  }
}

TEST(DefinalizePolicy, ForbidThrowsRebuildDefinalizes) {
  PeerStore store(8);
  store.add_object(1, 10, {3});
  store.finalize();
  ASSERT_TRUE(store.is_finalized());

  // Legacy default: a post-finalize insert silently drops back to the
  // build phase (the bug the policy flag makes explicit).
  PeerStore legacy(store);
  ASSERT_EQ(legacy.definalize_policy(), PeerStore::DefinalizePolicy::kRebuild);
  legacy.add_object(2, 11, {4});
  EXPECT_FALSE(legacy.is_finalized());

  store.set_definalize_policy(PeerStore::DefinalizePolicy::kForbid);
  EXPECT_THROW(store.add_object(2, 11, {4}), std::logic_error);
  EXPECT_TRUE(store.is_finalized());  // the flat layout survived
  store.add_object_delta(2, 11, {4});  // the sanctioned mutation path
  EXPECT_EQ(store.match(2, std::vector<TermId>{4}),
            (std::vector<std::uint64_t>{11}));
}

// ---------------------------------------------------------------------------
// Concurrent snapshot readers vs a mutating ServingWorld.

TEST(ServingWorld, SnapshotViewsStayReadableWhileServingWorldMutates) {
  const Graph graph = build_graph(kNodes);
  const PeerStore store = build_store(kNodes);
  const std::string path = ::testing::TempDir() + "serving_iso.wsnap";
  save_world_snapshot(path, graph, store);
  const WorldSnapshot snap = WorldSnapshot::load(path);
  const Graph view_graph = snap.graph_view();
  const PeerStore view_store = snap.store_view();

  // Readers hammer the mmap'd views while the serving world churns,
  // re-freezes, and compacts its own private copy of the same world.
  constexpr std::size_t kReaders = 4;
  std::vector<std::thread> readers;
  std::vector<std::uint64_t> read_sums(kReaders, 0);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(1000 + r);
      std::uint64_t sum = 0;
      for (int i = 0; i < 20'000; ++i) {
        const auto peer = static_cast<NodeId>(rng.bounded(kNodes));
        const std::vector<TermId> q{static_cast<TermId>(rng.bounded(60))};
        sum += view_store.match(peer, q).size();
        for (NodeId nbr : view_graph.neighbors(peer)) sum += nbr;
      }
      read_sums[r] = sum;
    });
  }

  ServingConfig cfg = serving_config(2);
  ServingWorld world(graph, store, build_stream(800, 300.0), 300.0, cfg);
  const ServingReport report = world.run();
  EXPECT_GT(report.refreezes + report.compactions, 0u);

  for (std::thread& t : readers) t.join();
  // The mapped world is immutable: every reader saw the same content.
  util::Rng rng(1000);
  std::uint64_t expect = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(kNodes));
    const std::vector<TermId> q{static_cast<TermId>(rng.bounded(60))};
    expect += view_store.match(peer, q).size();
    for (NodeId nbr : view_graph.neighbors(peer)) expect += nbr;
  }
  EXPECT_EQ(read_sums[0], expect);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// LatencyHistogram.

TEST(LatencyHistogram, QuantilesWithinBucketResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) * 1e-3);
  EXPECT_EQ(h.count(), 1000u);
  // Bucket lower bounds: within ~3.2% (one sub-bucket) below the truth.
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.5 * 0.04);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.99 * 0.04);
  EXPECT_LE(h.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-3);
}

TEST(LatencyHistogram, EmptyAndEdgeCases) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(-1.0);  // clamps to 0
  h.record(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  h.record(5000.0);  // 5e9 us, deep octave territory
  EXPECT_NEAR(h.quantile(1.0), 5000.0, 5000.0 * 0.04);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(rng.bounded(1'000'000)) * 1e-6;
    ((i % 2 == 0) ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << q;
  }
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

}  // namespace
}  // namespace qcp2p::sim
