#include "src/sim/flood.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

namespace qcp2p::sim {
namespace {

/// Path graph 0-1-2-...-(n-1).
Graph line_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

/// Star with center 0.
Graph star_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

TEST(Flood, LineGraphReachGrowsOneHopPerTtl) {
  const Graph g = line_graph(10);
  for (std::uint32_t ttl = 1; ttl <= 5; ++ttl) {
    const FloodResult r = flood(g, 0, ttl);
    EXPECT_EQ(r.reached.size(), ttl) << "ttl " << ttl;
  }
  // From the middle it spreads both ways.
  const FloodResult mid = flood(g, 5, 2);
  EXPECT_EQ(mid.reached.size(), 4u);
}

TEST(Flood, ZeroTtlReachesNothing) {
  const Graph g = line_graph(5);
  const FloodResult r = flood(g, 0, 0);
  EXPECT_TRUE(r.reached.empty());
  EXPECT_EQ(r.messages, 0u);
}

TEST(Flood, StarCoversEverythingAtTtl2) {
  const Graph g = star_graph(50);
  const FloodResult from_center = flood(g, 0, 1);
  EXPECT_EQ(from_center.reached.size(), 49u);
  const FloodResult from_leaf = flood(g, 7, 1);
  EXPECT_EQ(from_leaf.reached.size(), 1u);  // only the hub
  const FloodResult deep = flood(g, 7, 2);
  EXPECT_EQ(deep.reached.size(), 49u);  // hub + all other leaves
}

TEST(Flood, MessageAccountingCountsDuplicates) {
  // Triangle: flooding from 0 with TTL 2.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const FloodResult r = flood(g, 0, 2);
  EXPECT_EQ(r.reached.size(), 2u);
  // Hop 1: 0 -> {1,2} = 2 messages. Hop 2: 1 -> {0,2}, 2 -> {0,1} = 4
  // duplicate messages. Total 6.
  EXPECT_EQ(r.messages, 6u);
}

TEST(Flood, PerHopHistogram) {
  const Graph g = line_graph(6);
  const FloodResult r = flood(g, 0, 3);
  ASSERT_EQ(r.per_hop.size(), 3u);
  EXPECT_EQ(r.per_hop[0], 1u);
  EXPECT_EQ(r.per_hop[1], 1u);
  EXPECT_EQ(r.per_hop[2], 1u);
}

TEST(Flood, ForwardPredicateStopsLeaves) {
  // Star where leaves may not forward: from a leaf, TTL 3 still reaches
  // hub + other leaves only via the hub (which may forward).
  const Graph g = star_graph(10);
  std::vector<bool> forwards(10, false);
  forwards[0] = true;  // hub is an ultrapeer
  const FloodResult r = flood(g, 3, 3, &forwards);
  EXPECT_EQ(r.reached.size(), 9u);

  // If the hub cannot forward either, the query dies at the hub.
  std::vector<bool> none(10, false);
  const FloodResult dead = flood(g, 3, 3, &none);
  EXPECT_EQ(dead.reached.size(), 1u);
}

TEST(Flood, CoverageMonotoneInTtl) {
  util::Rng rng(12);
  const Graph g = [] {
    util::Rng r(5);
    Graph gg(500);
    for (int i = 0; i < 1500; ++i) {
      gg.add_edge(static_cast<NodeId>(r.bounded(500)),
                  static_cast<NodeId>(r.bounded(500)));
    }
    return gg;
  }();
  std::size_t prev = 0;
  for (std::uint32_t ttl = 1; ttl <= 6; ++ttl) {
    const FloodResult r = flood(g, 0, ttl);
    EXPECT_GE(r.reached.size(), prev);
    prev = r.reached.size();
  }
}

TEST(FloodEngine, ReusableAcrossQueries) {
  const Graph g = line_graph(8);
  FloodEngine engine(g);
  const FloodResult a = engine.run(0, 2);
  const FloodResult b = engine.run(7, 2);
  EXPECT_EQ(a.reached.size(), 2u);
  EXPECT_EQ(b.reached.size(), 2u);
  // Epochs must isolate runs: re-running source 0 gives identical result.
  const FloodResult c = engine.run(0, 2);
  EXPECT_EQ(c.reached.size(), 2u);
}

TEST(FloodEngine, ReachesAnyIncludingOwnCopy) {
  const Graph g = line_graph(10);
  FloodEngine engine(g);
  const std::vector<NodeId> holders{0, 9};
  std::uint64_t messages = 123;
  EXPECT_TRUE(engine.reaches_any(0, 1, holders, nullptr, &messages));
  EXPECT_EQ(messages, 0u);  // own copy, no search needed
  EXPECT_FALSE(engine.reaches_any(4, 2, holders, nullptr, &messages));
  EXPECT_GT(messages, 0u);
  EXPECT_TRUE(engine.reaches_any(4, 4, holders, nullptr));
}

TEST(FloodSearch, FindsConjunctiveMatchesWithinTtl) {
  const Graph g = line_graph(6);
  PeerStore store(6);
  store.add_object(2, 100, {1, 2});
  store.add_object(5, 200, {1, 2});
  store.add_object(3, 300, {1});  // partial match only
  store.finalize();

  const std::vector<TermId> query{1, 2};
  const FloodSearchResult near = flood_search(g, store, 0, query, 2);
  EXPECT_EQ(near.results, (std::vector<std::uint64_t>{100}));
  EXPECT_EQ(near.peers_probed, 3u);  // source + 2 reached

  const FloodSearchResult far = flood_search(g, store, 0, query, 5);
  EXPECT_EQ(far.results, (std::vector<std::uint64_t>{100, 200}));
}

TEST(FloodSearch, SourceLocalHitNeedsNoMessages) {
  const Graph g = line_graph(3);
  PeerStore store(3);
  store.add_object(0, 7, {4});
  store.finalize();
  const std::vector<TermId> query{4};
  const FloodSearchResult r = flood_search(g, store, 0, query, 0);
  EXPECT_EQ(r.results, (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(r.messages, 0u);
}

TEST(FloodEngine, SurvivesEpochWraparound) {
  // Regression: epoch_ is 32-bit; after it wraps the never-visited
  // nodes' zero marks alias the wrapped epoch and get silently skipped.
  const Graph g = line_graph(8);
  FloodEngine engine(g);
  const FloodResult before = engine.run(0, 3);
  EXPECT_EQ(before.reached.size(), 3u);  // marks 1..3; 4..7 stay zero

  engine.set_epoch(std::numeric_limits<std::uint32_t>::max());
  const FloodResult wrapped = engine.run(0, 7);
  EXPECT_EQ(wrapped.reached.size(), 7u);  // pre-fix: only the 3 marked
  // And the cycle after the wrap still isolates runs.
  const FloodResult after = engine.run(7, 2);
  EXPECT_EQ(after.reached.size(), 2u);
}

TEST(FloodEngine, WrapClearsStaleMarksFromPreviousCycle) {
  const Graph g = star_graph(20);
  FloodEngine engine(g);
  // Visit only leaf 5 and the hub, then wrap: the 18 untouched leaves
  // must not read as already-visited in the first post-wrap flood.
  const FloodResult first = engine.run(5, 1);
  EXPECT_EQ(first.reached.size(), 1u);  // the hub
  engine.set_epoch(std::numeric_limits<std::uint32_t>::max());
  const FloodResult second = engine.run(0, 1);
  EXPECT_EQ(second.reached.size(), 19u);
}

TEST(FloodSearch, OfflineSourceFindsNothingAndSendsNothing) {
  // Regression: flood_search ignored liveness and probed the source's
  // own store even when a churn mask marked it offline.
  const Graph g = line_graph(4);
  PeerStore store(4);
  store.add_object(0, 7, {4});
  store.add_object(2, 9, {4});
  store.finalize();
  const std::vector<TermId> query{4};
  std::vector<bool> online(4, true);
  online[0] = false;
  const FloodSearchResult r =
      flood_search(g, store, 0, query, 3, nullptr, &online);
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.peers_probed, 0u);
}

TEST(FloodSearch, OfflinePeersAreNotProbedButStillCostMessages) {
  const Graph g = line_graph(4);
  PeerStore store(4);
  store.add_object(1, 5, {4});
  store.add_object(2, 9, {4});
  store.finalize();
  const std::vector<TermId> query{4};
  std::vector<bool> online(4, true);
  online[1] = false;  // dead peer holds object 5 and blocks the relay
  const FloodSearchResult r =
      flood_search(g, store, 0, query, 3, nullptr, &online);
  EXPECT_TRUE(r.results.empty());  // 5 unreachable, relay to 2 cut off
  EXPECT_EQ(r.peers_probed, 1u);   // source only
  EXPECT_EQ(r.messages, 1u);       // the send to the dead peer is charged

  // Same query with everyone online reaches both holders.
  const FloodSearchResult all =
      flood_search(g, store, 0, query, 3, nullptr, nullptr);
  EXPECT_EQ(all.results, (std::vector<std::uint64_t>{5, 9}));
}

}  // namespace
}  // namespace qcp2p::sim
