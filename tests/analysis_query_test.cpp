#include "src/analysis/query_analysis.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace qcp2p::analysis {
namespace {

using trace::Query;

/// Builds a stationary stream: every interval contains `per_interval`
/// queries over terms [0, vocab) with Zipf-ish skew.
std::vector<Query> stationary_stream(std::size_t intervals,
                                     std::size_t per_interval,
                                     TermId vocab, double interval_s,
                                     std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<Query> queries;
  for (std::size_t t = 0; t < intervals; ++t) {
    for (std::size_t i = 0; i < per_interval; ++i) {
      Query q;
      q.time_s = (static_cast<double>(t) + rng.uniform()) * interval_s;
      // Skewed: low ids appear much more often.
      const TermId term = static_cast<TermId>(
          std::min<std::uint64_t>(vocab - 1, rng.bounded(vocab) *
                                                 rng.bounded(vocab) / vocab));
      q.terms.push_back(term);
      queries.push_back(std::move(q));
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) { return a.time_s < b.time_s; });
  return queries;
}

TEST(QueryTermAnalyzer, ValidatesArguments) {
  const std::vector<Query> empty;
  EXPECT_THROW(QueryTermAnalyzer(empty, 100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(QueryTermAnalyzer(empty, 100.0, 10.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(QueryTermAnalyzer(empty, 100.0, 10.0, -0.1),
               std::invalid_argument);
}

TEST(QueryTermAnalyzer, BinsQueriesIntoIntervals) {
  std::vector<Query> queries;
  queries.push_back({5.0, {1}});
  queries.push_back({15.0, {1, 2}});
  queries.push_back({25.0, {3}});
  const QueryTermAnalyzer analyzer(queries, 30.0, 10.0, 0.0);
  EXPECT_EQ(analyzer.num_intervals(), 3u);
  EXPECT_EQ(analyzer.interval_counts(0).at(1), 1u);
  EXPECT_EQ(analyzer.interval_counts(1).at(1), 1u);
  EXPECT_EQ(analyzer.interval_counts(1).at(2), 1u);
  EXPECT_EQ(analyzer.interval_counts(2).at(3), 1u);
}

TEST(QueryTermAnalyzer, LateQueriesClampToLastInterval) {
  std::vector<Query> queries;
  queries.push_back({99.999, {7}});
  const QueryTermAnalyzer analyzer(queries, 100.0, 10.0, 0.0);
  EXPECT_EQ(analyzer.interval_counts(9).at(7), 1u);
}

TEST(QueryTermAnalyzer, PopularTermsRespectPolicy) {
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) queries.push_back({1.0, {1}});
  for (int i = 0; i < 5; ++i) queries.push_back({1.0, {2}});
  queries.push_back({1.0, {3}});  // below min_count
  const QueryTermAnalyzer analyzer(queries, 10.0, 10.0, 0.0);
  PopularPolicy policy;
  policy.top_k = 10;
  policy.min_count = 2;
  const auto popular = analyzer.popular_terms(0, policy);
  EXPECT_TRUE(popular.count(1));
  EXPECT_TRUE(popular.count(2));
  EXPECT_FALSE(popular.count(3));

  policy.top_k = 1;
  const auto top1 = analyzer.popular_terms(0, policy);
  EXPECT_EQ(top1.size(), 1u);
  EXPECT_TRUE(top1.count(1));
}

TEST(QueryTermAnalyzer, StationaryStreamIsStable) {
  const auto queries = stationary_stream(24, 2'000, 50, 3600.0);
  const QueryTermAnalyzer analyzer(queries, 24 * 3600.0, 3600.0, 0.10);
  PopularPolicy policy;
  policy.top_k = 20;
  const auto series = analyzer.stability_series(policy);
  ASSERT_FALSE(series.empty());
  double sum = 0;
  for (double j : series) sum += j;
  EXPECT_GT(sum / static_cast<double>(series.size()), 0.85);
}

TEST(QueryTermAnalyzer, StationaryStreamHasFewTransients) {
  const auto queries = stationary_stream(24, 2'000, 50, 3600.0);
  const QueryTermAnalyzer analyzer(queries, 24 * 3600.0, 3600.0, 0.10);
  const auto series = analyzer.transient_count_series(TransientPolicy{});
  double total = 0;
  for (auto c : series) total += c;
  EXPECT_LT(total / static_cast<double>(series.size()), 1.0);
}

TEST(QueryTermAnalyzer, DetectsInjectedBurst) {
  auto queries = stationary_stream(24, 2'000, 50, 3600.0);
  // Term 999 never appears historically, then bursts in hour 12.
  for (int i = 0; i < 60; ++i) {
    queries.push_back({12.5 * 3600.0, {999}});
  }
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) { return a.time_s < b.time_s; });
  const QueryTermAnalyzer analyzer(queries, 24 * 3600.0, 3600.0, 0.10);
  const auto transients = analyzer.transient_terms(12, TransientPolicy{});
  EXPECT_NE(std::find(transients.begin(), transients.end(), 999u),
            transients.end());
  // And NOT transient in an unaffected interval.
  const auto other = analyzer.transient_terms(20, TransientPolicy{});
  EXPECT_EQ(std::find(other.begin(), other.end(), 999u), other.end());
}

TEST(QueryTermAnalyzer, BurstOfKnownTermRequiresDeviation) {
  // Term 1 is already frequent; the same absolute count as a fresh burst
  // must NOT flag it.
  auto queries = stationary_stream(24, 50, 2, 3600.0);  // term 0/1 heavy
  const QueryTermAnalyzer analyzer(queries, 24 * 3600.0, 3600.0, 0.10);
  for (std::size_t t = analyzer.first_eval_interval();
       t < analyzer.num_intervals(); ++t) {
    const auto transients = analyzer.transient_terms(t, TransientPolicy{});
    EXPECT_TRUE(transients.empty()) << "interval " << t;
  }
}

TEST(QueryTermAnalyzer, DisconnectSeriesMeasuresOverlap) {
  // Popular query terms are exactly {0..9}; compare against file sets.
  std::vector<Query> queries;
  for (int t = 0; t < 10; ++t) {
    for (TermId term = 0; term < 10; ++term) {
      for (int r = 0; r < 5; ++r) {
        queries.push_back({t * 100.0 + term, {term}});
      }
    }
  }
  const QueryTermAnalyzer analyzer(queries, 1000.0, 100.0, 0.0);
  PopularPolicy policy;
  policy.top_k = 10;

  const std::vector<TermId> disjoint{100, 101, 102};
  for (double j : analyzer.disconnect_series(disjoint, policy)) {
    EXPECT_DOUBLE_EQ(j, 0.0);
  }
  const std::vector<TermId> half{0, 1, 2, 3, 4, 100, 101, 102, 103, 104};
  for (double j : analyzer.disconnect_series(half, policy)) {
    EXPECT_DOUBLE_EQ(j, 5.0 / 15.0);
  }
  const std::vector<TermId> identical{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (double j : analyzer.disconnect_series(identical, policy)) {
    EXPECT_DOUBLE_EQ(j, 1.0);
  }
}

TEST(QueryTermAnalyzer, AllTermsDisconnectIncludesRareTerms) {
  std::vector<Query> queries;
  queries.push_back({1.0, {1}});
  queries.push_back({2.0, {2}});
  const QueryTermAnalyzer analyzer(queries, 10.0, 10.0, 0.0);
  const std::vector<TermId> file_popular{2, 3};
  const auto series = analyzer.disconnect_series_all_terms(file_popular);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0], 1.0 / 3.0);  // {1,2} vs {2,3}
}

}  // namespace
}  // namespace qcp2p::analysis
