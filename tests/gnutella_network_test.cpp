// Latency-aware protocol simulation, cross-validated against the
// synchronous sim::flood abstraction.
#include "src/gnutella/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"

namespace qcp2p::gnutella {
namespace {

struct NetFixture : ::testing::Test {
  NetFixture() : store(200) {
    util::Rng rng(3);
    graph = overlay::random_regular(200, 6, rng);
    // A few holders of the target object; everyone holds noise.
    for (NodeId v = 0; v < 200; ++v) {
      store.add_object(v, 10'000 + v, {static_cast<TermId>(100 + v % 5)});
    }
    for (NodeId v : {20u, 90u, 150u}) {
      store.add_object(v, 777, {42});
      holders.push_back(v);
    }
    store.finalize();
  }
  overlay::Graph graph{0};
  sim::PeerStore store;
  std::vector<NodeId> holders;
};

TEST_F(NetFixture, QueryFindsHoldersWithTimedHits) {
  GnutellaNetwork net(graph, store);
  const QueryOutcome out = net.query(0, {42}, 7);
  ASSERT_FALSE(out.hits.empty());
  ASSERT_TRUE(out.first_hit().has_value());
  EXPECT_GT(*out.first_hit(), 0.0);
  // Hits arrive in nondecreasing time.
  for (std::size_t i = 1; i < out.hits.size(); ++i) {
    EXPECT_GE(out.hits[i].at, out.hits[i - 1].at);
  }
  for (const auto& hit : out.hits) {
    EXPECT_NE(std::find(holders.begin(), holders.end(), hit.responder),
              holders.end());
    EXPECT_EQ(hit.objects, 1u);
  }
}

TEST_F(NetFixture, UniformLatencyMatchesSynchronousFloodReach) {
  // With equal link latencies, descriptor arrival order equals BFS hop
  // order, so the set of peers that evaluate the query equals the
  // synchronous flood's probe set exactly.
  NetworkParams params;
  params.min_link_latency_s = 0.05;
  params.max_link_latency_s = 0.05;
  GnutellaNetwork net(graph, store, params);

  constexpr std::uint8_t kTtl = 3;
  const QueryOutcome out = net.query(7, {42}, kTtl);

  const sim::FloodSearchResult reference =
      sim::flood_search(graph, store, 7, std::vector<TermId>{42}, kTtl);
  // Responder sets must agree: protocol hits == flood-probed holders.
  std::unordered_set<NodeId> protocol_responders;
  for (const auto& hit : out.hits) protocol_responders.insert(hit.responder);

  std::unordered_set<NodeId> flood_responders;
  const sim::FloodResult coverage = sim::flood(graph, 7, kTtl);
  for (NodeId v : coverage.reached) {
    if (!store.match(v, std::vector<TermId>{42}).empty()) {
      flood_responders.insert(v);
    }
  }
  if (!store.match(7, std::vector<TermId>{42}).empty()) {
    flood_responders.insert(7);
  }
  EXPECT_EQ(protocol_responders, flood_responders);
  EXPECT_EQ(out.hits.empty(), reference.results.empty());
}

TEST_F(NetFixture, RandomLatencyReachIsSubsetOfBfsReach) {
  // Fast long paths can burn TTL early, so the protocol may reach fewer
  // peers than ideal BFS — never more.
  GnutellaNetwork net(graph, store);
  constexpr std::uint8_t kTtl = 3;
  const QueryOutcome out = net.query(11, {100}, kTtl);

  const sim::FloodResult coverage = sim::flood(graph, 11, kTtl);
  std::unordered_set<NodeId> bfs_set(coverage.reached.begin(),
                                     coverage.reached.end());
  bfs_set.insert(11);
  for (const auto& hit : out.hits) {
    EXPECT_TRUE(bfs_set.count(hit.responder))
        << "responder " << hit.responder << " outside BFS reach";
  }
}

TEST_F(NetFixture, FirstHitTimeRoughlyTracksHopDistance) {
  NetworkParams params;
  params.min_link_latency_s = 0.1;
  params.max_link_latency_s = 0.1;
  GnutellaNetwork net(graph, store, params);
  const QueryOutcome out = net.query(0, {42}, 7);
  ASSERT_TRUE(out.first_hit().has_value());
  // Round trip of h hops at 0.1s per hop: at least 2 links (out + back).
  EXPECT_GE(*out.first_hit(), 0.2 - 1e-9);
  // And bounded by the TTL-limited round trip.
  EXPECT_LE(*out.first_hit(), 2 * 7 * 0.1 + 1e-9);
}

TEST_F(NetFixture, PingDiscoversTtlNeighborhood) {
  NetworkParams params;
  params.min_link_latency_s = 0.05;
  params.max_link_latency_s = 0.05;
  GnutellaNetwork net(graph, store, params);
  const PingOutcome out = net.ping(3, 2);

  const sim::FloodResult coverage = sim::flood(graph, 3, 2);
  EXPECT_EQ(out.pongs.size(), coverage.reached.size());
  // Every pong reports the responder's true library size.
  for (const PongPayload& p : out.pongs) {
    EXPECT_EQ(p.shared_files, store.objects(p.responder).size());
  }
}

TEST_F(NetFixture, SuccessiveQueriesAreIndependent) {
  GnutellaNetwork net(graph, store);
  const QueryOutcome a = net.query(0, {42}, 7);
  const QueryOutcome b = net.query(0, {42}, 7);
  EXPECT_FALSE(a.guid == b.guid);
  EXPECT_EQ(a.hits.size(), b.hits.size());
}

TEST_F(NetFixture, NoHitsForUnknownTerm) {
  GnutellaNetwork net(graph, store);
  const QueryOutcome out = net.query(0, {999'999}, 7);
  EXPECT_TRUE(out.hits.empty());
  EXPECT_GT(out.messages, 0u);  // the flood still cost messages
}

}  // namespace
}  // namespace qcp2p::gnutella
