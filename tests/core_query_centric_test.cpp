#include "src/core/query_centric.hpp"

#include <gtest/gtest.h>

#include "src/overlay/topology.hpp"

namespace qcp2p::core {
namespace {

struct OverlayFixture : ::testing::Test {
  OverlayFixture() {
    util::Rng rng(1);
    graph = overlay::random_regular(400, 6, rng);
    store = std::make_unique<PeerStore>(400);
    // "Content-popular" terms 1..8 everywhere; the queried term 99 only
    // on a handful of peers, buried under big libraries.
    for (NodeId v = 0; v < 400; ++v) {
      for (std::uint64_t o = 0; o < 12; ++o) {
        store->add_object(v, (static_cast<std::uint64_t>(v) << 8) | o,
                          {static_cast<TermId>(1 + (o + v) % 8),
                           static_cast<TermId>(1 + (o + v + 1) % 8)});
      }
    }
    for (NodeId v : {17u, 171u, 303u, 399u}) {
      store->add_object(v, (static_cast<std::uint64_t>(v) << 8) | 0xFF, {99});
    }
    store->finalize();
  }

  Graph graph{0};
  std::unique_ptr<PeerStore> store;
};

TEST_F(OverlayFixture, GuidedSearchFindsAdvertisedContent) {
  SynopsisParams params;
  params.term_budget = 64;  // enough for every term incl. 99
  QueryCentricOverlay overlay(graph, *store, params,
                              SynopsisPolicy::kContentCentric);
  util::Rng rng(2);
  GuidedSearchParams search;
  search.ttl = 10;
  search.match_fanout = 4;
  search.fallback_fanout = 3;  // enough blind spread to meet a synopsis
  const std::vector<TermId> query{99};
  int successes = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto src = static_cast<NodeId>(rng.bounded(400));
    successes += overlay.search(src, query, search, rng).success;
  }
  EXPECT_GT(successes, 20);
}

TEST_F(OverlayFixture, QueryCentricBeatsContentCentricUnderTightBudget) {
  SynopsisParams params;
  params.term_budget = 4;  // too small for the whole vocabulary

  // Queries overwhelmingly ask for term 99 (the paper's mismatch: the
  // content-frequent terms 1..8 are NOT what users query).
  TermPopularityTracker tracker;
  for (int i = 0; i < 500; ++i) tracker.observe_query({99});

  QueryCentricOverlay content(graph, *store, params,
                              SynopsisPolicy::kContentCentric);
  QueryCentricOverlay query_centric(graph, *store, params,
                                    SynopsisPolicy::kQueryCentric);
  query_centric.rebuild_synopses(&tracker);

  GuidedSearchParams search;
  search.ttl = 8;
  search.match_fanout = 4;
  search.fallback_fanout = 1;

  const std::vector<TermId> q{99};
  util::Rng rng_a(3), rng_b(3);
  int content_successes = 0, query_successes = 0;
  std::uint64_t content_msgs = 0, query_msgs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto src = static_cast<NodeId>(rng_a.bounded(400));
    const auto ra = content.search(src, q, search, rng_a);
    const auto rb = query_centric.search(src, q, search, rng_b);
    content_successes += ra.success;
    query_successes += rb.success;
    content_msgs += ra.messages;
    query_msgs += rb.messages;
  }
  EXPECT_GT(query_successes, content_successes);
  // And it should not be buying success with massively more messages.
  EXPECT_LT(query_msgs, content_msgs * 3 + 100);
}

TEST_F(OverlayFixture, AdaptToTransientsPicksUpBursts) {
  SynopsisParams params;
  params.term_budget = 4;
  QueryCentricOverlay overlay(graph, *store, params,
                              SynopsisPolicy::kQueryCentric);
  // Initially (no tracker) the niche term is not advertised.
  EXPECT_FALSE(overlay.synopsis(17).maybe_contains(99));

  TermPopularityTracker tracker;
  for (int i = 0; i < 1'000; ++i) tracker.observe_query({1});
  for (int i = 0; i < 50; ++i) tracker.observe_query({99});  // burst
  ASSERT_TRUE(tracker.is_transient(99));

  overlay.adapt_to_transients(tracker);
  EXPECT_TRUE(overlay.synopsis(17).maybe_contains(99));
  // Peers not holding the hot term keep their synopses.
  EXPECT_FALSE(overlay.synopsis(18).maybe_contains(99));
}

TEST_F(OverlayFixture, AdaptToTransientsIsNoopForContentCentric) {
  SynopsisParams params;
  params.term_budget = 4;
  QueryCentricOverlay overlay(graph, *store, params,
                              SynopsisPolicy::kContentCentric);
  TermPopularityTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.observe_query({99});
  overlay.adapt_to_transients(tracker);
  EXPECT_FALSE(overlay.synopsis(17).maybe_contains(99));
}

TEST_F(OverlayFixture, MessageBudgetIsHonored) {
  SynopsisParams params;
  QueryCentricOverlay overlay(graph, *store, params,
                              SynopsisPolicy::kContentCentric);
  util::Rng rng(4);
  GuidedSearchParams search;
  search.ttl = 20;
  search.match_fanout = 6;
  search.stop_after_results = 0;
  search.message_budget = 25;
  const std::vector<TermId> q{1};
  const GuidedSearchResult r = overlay.search(0, q, search, rng);
  EXPECT_LE(r.messages, 25u + 6u);  // budget checked per forward batch
}

TEST_F(OverlayFixture, EmptyQueryReturnsNothing) {
  QueryCentricOverlay overlay(graph, *store, SynopsisParams{},
                              SynopsisPolicy::kContentCentric);
  util::Rng rng(5);
  const std::vector<TermId> empty;
  const GuidedSearchResult r =
      overlay.search(0, empty, GuidedSearchParams{}, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

TEST_F(OverlayFixture, MeanSynopsisFprIsSane) {
  SynopsisParams params;
  params.term_budget = 64;
  QueryCentricOverlay overlay(graph, *store, params,
                              SynopsisPolicy::kContentCentric);
  const double fpr = overlay.mean_synopsis_fpr();
  EXPECT_GE(fpr, 0.0);
  EXPECT_LT(fpr, 0.1);
}

}  // namespace
}  // namespace qcp2p::core
