#include "src/crawler/crawler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/replication.hpp"
#include "src/overlay/topology.hpp"
#include "src/util/stats.hpp"

namespace qcp2p::crawler {
namespace {

trace::ContentModelParams model_params() {
  trace::ContentModelParams p;
  p.core_lexicon_size = 2'000;
  p.catalog_songs = 30'000;
  p.artists = 5'000;
  p.tail_lexicon_size = 60'000;
  p.seed = 61;
  return p;
}

struct CrawlerFixture : ::testing::Test {
  CrawlerFixture() : model(model_params()) {
    trace::GnutellaCrawlParams cp;
    cp.num_peers = 800;
    cp.mean_objects_per_peer = 60;
    truth = std::make_unique<trace::CrawlSnapshot>(
        generate_gnutella_crawl(model, cp));
    util::Rng rng(8);
    graph = overlay::random_regular(800, 6, rng);
  }
  trace::ContentModel model;
  std::unique_ptr<trace::CrawlSnapshot> truth;
  overlay::Graph graph{0};
};

TEST_F(CrawlerFixture, PerfectCrawlerSeesEverything) {
  CrawlerParams params;
  params.p_unreachable = 0.0;
  params.p_protected = 0.0;
  params.p_busy = 0.0;
  const Crawler crawler(params);
  const FileCrawl result = crawler.crawl(graph, *truth);
  EXPECT_EQ(result.succeeded, truth->num_peers());
  EXPECT_EQ(result.observed.total_objects(), truth->total_objects());
  EXPECT_EQ(result.unreachable + result.refused + result.busy_failed, 0u);
}

TEST_F(CrawlerFixture, TopologyCrawlDiscoversDespiteUnreachablePeers) {
  CrawlerParams params;
  params.p_unreachable = 0.2;
  const Crawler crawler(params);
  const TopologyCrawl topo = crawler.crawl_topology(graph, {0});
  // Unresponsive peers are still discovered through others' lists.
  EXPECT_GT(topo.discovered.size(), topo.responsive.size());
  EXPECT_GT(static_cast<double>(topo.discovered.size()),
            0.9 * static_cast<double>(graph.num_nodes()));
  EXPECT_NEAR(static_cast<double>(topo.responsive.size()) /
                  static_cast<double>(topo.contact_attempts),
              0.8, 0.06);
}

TEST_F(CrawlerFixture, FullyUnreachableNetworkYieldsOnlySeeds) {
  CrawlerParams params;
  params.p_unreachable = 1.0;
  const Crawler crawler(params);
  const TopologyCrawl topo = crawler.crawl_topology(graph, {5});
  EXPECT_TRUE(topo.responsive.empty());
  EXPECT_EQ(topo.discovered, (std::vector<NodeId>{5}));
}

TEST_F(CrawlerFixture, FailureAccountingIsConsistent) {
  const Crawler crawler;  // default failure mix
  const FileCrawl result = crawler.crawl(graph, *truth);
  EXPECT_EQ(result.attempted, result.succeeded + result.unreachable +
                                  result.refused + result.busy_failed);
  EXPECT_GT(result.unreachable, 0u);
  EXPECT_GT(result.refused, 0u);
  EXPECT_EQ(result.observed.num_peers(), result.succeeded);
}

TEST_F(CrawlerFixture, CrawlIsDeterministic) {
  const Crawler crawler;
  const FileCrawl a = crawler.crawl(graph, *truth);
  const FileCrawl b = crawler.crawl(graph, *truth);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.observed.total_objects(), b.observed.total_objects());
}

TEST_F(CrawlerFixture, DuplicatePeerListIsContactedOnce) {
  const Crawler crawler;
  std::vector<NodeId> peers{1, 2, 2, 1, 3};
  const FileCrawl result = crawler.crawl_files(*truth, peers);
  EXPECT_EQ(result.attempted, 3u);
}

TEST_F(CrawlerFixture, OutOfRangePeersAreIgnored) {
  const Crawler crawler;
  const FileCrawl result =
      crawler.crawl_files(*truth, {0, 1, 999'999});
  EXPECT_EQ(result.attempted, 2u);
}

// The experiment behind bench/exp_crawl_bias: the observed (lossy)
// crawl's replication marginals track the ground truth.
TEST_F(CrawlerFixture, LossyCrawlPreservesReplicationShape) {
  const Crawler crawler;  // ~35-40% loss
  const FileCrawl result = crawler.crawl(graph, *truth);
  ASSERT_GT(result.succeeded, truth->num_peers() / 2);

  const auto truth_counts = truth->object_replica_counts();
  const auto observed_counts = result.observed.object_replica_counts();
  const double truth_singleton = util::singleton_fraction(truth_counts);
  const double observed_singleton = util::singleton_fraction(observed_counts);
  // Subsampling peers pushes singletons slightly UP (copies get lost),
  // but the shape is stable.
  EXPECT_GT(observed_singleton, truth_singleton - 0.02);
  EXPECT_LT(observed_singleton, truth_singleton + 0.12);
  // The observed names still realize identically.
  const auto& lib = result.observed.peer_objects(0);
  if (!lib.empty()) {
    EXPECT_FALSE(result.observed.object_name(lib[0]).empty());
  }
}

}  // namespace
}  // namespace qcp2p::crawler
