#include "src/util/jaccard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/util/rng.hpp"

namespace qcp2p::util {
namespace {

using Set = std::unordered_set<int>;

TEST(Jaccard, IdenticalSetsAreOne) {
  const Set a{1, 2, 3};
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
}

TEST(Jaccard, BothEmptyIsOne) {
  const Set e;
  EXPECT_DOUBLE_EQ(jaccard(e, e), 1.0);
}

TEST(Jaccard, DisjointSetsAreZero) {
  const Set a{1, 2}, b{3, 4};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 0.0);
}

TEST(Jaccard, PartialOverlap) {
  const Set a{1, 2, 3}, b{2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 2.0 / 5.0);
}

TEST(Jaccard, SubsetEqualsRatio) {
  const Set a{1, 2}, b{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(jaccard(a, b), 0.5);
}

TEST(Jaccard, Symmetric) {
  const Set a{1, 5, 9}, b{5, 9, 12, 20};
  EXPECT_DOUBLE_EQ(jaccard(a, b), jaccard(b, a));
}

TEST(Jaccard, OneEmpty) {
  const Set a{1}, e;
  EXPECT_DOUBLE_EQ(jaccard(a, e), 0.0);
}

TEST(JaccardSorted, MatchesSetVersionOnRandomInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Set sa, sb;
    const std::size_t na = rng.bounded(30);
    const std::size_t nb = rng.bounded(30);
    for (std::size_t i = 0; i < na; ++i)
      sa.insert(static_cast<int>(rng.bounded(40)));
    for (std::size_t i = 0; i < nb; ++i)
      sb.insert(static_cast<int>(rng.bounded(40)));
    std::vector<int> va(sa.begin(), sa.end()), vb(sb.begin(), sb.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_DOUBLE_EQ(jaccard_sorted(va, vb), jaccard(sa, sb));
  }
}

TEST(IntersectionSize, Basic) {
  const Set a{1, 2, 3}, b{2, 3, 4};
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_EQ(intersection_size(a, Set{}), 0u);
}

TEST(Jaccard, BoundedBetweenZeroAndOne) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Set a, b;
    for (int i = 0; i < 20; ++i) {
      a.insert(static_cast<int>(rng.bounded(25)));
      b.insert(static_cast<int>(rng.bounded(25)));
    }
    const double j = jaccard(a, b);
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0);
  }
}

}  // namespace
}  // namespace qcp2p::util
