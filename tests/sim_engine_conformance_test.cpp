// Conformance matrix for the unified search-engine layer: every entry in
// sim::engine_registry() is exercised through the same Query/SearchOutcome
// contract — degenerate worlds, TTL/budget edge cases, thread-count
// determinism, and bit-for-bit invisibility of an inert with_faults()
// decorator. Adding a registry row makes the new engine run every case
// here with no test edits.
//
// Also covers the bench CLI contract: BenchEnv::from_cli must reject a
// malformed --threads, an unknown --engine/--scenario, and garbage
// fault-shape flags (--loss/--jitter/--offline-fraction) with exit
// code 2.
#include "src/sim/engine_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/fault_decorator.hpp"
#include "src/sim/trial_runner.hpp"

namespace qcp2p::sim {
namespace {

constexpr std::size_t kNodes = 200;

/// Popular object 1 {1,2} on every 7th peer (including the usual test
/// source, node 0), one singleton, and random filler content.
PeerStore conformance_store(std::size_t nodes) {
  PeerStore store(nodes);
  util::Rng rng(12);
  for (NodeId v = 0; v < nodes; v += 7) store.add_object(v, 1, {1, 2});
  store.add_object(static_cast<NodeId>(123 % nodes), 2, {40, 41});
  for (std::uint64_t i = 0; i < 3 * nodes; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(nodes));
    std::vector<TermId> terms;
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      terms.push_back(static_cast<TermId>(rng.bounded(50)));
    }
    store.add_object(peer, 1000 + i, std::move(terms));
  }
  store.finalize();
  return store;
}

/// Owns every piece the registry can wire an engine to, so all six
/// factories succeed against engine_world().
struct ConformanceWorld {
  explicit ConformanceWorld(std::size_t nodes)
      : store(conformance_store(nodes)), graph(0), topo{Graph(0), {}} {
    if (nodes >= 8) {
      util::Rng rng(11);
      graph = overlay::random_regular(nodes, 6, rng);
      overlay::TwoTierParams tp;
      tp.num_nodes = nodes;
      util::Rng topo_rng(13);
      topo = overlay::gnutella_two_tier(tp, topo_rng);
      overlay::GiaParams gp;
      gp.num_nodes = nodes;
      util::Rng gia_rng(17);
      gia = std::make_unique<GiaNetwork>(overlay::gia_topology(gp, gia_rng),
                                         store);
    } else {
      // Too small for the generators: edgeless graphs, everyone a relay.
      graph = Graph(nodes);
      topo = overlay::TwoTierTopology{Graph(nodes),
                                      std::vector<bool>(nodes, true)};
      gia = std::make_unique<GiaNetwork>(
          overlay::GiaTopology{Graph(nodes), std::vector<double>(nodes, 1.0)},
          store);
    }
    dht = std::make_unique<ChordDht>(nodes, 7);
    dht->publish_store(store);
    qrp = std::make_unique<QrpNetwork>(topo, store);
  }

  [[nodiscard]] EngineWorld engine_world() const {
    EngineWorld w;
    w.graph = &graph;
    w.store = &store;
    w.dht = dht.get();
    w.gia = gia.get();
    w.qrp = qrp.get();
    w.walk.walkers = 4;
    w.walk.max_steps = 32;
    w.gia_search.max_steps = 128;
    return w;
  }

  PeerStore store;
  Graph graph;
  overlay::TwoTierTopology topo;
  std::unique_ptr<ChordDht> dht;
  std::unique_ptr<GiaNetwork> gia;
  std::unique_ptr<QrpNetwork> qrp;
};

std::vector<TermId> query_for(std::size_t t) {
  switch (t % 3) {
    case 0: return {1, 2};                          // popular
    case 1: return {40, 41};                        // singleton
    default: return {static_cast<TermId>(t % 50)};  // broad
  }
}

TEST(EngineRegistry, NamesOrderAndLookup) {
  const std::string_view expected[] = {"flood",     "random-walk", "gia",
                                       "hybrid",    "dht-only",    "qrp",
                                       "flood-des", "dht-des",     "adaptive"};
  ASSERT_EQ(engine_registry().size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(engine_registry()[i].name, expected[i]);
    const EngineEntry* found = find_engine(expected[i]);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &engine_registry()[i]);
    EXPECT_NE(engine_names().find(std::string(expected[i])),
              std::string::npos);
  }
  EXPECT_EQ(find_engine("warp-drive"), nullptr);
  EXPECT_EQ(find_engine(""), nullptr);
}

TEST(EngineRegistry, EmptyWorldConstructsNoEngine) {
  const EngineWorld empty;
  for (const EngineEntry& entry : engine_registry()) {
    EXPECT_EQ(entry.make(empty), nullptr) << entry.name;
  }
  EXPECT_EQ(make_engine("warp-drive", empty), nullptr);
}

class EngineConformance
    : public ::testing::TestWithParam<const EngineEntry*> {
 protected:
  static void SetUpTestSuite() {
    if (world_ == nullptr) world_ = new ConformanceWorld(kNodes);
  }

  [[nodiscard]] static std::unique_ptr<SearchEngine> make() {
    return GetParam()->make(world_->engine_world());
  }

  static ConformanceWorld* world_;
};

ConformanceWorld* EngineConformance::world_ = nullptr;

TEST_P(EngineConformance, ConstructsWithNameAndLocateFlag) {
  const auto engine = make();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), GetParam()->name);
  EXPECT_EQ(engine->can_locate(), GetParam()->can_locate);
}

TEST_P(EngineConformance, TtlAndBudgetFloorStillProbeTheSource) {
  // ttl 0 floods nothing; budget 1 allows a single step — but every
  // engine checks the querying peer's own shelf, so content held at the
  // source is found with (nearly) no traffic.
  const auto engine = make();
  EngineContext ctx;
  util::Rng rng(5);
  ctx.rng = &rng;
  const std::vector<TermId> terms{1, 2};
  Query q;
  q.source = 0;  // holds object 1 by construction
  q.terms = terms;
  q.ttl = 0;
  q.budget = 1;
  const SearchOutcome out = engine->search(q, ctx);
  EXPECT_TRUE(out.success);
  ASSERT_FALSE(out.hits.empty());
  EXPECT_TRUE(std::is_sorted(out.hits.begin(), out.hits.end()));
  EXPECT_EQ(std::adjacent_find(out.hits.begin(), out.hits.end()),
            out.hits.end());
  if (GetParam()->name == "flood") {
    EXPECT_EQ(out.messages, 0u);
  }
}

TEST_P(EngineConformance, SingleNodeWorldIsDefined) {
  const ConformanceWorld tiny(1);
  const auto engine = GetParam()->make(tiny.engine_world());
  ASSERT_NE(engine, nullptr);
  EngineContext ctx;
  util::Rng rng(6);
  ctx.rng = &rng;
  const std::vector<TermId> terms{1, 2};
  Query q;
  q.terms = terms;
  const SearchOutcome out = engine->search(q, ctx);
  // The lone node holds object 1: every engine finds it locally.
  EXPECT_TRUE(out.success);
  EXPECT_FALSE(out.hits.empty());
}

TEST_P(EngineConformance, LocateSucceedsWhenTheSourceHoldsTheObject) {
  if (!GetParam()->can_locate) {
    GTEST_SKIP() << "content-only engine";
  }
  const auto engine = make();
  EngineContext ctx;
  util::Rng rng(7);
  ctx.rng = &rng;
  const std::vector<NodeId> holders{3, 9, 42};  // sorted
  Query q;
  q.source = 9;
  q.holders = holders;
  q.ttl = 2;
  const SearchOutcome out = engine->search(q, ctx);
  EXPECT_TRUE(out.success);
}

TEST_P(EngineConformance, DeterministicAcrossThreadCounts) {
  const auto engine = make();
  FaultParams fp;
  fp.loss_rate = 0.1;
  fp.seed = 99;
  util::Rng mask_rng(41);
  const FaultPlan plan(fp, overlay::sample_online(kNodes, 0.75, mask_rng));
  RecoveryPolicy policy;
  policy.max_retries = 2;
  policy.ttl_escalation = 1;
  policy.budget_escalation = 2.0;
  const FaultInjectedEngine faulty = with_faults(*engine, plan, policy);

  const auto run_with = [&](const SearchEngine& e, std::size_t threads) {
    const TrialRunner runner({threads, 4242});
    return runner.run(
        120, [] { return EngineContext{}; },
        [&](std::size_t t, util::Rng& rng, EngineContext& ctx) {
          ctx.rng = &rng;
          const auto terms = query_for(t);
          Query q;
          q.source = static_cast<NodeId>(rng.bounded(kNodes));
          q.terms = terms;
          q.ttl = 2;
          q.trial = t;
          const SearchOutcome r = e.search(q, ctx);
          TrialOutcome out;
          out.success = r.success;
          out.messages = r.messages;
          out.extra[0] = r.fault.dropped;
          out.extra[1] = r.fault.retries;
          out.extra[2] = r.peers_probed;
          return out;
        });
  };

  for (const SearchEngine* e :
       {static_cast<const SearchEngine*>(engine.get()),
        static_cast<const SearchEngine*>(&faulty)}) {
    const TrialAggregate one = run_with(*e, 1);
    for (const std::size_t threads : {2ULL, 8ULL}) {
      const TrialAggregate many = run_with(*e, threads);
      EXPECT_EQ(one.trials, many.trials) << threads << " threads";
      EXPECT_EQ(one.successes, many.successes) << threads << " threads";
      EXPECT_EQ(one.messages, many.messages) << threads << " threads";
      EXPECT_EQ(one.extra, many.extra) << threads << " threads";
    }
  }
}

TEST_P(EngineConformance, InertDecoratorIsBitForBitInvisible) {
  const auto engine = make();
  const FaultPlan inert;  // loss 0, no jitter, no mask
  RecoveryPolicy single_shot;
  single_shot.max_retries = 0;
  const FaultInjectedEngine faulty = with_faults(*engine, inert, single_shot);

  for (std::size_t t = 0; t < 40; ++t) {
    const auto terms = query_for(t);
    Query q;
    q.source = static_cast<NodeId>(t * 7 % kNodes);
    q.terms = terms;
    q.ttl = 2;
    q.trial = t;
    EngineContext plain_ctx, faulty_ctx;
    util::Rng plain_rng(900 + t), faulty_rng(900 + t);
    plain_ctx.rng = &plain_rng;
    faulty_ctx.rng = &faulty_rng;
    const SearchOutcome plain = engine->search(q, plain_ctx);
    const SearchOutcome decorated = faulty.search(q, faulty_ctx);
    EXPECT_EQ(plain.hits, decorated.hits) << "trial " << t;
    EXPECT_EQ(plain.messages, decorated.messages) << "trial " << t;
    EXPECT_EQ(plain.peers_probed, decorated.peers_probed) << "trial " << t;
    EXPECT_EQ(plain.success, decorated.success) << "trial " << t;
    EXPECT_EQ(decorated.fault.dropped, 0u);
    EXPECT_EQ(decorated.fault.retries, 0u);
    // The inert decorator must not have perturbed the rng stream.
    EXPECT_EQ(plain_rng(), faulty_rng()) << "trial " << t;
  }
}

// --- ranked contract (DESIGN.md section 11) -------------------------------

TEST_P(EngineConformance, RankedOutcomeIsCanonicalAndMirroredIntoHits) {
  const auto engine = make();
  for (std::size_t t = 0; t < 30; ++t) {
    const auto terms = query_for(t);
    Query q;
    q.source = static_cast<NodeId>(t * 7 % kNodes);
    q.terms = terms;
    q.ttl = 2;
    q.k = 10;
    q.trial = t;
    EngineContext ctx;
    util::Rng rng(4100 + t);
    ctx.rng = &rng;
    const SearchOutcome out = engine->search(q, ctx);
    EXPECT_LE(out.top_k.size(), 10u) << "trial " << t;
    EXPECT_EQ(out.success, !out.top_k.empty()) << "trial " << t;
    // Canonical order: descending score, ascending id on ties; no
    // duplicate objects.
    for (std::size_t i = 0; i + 1 < out.top_k.size(); ++i) {
      const ScoredMatch& a = out.top_k[i];
      const ScoredMatch& b = out.top_k[i + 1];
      EXPECT_TRUE(a.score > b.score ||
                  (a.score == b.score && a.object < b.object))
          << "trial " << t << " rank " << i;
    }
    // hits mirrors the ranked ids, ascending — set-shaped consumers
    // (caches, holder lookup) keep working unchanged.
    std::vector<std::uint64_t> ids;
    for (const ScoredMatch& m : out.top_k) ids.push_back(m.object);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(out.hits, ids) << "trial " << t;
  }
}

TEST_P(EngineConformance, RankedLargerKIsMonotone) {
  // The k-th-best-stability stop consults k, so k = 1 may terminate
  // earlier than k = 10 — but its PRIMARY expansion never runs longer:
  // an entry into the top-1 is also an entry into the top-10, so the
  // larger k's stall window resets at least as often (DESIGN.md §11).
  // Asserted here is what every engine shares: a larger k holds at
  // least as many results, and success does not depend on k (the stall
  // stop only ever fires with a result in hand, so an empty outcome
  // means the full budget ran — identically for every k). Messages are
  // NOT monotone in k for every engine: hybrid's rare-query detector
  // can see the k = 1 flood's smaller candidate set and fire its DHT
  // fallback, costing more than the k = 10 run.
  const auto engine = make();
  for (std::size_t t = 0; t < 30; ++t) {
    const auto terms = query_for(t);
    const auto run_k = [&](std::uint32_t k) {
      Query q;
      q.source = static_cast<NodeId>(t * 11 % kNodes);
      q.terms = terms;
      q.ttl = 2;
      q.k = k;
      q.trial = t;
      EngineContext ctx;
      util::Rng rng(6200 + t);
      ctx.rng = &rng;
      return engine->search(q, ctx);
    };
    const SearchOutcome ten = run_k(10);
    const SearchOutcome one = run_k(1);
    ASSERT_LE(one.top_k.size(), 1u) << "trial " << t;
    EXPECT_EQ(one.top_k.empty(), ten.top_k.empty()) << "trial " << t;
    EXPECT_GE(ten.top_k.size(), one.top_k.size()) << "trial " << t;
  }
}

TEST_P(EngineConformance, KZeroKeepsExactSetSemantics) {
  // k = 0 is the pre-ranked contract: no ranked payload, and the hit
  // set is untouched by the ranked machinery (same as a search that
  // never heard of scores).
  const auto engine = make();
  for (std::size_t t = 0; t < 30; ++t) {
    const auto terms = query_for(t);
    Query q;
    q.source = static_cast<NodeId>(t * 13 % kNodes);
    q.terms = terms;
    q.ttl = 2;
    q.trial = t;
    EngineContext ctx;
    util::Rng rng(7300 + t);
    ctx.rng = &rng;
    const SearchOutcome out = engine->search(q, ctx);
    EXPECT_TRUE(out.top_k.empty()) << "trial " << t;
    EXPECT_TRUE(std::is_sorted(out.hits.begin(), out.hits.end()))
        << "trial " << t;
  }
}

TEST_P(EngineConformance, RankedDeterministicAcrossThreadCounts) {
  // Byte-identical rankings at any worker count: the digest encodes
  // object ids, score bits, AND rank positions, so a reordered or
  // rescored result changes the aggregate.
  const auto engine = make();
  const auto run_with = [&](std::size_t threads) {
    const TrialRunner runner({threads, 5151});
    return runner.run(
        120, [] { return EngineContext{}; },
        [&](std::size_t t, util::Rng& rng, EngineContext& ctx) {
          ctx.rng = &rng;
          const auto terms = query_for(t);
          Query q;
          q.source = static_cast<NodeId>(rng.bounded(kNodes));
          q.terms = terms;
          q.ttl = 2;
          q.k = 10;
          q.trial = t;
          const SearchOutcome r = engine->search(q, ctx);
          TrialOutcome out;
          out.success = r.success;
          out.messages = r.messages;
          out.extra[0] = r.top_k.size();
          std::uint64_t digest = 0;
          for (std::size_t i = 0; i < r.top_k.size(); ++i) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &r.top_k[i].score, sizeof(bits));
            digest += util::mix64(r.top_k[i].object ^
                                  (static_cast<std::uint64_t>(bits) << 32) ^
                                  (i + 1));
          }
          out.extra[1] = digest;
          return out;
        });
  };
  const TrialAggregate one = run_with(1);
  for (const std::size_t threads : {2ULL, 8ULL}) {
    const TrialAggregate many = run_with(threads);
    EXPECT_EQ(one.successes, many.successes) << threads << " threads";
    EXPECT_EQ(one.messages, many.messages) << threads << " threads";
    EXPECT_EQ(one.extra, many.extra) << threads << " threads";
  }
}

/// A scenario spec with every failure shape nulled out: the compile path
/// and the decorator machinery run, but nothing may perturb the engine.
ScenarioSpec nulled(const ScenarioSpec& spec) {
  ScenarioSpec out = spec;
  out.base.loss_rate = 0.0;
  out.base.jitter_max_ms = 0.0;
  out.burst = BurstLossParams{};
  out.partition = PartitionParams{};
  out.straggler = StragglerParams{};
  out.mid_churn = MidQueryChurnParams{};
  out.offline_fraction = 0.0;
  return out;
}

/// The adaptive recovery stack, armed: hedging, breaker, adaptive
/// timeouts. All three must be provably inert under an inert plan.
/// Retries stay at 0 — a retry on a failed query is legitimate policy
/// behavior (it re-runs the engine and advances the rng) even with no
/// faults, so it cannot be part of a bit-for-bit transparency check.
RecoveryPolicy adaptive_policy(std::uint32_t retries) {
  RecoveryPolicy policy;
  policy.max_retries = retries;
  policy.adaptive_timeout = true;
  policy.max_hedges = 2;
  policy.breaker_failures = 2;
  return policy;
}

TEST_P(EngineConformance, InertScenarioIsBitForBitInvisible) {
  // Every registry scenario with nulled parameters, decorated with the
  // ARMED adaptive policy, must reproduce the undecorated engine exactly:
  // hedging is gated on fault evidence, the breaker on failures, and the
  // adaptive timeout on latency samples — an inert plan produces none.
  const auto engine = make();
  for (const Scenario& scenario : scenario_registry()) {
    const FaultPlan plan = FaultPlan::from_scenario(nulled(scenario.spec),
                                                    world_->graph, 77);
    ASSERT_FALSE(plan.active()) << scenario.name;
    const FaultInjectedEngine faulty =
        with_faults(*engine, plan, adaptive_policy(0));
    for (std::size_t t = 0; t < 12; ++t) {
      const auto terms = query_for(t);
      Query q;
      q.source = static_cast<NodeId>(t * 11 % kNodes);
      q.terms = terms;
      q.ttl = 2;
      q.trial = t;
      EngineContext plain_ctx, faulty_ctx;
      util::Rng plain_rng(500 + t), faulty_rng(500 + t);
      plain_ctx.rng = &plain_rng;
      faulty_ctx.rng = &faulty_rng;
      const SearchOutcome plain = engine->search(q, plain_ctx);
      const SearchOutcome decorated = faulty.search(q, faulty_ctx);
      EXPECT_EQ(plain.hits, decorated.hits)
          << scenario.name << " trial " << t;
      EXPECT_EQ(plain.messages, decorated.messages)
          << scenario.name << " trial " << t;
      EXPECT_EQ(plain.peers_probed, decorated.peers_probed)
          << scenario.name << " trial " << t;
      EXPECT_EQ(plain.success, decorated.success)
          << scenario.name << " trial " << t;
      EXPECT_EQ(decorated.fault.dropped, 0u) << scenario.name;
      EXPECT_EQ(decorated.fault.retries, 0u) << scenario.name;
      EXPECT_EQ(decorated.fault.hedges, 0u) << scenario.name;
      EXPECT_FALSE(decorated.degradation.has_value()) << scenario.name;
      EXPECT_EQ(plain_rng(), faulty_rng())
          << scenario.name << " trial " << t;
    }
  }
}

TEST_P(EngineConformance, ScenariosAreDeterministicAcrossThreadCounts) {
  // Every named scenario (all shapes live: bursts, cuts, stragglers,
  // mid-query crashes) under the armed adaptive policy must aggregate
  // byte-identically for any worker count.
  const auto engine = make();
  for (const Scenario& scenario : scenario_registry()) {
    const FaultPlan plan =
        FaultPlan::from_scenario(scenario.spec, world_->graph, 1234);
    const FaultInjectedEngine faulty =
        with_faults(*engine, plan, adaptive_policy(2));
    const auto run_with = [&](std::size_t threads) {
      const TrialRunner runner({threads, 777});
      return runner.run(
          36, [] { return EngineContext{}; },
          [&](std::size_t t, util::Rng& rng, EngineContext& ctx) {
            ctx.rng = &rng;
            const auto terms = query_for(t);
            Query q;
            q.source = static_cast<NodeId>(rng.bounded(kNodes));
            q.terms = terms;
            q.ttl = 2;
            q.trial = t;
            const SearchOutcome r = faulty.search(q, ctx);
            TrialOutcome out;
            out.success = r.success;
            out.messages = r.messages;
            out.extra[0] = r.fault.dropped;
            out.extra[1] = r.fault.retries;
            out.extra[2] = r.fault.hedges;
            out.extra[3] = r.peers_probed;
            return out;
          });
    };
    const TrialAggregate one = run_with(1);
    for (const std::size_t threads : {2ULL, 8ULL}) {
      const TrialAggregate many = run_with(threads);
      EXPECT_EQ(one.successes, many.successes)
          << scenario.name << " @ " << threads << " threads";
      EXPECT_EQ(one.messages, many.messages)
          << scenario.name << " @ " << threads << " threads";
      EXPECT_EQ(one.extra, many.extra)
          << scenario.name << " @ " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineConformance,
    ::testing::ValuesIn([] {
      std::vector<const EngineEntry*> entries;
      for (const EngineEntry& e : engine_registry()) entries.push_back(&e);
      return entries;
    }()),
    [](const ::testing::TestParamInfo<const EngineEntry*>& param) {
      std::string name(param.param->name);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// --- BenchEnv CLI validation (bugfix: --threads/--engine were accepted
// unchecked; both must now fail fast with exit code 2). ---

bench::BenchEnv env_from(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");
  const util::Cli cli(static_cast<int>(args.size()), args.data());
  return bench::BenchEnv::from_cli(cli);
}

using BenchEnvDeathTest = ::testing::Test;

TEST(BenchEnvDeathTest, RejectsMalformedThreads) {
  EXPECT_EXIT(env_from({"--threads", "banana"}),
              ::testing::ExitedWithCode(2), "--threads");
  EXPECT_EXIT(env_from({"--threads", "-1"}), ::testing::ExitedWithCode(2),
              "--threads");
  EXPECT_EXIT(env_from({"--threads", "8x"}), ::testing::ExitedWithCode(2),
              "--threads");
  EXPECT_EXIT(env_from({"--threads", "5000"}), ::testing::ExitedWithCode(2),
              "--threads");
}

TEST(BenchEnvDeathTest, RejectsUnknownEngine) {
  EXPECT_EXIT(env_from({"--engine", "warp-drive"}),
              ::testing::ExitedWithCode(2), "unknown --engine");
}

TEST(BenchEnvDeathTest, AcceptsValidThreadsAndEngines) {
  EXPECT_EQ(env_from({}).threads, 0u);
  EXPECT_EQ(env_from({"--threads", "8"}).threads, 8u);
  EXPECT_EQ(env_from({}).engine, "");
  for (const EngineEntry& entry : engine_registry()) {
    EXPECT_EQ(env_from({"--engine", std::string(entry.name).c_str()}).engine,
              entry.name);
  }
}

TEST(BenchEnvDeathTest, RejectsUnknownScenario) {
  EXPECT_EXIT(env_from({"--scenario", "warp-storm"}),
              ::testing::ExitedWithCode(2), "unknown --scenario");
  EXPECT_EXIT(env_from({"--scenario", "BURSTY-LOSS"}),
              ::testing::ExitedWithCode(2), "unknown --scenario");
}

TEST(BenchEnvDeathTest, AcceptsEveryRegisteredScenario) {
  EXPECT_EQ(env_from({}).scenario, "");
  for (const Scenario& scenario : scenario_registry()) {
    EXPECT_EQ(
        env_from({"--scenario", std::string(scenario.name).c_str()}).scenario,
        scenario.name);
  }
}

TEST(BenchEnvDeathTest, RejectsMalformedFaultFlags) {
  EXPECT_EXIT(env_from({"--loss", "1.5"}), ::testing::ExitedWithCode(2),
              "--loss");
  EXPECT_EXIT(env_from({"--loss", "0.5x"}), ::testing::ExitedWithCode(2),
              "--loss");
  EXPECT_EXIT(env_from({"--loss", "nan"}), ::testing::ExitedWithCode(2),
              "--loss");
  EXPECT_EXIT(env_from({"--jitter", "-1"}), ::testing::ExitedWithCode(2),
              "--jitter");
  EXPECT_EXIT(env_from({"--offline-fraction", "2"}),
              ::testing::ExitedWithCode(2), "--offline-fraction");
  // Well-formed shapes pass straight through.
  EXPECT_EQ(env_from({"--loss", "0.25", "--jitter", "30"}).scenario, "");
}

}  // namespace
}  // namespace qcp2p::sim
