#include "src/sim/random_walk.hpp"

#include <gtest/gtest.h>

namespace qcp2p::sim {
namespace {

Graph ring_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

TEST(RandomWalkLocate, SourceHoldingSucceedsImmediately) {
  const Graph g = ring_graph(10);
  util::Rng rng(1);
  const std::vector<NodeId> holders{0};
  RandomWalkParams params;
  const RandomWalkResult r = random_walk_locate(g, 0, holders, params, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

TEST(RandomWalkLocate, FindsAdjacentHolderQuickly) {
  const Graph g = ring_graph(8);
  util::Rng rng(2);
  const std::vector<NodeId> holders{1, 7};  // both neighbors of 0
  RandomWalkParams params;
  params.walkers = 2;
  params.max_steps = 4;
  const RandomWalkResult r = random_walk_locate(g, 0, holders, params, rng);
  EXPECT_TRUE(r.success);
  EXPECT_LE(r.messages, 8u);
}

TEST(RandomWalkLocate, BudgetIsRespected) {
  const Graph g = ring_graph(1'000);
  util::Rng rng(3);
  const std::vector<NodeId> holders{500};  // far away
  RandomWalkParams params;
  params.walkers = 2;
  params.max_steps = 10;
  const RandomWalkResult r = random_walk_locate(g, 0, holders, params, rng);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.messages, 20u);
}

TEST(RandomWalkLocate, HighReplicationAlmostAlwaysSucceeds) {
  util::Rng topo_rng(4);
  const Graph g = [&] {
    Graph gg(500);
    for (int i = 0; i < 2'000; ++i) {
      gg.add_edge(static_cast<NodeId>(topo_rng.bounded(500)),
                  static_cast<NodeId>(topo_rng.bounded(500)));
    }
    return gg;
  }();
  // 20% of nodes hold the object.
  std::vector<NodeId> holders;
  for (NodeId v = 0; v < 500; v += 5) holders.push_back(v);

  util::Rng rng(5);
  RandomWalkParams params;
  params.walkers = 4;
  params.max_steps = 64;
  int successes = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto src = static_cast<NodeId>(rng.bounded(500));
    successes += random_walk_locate(g, src, holders, params, rng).success;
  }
  EXPECT_GT(successes, 95);
}

TEST(RandomWalkSearch, ConjunctiveMatchAndDedup) {
  const Graph g = ring_graph(6);
  PeerStore store(6);
  store.add_object(1, 100, {1, 2});
  store.add_object(2, 100, {1, 2});  // replica of the same object
  store.finalize();
  util::Rng rng(6);
  RandomWalkParams params;
  params.walkers = 4;
  params.max_steps = 12;
  params.stop_after_results = 0;  // exhaust budget
  const std::vector<TermId> query{1, 2};
  const RandomWalkResult r = random_walk_search(g, store, 0, query, params, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.results, (std::vector<std::uint64_t>{100}));  // deduplicated
}

TEST(RandomWalkSearch, DegreeBiasedWalkStillTerminates) {
  const Graph g = ring_graph(50);
  PeerStore store(50);
  store.finalize();
  util::Rng rng(7);
  RandomWalkParams params;
  params.degree_biased = true;
  params.walkers = 2;
  params.max_steps = 16;
  const std::vector<TermId> query{9};
  const RandomWalkResult r = random_walk_search(g, store, 0, query, params, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.messages, 32u);
}

TEST(RandomWalk, IsolatedNodeCannotWalk) {
  Graph g(3);  // no edges
  util::Rng rng(8);
  const std::vector<NodeId> holders{2};
  const RandomWalkResult r =
      random_walk_locate(g, 0, holders, RandomWalkParams{}, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

}  // namespace
}  // namespace qcp2p::sim
