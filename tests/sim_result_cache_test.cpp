#include "src/sim/result_cache.hpp"

#include <gtest/gtest.h>

namespace qcp2p::sim {
namespace {

Graph ring_graph(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

struct CacheFixture : ::testing::Test {
  CacheFixture() : graph(ring_graph(30)), store(30) {
    store.add_object(15, 900, {5});
    store.finalize();
  }
  Graph graph;
  PeerStore store;
};

TEST_F(CacheFixture, MissFloodsThenHitIsFree) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, store, params);

  const auto first = net.search(0, std::vector<TermId>{5});
  EXPECT_TRUE(first.success());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.messages, 10u);

  const auto second = net.search(0, std::vector<TermId>{5});
  EXPECT_TRUE(second.success());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.messages, 0u);  // own cache
  EXPECT_NEAR(net.hit_rate(), 0.5, 1e-9);
}

TEST_F(CacheFixture, NeighborCacheAnswersForCheap) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, store, params);
  (void)net.search(1, std::vector<TermId>{5});  // populate node 1's cache
  const auto r = net.search(0, std::vector<TermId>{5});  // 0 adj to 1
  EXPECT_TRUE(r.success());
  EXPECT_TRUE(r.cache_hit);
  EXPECT_LE(r.messages, 2u);  // neighbor probes only
}

TEST_F(CacheFixture, OwnContentBypassesEverything) {
  CachingSearchNetwork net(graph, store);
  const auto r = net.search(15, std::vector<TermId>{5});
  EXPECT_TRUE(r.success());
  EXPECT_EQ(r.messages, 0u);
  EXPECT_FALSE(r.cache_hit);
}

TEST_F(CacheFixture, FailedQueriesAreNotCached) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, store, params);
  const auto a = net.search(0, std::vector<TermId>{999});
  EXPECT_FALSE(a.success());
  const auto b = net.search(0, std::vector<TermId>{999});
  EXPECT_FALSE(b.cache_hit);       // negative results are not cached
  EXPECT_GT(b.messages, 10u);      // pays the flood again
}

TEST_F(CacheFixture, LruEvictionHonorsCapacity) {
  PeerStore many(30);
  for (NodeId v = 0; v < 20; ++v) {
    many.add_object(v, 800 + v, {static_cast<TermId>(100 + v)});
  }
  many.finalize();
  ResultCacheParams params;
  params.capacity = 3;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, many, params);
  for (TermId t = 100; t < 110; ++t) {
    (void)net.search(25, std::vector<TermId>{t});
  }
  EXPECT_LE(net.cached_entries(25), 3u);
}

TEST_F(CacheFixture, EmptyQueryIsNoop) {
  CachingSearchNetwork net(graph, store);
  const auto r = net.search(0, std::vector<TermId>{});
  EXPECT_FALSE(r.success());
  EXPECT_EQ(r.messages, 0u);
}

TEST_F(CacheFixture, HeadRepeatsAmortizeTailDoesNot) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, store, params);
  // 20 repeats of the head query from the same requester: 1 flood total.
  std::uint64_t head_msgs = 0;
  for (int i = 0; i < 20; ++i) {
    head_msgs += net.search(0, std::vector<TermId>{5}).messages;
  }
  // 20 distinct tail queries: 20 floods.
  PeerStore tail_store(30);
  for (NodeId v = 0; v < 20; ++v) {
    tail_store.add_object(v, v, {static_cast<TermId>(500 + v)});
  }
  tail_store.finalize();
  CachingSearchNetwork tail_net(graph, tail_store, params);
  std::uint64_t tail_msgs = 0;
  for (TermId t = 500; t < 520; ++t) {
    tail_msgs += tail_net.search(25, std::vector<TermId>{t}).messages;
  }
  EXPECT_LT(head_msgs * 5, tail_msgs);
}

TEST_F(CacheFixture, PermutedAndDuplicatedQueriesShareOneEntry) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  PeerStore two(30);
  two.add_object(15, 900, {5, 7});
  two.finalize();
  CachingSearchNetwork net(graph, two, params);

  const auto first = net.search(0, std::vector<TermId>{5, 7});
  EXPECT_TRUE(first.success());
  EXPECT_FALSE(first.cache_hit);

  // {7,5} and {5,5,7} are the same conjunctive query as {5,7}: both must
  // hit the entry the first search populated instead of re-flooding.
  const auto swapped = net.search(0, std::vector<TermId>{7, 5});
  EXPECT_TRUE(swapped.cache_hit);
  EXPECT_EQ(swapped.messages, 0u);
  EXPECT_EQ(swapped.results, first.results);

  const auto duplicated = net.search(0, std::vector<TermId>{5, 5, 7});
  EXPECT_TRUE(duplicated.cache_hit);
  EXPECT_EQ(duplicated.messages, 0u);
  EXPECT_EQ(duplicated.results, first.results);

  EXPECT_NEAR(net.hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST_F(CacheFixture, ReinsertRefreshesLruPosition) {
  ResultCacheParams params;
  params.capacity = 2;
  CachingSearchNetwork net(graph, store, params);
  net.prime(0, std::vector<TermId>{101}, {1});
  net.prime(0, std::vector<TermId>{102}, {2});
  // Re-pushing 101 must refresh both its recency and its payload...
  net.prime(0, std::vector<TermId>{101}, {111});
  // ...so a third entry evicts 102 (now the least recently touched).
  net.prime(0, std::vector<TermId>{103}, {3});
  EXPECT_EQ(net.cached_entries(0), 2u);

  const auto kept = net.search(0, std::vector<TermId>{101});
  EXPECT_TRUE(kept.cache_hit);
  EXPECT_EQ(kept.results, (std::vector<std::uint64_t>{111}));

  const auto evicted = net.search(0, std::vector<TermId>{102});
  EXPECT_FALSE(evicted.cache_hit);
}

TEST_F(CacheFixture, MaxAgeEvictsOnDesTime) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  params.max_age_s = 100.0;
  CachingSearchNetwork net(graph, store, params);

  const auto first = net.search(0, std::vector<TermId>{5});
  ASSERT_TRUE(first.success());

  net.advance_clock(50.0);  // still fresh
  EXPECT_TRUE(net.search(0, std::vector<TermId>{5}).cache_hit);
  EXPECT_NE(net.peek(0, std::vector<TermId>{5}), nullptr);

  net.advance_clock(200.0);  // past max_age_s since insertion
  EXPECT_EQ(net.peek(0, std::vector<TermId>{5}), nullptr);
  const auto stale = net.search(0, std::vector<TermId>{5});
  EXPECT_FALSE(stale.cache_hit);   // lazily evicted, re-flooded
  EXPECT_GT(stale.messages, 10u);
  // The re-flood re-primed the entry at t = 200: fresh again.
  EXPECT_TRUE(net.search(0, std::vector<TermId>{5}).cache_hit);
}

TEST_F(CacheFixture, ZeroMaxAgeNeverExpires) {
  ResultCacheParams params;
  params.flood_ttl = 20;  // max_age_s stays 0 = disabled
  CachingSearchNetwork net(graph, store, params);
  (void)net.search(0, std::vector<TermId>{5});
  net.advance_clock(1e12);
  EXPECT_TRUE(net.search(0, std::vector<TermId>{5}).cache_hit);
}

// Regression: under churn a cached result can outlive the ONLY peer
// holding the objects it names, serving phantom hits forever. The
// holder-aware prime() + on_peer_leave() invalidation closes that hole.
TEST_F(CacheFixture, CachedResultDoesNotOutliveItsOnlyHolder) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, store, params);

  // Object 900 lives ONLY on peer 15; cache its result at peer 0.
  const NodeId holders[1] = {15};
  net.prime(0, std::vector<TermId>{5}, {900}, holders);
  ASSERT_NE(net.peek(0, std::vector<TermId>{5}), nullptr);

  net.on_peer_leave(15);  // the only holder departs
  EXPECT_EQ(net.peek(0, std::vector<TermId>{5}), nullptr);
  EXPECT_FALSE(net.search(0, std::vector<TermId>{5}).cache_hit);

  // Unrelated leaves must not disturb other entries.
  net.prime(0, std::vector<TermId>{5}, {900}, holders);
  net.on_peer_leave(7);
  EXPECT_NE(net.peek(0, std::vector<TermId>{5}), nullptr);
}

TEST_F(CacheFixture, PeekIsConstAndTouchReplaysLru) {
  ResultCacheParams params;
  params.capacity = 2;
  CachingSearchNetwork net(graph, store, params);
  net.prime(0, std::vector<TermId>{101}, {1});
  net.prime(0, std::vector<TermId>{102}, {2});

  // peek() must not refresh recency: after peeking 101, inserting a
  // third entry still evicts 101 (the least recently *mutated*).
  ASSERT_NE(net.peek(0, std::vector<TermId>{101}), nullptr);
  net.prime(0, std::vector<TermId>{103}, {3});
  EXPECT_EQ(net.peek(0, std::vector<TermId>{101}), nullptr);

  // touch() is the replayed half: it does refresh recency.
  net.prime(0, std::vector<TermId>{101}, {1});  // evicts 102
  net.touch(0, std::vector<TermId>{102});       // no-op on a miss
  net.touch(0, std::vector<TermId>{103});
  net.prime(0, std::vector<TermId>{104}, {4});  // evicts 101, not 103
  EXPECT_NE(net.peek(0, std::vector<TermId>{103}), nullptr);
  EXPECT_EQ(net.peek(0, std::vector<TermId>{101}), nullptr);
}

TEST_F(CacheFixture, PeekRoutedProbesNeighbors) {
  ResultCacheParams params;
  params.flood_ttl = 20;
  CachingSearchNetwork net(graph, store, params);
  net.prime(1, std::vector<TermId>{5}, {900});  // neighbor of 0 on the ring

  std::uint64_t probes = 0;
  NodeId hit_peer = 99;
  const auto* hit =
      net.peek_routed(0, std::vector<TermId>{5}, probes, hit_peer);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit_peer, 1u);
  EXPECT_GE(probes, 1u);
  EXPECT_EQ(*hit, (std::vector<std::uint64_t>{900}));

  // Local entries win without probing.
  net.prime(0, std::vector<TermId>{5}, {900});
  hit = net.peek_routed(0, std::vector<TermId>{5}, probes, hit_peer);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit_peer, 0u);
  EXPECT_EQ(probes, 0u);

  // Full miss: every neighbor probed, nothing found.
  hit = net.peek_routed(4, std::vector<TermId>{77}, probes, hit_peer);
  EXPECT_EQ(hit, nullptr);
  EXPECT_EQ(probes, 2u);  // ring degree
}

// --- ranked entries (DESIGN.md section 11) --------------------------------

TEST_F(CacheFixture, RankedEntryServesSmallerKAndTighterThreshold) {
  CachingSearchNetwork net(graph, store);
  const NodeId holders[] = {15};
  // A k=10 ranking in canonical order (descending score).
  net.prime_ranked(0, std::vector<TermId>{5},
                   {{900, 3.0f}, {901, 2.0f}, {902, 1.0f}},
                   /*k=*/10, /*min_score=*/0.0f, holders);

  // Any k' <= k with min_score' >= min_score is servable; the caller
  // truncates/refilters, so the cache hands back the full ranking.
  const auto* hit = net.peek_ranked(0, std::vector<TermId>{5}, /*k=*/3,
                                    /*min_score=*/0.5f);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 3u);
  EXPECT_EQ(hit->front().object, 900u);

  // A WIDER request than the entry was computed with cannot be served:
  // the entry may be missing results the wider bounds would admit.
  EXPECT_EQ(net.peek_ranked(0, std::vector<TermId>{5}, /*k=*/11,
                            /*min_score=*/0.0f),
            nullptr);
  EXPECT_EQ(net.peek_ranked(0, std::vector<TermId>{5}, /*k=*/3,
                            /*min_score=*/-1.0f),
            nullptr);

  // Set lookups never see ranked entries and vice versa.
  EXPECT_EQ(net.peek(0, std::vector<TermId>{5}), nullptr);
}

TEST_F(CacheFixture, HolderLeaveInvalidatesWholeRankedEntry) {
  CachingSearchNetwork net(graph, store);
  const NodeId holders[] = {15, 16};
  net.prime_ranked(0, std::vector<TermId>{5},
                   {{900, 3.0f}, {901, 2.0f}},
                   /*k=*/10, /*min_score=*/0.0f, holders);
  ASSERT_NE(net.peek_ranked(0, std::vector<TermId>{5}, 2, 0.0f), nullptr);

  // One holder leaving kills the ENTIRE ranking — truncating it to the
  // surviving holders' objects could silently promote the wrong object
  // into the k-th slot.
  net.on_peer_leave(16);
  EXPECT_EQ(net.peek_ranked(0, std::vector<TermId>{5}, 2, 0.0f), nullptr);
  EXPECT_EQ(net.cached_entries(0), 0u);
}

TEST_F(CacheFixture, RankedAndSetPrimesReplaceEachOther) {
  CachingSearchNetwork net(graph, store);
  net.prime(0, std::vector<TermId>{5}, {900});
  const NodeId holders[] = {15};
  net.prime_ranked(0, std::vector<TermId>{5}, {{900, 3.0f}}, 10, 0.0f,
                   holders);
  EXPECT_EQ(net.peek(0, std::vector<TermId>{5}), nullptr);
  ASSERT_NE(net.peek_ranked(0, std::vector<TermId>{5}, 1, 0.0f), nullptr);
  EXPECT_EQ(net.cached_entries(0), 1u);  // same key, one entry

  net.prime(0, std::vector<TermId>{5}, {900});
  EXPECT_EQ(net.peek_ranked(0, std::vector<TermId>{5}, 1, 0.0f), nullptr);
  ASSERT_NE(net.peek(0, std::vector<TermId>{5}), nullptr);
  EXPECT_EQ(net.cached_entries(0), 1u);
}

}  // namespace
}  // namespace qcp2p::sim
