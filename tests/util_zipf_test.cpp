#include "src/util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "src/util/stats.hpp"

namespace qcp2p::util {
namespace {

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler z(1000, 1.2);
  double sum = 0.0;
  for (std::uint64_t k = 1; k <= 1000; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(z.pmf(0), 0.0);
  EXPECT_EQ(z.pmf(1001), 0.0);
}

TEST(ZipfSampler, SingleElementSupport) {
  const ZipfSampler z(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 1u);
}

TEST(ZipfSampler, SamplesStayInSupport) {
  const ZipfSampler z(50, 0.7);
  Rng rng(2);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t k = z(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 50u);
  }
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf) {
  constexpr std::uint64_t kN = 20;
  const ZipfSampler z(kN, 1.0);
  Rng rng(3);
  constexpr int kDraws = 400'000;
  std::vector<int> counts(kN + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z(rng)];
  for (std::uint64_t k = 1; k <= kN; ++k) {
    const double expected = z.pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, std::max(50.0, expected * 0.05))
        << "rank " << k;
  }
}

TEST(ZipfSampler, ConcurrentPmfCallsAgree) {
  // Regression: the lazily-cached harmonic sum was a plain mutable
  // double written inside const pmf() — a data race when a sampler is
  // shared read-only across TrialRunner workers. Hammer the cold cache
  // from many threads (run under -DQCP2P_SANITIZE=thread to prove it).
  const ZipfSampler z(50'000, 1.1);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 2'000;
  std::vector<double> sums(kThreads, 0.0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&z, &sum = sums[static_cast<std::size_t>(w)]] {
        for (int i = 1; i <= kCallsPerThread; ++i) {
          sum += z.pmf(static_cast<std::uint64_t>(i));
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  // Every thread saw the identical cache value, so the sums are
  // bit-identical, and they match a fresh sampler's serial answer.
  const ZipfSampler fresh(50'000, 1.1);
  double serial = 0.0;
  for (int i = 1; i <= kCallsPerThread; ++i) {
    serial += fresh.pmf(static_cast<std::uint64_t>(i));
  }
  for (double sum : sums) EXPECT_EQ(sum, serial);
}

TEST(ZipfSampler, CopyCarriesThePmfCache) {
  const ZipfSampler a(1'000, 0.9);
  (void)a.pmf(1);  // warm the cache
  const ZipfSampler b = a;
  EXPECT_EQ(b.pmf(17), a.pmf(17));
  ZipfSampler c(10, 2.0);
  c = a;
  EXPECT_EQ(c.pmf(17), a.pmf(17));
  EXPECT_EQ(c.support(), a.support());
}

TEST(ZipfSampler, HarmonicMatchesDirectSum) {
  double direct = 0.0;
  for (std::uint64_t k = 1; k <= 100; ++k) direct += std::pow(k, -1.5);
  EXPECT_NEAR(ZipfSampler::harmonic(100, 1.5), direct, 1e-12);
}

// Property sweep: fitted exponent of a large sample's rank-frequency
// curve tracks the generating exponent across (n, s) combinations.
class ZipfExponentRecovery
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ZipfExponentRecovery, FitRecoversExponent) {
  const auto [n, s] = GetParam();
  const ZipfSampler z(n, s);
  Rng rng(1234);
  std::vector<std::uint64_t> counts(n, 0);
  const int draws = 600'000;
  for (int i = 0; i < draws; ++i) ++counts[z(rng) - 1];

  // Rank-frequency over the counts of actually-drawn ranks.
  std::vector<std::uint64_t> nonzero;
  for (std::uint64_t c : counts) {
    if (c > 0) nonzero.push_back(c);
  }
  const auto curve = rank_frequency(nonzero);
  // Head only: the sampled tail flattens into ties.
  const ZipfFit fit = fit_zipf(curve, std::min<std::size_t>(nonzero.size(), 60));
  EXPECT_NEAR(fit.exponent, s, 0.22) << "n=" << n << " s=" << s;
  EXPECT_GT(fit.r_squared, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZipfExponentRecovery,
    ::testing::Combine(::testing::Values<std::uint64_t>(1'000, 100'000,
                                                        1'000'000),
                       ::testing::Values(0.8, 1.0, 1.3)));

TEST(DiscreteSampler, RejectsEmptyAndZeroWeights) {
  EXPECT_THROW(DiscreteSampler(std::span<const double>{}),
               std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>(zeros)},
               std::invalid_argument);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(4);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler(rng)];
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = w[i] / total * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.05) << "bucket " << i;
  }
}

TEST(DiscreteSampler, NegativeWeightsTreatedAsZero) {
  const std::vector<double> w{-5.0, 1.0};
  const DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) ASSERT_EQ(sampler(rng), 1u);
}

TEST(ZipfPmf, NormalizedAndDecreasing) {
  const auto p = zipf_pmf(100, 1.1);
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += p[i];
    if (i > 0) {
      EXPECT_LT(p[i], p[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace qcp2p::util
