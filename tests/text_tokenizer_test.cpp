#include "src/text/tokenizer.hpp"

#include <gtest/gtest.h>

namespace qcp2p::text {
namespace {

TEST(Tokenize, SplitsOnSeparatorsAndLowercases) {
  const auto tokens = tokenize("Aaron Neville - I Don't Know Much.mp3");
  const std::vector<std::string> expected{"aaron", "neville", "don",
                                          "know", "much"};
  EXPECT_EQ(tokens, expected);  // "I" and "t" dropped (min length 2)
}

TEST(Tokenize, UnderscoresAndDashesSeparate) {
  const auto tokens = tokenize("zarilo_ket-muvalo");
  const std::vector<std::string> expected{"zarilo", "ket", "muvalo"};
  EXPECT_EQ(tokens, expected);
}

TEST(Tokenize, DropsMediaExtensionsByDefault) {
  const auto tokens = tokenize("song.mp3");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "song");
}

TEST(Tokenize, KeepsExtensionWhenDisabled) {
  TokenizerOptions opts;
  opts.drop_extensions = false;
  const auto tokens = tokenize("song.mp3", opts);
  const std::vector<std::string> expected{"song", "mp3"};
  EXPECT_EQ(tokens, expected);
}

TEST(Tokenize, NumericFilter) {
  TokenizerOptions opts;
  opts.drop_numeric = true;
  const auto tokens = tokenize("01 track 128", opts);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "track");
}

TEST(Tokenize, KeepsNumericByDefault) {
  const auto tokens = tokenize("01 Track.wma");
  const std::vector<std::string> expected{"01", "track"};
  EXPECT_EQ(tokens, expected);
}

TEST(Tokenize, EmptyAndSeparatorOnlyInputs) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("--- !!! ...").empty());
}

TEST(Tokenize, MinLengthFilter) {
  TokenizerOptions opts;
  opts.min_length = 4;
  const auto tokens = tokenize("ab abc abcd abcde", opts);
  const std::vector<std::string> expected{"abcd", "abcde"};
  EXPECT_EQ(tokens, expected);
}

TEST(Tokenize, Utf8BytesStayInsideTokens) {
  // "café" in UTF-8: the multi-byte é must not split the token.
  const auto tokens = tokenize("caf\xc3\xa9 night");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "caf\xc3\xa9");
  EXPECT_EQ(tokens[1], "night");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(to_lower("\xc3\x89"), "\xc3\x89");  // É unchanged bytewise
}

TEST(SanitizeFilename, MergesSurfaceVariants) {
  const std::string a = sanitize_filename("Aaron Neville - I Don't Know.mp3");
  const std::string b = sanitize_filename("aaron neville i don t know.mp3");
  const std::string c = sanitize_filename("AARON-NEVILLE---I-DON'T-KNOW.MP3");
  EXPECT_EQ(a, "aaron neville i don t know.mp3");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(SanitizeFilename, PreservesWordContentDifferences) {
  EXPECT_NE(sanitize_filename("Aaron - Know Much.mp3"),
            sanitize_filename("Aaron ft Linda - Know Much.mp3"));
}

TEST(SanitizeFilename, CollapsesSpacesAndTrims) {
  EXPECT_EQ(sanitize_filename("  a   b  "), "a b");
  EXPECT_EQ(sanitize_filename(""), "");
}

TEST(SanitizeFilename, Idempotent) {
  const std::string once = sanitize_filename("A--B__C  d.MP3");
  EXPECT_EQ(sanitize_filename(once), once);
}

TEST(Helpers, ExtensionAndNumericPredicates) {
  EXPECT_TRUE(is_media_extension("mp3"));
  EXPECT_TRUE(is_media_extension("flac"));
  EXPECT_FALSE(is_media_extension("song"));
  EXPECT_TRUE(is_numeric("0123"));
  EXPECT_FALSE(is_numeric("12a"));
  EXPECT_FALSE(is_numeric(""));
}

}  // namespace
}  // namespace qcp2p::text
