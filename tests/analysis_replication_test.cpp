#include "src/analysis/replication.hpp"

#include <gtest/gtest.h>

namespace qcp2p::analysis {
namespace {

TEST(SummarizeReplication, EmptyInput) {
  const ReplicationSummary s = summarize_replication({}, 1000);
  EXPECT_EQ(s.unique_items, 0u);
  EXPECT_EQ(s.total_instances, 0u);
}

TEST(SummarizeReplication, CraftedCounts) {
  // 10,000-peer population -> 0.1% threshold = 10 peers.
  const std::vector<std::uint64_t> counts{1, 1, 1, 1, 1, 1, 2, 5, 10, 50};
  const ReplicationSummary s = summarize_replication(counts, 10'000);
  EXPECT_EQ(s.unique_items, 10u);
  EXPECT_EQ(s.total_instances, 73u);
  EXPECT_DOUBLE_EQ(s.mean_replicas, 7.3);
  EXPECT_DOUBLE_EQ(s.max_replicas, 50.0);
  EXPECT_DOUBLE_EQ(s.singleton_fraction, 0.6);
  EXPECT_EQ(s.milli_threshold, 10u);
  EXPECT_DOUBLE_EQ(s.fraction_under_milli, 0.9);  // all but the 50
  EXPECT_DOUBLE_EQ(s.fraction_20_or_more, 0.1);
}

TEST(SummarizeReplication, SmallPopulationThresholdIsAtLeastOne) {
  const std::vector<std::uint64_t> counts{1, 2};
  const ReplicationSummary s = summarize_replication(counts, 50);
  EXPECT_EQ(s.milli_threshold, 1u);
  EXPECT_DOUBLE_EQ(s.fraction_under_milli, 0.5);
}

TEST(ReplicationRankCurve, Descending) {
  const std::vector<std::uint64_t> counts{2, 9, 4};
  const auto curve = replication_rank_curve(counts);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].y, 9.0);
  EXPECT_EQ(curve[1].y, 4.0);
  EXPECT_EQ(curve[2].y, 2.0);
}

TEST(NameReplicaCounter, CountsDistinctPeersOnly) {
  NameReplicaCounter counter;
  counter.add(0, "song a");
  counter.add(0, "song a");  // same peer twice: still one replica
  counter.add(1, "song a");
  counter.add(1, "song b");
  EXPECT_EQ(counter.unique_names(), 2u);
  auto counts = counter.counts();
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2}));
}

TEST(NameReplicaCounter, ManyPeersOneName) {
  NameReplicaCounter counter;
  for (std::uint32_t p = 0; p < 100; ++p) counter.add(p, "01 Track.wma");
  const auto counts = counter.counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 100u);
}

TEST(NameReplicaCounter, EmptyNameIsAValidName) {
  NameReplicaCounter counter;
  counter.add(0, "");
  counter.add(1, "");
  EXPECT_EQ(counter.unique_names(), 1u);
  EXPECT_EQ(counter.counts()[0], 2u);
}

}  // namespace
}  // namespace qcp2p::analysis
