#include "src/trace/presets.hpp"

#include <gtest/gtest.h>

#include "src/analysis/replication.hpp"
#include "src/util/stats.hpp"

namespace qcp2p::trace {
namespace {

TEST(Presets, UniverseScalesInLockstep) {
  const auto full = presets::universe(1.0);
  const auto eighth = presets::universe(0.125);
  EXPECT_EQ(full.catalog_songs, 2'500'000u);
  EXPECT_EQ(eighth.catalog_songs, 312'500u);
  EXPECT_EQ(full.core_lexicon_size, 60'000u);
  EXPECT_EQ(eighth.tail_lexicon_size, 500'000u);
  // Floors protect degenerate scales.
  const auto tiny = presets::universe(1e-6);
  EXPECT_GE(tiny.catalog_songs, 25'000u);
  EXPECT_GE(tiny.core_lexicon_size, 2'000u);
}

TEST(Presets, April2007MatchesPaperPeerCount) {
  EXPECT_EQ(presets::gnutella_april2007(1.0).num_peers, 37'572u);
  EXPECT_EQ(presets::gnutella_april2007(0.5).num_peers, 18'786u);
}

TEST(Presets, October2006IsSmallerWithBiggerLibraries) {
  const auto oct = presets::gnutella_october2006(1.0);
  const auto apr = presets::gnutella_april2007(1.0);
  EXPECT_LT(oct.num_peers, apr.num_peers);
  EXPECT_GT(oct.mean_objects_per_peer, apr.mean_objects_per_peer);
  // ~8.6M objects total.
  const double total = oct.num_peers * oct.mean_objects_per_peer;
  EXPECT_NEAR(total, 8.6e6, 0.3e6);
}

TEST(Presets, ItunesCampusIsFixedSize) {
  EXPECT_EQ(presets::itunes_campus().num_clients, 239u);
}

TEST(Presets, PhexWeekMatchesPaperVolume) {
  const auto full = presets::phex_week(1.0);
  EXPECT_EQ(full.num_queries, 2'500'000u);
  EXPECT_DOUBLE_EQ(full.duration_hours, 168.0);
  EXPECT_EQ(presets::phex_week(0.1).num_queries, 250'000u);
}

TEST(Presets, October2006CrawlReproducesSimilarMarginals) {
  // The paper: "We observed similar results for our October 2006 data
  // set." Generate both presets at small scale and compare shapes.
  const double scale = 0.02;
  const ContentModel model(presets::universe(scale));
  const CrawlSnapshot apr = generate_gnutella_crawl(
      model, presets::gnutella_april2007(scale));
  const CrawlSnapshot oct = generate_gnutella_crawl(
      model, presets::gnutella_october2006(scale));

  const auto s_apr = analysis::summarize_replication(
      apr.object_replica_counts(), apr.num_peers());
  const auto s_oct = analysis::summarize_replication(
      oct.object_replica_counts(), oct.num_peers());
  EXPECT_NEAR(s_oct.singleton_fraction, s_apr.singleton_fraction, 0.08);
  EXPECT_GT(s_oct.singleton_fraction, 0.6);
  EXPECT_LT(s_oct.fraction_20_or_more, 0.04);
}

}  // namespace
}  // namespace qcp2p::trace
