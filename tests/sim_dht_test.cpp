#include "src/sim/dht.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qcp2p::sim {
namespace {

TEST(ChordDht, RejectsEmptyRing) {
  EXPECT_THROW(ChordDht(0), std::invalid_argument);
}

TEST(ChordDht, SingleNodeOwnsEverything) {
  const ChordDht dht(1);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t key = rng();
    EXPECT_EQ(dht.successor_of(key), 0u);
    const auto r = dht.lookup(key, 0);
    EXPECT_EQ(r.node, 0u);
  }
}

// The core routing property across ring sizes: greedy finger routing
// always lands on the true successor, in O(log N)-ish hops.
class ChordLookupSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordLookupSweep, LookupMatchesSuccessorOf) {
  const std::size_t n = GetParam();
  const ChordDht dht(n);
  util::Rng rng(42);
  double total_hops = 0;
  constexpr int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t key = rng();
    const auto from = static_cast<NodeId>(rng.bounded(n));
    const auto r = dht.lookup(key, from);
    ASSERT_EQ(r.node, dht.successor_of(key)) << "key " << key;
    total_hops += r.hops;
  }
  const double mean_hops = total_hops / kTrials;
  // Chord averages ~0.5 * log2(N); allow generous slack.
  EXPECT_LE(mean_hops, std::log2(static_cast<double>(n)) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ChordLookupSweep,
                         ::testing::Values<std::size_t>(2, 17, 256, 4'096,
                                                        20'000));

TEST(ChordDht, LookupFromResponsibleNodeStillCorrect) {
  const ChordDht dht(64);
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t key = rng();
    const NodeId owner = dht.successor_of(key);
    const auto r = dht.lookup(key, owner);
    EXPECT_EQ(r.node, owner);
  }
}

TEST(ChordDht, NodeIdKeyIsOwnedByThatNode) {
  const ChordDht dht(128);
  for (NodeId v = 0; v < 128; ++v) {
    EXPECT_EQ(dht.successor_of(dht.node_id(v)), v);
  }
}

TEST(ChordDht, PublishAndSearchTerm) {
  ChordDht dht(100);
  dht.publish_term(7, 1'000, 3, 3);
  dht.publish_term(7, 2'000, 9, 9);
  dht.publish_term(8, 3'000, 5, 5);

  const auto r7 = dht.search_term(7, 50);
  ASSERT_EQ(r7.postings.size(), 2u);
  EXPECT_EQ(r7.postings[0].object_id, 1'000u);
  EXPECT_EQ(r7.postings[1].object_id, 2'000u);

  const auto r8 = dht.search_term(8, 0);
  ASSERT_EQ(r8.postings.size(), 1u);
  EXPECT_EQ(r8.postings[0].holder, 5u);

  const auto missing = dht.search_term(99, 0);
  EXPECT_TRUE(missing.postings.empty());
}

TEST(ChordDht, PublishAndSearchObjectDeduplicatesHolders) {
  ChordDht dht(100);
  dht.publish_object(555, 1, 1);
  dht.publish_object(555, 1, 2);  // same holder twice
  dht.publish_object(555, 8, 8);
  const auto r = dht.search_object(555, 40);
  ASSERT_EQ(r.holders.size(), 2u);
}

TEST(ChordDht, PublishStoreIndexesEverything) {
  PeerStore store(10);
  store.add_object(0, 100, {1, 2});
  store.add_object(3, 200, {2});
  store.finalize();
  ChordDht dht(10);
  const std::uint64_t messages = dht.publish_store(store);
  EXPECT_GT(messages, 0u);

  EXPECT_EQ(dht.search_term(2, 5).postings.size(), 2u);
  EXPECT_EQ(dht.search_term(1, 5).postings.size(), 1u);
  EXPECT_EQ(dht.search_object(100, 5).holders.size(), 1u);
}

TEST(ChordDht, HopsGrowLogarithmically) {
  util::Rng rng(11);
  double mean_small = 0, mean_large = 0;
  {
    const ChordDht dht(64);
    for (int i = 0; i < 200; ++i) {
      mean_small += dht.lookup(rng(), static_cast<NodeId>(rng.bounded(64))).hops;
    }
  }
  {
    const ChordDht dht(16'384);
    for (int i = 0; i < 200; ++i) {
      mean_large +=
          dht.lookup(rng(), static_cast<NodeId>(rng.bounded(16'384))).hops;
    }
  }
  mean_small /= 200;
  mean_large /= 200;
  EXPECT_GT(mean_large, mean_small);          // grows with N...
  EXPECT_LT(mean_large, mean_small * 4.0);    // ...but sublinearly (256x N)
}

}  // namespace
}  // namespace qcp2p::sim
