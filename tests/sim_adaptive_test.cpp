#include "src/sim/adaptive.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine_registry.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {
namespace {

constexpr TermId kNiche = 7;
constexpr NodeId kHolder = 12;

Graph ring_graph(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

// Every peer carries 4 filler terms at local frequency 2 (two objects
// each); kHolder additionally carries kNiche at frequency 1. With a
// term budget of 4 the cold (frequency-ranked) synopsis therefore never
// advertises the niche term — only observed query popularity can
// promote it.
PeerStore build_store(NodeId n) {
  PeerStore store(n);
  std::uint64_t id = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (TermId j = 0; j < 4; ++j) {
      const auto filler = static_cast<TermId>(1'000 + v * 4 + j);
      store.add_object(v, id++, {filler});
      store.add_object(v, id++, {filler});
    }
  }
  store.add_object(kHolder, id++, {kNiche});
  store.finalize();
  return store;
}

AdaptiveParams tight_budget() {
  AdaptiveParams p;
  p.synopsis.term_budget = 4;
  return p;
}

struct AdaptiveFixture : ::testing::Test {
  AdaptiveFixture() : graph(ring_graph(16)), store(build_store(16)) {}

  SearchOutcome run(const SearchEngine& engine, NodeId source,
                    std::vector<TermId> terms, std::uint32_t ttl) {
    util::Rng rng(42);
    EngineContext ctx;
    ctx.rng = &rng;
    Query q;
    q.source = source;
    q.terms = terms;
    q.ttl = ttl;
    return engine.search(q, ctx);
  }

  Graph graph;
  PeerStore store;
};

TEST_F(AdaptiveFixture, ColdStartFindsFrequentContent) {
  AdaptiveOverlayNetwork net(graph, store, tight_budget());
  const auto engine = make_adaptive_engine(net);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "adaptive");
  EXPECT_FALSE(engine->can_locate());

  // A filler term IS advertised cold, so the query routes guided.
  const auto out = run(*engine, 2, {static_cast<TermId>(1'000 + 3 * 4)}, 3);
  EXPECT_TRUE(out.success);
  const auto* extras = extras_as<AdaptiveExtras>(out);
  ASSERT_NE(extras, nullptr);
  EXPECT_GT(extras->guided_forwards, 0u);
  ASSERT_TRUE(out.timing.has_value());
  EXPECT_TRUE(out.timing->has_first_hit());
}

TEST_F(AdaptiveFixture, RegistryFactoryColdStartsAndRejectsEmptyWorld) {
  EngineWorld world;
  EXPECT_EQ(make_engine("adaptive", world), nullptr);
  world.graph = &graph;
  EXPECT_EQ(make_engine("adaptive", world), nullptr);  // store missing
  world.store = &store;
  world.adaptive_params = tight_budget();
  const auto engine = make_engine("adaptive", world);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "adaptive");

  // A pre-warmed network is borrowed instead of cold-started.
  AdaptiveOverlayNetwork warmed(graph, store, tight_budget());
  world.adaptive = &warmed;
  const auto borrowed = make_engine("adaptive", world);
  ASSERT_NE(borrowed, nullptr);
  const auto out = run(*borrowed, 2, {static_cast<TermId>(1'000 + 3 * 4)}, 3);
  EXPECT_TRUE(out.success);
}

TEST_F(AdaptiveFixture, ObserveAndRefreshPromotesNewlyHotTerm) {
  AdaptiveOverlayNetwork net(graph, store, tight_budget());
  const std::vector<TermId> niche{kNiche};
  EXPECT_FALSE(net.may_route(kHolder, niche));  // cold: below budget cut
  const std::uint64_t initial_readv = net.readvertisements();
  EXPECT_EQ(initial_readv, 16u);  // one initial advertisement per peer

  for (int i = 0; i < 200; ++i) net.observe_query(niche);
  const std::size_t changed = net.refresh_synopses();
  EXPECT_EQ(changed, 1u);  // only the holder's top-4 actually changed
  EXPECT_TRUE(net.may_route(kHolder, niche));
  EXPECT_EQ(net.readvertisements(), initial_readv + 1);
  EXPECT_GT(net.advertisement_bytes(), 0u);

  // A stable tracker causes no further churn.
  EXPECT_EQ(net.refresh_synopses(), 0u);
}

TEST_F(AdaptiveFixture, AdaptationTurnsLastHopBlindPickIntoGuidedForward) {
  AdaptiveOverlayNetwork net(graph, store, tight_budget());
  const auto engine = make_adaptive_engine(net);

  // ttl=1 from a ring neighbor of the holder: cold, no synopsis matches
  // the niche term, so the only forward is a blind fallback pick.
  const auto cold = run(*engine, kHolder - 1, {kNiche}, 1);
  const auto* cold_extras = extras_as<AdaptiveExtras>(cold);
  ASSERT_NE(cold_extras, nullptr);
  EXPECT_EQ(cold_extras->guided_forwards, 0u);

  for (int i = 0; i < 200; ++i) net.observe_query(std::vector<TermId>{kNiche});
  ASSERT_EQ(net.refresh_synopses(), 1u);

  // Adapted, the holder's synopsis matches: the forward is guided and the
  // search succeeds regardless of the rng draw.
  const auto warm = run(*engine, kHolder - 1, {kNiche}, 1);
  EXPECT_TRUE(warm.success);
  const auto* warm_extras = extras_as<AdaptiveExtras>(warm);
  ASSERT_NE(warm_extras, nullptr);
  EXPECT_GT(warm_extras->guided_forwards, 0u);
  EXPECT_GT(warm_extras->synopsis_filtered, 0u);  // the other neighbor
}

TEST_F(AdaptiveFixture, ForwardsMaskKeepsLeavesFromRelaying) {
  // Mark everything but the source a leaf: the flood cannot spread past
  // hop 1, so a distant holder is unreachable at any ttl.
  std::vector<bool> forwards(16, false);
  forwards[0] = true;
  AdaptiveOverlayNetwork net(graph, store, tight_budget(), &forwards);
  const auto engine = make_adaptive_engine(net);
  const auto out = run(*engine, 0, {kNiche}, 8);
  EXPECT_FALSE(out.success);
  EXPECT_LE(out.peers_probed, 3u);  // source + its ring neighbors at most
}

}  // namespace
}  // namespace qcp2p::sim
