#include "src/core/attenuated.hpp"

#include <gtest/gtest.h>

#include "src/overlay/topology.hpp"

namespace qcp2p::core {
namespace {

Graph line_graph(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

struct LineFixture : ::testing::Test {
  LineFixture() : graph(line_graph(8)), store(8) {
    // Term 50 only at the far end; plenty of noise elsewhere.
    for (NodeId v = 0; v < 8; ++v) {
      store.add_object(v, v, {static_cast<TermId>(v + 1)});
    }
    store.add_object(7, 100, {50});
    store.finalize();
  }
  Graph graph;
  sim::PeerStore store;
};

TEST_F(LineFixture, MatchLevelReflectsHopDistance) {
  AttenuatedParams params;
  params.depth = 4;
  const AttenuatedOverlay overlay(graph, store, params,
                                  SynopsisPolicy::kContentCentric);
  const std::vector<TermId> q{50};
  // Node 6's link toward 7: term 50 is level 0 (the neighbor itself).
  const auto nbrs6 = graph.neighbors(6);
  for (std::size_t i = 0; i < nbrs6.size(); ++i) {
    const auto level = overlay.match_level(6, i, q);
    if (nbrs6[i] == 7) {
      ASSERT_TRUE(level.has_value());
      EXPECT_EQ(*level, 0u);
    }
  }
  // Node 4's link toward 5: term 50 lives 3 hops beyond -> level 2.
  const auto nbrs4 = graph.neighbors(4);
  for (std::size_t i = 0; i < nbrs4.size(); ++i) {
    const auto level = overlay.match_level(4, i, q);
    if (nbrs4[i] == 5) {
      ASSERT_TRUE(level.has_value());
      EXPECT_EQ(*level, 2u);
    } else {
      // Toward node 3 the term is beyond depth 4... except reflections:
      // cumulative merges can reflect terms back; only assert the
      // forward link is at least as good.
      if (level.has_value()) {
        EXPECT_GE(*level, 2u);
      }
    }
  }
}

TEST_F(LineFixture, GradientSearchWalksStraightToTheHolder) {
  AttenuatedParams params;
  params.depth = 4;
  const AttenuatedOverlay overlay(graph, store, params,
                                  SynopsisPolicy::kContentCentric);
  util::Rng rng(1);
  AttenuatedSearchParams sp;
  sp.max_hops = 12;
  const auto r = overlay.search(3, std::vector<TermId>{50}, sp, rng);
  EXPECT_TRUE(r.success);
  // 4 hops to reach node 7 from node 3; the gradient should not wander
  // much beyond that once inside filter range.
  EXPECT_LE(r.messages, 8u);
}

TEST_F(LineFixture, UnknownTermFailsWithinBudget) {
  const AttenuatedOverlay overlay(graph, store, AttenuatedParams{},
                                  SynopsisPolicy::kContentCentric);
  util::Rng rng(2);
  AttenuatedSearchParams sp;
  sp.max_hops = 10;
  const auto r = overlay.search(0, std::vector<TermId>{123'456}, sp, rng);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.messages, 10u);
}

TEST_F(LineFixture, EmptyQueryIsNoop) {
  const AttenuatedOverlay overlay(graph, store, AttenuatedParams{},
                                  SynopsisPolicy::kContentCentric);
  util::Rng rng(3);
  const auto r =
      overlay.search(0, std::vector<TermId>{}, AttenuatedSearchParams{}, rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

TEST_F(LineFixture, AdvertisementBytesScaleWithDepthAndEdges) {
  AttenuatedParams params;
  params.depth = 3;
  params.bloom_bits = 2'048;
  const AttenuatedOverlay overlay(graph, store, params,
                                  SynopsisPolicy::kContentCentric);
  EXPECT_EQ(overlay.advertisement_bytes(),
            2ULL * graph.num_edges() * 3 * (2'048 / 8));
}

TEST(Attenuated, BeatsOneHopSynopsesOnMultiHopContent) {
  // Random graph; a handful of holders of a niche term. At equal hop
  // budgets, depth-3 gradients should find the holders more often than
  // one-hop (depth-1) filters, which only help adjacent to a holder.
  util::Rng rng(5);
  const Graph graph = overlay::random_regular(500, 5, rng);
  sim::PeerStore store(500);
  for (NodeId v = 0; v < 500; ++v) {
    store.add_object(v, v, {static_cast<TermId>(1 + v % 7)});
  }
  for (NodeId v : {50u, 250u, 450u}) store.add_object(v, 900 + v, {77});
  store.finalize();

  AttenuatedParams deep;
  deep.depth = 3;
  AttenuatedParams shallow = deep;
  shallow.depth = 1;
  const AttenuatedOverlay deep_overlay(graph, store, deep,
                                       SynopsisPolicy::kContentCentric);
  const AttenuatedOverlay shallow_overlay(graph, store, shallow,
                                          SynopsisPolicy::kContentCentric);
  AttenuatedSearchParams sp;
  sp.max_hops = 10;
  util::Rng a(6), b(6);
  int deep_ok = 0, shallow_ok = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const auto src = static_cast<NodeId>(a.bounded(500));
    deep_ok += deep_overlay.search(src, std::vector<TermId>{77}, sp, a)
                   .success;
    shallow_ok +=
        shallow_overlay.search(src, std::vector<TermId>{77}, sp, b).success;
  }
  EXPECT_GT(deep_ok, shallow_ok);
}

TEST(Attenuated, QueryCentricPolicySelectsQueriedNicheTerms) {
  util::Rng rng(7);
  const Graph graph = overlay::random_regular(100, 4, rng);
  sim::PeerStore store(100);
  for (NodeId v = 0; v < 100; ++v) {
    for (std::uint64_t o = 0; o < 8; ++o) {
      store.add_object(v, (static_cast<std::uint64_t>(v) << 8) | o,
                       {static_cast<TermId>(1 + (v + o) % 6)});
    }
  }
  store.add_object(42, 9'999, {321});
  store.finalize();

  TermPopularityTracker tracker;
  for (int i = 0; i < 200; ++i) tracker.observe_query({321});

  AttenuatedParams params;
  params.term_budget = 2;  // tight: selection decides everything
  const AttenuatedOverlay content(graph, store, params,
                                  SynopsisPolicy::kContentCentric);
  const AttenuatedOverlay query_centric(
      graph, store, params, SynopsisPolicy::kQueryCentric, &tracker);

  // The holder's neighbors: with content-centric selection, term 321 is
  // squeezed out of node 42's advertisement; query-centric keeps it.
  const auto nbrs_of = [&](const AttenuatedOverlay& o, NodeId v) {
    int matches = 0;
    const auto nbrs = graph.neighbors(v);
    for (NodeId nbr : nbrs) {
      const auto back = graph.neighbors(nbr);
      for (std::size_t i = 0; i < back.size(); ++i) {
        if (back[i] == v &&
            o.match_level(nbr, i, std::vector<TermId>{321})) {
          ++matches;
        }
      }
    }
    return matches;
  };
  EXPECT_EQ(nbrs_of(content, 42), 0);
  EXPECT_GT(nbrs_of(query_centric, 42), 0);
}

}  // namespace
}  // namespace qcp2p::core
