#include "src/trace/query_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace qcp2p::trace {
namespace {

ContentModelParams model_params() {
  ContentModelParams p;
  p.core_lexicon_size = 5'000;
  p.catalog_songs = 50'000;
  p.artists = 2'000;
  p.seed = 41;
  return p;
}

QueryTraceParams small_trace_params() {
  QueryTraceParams p;
  p.num_queries = 40'000;
  p.duration_hours = 48.0;
  p.background_lexicon = 20'000;
  p.p_persistent = 0.50;
  p.seed = 17;
  return p;
}

TEST(QueryTraceParams, ScaledValidates) {
  QueryTraceParams p;
  EXPECT_THROW((void)p.scaled(0.0), std::invalid_argument);
  EXPECT_EQ(p.scaled(0.1).num_queries, 250'000u);
}

TEST(QueryTrace, RightCountSortedAndInRange) {
  const ContentModel model(model_params());
  const QueryTraceParams params = small_trace_params();
  const QueryTrace trace = generate_query_trace(model, params);

  EXPECT_EQ(trace.queries().size(), params.num_queries);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 48.0 * 3600.0);
  double prev = -1.0;
  for (const Query& q : trace.queries()) {
    ASSERT_GE(q.time_s, prev);
    ASSERT_LT(q.time_s, trace.duration_s());
    ASSERT_GE(q.terms.size(), 1u);
    ASSERT_LE(q.terms.size(), 4u);
    ASSERT_TRUE(std::is_sorted(q.terms.begin(), q.terms.end()));
    prev = q.time_s;
  }
}

TEST(QueryTrace, Deterministic) {
  const ContentModel model(model_params());
  const QueryTraceParams params = small_trace_params();
  const QueryTrace a = generate_query_trace(model, params);
  const QueryTrace b = generate_query_trace(model, params);
  ASSERT_EQ(a.queries().size(), b.queries().size());
  for (std::size_t i = 0; i < a.queries().size(); i += 997) {
    EXPECT_EQ(a.queries()[i].terms, b.queries()[i].terms);
    EXPECT_DOUBLE_EQ(a.queries()[i].time_s, b.queries()[i].time_s);
  }
}

TEST(QueryTrace, PersistentPoolDominatesFrequentTerms) {
  const ContentModel model(model_params());
  const QueryTraceParams params = small_trace_params();
  const QueryTrace trace = generate_query_trace(model, params);

  std::unordered_map<TermId, std::uint32_t> counts;
  for (const Query& q : trace.queries()) {
    for (TermId t : q.terms) ++counts[t];
  }
  std::vector<std::pair<std::uint32_t, TermId>> ranked;
  for (const auto& [t, c] : counts) ranked.emplace_back(c, t);
  std::sort(ranked.begin(), ranked.end(), std::greater<>());

  const std::unordered_set<TermId> pool(trace.persistent_terms().begin(),
                                        trace.persistent_terms().end());
  std::size_t from_pool = 0;
  const std::size_t top = std::min<std::size_t>(50, ranked.size());
  for (std::size_t i = 0; i < top; ++i) from_pool += pool.count(ranked[i].second);
  EXPECT_GT(from_pool, top * 6 / 10);
}

TEST(QueryTrace, EventsScheduledWithinDuration) {
  const ContentModel model(model_params());
  QueryTraceParams params = small_trace_params();
  params.transient_events_per_hour = 1.0;
  const QueryTrace trace = generate_query_trace(model, params);
  EXPECT_FALSE(trace.events().empty());
  for (const TransientEvent& ev : trace.events()) {
    EXPECT_GE(ev.start_s, 0.0);
    EXPECT_LE(ev.end_s, trace.duration_s());
    EXPECT_LT(ev.start_s, ev.end_s);
  }
}

TEST(QueryTrace, EventTermsAppearDuringTheirWindow) {
  const ContentModel model(model_params());
  QueryTraceParams params = small_trace_params();
  params.transient_events_per_hour = 0.4;
  params.transient_term_share = 0.08;  // amplified so every event is hit
  const QueryTrace trace = generate_query_trace(model, params);
  ASSERT_FALSE(trace.events().empty());

  // Pick the longest event and check occurrences concentrate inside it.
  const auto longest = std::max_element(
      trace.events().begin(), trace.events().end(),
      [](const TransientEvent& a, const TransientEvent& b) {
        return (a.end_s - a.start_s) < (b.end_s - b.start_s);
      });
  std::size_t inside = 0, outside = 0;
  for (const Query& q : trace.queries()) {
    if (std::find(q.terms.begin(), q.terms.end(), longest->term) ==
        q.terms.end()) {
      continue;
    }
    if (q.time_s >= longest->start_s && q.time_s <= longest->end_s) {
      ++inside;
    } else {
      ++outside;
    }
  }
  EXPECT_GT(inside, 0u);
  // Reuse outside the window can only come from another event picking
  // the same term or the tiny file-term overlap — rare.
  EXPECT_GE(inside, outside * 3);
}

TEST(QueryTrace, SomeQueryTermsAreFileTermsSomeAreNot) {
  const ContentModel model(model_params());
  const QueryTraceParams params = small_trace_params();
  const QueryTrace trace = generate_query_trace(model, params);
  std::size_t core = 0, tail = 0;
  for (const Query& q : trace.queries()) {
    for (TermId t : q.terms) {
      (t < model.core_lexicon_size() ? core : tail) += 1;
    }
  }
  EXPECT_GT(core, 0u);
  EXPECT_GT(tail, 0u);
  // Neither side should vanish: the mismatch needs both populations.
  const double core_share =
      static_cast<double>(core) / static_cast<double>(core + tail);
  EXPECT_GT(core_share, 0.15);
  EXPECT_LT(core_share, 0.85);
}

TEST(QueryTrace, DiurnalModulationShiftsLoad) {
  const ContentModel model(model_params());
  QueryTraceParams params = small_trace_params();
  params.duration_hours = 24.0;
  params.diurnal_amplitude = 0.45;
  const QueryTrace trace = generate_query_trace(model, params);
  // Count queries per 6h quarter; modulation must create imbalance.
  std::array<std::size_t, 4> quarters{};
  for (const Query& q : trace.queries()) {
    ++quarters[static_cast<std::size_t>(q.time_s / (6.0 * 3600.0)) % 4];
  }
  const auto [lo, hi] = std::minmax_element(quarters.begin(), quarters.end());
  EXPECT_GT(static_cast<double>(*hi), 1.15 * static_cast<double>(*lo));
}

}  // namespace
}  // namespace qcp2p::trace
