#include "src/core/bloom.hpp"

#include <gtest/gtest.h>

#include "src/util/rng.hpp"

namespace qcp2p::core {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(4'096, 4);
  util::Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng());
  for (auto k : keys) bf.insert(k);
  for (auto k : keys) EXPECT_TRUE(bf.maybe_contains(k));
  EXPECT_EQ(bf.inserted(), 200u);
}

TEST(BloomFilter, EmptyContainsNothing) {
  const BloomFilter bf(1'024, 4);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(bf.maybe_contains(rng()));
  EXPECT_DOUBLE_EQ(bf.fill_ratio(), 0.0);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf(1'024, 3);
  bf.insert(42);
  EXPECT_TRUE(bf.maybe_contains(42));
  bf.clear();
  EXPECT_FALSE(bf.maybe_contains(42));
  EXPECT_EQ(bf.inserted(), 0u);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a(2'048, 4), b(2'048, 4);
  a.insert(1);
  b.insert(2);
  a.merge(b);
  EXPECT_TRUE(a.maybe_contains(1));
  EXPECT_TRUE(a.maybe_contains(2));
  EXPECT_EQ(a.inserted(), 2u);
}

TEST(BloomFilter, MergeRejectsShapeMismatch) {
  BloomFilter a(1'024, 4), b(2'048, 4), c(1'024, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(BloomFilter, BitsRoundedUpToWord) {
  const BloomFilter bf(1, 1);
  EXPECT_EQ(bf.bit_count(), 64u);
  const BloomFilter bf2(65, 1);
  EXPECT_EQ(bf2.bit_count(), 128u);
}

TEST(BloomFilter, OptimalHashes) {
  // m/n = 10 bits/element -> k = 10 ln2 ~ 6.93 -> 7.
  EXPECT_EQ(BloomFilter::optimal_hashes(1'000, 100), 7u);
  EXPECT_EQ(BloomFilter::optimal_hashes(100, 0), 1u);
  EXPECT_GE(BloomFilter::optimal_hashes(10, 1'000), 1u);
}

// Property sweep: measured FPR stays near the analytical bound across
// (bits, hashes, elements) configurations.
class BloomFprSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::uint32_t, std::size_t>> {};

TEST_P(BloomFprSweep, MeasuredFprNearAnalytical) {
  const auto [bits, hashes, elements] = GetParam();
  BloomFilter bf(bits, hashes);
  util::Rng rng(99);
  for (std::size_t i = 0; i < elements; ++i) bf.insert(rng());

  std::size_t false_positives = 0;
  constexpr std::size_t kProbes = 20'000;
  util::Rng probe_rng(12345);  // disjoint key stream (w.h.p.)
  for (std::size_t i = 0; i < kProbes; ++i) {
    false_positives += bf.maybe_contains(probe_rng());
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  const double analytical = bf.estimated_fpr();
  EXPECT_NEAR(measured, analytical, std::max(0.02, analytical * 0.5))
      << "bits=" << bits << " k=" << hashes << " n=" << elements;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BloomFprSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1'024, 4'096, 16'384),
                       ::testing::Values<std::uint32_t>(2, 4, 8),
                       ::testing::Values<std::size_t>(64, 256, 1'024)));

TEST(BloomFilter, FillRatioGrowsWithInsertions) {
  BloomFilter bf(1'024, 4);
  util::Rng rng(3);
  double prev = 0.0;
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) bf.insert(rng());
    const double fill = bf.fill_ratio();
    EXPECT_GT(fill, prev);
    prev = fill;
  }
  EXPECT_LE(prev, 1.0);
}

}  // namespace
}  // namespace qcp2p::core
