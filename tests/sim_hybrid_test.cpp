#include "src/sim/hybrid.hpp"

#include <gtest/gtest.h>

namespace qcp2p::sim {
namespace {

struct HybridFixture : ::testing::Test {
  HybridFixture() : graph(build_graph()), store(20), dht(20) {
    // Popular object 100 {1,2}: on many peers near everyone.
    for (NodeId v : {1u, 3u, 5u, 7u, 9u, 11u, 13u}) {
      store.add_object(v, 100, {1, 2});
    }
    // Rare object 200 {8,9}: one peer on the far side of the ring.
    store.add_object(10, 200, {8, 9});
    store.finalize();
    dht.publish_store(store);
  }

  static Graph build_graph() {
    Graph g(20);  // ring
    for (NodeId v = 0; v < 20; ++v) g.add_edge(v, (v + 1) % 20);
    return g;
  }

  Graph graph;
  PeerStore store;
  ChordDht dht;
};

TEST_F(HybridFixture, PopularQueryResolvedByFloodAlone) {
  HybridParams params;
  params.flood_ttl = 3;
  params.rare_cutoff = 1;  // any result suffices
  const std::vector<TermId> query{1, 2};
  const HybridResult r =
      hybrid_search(graph, store, dht, 0, query, params);
  EXPECT_TRUE(r.success());
  EXPECT_FALSE(r.used_dht);
  EXPECT_EQ(r.dht_messages, 0u);
  EXPECT_GT(r.flood_messages, 0u);
  EXPECT_EQ(r.results, (std::vector<std::uint64_t>{100}));
}

TEST_F(HybridFixture, RareQueryFallsBackToDht) {
  HybridParams params;
  params.flood_ttl = 2;  // cannot reach peer 19 from 0
  params.rare_cutoff = 1;
  const std::vector<TermId> query{8, 9};
  const HybridResult r =
      hybrid_search(graph, store, dht, 0, query, params);
  EXPECT_TRUE(r.success());
  EXPECT_TRUE(r.used_dht);
  EXPECT_GT(r.dht_messages, 0u);
  EXPECT_EQ(r.results, (std::vector<std::uint64_t>{200}));
}

TEST_F(HybridFixture, RareCutoffTriggersDhtEvenAfterFloodHits) {
  HybridParams params;
  params.flood_ttl = 3;
  params.rare_cutoff = 20;  // Loo et al.: < 20 results means rare
  const std::vector<TermId> query{1, 2};
  const HybridResult r =
      hybrid_search(graph, store, dht, 0, query, params);
  EXPECT_TRUE(r.used_dht);  // 1 result < 20 -> re-issued
  EXPECT_TRUE(r.success());
  EXPECT_EQ(r.total_messages(), r.flood_messages + r.dht_messages);
}

TEST_F(HybridFixture, DhtOnlyConjunction) {
  const std::vector<TermId> both{1, 2};
  const HybridResult r = dht_only_search(dht, 4, both);
  EXPECT_TRUE(r.success());
  EXPECT_EQ(r.results, (std::vector<std::uint64_t>{100}));
  EXPECT_EQ(r.flood_messages, 0u);

  // Terms on different objects only: conjunction is empty.
  const std::vector<TermId> cross{1, 8};
  const HybridResult none = dht_only_search(dht, 4, cross);
  EXPECT_FALSE(none.success());
  EXPECT_TRUE(none.used_dht);
}

TEST_F(HybridFixture, EmptyQueryIsNoop) {
  const std::vector<TermId> empty;
  const HybridResult r =
      hybrid_search(graph, store, dht, 0, empty, HybridParams{});
  EXPECT_FALSE(r.success());
  EXPECT_EQ(r.total_messages(), 0u);
  const HybridResult d = dht_only_search(dht, 0, empty);
  EXPECT_FALSE(d.success());
}

TEST_F(HybridFixture, ReplicatedObjectCountedOnceInDhtResults) {
  // Object 100 has 7 holders -> 7 postings per term, but one result.
  const std::vector<TermId> query{1, 2};
  const HybridResult r = dht_only_search(dht, 0, query);
  EXPECT_EQ(r.results.size(), 1u);
}

}  // namespace
}  // namespace qcp2p::sim
