#include "src/sim/gia.hpp"

#include <gtest/gtest.h>

namespace qcp2p::sim {
namespace {

GiaNetwork make_network(std::size_t n, std::uint64_t seed,
                        std::vector<std::pair<NodeId, std::uint64_t>> objects,
                        std::vector<TermId> terms = {1, 2}) {
  overlay::GiaParams params;
  params.num_nodes = n;
  util::Rng rng(seed);
  overlay::GiaTopology topo = overlay::gia_topology(params, rng);
  PeerStore store(n);
  for (const auto& [peer, id] : objects) store.add_object(peer, id, terms);
  store.finalize();
  return GiaNetwork(std::move(topo), std::move(store));
}

TEST(GiaNetwork, OneHopMatchSeesNeighborContent) {
  GiaNetwork net = make_network(200, 1, {{50, 900}});
  const std::vector<TermId> query{1, 2};
  // Peer 50 itself matches.
  EXPECT_EQ(net.match_with_one_hop(50, query),
            (std::vector<std::uint64_t>{900}));
  // Every neighbor of 50 also "matches" through the replicated index.
  for (NodeId nbr : net.graph().neighbors(50)) {
    EXPECT_EQ(net.match_with_one_hop(nbr, query),
              (std::vector<std::uint64_t>{900}));
  }
}

TEST(GiaNetwork, SearchFindsWellReplicatedContent) {
  std::vector<std::pair<NodeId, std::uint64_t>> objects;
  for (NodeId v = 0; v < 400; v += 10) objects.emplace_back(v, 900);  // 10%
  GiaNetwork net = make_network(400, 2, objects);
  util::Rng rng(3);
  GiaSearchParams params;
  params.max_steps = 256;
  int successes = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<NodeId>(rng.bounded(400));
    const std::vector<TermId> query{1, 2};
    successes += net.search(src, query, params, rng).success;
  }
  EXPECT_GT(successes, 45);
}

TEST(GiaNetwork, SearchRespectsMessageBudget) {
  GiaNetwork net = make_network(500, 4, {});  // nothing to find
  util::Rng rng(5);
  GiaSearchParams params;
  params.max_steps = 37;
  const std::vector<TermId> query{1, 2};
  const GiaSearchResult r = net.search(0, query, params, rng);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.messages, 37u);
}

TEST(GiaNetwork, LocateUsesOneHopCoverage) {
  GiaNetwork net = make_network(300, 6, {});
  util::Rng rng(7);
  // Pick a holder and query from one of its neighbors: success must be
  // immediate because the neighbor indexes the holder's content.
  const NodeId holder = 123;
  const auto nbrs = net.graph().neighbors(holder);
  ASSERT_FALSE(nbrs.empty());
  const std::vector<NodeId> holders{holder};
  GiaSearchParams params;
  params.max_steps = 0;  // no walking allowed
  const GiaSearchResult r = net.locate(nbrs[0], holders, params, rng);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.messages, 0u);
}

TEST(GiaNetwork, LocateFailsWhenUnreachableWithinBudget) {
  GiaNetwork net = make_network(2'000, 8, {});
  util::Rng rng(9);
  GiaSearchParams params;
  params.max_steps = 1;
  // A single far-away holder: 1 step almost surely misses.
  const std::vector<NodeId> holders{1'999};
  int successes = 0;
  for (int trial = 0; trial < 30; ++trial) {
    successes += net.locate(0, holders, params, rng).success;
  }
  EXPECT_LT(successes, 5);
}

TEST(GiaNetwork, BiasedWalkVisitsHighCapacityNodesMore) {
  GiaNetwork net = make_network(1'000, 10, {});
  util::Rng rng(11);
  GiaSearchParams params;
  params.max_steps = 200;
  params.stop_after_results = 0;
  // Track visit capacity through repeated searches with no content.
  double visited_capacity = 0;
  std::size_t visits = 0;
  for (int trial = 0; trial < 20; ++trial) {
    NodeId at = static_cast<NodeId>(rng.bounded(1'000));
    for (int step = 0; step < 100; ++step) {
      const auto nbrs = net.graph().neighbors(at);
      if (nbrs.empty()) break;
      // Reproduce the biased step through the public search: instead we
      // just sample neighbors with the same bias via search() cost --
      // here we assert the static property that capacity correlates
      // with degree, which the bias exploits.
      at = nbrs[rng.bounded(nbrs.size())];
      visited_capacity += net.capacity(at);
      ++visits;
    }
  }
  double population_capacity = 0;
  for (NodeId v = 0; v < 1'000; ++v) population_capacity += net.capacity(v);
  // Random-walk stationary distribution ~ degree ~ capacity^alpha, so
  // mean visited capacity exceeds the population mean.
  EXPECT_GT(visited_capacity / static_cast<double>(visits),
            population_capacity / 1'000.0);
}

}  // namespace
}  // namespace qcp2p::sim
