// Protocol-level churn: servent connection management, bounded route
// tables, and tracker persistence across "restarts".
#include <gtest/gtest.h>

#include <deque>
#include <sstream>

#include "src/core/term_tracker.hpp"
#include "src/gnutella/servent.hpp"

namespace qcp2p::gnutella {
namespace {

TEST(ServentChurn, AddRemoveNeighbors) {
  sim::PeerStore store(4);
  store.finalize();
  Servent s(0, &store, {1, 2});
  EXPECT_FALSE(s.add_neighbor(1));   // already connected
  EXPECT_FALSE(s.add_neighbor(0));   // self
  EXPECT_TRUE(s.add_neighbor(3));
  EXPECT_EQ(s.neighbors().size(), 3u);
  EXPECT_TRUE(s.remove_neighbor(1));
  EXPECT_FALSE(s.remove_neighbor(1));  // already gone
  EXPECT_EQ(s.neighbors().size(), 2u);
}

TEST(ServentChurn, DroppedNeighborStopsReceivingForwards) {
  sim::PeerStore store(3);
  store.finalize();
  Servent s(0, &store, {1, 2});
  s.remove_neighbor(2);
  std::vector<NodeId> recipients;
  util::Rng rng(1);
  s.originate_query({7}, 5, rng, [&](NodeId to, const Descriptor&) {
    recipients.push_back(to);
  });
  EXPECT_EQ(recipients, (std::vector<NodeId>{1}));
}

TEST(ServentChurn, RouteExpiryBoundsTheTableAndDropsLateHits) {
  sim::PeerStore store(2);
  store.finalize();
  Servent s(0, &store, {1});
  util::Rng rng(2);
  const Servent::SendFn discard = [](NodeId, const Descriptor&) {};

  // Originate many queries, keeping only the freshest 10 routes.
  std::deque<Guid> guids;
  for (int i = 0; i < 50; ++i) {
    guids.push_back(s.originate_query({7}, 1, rng, discard));
    s.expire_routes(10);
  }
  EXPECT_LE(s.route_table_size(), 10u);

  // A hit for an expired (early) GUID is silently dropped...
  std::size_t delivered = 0;
  const Servent::HitFn on_hit = [&](const Descriptor&) { ++delivered; };
  Descriptor late;
  late.header.type = DescriptorType::kQueryHit;
  late.header.guid = guids.front();
  s.handle(1, late, discard, on_hit);
  EXPECT_EQ(delivered, 0u);

  // ...while a hit for a fresh GUID still comes home.
  Descriptor fresh;
  fresh.header.type = DescriptorType::kQueryHit;
  fresh.header.guid = guids.back();
  s.handle(1, fresh, discard, on_hit);
  EXPECT_EQ(delivered, 1u);
}

TEST(TrackerPersistence, SaveLoadRoundTrip) {
  core::TermPopularityTracker tracker;
  for (int i = 0; i < 500; ++i) tracker.observe_query({1, 2});
  for (int i = 0; i < 40; ++i) tracker.observe_query({99});

  std::stringstream buffer;
  tracker.save(buffer);
  const core::TermPopularityTracker restored =
      core::TermPopularityTracker::load(buffer);

  EXPECT_NEAR(restored.score(1), tracker.score(1), 1e-9);
  EXPECT_NEAR(restored.burst_score(99), tracker.burst_score(99), 1e-9);
  EXPECT_EQ(restored.is_transient(99), tracker.is_transient(99));
  EXPECT_EQ(restored.tracked_terms(), tracker.tracked_terms());
  EXPECT_DOUBLE_EQ(restored.clock(), tracker.clock());
  EXPECT_EQ(restored.top_terms(3), tracker.top_terms(3));
}

TEST(TrackerPersistence, RejectsGarbage) {
  std::stringstream bad("not a tracker\n");
  EXPECT_THROW((void)core::TermPopularityTracker::load(bad),
               std::runtime_error);
  std::stringstream no_clock("tracker v1\n");
  EXPECT_THROW((void)core::TermPopularityTracker::load(no_clock),
               std::runtime_error);
}

TEST(TrackerPersistence, RestoredTrackerKeepsLearning) {
  core::TermPopularityTracker tracker;
  for (int i = 0; i < 2'000; ++i) tracker.observe_query({1});
  std::stringstream buffer;
  tracker.save(buffer);
  core::TermPopularityTracker restored =
      core::TermPopularityTracker::load(buffer);
  // The restored peer sees a fresh burst and flags it immediately.
  for (int i = 0; i < 30; ++i) restored.observe_query({777});
  EXPECT_TRUE(restored.is_transient(777));
  EXPECT_FALSE(restored.is_transient(1));
}

}  // namespace
}  // namespace qcp2p::gnutella
