#include "src/trace/content_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/text/tokenizer.hpp"

namespace qcp2p::trace {
namespace {

ContentModelParams small_params() {
  ContentModelParams p;
  p.core_lexicon_size = 2'000;
  p.catalog_songs = 10'000;
  p.artists = 500;
  p.seed = 11;
  return p;
}

TEST(ContentModel, SpellTermIsBijectiveOnSample) {
  std::set<std::string> words;
  for (text::TermId id = 0; id < 50'000; ++id) {
    words.insert(ContentModel::spell_term(id));
  }
  EXPECT_EQ(words.size(), 50'000u);
}

TEST(ContentModel, SpellTermIsTokenizerSafe) {
  // Spellings must survive tokenization unchanged (lowercase, length>=2,
  // no separators), so string and id pipelines agree.
  for (text::TermId id : {0u, 1u, 39u, 40u, 1599u, 123456u}) {
    const std::string w = ContentModel::spell_term(id);
    const auto tokens = text::tokenize(w);
    ASSERT_EQ(tokens.size(), 1u) << w;
    EXPECT_EQ(tokens[0], w);
  }
}

TEST(ContentModel, DeterministicAcrossInstances) {
  const ContentModel a(small_params());
  const ContentModel b(small_params());
  for (SongId s : {0u, 5u, 9'999u}) {
    EXPECT_EQ(a.song_terms(s), b.song_terms(s));
    EXPECT_EQ(a.song_artist(s), b.song_artist(s));
    EXPECT_EQ(a.variant_name(s, 0), b.variant_name(s, 0));
    EXPECT_EQ(a.variant_name(s, 3), b.variant_name(s, 3));
  }
}

TEST(ContentModel, SeedChangesUniverse) {
  ContentModelParams p2 = small_params();
  p2.seed = 12;
  const ContentModel a(small_params());
  const ContentModel b(p2);
  int same = 0;
  for (SongId s = 0; s < 50; ++s) same += (a.song_terms(s) == b.song_terms(s));
  EXPECT_LT(same, 5);
}

TEST(ContentModel, VariantKinds) {
  EXPECT_EQ(ContentModel::variant_kind(0), VariantKind::kCanonical);
  EXPECT_EQ(ContentModel::variant_kind(1), VariantKind::kStructural);
  EXPECT_EQ(ContentModel::variant_kind(4), VariantKind::kStructural);
  EXPECT_EQ(ContentModel::variant_kind(5), VariantKind::kSurface);
  EXPECT_EQ(ContentModel::variant_kind(12), VariantKind::kSurface);
  EXPECT_EQ(ContentModel::structural_signature(0), 0u);
  EXPECT_EQ(ContentModel::structural_signature(5), 0u);
  EXPECT_EQ(ContentModel::structural_signature(9), 0u);
  EXPECT_EQ(ContentModel::structural_signature(1), 1u);
  EXPECT_EQ(ContentModel::structural_signature(4), 4u);
}

TEST(ContentModel, SurfaceVariantsSanitizeToCanonical) {
  const ContentModel m(small_params());
  int checked = 0;
  for (SongId s = 0; s < 200; ++s) {
    const std::string canon = text::sanitize_filename(m.variant_name(s, 0));
    for (std::uint32_t k : {5u, 7u, 9u}) {
      EXPECT_EQ(text::sanitize_filename(m.variant_name(s, k)), canon)
          << "song " << s << " variant " << k;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 600);
}

TEST(ContentModel, SurfaceVariantsDifferBeforeSanitization) {
  const ContentModel m(small_params());
  int distinct = 0;
  for (SongId s = 0; s < 200; ++s) {
    distinct += (m.variant_name(s, 5) != m.variant_name(s, 0));
  }
  // Styles are random per (song, variant); the overwhelming majority
  // must differ from canonical or Fig 2 could not merge anything.
  EXPECT_GT(distinct, 150);
}

TEST(ContentModel, StructuralVariantsChangeTerms) {
  const ContentModel m(small_params());
  int changed = 0;
  for (SongId s = 0; s < 300; ++s) {
    if (m.variant_terms(s, 2) != m.variant_terms(s, 0)) ++changed;
  }
  EXPECT_GT(changed, 250);
}

TEST(ContentModel, VariantNameMatchesVariantTermsThroughTokenizer) {
  const ContentModel m(small_params());
  for (SongId s = 0; s < 100; ++s) {
    for (std::uint32_t k : {0u, 1u, 2u, 4u}) {
      const auto tokens = text::tokenize(m.variant_name(s, k));
      const auto terms = m.variant_terms(s, k);
      ASSERT_EQ(tokens.size(), terms.size()) << "song " << s << " k " << k;
      for (std::size_t i = 0; i < terms.size(); ++i) {
        EXPECT_EQ(tokens[i], ContentModel::spell_term(terms[i]));
      }
    }
  }
}

TEST(ContentModel, TailTermsLiveAboveCoreLexicon) {
  const ContentModel m(small_params());
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_GE(m.tail_term(key), m.core_lexicon_size());
  }
}

TEST(ContentModel, DrawCoreTermFavorsLowRanks) {
  const ContentModel m(small_params());
  util::Rng rng(3);
  std::size_t low = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    if (m.draw_core_term(rng) < 20) ++low;
  }
  // Zipf(1.05) over 2000 terms puts a large share in the top 20 ranks.
  EXPECT_GT(low, kDraws / 5);
}

TEST(ContentModel, GenreNamesAndPools) {
  const ContentModel m(small_params());
  EXPECT_EQ(m.genre_name(0), "Rock");
  EXPECT_EQ(m.genre_name(23), "Acoustic");
  EXPECT_EQ(m.genre_name(100).rfind("my-", 0), 0u);  // invented genre
  EXPECT_GT(ContentModel::nonspecific_pool_size(), 0u);
  EXPECT_FALSE(ContentModel::nonspecific_name(0).empty());
}

TEST(ContentModel, ArtistAndAlbumAreDeterministic) {
  const ContentModel m(small_params());
  for (SongId s = 0; s < 50; ++s) {
    EXPECT_EQ(m.song_album(s), m.song_album(s));
    EXPECT_EQ(m.artist_name(m.song_artist(s)), m.artist_name(m.song_artist(s)));
  }
}

TEST(ContentModel, SongTermsIncludeArtistTerms) {
  const ContentModel m(small_params());
  for (SongId s = 0; s < 50; ++s) {
    const auto artist = m.artist_terms(m.song_artist(s));
    const auto all = m.song_terms(s);
    ASSERT_GE(all.size(), artist.size());
    for (std::size_t i = 0; i < artist.size(); ++i) {
      EXPECT_EQ(all[i], artist[i]);
    }
  }
}

}  // namespace
}  // namespace qcp2p::trace
