#include "src/sim/pastry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace qcp2p::sim {
namespace {

TEST(PastryDht, ValidatesParameters) {
  EXPECT_THROW(PastryDht(0), std::invalid_argument);
  EXPECT_THROW(PastryDht(10, 1, 0), std::invalid_argument);
  EXPECT_THROW(PastryDht(10, 1, 5), std::invalid_argument);  // 5 ∤ 64
}

TEST(PastryDht, SingleNodeOwnsEverything) {
  const PastryDht dht(1);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t key = rng();
    EXPECT_EQ(dht.closest_of(key), 0u);
    EXPECT_EQ(dht.lookup(key, 0).node, 0u);
  }
}

TEST(PastryDht, ClosestOfIsNumericallyClosest) {
  const PastryDht dht(200);
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const NodeId claimed = dht.closest_of(key);
    const std::uint64_t d_claimed =
        std::min(dht.node_id(claimed) - key, key - dht.node_id(claimed));
    for (NodeId v = 0; v < 200; ++v) {
      const std::uint64_t d =
          std::min(dht.node_id(v) - key, key - dht.node_id(v));
      ASSERT_GE(d, d_claimed) << "node " << v << " closer than claimed";
    }
  }
}

// Core routing property across ring sizes: prefix routing always reaches
// the numerically closest node in O(log_16 N)-ish hops.
class PastryLookupSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PastryLookupSweep, LookupReachesClosestNode) {
  const std::size_t n = GetParam();
  const PastryDht dht(n);
  util::Rng rng(33);
  double total_hops = 0;
  constexpr int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t key = rng();
    const auto from = static_cast<NodeId>(rng.bounded(n));
    const auto r = dht.lookup(key, from);
    ASSERT_EQ(r.node, dht.closest_of(key)) << "key " << key;
    total_hops += r.hops;
  }
  // Pastry routes in ~log_{2^b} N hops; generous slack for rule-3 steps.
  EXPECT_LE(total_hops / kTrials,
            std::log2(static_cast<double>(n)) / 4.0 + 3.0);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, PastryLookupSweep,
                         ::testing::Values<std::size_t>(2, 33, 512, 8'192,
                                                        40'000));

TEST(PastryDht, LookupFromOwnerIsFree) {
  const PastryDht dht(256);
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t key = rng();
    const NodeId owner = dht.closest_of(key);
    const auto r = dht.lookup(key, owner);
    EXPECT_EQ(r.node, owner);
    EXPECT_EQ(r.hops, 0u);
  }
}

TEST(PastryDht, HopsScaleSubLinearly) {
  util::Rng rng(5);
  auto mean_hops = [&](std::size_t n) {
    const PastryDht dht(n);
    double total = 0;
    for (int i = 0; i < 150; ++i) {
      total += dht.lookup(rng(), static_cast<NodeId>(rng.bounded(n))).hops;
    }
    return total / 150.0;
  };
  const double small = mean_hops(128);
  const double large = mean_hops(32'768);  // 256x more nodes
  EXPECT_LT(large, small * 4.0);
}

TEST(PastryDht, WiderDigitsRouteFaster) {
  util::Rng rng(6);
  auto mean_hops = [&](std::uint32_t b) {
    const PastryDht dht(8'192, 0xBA57ULL, b);
    double total = 0;
    for (int i = 0; i < 200; ++i) {
      total += dht.lookup(rng(), static_cast<NodeId>(rng.bounded(8'192))).hops;
    }
    return total / 200.0;
  };
  // b=8 (256-ary digits) needs fewer hops than b=2 (4-ary).
  EXPECT_LT(mean_hops(8), mean_hops(2));
}

}  // namespace
}  // namespace qcp2p::sim
