#include "src/overlay/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qcp2p::overlay {
namespace {

TEST(RandomGraph, ConnectedWithExpectedDegree) {
  util::Rng rng(1);
  const Graph g = random_graph(2'000, 8.0, rng);
  EXPECT_EQ(g.num_nodes(), 2'000u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NEAR(g.mean_degree(), 8.0, 1.0);
}

TEST(RandomGraph, TinyInputs) {
  util::Rng rng(2);
  EXPECT_EQ(random_graph(0, 4.0, rng).num_nodes(), 0u);
  EXPECT_EQ(random_graph(1, 4.0, rng).num_edges(), 0u);
}

// Parameterized sweep: every standard topology must come out connected
// with sane degrees across sizes.
class RandomRegularSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RandomRegularSweep, NearRegularAndConnected) {
  const auto [n, d] = GetParam();
  util::Rng rng(3);
  const Graph g = random_regular(n, d, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NEAR(g.mean_degree(), static_cast<double>(d),
              0.15 * static_cast<double>(d) + 0.5);
  // No node wildly exceeds the target degree (configuration model drops
  // duplicates; patching adds at most a few).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(g.degree(v), d + 6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomRegularSweep,
    ::testing::Combine(::testing::Values<std::size_t>(100, 1'000, 5'000),
                       ::testing::Values<std::size_t>(3, 8, 20)));

TEST(RandomRegular, RejectsDegreeAtLeastN) {
  util::Rng rng(4);
  EXPECT_THROW(random_regular(5, 5, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, PowerLawHubsEmerge) {
  util::Rng rng(5);
  const Graph g = barabasi_albert(3'000, 4, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NEAR(g.mean_degree(), 8.0, 1.5);  // ~2m
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  // Preferential attachment must create hubs far above the mean.
  EXPECT_GT(max_degree, 40u);
}

TEST(BarabasiAlbert, RejectsZeroM) {
  util::Rng rng(6);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(TwoTier, StructureMatchesParams) {
  TwoTierParams params;
  params.num_nodes = 4'000;
  params.ultrapeer_fraction = 0.15;
  params.up_up_degree = 10;
  params.leaf_up_count = 3;
  util::Rng rng(7);
  const TwoTierTopology topo = gnutella_two_tier(params, rng);
  EXPECT_TRUE(topo.graph.is_connected());

  std::size_t ups = 0;
  for (NodeId v = 0; v < params.num_nodes; ++v) ups += topo.is_ultrapeer[v];
  EXPECT_NEAR(static_cast<double>(ups), 600.0, 5.0);

  // Leaves attach to ~leaf_up_count ultrapeers and only to ultrapeers.
  double leaf_degree_sum = 0;
  std::size_t leaves = 0;
  for (NodeId v = 0; v < params.num_nodes; ++v) {
    if (topo.is_ultrapeer[v]) continue;
    ++leaves;
    leaf_degree_sum += static_cast<double>(topo.graph.degree(v));
    for (NodeId u : topo.graph.neighbors(v)) {
      EXPECT_TRUE(topo.is_ultrapeer[u]) << "leaf " << v << " -> leaf " << u;
    }
  }
  EXPECT_NEAR(leaf_degree_sum / static_cast<double>(leaves), 3.0, 0.3);
}

TEST(TwoTier, HandlesDegenerateSizes) {
  TwoTierParams params;
  params.num_nodes = 1;
  util::Rng rng(8);
  const TwoTierTopology topo = gnutella_two_tier(params, rng);
  EXPECT_EQ(topo.graph.num_nodes(), 1u);
}

TEST(Gia, CapacityLevelsAssignedAndDegreeTracksCapacity) {
  GiaParams params;
  params.num_nodes = 3'000;
  util::Rng rng(9);
  const GiaTopology topo = gia_topology(params, rng);
  EXPECT_TRUE(topo.graph.is_connected());

  double low_deg = 0, high_deg = 0;
  std::size_t low_n = 0, high_n = 0;
  for (NodeId v = 0; v < params.num_nodes; ++v) {
    const double c = topo.capacity[v];
    EXPECT_TRUE(std::find(params.capacity_levels.begin(),
                          params.capacity_levels.end(),
                          c) != params.capacity_levels.end());
    if (c <= 1.0) {
      low_deg += static_cast<double>(topo.graph.degree(v));
      ++low_n;
    } else if (c >= 1000.0) {
      high_deg += static_cast<double>(topo.graph.degree(v));
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 0u);
  ASSERT_GT(high_n, 0u);
  EXPECT_GT(high_deg / static_cast<double>(high_n),
            2.0 * low_deg / static_cast<double>(low_n));
}

TEST(Gia, RejectsMismatchedCapacitySpec) {
  GiaParams params;
  params.capacity_weights = {1.0};  // mismatched length
  util::Rng rng(10);
  EXPECT_THROW(gia_topology(params, rng), std::invalid_argument);
}

TEST(PatchConnectivity, JoinsComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  util::Rng rng(11);
  patch_connectivity(g, rng);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace qcp2p::overlay
