#include "src/sim/trial_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/sim/flood.hpp"

namespace qcp2p::sim {
namespace {

Graph ring_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  }
  return g;
}

/// A representative Monte-Carlo workload: flood from a random source and
/// check whether a random object's holders were reached.
TrialAggregate flood_workload(std::size_t threads, std::size_t trials,
                              std::uint64_t seed) {
  static const Graph g = ring_graph(64);
  static const std::vector<std::vector<NodeId>> holders = {
      {3, 40}, {17}, {9, 10, 11}, {63}};
  const TrialRunner runner({threads, seed});
  return runner.run(
      trials, [] { return FloodEngine(g); },
      [&](std::size_t, util::Rng& rng, FloodEngine& engine) {
        const auto src = static_cast<NodeId>(rng.bounded(g.num_nodes()));
        const auto obj = rng.bounded(holders.size());
        TrialOutcome out;
        out.success = engine.reaches_any(
            src, static_cast<std::uint32_t>(1 + rng.bounded(5)), holders[obj],
            nullptr, &out.messages);
        out.hops = rng.bounded(7);
        out.peers_probed = 1 + rng.bounded(3);
        out.extra[0] = rng.bounded(100);
        return out;
      });
}

bool aggregates_identical(const TrialAggregate& a, const TrialAggregate& b) {
  return a.trials == b.trials && a.successes == b.successes &&
         a.messages == b.messages && a.hops == b.hops &&
         a.peers_probed == b.peers_probed && a.extra == b.extra;
}

TEST(TrialRunner, DeterministicAcrossThreadCounts) {
  const TrialAggregate serial = flood_workload(1, 500, 42);
  for (const std::size_t threads : {2UL, 3UL, 8UL}) {
    const TrialAggregate parallel = flood_workload(threads, 500, 42);
    EXPECT_TRUE(aggregates_identical(serial, parallel))
        << "threads=" << threads;
  }
}

TEST(TrialRunner, SeedChangesResults) {
  const TrialAggregate a = flood_workload(4, 500, 42);
  const TrialAggregate b = flood_workload(4, 500, 43);
  EXPECT_FALSE(aggregates_identical(a, b));
}

TEST(TrialRunner, MatchesHandRolledSerialLoop) {
  const TrialRunner runner({1, 7});
  const std::size_t trials = 200;
  // Hand-rolled loop over the same per-trial streams.
  std::uint64_t want_sum = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    util::Rng rng = runner.trial_rng(t);
    want_sum += rng.bounded(1000);
  }
  const TrialAggregate agg =
      runner.run(trials, [](std::size_t, util::Rng& rng) {
        TrialOutcome out;
        out.messages = rng.bounded(1000);
        return out;
      });
  EXPECT_EQ(agg.messages, want_sum);
  EXPECT_EQ(agg.trials, trials);
}

TEST(TrialRunner, TrialRngDependsOnIndexNotCallOrder) {
  const TrialRunner runner({4, 9});
  util::Rng a0 = runner.trial_rng(0);
  util::Rng a1 = runner.trial_rng(1);
  util::Rng b0 = runner.trial_rng(0);
  EXPECT_EQ(a0(), b0());
  EXPECT_NE(a0(), a1());
}

TEST(TrialRunner, AggregateMeansAndCounters) {
  const TrialRunner runner({3, 5});
  const TrialAggregate agg =
      runner.run(100, [](std::size_t t, util::Rng&) {
        TrialOutcome out;
        out.success = (t % 2) == 0;
        out.messages = 4;
        out.hops = 2;
        out.peers_probed = 3;
        out.extra[1] = 10;
        return out;
      });
  EXPECT_EQ(agg.trials, 100u);
  EXPECT_EQ(agg.successes, 50u);
  EXPECT_DOUBLE_EQ(agg.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(agg.mean_messages(), 4.0);
  EXPECT_DOUBLE_EQ(agg.mean_hops(), 2.0);
  EXPECT_DOUBLE_EQ(agg.mean_peers_probed(), 3.0);
  EXPECT_DOUBLE_EQ(agg.mean_extra(1), 10.0);
  EXPECT_DOUBLE_EQ(agg.mean_extra(0), 0.0);
  EXPECT_DOUBLE_EQ(agg.mean_extra(99), 0.0);  // out of range -> 0
}

TEST(TrialRunner, ZeroTrials) {
  const TrialRunner runner({4, 5});
  const TrialAggregate agg = runner.run(0, [](std::size_t, util::Rng&) {
    ADD_FAILURE() << "trial fn must not run";
    return TrialOutcome{};
  });
  EXPECT_EQ(agg.trials, 0u);
  EXPECT_DOUBLE_EQ(agg.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(agg.mean_messages(), 0.0);
}

TEST(TrialRunner, MoreThreadsThanTrials) {
  const TrialAggregate serial = flood_workload(1, 3, 11);
  const TrialAggregate wide = flood_workload(16, 3, 11);
  EXPECT_TRUE(aggregates_identical(serial, wide));
}

TEST(TrialRunner, WorkerExceptionsPropagate) {
  const TrialRunner runner({4, 5});
  EXPECT_THROW(
      runner.run(64,
                 [](std::size_t t, util::Rng&) -> TrialOutcome {
                   if (t == 13) throw std::runtime_error("boom");
                   return {};
                 }),
      std::runtime_error);
}

TEST(TrialRunner, PerWorkerContextIsConstructedFresh) {
  // Each shard must get its own context: record construction count via a
  // counter and ensure trials never observe a context another shard made.
  const TrialRunner runner({4, 5});
  std::atomic<int> made{0};
  const TrialAggregate agg = runner.run(
      64, [&] { ++made; return std::vector<std::size_t>(); },
      [](std::size_t t, util::Rng&, std::vector<std::size_t>& seen) {
        seen.push_back(t);
        TrialOutcome out;
        // Contexts see strictly increasing local indices if unshared.
        out.success = seen.size() < 2 || seen[seen.size() - 2] < t;
        return out;
      });
  EXPECT_EQ(agg.successes, agg.trials);
  EXPECT_GE(made.load(), 1);
  EXPECT_LE(made.load(), 4);
}

}  // namespace
}  // namespace qcp2p::sim
