#include "src/core/term_tracker.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace qcp2p::core {
namespace {

TEST(TermPopularityTracker, UnseenTermScoresZero) {
  const TermPopularityTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.score(7), 0.0);
  EXPECT_DOUBLE_EQ(tracker.burst_score(7), 0.0);
  EXPECT_FALSE(tracker.is_transient(7));
}

TEST(TermPopularityTracker, ScoreAccumulates) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 10; ++i) tracker.observe_query({1});
  EXPECT_GT(tracker.score(1), 5.0);
  EXPECT_EQ(tracker.tracked_terms(), 1u);
}

TEST(TermPopularityTracker, ScoresDecayOverTime) {
  TrackerParams params;
  params.fast_halflife = 100.0;
  params.slow_halflife = 1'000.0;
  TermPopularityTracker tracker(params);
  for (int i = 0; i < 50; ++i) tracker.observe_query({1});
  const double before_fast = tracker.burst_score(1);
  const double before_slow = tracker.score(1);
  tracker.tick(1'000.0);  // a long quiet period
  EXPECT_LT(tracker.burst_score(1), before_fast * 0.01);
  EXPECT_LT(tracker.score(1), before_slow);
  EXPECT_GT(tracker.score(1), before_slow * 0.3);  // slow decays slower
}

TEST(TermPopularityTracker, DetectsFreshBurst) {
  TermPopularityTracker tracker;
  // Background traffic on other terms establishes the clock.
  for (int i = 0; i < 2'000; ++i) tracker.observe_query({1, 2});
  EXPECT_FALSE(tracker.is_transient(999));
  // Sudden burst of a never-seen term.
  for (int i = 0; i < 30; ++i) tracker.observe_query({999});
  EXPECT_TRUE(tracker.is_transient(999));
  // The steady background terms are NOT transient.
  EXPECT_FALSE(tracker.is_transient(1));
  EXPECT_FALSE(tracker.is_transient(2));
}

TEST(TermPopularityTracker, SteadyTermNeverTransient) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 20'000; ++i) tracker.observe_query({5});
  EXPECT_FALSE(tracker.is_transient(5));
}

TEST(TermPopularityTracker, BurstFadesAfterQuietPeriod) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 2'000; ++i) tracker.observe_query({1});
  for (int i = 0; i < 30; ++i) tracker.observe_query({999});
  ASSERT_TRUE(tracker.is_transient(999));
  tracker.tick(20'000.0);
  EXPECT_FALSE(tracker.is_transient(999));
}

TEST(TermPopularityTracker, TopTermsRankByScore) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.observe_query({1});
  for (int i = 0; i < 50; ++i) tracker.observe_query({2});
  for (int i = 0; i < 10; ++i) tracker.observe_query({3});
  const auto top = tracker.top_terms(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(tracker.top_terms(99).size(), 3u);
}

TEST(TermPopularityTracker, FreshBurstSurfacesInTopTerms) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 5'000; ++i) tracker.observe_query({1, 2, 3});
  // A hot new term with modest absolute count must beat decayed old ones
  // quickly through the fast counter.
  for (int i = 0; i < 400; ++i) tracker.observe_query({777});
  const auto top = tracker.top_terms(4);
  EXPECT_NE(std::find(top.begin(), top.end(), 777u), top.end());
}

TEST(TermPopularityTracker, TransientTermsListMatchesPredicate) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 2'000; ++i) tracker.observe_query({1});
  for (int i = 0; i < 40; ++i) tracker.observe_query({10, 11});
  const auto hot = tracker.transient_terms();
  for (TermId t : hot) EXPECT_TRUE(tracker.is_transient(t));
  EXPECT_NE(std::find(hot.begin(), hot.end(), 10u), hot.end());
}

TEST(TermPopularityTracker, CompactDropsColdEntries) {
  TermPopularityTracker tracker;
  tracker.observe_query({1});
  for (int i = 0; i < 500; ++i) tracker.observe_query({2});
  tracker.tick(3'000'000.0);  // 60 slow half-lives: scores -> ~0
  tracker.compact(1e-3);
  EXPECT_EQ(tracker.tracked_terms(), 0u);  // everything decayed to dust
}

TEST(TermPopularityTracker, CompactKeepsHotEntries) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 500; ++i) tracker.observe_query({2});
  tracker.compact(1e-3);
  EXPECT_EQ(tracker.tracked_terms(), 1u);
}

TEST(TermPopularityTracker, SaveLoadRoundTripPreservesScores) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.observe_query({1, 2});
  for (int i = 0; i < 10; ++i) tracker.observe_query({3});
  std::ostringstream os;
  tracker.save(os);
  std::istringstream is(os.str());
  const TermPopularityTracker loaded = TermPopularityTracker::load(is);
  EXPECT_EQ(loaded.tracked_terms(), tracker.tracked_terms());
  EXPECT_DOUBLE_EQ(loaded.score(1), tracker.score(1));
  EXPECT_DOUBLE_EQ(loaded.score(2), tracker.score(2));
  EXPECT_DOUBLE_EQ(loaded.burst_score(3), tracker.burst_score(3));
}

TEST(TermPopularityTracker, LoadRejectsTruncatedFinalRecord) {
  TermPopularityTracker tracker;
  for (int i = 0; i < 50; ++i) tracker.observe_query({7, 8});
  std::ostringstream os;
  tracker.save(os);
  std::string text = os.str();
  // Chop the last counter off the final record — the tail a crash
  // mid-save leaves behind. Loading must throw, not silently drop the
  // term and resurrect the peer with missing history.
  text.erase(text.find_last_of(' '));
  std::istringstream is(text);
  EXPECT_THROW((void)TermPopularityTracker::load(is), std::runtime_error);
}

TEST(TermPopularityTracker, LoadRejectsNonNumericTokens) {
  std::istringstream bad_counter("tracker v1\n10\n3 1.0 2.0 bogus\n");
  EXPECT_THROW((void)TermPopularityTracker::load(bad_counter),
               std::runtime_error);
  std::istringstream bad_term("tracker v1\n10\nxyz 1 2 3\n");
  EXPECT_THROW((void)TermPopularityTracker::load(bad_term),
               std::runtime_error);
}

}  // namespace
}  // namespace qcp2p::core
