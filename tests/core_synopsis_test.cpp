#include "src/core/synopsis.hpp"

#include <gtest/gtest.h>

namespace qcp2p::core {
namespace {

TEST(ContentSynopsis, ContainsAdvertisedTerms) {
  const std::vector<TermId> terms{1, 2, 3};
  const ContentSynopsis s(terms, SynopsisParams{});
  EXPECT_TRUE(s.maybe_contains(1));
  EXPECT_TRUE(s.maybe_contains_all(std::vector<TermId>{1, 3}));
  EXPECT_EQ(s.advertised_terms(), 3u);
}

TEST(ContentSynopsis, UsuallyExcludesOtherTerms) {
  std::vector<TermId> terms;
  for (TermId t = 0; t < 50; ++t) terms.push_back(t);
  const ContentSynopsis s(terms, SynopsisParams{});
  std::size_t false_positives = 0;
  for (TermId t = 1'000; t < 3'000; ++t) false_positives += s.maybe_contains(t);
  EXPECT_LT(false_positives, 100u);  // << 5% at 1024 bits / 50 terms
}

TEST(ContentSynopsis, EmptyQueryMatchesVacuously) {
  const ContentSynopsis s(std::vector<TermId>{}, SynopsisParams{});
  EXPECT_TRUE(s.maybe_contains_all(std::vector<TermId>{}));
}

TEST(SelectTerms, ValidatesInputs) {
  const std::vector<TermId> terms{1, 2};
  const std::vector<std::uint32_t> bad_freq{1};
  EXPECT_THROW(select_terms(terms, bad_freq, 2,
                            SynopsisPolicy::kContentCentric, nullptr),
               std::invalid_argument);
  const std::vector<std::uint32_t> freq{1, 2};
  EXPECT_THROW(
      select_terms(terms, freq, 2, SynopsisPolicy::kQueryCentric, nullptr),
      std::invalid_argument);
}

TEST(SelectTerms, ContentCentricPicksLocallyFrequent) {
  const std::vector<TermId> terms{10, 20, 30, 40};
  const std::vector<std::uint32_t> freq{1, 9, 3, 7};
  const auto selected = select_terms(terms, freq, 2,
                                     SynopsisPolicy::kContentCentric, nullptr);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0], 20u);
  EXPECT_EQ(selected[1], 40u);
}

TEST(SelectTerms, QueryCentricPicksQueriedTerms) {
  const std::vector<TermId> terms{10, 20, 30, 40};
  const std::vector<std::uint32_t> freq{9, 9, 1, 1};  // content loves 10,20
  TermPopularityTracker tracker;
  for (int i = 0; i < 50; ++i) tracker.observe_query({30, 40});  // queries love 30,40
  const auto selected = select_terms(terms, freq, 2,
                                     SynopsisPolicy::kQueryCentric, &tracker);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_TRUE((selected[0] == 30 && selected[1] == 40) ||
              (selected[0] == 40 && selected[1] == 30));
}

TEST(SelectTerms, QueryCentricFallsBackToContentOnTies) {
  const std::vector<TermId> terms{10, 20};
  const std::vector<std::uint32_t> freq{1, 5};
  const TermPopularityTracker tracker;  // nothing observed: all scores 0
  const auto selected =
      select_terms(terms, freq, 1, SynopsisPolicy::kQueryCentric, &tracker);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 20u);  // tie broken by local frequency
}

TEST(SelectTerms, BudgetLargerThanVocabulary) {
  const std::vector<TermId> terms{1, 2};
  const std::vector<std::uint32_t> freq{1, 1};
  const auto selected = select_terms(terms, freq, 100,
                                     SynopsisPolicy::kContentCentric, nullptr);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(BuildSynopsis, AdvertisesUpToBudget) {
  sim::PeerStore store(1);
  store.add_object(0, 1, {1, 2, 3});
  store.add_object(0, 2, {2, 3, 4});
  store.add_object(0, 3, {3});
  store.finalize();

  SynopsisParams params;
  params.term_budget = 2;
  const ContentSynopsis s = build_synopsis(
      store, 0, params, SynopsisPolicy::kContentCentric, nullptr);
  EXPECT_EQ(s.advertised_terms(), 2u);
  // Term 3 appears in 3 objects, term 2 in 2: both must be advertised.
  EXPECT_TRUE(s.maybe_contains(3));
  EXPECT_TRUE(s.maybe_contains(2));
}

TEST(BuildSynopsis, QueryCentricAdvertisesQueriedNiche) {
  sim::PeerStore store(1);
  // The peer's library is dominated by terms 1..8, but it also holds one
  // object with the niche term 99.
  for (std::uint64_t o = 0; o < 8; ++o) {
    store.add_object(0, o, {static_cast<TermId>(1 + o % 8),
                            static_cast<TermId>(1 + (o + 1) % 8)});
  }
  store.add_object(0, 100, {99});
  store.finalize();

  TermPopularityTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.observe_query({99});

  SynopsisParams params;
  params.term_budget = 1;
  const ContentSynopsis content = build_synopsis(
      store, 0, params, SynopsisPolicy::kContentCentric, nullptr);
  const ContentSynopsis query = build_synopsis(
      store, 0, params, SynopsisPolicy::kQueryCentric, &tracker);
  EXPECT_FALSE(content.maybe_contains(99));
  EXPECT_TRUE(query.maybe_contains(99));
}

}  // namespace
}  // namespace qcp2p::core
