// The DES-backed engines (flood-des, dht-des) next to their round-based
// twins (flood, dht-only): on the plain path the descriptor-level
// simulation must find exactly the same results — it only adds a time
// axis. Also pins the timing contract (exact flag, first-hit/clock
// bounds), the events==messages invariant of the fault seam in
// GnutellaNetwork::deliver, and that an inert with_faults() decorator
// leaves the timing record bit-for-bit unchanged.
#include "src/sim/engine_registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/sim/fault_decorator.hpp"

namespace qcp2p::sim {
namespace {

constexpr std::size_t kNodes = 64;

/// Popular object 1 {1,2} on every 7th peer, one singleton, random
/// filler — small cousin of the conformance-store recipe.
PeerStore des_store(std::size_t nodes) {
  PeerStore store(nodes);
  util::Rng rng(12);
  for (NodeId v = 0; v < nodes; v += 7) store.add_object(v, 1, {1, 2});
  store.add_object(static_cast<NodeId>(33 % nodes), 2, {40, 41});
  for (std::uint64_t i = 0; i < 3 * nodes; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(nodes));
    std::vector<TermId> terms;
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      terms.push_back(static_cast<TermId>(rng.bounded(50)));
    }
    store.add_object(peer, 1000 + i, std::move(terms));
  }
  store.finalize();
  return store;
}

struct DesWorld {
  DesWorld() : store(des_store(kNodes)), graph(0) {
    util::Rng rng(11);
    graph = overlay::random_regular(kNodes, 4, rng);
    dht = std::make_unique<ChordDht>(kNodes, 6);
    dht->publish_store(store);
  }

  [[nodiscard]] EngineWorld engine_world() const {
    EngineWorld w;
    w.graph = &graph;
    w.store = &store;
    w.dht = dht.get();
    return w;
  }

  PeerStore store;
  Graph graph;
  std::unique_ptr<ChordDht> dht;
};

std::vector<TermId> query_for(std::size_t t) {
  switch (t % 3) {
    case 0: return {1, 2};                          // popular
    case 1: return {40, 41};                        // singleton
    default: return {static_cast<TermId>(t % 50)};  // broad
  }
}

Query content_query(std::size_t t, const std::vector<TermId>& terms) {
  Query q;
  q.source = static_cast<NodeId>(t * 5 % kNodes);
  q.terms = terms;
  q.ttl = 3;
  q.trial = t;
  return q;
}

TEST(DesEngines, FloodDesReachIsBoundedByTheRoundFloodBall) {
  // Descriptor-level flooding is the REAL protocol: a node's first
  // arriving copy (by link latency, not hop count) wins GUID dedup, and
  // if that copy carried less remaining TTL than the hop-shortest one,
  // the frontier is pruned there. So within a tight TTL the DES engine
  // finds a SUBSET of the idealized round flood — never anything more.
  const DesWorld world;
  const EngineWorld ew = world.engine_world();
  const auto flood = make_engine("flood", ew);
  const auto flood_des = make_engine("flood-des", ew);
  ASSERT_NE(flood, nullptr);
  ASSERT_NE(flood_des, nullptr);
  for (std::size_t t = 0; t < 30; ++t) {
    const auto terms = query_for(t);
    const Query q = content_query(t, terms);
    EngineContext round_ctx, des_ctx;
    util::Rng round_rng(100 + t), des_rng(100 + t);
    round_ctx.rng = &round_rng;
    des_ctx.rng = &des_rng;
    const SearchOutcome round = flood->search(q, round_ctx);
    const SearchOutcome des = flood_des->search(q, des_ctx);
    EXPECT_TRUE(std::includes(round.hits.begin(), round.hits.end(),
                              des.hits.begin(), des.hits.end()))
        << "trial " << t;
    if (des.success) {
      EXPECT_TRUE(round.success) << "trial " << t;
    }
  }
}

TEST(DesEngines, FloodDesMatchesFloodWhenTtlDoesNotBind) {
  // With TTL comfortably past the diameter every first-arriving copy
  // still has hops to spare, dedup can't prune the frontier, and both
  // engines probe the whole connected component: identical hits.
  const DesWorld world;
  const EngineWorld ew = world.engine_world();
  const auto flood = make_engine("flood", ew);
  const auto flood_des = make_engine("flood-des", ew);
  ASSERT_NE(flood, nullptr);
  ASSERT_NE(flood_des, nullptr);
  for (std::size_t t = 0; t < 30; ++t) {
    const auto terms = query_for(t);
    Query q = content_query(t, terms);
    q.ttl = 16;  // >> diameter of a 64-node degree-4 random graph
    EngineContext round_ctx, des_ctx;
    util::Rng round_rng(100 + t), des_rng(100 + t);
    round_ctx.rng = &round_rng;
    des_ctx.rng = &des_rng;
    const SearchOutcome round = flood->search(q, round_ctx);
    const SearchOutcome des = flood_des->search(q, des_ctx);
    EXPECT_EQ(round.hits, des.hits) << "trial " << t;
    EXPECT_EQ(round.success, des.success) << "trial " << t;
  }
}

TEST(DesEngines, DhtDesFindsExactlyWhatDhtOnlyFinds) {
  const DesWorld world;
  const EngineWorld ew = world.engine_world();
  const auto dht_only = make_engine("dht-only", ew);
  const auto dht_des = make_engine("dht-des", ew);
  ASSERT_NE(dht_only, nullptr);
  ASSERT_NE(dht_des, nullptr);
  for (std::size_t t = 0; t < 30; ++t) {
    const auto terms = query_for(t);
    const Query q = content_query(t, terms);
    EngineContext a_ctx, b_ctx;
    util::Rng a_rng(200 + t), b_rng(200 + t);
    a_ctx.rng = &a_rng;
    b_ctx.rng = &b_rng;
    const SearchOutcome est = dht_only->search(q, a_ctx);
    const SearchOutcome des = dht_des->search(q, b_ctx);
    EXPECT_EQ(est.hits, des.hits) << "trial " << t;
    EXPECT_EQ(est.success, des.success) << "trial " << t;
    // Both walk the same finger tables; dht-des additionally charges
    // the one response transmission per term that dht-only only prices
    // into its latency estimate.
    EXPECT_EQ(est.messages + terms.size(), des.messages) << "trial " << t;
  }
}

TEST(DesEngines, TimingRecordsAreExactAndOrdered) {
  const DesWorld world;
  const EngineWorld ew = world.engine_world();
  for (const std::string_view name : {"flood-des", "dht-des"}) {
    const auto engine = make_engine(name, ew);
    ASSERT_NE(engine, nullptr) << name;
    for (std::size_t t = 0; t < 20; ++t) {
      const auto terms = query_for(t);
      const Query q = content_query(t, terms);
      EngineContext ctx;
      util::Rng rng(300 + t);
      ctx.rng = &rng;
      const SearchOutcome out = engine->search(q, ctx);
      ASSERT_TRUE(out.timing.has_value()) << name << " trial " << t;
      EXPECT_TRUE(out.timing->exact) << name << " trial " << t;
      EXPECT_GE(out.timing->clock_s, 0.0) << name << " trial " << t;
      if (out.messages > 0) {
        EXPECT_GT(out.timing->clock_s, 0.0) << name << " trial " << t;
      }
      if (out.success) {
        // A result can't arrive before t=0 or after the search ended.
        ASSERT_TRUE(out.timing->has_first_hit()) << name << " trial " << t;
        EXPECT_LE(out.timing->first_hit_s, out.timing->clock_s)
            << name << " trial " << t;
      }
    }
  }
}

TEST(DesEngines, FloodDesPlainPathExecutesOneEventPerMessage) {
  // GnutellaNetwork::deliver charges the message, runs the fault gate,
  // then schedules exactly one handler event. With no faults and no
  // liveness mask nothing is dropped, so events == messages — the
  // invariant that pins the fault seam's position in deliver().
  const DesWorld world;
  const auto engine = make_engine("flood-des", world.engine_world());
  ASSERT_NE(engine, nullptr);
  for (std::size_t t = 0; t < 20; ++t) {
    const auto terms = query_for(t);
    const Query q = content_query(t, terms);
    EngineContext ctx;
    util::Rng rng(400 + t);
    ctx.rng = &rng;
    const SearchOutcome out = engine->search(q, ctx);
    ASSERT_TRUE(out.timing.has_value());
    EXPECT_EQ(out.timing->events, out.messages) << "trial " << t;
  }
}

TEST(DesEngines, InertDecoratorLeavesTimingUntouched) {
  const DesWorld world;
  const EngineWorld ew = world.engine_world();
  const FaultPlan inert;  // loss 0, no jitter, no mask
  RecoveryPolicy single_shot;
  single_shot.max_retries = 0;
  for (const std::string_view name : {"flood-des", "dht-des"}) {
    const auto engine = make_engine(name, ew);
    ASSERT_NE(engine, nullptr) << name;
    const FaultInjectedEngine faulty =
        with_faults(*engine, inert, single_shot);
    for (std::size_t t = 0; t < 20; ++t) {
      const auto terms = query_for(t);
      const Query q = content_query(t, terms);
      EngineContext plain_ctx, faulty_ctx;
      util::Rng plain_rng(500 + t), faulty_rng(500 + t);
      plain_ctx.rng = &plain_rng;
      faulty_ctx.rng = &faulty_rng;
      const SearchOutcome plain = engine->search(q, plain_ctx);
      const SearchOutcome decorated = faulty.search(q, faulty_ctx);
      ASSERT_TRUE(plain.timing.has_value()) << name << " trial " << t;
      ASSERT_TRUE(decorated.timing.has_value()) << name << " trial " << t;
      EXPECT_EQ(plain.timing->first_hit_s, decorated.timing->first_hit_s)
          << name << " trial " << t;
      EXPECT_EQ(plain.timing->clock_s, decorated.timing->clock_s)
          << name << " trial " << t;
      EXPECT_EQ(plain.timing->events, decorated.timing->events)
          << name << " trial " << t;
    }
  }
}

TEST(DesEngines, FloodDesLocateSeesHoldersInTtlRange) {
  const DesWorld world;
  const auto engine = make_engine("flood-des", world.engine_world());
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->can_locate());
  EngineContext ctx;
  util::Rng rng(7);
  ctx.rng = &rng;
  // Every node a holder: any 1-hop flood must locate one.
  std::vector<NodeId> all(kNodes);
  for (NodeId v = 0; v < kNodes; ++v) all[v] = v;
  Query q;
  q.source = 3;
  q.holders = all;
  q.ttl = 1;
  const SearchOutcome out = engine->search(q, ctx);
  EXPECT_TRUE(out.success);
  ASSERT_TRUE(out.timing.has_value());
  EXPECT_TRUE(out.timing->has_first_hit());
  // The source itself is a holder here, so the hit is immediate.
  EXPECT_DOUBLE_EQ(out.timing->first_hit_s, 0.0);
}

}  // namespace
}  // namespace qcp2p::sim
