#include "src/sim/shortcuts.hpp"

#include <gtest/gtest.h>

namespace qcp2p::sim {
namespace {

Graph ring_graph(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

struct ShortcutFixture : ::testing::Test {
  ShortcutFixture() : graph(ring_graph(40)), store(40) {
    store.add_object(20, 900, {5});  // far from node 0 on the ring
    store.add_object(2, 901, {6});   // near node 0
    store.finalize();
  }
  Graph graph;
  PeerStore store;
};

TEST_F(ShortcutFixture, FirstSearchFloodsThenLearns) {
  ShortcutParams params;
  params.fallback_ttl = 25;  // enough to cross the ring
  ShortcutOverlay overlay(graph, store, params);

  const auto first = overlay.search(0, std::vector<TermId>{5});
  EXPECT_TRUE(first.success());
  EXPECT_FALSE(first.via_shortcut);
  EXPECT_GT(first.flood_messages, 0u);
  ASSERT_FALSE(overlay.shortcuts(0).empty());
  EXPECT_EQ(overlay.shortcuts(0)[0], 20u);

  // Second identical search: one shortcut message, no flood.
  const auto second = overlay.search(0, std::vector<TermId>{5});
  EXPECT_TRUE(second.success());
  EXPECT_TRUE(second.via_shortcut);
  EXPECT_EQ(second.flood_messages, 0u);
  EXPECT_EQ(second.shortcut_messages, 1u);
  EXPECT_GT(overlay.shortcut_hit_rate(), 0.0);
}

TEST_F(ShortcutFixture, LocalContentNeedsNoMessages) {
  ShortcutOverlay overlay(graph, store);
  const auto r = overlay.search(20, std::vector<TermId>{5});
  EXPECT_TRUE(r.success());
  EXPECT_EQ(r.total_messages(), 0u);
}

TEST_F(ShortcutFixture, ShortcutMissFallsBackToFlood) {
  ShortcutParams params;
  params.fallback_ttl = 25;
  ShortcutOverlay overlay(graph, store, params);
  // Learn a shortcut for term 5 (responder 20)...
  (void)overlay.search(0, std::vector<TermId>{5});
  // ...then ask for term 6: the shortcut misses, flood finds node 2.
  const auto r = overlay.search(0, std::vector<TermId>{6});
  EXPECT_TRUE(r.success());
  EXPECT_FALSE(r.via_shortcut);
  EXPECT_EQ(r.shortcut_messages, 1u);  // probed the learned shortcut
  EXPECT_GT(r.flood_messages, 0u);
  // Now node 2 is the most recent shortcut.
  EXPECT_EQ(overlay.shortcuts(0)[0], 2u);
}

TEST_F(ShortcutFixture, LruEvictionRespectsBudget) {
  ShortcutParams params;
  params.shortcut_budget = 2;
  params.fallback_ttl = 25;
  // Spread distinct single-holder objects over several peers.
  PeerStore many(40);
  for (NodeId v = 10; v < 15; ++v) {
    many.add_object(v, 800 + v, {static_cast<TermId>(v)});
  }
  many.finalize();
  ShortcutOverlay overlay(graph, many, params);
  for (NodeId v = 10; v < 15; ++v) {
    (void)overlay.search(0, std::vector<TermId>{static_cast<TermId>(v)});
  }
  EXPECT_EQ(overlay.shortcuts(0).size(), 2u);
  EXPECT_EQ(overlay.shortcuts(0)[0], 14u);  // most recent first
  EXPECT_EQ(overlay.shortcuts(0)[1], 13u);
}

TEST_F(ShortcutFixture, EmptyQueryIsNoop) {
  ShortcutOverlay overlay(graph, store);
  const auto r = overlay.search(0, std::vector<TermId>{});
  EXPECT_FALSE(r.success());
  EXPECT_EQ(r.total_messages(), 0u);
}

TEST_F(ShortcutFixture, RepeatedInterestRaisesHitRate) {
  ShortcutParams params;
  params.fallback_ttl = 25;
  ShortcutOverlay overlay(graph, store, params);
  for (int i = 0; i < 10; ++i) {
    (void)overlay.search(0, std::vector<TermId>{5});
  }
  // 1 flood + 9 shortcut hits (local miss each time).
  EXPECT_NEAR(overlay.shortcut_hit_rate(), 0.9, 1e-9);
}

}  // namespace
}  // namespace qcp2p::sim
