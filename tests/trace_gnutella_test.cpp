#include "src/trace/gnutella.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/analysis/replication.hpp"
#include "src/text/tokenizer.hpp"
#include "src/util/stats.hpp"

namespace qcp2p::trace {
namespace {

// Reduced-scale universe mirroring the paper's Apr'07 crawl shape.
ContentModelParams test_model_params(double scale) {
  ContentModelParams p;
  p.core_lexicon_size =
      static_cast<std::uint32_t>(std::max(500.0, 60'000 * scale));
  p.catalog_songs =
      static_cast<std::uint32_t>(std::max(2'000.0, 2'500'000 * scale));
  p.tail_lexicon_size =
      static_cast<std::uint32_t>(std::max(20'000.0, 4'000'000 * scale));
  p.artists = static_cast<std::uint32_t>(std::max(200.0, 40'000 * scale));
  p.seed = 21;
  return p;
}

TEST(ObjectKey, FieldRoundTrip) {
  const ObjectKey c = ObjectKey::catalog(123'456, 7);
  EXPECT_EQ(c.cls(), ObjectClass::kCatalog);
  EXPECT_EQ(c.song(), 123'456u);
  EXPECT_EQ(c.variant(), 7u);

  const ObjectKey p = ObjectKey::personal(9'999, 321);
  EXPECT_EQ(p.cls(), ObjectClass::kPersonal);
  EXPECT_EQ(p.peer(), 9'999u);
  EXPECT_EQ(p.slot(), 321u);

  const ObjectKey n = ObjectKey::nonspecific(4);
  EXPECT_EQ(n.cls(), ObjectClass::kNonspecific);
  EXPECT_EQ(n.nonspecific_index(), 4u);

  EXPECT_NE(c.bits, p.bits);
  EXPECT_NE(p.bits, n.bits);
}

TEST(GnutellaCrawlParams, ScaledValidatesAndScales) {
  GnutellaCrawlParams p;
  EXPECT_THROW((void)p.scaled(0.0), std::invalid_argument);
  EXPECT_THROW((void)p.scaled(-1.0), std::invalid_argument);
  const auto half = p.scaled(0.5);
  EXPECT_EQ(half.num_peers, 18'786u);
  EXPECT_DOUBLE_EQ(half.mean_objects_per_peer, p.mean_objects_per_peer);
}

TEST(GnutellaCrawl, DeterministicInSeed) {
  const ContentModel model(test_model_params(0.01));
  GnutellaCrawlParams params;
  params.num_peers = 60;
  params.seed = 5;
  const CrawlSnapshot a = generate_gnutella_crawl(model, params, 1);
  const CrawlSnapshot b = generate_gnutella_crawl(model, params, 4);
  ASSERT_EQ(a.num_peers(), b.num_peers());
  EXPECT_EQ(a.total_objects(), b.total_objects());
  for (std::size_t p = 0; p < a.num_peers(); ++p) {
    const auto& la = a.peer_objects(p);
    const auto& lb = b.peer_objects(p);
    ASSERT_EQ(la.size(), lb.size()) << "peer " << p;
    for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i].bits, lb[i].bits);
  }
}

TEST(GnutellaCrawl, PeerLibrariesAreDeduplicated) {
  const ContentModel model(test_model_params(0.01));
  GnutellaCrawlParams params;
  params.num_peers = 100;
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);
  for (std::size_t p = 0; p < snap.num_peers(); ++p) {
    auto lib = snap.peer_objects(p);
    ASSERT_TRUE(std::is_sorted(lib.begin(), lib.end()));
    ASSERT_TRUE(std::adjacent_find(lib.begin(), lib.end()) == lib.end());
  }
}

// The headline calibration: the synthetic crawl must reproduce the
// paper's Apr'07 marginals (DESIGN.md section 7) at reduced scale.
TEST(GnutellaCrawl, CalibratedReplicationMarginals) {
  const double scale = 0.04;
  const ContentModel model(test_model_params(scale));
  const GnutellaCrawlParams params = GnutellaCrawlParams{}.scaled(scale);
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);

  const auto counts = snap.object_replica_counts();
  const auto summary =
      analysis::summarize_replication(counts, snap.num_peers());

  // Paper: 70.5% of unique objects on a single peer.
  EXPECT_GT(summary.singleton_fraction, 0.62);
  EXPECT_LT(summary.singleton_fraction, 0.80);
  // Paper: 99.5% of objects on <= 37 peers (0.1% of 37,572). Per-object
  // replica counts are scale-invariant here (the catalog scales with the
  // peer count), so the absolute 37-peer cut carries over; the relative
  // 0.1% cut does not (0.1% of 1,500 peers is a single peer).
  EXPECT_GT(util::fraction_at_or_below(counts, 37), 0.97);
  // Paper: ~12.1M objects over 8.1M unique -> mean ~1.5 replicas.
  EXPECT_GT(summary.mean_replicas, 1.3);
  EXPECT_LT(summary.mean_replicas, 2.7);
  // Paper (Loo cutoff): fewer than 4% of objects on >= 20 peers.
  EXPECT_LT(summary.fraction_20_or_more, 0.04);
  // Rank curve must be heavy-tailed (Zipf-ish head).
  EXPECT_GT(summary.zipf.exponent, 0.4);
}

TEST(GnutellaCrawl, SanitizationMergesASmallFraction) {
  const double scale = 0.03;
  const ContentModel model(test_model_params(scale));
  const GnutellaCrawlParams params = GnutellaCrawlParams{}.scaled(scale);
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);

  const auto raw = snap.object_replica_counts();
  const auto sanitized = snap.sanitized_replica_counts();
  EXPECT_LT(sanitized.size(), raw.size());
  // Paper: 8.1M -> 7.9M uniques, a ~2.5% merge; allow a broad band.
  const double merge = 1.0 - static_cast<double>(sanitized.size()) /
                                 static_cast<double>(raw.size());
  EXPECT_GT(merge, 0.005);
  EXPECT_LT(merge, 0.15);
  // Singleton share barely moves (paper: 70.5% -> 69.8%).
  EXPECT_NEAR(util::singleton_fraction(sanitized),
              util::singleton_fraction(raw), 0.05);
}

TEST(GnutellaCrawl, TermDistributionIsLongTailed) {
  const double scale = 0.03;
  const ContentModel model(test_model_params(scale));
  const GnutellaCrawlParams params = GnutellaCrawlParams{}.scaled(scale);
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);

  const auto term_counts = snap.term_peer_counts();
  // Paper: 71.3% of terms on one peer; 98.3% on <= 37 peers.
  EXPECT_GT(util::singleton_fraction(term_counts), 0.55);
  EXPECT_LT(util::singleton_fraction(term_counts), 0.90);
  EXPECT_GT(util::fraction_at_or_below(term_counts, 37), 0.95);
}

TEST(GnutellaCrawl, PopularFileTermsAreHighCount) {
  const ContentModel model(test_model_params(0.01));
  GnutellaCrawlParams params = GnutellaCrawlParams{}.scaled(0.01);
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);
  const auto top = snap.popular_file_terms(50);
  ASSERT_EQ(top.size(), 50u);
  // Core terms (low ids, drawn by Zipf rank) should dominate the top.
  std::size_t core = 0;
  for (auto t : top) core += (t < model.core_lexicon_size());
  EXPECT_GT(core, 40u);
}

// String pipeline (names through the tokenizer/sanitizer, as the real
// crawler sees them) must agree with the id-space fast path up to rare
// benign name collisions.
TEST(GnutellaCrawl, StringAndIdPipelinesAgree) {
  const ContentModel model(test_model_params(0.01));
  GnutellaCrawlParams params;
  params.num_peers = 300;
  params.seed = 77;
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);

  analysis::NameReplicaCounter raw_names;
  analysis::NameReplicaCounter sanitized_names;
  for (std::uint32_t p = 0; p < snap.num_peers(); ++p) {
    for (ObjectKey k : snap.peer_objects(p)) {
      const std::string name = snap.object_name(k);
      raw_names.add(p, name);
      sanitized_names.add(p, text::sanitize_filename(name));
    }
  }
  const auto id_raw = snap.object_replica_counts();
  const auto id_sanitized = snap.sanitized_replica_counts();

  const auto close = [](std::size_t a, std::size_t b) {
    return std::abs(static_cast<double>(a) - static_cast<double>(b)) <=
           0.02 * static_cast<double>(std::max(a, b));
  };
  EXPECT_TRUE(close(raw_names.unique_names(), id_raw.size()))
      << raw_names.unique_names() << " vs " << id_raw.size();
  EXPECT_TRUE(close(sanitized_names.unique_names(), id_sanitized.size()))
      << sanitized_names.unique_names() << " vs " << id_sanitized.size();
  EXPECT_NEAR(util::singleton_fraction(raw_names.counts()),
              util::singleton_fraction(id_raw), 0.02);
}

TEST(GnutellaCrawl, NonspecificNamesCollideAcrossPeers) {
  const ContentModel model(test_model_params(0.02));
  GnutellaCrawlParams params = GnutellaCrawlParams{}.scaled(0.05);
  params.p_nonspecific = 0.02;  // amplified for the test
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);
  // Count peers holding nonspecific key 0..pool.
  std::uint64_t best = 0;
  for (std::uint32_t idx = 0; idx < ContentModel::nonspecific_pool_size();
       ++idx) {
    const ObjectKey key = ObjectKey::nonspecific(idx);
    std::uint64_t holders = 0;
    for (std::uint32_t p = 0; p < snap.num_peers(); ++p) {
      const auto& lib = snap.peer_objects(p);
      holders += std::binary_search(
          lib.begin(), lib.end(), key,
          [](ObjectKey a, ObjectKey b) { return a.bits < b.bits; });
    }
    best = std::max(best, holders);
  }
  // The paper saw "01 Track.wma" on 2,168 of 37,572 peers; at this scale
  // and rate we just require a clearly multi-peer collision.
  EXPECT_GT(best, 10u);
}

TEST(GnutellaCrawl, FreeridersShareNothing) {
  const ContentModel model(test_model_params(0.01));
  GnutellaCrawlParams params;
  params.num_peers = 2'000;
  params.freerider_fraction = 0.5;
  const CrawlSnapshot snap = generate_gnutella_crawl(model, params);
  std::size_t empty = 0;
  for (std::size_t p = 0; p < snap.num_peers(); ++p) {
    empty += snap.peer_objects(p).empty();
  }
  EXPECT_NEAR(static_cast<double>(empty) / 2'000.0, 0.5, 0.06);
}

}  // namespace
}  // namespace qcp2p::trace
