// Fault-injection layer: deterministic drop/jitter hashing, inert-session
// bit-for-bit equivalence with the fault-free engines, thread-count
// invariance under TrialRunner, Chord route-around, and retry recovery.
#include "src/sim/fault.hpp"

#include <gtest/gtest.h>

#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/gia.hpp"
#include "src/sim/hybrid.hpp"
#include "src/sim/random_walk.hpp"
#include "src/sim/trial_runner.hpp"

namespace qcp2p::sim {
namespace {

constexpr std::size_t kNodes = 300;

Graph make_graph() {
  util::Rng rng(11);
  return overlay::random_regular(kNodes, 6, rng);
}

PeerStore make_store() {
  PeerStore store(kNodes);
  util::Rng rng(12);
  // Popular object 1 {1,2} on every 7th peer; singleton object 2 {40,41}.
  for (NodeId v = 0; v < kNodes; v += 7) store.add_object(v, 1, {1, 2});
  store.add_object(123, 2, {40, 41});
  for (std::uint64_t i = 0; i < 600; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(kNodes));
    std::vector<TermId> terms;
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      terms.push_back(static_cast<TermId>(rng.bounded(50)));
    }
    store.add_object(peer, 1000 + i, std::move(terms));
  }
  store.finalize();
  return store;
}

struct FaultFixture : ::testing::Test {
  FaultFixture() : graph(make_graph()), store(make_store()), dht(kNodes, 7) {
    dht.publish_store(store);
  }

  [[nodiscard]] std::vector<TermId> query_for(std::size_t t) const {
    switch (t % 3) {
      case 0: return {1, 2};                                    // popular
      case 1: return {40, 41};                                  // singleton
      default: return {static_cast<TermId>(t % 50)};            // broad
    }
  }

  Graph graph;
  PeerStore store;
  ChordDht dht;
};

TEST(FaultPlan, DropHashIsDeterministicAndMatchesRate) {
  FaultParams params;
  params.loss_rate = 0.3;
  params.seed = 77;
  const FaultPlan a(params), b(params);
  std::size_t drops = 0;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    EXPECT_EQ(a.drops(3, i), b.drops(3, i));
    drops += a.drops(3, i);
  }
  EXPECT_NEAR(static_cast<double>(drops) / 20'000.0, 0.3, 0.02);
  // Different trials see independent streams.
  std::size_t diff = 0;
  for (std::uint64_t i = 0; i < 1'000; ++i) diff += a.drops(3, i) != a.drops(4, i);
  EXPECT_GT(diff, 100u);
}

TEST(FaultPlan, ExtremesAndInertness) {
  FaultParams sure;
  sure.loss_rate = 1.0;
  const FaultPlan always(sure);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(always.drops(0, i));

  const FaultPlan null_plan;
  EXPECT_FALSE(null_plan.active());
  EXPECT_EQ(null_plan.online_mask(), nullptr);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(null_plan.drops(0, i));
    EXPECT_EQ(null_plan.jitter_ms(0, i), 0.0);
  }
  EXPECT_TRUE(null_plan.online(0));
}

TEST_F(FaultFixture, InertSessionMatchesPlainFlood) {
  const FaultPlan plan;  // loss 0, no mask: must be bit-for-bit inert
  RecoveryPolicy single_shot;
  single_shot.max_retries = 0;
  for (std::size_t t = 0; t < 60; ++t) {
    const auto src = static_cast<NodeId>(t * 5 % kNodes);
    const auto query = query_for(t);
    const FloodSearchResult plain = flood_search(graph, store, src, query, 3);
    FaultSession faults(plan, t);
    const FloodSearchResult faulty =
        flood_search(graph, store, src, query, 3, faults, single_shot);
    EXPECT_EQ(plain.results, faulty.results);
    EXPECT_EQ(plain.messages, faulty.messages);
    EXPECT_EQ(plain.peers_probed, faulty.peers_probed);
    EXPECT_EQ(faulty.fault.dropped, 0u);
    EXPECT_EQ(faulty.fault.retries, 0u);
  }
}

TEST_F(FaultFixture, InertSessionMatchesPlainRandomWalk) {
  const FaultPlan plan;
  RecoveryPolicy single_shot;
  single_shot.max_retries = 0;
  RandomWalkParams params;
  params.walkers = 8;
  params.max_steps = 64;
  for (std::size_t t = 0; t < 60; ++t) {
    const auto src = static_cast<NodeId>(t * 11 % kNodes);
    const auto query = query_for(t);
    util::Rng plain_rng(900 + t), faulty_rng(900 + t);
    const RandomWalkResult plain =
        random_walk_search(graph, store, src, query, params, plain_rng);
    FaultSession faults(plan, t);
    const RandomWalkResult faulty = random_walk_search(
        graph, store, src, query, params, faulty_rng, faults, single_shot);
    EXPECT_EQ(plain.results, faulty.results);
    EXPECT_EQ(plain.messages, faulty.messages);
    EXPECT_EQ(plain.peers_probed, faulty.peers_probed);
    EXPECT_EQ(plain.success, faulty.success);
    // The inert session must not have perturbed the shared rng stream.
    EXPECT_EQ(plain_rng(), faulty_rng());
  }
}

TEST_F(FaultFixture, InertSessionMatchesPlainGia) {
  overlay::GiaParams gp;
  gp.num_nodes = kNodes;
  util::Rng topo_rng(21);
  const GiaNetwork gia(overlay::gia_topology(gp, topo_rng), make_store());

  const FaultPlan plan;
  RecoveryPolicy single_shot;
  single_shot.max_retries = 0;
  GiaSearchParams params;
  params.max_steps = 256;
  for (std::size_t t = 0; t < 60; ++t) {
    const auto src = static_cast<NodeId>(t * 7 % kNodes);
    const auto query = query_for(t);
    util::Rng plain_rng(300 + t), faulty_rng(300 + t);
    const GiaSearchResult plain = gia.search(src, query, params, plain_rng);
    FaultSession faults(plan, t);
    const GiaSearchResult faulty =
        gia.search(src, query, params, faulty_rng, faults, single_shot);
    EXPECT_EQ(plain.results, faulty.results);
    EXPECT_EQ(plain.messages, faulty.messages);
    EXPECT_EQ(plain.success, faulty.success);
    EXPECT_EQ(plain_rng(), faulty_rng());
  }
}

TEST_F(FaultFixture, InertSessionMatchesPlainHybridAndDhtOnly) {
  const FaultPlan plan;
  RecoveryPolicy single_shot;
  single_shot.max_retries = 0;
  HybridParams hp;
  hp.flood_ttl = 2;
  hp.rare_cutoff = 20;
  for (std::size_t t = 0; t < 60; ++t) {
    const auto src = static_cast<NodeId>(t * 13 % kNodes);
    const auto query = query_for(t);

    const HybridResult plain_h =
        hybrid_search(graph, store, dht, src, query, hp);
    FaultSession hf(plan, t);
    const HybridResult faulty_h =
        hybrid_search(graph, store, dht, src, query, hp, hf, single_shot);
    EXPECT_EQ(plain_h.results, faulty_h.results);
    EXPECT_EQ(plain_h.flood_messages, faulty_h.flood_messages);
    EXPECT_EQ(plain_h.dht_messages, faulty_h.dht_messages);
    EXPECT_EQ(plain_h.used_dht, faulty_h.used_dht);

    const HybridResult plain_d = dht_only_search(dht, src, query);
    FaultSession df(plan, t);
    const HybridResult faulty_d =
        dht_only_search(dht, src, query, df, single_shot);
    EXPECT_EQ(plain_d.results, faulty_d.results);
    EXPECT_EQ(plain_d.dht_messages, faulty_d.dht_messages);
  }
}

TEST_F(FaultFixture, InertLookupChargesExactlyThePlainRoute) {
  const FaultPlan plan;
  RecoveryPolicy policy;  // route_around_width > 1, but nothing to avoid
  util::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const auto from = static_cast<NodeId>(rng.bounded(kNodes));
    const ChordDht::LookupResult plain = dht.lookup(key, from);
    FaultSession faults(plan, static_cast<std::uint64_t>(i));
    const ChordDht::FaultyLookup faulty = dht.lookup(key, from, faults, policy);
    EXPECT_TRUE(faulty.success);
    EXPECT_EQ(plain.node, faulty.node);
    EXPECT_EQ(plain.hops, faulty.hops);
    EXPECT_EQ(faulty.fault.route_around_hops, 0u);
  }
}

TEST_F(FaultFixture, AggregatesAreIdenticalAcrossThreadCounts) {
  FaultParams params;
  params.loss_rate = 0.1;
  params.jitter_max_ms = 5.0;
  util::Rng mask_rng(41);
  const FaultPlan plan(params, overlay::sample_online(kNodes, 0.75, mask_rng));
  RecoveryPolicy policy;
  policy.max_retries = 2;

  auto run_with = [&](std::size_t threads) {
    const TrialRunner runner({threads, 4242});
    return runner.run(200, [&](std::size_t t, util::Rng& rng) {
      FaultSession faults(plan, t);
      const auto src = static_cast<NodeId>(rng.bounded(kNodes));
      const auto query = query_for(t);
      const FloodSearchResult fr =
          flood_search(graph, store, src, query, 2, faults, policy);
      RandomWalkParams wp;
      wp.walkers = 4;
      wp.max_steps = 32;
      const RandomWalkResult wr = random_walk_search(graph, store, src, query,
                                                     wp, rng, faults, policy);
      const HybridResult dr = dht_only_search(dht, src, query, faults, policy);
      TrialOutcome out;
      out.success = !fr.results.empty() || wr.success || dr.success();
      out.messages = fr.messages + wr.messages + dr.total_messages();
      out.extra[0] = fr.fault.dropped + wr.fault.dropped + dr.fault.dropped;
      out.extra[1] = fr.fault.retries + wr.fault.retries + dr.fault.retries;
      out.extra[2] = dr.fault.route_around_hops;
      return out;
    });
  };

  const TrialAggregate one = run_with(1);
  for (const std::size_t threads : {2ULL, 8ULL}) {
    const TrialAggregate many = run_with(threads);
    EXPECT_EQ(one.trials, many.trials) << threads << " threads";
    EXPECT_EQ(one.successes, many.successes) << threads << " threads";
    EXPECT_EQ(one.messages, many.messages) << threads << " threads";
    EXPECT_EQ(one.extra, many.extra) << threads << " threads";
  }
  EXPECT_GT(one.extra[0], 0u);  // the plan actually dropped messages
}

TEST_F(FaultFixture, TotalLossDropsEveryTransmission) {
  FaultParams params;
  params.loss_rate = 1.0;
  const FaultPlan plan(params);
  RecoveryPolicy policy;
  policy.max_retries = 1;
  FaultSession faults(plan, 0);
  const std::vector<TermId> query{40, 41};  // singleton held far away
  const FloodSearchResult r =
      flood_search(graph, store, 0, query, 3, faults, policy);
  EXPECT_TRUE(r.results.empty());
  EXPECT_GT(r.messages, 0u);
  EXPECT_EQ(r.fault.dropped, r.messages);  // every send lost in flight
  EXPECT_EQ(r.fault.retries, 1u);
}

TEST_F(FaultFixture, ChordRoutesAroundDeadResponsibleNode) {
  util::Rng rng(51);
  RecoveryPolicy policy;
  policy.max_retries = 2;
  policy.route_around_width = 4;
  int detours = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t key = rng();
    const NodeId responsible = dht.successor_of(key);
    std::vector<bool> online(kNodes, true);
    online[responsible] = false;
    const FaultPlan plan(FaultParams{}, online);
    auto from = static_cast<NodeId>(rng.bounded(kNodes));
    if (from == responsible) from = static_cast<NodeId>((from + 1) % kNodes);
    FaultSession faults(plan, static_cast<std::uint64_t>(i));
    const ChordDht::FaultyLookup r = dht.lookup(key, from, faults, policy);
    ASSERT_TRUE(r.success) << "key " << key;
    EXPECT_NE(r.node, responsible);
    EXPECT_TRUE(plan.online(r.node));
    detours += r.fault.route_around_hops > 0;
  }
  // The dead node is the responsible one, so nearly every lookup must
  // detour at the last hop (a few may start adjacent and shortcut).
  EXPECT_GT(detours, 40);
}

TEST_F(FaultFixture, RetriesImproveSuccessUnderHeavyLoss) {
  FaultParams params;
  params.loss_rate = 0.5;
  const FaultPlan plan(params);
  RecoveryPolicy none;
  none.max_retries = 0;
  RecoveryPolicy retry;
  retry.max_retries = 3;
  retry.ttl_escalation = 1;

  const std::vector<TermId> query{1, 2};
  int ok_none = 0, ok_retry = 0;
  std::uint32_t retries = 0;
  for (std::size_t t = 0; t < 100; ++t) {
    const auto src = static_cast<NodeId>(t * 3 % kNodes);
    FaultSession f0(plan, t);
    ok_none += !flood_search(graph, store, src, query, 1, f0, none)
                    .results.empty();
    FaultSession f1(plan, t);
    const FloodSearchResult r =
        flood_search(graph, store, src, query, 1, f1, retry);
    ok_retry += !r.results.empty();
    retries += r.fault.retries;
  }
  EXPECT_GT(ok_retry, ok_none);
  EXPECT_GT(retries, 0u);
}

TEST_F(FaultFixture, SuccessorListsWalkTheRingClockwise) {
  for (NodeId v = 0; v < kNodes; ++v) {
    const auto list = dht.successor_list(v);
    ASSERT_EQ(list.size(), 4u);
    std::uint64_t at = dht.node_id(v);
    for (const NodeId s : list) {
      const NodeId expected = dht.successor_of(at + 1);
      EXPECT_EQ(s, expected);
      at = dht.node_id(s);
    }
  }
}

TEST(FaultSession, JitterAndWaitAccumulateIntoLatency) {
  FaultParams params;
  params.jitter_max_ms = 10.0;
  const FaultPlan plan(params);
  FaultSession faults(plan, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(faults.deliver_timed());
  EXPECT_GT(faults.latency_ms(), 0.0);
  EXPECT_LT(faults.latency_ms(), 1000.0);
  const double before = faults.latency_ms();
  faults.charge_wait(400.0);
  EXPECT_DOUBLE_EQ(faults.latency_ms(), before + 400.0);
  EXPECT_EQ(faults.sent(), 100u);
  EXPECT_EQ(faults.dropped(), 0u);
}

TEST(RecoveryPolicy, BackoffIsExponential) {
  RecoveryPolicy p;
  p.backoff_ms = 100.0;
  p.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(p.backoff_after(0), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff_after(1), 200.0);
  EXPECT_DOUBLE_EQ(p.backoff_after(3), 800.0);
}

}  // namespace
}  // namespace qcp2p::sim
