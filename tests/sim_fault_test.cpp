// Fault-injection layer: deterministic drop/jitter hashing, Chord
// route-around, and retry recovery through the with_faults() decorator.
// (Inert-decorator bit-identity and thread-count invariance for every
// registered engine live in sim_engine_conformance_test.)
#include "src/sim/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/overlay/churn.hpp"
#include "src/overlay/topology.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/engine_registry.hpp"
#include "src/sim/fault_decorator.hpp"

namespace qcp2p::sim {
namespace {

constexpr std::size_t kNodes = 300;

Graph make_graph() {
  util::Rng rng(11);
  return overlay::random_regular(kNodes, 6, rng);
}

PeerStore make_store() {
  PeerStore store(kNodes);
  util::Rng rng(12);
  // Popular object 1 {1,2} on every 7th peer; singleton object 2 {40,41}.
  for (NodeId v = 0; v < kNodes; v += 7) store.add_object(v, 1, {1, 2});
  store.add_object(123, 2, {40, 41});
  for (std::uint64_t i = 0; i < 600; ++i) {
    const auto peer = static_cast<NodeId>(rng.bounded(kNodes));
    std::vector<TermId> terms;
    const std::size_t n = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < n; ++k) {
      terms.push_back(static_cast<TermId>(rng.bounded(50)));
    }
    store.add_object(peer, 1000 + i, std::move(terms));
  }
  store.finalize();
  return store;
}

struct FaultFixture : ::testing::Test {
  FaultFixture() : graph(make_graph()), store(make_store()), dht(kNodes, 7) {
    dht.publish_store(store);
    world.graph = &graph;
    world.store = &store;
    world.dht = &dht;
  }

  [[nodiscard]] std::vector<TermId> query_for(std::size_t t) const {
    switch (t % 3) {
      case 0: return {1, 2};                                    // popular
      case 1: return {40, 41};                                  // singleton
      default: return {static_cast<TermId>(t % 50)};            // broad
    }
  }

  Graph graph;
  PeerStore store;
  ChordDht dht;
  EngineWorld world;
};

TEST(FaultPlan, DropHashIsDeterministicAndMatchesRate) {
  FaultParams params;
  params.loss_rate = 0.3;
  params.seed = 77;
  const FaultPlan a(params), b(params);
  std::size_t drops = 0;
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    EXPECT_EQ(a.drops(3, i), b.drops(3, i));
    drops += a.drops(3, i);
  }
  EXPECT_NEAR(static_cast<double>(drops) / 20'000.0, 0.3, 0.02);
  // Different trials see independent streams.
  std::size_t diff = 0;
  for (std::uint64_t i = 0; i < 1'000; ++i) diff += a.drops(3, i) != a.drops(4, i);
  EXPECT_GT(diff, 100u);
}

TEST(FaultPlan, ExtremesAndInertness) {
  FaultParams sure;
  sure.loss_rate = 1.0;
  const FaultPlan always(sure);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(always.drops(0, i));

  const FaultPlan null_plan;
  EXPECT_FALSE(null_plan.active());
  EXPECT_EQ(null_plan.online_mask(), nullptr);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(null_plan.drops(0, i));
    EXPECT_EQ(null_plan.jitter_ms(0, i), 0.0);
  }
  EXPECT_TRUE(null_plan.online(0));
}

TEST_F(FaultFixture, InertLookupChargesExactlyThePlainRoute) {
  const FaultPlan plan;
  RecoveryPolicy policy;  // route_around_width > 1, but nothing to avoid
  util::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const auto from = static_cast<NodeId>(rng.bounded(kNodes));
    const ChordDht::LookupResult plain = dht.lookup(key, from);
    FaultSession faults(plan, static_cast<std::uint64_t>(i));
    const ChordDht::FaultyLookup faulty = dht.lookup(key, from, faults, policy);
    EXPECT_TRUE(faulty.success);
    EXPECT_EQ(plain.node, faulty.node);
    EXPECT_EQ(plain.hops, faulty.hops);
    EXPECT_EQ(faulty.fault.route_around_hops, 0u);
  }
}

TEST_F(FaultFixture, TotalLossDropsEveryTransmission) {
  FaultParams params;
  params.loss_rate = 1.0;
  const FaultPlan plan(params);
  RecoveryPolicy policy;
  policy.max_retries = 1;
  const auto flood = make_engine("flood", world);
  ASSERT_NE(flood, nullptr);
  const FaultInjectedEngine faulty = with_faults(*flood, plan, policy);

  EngineContext ctx;
  util::Rng rng(1);
  ctx.rng = &rng;
  const std::vector<TermId> terms{40, 41};  // singleton held far away
  Query q;
  q.source = 0;
  q.terms = terms;
  q.ttl = 3;
  const SearchOutcome r = faulty.search(q, ctx);
  EXPECT_TRUE(r.hits.empty());
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.messages, 0u);
  EXPECT_EQ(r.fault.dropped, r.messages);  // every send lost in flight
  EXPECT_EQ(r.fault.retries, 1u);
  EXPECT_GT(r.fault.recovery_wait_ms, 0.0);
}

TEST_F(FaultFixture, ChordRoutesAroundDeadResponsibleNode) {
  util::Rng rng(51);
  RecoveryPolicy policy;
  policy.max_retries = 2;
  policy.route_around_width = 4;
  int detours = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t key = rng();
    const NodeId responsible = dht.successor_of(key);
    std::vector<bool> online(kNodes, true);
    online[responsible] = false;
    const FaultPlan plan(FaultParams{}, online);
    auto from = static_cast<NodeId>(rng.bounded(kNodes));
    if (from == responsible) from = static_cast<NodeId>((from + 1) % kNodes);
    FaultSession faults(plan, static_cast<std::uint64_t>(i));
    const ChordDht::FaultyLookup r = dht.lookup(key, from, faults, policy);
    ASSERT_TRUE(r.success) << "key " << key;
    EXPECT_NE(r.node, responsible);
    EXPECT_TRUE(plan.online(r.node));
    detours += r.fault.route_around_hops > 0;
  }
  // The dead node is the responsible one, so nearly every lookup must
  // detour at the last hop (a few may start adjacent and shortcut).
  EXPECT_GT(detours, 40);
}

TEST_F(FaultFixture, RetriesImproveSuccessUnderHeavyLoss) {
  FaultParams params;
  params.loss_rate = 0.5;
  const FaultPlan plan(params);
  RecoveryPolicy none;
  none.max_retries = 0;
  RecoveryPolicy retry;
  retry.max_retries = 3;
  retry.ttl_escalation = 1;

  const auto flood = make_engine("flood", world);
  ASSERT_NE(flood, nullptr);
  const FaultInjectedEngine single = with_faults(*flood, plan, none);
  const FaultInjectedEngine recovering = with_faults(*flood, plan, retry);

  const std::vector<TermId> terms{1, 2};
  int ok_none = 0, ok_retry = 0;
  std::uint32_t retries = 0;
  EngineContext ctx;
  util::Rng rng(2);
  ctx.rng = &rng;
  for (std::size_t t = 0; t < 100; ++t) {
    Query q;
    q.source = static_cast<NodeId>(t * 3 % kNodes);
    q.terms = terms;
    q.ttl = 1;
    q.trial = t;
    ok_none += !single.search(q, ctx).hits.empty();
    const SearchOutcome r = recovering.search(q, ctx);
    ok_retry += !r.hits.empty();
    retries += r.fault.retries;
  }
  EXPECT_GT(ok_retry, ok_none);
  EXPECT_GT(retries, 0u);
}

TEST_F(FaultFixture, SuccessorListsWalkTheRingClockwise) {
  for (NodeId v = 0; v < kNodes; ++v) {
    const auto list = dht.successor_list(v);
    ASSERT_EQ(list.size(), 4u);
    std::uint64_t at = dht.node_id(v);
    for (const NodeId s : list) {
      const NodeId expected = dht.successor_of(at + 1);
      EXPECT_EQ(s, expected);
      at = dht.node_id(s);
    }
  }
}

TEST(FaultSession, JitterAndWaitAccumulateIntoLatency) {
  FaultParams params;
  params.jitter_max_ms = 10.0;
  const FaultPlan plan(params);
  FaultSession faults(plan, 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(faults.deliver_timed());
  EXPECT_GT(faults.latency_ms(), 0.0);
  EXPECT_LT(faults.latency_ms(), 1000.0);
  const double before = faults.latency_ms();
  faults.charge_wait(400.0);
  EXPECT_DOUBLE_EQ(faults.latency_ms(), before + 400.0);
  EXPECT_EQ(faults.sent(), 100u);
  EXPECT_EQ(faults.dropped(), 0u);
}

TEST(RecoveryPolicy, BackoffIsExponential) {
  RecoveryPolicy p;
  p.backoff_ms = 100.0;
  p.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(p.backoff_after(0), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff_after(1), 200.0);
  EXPECT_DOUBLE_EQ(p.backoff_after(3), 800.0);
}

// Regression: backoff_ms * factor^retry overflows double for large retry
// counts; the wait must stay finite and capped, never inf/NaN.
TEST(RecoveryPolicy, BackoffOverflowIsCapped) {
  RecoveryPolicy p;
  p.backoff_ms = 100.0;
  p.backoff_factor = 10.0;
  const double huge = p.backoff_after(5000);
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_LE(huge, 3.6e6);  // one simulated hour
  EXPECT_DOUBLE_EQ(p.backoff_after(5000),
                   p.backoff_after(std::numeric_limits<std::uint32_t>::max()));
  // The cap is monotone: no retry waits longer than a later one.
  EXPECT_LE(p.backoff_after(10), p.backoff_after(11));
}

TEST(FaultParams, ValidationRejectsGarbage) {
  FaultParams nan_loss;
  nan_loss.loss_rate = std::nan("");
  EXPECT_THROW(FaultPlan{nan_loss}, std::invalid_argument);
  FaultParams negative_loss;
  negative_loss.loss_rate = -0.1;
  EXPECT_THROW(FaultPlan{negative_loss}, std::invalid_argument);
  FaultParams over_one;
  over_one.loss_rate = 1.5;
  EXPECT_THROW(FaultPlan{over_one}, std::invalid_argument);
  FaultParams negative_jitter;
  negative_jitter.jitter_max_ms = -1.0;
  EXPECT_THROW(FaultPlan{negative_jitter}, std::invalid_argument);
  FaultParams ok;
  ok.loss_rate = 1.0;
  ok.jitter_max_ms = 0.0;
  EXPECT_NO_THROW(FaultPlan{ok});
}

TEST(RecoveryPolicy, ValidationRejectsGarbage) {
  const auto invalid = [](auto mutate) {
    RecoveryPolicy p;
    mutate(p);
    return p;
  };
  EXPECT_THROW(
      invalid([](RecoveryPolicy& p) { p.backoff_factor = 0.5; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      invalid([](RecoveryPolicy& p) { p.route_around_width = 0; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      invalid([](RecoveryPolicy& p) { p.timeout_ms = std::nan(""); })
          .validate(),
      std::invalid_argument);
  EXPECT_THROW(
      invalid([](RecoveryPolicy& p) { p.timeout_quantile = 0.0; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      invalid([](RecoveryPolicy& p) { p.hedge_quantile = 1.5; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(invalid([](RecoveryPolicy& p) {
                 p.timeout_floor_ms = 100.0;
                 p.timeout_ceil_ms = 50.0;
               }).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(RecoveryPolicy{}.validate());
}

/// Minimal engine: enough of the SearchEngine contract to construct a
/// decorator around.
class NullEngine final : public SearchEngine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "null";
  }

 protected:
  void attempt(const Query&, EngineContext&, FaultSession*,
               const RecoveryPolicy*, SearchOutcome&) const override {}
};

// The decorator validates at construction: a bad policy cannot be
// installed at all.
TEST(RecoveryPolicy, DecoratorRejectsInvalidPolicyAtConstruction) {
  const FaultPlan plan;
  const NullEngine dummy;
  RecoveryPolicy bad;
  bad.backoff_factor = 0.0;
  EXPECT_THROW(FaultInjectedEngine(dummy, plan, bad), std::invalid_argument);
}

TEST(FaultPlanFromChurn, EmptyNetworkAndAllOfflineMask) {
  overlay::ChurnParams cp;
  cp.mean_online_s = 10.0;
  cp.mean_offline_s = 1e9;  // essentially everyone offline at steady state
  cp.seed = 5;

  // Empty network: a plan over zero nodes is valid and inert-ish — no
  // mask entries, nothing to deliver to.
  const overlay::ChurnProcess empty(0, cp);
  const FaultPlan empty_plan = FaultPlan::from_churn(FaultParams{}, empty);
  EXPECT_EQ(empty_plan.online_mask()->size(), 0u);

  // All-offline mask: every node reads offline, sessions suspect faults
  // after observing it, and reachable_at_launch reports degradation.
  overlay::ChurnProcess churn(32, cp);
  churn.advance(1e6);
  FaultPlan plan = FaultPlan::from_churn(FaultParams{}, churn);
  bool anyone_online = false;
  for (NodeId v = 0; v < 32; ++v) anyone_online |= plan.online(v);
  if (!anyone_online) {
    FaultSession session(plan, 0);
    EXPECT_FALSE(session.online(7));
    EXPECT_TRUE(session.suspects_faults());
    EXPECT_FALSE(plan.reachable_at_launch(0, 7));
  }
  EXPECT_TRUE(plan.active());
}

}  // namespace
}  // namespace qcp2p::sim
