#include "src/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qcp2p::trace {
namespace {

ContentModelParams model_params() {
  ContentModelParams p;
  p.core_lexicon_size = 1'000;
  p.catalog_songs = 5'000;
  p.artists = 300;
  p.seed = 51;
  return p;
}

TEST(TraceIo, QueryTraceRoundTrip) {
  const ContentModel model(model_params());
  QueryTraceParams params;
  params.num_queries = 500;
  params.duration_hours = 4.0;
  const QueryTrace original = generate_query_trace(model, params);

  std::stringstream buffer;
  write_query_trace(buffer, original);
  const QueryTrace loaded = read_query_trace(buffer);

  ASSERT_EQ(loaded.queries().size(), original.queries().size());
  for (std::size_t i = 0; i < loaded.queries().size(); ++i) {
    EXPECT_EQ(loaded.queries()[i].terms, original.queries()[i].terms);
    EXPECT_NEAR(loaded.queries()[i].time_s, original.queries()[i].time_s,
                1e-3);
  }
}

TEST(TraceIo, QueryTraceRejectsBadHeader) {
  std::stringstream buffer("not a trace\n1.0 2 3\n");
  EXPECT_THROW(read_query_trace(buffer), std::runtime_error);
}

TEST(TraceIo, QueryTraceRejectsTermlessQuery) {
  std::stringstream buffer("qtrace v1\n1.5\n");
  EXPECT_THROW(read_query_trace(buffer), std::runtime_error);
}

TEST(TraceIo, QueryTraceSkipsComments) {
  std::stringstream buffer("qtrace v1\n# a comment\n1.0 7 9\n\n2.0 3\n");
  const QueryTrace t = read_query_trace(buffer);
  ASSERT_EQ(t.queries().size(), 2u);
  EXPECT_EQ(t.queries()[0].terms, (std::vector<TermId>{7, 9}));
}

TEST(TraceIo, CrawlRoundTrip) {
  const ContentModel model(model_params());
  GnutellaCrawlParams params;
  params.num_peers = 40;
  const CrawlSnapshot original = generate_gnutella_crawl(model, params);

  std::stringstream buffer;
  write_crawl(buffer, original);
  const CrawlSnapshot loaded = read_crawl(buffer, model);

  ASSERT_EQ(loaded.num_peers(), original.num_peers());
  EXPECT_EQ(loaded.total_objects(), original.total_objects());
  for (std::size_t p = 0; p < loaded.num_peers(); ++p) {
    const auto& a = original.peer_objects(p);
    const auto& b = loaded.peer_objects(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
  }
  // Names are realizable from the reloaded snapshot too.
  if (!loaded.peer_objects(0).empty()) {
    EXPECT_EQ(loaded.object_name(loaded.peer_objects(0)[0]),
              original.object_name(original.peer_objects(0)[0]));
  }
}

TEST(TraceIo, CrawlRejectsBadHeaderAndRange) {
  const ContentModel model(model_params());
  std::stringstream bad_header("nope\n");
  EXPECT_THROW(read_crawl(bad_header, model), std::runtime_error);
  std::stringstream bad_peer("crawl v1 2\n5 4000000000000000\n");
  EXPECT_THROW(read_crawl(bad_peer, model), std::runtime_error);
}

TEST(TraceIo, FileHelpersThrowOnMissingPath) {
  const ContentModel model(model_params());
  EXPECT_THROW(load_query_trace("/nonexistent/dir/q.txt"), std::runtime_error);
  EXPECT_THROW(load_crawl("/nonexistent/dir/c.txt", model), std::runtime_error);
}

}  // namespace
}  // namespace qcp2p::trace
