#include "src/core/dynamic_synopsis.hpp"

#include <gtest/gtest.h>

namespace qcp2p::core {
namespace {

SynopsisParams small_params(std::size_t budget = 4) {
  SynopsisParams p;
  p.term_budget = budget;
  p.bloom_bits = 1'024;
  return p;
}

TEST(DynamicSynopsis, AdvertisesAfterFirstRefresh) {
  DynamicSynopsis s(small_params(), SynopsisPolicy::kContentCentric);
  s.add_object(std::vector<TermId>{1, 2});
  EXPECT_TRUE(s.refresh(nullptr));
  EXPECT_TRUE(s.maybe_contains(1));
  EXPECT_TRUE(s.maybe_contains(2));
  EXPECT_TRUE(s.maybe_contains_all(std::vector<TermId>{1, 2}));
  EXPECT_EQ(s.readvertisements(), 1u);
}

TEST(DynamicSynopsis, UnchangedContentNeedsNoReadvertisement) {
  DynamicSynopsis s(small_params(), SynopsisPolicy::kContentCentric);
  s.add_object(std::vector<TermId>{1, 2});
  ASSERT_TRUE(s.refresh(nullptr));
  EXPECT_FALSE(s.refresh(nullptr));  // nothing changed
  // Adding a duplicate object (same terms) changes frequencies but not
  // the advertised set under a roomy budget.
  s.add_object(std::vector<TermId>{1, 2});
  EXPECT_FALSE(s.refresh(nullptr));
  EXPECT_EQ(s.readvertisements(), 1u);
}

TEST(DynamicSynopsis, RemovalDropsTermsFromTheWire) {
  DynamicSynopsis s(small_params(), SynopsisPolicy::kContentCentric);
  s.add_object(std::vector<TermId>{1, 2});
  s.add_object(std::vector<TermId>{3});
  ASSERT_TRUE(s.refresh(nullptr));
  ASSERT_TRUE(s.maybe_contains(3));

  s.remove_object(std::vector<TermId>{3});
  EXPECT_TRUE(s.refresh(nullptr));
  EXPECT_FALSE(s.maybe_contains(3));
  EXPECT_TRUE(s.maybe_contains(1));
  EXPECT_EQ(s.distinct_terms(), 2u);
}

TEST(DynamicSynopsis, UnmatchedRemoveIsIgnored) {
  DynamicSynopsis s(small_params(), SynopsisPolicy::kContentCentric);
  s.add_object(std::vector<TermId>{1});
  s.remove_object(std::vector<TermId>{99});  // never added
  EXPECT_TRUE(s.refresh(nullptr));
  EXPECT_TRUE(s.maybe_contains(1));
}

TEST(DynamicSynopsis, BudgetEvictionFollowsContentFrequency) {
  DynamicSynopsis s(small_params(2), SynopsisPolicy::kContentCentric);
  for (int i = 0; i < 5; ++i) s.add_object(std::vector<TermId>{10});
  for (int i = 0; i < 3; ++i) s.add_object(std::vector<TermId>{20});
  s.add_object(std::vector<TermId>{30});
  ASSERT_TRUE(s.refresh(nullptr));
  EXPECT_TRUE(s.maybe_contains(10));
  EXPECT_TRUE(s.maybe_contains(20));
  EXPECT_FALSE(s.maybe_contains(30));  // squeezed out by the budget
}

TEST(DynamicSynopsis, QueryCentricFollowsTheTracker) {
  DynamicSynopsis s(small_params(1), SynopsisPolicy::kQueryCentric);
  for (int i = 0; i < 5; ++i) s.add_object(std::vector<TermId>{10});
  s.add_object(std::vector<TermId>{30});  // niche term

  TermPopularityTracker tracker;
  ASSERT_TRUE(s.refresh(&tracker));
  EXPECT_TRUE(s.maybe_contains(10));  // no signal yet: content order

  // Queries start hammering the niche term: the advertisement flips.
  for (int i = 0; i < 200; ++i) tracker.observe_query({30});
  EXPECT_TRUE(s.refresh(&tracker));
  EXPECT_TRUE(s.maybe_contains(30));
  EXPECT_FALSE(s.maybe_contains(10));
  EXPECT_EQ(s.readvertisements(), 2u);

  // Stable tracker -> no further churn.
  EXPECT_FALSE(s.refresh(&tracker));
}

TEST(DynamicSynopsis, WireFilterMatchesLiveFilter) {
  DynamicSynopsis s(small_params(8), SynopsisPolicy::kContentCentric);
  s.add_object(std::vector<TermId>{1, 2, 3});
  ASSERT_TRUE(s.refresh(nullptr));
  const BloomFilter wire = s.wire_filter();
  for (TermId t : {1u, 2u, 3u}) {
    EXPECT_EQ(wire.maybe_contains(t), s.maybe_contains(t));
  }
  EXPECT_FALSE(wire.maybe_contains(777));
}

TEST(DynamicSynopsis, ManyChurnCyclesKeepFilterConsistent) {
  DynamicSynopsis s(small_params(16), SynopsisPolicy::kContentCentric);
  for (int cycle = 0; cycle < 60; ++cycle) {
    const auto base = static_cast<TermId>(cycle * 3);
    s.add_object(std::vector<TermId>{base, base + 1, base + 2});
    (void)s.refresh(nullptr);
    if (cycle >= 4) {
      const auto old = static_cast<TermId>((cycle - 4) * 3);
      s.remove_object(std::vector<TermId>{old, old + 1, old + 2});
      (void)s.refresh(nullptr);
    }
  }
  // The advertised set equals the last few cycles' terms, and the filter
  // agrees with it exactly (no stale bits beyond Bloom false positives).
  for (TermId t : s.advertised()) {
    EXPECT_TRUE(s.maybe_contains(t));
  }
  const auto stale = static_cast<TermId>(2 * 3);  // long-evicted
  EXPECT_FALSE(s.maybe_contains(stale));
}

TEST(DynamicSynopsis, QueryCentricChurnKeepsFilterExactlyAdvertised) {
  TermPopularityTracker tracker;
  DynamicSynopsis s(small_params(6), SynopsisPolicy::kQueryCentric);
  // Rolling content churn plus drifting query popularity across many
  // refresh cycles. After every refresh, the incrementally-maintained
  // counting filter must equal a filter rebuilt from scratch over
  // advertised() — no residue from the add/remove/re-rank sequence.
  for (int cycle = 0; cycle < 40; ++cycle) {
    const auto base = static_cast<TermId>(cycle * 4);
    s.add_object(
        std::vector<TermId>{base, base + 1, base + 2, base + 3});
    if (cycle >= 3) {
      const auto old = static_cast<TermId>((cycle - 3) * 4);
      s.remove_object(std::vector<TermId>{old, old + 1, old + 2, old + 3});
    }
    for (int i = 0; i <= cycle; ++i) {
      tracker.observe_query({base + static_cast<TermId>(cycle % 4)});
    }
    (void)s.refresh(&tracker);
    const SynopsisParams p = small_params(6);
    BloomFilter rebuilt(p.bloom_bits, p.bloom_hashes);
    for (TermId t : s.advertised()) rebuilt.insert(t);
    EXPECT_EQ(s.wire_filter().raw_words(), rebuilt.raw_words())
        << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace qcp2p::core
