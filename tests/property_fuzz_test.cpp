// Randomized property and fuzz tests across module boundaries: the
// string <-> id pipelines must round-trip, and parsers must never choke
// on garbage.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/overlay/graph.hpp"
#include "src/text/tokenizer.hpp"
#include "src/trace/query_trace.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/rng.hpp"

namespace qcp2p {
namespace {

TEST(TermCodec, RoundTripsRandomIds) {
  util::Rng rng(1);
  for (int i = 0; i < 20'000; ++i) {
    const auto id = static_cast<trace::TermId>(rng.bounded(1u << 31));
    const std::string word = trace::ContentModel::spell_term(id);
    const auto decoded = trace::ContentModel::parse_term(word);
    ASSERT_TRUE(decoded.has_value()) << word;
    ASSERT_EQ(*decoded, id) << word;
  }
}

TEST(TermCodec, RoundTripsSmallIdsExhaustively) {
  for (trace::TermId id = 0; id < 5'000; ++id) {
    const auto decoded =
        trace::ContentModel::parse_term(trace::ContentModel::spell_term(id));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, id);
  }
}

TEST(TermCodec, RejectsGarbage) {
  for (const char* bad : {"", "x", "kax", "track", "don", "01", "aaron",
                          "  ", "k", "zzz", "kalox"}) {
    EXPECT_FALSE(trace::ContentModel::parse_term(bad).has_value()) << bad;
  }
}

TEST(TermCodec, UniqueDecodabilityOnRandomConcatenations) {
  // Spellings of two different ids never concatenate ambiguously into a
  // spelling of a third id's word boundary — i.e. decoding the
  // concatenation with a separator removed must not produce a valid
  // single id whose spelling differs from the concatenation. (Weaker
  // corollary we can test: parse(spell(a)) is always a, even when
  // spell(a) happens to contain another spelling as a substring.)
  util::Rng rng(2);
  for (int i = 0; i < 2'000; ++i) {
    const auto a = static_cast<trace::TermId>(rng.bounded(1u << 20));
    const auto b = static_cast<trace::TermId>(rng.bounded(1u << 20));
    const std::string joined = trace::ContentModel::spell_term(a) +
                               trace::ContentModel::spell_term(b);
    const auto decoded = trace::ContentModel::parse_term(joined);
    if (decoded.has_value()) {
      // If the concatenation happens to be a canonical spelling, it must
      // round-trip to itself — no silent aliasing.
      ASSERT_EQ(trace::ContentModel::spell_term(*decoded), joined);
    }
  }
}

TEST(QueryStringPipeline, SpellParseRoundTrip) {
  util::Rng rng(3);
  for (int i = 0; i < 2'000; ++i) {
    trace::Query q;
    const std::size_t n = 1 + rng.bounded(4);
    std::set<trace::TermId> terms;
    while (terms.size() < n) {
      terms.insert(static_cast<trace::TermId>(rng.bounded(1u << 24)));
    }
    q.terms.assign(terms.begin(), terms.end());
    const std::string typed = trace::spell_query(q);
    const auto parsed = trace::parse_query_string(typed);
    ASSERT_EQ(parsed, q.terms) << typed;
  }
}

TEST(QueryStringPipeline, NoiseTokensAreDropped) {
  const auto parsed = trace::parse_query_string("kalo 2006 don't KALO mp3");
  // "kalo" parses (case-folded duplicate collapses); "2006", "don", "t"
  // and the extension do not.
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(trace::ContentModel::spell_term(parsed[0]), "kalo");
}

TEST(TokenizerFuzz, NeverCrashesAndRespectsInvariants) {
  util::Rng rng(4);
  for (int trial = 0; trial < 3'000; ++trial) {
    std::string input;
    const std::size_t len = rng.bounded(64);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.bounded(256)));
    }
    const auto tokens = text::tokenize(input);
    for (const std::string& t : tokens) {
      ASSERT_GE(t.size(), 2u);
      for (char ch : t) {
        const auto c = static_cast<unsigned char>(ch);
        ASSERT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    c >= 0x80)
            << "token byte " << static_cast<int>(c);
      }
    }
    // Sanitization is idempotent on arbitrary bytes.
    const std::string once = text::sanitize_filename(input);
    ASSERT_EQ(text::sanitize_filename(once), once);
  }
}

TEST(TraceIoFuzz, MalformedQueryTracesNeverCrash) {
  util::Rng rng(5);
  const char* headers[] = {"qtrace v1\n", "qtrace v2\n", "", "garbage\n"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string blob = headers[rng.bounded(4)];
    const std::size_t lines = rng.bounded(6);
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t len = rng.bounded(24);
      for (std::size_t i = 0; i < len; ++i) {
        // Printable-ish garbage plus separators.
        blob.push_back(static_cast<char>(' ' + rng.bounded(95)));
      }
      blob.push_back('\n');
    }
    std::stringstream ss(blob);
    try {
      const trace::QueryTrace t = trace::read_query_trace(ss);
      for (const trace::Query& q : t.queries()) {
        ASSERT_FALSE(q.terms.empty());
      }
    } catch (const std::exception&) {
      // Rejection is fine; crashing is not.
    }
  }
}

TEST(GraphProperty, RandomOpsMatchReferenceSet) {
  util::Rng rng(6);
  overlay::Graph g(30);
  std::set<std::pair<overlay::NodeId, overlay::NodeId>> reference;
  for (int op = 0; op < 5'000; ++op) {
    const auto u = static_cast<overlay::NodeId>(rng.bounded(30));
    const auto v = static_cast<overlay::NodeId>(rng.bounded(30));
    const auto key = std::minmax(u, v);
    if (rng.chance(0.6)) {
      const bool added = g.add_edge(u, v);
      const bool expected = u != v && !reference.count(key);
      ASSERT_EQ(added, expected);
      if (added) reference.insert(key);
    } else {
      const bool removed = g.remove_edge(u, v);
      ASSERT_EQ(removed, reference.count(key) > 0);
      reference.erase(key);
    }
    ASSERT_EQ(g.num_edges(), reference.size());
  }
  // Degrees must sum to twice the edge count.
  std::size_t degree_sum = 0;
  for (overlay::NodeId v = 0; v < 30; ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * reference.size());
}

TEST(ObjectNameProperty, TermsMatchTokenizedNamesOnRandomObjects) {
  trace::ContentModelParams mp;
  mp.core_lexicon_size = 1'000;
  mp.catalog_songs = 5'000;
  mp.artists = 800;
  mp.tail_lexicon_size = 10'000;
  const trace::ContentModel model(mp);
  trace::GnutellaCrawlParams cp;
  cp.num_peers = 60;
  const trace::CrawlSnapshot snap = generate_gnutella_crawl(model, cp);

  text::TokenizerOptions opts;
  opts.drop_numeric = true;  // personal rip tags are numeric
  std::size_t checked = 0;
  for (std::size_t p = 0; p < snap.num_peers(); ++p) {
    for (trace::ObjectKey k : snap.peer_objects(p)) {
      if (k.cls() == trace::ObjectClass::kNonspecific) continue;
      const auto tokens = text::tokenize(snap.object_name(k), opts);
      const auto terms = snap.object_terms(k);
      ASSERT_EQ(tokens.size(), terms.size()) << snap.object_name(k);
      for (std::size_t i = 0; i < terms.size(); ++i) {
        ASSERT_EQ(tokens[i], trace::ContentModel::spell_term(terms[i]));
      }
      if (++checked >= 3'000) return;
    }
  }
}

}  // namespace
}  // namespace qcp2p
