#include "src/sim/replication.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/util/rng.hpp"
#include "src/util/zipf.hpp"

namespace qcp2p::sim {
namespace {

TEST(AllocateReplicas, ValidatesInputs) {
  const std::vector<double> rates{1.0, 2.0};
  EXPECT_THROW(allocate_replicas(rates, 2, ReplicationPolicy::kUniform, 0),
               std::invalid_argument);
  EXPECT_THROW(allocate_replicas(rates, 1, ReplicationPolicy::kUniform, 10),
               std::invalid_argument);
  EXPECT_TRUE(
      allocate_replicas({}, 0, ReplicationPolicy::kUniform, 1).empty());
}

TEST(AllocateReplicas, BudgetIsRespectedAndFloored) {
  const std::vector<double> rates{9.0, 1.0, 0.0, 4.0};
  for (const auto policy :
       {ReplicationPolicy::kUniform, ReplicationPolicy::kProportional,
        ReplicationPolicy::kSquareRoot}) {
    const auto copies = allocate_replicas(rates, 40, policy, 100);
    ASSERT_EQ(copies.size(), 4u);
    std::uint64_t total = 0;
    for (auto c : copies) {
      EXPECT_GE(c, 1u);  // owner copy floor
      total += c;
    }
    EXPECT_EQ(total, 40u);
  }
}

TEST(AllocateReplicas, UniformSplitsEvenly) {
  const std::vector<double> rates{5.0, 1.0, 3.0, 2.0};
  const auto copies =
      allocate_replicas(rates, 40, ReplicationPolicy::kUniform, 100);
  for (auto c : copies) EXPECT_EQ(c, 10u);
}

TEST(AllocateReplicas, ProportionalTracksRates) {
  const std::vector<double> rates{8.0, 2.0};
  const auto copies =
      allocate_replicas(rates, 100, ReplicationPolicy::kProportional, 1'000);
  // Floors shift things slightly; ~80/20 split.
  EXPECT_NEAR(static_cast<double>(copies[0]), 80.0, 3.0);
  EXPECT_NEAR(static_cast<double>(copies[1]), 20.0, 3.0);
}

TEST(AllocateReplicas, SquareRootCompressesTheSkew) {
  const std::vector<double> rates{100.0, 1.0};
  const auto prop =
      allocate_replicas(rates, 110, ReplicationPolicy::kProportional, 1'000);
  const auto sqrt_alloc =
      allocate_replicas(rates, 110, ReplicationPolicy::kSquareRoot, 1'000);
  // Proportional gives ~100:1; square-root ~10:1.
  EXPECT_GT(prop[0], 9 * prop[1]);
  EXPECT_LT(sqrt_alloc[0], 15 * sqrt_alloc[1]);
  EXPECT_GT(sqrt_alloc[1], prop[1]);
}

TEST(AllocateReplicas, PerObjectCapIsHonored) {
  const std::vector<double> rates{1'000.0, 1.0, 1.0};
  const auto copies =
      allocate_replicas(rates, 30, ReplicationPolicy::kProportional, 12);
  EXPECT_LE(copies[0], 12u);
}

TEST(ExpectedSearchSize, MatchesHandComputation) {
  // Two objects, equal query rates, copies {2, 8} in 100 peers:
  // E = 0.5*100/2 + 0.5*100/8 = 25 + 6.25.
  const std::vector<double> rates{1.0, 1.0};
  const std::vector<std::uint64_t> replicas{2, 8};
  EXPECT_NEAR(expected_search_size(rates, replicas, 100), 31.25, 1e-9);
  EXPECT_THROW(
      (void)expected_search_size(rates, std::vector<std::uint64_t>{1}, 100),
      std::invalid_argument);
}

// The Cohen-Shenker theorem, empirically: square-root allocation beats
// uniform and proportional for Zipf query rates, and approaches the
// analytical optimum.
TEST(ReplicationPolicies, SquareRootMinimizesExpectedSearchSize) {
  constexpr std::size_t kObjects = 2'000;
  constexpr std::uint64_t kPeers = 10'000;
  constexpr std::uint64_t kBudget = 40'000;  // 20 copies/object on average
  const auto rates = util::zipf_pmf(kObjects, 1.0);

  const auto uniform =
      allocate_replicas(rates, kBudget, ReplicationPolicy::kUniform, kPeers);
  const auto proportional = allocate_replicas(
      rates, kBudget, ReplicationPolicy::kProportional, kPeers);
  const auto square_root = allocate_replicas(
      rates, kBudget, ReplicationPolicy::kSquareRoot, kPeers);

  const double e_uniform = expected_search_size(rates, uniform, kPeers);
  const double e_prop = expected_search_size(rates, proportional, kPeers);
  const double e_sqrt = expected_search_size(rates, square_root, kPeers);
  const double e_opt = optimal_search_size(rates, kBudget, kPeers);

  EXPECT_LT(e_sqrt, e_uniform);
  EXPECT_LT(e_sqrt, e_prop);
  EXPECT_NEAR(e_sqrt, e_opt, e_opt * 0.20);  // rounding + floors
  EXPECT_GE(e_sqrt, e_opt * 0.99);           // cannot beat the optimum
}

TEST(OptimalSearchSize, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(optimal_search_size({}, 10, 100), 0.0);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_DOUBLE_EQ(optimal_search_size(zero, 10, 100), 0.0);
}

}  // namespace
}  // namespace qcp2p::sim
