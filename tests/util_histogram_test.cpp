#include "src/util/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/overlay/topology.hpp"
#include "src/analysis/query_analysis.hpp"

namespace qcp2p {
namespace {

TEST(LogHistogram, BinsDoubleAndCover) {
  util::LogHistogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 4ULL, 7ULL, 8ULL, 1'000ULL}) {
    h.add(v);
  }
  EXPECT_EQ(h.total(), 8u);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 6u);
  EXPECT_EQ(bins[0].lo, 0u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].lo, 1u);
  EXPECT_EQ(bins[1].hi, 1u);
  EXPECT_EQ(bins[2].lo, 2u);
  EXPECT_EQ(bins[2].hi, 3u);
  EXPECT_EQ(bins[2].count, 2u);
  EXPECT_EQ(bins[3].lo, 4u);
  EXPECT_EQ(bins[3].hi, 7u);
  EXPECT_EQ(bins[4].lo, 8u);
  EXPECT_EQ(bins[4].hi, 15u);
  EXPECT_EQ(bins[5].lo, 512u);
  EXPECT_EQ(bins[5].hi, 1'023u);
}

TEST(LogHistogram, FractionsSumToOne) {
  util::LogHistogram h;
  const std::vector<std::uint64_t> values{1, 1, 1, 5, 9, 100, 10'000};
  h.add_all(values);
  double sum = 0.0;
  for (const auto& bin : h.bins()) sum += bin.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LogHistogram, LabelsAndPrint) {
  util::LogHistogram h;
  h.add(0);
  h.add(6);
  const auto bins = h.bins();
  EXPECT_EQ(util::LogHistogram::label(bins[0]), "0");
  EXPECT_EQ(util::LogHistogram::label(bins[1]), "4-7");
  std::ostringstream os;
  h.print(os);
  EXPECT_NE(os.str().find("4-7"), std::string::npos);
}

TEST(LogHistogram, HandlesExtremes) {
  util::LogHistogram h;
  h.add(~0ULL);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].hi, ~0ULL);
}

TEST(WattsStrogatz, LatticeAndRewiredRegimes) {
  util::Rng rng(1);
  // beta = 0: pure ring lattice, exactly n*k/2 edges, degree k.
  const overlay::Graph lattice = overlay::watts_strogatz(100, 4, 0.0, rng);
  EXPECT_EQ(lattice.num_edges(), 200u);
  for (overlay::NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(lattice.degree(v), 4u);
  }
  EXPECT_TRUE(lattice.is_connected());

  // beta = 0.2: same edge count (up to rare rewire failures), connected,
  // but no longer a pure lattice.
  const overlay::Graph rewired = overlay::watts_strogatz(500, 6, 0.2, rng);
  EXPECT_TRUE(rewired.is_connected());
  EXPECT_NEAR(rewired.mean_degree(), 6.0, 0.5);
  std::size_t non_lattice = 0;
  for (overlay::NodeId v = 0; v < 500; ++v) {
    for (overlay::NodeId u : rewired.neighbors(v)) {
      const std::size_t dist = std::min<std::size_t>(
          (u + 500 - v) % 500, (v + 500 - u) % 500);
      non_lattice += dist > 3;
    }
  }
  EXPECT_GT(non_lattice, 50u);  // long-range shortcuts exist
}

TEST(WattsStrogatz, Validates) {
  util::Rng rng(2);
  EXPECT_THROW(overlay::watts_strogatz(10, 3, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(overlay::watts_strogatz(4, 4, 0.1, rng),
               std::invalid_argument);
}

TEST(Autocorrelation, DetectsPeriodicity) {
  std::vector<double> series;
  for (int i = 0; i < 96; ++i) {
    series.push_back(std::sin(i * 3.14159265 / 12.0));  // period 24
  }
  EXPECT_GT(analysis::autocorrelation(series, 24), 0.5);
  EXPECT_LT(analysis::autocorrelation(series, 12), -0.3);
  EXPECT_EQ(analysis::autocorrelation(series, 200), 0.0);  // lag too big
  const std::vector<double> flat(10, 3.0);
  EXPECT_EQ(analysis::autocorrelation(flat, 1), 0.0);  // zero variance
}

TEST(Autocorrelation, QueryTraceIsDiurnal) {
  trace::ContentModelParams mp;
  mp.core_lexicon_size = 1'000;
  mp.catalog_songs = 5'000;
  mp.artists = 500;
  mp.tail_lexicon_size = 10'000;
  const trace::ContentModel model(mp);
  trace::QueryTraceParams qp;
  qp.num_queries = 120'000;
  qp.duration_hours = 96.0;
  qp.diurnal_amplitude = 0.45;
  const trace::QueryTrace trace = generate_query_trace(model, qp);
  const analysis::QueryTermAnalyzer analyzer(
      trace.queries(), trace.duration_s(), 3'600.0, 0.0);
  const auto volume = analyzer.volume_series();
  // The generator's diurnal modulation shows up as a 24-hour peak.
  EXPECT_GT(analysis::autocorrelation(volume, 24), 0.5);
  EXPECT_LT(analysis::autocorrelation(volume, 12), 0.0);
}

}  // namespace
}  // namespace qcp2p
