#include "src/overlay/churn.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qcp2p::overlay {
namespace {

TEST(ChurnProcess, SteadyStateInitialization) {
  ChurnParams params;
  params.mean_online_s = 3600.0;
  params.mean_offline_s = 7200.0;  // steady state p_online = 1/3
  const ChurnProcess churn(20'000, params);
  EXPECT_NEAR(churn.online_fraction(), 1.0 / 3.0, 0.03);
}

TEST(ChurnProcess, FractionStaysNearSteadyStateUnderAdvance) {
  ChurnParams params;
  params.mean_online_s = 1000.0;
  params.mean_offline_s = 1000.0;
  ChurnProcess churn(10'000, params);
  for (int step = 0; step < 10; ++step) {
    churn.advance(500.0);
    EXPECT_NEAR(churn.online_fraction(), 0.5, 0.05) << "step " << step;
  }
  EXPECT_DOUBLE_EQ(churn.now(), 5000.0);
}

TEST(ChurnProcess, NodesActuallyToggle) {
  ChurnParams params;
  params.mean_online_s = 100.0;
  params.mean_offline_s = 100.0;
  ChurnProcess churn(200, params);
  const std::vector<bool> before = churn.online();
  churn.advance(1000.0);  // ~10 expected sessions per node
  const std::vector<bool>& after = churn.online();
  std::size_t changed = 0;
  for (std::size_t v = 0; v < before.size(); ++v) changed += (before[v] != after[v]);
  EXPECT_GT(changed, 20u);
}

TEST(ChurnProcess, DeterministicInSeed) {
  ChurnParams params;
  ChurnProcess a(500, params), b(500, params);
  a.advance(5000.0);
  b.advance(5000.0);
  EXPECT_EQ(a.online(), b.online());
}

TEST(ChurnProcess, NegativeAdvanceIsRejected) {
  ChurnParams params;
  ChurnProcess churn(10, params);
#ifdef NDEBUG
  EXPECT_THROW(churn.advance(-0.001), std::invalid_argument);
  EXPECT_THROW(churn.advance(-1e9), std::invalid_argument);
#else
  EXPECT_DEATH(churn.advance(-0.001), "non-negative");
#endif
  EXPECT_DOUBLE_EQ(churn.now(), 0.0);  // rejected calls leave time alone
  churn.advance(0.0);                  // zero is a legal no-op
  EXPECT_DOUBLE_EQ(churn.now(), 0.0);
}

TEST(ChurnProcess, EmptyNetworkFractionIsExactSteadyState) {
  ChurnParams params;
  params.mean_online_s = 3600.0;
  params.mean_offline_s = 1200.0;  // p_online = 0.75 exactly
  const ChurnProcess churn(0, params);
  EXPECT_DOUBLE_EQ(churn.online_fraction(), 0.75);

  ChurnParams degenerate;
  degenerate.mean_online_s = 0.0;
  degenerate.mean_offline_s = 0.0;
  EXPECT_DOUBLE_EQ(ChurnProcess(0, degenerate).online_fraction(), 0.0);
}

TEST(ChurnProcess, DrainEventsMatchesAdvanceEndState) {
  ChurnParams params;
  params.mean_online_s = 200.0;
  params.mean_offline_s = 100.0;
  ChurnProcess drained(400, params);
  ChurnProcess advanced(400, params);

  std::vector<MembershipEvent> events;
  for (double t = 250.0; t <= 2000.0; t += 250.0) {
    const auto batch = drained.drain_events(t);
    events.insert(events.end(), batch.begin(), batch.end());
  }
  advanced.advance(2000.0);
  EXPECT_EQ(drained.online(), advanced.online());
  EXPECT_DOUBLE_EQ(drained.now(), advanced.now());

  // Events are sorted by (time, node), each in its drain window, and
  // replaying them over the initial state reproduces the final mask.
  ChurnProcess initial(400, params);
  std::vector<bool> replay = initial.online();
  double prev = 0.0;
  for (const MembershipEvent& ev : events) {
    EXPECT_GE(ev.time_s, prev);
    prev = ev.time_s;
    EXPECT_NE(replay[ev.node], ev.join);  // every event is a real toggle
    replay[ev.node] = ev.join;
  }
  EXPECT_EQ(replay, drained.online());
}

TEST(ChurnProcess, DrainEventsRejectsTimeTravel) {
  ChurnParams params;
  ChurnProcess churn(10, params);
  (void)churn.drain_events(100.0);
#ifdef NDEBUG
  EXPECT_THROW((void)churn.drain_events(50.0), std::invalid_argument);
#else
  EXPECT_DEATH((void)churn.drain_events(50.0), "non-negative");
#endif
  EXPECT_TRUE(churn.drain_events(100.0).empty());  // same-time no-op
}

TEST(SampleOnline, MatchesProbability) {
  util::Rng rng(1);
  const auto online = sample_online(50'000, 0.7, rng);
  std::size_t up = 0;
  for (bool b : online) up += b;
  EXPECT_NEAR(static_cast<double>(up) / 50'000.0, 0.7, 0.01);
}

TEST(SampleOnline, Extremes) {
  util::Rng rng(2);
  for (bool b : sample_online(100, 0.0, rng)) EXPECT_FALSE(b);
  for (bool b : sample_online(100, 1.0, rng)) EXPECT_TRUE(b);
}

}  // namespace
}  // namespace qcp2p::overlay
