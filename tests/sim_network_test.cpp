#include "src/sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qcp2p::sim {
namespace {

TEST(PlaceUniform, ExactCopiesDistinctPeers) {
  util::Rng rng(1);
  const Placement p = place_uniform(100, 5, 1'000, rng);
  ASSERT_EQ(p.num_objects(), 100u);
  for (const auto& holders : p.holders) {
    EXPECT_EQ(holders.size(), 5u);
    EXPECT_TRUE(std::is_sorted(holders.begin(), holders.end()));
    EXPECT_EQ(std::adjacent_find(holders.begin(), holders.end()),
              holders.end());
    for (NodeId h : holders) EXPECT_LT(h, 1'000u);
  }
}

TEST(PlaceUniform, RejectsImpossibleCopies) {
  util::Rng rng(2);
  EXPECT_THROW(place_uniform(1, 11, 10, rng), std::invalid_argument);
}

TEST(PlaceByCounts, UsesGivenCountsClamped) {
  util::Rng rng(3);
  const std::vector<std::uint64_t> counts{1, 3, 500};
  const Placement p = place_by_counts(counts, 100, rng);
  EXPECT_EQ(p.holders[0].size(), 1u);
  EXPECT_EQ(p.holders[1].size(), 3u);
  EXPECT_EQ(p.holders[2].size(), 100u);  // clamped to population
}

TEST(SampleReplicaCounts, DrawsFromSource) {
  util::Rng rng(4);
  const std::vector<std::uint64_t> source{1, 1, 1, 7};
  const auto counts = sample_replica_counts(source, 10'000, rng);
  ASSERT_EQ(counts.size(), 10'000u);
  std::size_t sevens = 0;
  for (auto c : counts) {
    ASSERT_TRUE(c == 1 || c == 7);
    sevens += (c == 7);
  }
  EXPECT_NEAR(static_cast<double>(sevens) / 10'000.0, 0.25, 0.03);
}

TEST(SampleReplicaCounts, RejectsEmptySource) {
  util::Rng rng(5);
  EXPECT_THROW(sample_replica_counts({}, 10, rng), std::invalid_argument);
}

TEST(PeerStore, ConjunctiveMatchSemantics) {
  PeerStore store(2);
  store.add_object(0, 100, {5, 3, 5, 1});  // duplicates collapse
  store.add_object(0, 101, {3, 7});
  store.add_object(1, 102, {1});
  store.finalize();

  EXPECT_EQ(store.total_objects(), 3u);
  const std::vector<TermId> q1{3};
  auto hits = store.match(0, q1);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{100, 101}));

  const std::vector<TermId> q2{1, 3};
  EXPECT_EQ(store.match(0, q2), (std::vector<std::uint64_t>{100}));
  EXPECT_TRUE(store.match(1, q2).empty());

  const std::vector<TermId> empty_q;
  EXPECT_TRUE(store.match(0, empty_q).empty());
}

TEST(PeerStore, MayMatchPrefilter) {
  PeerStore store(1);
  store.add_object(0, 1, {10, 20});
  store.finalize();
  EXPECT_TRUE(store.may_match(0, std::vector<TermId>{10}));
  EXPECT_TRUE(store.may_match(0, std::vector<TermId>{10, 20}));
  EXPECT_FALSE(store.may_match(0, std::vector<TermId>{10, 30}));
}

TEST(PeerStore, PeerTermsAreSortedUnique) {
  PeerStore store(1);
  store.add_object(0, 1, {9, 2});
  store.add_object(0, 2, {2, 5});
  store.finalize();
  const auto terms = store.peer_terms(0);
  EXPECT_EQ(std::vector<TermId>(terms.begin(), terms.end()),
            (std::vector<TermId>{2, 5, 9}));
}

TEST(PeerStoreFromCrawl, RoundRobinAssignment) {
  trace::ContentModelParams mp;
  mp.core_lexicon_size = 500;
  mp.catalog_songs = 2'000;
  mp.artists = 100;
  const trace::ContentModel model(mp);
  trace::GnutellaCrawlParams cp;
  cp.num_peers = 50;
  const trace::CrawlSnapshot snap = generate_gnutella_crawl(model, cp);

  const PeerStore store = peer_store_from_crawl(snap, 20);
  EXPECT_EQ(store.num_peers(), 20u);
  EXPECT_EQ(store.total_objects(), snap.total_objects());

  const PeerStore bigger = peer_store_from_crawl(snap, 100);
  EXPECT_EQ(bigger.num_peers(), 100u);
  // Peers 50..99 route but hold nothing.
  for (NodeId v = 50; v < 100; ++v) EXPECT_TRUE(bigger.objects(v).empty());
}

}  // namespace
}  // namespace qcp2p::sim
