#include "src/analysis/rare_queries.hpp"

#include <gtest/gtest.h>

namespace qcp2p::analysis {
namespace {

trace::ContentModelParams model_params() {
  trace::ContentModelParams p;
  p.core_lexicon_size = 1'000;
  p.catalog_songs = 8'000;
  p.artists = 1'000;
  p.tail_lexicon_size = 20'000;
  p.seed = 71;
  return p;
}

struct IndexFixture : ::testing::Test {
  IndexFixture() : model(model_params()) {
    trace::GnutellaCrawlParams cp;
    cp.num_peers = 300;
    cp.mean_objects_per_peer = 50;
    snapshot = std::make_unique<trace::CrawlSnapshot>(
        generate_gnutella_crawl(model, cp));
    index = std::make_unique<GlobalResultIndex>(*snapshot);
  }
  trace::ContentModel model;
  std::unique_ptr<trace::CrawlSnapshot> snapshot;
  std::unique_ptr<GlobalResultIndex> index;
};

TEST_F(IndexFixture, SingleTermCountMatchesBruteForce) {
  // Pick a term from some object and count replicas by brute force.
  trace::TermId term = 0;
  for (std::size_t p = 0; p < snapshot->num_peers() && term == 0; ++p) {
    for (trace::ObjectKey k : snapshot->peer_objects(p)) {
      const auto terms = snapshot->object_terms(k);
      if (!terms.empty()) {
        term = terms[0];
        break;
      }
    }
  }
  ASSERT_NE(term, 0u);
  std::uint64_t brute = 0;
  for (std::size_t p = 0; p < snapshot->num_peers(); ++p) {
    for (trace::ObjectKey k : snapshot->peer_objects(p)) {
      const auto terms = snapshot->object_terms(k);
      brute += std::count(terms.begin(), terms.end(), term) > 0;
    }
  }
  EXPECT_EQ(index->result_count(std::vector<trace::TermId>{term}), brute);
}

TEST_F(IndexFixture, UnknownTermYieldsZero) {
  EXPECT_EQ(index->result_count(std::vector<trace::TermId>{4'000'000'000u}),
            0u);
  EXPECT_EQ(index->result_count(std::vector<trace::TermId>{}), 0u);
}

TEST_F(IndexFixture, ConjunctionNeverExceedsSingleTerm) {
  // For any object's term pair, count(t1 AND t2) <= min(count(t1), count(t2)).
  std::size_t checked = 0;
  for (std::size_t p = 0; p < snapshot->num_peers() && checked < 20; ++p) {
    for (trace::ObjectKey k : snapshot->peer_objects(p)) {
      const auto terms = snapshot->object_terms(k);
      if (terms.size() < 2) continue;
      const std::vector<trace::TermId> both{terms[0], terms[1]};
      const auto c_both = index->result_count(both);
      const auto c1 =
          index->result_count(std::vector<trace::TermId>{terms[0]});
      const auto c2 =
          index->result_count(std::vector<trace::TermId>{terms[1]});
      EXPECT_LE(c_both, std::min(c1, c2));
      EXPECT_GE(c_both, 1u);  // the object itself matches
      ++checked;
      break;
    }
  }
  EXPECT_EQ(checked, 20u);
}

TEST_F(IndexFixture, RareQueryStatsAccounting) {
  std::vector<trace::Query> queries;
  // A guaranteed-zero query and a guaranteed-hit query.
  queries.push_back({0.0, {4'000'000'000u}});
  trace::ObjectKey some_key = snapshot->peer_objects(0).at(0);
  queries.push_back({1.0, {snapshot->object_terms(some_key).at(0)}});
  const RareQueryStats stats =
      rare_query_stats(*index, queries, /*cutoff=*/20, 1);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.zero_results, 1u);
  EXPECT_GE(stats.rare, 1u);
  EXPECT_GE(stats.mean_results, 0.0);
}

TEST_F(IndexFixture, SamplingReducesEvaluatedQueries) {
  std::vector<trace::Query> queries(10, trace::Query{0.0, {1}});
  const RareQueryStats stats = rare_query_stats(*index, queries, 20, 3);
  EXPECT_EQ(stats.queries, 4u);  // indices 0, 3, 6, 9
}

TEST(AnalyticalFloodSuccess, MatchesClosedFormCases) {
  // copies = n: certain success.
  EXPECT_DOUBLE_EQ(analytical_flood_success(10, 1, 10), 1.0);
  // No copies or empty network: certain failure.
  EXPECT_DOUBLE_EQ(analytical_flood_success(0, 100, 1'000), 0.0);
  EXPECT_DOUBLE_EQ(analytical_flood_success(5, 10, 0), 0.0);
  // One copy, reach k of n: success = k / n... on the n-1 non-source
  // peers approximation: with our formula, k draws without replacement
  // from n: 1 - (n-1 choose k)/(n choose k) = k/n.
  EXPECT_NEAR(analytical_flood_success(1, 250, 1'000), 0.25, 1e-12);
}

TEST(AnalyticalFloodSuccess, ReproducesThePapersSixtyTwoPercent) {
  // Paper Sec V: uniform 0.1% replication (40 copies in 40,000 peers)
  // with a TTL-3 flood reaching ~1,000 nodes predicts ~62%.
  const double p = analytical_flood_success(40, 970, 40'000);
  EXPECT_NEAR(p, 0.62, 0.02);
}

TEST(AnalyticalFloodSuccess, MonotoneInCopiesAndReach) {
  double prev = 0.0;
  for (std::uint64_t copies : {1ULL, 2ULL, 5ULL, 10ULL, 40ULL}) {
    const double p = analytical_flood_success(copies, 500, 10'000);
    EXPECT_GE(p, prev);
    prev = p;
  }
  prev = 0.0;
  for (std::uint64_t reach : {10ULL, 100ULL, 1'000ULL, 5'000ULL}) {
    const double p = analytical_flood_success(5, reach, 10'000);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace qcp2p::analysis
