#include "src/sim/qrp.hpp"

#include <gtest/gtest.h>

namespace qcp2p::sim {
namespace {

TEST(QrpTable, RejectsZeroSize) {
  EXPECT_THROW(QrpTable(0), std::invalid_argument);
}

TEST(QrpTable, NoFalseNegatives) {
  QrpTable table(4'096);
  for (TermId t = 100; t < 400; ++t) table.add_term(t);
  for (TermId t = 100; t < 400; ++t) {
    EXPECT_TRUE(table.may_contain(t)) << t;
  }
}

TEST(QrpTable, MostlyExcludesAbsentTerms) {
  QrpTable table(65'536);
  for (TermId t = 0; t < 200; ++t) table.add_term(t);
  std::size_t false_positives = 0;
  for (TermId t = 10'000; t < 20'000; ++t) {
    false_positives += table.may_contain(t);
  }
  // 200 of 64Ki slots set -> FPR ~ 0.3%.
  EXPECT_LT(false_positives, 100u);
}

TEST(QrpTable, ConjunctiveMatch) {
  QrpTable table(65'536);
  table.add_term(1);
  table.add_term(2);
  EXPECT_TRUE(table.may_match(std::vector<TermId>{1, 2}));
  EXPECT_FALSE(table.may_match(std::vector<TermId>{1, 999'999}));
  EXPECT_TRUE(table.may_match(std::vector<TermId>{}));  // vacuous
}

TEST(QrpTable, FillRatioTracksInsertions) {
  QrpTable table(1'024);
  EXPECT_DOUBLE_EQ(table.fill_ratio(), 0.0);
  for (TermId t = 0; t < 100; ++t) table.add_term(t);
  EXPECT_GT(table.fill_ratio(), 0.05);
  EXPECT_LT(table.fill_ratio(), 0.15);
}

class QrpNetworkTest : public ::testing::Test {
 protected:
  QrpNetworkTest() {
    overlay::TwoTierParams params;
    params.num_nodes = 600;
    params.ultrapeer_fraction = 0.2;
    util::Rng rng(5);
    topology_ = overlay::gnutella_two_tier(params, rng);

    store_ = std::make_unique<PeerStore>(600);
    // One well-known object on a handful of leaves.
    for (NodeId v = 0; v < 600; ++v) {
      if (!topology_.is_ultrapeer[v] && holders_.size() < 5 && v % 7 == 0) {
        store_->add_object(v, 900 + v, {10, 20});
        holders_.push_back(v);
      }
    }
    store_->finalize();
  }

  overlay::TwoTierTopology topology_{overlay::Graph(0), {}};
  std::unique_ptr<PeerStore> store_;
  std::vector<NodeId> holders_;
};

TEST_F(QrpNetworkTest, RejectsSizeMismatch) {
  PeerStore wrong(10);
  wrong.finalize();
  EXPECT_THROW(QrpNetwork(topology_, wrong), std::invalid_argument);
}

TEST_F(QrpNetworkTest, FindsContentThroughQrpFiltering) {
  QrpNetwork net(topology_, *store_);
  ASSERT_FALSE(holders_.empty());
  // Search from an ultrapeer with enough TTL to cover the UP mesh.
  NodeId source = 0;
  while (!topology_.is_ultrapeer[source]) ++source;
  const auto r = net.search(source, std::vector<TermId>{10, 20}, 4);
  EXPECT_FALSE(r.results.empty());
}

TEST_F(QrpNetworkTest, QrpSuppressesNonMatchingLeafDeliveries) {
  QrpNetwork net(topology_, *store_);
  NodeId source = 0;
  while (!topology_.is_ultrapeer[source]) ++source;
  const auto r = net.search(source, std::vector<TermId>{10, 20}, 4);
  // Only ~5 of ~480 leaves hold the terms: the overwhelming majority of
  // potential leaf deliveries must be suppressed.
  EXPECT_GT(r.leaf_suppressed, 10 * r.leaf_messages);
  // And the total cost is far below delivering to every leaf.
  EXPECT_LT(r.leaf_messages, 60u);
}

TEST_F(QrpNetworkTest, EmptyQueryIsNoop) {
  QrpNetwork net(topology_, *store_);
  const auto r = net.search(0, std::vector<TermId>{}, 3);
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.total_messages(), 0u);
}

TEST_F(QrpNetworkTest, QrpCannotHelpTermsNobodyIndexed) {
  QrpNetwork net(topology_, *store_);
  NodeId source = 0;
  while (!topology_.is_ultrapeer[source]) ++source;
  const auto r = net.search(source, std::vector<TermId>{123'456'789}, 5);
  EXPECT_TRUE(r.results.empty());
  // Everything gets suppressed (modulo hash false positives) -> the
  // flood still pays the full ultrapeer-tier cost for nothing: QRP saves
  // the last hop but cannot make the search succeed.
  EXPECT_GT(r.up_messages, 0u);
  EXPECT_LT(r.leaf_messages, r.leaf_suppressed / 20 + 5);
}

TEST_F(QrpNetworkTest, MeanFillIsSane) {
  QrpNetwork net(topology_, *store_);
  const double fill = net.mean_fill();
  EXPECT_GE(fill, 0.0);
  EXPECT_LT(fill, 0.01);  // tiny libraries, 64Ki slots
}

}  // namespace
}  // namespace qcp2p::sim
