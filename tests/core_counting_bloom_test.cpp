#include <gtest/gtest.h>

#include "src/core/bloom.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::core {
namespace {

TEST(CountingBloom, InsertThenContains) {
  CountingBloomFilter cbf(1'024, 4);
  util::Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 80; ++i) keys.push_back(rng());
  for (auto k : keys) cbf.insert(k);
  for (auto k : keys) EXPECT_TRUE(cbf.maybe_contains(k));
  EXPECT_EQ(cbf.size(), 80u);
}

TEST(CountingBloom, RemoveForgetsKeys) {
  CountingBloomFilter cbf(4'096, 4);
  util::Rng rng(2);
  std::vector<std::uint64_t> keep, drop;
  for (int i = 0; i < 50; ++i) keep.push_back(rng());
  for (int i = 0; i < 50; ++i) drop.push_back(rng());
  for (auto k : keep) cbf.insert(k);
  for (auto k : drop) cbf.insert(k);
  for (auto k : drop) cbf.remove(k);
  // No false negatives on kept keys after removals.
  for (auto k : keep) EXPECT_TRUE(cbf.maybe_contains(k));
  // Dropped keys are (almost all) gone.
  std::size_t lingering = 0;
  for (auto k : drop) lingering += cbf.maybe_contains(k);
  EXPECT_LT(lingering, 5u);
  EXPECT_EQ(cbf.size(), 50u);
}

TEST(CountingBloom, InsertRemoveCyclesKeepMembershipExact) {
  CountingBloomFilter cbf(2'048, 4);
  for (int cycle = 0; cycle < 50; ++cycle) {
    cbf.insert(42);
    EXPECT_TRUE(cbf.maybe_contains(42));
    cbf.remove(42);
  }
  EXPECT_FALSE(cbf.maybe_contains(42));
  EXPECT_EQ(cbf.size(), 0u);
}

TEST(CountingBloom, DuplicateInsertionsNeedMatchingRemovals) {
  CountingBloomFilter cbf(2'048, 4);
  cbf.insert(7);
  cbf.insert(7);
  cbf.remove(7);
  EXPECT_TRUE(cbf.maybe_contains(7));  // one insertion still outstanding
  cbf.remove(7);
  EXPECT_FALSE(cbf.maybe_contains(7));
}

TEST(CountingBloom, ClearResets) {
  CountingBloomFilter cbf(1'024, 3);
  cbf.insert(1);
  cbf.clear();
  EXPECT_FALSE(cbf.maybe_contains(1));
  EXPECT_EQ(cbf.size(), 0u);
  EXPECT_DOUBLE_EQ(cbf.fill_ratio(), 0.0);
}

TEST(CountingBloom, CellCountRoundedToWholeBlocks) {
  const CountingBloomFilter cbf(100, 2);
  EXPECT_EQ(cbf.cell_count() % 64, 0u);
  EXPECT_GE(cbf.cell_count(), 100u);
}

TEST(CountingBloom, ToBloomAgreesOnMembership) {
  CountingBloomFilter cbf(2'048, 5);
  util::Rng rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 120; ++i) keys.push_back(rng());
  for (auto k : keys) cbf.insert(k);
  const BloomFilter bloom = cbf.to_bloom();
  EXPECT_EQ(bloom.bit_count(), cbf.cell_count());
  for (auto k : keys) EXPECT_TRUE(bloom.maybe_contains(k));
  // Negative probes agree too (same hash family + geometry).
  util::Rng probe(4);
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t k = probe();
    ASSERT_EQ(bloom.maybe_contains(k), cbf.maybe_contains(k)) << k;
  }
}

TEST(CountingBloom, SaturatedCellsNeverDecrement) {
  CountingBloomFilter cbf(64, 1);  // tiny: force saturation
  // ~312 increments per cell saturate everything at 255.
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < 400; ++k) cbf.insert(k);
  }
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t k = 0; k < 400; ++k) cbf.remove(k);
  }
  // Saturated cells stay set: keys hashing only to saturated cells must
  // still be reported present (no false negatives, ever).
  std::size_t present = 0;
  for (std::uint64_t k = 0; k < 400; ++k) present += cbf.maybe_contains(k);
  EXPECT_GT(present, 0u);
  EXPECT_EQ(cbf.size(), 0u);  // net count still clamps correctly
}

TEST(BloomFromRaw, RoundTripsWireWords) {
  BloomFilter original(1'024, 4);
  util::Rng rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 60; ++i) keys.push_back(rng());
  for (auto k : keys) original.insert(k);

  const BloomFilter decoded = BloomFilter::from_raw(
      original.raw_words(), original.num_hashes(), original.inserted());
  EXPECT_EQ(decoded.bit_count(), original.bit_count());
  EXPECT_EQ(decoded.inserted(), original.inserted());
  for (auto k : keys) EXPECT_TRUE(decoded.maybe_contains(k));
  EXPECT_THROW(BloomFilter::from_raw({}, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qcp2p::core
