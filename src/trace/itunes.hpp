// Synthetic iTunes/Zeroconf share snapshots (substitute for the paper's
// campus trace: 239 clients, 533,768 objects, 117,068 unique, with
// Gracenote-normalized song/artist/album/genre annotations).
//
// Differences from the Gnutella generator that matter to Fig 4:
//   * names are normalized (no surface variants), so replication is much
//     higher (paper mean ~4.6 copies/object vs ~1.5 in Gnutella);
//   * annotations are structured, with per-field missing rates (8.7% of
//     songs lack a genre, 8.1% lack an album);
//   * genres mix 24 shipped values with a long tail of user-invented ones.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/content_model.hpp"
#include "src/trace/gnutella.hpp"  // ObjectKey

namespace qcp2p::trace {

struct ItunesTrack {
  ObjectKey key;            // catalog(song, edit) or personal(client, slot)
  ArtistId artist = 0;
  std::int64_t album = -1;  // -1 = missing annotation
  std::int64_t genre = -1;  // -1 = missing annotation
};

struct ItunesCrawlParams {
  std::uint32_t num_clients = 239;
  /// Mean library size (paper: 533,768 / 239 ~ 2,233 tracks).
  double mean_tracks_per_client = 2'233.0;
  double library_sigma = 0.9;
  /// Campus populations draw from the mainstream head of the catalog:
  /// only the most popular `reachable_songs` are drawn (absolute, NOT
  /// scaled with the Gnutella experiments: the iTunes trace is one fixed
  /// 239-client campus). This is what pushes mean copies/song to the
  /// paper's ~4.6.
  std::uint32_t reachable_songs = 40'000;
  double song_zipf = 1.05;
  /// Probability a track is a personal rip unknown to the catalog.
  double p_personal = 0.011;
  /// Probability the user hand-edited the title (distinct song name).
  double p_title_edit = 0.02;
  double p_missing_genre = 0.087;
  double p_missing_album = 0.081;
  /// Probability an annotated genre is user-invented rather than shipped.
  double p_invented_genre = 0.035;
  /// Shared pool of invented genre strings and its popularity skew:
  /// common inventions ("Workout") recur across clients; the tail stays
  /// singleton.
  std::uint32_t invented_genre_pool = 3'000;
  double invented_genre_zipf = 1.3;
  /// Personal rips arrive as whole-album runs of this many tracks (what
  /// keeps ~65% of observed artists/albums inside a single library).
  std::size_t album_rip_min = 3;
  std::size_t album_rip_max = 6;
  std::uint64_t seed = 1234;

  [[nodiscard]] ItunesCrawlParams scaled(double f) const;
};

class ItunesSnapshot {
 public:
  explicit ItunesSnapshot(std::vector<std::vector<ItunesTrack>> clients);

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return clients_.size();
  }
  [[nodiscard]] const std::vector<ItunesTrack>& client_tracks(
      std::size_t c) const {
    return clients_.at(c);
  }
  [[nodiscard]] std::uint64_t total_tracks() const noexcept { return total_; }

  // Fig 4 panels: distinct-client counts per annotation value.
  [[nodiscard]] std::vector<std::uint64_t> song_client_counts() const;
  [[nodiscard]] std::vector<std::uint64_t> genre_client_counts() const;
  [[nodiscard]] std::vector<std::uint64_t> album_client_counts() const;
  [[nodiscard]] std::vector<std::uint64_t> artist_client_counts() const;

  /// Fraction of tracks with a missing genre / album annotation.
  [[nodiscard]] double missing_genre_fraction() const;
  [[nodiscard]] double missing_album_fraction() const;

 private:
  template <typename Extract>
  [[nodiscard]] std::vector<std::uint64_t> client_counts(Extract extract) const;

  std::vector<std::vector<ItunesTrack>> clients_;
  std::uint64_t total_ = 0;
};

[[nodiscard]] ItunesSnapshot generate_itunes_crawl(
    const ContentModel& model, const ItunesCrawlParams& params);

}  // namespace qcp2p::trace
