#include "src/trace/content_model.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <limits>

namespace qcp2p::trace {
namespace {

// Domain tags keep the per-(domain, id) hash streams independent.
enum Domain : std::uint64_t {
  kDomainArtistOfSong = 1,
  kDomainArtistTerms = 2,
  kDomainTitleTerms = 3,
  kDomainVariant = 4,
  kDomainAlbum = 5,
  kDomainGenre = 6,
  kDomainTail = 7,
};

constexpr std::array<const char*, 40> kSyllables = {
    "ka", "lo", "mi", "ra", "ve", "zu", "ti", "na", "so", "pel",
    "dar", "mun", "ri", "ta", "gos", "le", "vin", "sha", "bo", "ne",
    "qua", "fi", "rol", "du", "ha", "jen", "ki", "mar", "ol", "pra",
    "su", "tam", "ur", "wex", "ya", "zor", "ce", "nim", "ga", "bri"};

constexpr std::array<const char*, 24> kCanonicalGenres = {
    "Rock",      "Pop",        "Alternative", "Jazz",     "Classical",
    "Hip-Hop",   "Rap",        "Country",     "Blues",    "Electronic",
    "Dance",     "Folk",       "Metal",       "Punk",     "R&B",
    "Soul",      "Reggae",     "Latin",       "Soundtrack", "World",
    "Gospel",    "New Age",    "Indie",       "Acoustic"};

constexpr std::array<const char*, 12> kNonspecificNames = {
    "01 Track.wma",   "02 Track.wma",  "03 Track.wma",   "Track 01.mp3",
    "Track 02.mp3",   "Intro.mp3",     "Untitled.mp3",   "AudioTrack 01.mp3",
    "New Song.mp3",   "Unknown.mp3",   "Outro.mp3",      "Hidden Track.mp3"};

[[nodiscard]] std::string title_case(std::string word) {
  if (!word.empty()) word[0] = static_cast<char>(std::toupper(
      static_cast<unsigned char>(word[0])));
  return word;
}

}  // namespace

ContentModel::ContentModel(const ContentModelParams& params)
    : params_(params),
      term_sampler_(params.core_lexicon_size, params.core_term_zipf),
      song_sampler_(params.catalog_songs, params.song_zipf) {}

util::Rng ContentModel::rng_for(std::uint64_t domain,
                                std::uint64_t id) const noexcept {
  return util::Rng(util::mix64(params_.seed ^ (domain << 56) ^ id));
}

TermId ContentModel::tail_term(std::uint64_t key) const noexcept {
  // Hash into the bounded shared tail lexicon above the core lexicon;
  // occasional collisions are the point — rare words do recur in real
  // traces, which keeps the term singleton fraction near the paper's 71%
  // instead of ~100%.
  const std::uint64_t h = util::mix64(key ^ (kDomainTail << 56) ^ params_.seed);
  return params_.core_lexicon_size +
         static_cast<TermId>(h % std::max<std::uint32_t>(1, params_.tail_lexicon_size));
}

std::string ContentModel::spell_term(TermId id) {
  // Bijective base-|syllables| encoding: distinct ids -> distinct words.
  std::string word;
  std::uint64_t v = id;
  do {
    word += kSyllables[v % kSyllables.size()];
    v /= kSyllables.size();
  } while (v != 0);
  return word;
}

std::optional<TermId> ContentModel::parse_term(std::string_view word) {
  if (word.empty()) return std::nullopt;
  // Dynamic program over positions: digits[i] = syllable index ending a
  // valid parse of word[0..i). The syllable code is uniquely decodable
  // (no two digit sequences concatenate to the same string), so at most
  // one full parse exists; we still search all branches for safety.
  struct Frame {
    std::size_t pos;
    std::vector<std::uint32_t> digits;
  };
  std::vector<Frame> stack{{0, {}}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.pos == word.size()) {
      // Reconstruct the id: digits are least-significant first; reject
      // non-canonical forms (a most-significant zero digit, except the
      // single-syllable id 0).
      if (frame.digits.size() > 1 && frame.digits.back() == 0) continue;
      std::uint64_t value = 0;
      for (std::size_t i = frame.digits.size(); i > 0; --i) {
        value = value * kSyllables.size() + frame.digits[i - 1];
      }
      if (value > std::numeric_limits<TermId>::max()) continue;
      return static_cast<TermId>(value);
    }
    for (std::uint32_t s = 0; s < kSyllables.size(); ++s) {
      const std::string_view syllable = kSyllables[s];
      if (word.substr(frame.pos, syllable.size()) == syllable) {
        Frame next = frame;
        next.pos += syllable.size();
        next.digits.push_back(s);
        stack.push_back(std::move(next));
      }
    }
  }
  return std::nullopt;
}

TermId ContentModel::draw_core_term(util::Rng& rng) const noexcept {
  return static_cast<TermId>(term_sampler_(rng) - 1);
}

SongId ContentModel::draw_song(util::Rng& rng) const noexcept {
  return static_cast<SongId>(song_sampler_(rng) - 1);
}

ArtistId ContentModel::song_artist(SongId song) const noexcept {
  // Artist rank tracks song rank with multiplicative log-normal-ish
  // noise: hit songs come from hit artists, obscure songs from obscure
  // artists. Both ids equal their popularity ranks.
  util::Rng rng = rng_for(kDomainArtistOfSong, song);
  const double song_frac = (static_cast<double>(song) + 0.5) /
                           static_cast<double>(params_.catalog_songs);
  const double noise =
      std::exp(params_.artist_rank_noise * 2.0 * (rng.uniform() - 0.5));
  const double artist_frac = song_frac * noise;
  const double clamped = std::min(artist_frac, 0.999999);
  return static_cast<ArtistId>(clamped * static_cast<double>(params_.artists));
}

std::vector<TermId> ContentModel::artist_terms(ArtistId artist) const {
  util::Rng rng = rng_for(kDomainArtistTerms, artist);
  const std::size_t n = 1 + rng.bounded(2);  // 1-2 name words
  std::vector<TermId> terms;
  terms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) terms.push_back(draw_core_term(rng));
  return terms;
}

std::vector<TermId> ContentModel::title_terms(SongId song) const {
  util::Rng rng = rng_for(kDomainTitleTerms, song);
  const std::size_t n = 2 + rng.bounded(4);  // 2-5 title words
  std::vector<TermId> terms;
  terms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A sliver of titles carries an idiosyncratic (tail) word; this seeds
    // the rare-term population even inside the shared catalog.
    if (rng.chance(0.04)) {
      terms.push_back(tail_term((static_cast<std::uint64_t>(song) << 8) | i));
    } else {
      terms.push_back(draw_core_term(rng));
    }
  }
  return terms;
}

std::vector<TermId> ContentModel::song_terms(SongId song) const {
  std::vector<TermId> terms = artist_terms(song_artist(song));
  std::vector<TermId> title = title_terms(song);
  terms.insert(terms.end(), title.begin(), title.end());
  return terms;
}

VariantKind ContentModel::variant_kind(std::uint32_t k) noexcept {
  // Most hand-typed name differences are structural (different words) and
  // survive sanitization; only the rare high-k variants are pure
  // case/punctuation restylings. This split reproduces Fig 2's finding
  // that sanitization merges only ~2.5% of unique names.
  if (k == 0) return VariantKind::kCanonical;
  return k <= 4 ? VariantKind::kStructural : VariantKind::kSurface;
}

std::uint32_t ContentModel::structural_signature(std::uint32_t k) noexcept {
  // Canonical and all surface variants share signature 0; each structural
  // variant has its own signature (they differ in word content).
  return variant_kind(k) == VariantKind::kStructural ? k : 0;
}

std::vector<TermId> ContentModel::variant_terms(SongId song,
                                                std::uint32_t k) const {
  std::vector<TermId> terms = song_terms(song);
  if (variant_kind(k) != VariantKind::kStructural) return terms;

  util::Rng rng = rng_for(kDomainVariant,
                          (static_cast<std::uint64_t>(song) << 16) | k);
  switch (rng.bounded(3)) {
    case 0: {  // featuring credit: append a second artist's terms
      const auto featured = static_cast<ArtistId>(
          rng.bounded(params_.artists));
      for (TermId t : artist_terms(featured)) terms.push_back(t);
      break;
    }
    case 1: {  // dropped word (common in hand-typed names)
      if (terms.size() > 2) terms.pop_back();
      break;
    }
    default: {  // typo: one word replaced by a unique misspelling
      const std::size_t i = rng.bounded(terms.size());
      terms[i] = tail_term((static_cast<std::uint64_t>(song) << 20) |
                           (static_cast<std::uint64_t>(k) << 4) | i);
      break;
    }
  }
  return terms;
}

std::string ContentModel::variant_name(SongId song, std::uint32_t k) const {
  const std::vector<TermId> artist = artist_terms(song_artist(song));
  std::vector<TermId> all = variant_terms(song, k);
  // variant_terms puts artist terms first (possibly modified); rebuild the
  // "Artist - Title" split from the canonical artist length, clamped in
  // case a structural variant dropped below it.
  const std::size_t artist_len = std::min(artist.size(), all.size());

  util::Rng rng = rng_for(kDomainVariant,
                          (static_cast<std::uint64_t>(song) << 32) |
                              (static_cast<std::uint64_t>(k) + 1));
  // Surface style: 0 = Title Case "A - B.mp3", 1 = lowercase underscores,
  // 2 = UPPER dashes, 3 = title case, no separator spaces.
  const std::uint64_t style =
      variant_kind(k) == VariantKind::kSurface ? 1 + rng.bounded(3) : 0;

  auto word = [&](TermId t, bool first_char_upper) {
    std::string w = spell_term(t);
    if (style == 2) {
      for (char& c : w)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else if (style != 1 && first_char_upper) {
      w = title_case(std::move(w));
    }
    return w;
  };

  const char* sep = style == 1 ? "_" : (style == 3 ? "-" : " ");
  const char* dash = style == 1 ? "_-_" : (style == 3 ? "-" : " - ");

  std::string name;
  for (std::size_t i = 0; i < artist_len; ++i) {
    if (i) name += sep;
    name += word(all[i], true);
  }
  if (artist_len < all.size()) name += dash;
  for (std::size_t i = artist_len; i < all.size(); ++i) {
    if (i > artist_len) name += sep;
    name += word(all[i], true);
  }
  name += style == 2 ? ".MP3" : ".mp3";
  return name;
}

std::string ContentModel::artist_name(ArtistId artist) const {
  std::string name;
  for (TermId t : artist_terms(artist)) {
    if (!name.empty()) name += ' ';
    name += title_case(spell_term(t));
  }
  return name;
}

std::string ContentModel::song_title(SongId song) const {
  std::string title;
  for (TermId t : title_terms(song)) {
    if (!title.empty()) title += ' ';
    title += title_case(spell_term(t));
  }
  return title;
}

std::uint32_t ContentModel::song_album(SongId song) const noexcept {
  // Albums are owned by the song's artist; observed artists carry only
  // one or two albums each (paper: 32,353 albums over 25,309 artists).
  util::Rng rng = rng_for(kDomainAlbum, song);
  const ArtistId artist = song_artist(song);
  const std::uint64_t slot = rng.bounded(2);
  return static_cast<std::uint32_t>(
      util::mix64((static_cast<std::uint64_t>(artist) << 8) | slot) &
      0x7FFFFFFFULL);
}

std::string ContentModel::album_name(std::uint32_t album) const {
  util::Rng rng(util::mix64(params_.seed ^ 0xA1B2C3ULL ^ album));
  std::string name;
  const std::size_t n = 1 + rng.bounded(3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) name += ' ';
    name += title_case(spell_term(draw_core_term(rng)));
  }
  return name;
}

std::uint32_t ContentModel::song_genre(SongId song, util::Rng& rng) const {
  // Most songs carry one of the shipped genres (Zipf-weighted); a tail of
  // users invent their own genre strings (paper: 1,452 genres observed,
  // 56% of them on a single peer).
  util::Rng song_rng = rng_for(kDomainGenre, song);
  if (rng.chance(0.06)) {
    // User-invented genre: unique-ish id above the canonical range.
    return params_.canonical_genres +
           static_cast<std::uint32_t>(rng.bounded(1u << 20));
  }
  // Zipf over the canonical genres, deterministic per song.
  const util::ZipfSampler genre_sampler(params_.canonical_genres, 1.2);
  return static_cast<std::uint32_t>(genre_sampler(song_rng) - 1);
}

std::string ContentModel::genre_name(std::uint32_t genre) const {
  if (genre < kCanonicalGenres.size()) return kCanonicalGenres[genre];
  return "my-" + spell_term(genre);
}

std::string ContentModel::nonspecific_name(std::uint32_t index) {
  return kNonspecificNames[index % kNonspecificNames.size()];
}

std::uint32_t ContentModel::nonspecific_pool_size() noexcept {
  return static_cast<std::uint32_t>(kNonspecificNames.size());
}

}  // namespace qcp2p::trace
