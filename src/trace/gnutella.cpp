#include "src/trace/gnutella.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/text/tokenizer.hpp"
#include "src/util/thread_pool.hpp"

namespace qcp2p::trace {
namespace {

/// Standard-normal draw (Box-Muller; one value per call is plenty here).
[[nodiscard]] double gaussian(util::Rng& rng) noexcept {
  const double u1 = 1.0 - rng.uniform();  // (0, 1]
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Counts, per unique key, the number of distinct peers that contributed
/// it, assuming keys arrive grouped by peer in increasing peer order.
class PeerCounter {
 public:
  void see(std::uint64_t key, std::uint32_t peer) {
    auto [it, fresh] = counts_.try_emplace(key, Entry{0, 0});
    Entry& e = it->second;
    if (fresh || e.last_peer != peer + 1) {  // +1: 0 means "none yet"
      ++e.count;
      e.last_peer = peer + 1;
    }
  }

  [[nodiscard]] std::vector<std::uint64_t> counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(counts_.size());
    for (const auto& [key, e] : counts_) out.push_back(e.count);
    return out;
  }

  [[nodiscard]] const auto& raw() const noexcept { return counts_; }

 private:
  struct Entry {
    std::uint32_t count;
    std::uint32_t last_peer;
  };
  std::unordered_map<std::uint64_t, Entry> counts_;
};

}  // namespace

GnutellaCrawlParams GnutellaCrawlParams::scaled(double f) const {
  if (f <= 0.0) throw std::invalid_argument("scale must be positive");
  GnutellaCrawlParams p = *this;
  p.num_peers = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::llround(num_peers * f)));
  return p;
}

CrawlSnapshot::CrawlSnapshot(const ContentModel* model,
                             std::vector<std::vector<ObjectKey>> peers,
                             double personal_tail_term)
    : model_(model),
      peers_(std::move(peers)),
      personal_tail_term_(personal_tail_term) {
  for (const auto& lib : peers_) total_ += lib.size();
}

std::string CrawlSnapshot::object_name(ObjectKey key) const {
  switch (key.cls()) {
    case ObjectClass::kCatalog:
      return model_->variant_name(key.song(), key.variant());
    case ObjectClass::kNonspecific:
      return ContentModel::nonspecific_name(key.nonspecific_index());
    case ObjectClass::kPersonal: {
      // Personal rip: idiosyncratic hand-typed name built from the same
      // term machinery so that string and id pipelines agree. A numeric
      // tag (track number / rip id) makes the full name globally unique
      // even when the words are common; numeric tokens are not terms.
      std::string name;
      for (TermId t : object_terms(key)) {
        if (!name.empty()) name += ' ';
        name += ContentModel::spell_term(t);
      }
      name += ' ';
      name += std::to_string(util::mix64(key.bits) % 10'000'000ULL);
      return name + ".mp3";
    }
  }
  throw std::logic_error("CrawlSnapshot::object_name: bad key class");
}

ObjectKey CrawlSnapshot::sanitized_identity(ObjectKey key) const noexcept {
  if (key.cls() != ObjectClass::kCatalog) return key;
  return ObjectKey::catalog(key.song(),
                            ContentModel::structural_signature(key.variant()));
}

std::vector<TermId> CrawlSnapshot::object_terms(ObjectKey key) const {
  switch (key.cls()) {
    case ObjectClass::kCatalog:
      return model_->variant_terms(key.song(), key.variant());
    case ObjectClass::kNonspecific: {
      // Stable ids for the pool tokens, one per distinct token string.
      const std::string name =
          ContentModel::nonspecific_name(key.nonspecific_index());
      std::vector<TermId> ids;
      for (const std::string& tok : text::tokenize(name)) {
        std::uint64_t h = 0x4E4F4E53ULL;  // "NONS"
        for (char c : tok) h = h * 131 + static_cast<unsigned char>(c);
        ids.push_back(model_->tail_term(h));
      }
      return ids;
    }
    case ObjectClass::kPersonal: {
      // 2-5 terms; mostly popular words (the rip's real artist/title)
      // with an occasional rare tail word (typos, idiosyncrasies).
      util::Rng rng(util::mix64(key.bits ^ 0x5045525355ULL));
      const std::size_t n = 2 + rng.bounded(4);
      std::vector<TermId> ids;
      ids.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(personal_tail_term_)) {
          ids.push_back(model_->tail_term(key.bits ^ (i * 0x9E3779B9ULL)));
        } else {
          ids.push_back(model_->draw_core_term(rng));
        }
      }
      return ids;
    }
  }
  throw std::logic_error("CrawlSnapshot::object_terms: bad key class");
}

std::vector<std::uint64_t> CrawlSnapshot::object_replica_counts() const {
  PeerCounter counter;
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    for (ObjectKey k : peers_[p]) counter.see(k.bits, p);
  }
  return counter.counts();
}

std::vector<std::uint64_t> CrawlSnapshot::sanitized_replica_counts() const {
  PeerCounter counter;
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    for (ObjectKey k : peers_[p]) counter.see(sanitized_identity(k).bits, p);
  }
  return counter.counts();
}

std::vector<std::uint64_t> CrawlSnapshot::term_peer_counts() const {
  PeerCounter counter;
  std::vector<TermId> scratch;
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    scratch.clear();
    for (ObjectKey k : peers_[p]) {
      for (TermId t : object_terms(k)) scratch.push_back(t);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (TermId t : scratch) counter.see(t, p);
  }
  return counter.counts();
}

std::vector<TermId> CrawlSnapshot::popular_file_terms(std::size_t top_k) const {
  PeerCounter counter;
  std::vector<TermId> scratch;
  for (std::uint32_t p = 0; p < peers_.size(); ++p) {
    scratch.clear();
    for (ObjectKey k : peers_[p]) {
      for (TermId t : object_terms(k)) scratch.push_back(t);
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (TermId t : scratch) counter.see(t, p);
  }
  std::vector<std::pair<std::uint32_t, TermId>> by_count;
  by_count.reserve(counter.raw().size());
  for (const auto& [key, e] : counter.raw()) {
    by_count.emplace_back(e.count, static_cast<TermId>(key));
  }
  const std::size_t k = std::min(top_k, by_count.size());
  // Ties are common at the top (the head terms sit on nearly every
  // peer); break them by global popularity rank (lower id) so the
  // result is deterministic.
  std::partial_sort(by_count.begin(),
                    by_count.begin() + static_cast<std::ptrdiff_t>(k),
                    by_count.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<TermId> top;
  top.reserve(k);
  for (std::size_t i = 0; i < k; ++i) top.push_back(by_count[i].second);
  return top;
}

CrawlSnapshot generate_gnutella_crawl(const ContentModel& model,
                                      const GnutellaCrawlParams& params,
                                      std::size_t threads) {
  std::vector<std::vector<ObjectKey>> peers(params.num_peers);

  // Lognormal parameters chosen so the *overall* mean library size
  // (including freeriders) matches mean_objects_per_peer.
  const double sharer_mean =
      params.mean_objects_per_peer / std::max(1e-9, 1.0 - params.freerider_fraction);
  const double sigma = params.library_sigma;
  const double mu = std::log(sharer_mean) - 0.5 * sigma * sigma;

  util::parallel_for_blocks(
      params.num_peers, threads, [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          util::Rng rng(util::mix64(params.seed ^ (0xBEEF0000ULL + p)));
          if (rng.chance(params.freerider_fraction)) continue;

          const double size_d = std::exp(mu + sigma * gaussian(rng));
          const auto lib_size = static_cast<std::size_t>(
              std::max(1.0, std::min(size_d, 50.0 * sharer_mean)));

          std::vector<ObjectKey>& lib = peers[p];
          lib.reserve(lib_size);
          for (std::size_t slot = 0; slot < lib_size; ++slot) {
            if (rng.chance(params.p_personal)) {
              if (rng.chance(params.p_nonspecific)) {
                lib.push_back(ObjectKey::nonspecific(static_cast<std::uint32_t>(
                    rng.bounded(ContentModel::nonspecific_pool_size()))));
              } else {
                lib.push_back(ObjectKey::personal(
                    static_cast<std::uint32_t>(p),
                    static_cast<std::uint32_t>(slot)));
              }
            } else {
              const SongId song = model.draw_song(rng);
              std::uint32_t variant = 0;
              if (rng.chance(params.p_variant)) {
                variant = 1;
                while (variant < GnutellaCrawlParams::kMaxVariant &&
                       rng.chance(params.variant_geometric)) {
                  ++variant;
                }
              }
              lib.push_back(ObjectKey::catalog(song, variant));
            }
          }
          // A client holds at most one copy of a given file.
          std::sort(lib.begin(), lib.end());
          lib.erase(std::unique(lib.begin(), lib.end()), lib.end());
        }
      });

  return CrawlSnapshot(&model, std::move(peers), params.personal_tail_term);
}

}  // namespace qcp2p::trace
