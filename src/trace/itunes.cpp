#include "src/trace/itunes.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "src/util/zipf.hpp"

namespace qcp2p::trace {
namespace {

[[nodiscard]] double gaussian(util::Rng& rng) noexcept {
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

ItunesCrawlParams ItunesCrawlParams::scaled(double f) const {
  if (f <= 0.0) throw std::invalid_argument("scale must be positive");
  ItunesCrawlParams p = *this;
  p.num_clients = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::llround(num_clients * f)));
  return p;
}

ItunesSnapshot::ItunesSnapshot(std::vector<std::vector<ItunesTrack>> clients)
    : clients_(std::move(clients)) {
  for (const auto& lib : clients_) total_ += lib.size();
}

template <typename Extract>
std::vector<std::uint64_t> ItunesSnapshot::client_counts(Extract extract) const {
  // value -> (count, last client seen + 1); tracks are grouped by client.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint32_t>> m;
  for (std::uint32_t c = 0; c < clients_.size(); ++c) {
    for (const ItunesTrack& t : clients_[c]) {
      const std::optional<std::uint64_t> v = extract(t);
      if (!v) continue;
      auto& [count, last] = m[*v];
      if (last != c + 1) {
        ++count;
        last = c + 1;
      }
    }
  }
  std::vector<std::uint64_t> out;
  out.reserve(m.size());
  for (const auto& [value, e] : m) out.push_back(e.first);
  return out;
}

std::vector<std::uint64_t> ItunesSnapshot::song_client_counts() const {
  return client_counts([](const ItunesTrack& t) {
    return std::optional<std::uint64_t>(t.key.bits);
  });
}

std::vector<std::uint64_t> ItunesSnapshot::genre_client_counts() const {
  return client_counts([](const ItunesTrack& t) {
    return t.genre < 0 ? std::nullopt
                       : std::optional<std::uint64_t>(
                             static_cast<std::uint64_t>(t.genre));
  });
}

std::vector<std::uint64_t> ItunesSnapshot::album_client_counts() const {
  return client_counts([](const ItunesTrack& t) {
    return t.album < 0 ? std::nullopt
                       : std::optional<std::uint64_t>(
                             static_cast<std::uint64_t>(t.album));
  });
}

std::vector<std::uint64_t> ItunesSnapshot::artist_client_counts() const {
  return client_counts([](const ItunesTrack& t) {
    return std::optional<std::uint64_t>(t.artist);
  });
}

double ItunesSnapshot::missing_genre_fraction() const {
  if (total_ == 0) return 0.0;
  std::uint64_t missing = 0;
  for (const auto& lib : clients_)
    for (const ItunesTrack& t : lib) missing += (t.genre < 0);
  return static_cast<double>(missing) / static_cast<double>(total_);
}

double ItunesSnapshot::missing_album_fraction() const {
  if (total_ == 0) return 0.0;
  std::uint64_t missing = 0;
  for (const auto& lib : clients_)
    for (const ItunesTrack& t : lib) missing += (t.album < 0);
  return static_cast<double>(missing) / static_cast<double>(total_);
}

ItunesSnapshot generate_itunes_crawl(const ContentModel& model,
                                     const ItunesCrawlParams& params) {
  std::vector<std::vector<ItunesTrack>> clients(params.num_clients);

  // Campus listeners draw from the mainstream head of the same universe
  // with their own popularity profile.
  const util::ZipfSampler song_sampler(
      std::min(std::max<std::uint32_t>(100, params.reachable_songs),
               model.params().catalog_songs),
      params.song_zipf);

  const double sigma = params.library_sigma;
  const double mu = std::log(params.mean_tracks_per_client) - 0.5 * sigma * sigma;

  for (std::uint32_t c = 0; c < params.num_clients; ++c) {
    util::Rng rng(util::mix64(params.seed ^ (0x17E5ULL << 32) ^ c));
    const double size_d = std::exp(mu + sigma * gaussian(rng));
    const auto lib_size = static_cast<std::size_t>(std::max(
        1.0, std::min(size_d, 40.0 * params.mean_tracks_per_client)));

    std::vector<ItunesTrack>& lib = clients[c];
    lib.reserve(lib_size);
    std::unordered_map<std::uint64_t, bool> seen;  // a library holds each track once
    seen.reserve(lib_size * 2);

    // Invented genre strings come from a shared cultural pool ("Workout",
    // "Christmas Mix", ...): drawn Zipf so the popular inventions recur
    // across clients while most stay singletons (paper: 1,452 genres,
    // 56% on a single client).
    const util::ZipfSampler invented_genre_sampler(
        params.invented_genre_pool, params.invented_genre_zipf);

    auto annotate = [&](ItunesTrack& track, SongId song,
                        std::int64_t forced_album) {
      if (!rng.chance(params.p_missing_album)) {
        track.album = forced_album >= 0
                          ? forced_album
                          : static_cast<std::int64_t>(model.song_album(song));
      }
      if (!rng.chance(params.p_missing_genre)) {
        if (rng.chance(params.p_invented_genre)) {
          track.genre = static_cast<std::int64_t>(
              model.params().canonical_genres +
              static_cast<std::uint32_t>(invented_genre_sampler(rng)));
        } else {
          util::Rng genre_rng(util::mix64(params.seed ^ 0x6E6E6EULL ^ song));
          const util::ZipfSampler genre_sampler(
              model.params().canonical_genres, 1.2);
          track.genre =
              static_cast<std::int64_t>(genre_sampler(genre_rng) - 1);
        }
      }
    };

    std::size_t attempts = 0;
    const std::size_t max_attempts = 12 * lib_size + 64;
    while (lib.size() < lib_size && attempts++ < max_attempts) {
      if (rng.chance(params.p_personal)) {
        // A personal rip arrives as an ALBUM: a run of unique tracks by
        // one (typically obscure) artist sharing one album annotation.
        // This clustering is what makes 65% of observed artists and
        // albums live in a single library.
        // Rips are of obscure artists: draw from the catalog tail, well
        // outside the mainstream head other clients also hold.
        const auto tail_begin = std::min(
            model.params().catalog_songs - 1, params.reachable_songs * 2);
        const auto song_for_artist = static_cast<SongId>(
            tail_begin +
            rng.bounded(model.params().catalog_songs - tail_begin));
        const ArtistId artist = model.song_artist(song_for_artist);
        const auto album = static_cast<std::int64_t>(
            0x40000000u |
            (util::mix64((static_cast<std::uint64_t>(c) << 24) | lib.size()) &
             0x3FFFFFFFu));
        const std::size_t burst =
            std::min(params.album_rip_min +
                         rng.bounded(params.album_rip_max -
                                     params.album_rip_min + 1),
                     lib_size - lib.size() + 1);
        for (std::size_t b = 0; b < burst; ++b) {
          ItunesTrack track;
          track.key = ObjectKey::personal(
              c, static_cast<std::uint32_t>(lib.size()));
          track.artist = artist;
          annotate(track, song_for_artist, album);
          seen.emplace(track.key.bits, true);
          lib.push_back(track);
        }
        continue;
      }
      const auto song = static_cast<SongId>(song_sampler(rng) - 1);
      std::uint32_t edit = 0;
      if (rng.chance(params.p_title_edit)) {
        // Hand-edited title: distinct song-name identity in the variant
        // byte (structural range 1..4 keeps it distinct post-sanitize).
        edit = 1 + static_cast<std::uint32_t>(rng.bounded(4));
      }
      ItunesTrack track;
      track.key = ObjectKey::catalog(song, edit);
      track.artist = model.song_artist(song);
      if (seen.count(track.key.bits)) continue;  // redraw duplicates
      seen.emplace(track.key.bits, true);
      annotate(track, song, -1);
      lib.push_back(track);
    }
    std::sort(lib.begin(), lib.end(),
              [](const ItunesTrack& a, const ItunesTrack& b) {
                return a.key.bits < b.key.bits;
              });
  }

  return ItunesSnapshot(std::move(clients));
}

}  // namespace qcp2p::trace
