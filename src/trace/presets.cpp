#include "src/trace/presets.hpp"

#include <algorithm>
#include <cmath>

namespace qcp2p::trace::presets {
namespace {

[[nodiscard]] std::uint32_t scaled(double full, double scale, double floor) {
  return static_cast<std::uint32_t>(std::max(floor, full * scale));
}

}  // namespace

ContentModelParams universe(double scale, std::uint64_t seed) {
  ContentModelParams p;
  p.core_lexicon_size = scaled(60'000, scale, 2'000);
  p.tail_lexicon_size = scaled(4'000'000, scale, 50'000);
  p.catalog_songs = scaled(2'500'000, scale, 25'000);
  p.artists = scaled(400'000, scale, 5'000);
  p.seed = seed;
  return p;
}

GnutellaCrawlParams gnutella_april2007(double scale, std::uint64_t seed) {
  GnutellaCrawlParams p = GnutellaCrawlParams{}.scaled(scale);
  p.seed = seed;
  return p;
}

GnutellaCrawlParams gnutella_october2006(double scale, std::uint64_t seed) {
  GnutellaCrawlParams p;
  // 8.6M objects at ~345 objects/peer -> ~24.9k peers (the paper's OCR
  // drops the exact count); the Oct'06 network was smaller but libraries
  // slightly larger (12.1M/37.6k vs 8.6M/~25k).
  p.num_peers = 24'900;
  p.mean_objects_per_peer = 345.0;
  p.seed = seed;
  return p.scaled(scale);
}

ItunesCrawlParams itunes_campus(std::uint64_t seed) {
  ItunesCrawlParams p;
  p.seed = seed;
  return p;
}

QueryTraceParams phex_week(double scale, std::uint64_t seed) {
  QueryTraceParams p = QueryTraceParams{}.scaled(scale);
  p.seed = seed;
  return p;
}

}  // namespace qcp2p::trace::presets
