// Synthetic Gnutella query workload (substitute for the paper's one-week
// Phex capture of ~2.5M queries, April 2007).
//
// The generator is built to reproduce the three temporal properties the
// paper measures, each independently tunable:
//
//  1. A *persistent popular* term pool whose composition is fixed for the
//     whole week -> the popular-query-term set is stable over time
//     (Fig 6: Jaccard > 0.9 after warm-up).
//  2. *Transiently popular* terms: Poisson flash-crowd events that give a
//     previously-rare term an elevated rate for a bounded duration
//     (Fig 5: low mean, high variance per evaluation interval).
//  3. A controlled *mismatch* with the file-annotation vocabulary: only a
//     `popular_file_overlap` fraction of the persistent pool maps onto
//     terms that are popular among files; everything else maps to terms
//     that are rare in file annotations or absent from them entirely
//     (Fig 7: Jaccard(Q*_t, F*) < 0.2, ~0.15 mean).
//
// Query terms live in the SAME TermId space as ContentModel file terms so
// that Jaccard comparisons are meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "src/trace/content_model.hpp"

namespace qcp2p::trace {

struct Query {
  double time_s = 0.0;
  std::vector<TermId> terms;  // 1..4 terms, deduplicated
};

/// Ground truth of one flash-crowd event (used by tests to validate the
/// transient detector).
struct TransientEvent {
  TermId term = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct QueryTraceParams {
  std::uint64_t num_queries = 2'500'000;
  double duration_hours = 168.0;  // one week

  // Persistent popular pool.
  std::uint32_t persistent_pool_size = 400;
  double persistent_zipf = 0.9;
  /// Probability a query term is drawn from the persistent pool.
  double p_persistent = 0.45;
  /// Fraction of the persistent pool that maps onto popular file terms.
  /// Tuned so Jaccard(Q*_t, F*) lands near the paper's ~15% mean.
  double popular_file_overlap = 0.35;
  /// Rank range of file terms considered "popular" for the overlap
  /// mapping (comparable to the top_k used for F* in the analysis).
  std::uint32_t popular_file_ranks = 60;
  /// Probability a non-overlapping pool term is still a (rare) file term
  /// rather than a query-only term.
  double p_share_file_term = 0.35;

  // Transient flash crowds.
  double transient_events_per_hour = 0.35;
  double transient_duration_hours_mean = 4.0;
  /// Probability a query term refers to some active event (split across
  /// active events).
  double transient_term_share = 0.02;

  // Background long tail (kept flat so the stable persistent pool, not
  // background noise, owns the head of the popularity distribution).
  std::uint32_t background_lexicon = 150'000;
  double background_zipf = 0.75;

  /// Diurnal modulation amplitude of the arrival rate (0 = flat).
  double diurnal_amplitude = 0.45;

  // Browse sessions: with this probability a query spawns a short
  // session repeating the SAME term set seconds apart — a user paging
  // through ranked results. This is the repetition that score-aware
  // result caching amortizes (exp_serving --browse). 0 disables the
  // feature AND its rng draws, so pre-existing traces are
  // byte-identical.
  double browse_session_prob = 0.0;
  /// Mean repeats per session (drawn uniform in 1..2*mean).
  std::uint32_t browse_session_length = 6;

  std::uint64_t seed = 7;

  [[nodiscard]] QueryTraceParams scaled(double f) const;
};

class QueryTrace {
 public:
  QueryTrace(std::vector<Query> queries, std::vector<TransientEvent> events,
             std::vector<TermId> persistent_terms, double duration_s);

  [[nodiscard]] const std::vector<Query>& queries() const noexcept {
    return queries_;
  }
  [[nodiscard]] double duration_s() const noexcept { return duration_s_; }

  /// Ground-truth flash-crowd events (for validation, not analysis).
  [[nodiscard]] const std::vector<TransientEvent>& events() const noexcept {
    return events_;
  }
  /// Ground-truth persistent pool term ids, most popular first.
  [[nodiscard]] const std::vector<TermId>& persistent_terms() const noexcept {
    return persistent_terms_;
  }

 private:
  std::vector<Query> queries_;
  std::vector<TransientEvent> events_;
  std::vector<TermId> persistent_terms_;
  double duration_s_ = 0.0;
};

[[nodiscard]] QueryTrace generate_query_trace(const ContentModel& model,
                                              const QueryTraceParams& params);

/// Renders a query the way a user typed it into the search box
/// (space-separated spelled terms) — what the Phex capture recorded.
[[nodiscard]] std::string spell_query(const Query& query);

/// Parses a raw query string back into sorted unique term ids using the
/// Gnutella tokenizer + the syllable decoder. Tokens that are not valid
/// term spellings (numbers, free-form noise) are dropped, exactly as a
/// servent's keyword matcher would never match them against any index.
[[nodiscard]] std::vector<TermId> parse_query_string(std::string_view text);

}  // namespace qcp2p::trace
