// Synthetic Gnutella file-crawl snapshots (substitute for the paper's
// Cruiser-style Apr'07 crawl: 37,572 peers, ~12.1M objects, 8.1M unique).
//
// A snapshot is a per-peer list of compact 64-bit object keys; names and
// term lists are realized lazily from the ContentModel. Three object
// classes exist:
//   * catalog   — a (song, name-variant) pair from the shared catalog;
//                 replicated across peers by Zipf song popularity.
//   * personal  — a peer's own rip with an idiosyncratic name; globally
//                 unique by construction (the paper's 70% singleton bulk).
//   * nonspec   — a non-specific name from a tiny pool ("01 Track.wma");
//                 collides across many peers without being a true replica.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/content_model.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::trace {

/// Compact object identity. Bit layout: [63:62] class, rest class-specific.
enum class ObjectClass : std::uint8_t { kCatalog = 1, kPersonal = 2, kNonspecific = 3 };

struct ObjectKey {
  std::uint64_t bits = 0;

  [[nodiscard]] static ObjectKey catalog(SongId song, std::uint32_t variant) noexcept {
    return {(1ULL << 62) | (static_cast<std::uint64_t>(song) << 8) |
            (variant & 0xFFu)};
  }
  [[nodiscard]] static ObjectKey personal(std::uint32_t peer,
                                          std::uint32_t slot) noexcept {
    return {(2ULL << 62) | (static_cast<std::uint64_t>(peer) << 24) | slot};
  }
  [[nodiscard]] static ObjectKey nonspecific(std::uint32_t index) noexcept {
    return {(3ULL << 62) | index};
  }

  [[nodiscard]] ObjectClass cls() const noexcept {
    return static_cast<ObjectClass>(bits >> 62);
  }
  [[nodiscard]] SongId song() const noexcept {
    return static_cast<SongId>((bits >> 8) & 0xFFFFFFFFULL);
  }
  [[nodiscard]] std::uint32_t variant() const noexcept {
    return static_cast<std::uint32_t>(bits & 0xFFu);
  }
  [[nodiscard]] std::uint32_t peer() const noexcept {
    return static_cast<std::uint32_t>((bits >> 24) & 0xFFFFFFFFULL);
  }
  [[nodiscard]] std::uint32_t slot() const noexcept {
    return static_cast<std::uint32_t>(bits & 0xFFFFFFULL);
  }
  [[nodiscard]] std::uint32_t nonspecific_index() const noexcept {
    return static_cast<std::uint32_t>(bits & 0xFFFFFFFFULL);
  }

  friend bool operator==(ObjectKey a, ObjectKey b) noexcept {
    return a.bits == b.bits;
  }
  friend bool operator<(ObjectKey a, ObjectKey b) noexcept {
    return a.bits < b.bits;
  }
};

struct ObjectKeyHash {
  [[nodiscard]] std::size_t operator()(ObjectKey k) const noexcept {
    return static_cast<std::size_t>(util::mix64(k.bits));
  }
};

struct GnutellaCrawlParams {
  std::uint32_t num_peers = 37'572;
  /// Mean shared-library size (paper: 12.1M objects / 37,572 peers ~ 322).
  double mean_objects_per_peer = 322.0;
  /// Lognormal sigma of library sizes (few huge sharers, many small).
  double library_sigma = 1.1;
  /// Fraction of crawled peers sharing nothing.
  double freerider_fraction = 0.12;
  /// Probability an object is a personal rip (globally unique name).
  double p_personal = 0.14;
  /// Among personal rips, probability of a non-specific pool name.
  double p_nonspecific = 0.004;
  /// Among catalog copies, probability the name is a variant (k > 0).
  double p_variant = 0.22;
  /// Geometric parameter for variant index k in 1..kMaxVariant.
  double variant_geometric = 0.50;
  /// Per-term probability that a personal rip's term is a rare tail word
  /// rather than a popular core word.
  double personal_tail_term = 0.25;
  std::uint64_t seed = 42;

  static constexpr std::uint32_t kMaxVariant = 12;

  /// Scales peers (and, via ContentModelParams, the catalog) by f,
  /// keeping per-peer library sizes fixed.
  [[nodiscard]] GnutellaCrawlParams scaled(double f) const;
};

/// The result of a crawl: who shares what.
class CrawlSnapshot {
 public:
  /// @param personal_tail_term  must match the generating parameter so
  ///        lazily-realized names/terms reproduce the generated trace.
  CrawlSnapshot(const ContentModel* model,
                std::vector<std::vector<ObjectKey>> peers,
                double personal_tail_term = 0.20);

  [[nodiscard]] std::size_t num_peers() const noexcept { return peers_.size(); }
  [[nodiscard]] const std::vector<ObjectKey>& peer_objects(std::size_t p) const {
    return peers_.at(p);
  }
  [[nodiscard]] std::uint64_t total_objects() const noexcept { return total_; }
  [[nodiscard]] const ContentModel& model() const noexcept { return *model_; }
  [[nodiscard]] double personal_tail_term() const noexcept {
    return personal_tail_term_;
  }

  /// File name of an object as the crawler would have received it.
  [[nodiscard]] std::string object_name(ObjectKey key) const;

  /// Identity after text::sanitize_filename (surface variants merge).
  [[nodiscard]] ObjectKey sanitized_identity(ObjectKey key) const noexcept;

  /// Annotation terms of an object (tokenized name, id space).
  [[nodiscard]] std::vector<TermId> object_terms(ObjectKey key) const;

  // --- replica statistics (id-space fast path; the string pipeline in
  // --- the benches must agree with these, which tests verify) -----------

  /// Replica count per unique object (peers holding it).
  [[nodiscard]] std::vector<std::uint64_t> object_replica_counts() const;

  /// Replica counts after sanitization merging.
  [[nodiscard]] std::vector<std::uint64_t> sanitized_replica_counts() const;

  /// Peer count per unique term (Fig 3): how many peers hold >= 1 object
  /// containing the term.
  [[nodiscard]] std::vector<std::uint64_t> term_peer_counts() const;

  /// Popular file terms: the top_k terms by peer count (Fig 7's F*).
  [[nodiscard]] std::vector<TermId> popular_file_terms(std::size_t top_k) const;

 private:
  const ContentModel* model_;
  std::vector<std::vector<ObjectKey>> peers_;
  std::uint64_t total_ = 0;
  double personal_tail_term_ = 0.20;
};

/// Generates a crawl snapshot; deterministic in params.seed.
/// @param threads  worker threads for peer-library generation (0 = auto).
[[nodiscard]] CrawlSnapshot generate_gnutella_crawl(
    const ContentModel& model, const GnutellaCrawlParams& params,
    std::size_t threads = 0);

}  // namespace qcp2p::trace
