#include "src/trace/query_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/text/tokenizer.hpp"
#include "src/util/zipf.hpp"

namespace qcp2p::trace {
namespace {

constexpr double kSecondsPerHour = 3600.0;

/// Diurnal arrival-rate profile, mean 1.0 over a day.
[[nodiscard]] double diurnal_rate(double t_s, double amplitude) noexcept {
  const double day_frac = std::fmod(t_s / (24.0 * kSecondsPerHour), 1.0);
  return 1.0 + amplitude * std::sin(6.283185307179586 * (day_frac - 0.3));
}

}  // namespace

QueryTraceParams QueryTraceParams::scaled(double f) const {
  if (f <= 0.0) throw std::invalid_argument("scale must be positive");
  QueryTraceParams p = *this;
  p.num_queries = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(
             static_cast<double>(num_queries) * f)));
  return p;
}

QueryTrace::QueryTrace(std::vector<Query> queries,
                       std::vector<TransientEvent> events,
                       std::vector<TermId> persistent_terms, double duration_s)
    : queries_(std::move(queries)),
      events_(std::move(events)),
      persistent_terms_(std::move(persistent_terms)),
      duration_s_(duration_s) {}

QueryTrace generate_query_trace(const ContentModel& model,
                                const QueryTraceParams& params) {
  util::Rng rng(util::mix64(params.seed ^ 0x517E17ULL));
  const double duration_s = params.duration_hours * kSecondsPerHour;
  const std::uint32_t core = model.core_lexicon_size();

  // ---- build the persistent pool's term-id mapping --------------------
  // Pool index j (0 = most queried) maps to a concrete file-term-space id.
  std::vector<TermId> pool(params.persistent_pool_size);
  {
    // Distinct popular-file ranks for the overlapping fraction.
    std::vector<std::uint32_t> ranks(params.popular_file_ranks);
    for (std::uint32_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
    for (std::size_t i = ranks.size(); i > 1; --i) {
      std::swap(ranks[i - 1], ranks[rng.bounded(i)]);
    }
    std::size_t next_rank = 0;
    for (std::uint32_t j = 0; j < pool.size(); ++j) {
      if (rng.chance(params.popular_file_overlap) && next_rank < ranks.size()) {
        pool[j] = ranks[next_rank++];  // a genuinely popular file term
      } else if (rng.chance(params.p_share_file_term) &&
                 core > params.popular_file_ranks) {
        // Shared with the file vocabulary but at an unpopular rank: the
        // heart of the paper's mismatch observation.
        pool[j] = params.popular_file_ranks +
                  static_cast<TermId>(
                      rng.bounded(core - params.popular_file_ranks));
      } else {
        pool[j] = model.tail_term(0x5155455259ULL ^ j);  // query-only term
      }
    }
  }
  const util::ZipfSampler pool_sampler(pool.size(), params.persistent_zipf);

  // ---- schedule flash-crowd events -------------------------------------
  std::vector<TransientEvent> events;
  {
    double t = 0.0;
    const double mean_gap_s =
        kSecondsPerHour / std::max(1e-9, params.transient_events_per_hour);
    std::uint32_t idx = 0;
    for (;;) {
      t += -std::log(1.0 - rng.uniform()) * mean_gap_s;  // exponential gap
      if (t >= duration_s) break;
      const double dur =
          -std::log(1.0 - rng.uniform()) *
          params.transient_duration_hours_mean * kSecondsPerHour;
      TransientEvent ev;
      // Breaking-news terms are mostly new to the system; some are
      // existing rare file terms that suddenly become hot.
      ev.term = rng.chance(0.7)
                    ? model.tail_term(0xF1A5ULL ^ (static_cast<std::uint64_t>(idx) << 8))
                    : static_cast<TermId>(
                          params.popular_file_ranks +
                          rng.bounded(core - params.popular_file_ranks));
      ev.start_s = t;
      ev.end_s = std::min(duration_s, t + dur);
      events.push_back(ev);
      ++idx;
    }
  }

  // ---- background lexicon mapping ---------------------------------------
  const util::ZipfSampler background_sampler(params.background_lexicon,
                                             params.background_zipf);
  auto background_term = [&](std::uint64_t rank) -> TermId {
    // Deterministic per-rank mapping; popularity ranks are shuffled
    // relative to file-term ranks, so even shared terms mismatch.
    const std::uint64_t h = util::mix64(0xBAC6ULL ^ rank ^ params.seed);
    if ((h & 0xFF) < 90) {  // ~35%: a file term at an arbitrary rank
      return static_cast<TermId>((h >> 8) % core);
    }
    return model.tail_term(0xB67ULL ^ rank);
  };

  // ---- emit queries -----------------------------------------------------
  std::vector<Query> queries;
  queries.reserve(params.num_queries);
  std::size_t next_event = 0;       // first event with end_s > now
  std::vector<std::size_t> active;  // indices of active events

  // Browse-session follow-ups count against num_queries, so the trace
  // size (and any qps rescaling built on it) is mode-independent.
  while (queries.size() < params.num_queries) {
    // Thinning: draw candidate times until one passes the diurnal filter.
    double t;
    do {
      t = rng.uniform() * duration_s;
    } while (rng.uniform() * (1.0 + params.diurnal_amplitude) >
             diurnal_rate(t, params.diurnal_amplitude));

    Query query;
    query.time_s = t;
    const std::size_t nterms = 1 + std::min<std::uint64_t>(3, rng.bounded(4));

    // Active events at time t (events list is start-sorted).
    active.clear();
    for (std::size_t e = 0; e < events.size(); ++e) {
      if (events[e].start_s > t) break;
      if (events[e].end_s > t) active.push_back(e);
    }
    (void)next_event;

    for (std::size_t i = 0; i < nterms; ++i) {
      TermId term;
      if (!active.empty() && rng.chance(params.transient_term_share)) {
        term = events[active[rng.bounded(active.size())]].term;
      } else if (rng.chance(params.p_persistent)) {
        term = pool[pool_sampler(rng) - 1];
      } else {
        term = background_term(background_sampler(rng) - 1);
      }
      query.terms.push_back(term);
    }
    std::sort(query.terms.begin(), query.terms.end());
    query.terms.erase(std::unique(query.terms.begin(), query.terms.end()),
                      query.terms.end());
    queries.push_back(query);

    // Short-circuit keeps prob == 0 traces draw-for-draw identical.
    if (params.browse_session_prob > 0.0 &&
        rng.chance(params.browse_session_prob)) {
      const std::size_t len =
          1 + rng.bounded(std::max<std::uint64_t>(
                  1, 2ULL * params.browse_session_length));
      double ts = t;
      for (std::size_t s = 0;
           s < len && queries.size() < params.num_queries; ++s) {
        // Repeats land seconds-to-half-a-minute apart: inside any
        // sane cache max_age_s, far below the maintenance window.
        ts += 2.0 + 28.0 * rng.uniform();
        if (ts >= duration_s) break;
        Query follow = query;
        follow.time_s = ts;
        queries.push_back(std::move(follow));
      }
    }
  }

  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) { return a.time_s < b.time_s; });

  return QueryTrace(std::move(queries), std::move(events), std::move(pool),
                    duration_s);
}

std::string spell_query(const Query& query) {
  std::string out;
  for (TermId t : query.terms) {
    if (!out.empty()) out += ' ';
    out += ContentModel::spell_term(t);
  }
  return out;
}

std::vector<TermId> parse_query_string(std::string_view text) {
  std::vector<TermId> terms;
  for (const std::string& token : text::tokenize(text)) {
    if (const auto id = ContentModel::parse_term(token)) {
      terms.push_back(*id);
    }
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

}  // namespace qcp2p::trace
