#include "src/trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qcp2p::trace {
namespace {

[[nodiscard]] bool skippable(const std::string& line) noexcept {
  return line.empty() || line[0] == '#';
}

}  // namespace

void write_query_trace(std::ostream& os, const QueryTrace& trace) {
  os.precision(12);  // second-resolution times up to a week round-trip
  os << "qtrace v1\n";
  os << "# duration_s " << trace.duration_s() << "\n";
  for (const Query& q : trace.queries()) {
    os << q.time_s;
    for (TermId t : q.terms) os << ' ' << t;
    os << '\n';
  }
}

QueryTrace read_query_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("qtrace v1", 0) != 0) {
    throw std::runtime_error("read_query_trace: missing 'qtrace v1' header");
  }
  double duration_s = 0.0;
  std::vector<Query> queries;
  while (std::getline(is, line)) {
    if (line.rfind("# duration_s ", 0) == 0) {
      duration_s = std::stod(line.substr(13));
      continue;
    }
    if (skippable(line)) continue;
    std::istringstream ss(line);
    Query q;
    if (!(ss >> q.time_s)) {
      throw std::runtime_error("read_query_trace: bad query line: " + line);
    }
    TermId t;
    while (ss >> t) q.terms.push_back(t);
    if (q.terms.empty()) {
      throw std::runtime_error("read_query_trace: query without terms: " + line);
    }
    queries.push_back(std::move(q));
  }
  for (const Query& q : queries) {
    if (duration_s < q.time_s) duration_s = q.time_s;
  }
  return QueryTrace(std::move(queries), {}, {}, duration_s);
}

void write_crawl(std::ostream& os, const CrawlSnapshot& snapshot) {
  os << "crawl v1 " << snapshot.num_peers() << "\n";
  os << std::hex;
  for (std::size_t p = 0; p < snapshot.num_peers(); ++p) {
    os << p;
    for (ObjectKey k : snapshot.peer_objects(p)) os << ' ' << k.bits;
    os << '\n';
  }
  os << std::dec;
}

CrawlSnapshot read_crawl(std::istream& is, const ContentModel& model) {
  std::string line;
  if (!std::getline(is, line) || line.rfind("crawl v1 ", 0) != 0) {
    throw std::runtime_error("read_crawl: missing 'crawl v1' header");
  }
  const std::size_t num_peers = std::stoull(line.substr(9));
  std::vector<std::vector<ObjectKey>> peers(num_peers);
  while (std::getline(is, line)) {
    if (skippable(line)) continue;
    std::istringstream ss(line);
    ss >> std::hex;
    std::uint64_t peer_id;
    if (!(ss >> peer_id)) {
      throw std::runtime_error("read_crawl: bad peer line: " + line);
    }
    if (peer_id >= num_peers) {
      throw std::runtime_error("read_crawl: peer id out of range");
    }
    std::uint64_t bits;
    while (ss >> bits) peers[peer_id].push_back(ObjectKey{bits});
  }
  return CrawlSnapshot(&model, std::move(peers));
}

void save_query_trace(const std::string& path, const QueryTrace& trace) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_query_trace: cannot open " + path);
  write_query_trace(os, trace);
}

QueryTrace load_query_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_query_trace: cannot open " + path);
  return read_query_trace(is);
}

void save_crawl(const std::string& path, const CrawlSnapshot& snapshot) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_crawl: cannot open " + path);
  write_crawl(os, snapshot);
}

CrawlSnapshot load_crawl(const std::string& path, const ContentModel& model) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_crawl: cannot open " + path);
  return read_crawl(is, model);
}

}  // namespace qcp2p::trace
