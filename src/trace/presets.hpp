// Named, documented parameter presets for the paper's datasets.
//
// Each preset reproduces one of the traces described in Section II at a
// chosen scale; the returned parameter structs can be tweaked further
// before generating. Calibration rationale lives in DESIGN.md section 7
// and the residuals in EXPERIMENTS.md.
#pragma once

#include "src/trace/content_model.hpp"
#include "src/trace/gnutella.hpp"
#include "src/trace/itunes.hpp"
#include "src/trace/query_trace.hpp"

namespace qcp2p::trace::presets {

/// The shared content universe, scaled in lockstep with the crawls so
/// per-object replica counts match the paper's at every scale.
[[nodiscard]] ContentModelParams universe(double scale = 1.0,
                                          std::uint64_t seed = 42);

/// April 2007 Gnutella crawl: 37,572 peers, ~12.1M objects, 8.1M unique,
/// 70.5% singleton, 99.5% on <= 37 peers (Figs 1-3, T1).
[[nodiscard]] GnutellaCrawlParams gnutella_april2007(double scale = 1.0,
                                                     std::uint64_t seed = 42);

/// October 2006 Gnutella crawl: ~8.6M objects, 7.2M unique. The paper
/// does not state this crawl's peer count precisely (the reproduction
/// uses ~25k peers, consistent with 8.6M objects at the Apr'07 per-peer
/// library sizes); the paper reports "similar results" to Apr'07, which
/// this preset reproduces by construction.
[[nodiscard]] GnutellaCrawlParams gnutella_october2006(double scale = 1.0,
                                                       std::uint64_t seed = 1006);

/// Campus iTunes/Zeroconf trace: 239 clients, 533,768 tracks, 117,068
/// unique (Fig 4). Fixed-size — does not scale with the Gnutella crawls.
[[nodiscard]] ItunesCrawlParams itunes_campus(std::uint64_t seed = 1234);

/// One-week Phex query capture, ~2.5M queries (Figs 5-7).
[[nodiscard]] QueryTraceParams phex_week(double scale = 1.0,
                                         std::uint64_t seed = 7);

}  // namespace qcp2p::trace::presets
