// Generative model of a P2P music-content universe.
//
// The paper's analyses consumed two proprietary crawls (Gnutella Apr'07
// and a campus iTunes trace). Those traces are unavailable, so this model
// synthesizes an equivalent universe whose *marginals* match everything
// the paper reports (DESIGN.md section 7): Zipf song/term popularity, a
// dominant singleton tail, filename variants that sanitization partially
// merges, non-specific names ("01 Track.wma") that collide across peers,
// and iTunes-style structured annotations.
//
// Everything is deterministic in (seed, id): a song's terms, its artist
// and each name variant are derived by hashing, so snapshots can store
// compact 64-bit object keys and realize names lazily.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/text/vocabulary.hpp"
#include "src/util/rng.hpp"
#include "src/util/zipf.hpp"

namespace qcp2p::trace {

using text::TermId;
using SongId = std::uint32_t;
using ArtistId = std::uint32_t;

/// How a name variant differs from the canonical name. Surface variants
/// (case/punctuation) are merged by text::sanitize_filename; structural
/// variants (featuring credits, dropped words, typos) are not.
enum class VariantKind : std::uint8_t {
  kCanonical,
  kSurface,     // same words, different case/punctuation
  kStructural,  // different word content
};

struct ContentModelParams {
  /// Number of "core" content terms (artist name parts + common title
  /// words). Term ids 0..core_lexicon_size-1; id == popularity rank.
  std::uint32_t core_lexicon_size = 60'000;
  /// Zipf exponent of core-term popularity when drawing song titles.
  double core_term_zipf = 1.05;
  /// Size of the shared "tail lexicon" of rare words (typos, slang,
  /// foreign words). Tail term ids land in
  /// [core_lexicon_size, core_lexicon_size + tail_lexicon_size); the
  /// paper's 1.22M unique terms with 71% singletons need a bounded tail
  /// that a few objects occasionally share.
  std::uint32_t tail_lexicon_size = 4'000'000;
  /// Number of songs in the globally shared catalog.
  std::uint32_t catalog_songs = 2'500'000;
  /// Zipf exponent of song popularity (which songs peers replicate).
  double song_zipf = 0.82;
  /// Number of distinct artists in the universe. Far larger than the
  /// number *observed* in any crawl (the paper saw 25,309 artists across
  /// 239 iTunes clients, 65% of them in a single library — which needs a
  /// deep pool of obscure artists).
  std::uint32_t artists = 400'000;
  /// Log-scale noise of the song-rank -> artist-rank correlation:
  /// popular songs are by popular artists, obscure songs by obscure
  /// artists (what makes 65% of observed artists singletons).
  double artist_rank_noise = 1.0;
  /// Number of canonical iTunes genres (shipped set) before the
  /// user-invented tail.
  std::uint32_t canonical_genres = 24;
  std::uint64_t seed = 42;
};

/// Deterministic content universe; thread-safe for concurrent reads.
class ContentModel {
 public:
  explicit ContentModel(const ContentModelParams& params);

  [[nodiscard]] const ContentModelParams& params() const noexcept {
    return params_;
  }

  // --- term space -------------------------------------------------------
  // Term ids partition into [0, core) core terms and [core, ...) "tail"
  // terms (typos, idiosyncratic words). Tail ids are derived by hashing,
  // so they are effectively unique per use.

  [[nodiscard]] std::uint32_t core_lexicon_size() const noexcept {
    return params_.core_lexicon_size;
  }
  [[nodiscard]] bool is_core_term(TermId t) const noexcept {
    return t < params_.core_lexicon_size;
  }
  /// Derives a pseudo-unique tail term id from an arbitrary 64-bit key.
  [[nodiscard]] TermId tail_term(std::uint64_t key) const noexcept;

  /// Bijective pronounceable spelling of a term id ("zarilo", "ketmu").
  [[nodiscard]] static std::string spell_term(TermId id);

  /// Inverse of spell_term: decodes a spelled word back to its term id.
  /// Returns nullopt for strings that are not canonical spellings (the
  /// syllable code is uniquely decodable, verified by tests). This is
  /// what lets query traces round-trip through real query STRINGS and
  /// the Gnutella tokenizer.
  [[nodiscard]] static std::optional<TermId> parse_term(std::string_view word);

  /// Draws a core term by Zipf popularity (id == rank - 1).
  [[nodiscard]] TermId draw_core_term(util::Rng& rng) const noexcept;

  // --- catalog ----------------------------------------------------------

  /// Draws a shared-catalog song by Zipf popularity (id == rank - 1).
  [[nodiscard]] SongId draw_song(util::Rng& rng) const noexcept;

  /// Artist performing a song (deterministic, popularity-weighted).
  [[nodiscard]] ArtistId song_artist(SongId song) const noexcept;

  /// Terms of an artist's name (1-2 core terms).
  [[nodiscard]] std::vector<TermId> artist_terms(ArtistId artist) const;

  /// Title terms of a song (2-5 core terms, one possibly tail).
  [[nodiscard]] std::vector<TermId> title_terms(SongId song) const;

  /// All annotation terms of the canonical name (artist + title).
  [[nodiscard]] std::vector<TermId> song_terms(SongId song) const;

  // --- name variants ----------------------------------------------------

  /// Kind of variant `k` of a song; k == 0 is canonical, k in 1..4 are
  /// structural variants (different words), k >= 5 are surface variants
  /// (case/punctuation only).
  [[nodiscard]] static VariantKind variant_kind(std::uint32_t k) noexcept;

  /// Structural signature: variants with equal signatures sanitize to the
  /// same string. Surface variants share the canonical signature 0.
  [[nodiscard]] static std::uint32_t structural_signature(std::uint32_t k) noexcept;

  /// Term ids of variant k (structural variants add/drop/typo terms).
  [[nodiscard]] std::vector<TermId> variant_terms(SongId song,
                                                  std::uint32_t k) const;

  /// Full Gnutella file name of variant k, e.g.
  /// "Zarilo Ket - Muvalo Rin.mp3" / "zarilo_ket-muvalo_rin.MP3".
  [[nodiscard]] std::string variant_name(SongId song, std::uint32_t k) const;

  // --- iTunes-style annotations ------------------------------------------

  [[nodiscard]] std::string artist_name(ArtistId artist) const;
  [[nodiscard]] std::string song_title(SongId song) const;
  /// Album of a song; albums are per-artist, deterministic.
  [[nodiscard]] std::uint32_t song_album(SongId song) const noexcept;
  [[nodiscard]] std::string album_name(std::uint32_t album) const;
  /// Genre id of a song; < canonical_genres are shipped genres, larger
  /// ids are user-invented.
  [[nodiscard]] std::uint32_t song_genre(SongId song, util::Rng& rng) const;
  [[nodiscard]] std::string genre_name(std::uint32_t genre) const;

  /// Small pool of non-specific names ("01 Track.wma", "Intro.mp3", ...)
  /// that unrelated rips collide on.
  [[nodiscard]] static std::string nonspecific_name(std::uint32_t index);
  [[nodiscard]] static std::uint32_t nonspecific_pool_size() noexcept;

 private:
  [[nodiscard]] util::Rng rng_for(std::uint64_t domain,
                                  std::uint64_t id) const noexcept;

  ContentModelParams params_;
  util::ZipfSampler term_sampler_;
  util::ZipfSampler song_sampler_;
};

}  // namespace qcp2p::trace
