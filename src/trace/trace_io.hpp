// Plain-text (de)serialization of query traces and crawl snapshots, so
// that expensive generated traces can be cached on disk and re-analyzed,
// and so external traces in the same simple format can be imported.
//
// Formats (line-oriented, '#' comments allowed):
//   query trace:  "qtrace v1" header, then one query per line:
//                 <time_s> <term_id> [<term_id> ...]
//   crawl:        "crawl v1 <num_peers>" header, then one peer per line:
//                 <peer_id> <object_key_hex> [<object_key_hex> ...]
#pragma once

#include <iosfwd>
#include <string>

#include "src/trace/gnutella.hpp"
#include "src/trace/query_trace.hpp"

namespace qcp2p::trace {

void write_query_trace(std::ostream& os, const QueryTrace& trace);
/// Throws std::runtime_error on malformed input. Ground-truth event /
/// persistent-pool metadata is not serialized (analysis never uses it).
[[nodiscard]] QueryTrace read_query_trace(std::istream& is);

void write_crawl(std::ostream& os, const CrawlSnapshot& snapshot);
/// @param model must outlive the snapshot and match the generating model.
[[nodiscard]] CrawlSnapshot read_crawl(std::istream& is,
                                       const ContentModel& model);

// File-path conveniences; throw std::runtime_error on I/O failure.
void save_query_trace(const std::string& path, const QueryTrace& trace);
[[nodiscard]] QueryTrace load_query_trace(const std::string& path);
void save_crawl(const std::string& path, const CrawlSnapshot& snapshot);
[[nodiscard]] CrawlSnapshot load_crawl(const std::string& path,
                                       const ContentModel& model);

}  // namespace qcp2p::trace
