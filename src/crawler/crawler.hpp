// Cruiser-style Gnutella crawler (paper Section II.A): a topology crawl
// discovers peers by walking neighbor lists, then a file crawl asks each
// discovered peer for its shared-file list. Real crawls are lossy — the
// paper's own iTunes sweep reached only 239 of 620 shares (password-
// protected, busy, firewalled) — so the crawler models per-peer failure
// modes, and bench/exp_crawl_bias checks that the paper's conclusions
// survive that sampling bias.
#pragma once

#include <cstdint>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::crawler {

using overlay::NodeId;

struct CrawlerParams {
  /// Peer never answers (firewalled/NAT/departed).
  double p_unreachable = 0.20;
  /// Peer answers the handshake but refuses the file listing.
  double p_protected = 0.07;
  /// Peer is busy; each retry succeeds independently.
  double p_busy = 0.15;
  std::uint32_t busy_retries = 2;
  double p_busy_retry_success = 0.5;
  std::uint64_t seed = 77;
};

struct TopologyCrawl {
  /// Peers that answered the topology crawl (their links are known).
  std::vector<NodeId> responsive;
  /// All peer addresses ever observed (responsive + mentioned-by-others).
  std::vector<NodeId> discovered;
  std::uint64_t contact_attempts = 0;
};

struct FileCrawl {
  /// The observed snapshot: libraries of peers that served their list.
  trace::CrawlSnapshot observed;
  std::size_t attempted = 0;
  std::size_t unreachable = 0;
  std::size_t refused = 0;   // password-protected
  std::size_t busy_failed = 0;
  std::size_t succeeded = 0;
};

class Crawler {
 public:
  explicit Crawler(const CrawlerParams& params = {});

  /// BFS peer discovery from `seeds` over the true overlay graph.
  /// Unresponsive peers are discovered (their addresses appear in
  /// others' neighbor lists) but contribute no links of their own.
  [[nodiscard]] TopologyCrawl crawl_topology(
      const overlay::Graph& graph, std::vector<NodeId> seeds) const;

  /// Requests file listings from `peers` against the ground-truth
  /// snapshot; per-peer failures per CrawlerParams. The observed
  /// snapshot contains one entry per *successful* peer, preserving
  /// library contents exactly (crawlers see names verbatim).
  [[nodiscard]] FileCrawl crawl_files(const trace::CrawlSnapshot& truth,
                                      std::vector<NodeId> peers) const;

  /// Convenience: full pipeline over a ground-truth snapshot whose peers
  /// are wired by `graph` (node i <-> snapshot peer i). Real crawlers
  /// bootstrap from many seed addresses; a single dead seed must not
  /// kill the crawl.
  [[nodiscard]] FileCrawl crawl(const overlay::Graph& graph,
                                const trace::CrawlSnapshot& truth,
                                std::vector<NodeId> seeds = {0}) const;

 private:
  /// Deterministic per-peer fate in [0,1): one roll reused across calls.
  [[nodiscard]] double fate(NodeId peer, std::uint64_t salt) const noexcept;

  CrawlerParams params_;
};

}  // namespace qcp2p::crawler
