#include "src/crawler/crawler.hpp"

#include <algorithm>
#include <deque>

namespace qcp2p::crawler {

Crawler::Crawler(const CrawlerParams& params) : params_(params) {}

double Crawler::fate(NodeId peer, std::uint64_t salt) const noexcept {
  const std::uint64_t h = util::mix64(params_.seed ^ (salt << 40) ^ peer);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

TopologyCrawl Crawler::crawl_topology(const overlay::Graph& graph,
                                      std::vector<NodeId> seeds) const {
  TopologyCrawl result;
  std::vector<bool> contacted(graph.num_nodes(), false);
  std::vector<bool> seen(graph.num_nodes(), false);
  std::deque<NodeId> frontier;
  for (NodeId s : seeds) {
    if (s < graph.num_nodes() && !seen[s]) {
      seen[s] = true;
      frontier.push_back(s);
    }
  }

  while (!frontier.empty()) {
    const NodeId peer = frontier.front();
    frontier.pop_front();
    if (contacted[peer]) continue;
    contacted[peer] = true;
    ++result.contact_attempts;

    // Unreachable peers are known addresses but yield no neighbor list.
    if (fate(peer, 1) < params_.p_unreachable) continue;
    result.responsive.push_back(peer);
    for (NodeId nbr : graph.neighbors(peer)) {
      if (!seen[nbr]) {
        seen[nbr] = true;
        frontier.push_back(nbr);
      }
    }
  }

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (seen[v]) result.discovered.push_back(v);
  }
  return result;
}

FileCrawl Crawler::crawl_files(const trace::CrawlSnapshot& truth,
                               std::vector<NodeId> peers) const {
  std::vector<std::vector<trace::ObjectKey>> observed_libs;
  FileCrawl out{trace::CrawlSnapshot(&truth.model(), {},
                                     truth.personal_tail_term()),
                0, 0, 0, 0, 0};

  std::sort(peers.begin(), peers.end());
  peers.erase(std::unique(peers.begin(), peers.end()), peers.end());

  for (NodeId peer : peers) {
    if (peer >= truth.num_peers()) continue;
    ++out.attempted;
    if (fate(peer, 1) < params_.p_unreachable) {
      ++out.unreachable;
      continue;
    }
    if (fate(peer, 2) < params_.p_protected) {
      ++out.refused;
      continue;
    }
    if (fate(peer, 3) < params_.p_busy) {
      bool recovered = false;
      for (std::uint32_t r = 0; r < params_.busy_retries && !recovered; ++r) {
        recovered = fate(peer, 16 + r) < params_.p_busy_retry_success;
      }
      if (!recovered) {
        ++out.busy_failed;
        continue;
      }
    }
    ++out.succeeded;
    observed_libs.push_back(truth.peer_objects(peer));
  }

  out.observed = trace::CrawlSnapshot(&truth.model(), std::move(observed_libs),
                                      truth.personal_tail_term());
  return out;
}

FileCrawl Crawler::crawl(const overlay::Graph& graph,
                         const trace::CrawlSnapshot& truth,
                         std::vector<NodeId> seeds) const {
  const TopologyCrawl topo = crawl_topology(graph, std::move(seeds));
  return crawl_files(truth, topo.discovered);
}

}  // namespace qcp2p::crawler
