// Per-peer content synopses under an advertising budget.
//
// A synopsis is a Bloom filter over a *selected subset* of the peer's
// annotation terms; peers exchange synopses with neighbors and use them
// to steer queries. The budget (how many terms fit before the filter's
// false-positive rate explodes) forces a selection policy — and the
// paper's whole point is that the right selection is query-centric:
//
//   * kContentCentric: advertise the terms most frequent in the peer's
//     own library (the classic QRP-style approach). Under the measured
//     query/annotation mismatch these terms are rarely queried.
//   * kQueryCentric: advertise the peer's terms ranked by *observed
//     query popularity* (from a TermPopularityTracker), so the budget is
//     spent on terms queries actually contain — including transiently
//     popular terms, which the tracker surfaces quickly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/bloom.hpp"
#include "src/core/term_tracker.hpp"
#include "src/sim/network.hpp"

namespace qcp2p::core {

enum class SynopsisPolicy : std::uint8_t { kContentCentric, kQueryCentric };

struct SynopsisParams {
  /// Maximum number of terms a peer may advertise.
  std::size_t term_budget = 96;
  /// Bloom filter size in bits (wire cost of one synopsis).
  std::size_t bloom_bits = 1024;
  std::uint32_t bloom_hashes = 6;
};

/// One peer's advertised synopsis.
class ContentSynopsis {
 public:
  ContentSynopsis(std::span<const TermId> terms, const SynopsisParams& params);

  [[nodiscard]] bool maybe_contains(TermId term) const noexcept {
    return filter_.maybe_contains(term);
  }
  /// True when every query term may be present.
  [[nodiscard]] bool maybe_contains_all(
      std::span<const TermId> query) const noexcept;

  [[nodiscard]] std::size_t advertised_terms() const noexcept {
    return filter_.inserted();
  }
  [[nodiscard]] double estimated_fpr() const noexcept {
    return filter_.estimated_fpr();
  }

 private:
  BloomFilter filter_;
};

/// Selects which of `peer_terms` to advertise under `budget`.
/// @param local_frequency  per-term number of local objects containing it
///                         (parallel to peer_terms).
/// @param tracker          required for kQueryCentric; may be null for
///                         kContentCentric.
[[nodiscard]] std::vector<TermId> select_terms(
    std::span<const TermId> peer_terms,
    std::span<const std::uint32_t> local_frequency, std::size_t budget,
    SynopsisPolicy policy, const TermPopularityTracker* tracker);

/// Convenience: builds the synopsis of a PeerStore peer under a policy.
[[nodiscard]] ContentSynopsis build_synopsis(
    const sim::PeerStore& store, sim::NodeId peer, const SynopsisParams& params,
    SynopsisPolicy policy, const TermPopularityTracker* tracker);

}  // namespace qcp2p::core
