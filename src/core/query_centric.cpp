#include "src/core/query_centric.hpp"

#include <algorithm>

namespace qcp2p::core {

QueryCentricOverlay::QueryCentricOverlay(const Graph& graph,
                                         const PeerStore& store,
                                         SynopsisParams params,
                                         SynopsisPolicy policy)
    : graph_(&graph), store_(&store), params_(params), policy_(policy) {
  rebuild_synopses(nullptr);
}

void QueryCentricOverlay::rebuild_synopses(const TermPopularityTracker* tracker) {
  synopses_.clear();
  synopses_.reserve(graph_->num_nodes());
  // Content-centric selection never consults the tracker; a fresh
  // query-centric overlay with no tracker yet behaves content-centric.
  const TermPopularityTracker empty_tracker{};
  const TermPopularityTracker* effective =
      policy_ == SynopsisPolicy::kQueryCentric
          ? (tracker != nullptr ? tracker : &empty_tracker)
          : nullptr;
  const SynopsisPolicy effective_policy =
      effective != nullptr ? SynopsisPolicy::kQueryCentric
                           : SynopsisPolicy::kContentCentric;
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    synopses_.push_back(
        build_synopsis(*store_, v, params_, effective_policy, effective));
    charge_advertisement(v);
  }
}

std::size_t QueryCentricOverlay::adapt_to_transients(
    const TermPopularityTracker& tracker) {
  if (policy_ != SynopsisPolicy::kQueryCentric) return 0;
  const std::vector<TermId> hot = tracker.transient_terms();
  if (hot.empty()) return 0;
  std::size_t readvertised = 0;
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    const std::span<const TermId> terms = store_->peer_terms(v);
    const bool holds_hot = std::any_of(hot.begin(), hot.end(), [&](TermId t) {
      return std::binary_search(terms.begin(), terms.end(), t);
    });
    if (holds_hot) {
      synopses_[v] = build_synopsis(*store_, v, params_,
                                    SynopsisPolicy::kQueryCentric, &tracker);
      charge_advertisement(v);
      ++readvertised;
    }
  }
  return readvertised;
}

void QueryCentricOverlay::charge_advertisement(NodeId peer) noexcept {
  ++synopses_built_;
  advertisement_bytes_ +=
      static_cast<std::uint64_t>(graph_->degree(peer)) * (params_.bloom_bits / 8);
}

GuidedSearchResult QueryCentricOverlay::search(NodeId source,
                                               std::span<const TermId> query,
                                               const GuidedSearchParams& params,
                                               util::Rng& rng) const {
  GuidedSearchResult out;
  if (query.empty() || graph_->num_nodes() == 0) return out;

  std::vector<bool> visited(graph_->num_nodes(), false);
  visited[source] = true;

  auto probe = [&](NodeId peer) {
    ++out.peers_probed;
    for (std::uint64_t id : store_->match(peer, query)) {
      out.results.push_back(id);
    }
  };
  auto done = [&] {
    if (params.stop_after_results != 0 &&
        out.results.size() >= params.stop_after_results) {
      return true;
    }
    return params.message_budget != 0 && out.messages >= params.message_budget;
  };

  probe(source);
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  std::vector<NodeId> matching;

  for (std::uint32_t hop = 0; hop < params.ttl && !frontier.empty(); ++hop) {
    if (done()) break;
    next.clear();
    for (NodeId u : frontier) {
      if (done()) break;
      const auto nbrs = graph_->neighbors(u);
      matching.clear();
      for (NodeId v : nbrs) {
        if (!visited[v] && synopses_[v].maybe_contains_all(query)) {
          matching.push_back(v);
        }
      }
      auto forward = [&](NodeId v) {
        ++out.messages;
        if (visited[v]) return;
        visited[v] = true;
        probe(v);
        next.push_back(v);
      };
      if (!matching.empty()) {
        // Forward to up to match_fanout synopsis matches (random subset
        // for load spreading).
        for (std::size_t i = matching.size(); i > 1; --i) {
          std::swap(matching[i - 1], matching[rng.bounded(i)]);
        }
        const std::size_t k = std::min(params.match_fanout, matching.size());
        for (std::size_t i = 0; i < k && !done(); ++i) forward(matching[i]);
      } else {
        // Blind fallback keeps rare queries moving.
        for (std::size_t i = 0; i < params.fallback_fanout && !nbrs.empty() &&
                                !done();
             ++i) {
          forward(nbrs[rng.bounded(nbrs.size())]);
        }
      }
    }
    frontier.swap(next);
  }

  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  out.success = !out.results.empty() &&
                (params.stop_after_results == 0 ||
                 out.results.size() >= params.stop_after_results);
  return out;
}

double QueryCentricOverlay::mean_synopsis_fpr() const {
  if (synopses_.empty()) return 0.0;
  double sum = 0.0;
  for (const ContentSynopsis& s : synopses_) sum += s.estimated_fpr();
  return sum / static_cast<double>(synopses_.size());
}

}  // namespace qcp2p::core
