#include "src/core/dynamic_synopsis.hpp"

#include <algorithm>

namespace qcp2p::core {

DynamicSynopsis::DynamicSynopsis(const SynopsisParams& params,
                                 SynopsisPolicy policy)
    : params_(params),
      policy_(policy),
      filter_(params.bloom_bits, params.bloom_hashes) {}

void DynamicSynopsis::add_object(std::span<const TermId> terms) {
  for (TermId t : terms) {
    if (++frequency_[t] == 1) dirty_ = true;  // new distinct term
  }
}

void DynamicSynopsis::remove_object(std::span<const TermId> terms) {
  for (TermId t : terms) {
    const auto it = frequency_.find(t);
    if (it == frequency_.end()) continue;  // unmatched remove: ignore
    if (--it->second == 0) {
      frequency_.erase(it);
      dirty_ = true;  // a distinct term vanished
    }
  }
}

bool DynamicSynopsis::refresh(const TermPopularityTracker* tracker) {
  // Query-centric selections depend on the (moving) tracker scores, so
  // they must be re-evaluated even when the content is unchanged;
  // content-centric selections only change when content does.
  if (!dirty_ && policy_ == SynopsisPolicy::kContentCentric) return false;

  std::vector<TermId> terms;
  std::vector<std::uint32_t> freq;
  terms.reserve(frequency_.size());
  freq.reserve(frequency_.size());
  for (const auto& [term, count] : frequency_) {
    terms.push_back(term);
    freq.push_back(count);
  }
  const TermPopularityTracker empty{};
  std::vector<TermId> selected = select_terms(
      terms, freq, params_.term_budget,
      policy_ == SynopsisPolicy::kQueryCentric
          ? SynopsisPolicy::kQueryCentric
          : SynopsisPolicy::kContentCentric,
      policy_ == SynopsisPolicy::kQueryCentric
          ? (tracker != nullptr ? tracker : &empty)
          : nullptr);
  std::sort(selected.begin(), selected.end());

  dirty_ = false;
  if (selected == advertised_) return false;

  // Incremental filter update: remove departures, insert arrivals.
  std::vector<TermId> removed, added;
  std::set_difference(advertised_.begin(), advertised_.end(),
                      selected.begin(), selected.end(),
                      std::back_inserter(removed));
  std::set_difference(selected.begin(), selected.end(), advertised_.begin(),
                      advertised_.end(), std::back_inserter(added));
  for (TermId t : removed) filter_.remove(t);
  for (TermId t : added) filter_.insert(t);
  advertised_ = std::move(selected);
  ++readvertisements_;
  return true;
}

bool DynamicSynopsis::maybe_contains_all(
    std::span<const TermId> query) const noexcept {
  for (TermId t : query) {
    if (!filter_.maybe_contains(t)) return false;
  }
  return true;
}

}  // namespace qcp2p::core
