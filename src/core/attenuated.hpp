// Attenuated Bloom filter routing: multi-hop synopsis aggregation.
//
// A one-hop synopsis (ContentSynopsis) only steers the LAST hop of a
// query. The attenuated variant keeps, per neighbor link, a stack of D
// Bloom filters: level d summarizes the advertised terms reachable
// within d hops through that neighbor. Queries then follow the link
// whose shallowest matching level is smallest — multi-hop gradients
// instead of last-hop filtering.
//
// Composes with the paper's position: the per-peer advertised term sets
// are chosen by a SynopsisPolicy (content- or query-centric), so the
// attenuated structure propagates exactly the terms the policy selects.
// bench/exp_attenuated quantifies the routing gain over one-hop synopses
// at equal budgets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/synopsis.hpp"
#include "src/overlay/graph.hpp"
#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::core {

using overlay::Graph;
using sim::NodeId;
using sim::PeerStore;

struct AttenuatedParams {
  /// Levels per link (depth of aggregation). Level 0 = the neighbor's
  /// own advertisement; level d includes everything d+1 hops away.
  std::size_t depth = 3;
  /// Bits per level filter (the wire cost of one link's stack is
  /// depth * bloom_bits / 8 bytes).
  std::size_t bloom_bits = 2'048;
  std::uint32_t bloom_hashes = 6;
  /// Per-peer advertised-term budget (as in SynopsisParams).
  std::size_t term_budget = 96;
};

struct AttenuatedSearchParams {
  std::uint32_t max_hops = 16;
  std::size_t stop_after_results = 1;
  /// Number of alternate links tried per node when the best link loops.
  std::size_t alternates = 2;
};

struct AttenuatedSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;
  std::size_t peers_probed = 0;
  bool success = false;
};

class AttenuatedOverlay {
 public:
  /// Builds each peer's advertisement under `policy` (optionally
  /// tracker-driven), then aggregates level stacks by BFS per link.
  AttenuatedOverlay(const Graph& graph, const PeerStore& store,
                    const AttenuatedParams& params, SynopsisPolicy policy,
                    const TermPopularityTracker* tracker = nullptr);

  /// Smallest level of (peer -> neighbor) whose filter may contain all
  /// query terms; nullopt when no level matches.
  [[nodiscard]] std::optional<std::size_t> match_level(
      NodeId peer, std::size_t neighbor_index,
      std::span<const TermId> query) const;

  /// Gradient-descent routing: repeatedly hop along the link with the
  /// smallest matching level (ties random); falls back to a random
  /// unvisited neighbor when nothing matches.
  [[nodiscard]] AttenuatedSearchResult search(
      NodeId source, std::span<const TermId> query,
      const AttenuatedSearchParams& params, util::Rng& rng) const;

  /// Wire bytes a full advertisement exchange costs (all links, all
  /// levels) — for budget-equalized comparisons.
  [[nodiscard]] std::uint64_t advertisement_bytes() const noexcept;

 private:
  const Graph* graph_;
  const PeerStore* store_;
  AttenuatedParams params_;
  // advertised_[v]: the terms peer v advertises under the policy.
  std::vector<std::vector<TermId>> advertised_;
  // filters_[v][i][d]: level-d filter of peer v's i-th link.
  std::vector<std::vector<std::vector<BloomFilter>>> filters_;
};

}  // namespace qcp2p::core
