#include "src/core/synopsis.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace qcp2p::core {

ContentSynopsis::ContentSynopsis(std::span<const TermId> terms,
                                 const SynopsisParams& params)
    : filter_(params.bloom_bits, params.bloom_hashes) {
  for (TermId t : terms) filter_.insert(t);
}

bool ContentSynopsis::maybe_contains_all(
    std::span<const TermId> query) const noexcept {
  for (TermId t : query) {
    if (!filter_.maybe_contains(t)) return false;
  }
  return true;
}

std::vector<TermId> select_terms(std::span<const TermId> peer_terms,
                                 std::span<const std::uint32_t> local_frequency,
                                 std::size_t budget, SynopsisPolicy policy,
                                 const TermPopularityTracker* tracker) {
  if (local_frequency.size() != peer_terms.size()) {
    throw std::invalid_argument("select_terms: frequency size mismatch");
  }
  if (policy == SynopsisPolicy::kQueryCentric && tracker == nullptr) {
    throw std::invalid_argument("select_terms: query-centric needs a tracker");
  }
  std::vector<std::size_t> order(peer_terms.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto content_key = [&](std::size_t i) {
    return static_cast<double>(local_frequency[i]);
  };
  auto query_key = [&](std::size_t i) {
    // Primary: how much queries want this term (bursts surface via the
    // max with the fast counter); content frequency only tie-breaks.
    const TermId t = peer_terms[i];
    return std::max(tracker->score(t), tracker->burst_score(t)) * 1e6 +
           static_cast<double>(local_frequency[i]);
  };

  const std::size_t k = std::min(budget, order.size());
  if (policy == SynopsisPolicy::kContentCentric) {
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return content_key(a) > content_key(b);
                      });
  } else {
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return query_key(a) > query_key(b);
                      });
  }
  std::vector<TermId> selected;
  selected.reserve(k);
  for (std::size_t i = 0; i < k; ++i) selected.push_back(peer_terms[order[i]]);
  return selected;
}

ContentSynopsis build_synopsis(const sim::PeerStore& store, sim::NodeId peer,
                               const SynopsisParams& params,
                               SynopsisPolicy policy,
                               const TermPopularityTracker* tracker) {
  const std::span<const TermId> terms = store.peer_terms(peer);
  // Local frequency: number of the peer's objects containing each term.
  std::unordered_map<TermId, std::uint32_t> freq;
  const std::size_t count = store.object_count(peer);
  for (std::size_t i = 0; i < count; ++i) {
    for (TermId t : store.object_terms(peer, i)) ++freq[t];
  }
  std::vector<std::uint32_t> frequency(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) frequency[i] = freq[terms[i]];

  const std::vector<TermId> selected = select_terms(
      terms, frequency, params.term_budget, policy, tracker);
  return ContentSynopsis(selected, params);
}

}  // namespace qcp2p::core
