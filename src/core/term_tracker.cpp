#include "src/core/term_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace qcp2p::core {

TermPopularityTracker::TermPopularityTracker(const TrackerParams& params)
    : params_(params),
      slow_lambda_(std::pow(0.5, 1.0 / params.slow_halflife)),
      fast_lambda_(std::pow(0.5, 1.0 / params.fast_halflife)) {}

TermPopularityTracker::Entry TermPopularityTracker::decayed(
    const Entry& e) const noexcept {
  const double dt = clock_ - e.updated_at;
  Entry out = e;
  if (dt > 0.0) {
    out.slow *= std::pow(slow_lambda_, dt);
    out.fast *= std::pow(fast_lambda_, dt);
    out.updated_at = clock_;
  }
  return out;
}

void TermPopularityTracker::refresh(Entry& e) const noexcept { e = decayed(e); }

void TermPopularityTracker::observe_term(TermId term) {
  Entry& e = entries_[term];
  refresh(e);
  e.slow += 1.0;
  e.fast += 1.0;
}

void TermPopularityTracker::observe_query(const std::vector<TermId>& terms) {
  for (TermId t : terms) observe_term(t);
  tick(1.0);
}

void TermPopularityTracker::tick(double n) { clock_ += n; }

double TermPopularityTracker::score(TermId term) const {
  const auto it = entries_.find(term);
  return it == entries_.end() ? 0.0 : decayed(it->second).slow;
}

double TermPopularityTracker::burst_score(TermId term) const {
  const auto it = entries_.find(term);
  return it == entries_.end() ? 0.0 : decayed(it->second).fast;
}

bool TermPopularityTracker::is_transient(TermId term) const {
  const auto it = entries_.find(term);
  if (it == entries_.end()) return false;
  const Entry e = decayed(it->second);
  if (e.fast < params_.burst_floor) return false;
  // The fast counter approximates the term's mass inside the recent
  // window; everything beyond that is history. A fresh burst has all its
  // mass recent (history ~ 0), while a steady term has history >> fast.
  // Using slow-minus-fast as the history estimate makes the detector
  // self-calibrating even before the slow window has filled.
  const double fast_window =
      std::min(1.0 / (1.0 - fast_lambda_), std::max(clock_, 1.0));
  const double history = std::max(0.0, e.slow - e.fast);
  // When the clock has not yet outrun the fast window, history mass is
  // tiny and its span ill-defined; flooring the span at one window keeps
  // the estimate finite and unbiased for steady terms.
  const double history_span = std::max(clock_ - fast_window, fast_window);
  const double expected_fast = history / history_span * fast_window;
  return e.fast >= params_.burst_ratio * std::max(expected_fast, 0.5);
}

std::vector<TermId> TermPopularityTracker::top_terms(std::size_t k) const {
  std::vector<std::pair<double, TermId>> ranked;
  ranked.reserve(entries_.size());
  for (const auto& [term, e] : entries_) {
    const Entry d = decayed(e);
    ranked.emplace_back(std::max(d.slow, d.fast), term);
  }
  const std::size_t n = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(n),
                    ranked.end(), std::greater<>());
  std::vector<TermId> top;
  top.reserve(n);
  for (std::size_t i = 0; i < n; ++i) top.push_back(ranked[i].second);
  return top;
}

std::vector<TermId> TermPopularityTracker::transient_terms() const {
  std::vector<TermId> out;
  for (const auto& [term, e] : entries_) {
    if (is_transient(term)) out.push_back(term);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TermPopularityTracker::compact(double epsilon) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry d = decayed(it->second);
    if (d.slow < epsilon && d.fast < epsilon) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void TermPopularityTracker::save(std::ostream& os) const {
  os.precision(17);
  os << "tracker v1\n" << clock_ << "\n";
  for (const auto& [term, e] : entries_) {
    os << term << ' ' << e.slow << ' ' << e.fast << ' ' << e.updated_at
       << "\n";
  }
}

TermPopularityTracker TermPopularityTracker::load(std::istream& is,
                                                  const TrackerParams& params) {
  std::string header;
  if (!std::getline(is, header) || header != "tracker v1") {
    throw std::runtime_error("TermPopularityTracker::load: bad header");
  }
  TermPopularityTracker tracker(params);
  if (!(is >> tracker.clock_)) {
    throw std::runtime_error("TermPopularityTracker::load: missing clock");
  }
  TermId term;
  Entry e;
  for (;;) {
    if (!(is >> term)) {
      // Only a clean end-of-stream (possibly trailing whitespace) may
      // stop the record loop; a non-numeric token is corruption.
      if (is.eof()) break;
      throw std::runtime_error("TermPopularityTracker::load: malformed term");
    }
    // A term with fewer than its three counters is a truncated save —
    // silently dropping it would resurrect a peer with missing history.
    if (!(is >> e.slow >> e.fast >> e.updated_at)) {
      throw std::runtime_error(
          "TermPopularityTracker::load: truncated record");
    }
    tracker.entries_[term] = e;
  }
  return tracker;
}

}  // namespace qcp2p::core
