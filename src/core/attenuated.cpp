#include "src/core/attenuated.hpp"

#include <algorithm>
#include <unordered_map>

namespace qcp2p::core {

AttenuatedOverlay::AttenuatedOverlay(const Graph& graph,
                                     const PeerStore& store,
                                     const AttenuatedParams& params,
                                     SynopsisPolicy policy,
                                     const TermPopularityTracker* tracker)
    : graph_(&graph), store_(&store), params_(params) {
  const std::size_t n = graph.num_nodes();

  // 1. Per-peer advertised term sets under the selection policy.
  const TermPopularityTracker empty_tracker{};
  const TermPopularityTracker* effective =
      policy == SynopsisPolicy::kQueryCentric
          ? (tracker != nullptr ? tracker : &empty_tracker)
          : nullptr;
  advertised_.resize(n);
  std::vector<BloomFilter> own;
  own.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::span<const TermId> terms = store.peer_terms(v);
    std::unordered_map<TermId, std::uint32_t> freq;
    const std::size_t count = store.object_count(v);
    for (std::size_t i = 0; i < count; ++i) {
      for (TermId t : store.object_terms(v, i)) ++freq[t];
    }
    std::vector<std::uint32_t> frequency(terms.size());
    for (std::size_t i = 0; i < terms.size(); ++i) frequency[i] = freq[terms[i]];
    advertised_[v] = select_terms(
        terms, frequency, params.term_budget,
        effective != nullptr ? SynopsisPolicy::kQueryCentric
                             : SynopsisPolicy::kContentCentric,
        effective);
    BloomFilter f(params.bloom_bits, params.bloom_hashes);
    for (TermId t : advertised_[v]) f.insert(t);
    own.push_back(std::move(f));
  }

  // 2. Iterative per-link aggregation. Level 0 of link (v -> u) is u's
  // own advertisement; level d adds everything u's links reach at d-1.
  // Levels are cumulative, so match_level is monotone in d.
  filters_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = graph.neighbors(v);
    filters_[v].resize(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      filters_[v][i].assign(params.depth, own[nbrs[i]]);
    }
  }
  for (std::size_t d = 1; d < params.depth; ++d) {
    for (NodeId v = 0; v < n; ++v) {
      const auto nbrs = graph.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId u = nbrs[i];
        // F_d(v->u) = F_{d-1}(v->u) ∪ ⋃_w F_{d-1}(u->w).
        BloomFilter merged = filters_[v][i][d - 1];
        const auto u_nbrs = graph.neighbors(u);
        for (std::size_t j = 0; j < u_nbrs.size(); ++j) {
          merged.merge(filters_[u][j][d - 1]);
        }
        filters_[v][i][d] = std::move(merged);
      }
    }
  }
}

std::optional<std::size_t> AttenuatedOverlay::match_level(
    NodeId peer, std::size_t neighbor_index,
    std::span<const TermId> query) const {
  const auto& stack = filters_[peer][neighbor_index];
  for (std::size_t d = 0; d < stack.size(); ++d) {
    bool all = true;
    for (TermId t : query) {
      if (!stack[d].maybe_contains(t)) {
        all = false;
        break;
      }
    }
    if (all) return d;
  }
  return std::nullopt;
}

AttenuatedSearchResult AttenuatedOverlay::search(
    NodeId source, std::span<const TermId> query,
    const AttenuatedSearchParams& params, util::Rng& rng) const {
  AttenuatedSearchResult out;
  if (query.empty() || graph_->num_nodes() == 0) return out;
  std::vector<bool> visited(graph_->num_nodes(), false);

  auto probe = [&](NodeId peer) {
    ++out.peers_probed;
    for (std::uint64_t id : store_->match(peer, query)) {
      out.results.push_back(id);
    }
  };
  auto done = [&] {
    return params.stop_after_results != 0 &&
           out.results.size() >= params.stop_after_results;
  };

  NodeId at = source;
  visited[at] = true;
  probe(at);
  for (std::uint32_t hop = 0; hop < params.max_hops && !done(); ++hop) {
    const auto nbrs = graph_->neighbors(at);
    if (nbrs.empty()) break;

    // Rank links by matching level (lower is closer), unmatched last.
    std::vector<std::pair<std::size_t, std::size_t>> ranked;  // (level, idx)
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto level = match_level(at, i, query);
      ranked.emplace_back(level.value_or(params_.depth + 1), i);
    }
    // Shuffle before the stable ordering so ties break randomly.
    for (std::size_t i = ranked.size(); i > 1; --i) {
      std::swap(ranked[i - 1], ranked[rng.bounded(i)]);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });

    // Follow the best non-visited link among the top alternates; if all
    // loop, take a uniform random neighbor (keeps rare queries moving).
    NodeId next = nbrs[rng.bounded(nbrs.size())];
    std::size_t tried = 0;
    for (const auto& [level, idx] : ranked) {
      if (tried++ >= params.alternates + 1) break;
      if (!visited[nbrs[idx]]) {
        next = nbrs[idx];
        break;
      }
    }
    ++out.messages;
    at = next;
    if (!visited[at]) {
      visited[at] = true;
      probe(at);
    }
  }
  out.success = !out.results.empty() &&
                (params.stop_after_results == 0 ||
                 out.results.size() >= params.stop_after_results);
  return out;
}

std::uint64_t AttenuatedOverlay::advertisement_bytes() const noexcept {
  // Each directed link carries a depth-deep stack of filters.
  return static_cast<std::uint64_t>(2 * graph_->num_edges()) *
         params_.depth * (params_.bloom_bits / 8);
}

}  // namespace qcp2p::core
