#include "src/core/bloom.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace qcp2p::core {

BloomFilter::BloomFilter(std::size_t bits, std::uint32_t hashes)
    : words_((std::max<std::size_t>(bits, 64) + 63) / 64, 0),
      hashes_(std::max<std::uint32_t>(hashes, 1)) {}

std::pair<std::uint64_t, std::uint64_t> BloomFilter::hash_pair(
    std::uint64_t key) const noexcept {
  const std::uint64_t h1 = util::mix64(key ^ 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = util::mix64(key ^ 0xC2B2AE3D27D4EB4FULL) | 1ULL;
  return {h1, h2};
}

void BloomFilter::insert(std::uint64_t key) noexcept {
  const auto [h1, h2] = hash_pair(key);
  const std::size_t m = bit_count();
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + i * h2) % m;
    words_[bit / 64] |= (1ULL << (bit % 64));
  }
  ++inserted_;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const noexcept {
  const auto [h1, h2] = hash_pair(key);
  const std::size_t m = bit_count();
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + i * h2) % m;
    if (!(words_[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

void BloomFilter::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

void BloomFilter::merge(const BloomFilter& other) {
  if (other.words_.size() != words_.size() || other.hashes_ != hashes_) {
    throw std::invalid_argument("BloomFilter::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  inserted_ += other.inserted_;
}

double BloomFilter::fill_ratio() const noexcept {
  std::size_t set = 0;
  for (std::uint64_t w : words_) set += static_cast<std::size_t>(std::popcount(w));
  return static_cast<double>(set) / static_cast<double>(bit_count());
}

double BloomFilter::estimated_fpr() const noexcept {
  const double m = static_cast<double>(bit_count());
  const double n = static_cast<double>(inserted_);
  const double k = static_cast<double>(hashes_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

std::uint32_t BloomFilter::optimal_hashes(std::size_t bits,
                                          std::size_t elements) noexcept {
  if (elements == 0) return 1;
  const double k = static_cast<double>(bits) /
                   static_cast<double>(elements) * 0.6931471805599453;
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(std::lround(k)));
}

BloomFilter BloomFilter::from_raw(std::vector<std::uint64_t> words,
                                  std::uint32_t hashes, std::size_t inserted) {
  if (words.empty()) throw std::invalid_argument("BloomFilter::from_raw");
  BloomFilter out(words.size() * 64, hashes);
  out.words_ = std::move(words);
  out.inserted_ = inserted;
  return out;
}

CountingBloomFilter::CountingBloomFilter(std::size_t cells,
                                         std::uint32_t hashes)
    // Rounded up to whole 64-cell blocks so the hash mapping (mod cell
    // count) is identical to the BloomFilter exported by to_bloom().
    : counters_((std::max<std::size_t>(cells, 1) + 63) / 64 * 64, 0),
      hashes_(std::max<std::uint32_t>(hashes, 1)) {}

std::pair<std::uint64_t, std::uint64_t> CountingBloomFilter::hash_pair(
    std::uint64_t key) const noexcept {
  const std::uint64_t h1 = util::mix64(key ^ 0x9E3779B97F4A7C15ULL);
  const std::uint64_t h2 = util::mix64(key ^ 0xC2B2AE3D27D4EB4FULL) | 1ULL;
  return {h1, h2};
}

void CountingBloomFilter::insert(std::uint64_t key) noexcept {
  const auto [h1, h2] = hash_pair(key);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    std::uint8_t& cell = counters_[(h1 + i * h2) % counters_.size()];
    if (cell != 0xFF) ++cell;  // saturate
  }
  ++size_;
}

void CountingBloomFilter::remove(std::uint64_t key) noexcept {
  const auto [h1, h2] = hash_pair(key);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    std::uint8_t& cell = counters_[(h1 + i * h2) % counters_.size()];
    if (cell != 0 && cell != 0xFF) --cell;  // saturated cells stay set
  }
  if (size_ > 0) --size_;
}

bool CountingBloomFilter::maybe_contains(std::uint64_t key) const noexcept {
  const auto [h1, h2] = hash_pair(key);
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    if (counters_[(h1 + i * h2) % counters_.size()] == 0) return false;
  }
  return true;
}

void CountingBloomFilter::clear() noexcept {
  std::fill(counters_.begin(), counters_.end(), 0);
  size_ = 0;
}

double CountingBloomFilter::fill_ratio() const noexcept {
  std::size_t nonzero = 0;
  for (std::uint8_t c : counters_) nonzero += (c != 0);
  return static_cast<double>(nonzero) / static_cast<double>(counters_.size());
}

BloomFilter CountingBloomFilter::to_bloom() const {
  // Identical cell geometry (both padded to whole 64-cell blocks) and
  // hash family, so membership answers agree exactly: bit i of the
  // exported filter is (counter i != 0).
  const std::size_t words = (counters_.size() + 63) / 64;
  std::vector<std::uint64_t> bits(words, 0);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] != 0) bits[i / 64] |= (1ULL << (i % 64));
  }
  return BloomFilter::from_raw(std::move(bits), hashes_, size_);
}

}  // namespace qcp2p::core
