// Incrementally maintained synopsis for a LIVE peer: content changes
// (downloads, deletions) and query-popularity shifts update the
// advertised term set without rebuilding from scratch.
//
// The counting Bloom filter gives O(k) add/remove per term; the selector
// re-evaluates lazily and reports whether the advertised set actually
// changed, so the peer only re-pushes its synopsis to neighbors when the
// wire bits differ — the maintenance discipline a deployed query-centric
// servent needs (DESIGN.md section 5's "adaptive vs static" choice made
// concrete at the data-structure level).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/bloom.hpp"
#include "src/core/synopsis.hpp"
#include "src/core/term_tracker.hpp"

namespace qcp2p::core {

class DynamicSynopsis {
 public:
  DynamicSynopsis(const SynopsisParams& params, SynopsisPolicy policy);

  /// Registers a newly shared object's terms.
  void add_object(std::span<const TermId> terms);
  /// Unregisters a deleted object's terms (must mirror a prior add).
  void remove_object(std::span<const TermId> terms);

  /// Re-runs term selection against the tracker (required for the
  /// query-centric policy; ignored for content-centric). Returns true
  /// when the advertised set changed — i.e. the peer must re-advertise.
  bool refresh(const TermPopularityTracker* tracker);

  /// Current advertisement (valid after the latest refresh()).
  [[nodiscard]] bool maybe_contains(TermId term) const noexcept {
    return filter_.maybe_contains(term);
  }
  [[nodiscard]] bool maybe_contains_all(
      std::span<const TermId> query) const noexcept;

  /// Wire export of the current advertisement.
  [[nodiscard]] BloomFilter wire_filter() const { return filter_.to_bloom(); }

  [[nodiscard]] std::size_t distinct_terms() const noexcept {
    return frequency_.size();
  }
  [[nodiscard]] const std::vector<TermId>& advertised() const noexcept {
    return advertised_;
  }
  [[nodiscard]] std::uint64_t readvertisements() const noexcept {
    return readvertisements_;
  }

 private:
  SynopsisParams params_;
  SynopsisPolicy policy_;
  // term -> number of local objects containing it.
  std::unordered_map<TermId, std::uint32_t> frequency_;
  std::vector<TermId> advertised_;  // sorted
  CountingBloomFilter filter_;
  bool dirty_ = true;
  std::uint64_t readvertisements_ = 0;
};

}  // namespace qcp2p::core
