// Bloom filter over 64-bit keys (term ids), the wire format of a peer's
// content synopsis. Uses double hashing (Kirsch-Mitzenmacher): two
// independent 64-bit hashes combine into k index functions.
#pragma once

#include <cstdint>
#include <vector>

namespace qcp2p::core {

class BloomFilter {
 public:
  /// @param bits    filter size in bits (rounded up to a multiple of 64).
  /// @param hashes  number of index functions k (>= 1).
  BloomFilter(std::size_t bits, std::uint32_t hashes);

  void insert(std::uint64_t key) noexcept;
  [[nodiscard]] bool maybe_contains(std::uint64_t key) const noexcept;

  void clear() noexcept;

  /// Bitwise union with a same-shaped filter (synopsis aggregation).
  void merge(const BloomFilter& other);

  [[nodiscard]] std::size_t bit_count() const noexcept {
    return words_.size() * 64;
  }
  [[nodiscard]] std::uint32_t num_hashes() const noexcept { return hashes_; }
  [[nodiscard]] std::size_t inserted() const noexcept { return inserted_; }

  /// Fraction of set bits (load factor).
  [[nodiscard]] double fill_ratio() const noexcept;

  /// Analytical false-positive probability at the current load:
  /// (1 - e^{-kn/m})^k.
  [[nodiscard]] double estimated_fpr() const noexcept;

  /// Optimal k for a given bits-per-element ratio: k = (m/n) ln 2.
  [[nodiscard]] static std::uint32_t optimal_hashes(std::size_t bits,
                                                    std::size_t elements) noexcept;

  /// Wire decode: reconstructs a filter from its raw bit words (as
  /// received from a peer, or projected from a CountingBloomFilter).
  [[nodiscard]] static BloomFilter from_raw(std::vector<std::uint64_t> words,
                                            std::uint32_t hashes,
                                            std::size_t inserted);
  /// Wire encode: the raw bit words.
  [[nodiscard]] const std::vector<std::uint64_t>& raw_words() const noexcept {
    return words_;
  }

 private:
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> hash_pair(
      std::uint64_t key) const noexcept;

  std::vector<std::uint64_t> words_;
  std::uint32_t hashes_;
  std::size_t inserted_ = 0;
};

/// Counting Bloom filter: supports removal, so an adaptive synopsis can
/// swap terms in and out incrementally instead of rebuilding from
/// scratch. 8-bit saturating counters per cell (saturated cells never
/// decrement, preserving the no-false-negative guarantee).
class CountingBloomFilter {
 public:
  CountingBloomFilter(std::size_t cells, std::uint32_t hashes);

  void insert(std::uint64_t key) noexcept;
  /// Removes one prior insertion of `key`. Removing a key that was never
  /// inserted is undefined for membership of OTHER keys (as in any
  /// counting Bloom filter) — callers must pair inserts and removes.
  void remove(std::uint64_t key) noexcept;
  [[nodiscard]] bool maybe_contains(std::uint64_t key) const noexcept;

  void clear() noexcept;

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] std::uint32_t num_hashes() const noexcept { return hashes_; }
  /// Net insertions (inserts minus removes), clamped at zero.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Fraction of nonzero cells.
  [[nodiscard]] double fill_ratio() const noexcept;

  /// Exports a plain BloomFilter (1 bit per cell) for the wire.
  [[nodiscard]] BloomFilter to_bloom() const;

 private:
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> hash_pair(
      std::uint64_t key) const noexcept;

  std::vector<std::uint8_t> counters_;
  std::uint32_t hashes_;
  std::size_t size_ = 0;
};

}  // namespace qcp2p::core
