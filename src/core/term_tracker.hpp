// Online query-term popularity tracking with transient detection — the
// runtime component behind query-centric synopsis adaptation (the
// paper's Section VII position and its follow-on system [9]).
//
// Two exponentially-decayed counters per term:
//   * a slow EWMA capturing persistent popularity, and
//   * a fast EWMA capturing the current burst level.
// A term is *transiently popular* when its fast estimate exceeds both an
// absolute floor and a multiple of its slow estimate — the online analog
// of the offline detector in src/analysis/query_analysis.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "src/text/vocabulary.hpp"

namespace qcp2p::core {

using text::TermId;

struct TrackerParams {
  /// Decay half-life of the slow counter, in observed queries.
  double slow_halflife = 50'000.0;
  /// Decay half-life of the fast counter, in observed queries.
  double fast_halflife = 2'000.0;
  /// Transient test: fast >= burst_ratio * max(slow, floor).
  double burst_ratio = 6.0;
  double burst_floor = 3.0;
};

class TermPopularityTracker {
 public:
  explicit TermPopularityTracker(const TrackerParams& params = {});

  /// Observes one query (its terms); advances the decay clock by 1.
  void observe_query(const std::vector<TermId>& terms);

  /// Observes a single term occurrence without advancing the clock.
  void observe_term(TermId term);
  /// Advances the decay clock by `n` queries.
  void tick(double n = 1.0);

  /// Persistent-popularity score (slow EWMA, decayed to now).
  [[nodiscard]] double score(TermId term) const;
  /// Burst score (fast EWMA, decayed to now).
  [[nodiscard]] double burst_score(TermId term) const;
  /// True when the term is currently transiently popular.
  [[nodiscard]] bool is_transient(TermId term) const;

  /// Top-k terms by combined score (max of slow and fast estimates, so
  /// fresh bursts surface immediately).
  [[nodiscard]] std::vector<TermId> top_terms(std::size_t k) const;

  /// All currently-transient terms.
  [[nodiscard]] std::vector<TermId> transient_terms() const;

  [[nodiscard]] std::size_t tracked_terms() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] double clock() const noexcept { return clock_; }

  /// Drops terms whose decayed scores fell below `epsilon` (memory bound
  /// for long-running peers).
  void compact(double epsilon = 1e-3);

  /// Persists the tracker state (a restarting peer keeps its learned
  /// popularity instead of re-warming from zero). Text format: a header
  /// line, the clock, then one "term slow fast updated_at" line per term.
  void save(std::ostream& os) const;
  /// Throws std::runtime_error on malformed input.
  [[nodiscard]] static TermPopularityTracker load(std::istream& is,
                                                  const TrackerParams& params = {});

 private:
  struct Entry {
    double slow = 0.0;
    double fast = 0.0;
    double updated_at = 0.0;  // clock of last update
  };

  /// Decays an entry's counters to the current clock.
  void refresh(Entry& e) const noexcept;
  [[nodiscard]] Entry decayed(const Entry& e) const noexcept;

  TrackerParams params_;
  double slow_lambda_;  // per-query decay factors: 0.5^(1/halflife)
  double fast_lambda_;
  double clock_ = 0.0;
  std::unordered_map<TermId, Entry> entries_;
};

}  // namespace qcp2p::core
