// Query-centric unstructured overlay: the system the paper argues for.
//
// Every peer advertises a budgeted synopsis to its neighbors; queries are
// routed as a synopsis-guided bounded flood — a node forwards a query to
// neighbors whose synopsis may match all query terms, falling back to a
// small random fanout when no synopsis matches (keeps rare queries
// alive). Peers observe the query stream through a shared
// TermPopularityTracker and periodically rebuild their synopses, so
// transiently popular terms start steering queries within one
// adaptation epoch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/synopsis.hpp"
#include "src/overlay/graph.hpp"
#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::core {

using overlay::Graph;
using sim::NodeId;
using sim::PeerStore;

struct GuidedSearchParams {
  std::uint32_t ttl = 5;
  /// Max synopsis-matching neighbors a node forwards to per hop.
  std::size_t match_fanout = 4;
  /// Random neighbors tried when no synopsis matches.
  std::size_t fallback_fanout = 1;
  /// Stop once this many distinct results are found (0 = exhaust TTL).
  std::size_t stop_after_results = 1;
  /// Hard message budget (0 = unlimited); comparisons against flooding
  /// are made at equal budgets.
  std::uint64_t message_budget = 0;
};

struct GuidedSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;
  std::size_t peers_probed = 0;
  bool success = false;
};

class QueryCentricOverlay {
 public:
  /// The overlay references (not owns) the graph and store, which must
  /// outlive it.
  QueryCentricOverlay(const Graph& graph, const PeerStore& store,
                      SynopsisParams params, SynopsisPolicy policy);

  /// (Re)builds every peer's synopsis; pass the tracker for the
  /// query-centric policy (ignored for content-centric).
  void rebuild_synopses(const TermPopularityTracker* tracker);

  /// Incremental adaptation: rebuilds only peers holding at least one
  /// currently-transient term (cheap epoch step between full rebuilds).
  /// Returns the number of peers that re-advertised.
  std::size_t adapt_to_transients(const TermPopularityTracker& tracker);

  // --- advertising cost accounting ---------------------------------------
  // Every (re)built synopsis is pushed to all of the peer's neighbors;
  // the wire cost per push is bloom_bits / 8 bytes. These counters let
  // the benches compare adaptation traffic against search savings.

  /// Per-peer synopsis (re)builds since construction.
  [[nodiscard]] std::uint64_t synopses_built() const noexcept {
    return synopses_built_;
  }
  /// Total advertisement bytes pushed to neighbors so far.
  [[nodiscard]] std::uint64_t advertisement_bytes() const noexcept {
    return advertisement_bytes_;
  }

  [[nodiscard]] const ContentSynopsis& synopsis(NodeId peer) const {
    return synopses_.at(peer);
  }
  [[nodiscard]] SynopsisPolicy policy() const noexcept { return policy_; }

  /// Synopsis-guided search (see file comment).
  [[nodiscard]] GuidedSearchResult search(NodeId source,
                                          std::span<const TermId> query,
                                          const GuidedSearchParams& params,
                                          util::Rng& rng) const;

  /// Mean advertised false-positive rate across peers (diagnostics).
  [[nodiscard]] double mean_synopsis_fpr() const;

 private:
  /// Charges one synopsis push to every neighbor of `peer`.
  void charge_advertisement(NodeId peer) noexcept;

  const Graph* graph_;
  const PeerStore* store_;
  SynopsisParams params_;
  SynopsisPolicy policy_;
  std::vector<ContentSynopsis> synopses_;
  std::uint64_t synopses_built_ = 0;
  std::uint64_t advertisement_bytes_ = 0;
};

}  // namespace qcp2p::core
