#include "src/gnutella/servent.hpp"

#include <algorithm>

namespace qcp2p::gnutella {

Servent::Servent(NodeId self, const sim::PeerStore* store,
                 std::vector<NodeId> neighbors)
    : self_(self), store_(store), neighbors_(std::move(neighbors)) {}

bool Servent::add_neighbor(NodeId peer) {
  if (peer == self_ ||
      std::find(neighbors_.begin(), neighbors_.end(), peer) !=
          neighbors_.end()) {
    return false;
  }
  neighbors_.push_back(peer);
  return true;
}

bool Servent::remove_neighbor(NodeId peer) {
  const auto it = std::find(neighbors_.begin(), neighbors_.end(), peer);
  if (it == neighbors_.end()) return false;
  neighbors_.erase(it);
  return true;
}

void Servent::reset() {
  route_table_.clear();
  route_order_.clear();
  route_order_head_ = 0;
}

void Servent::expire_routes(std::size_t max_entries) {
  while (route_table_.size() > max_entries &&
         route_order_head_ < route_order_.size()) {
    route_table_.erase(route_order_[route_order_head_++]);
  }
  // Compact the order log when the dead prefix dominates.
  if (route_order_head_ > route_order_.size() / 2) {
    route_order_.erase(route_order_.begin(),
                       route_order_.begin() +
                           static_cast<std::ptrdiff_t>(route_order_head_));
    route_order_head_ = 0;
  }
}

Guid Servent::originate_query(std::vector<TermId> terms, std::uint8_t ttl,
                              util::Rng& rng, const SendFn& send) {
  Descriptor d;
  d.header.guid = Guid::make(rng);
  d.header.type = DescriptorType::kQuery;
  d.header.ttl = ttl;
  d.header.hops = 0;
  d.query.terms = std::move(terms);
  route_table_.emplace(d.header.guid, kSelf);  // hits come home to us
  route_order_.push_back(d.header.guid);
  if (ttl > 0) forward(d, kSelf, send);
  return d.header.guid;
}

Guid Servent::originate_ping(std::uint8_t ttl, util::Rng& rng,
                             const SendFn& send) {
  Descriptor d;
  d.header.guid = Guid::make(rng);
  d.header.type = DescriptorType::kPing;
  d.header.ttl = ttl;
  d.header.hops = 0;
  route_table_.emplace(d.header.guid, kSelf);
  route_order_.push_back(d.header.guid);
  if (ttl > 0) forward(d, kSelf, send);
  return d.header.guid;
}

void Servent::forward(const Descriptor& descriptor, NodeId except,
                      const SendFn& send) {
  for (NodeId nbr : neighbors_) {
    if (nbr == except) continue;
    send(nbr, descriptor);
  }
}

void Servent::route_back(const Descriptor& descriptor, const SendFn& send,
                         const HitFn& on_hit) {
  const auto it = route_table_.find(descriptor.header.guid);
  if (it == route_table_.end()) return;  // route expired/unknown: drop
  if (it->second == kSelf) {
    on_hit(descriptor);  // we originated the request
    return;
  }
  send(it->second, descriptor);
}

void Servent::handle(NodeId from, const Descriptor& descriptor,
                     const SendFn& send, const HitFn& on_hit,
                     const MatchFn& match) {
  ++seen_count_;
  const Header& h = descriptor.header;

  switch (h.type) {
    case DescriptorType::kPing:
    case DescriptorType::kQuery: {
      // Duplicate suppression by GUID (spec: drop, do not re-forward).
      if (route_table_.count(h.guid)) {
        ++duplicates_;
        return;
      }
      route_table_.emplace(h.guid, from);
      route_order_.push_back(h.guid);

      if (h.type == DescriptorType::kQuery) {
        // Local match -> QUERY_HIT routed back toward the originator.
        const auto matches =
            match ? match(self_, descriptor.query.terms)
                  : (store_ != nullptr
                         ? store_->match(self_, descriptor.query.terms)
                         : std::vector<std::uint64_t>{});
        if (!matches.empty()) {
          Descriptor hit;
          hit.header.guid = h.guid;  // hits reuse the query GUID for routing
          hit.header.type = DescriptorType::kQueryHit;
          hit.header.ttl = static_cast<std::uint8_t>(h.hops + 1);
          hit.header.hops = 0;
          hit.hit.responder = self_;
          hit.hit.object_ids = matches;
          send(from, hit);
        }
      } else {
        // PONG back toward the pinger with our library size.
        Descriptor pong;
        pong.header.guid = h.guid;
        pong.header.type = DescriptorType::kPong;
        pong.header.ttl = static_cast<std::uint8_t>(h.hops + 1);
        pong.header.hops = 0;
        pong.pong.responder = self_;
        pong.pong.shared_files =
            store_ != nullptr
                ? static_cast<std::uint32_t>(store_->objects(self_).size())
                : 0;
        send(from, pong);
      }

      // Forward with decremented TTL.
      if (h.ttl > 1) {
        Descriptor relay = descriptor;
        --relay.header.ttl;
        ++relay.header.hops;
        forward(relay, from, send);
      }
      return;
    }

    case DescriptorType::kQueryHit:
    case DescriptorType::kPong: {
      Descriptor relay = descriptor;
      ++relay.header.hops;
      route_back(relay, send, on_hit);
      return;
    }
  }
}

}  // namespace qcp2p::gnutella
