// Latency-aware Gnutella network: servents wired over an overlay graph,
// message delivery through the discrete-event kernel, per-link latency.
//
// This is the protocol-faithful counterpart of sim::flood_search: same
// reach semantics (tests assert the equivalence), plus reverse-path
// QUERY_HIT delivery and wall-clock timing — so experiments can report
// time-to-first-result, which message counts alone cannot give.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/des/simulator.hpp"
#include "src/gnutella/servent.hpp"
#include "src/overlay/graph.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/timing.hpp"

namespace qcp2p::gnutella {

struct NetworkParams {
  /// Per-hop link latency range (uniform), seconds. Gnutella links are
  /// TCP paths across the wide area: tens to low hundreds of ms.
  double min_link_latency_s = 0.02;
  double max_link_latency_s = 0.20;
  std::uint64_t seed = 5;
};

struct QueryOutcome {
  Guid guid;
  /// Hits in arrival order with wall-clock receive times.
  struct Hit {
    des::Time at = 0.0;
    NodeId responder = 0;
    std::size_t objects = 0;
    /// Matched object ids (empty sentinel id in locate mode).
    std::vector<std::uint64_t> object_ids;
  };
  std::vector<Hit> hits;
  std::uint64_t messages = 0;  // all descriptor transmissions, any type
  /// Servents that evaluated the query against their content (options
  /// path only: counting needs the network-installed matcher).
  std::uint64_t peers_evaluated = 0;
  /// DES events executed. Per-query under the options path (which
  /// rewinds the world); cumulative under the legacy 3-arg query().
  std::uint64_t events = 0;
  std::optional<des::Time> first_hit() const {
    return hits.empty() ? std::nullopt : std::optional(hits.front().at);
  }
};

struct PingOutcome {
  Guid guid;
  /// Distinct responders discovered via PONGs, with library sizes.
  std::vector<PongPayload> pongs;
  std::uint64_t messages = 0;
};

class GnutellaNetwork {
 public:
  /// Wires one servent per graph node over the shared content store.
  GnutellaNetwork(const overlay::Graph& graph, const sim::PeerStore& store,
                  const NetworkParams& params = {});

  /// Same, with a nullable store (locate-only workloads supply holders
  /// per query) and the engine layer's shared timing parameters.
  GnutellaNetwork(const overlay::Graph& graph, const sim::PeerStore* store,
                  const sim::TimingParams& timing);

  /// Issues a query and runs the simulation to quiescence. The clock is
  /// cumulative across calls (successive queries run later in simulated
  /// time) — the per-query-clock path is the QueryOptions overload.
  [[nodiscard]] QueryOutcome query(NodeId source,
                                   std::vector<TermId> terms,
                                   std::uint8_t ttl);

  /// Per-query knobs of the engine-layer overload below.
  struct QueryOptions {
    /// Fault stream: each transmission charges one message index (drop
    /// decides delivery, jitter is added to that link's latency).
    sim::FaultSession* faults = nullptr;
    /// Liveness mask: offline peers neither receive nor relay.
    const std::vector<bool>* online = nullptr;
    /// Sorted holder ids — non-empty switches matching to locate mode
    /// (a holder answers every query; terms are ignored).
    std::span<const sim::NodeId> holders{};
    /// GUID source; the network's own rng when null.
    util::Rng* rng = nullptr;
  };

  /// Engine-layer query: REWINDS the world first (clock to 0, touched
  /// servents' routing state cleared) so outcomes are a pure function of
  /// (world, query, options) — the determinism the TrialRunner sharding
  /// contract needs — then injects faults/liveness per `opts`.
  [[nodiscard]] QueryOutcome query(NodeId source, std::vector<TermId> terms,
                                   std::uint8_t ttl,
                                   const QueryOptions& opts);

  /// Issues a ping sweep (crawler discovery) and runs to quiescence.
  [[nodiscard]] PingOutcome ping(NodeId source, std::uint8_t ttl);

  [[nodiscard]] const Servent& servent(NodeId v) const {
    return servents_.at(v);
  }
  [[nodiscard]] des::Time now() const noexcept { return sim_.now(); }

 private:
  void deliver(NodeId from, NodeId to, const Descriptor& descriptor);
  /// Marks a servent as holding routing state from the current query.
  void touch(NodeId v);
  /// Clock to 0, touched servents reset — O(servents touched).
  void rewind();

  const overlay::Graph* graph_;
  const sim::PeerStore* store_;
  sim::TimingModel timing_;
  des::Simulator sim_;
  std::vector<Servent> servents_;
  util::Rng rng_;

  // Per-query collection state (reset by query()/ping()).
  QueryOutcome* active_query_ = nullptr;
  PingOutcome* active_ping_ = nullptr;
  std::uint64_t messages_ = 0;
  std::uint64_t peers_evaluated_ = 0;
  sim::FaultSession* faults_ = nullptr;
  const std::vector<bool>* online_ = nullptr;
  Servent::MatchFn match_;
  std::vector<NodeId> touched_;
  std::vector<char> touched_mark_;
};

}  // namespace qcp2p::gnutella
