// Latency-aware Gnutella network: servents wired over an overlay graph,
// message delivery through the discrete-event kernel, per-link latency.
//
// This is the protocol-faithful counterpart of sim::flood_search: same
// reach semantics (tests assert the equivalence), plus reverse-path
// QUERY_HIT delivery and wall-clock timing — so experiments can report
// time-to-first-result, which message counts alone cannot give.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/des/simulator.hpp"
#include "src/gnutella/servent.hpp"
#include "src/overlay/graph.hpp"

namespace qcp2p::gnutella {

struct NetworkParams {
  /// Per-hop link latency range (uniform), seconds. Gnutella links are
  /// TCP paths across the wide area: tens to low hundreds of ms.
  double min_link_latency_s = 0.02;
  double max_link_latency_s = 0.20;
  std::uint64_t seed = 5;
};

struct QueryOutcome {
  Guid guid;
  /// Hits in arrival order with wall-clock receive times.
  struct Hit {
    des::Time at = 0.0;
    NodeId responder = 0;
    std::size_t objects = 0;
  };
  std::vector<Hit> hits;
  std::uint64_t messages = 0;  // all descriptor transmissions, any type
  std::optional<des::Time> first_hit() const {
    return hits.empty() ? std::nullopt : std::optional(hits.front().at);
  }
};

struct PingOutcome {
  Guid guid;
  /// Distinct responders discovered via PONGs, with library sizes.
  std::vector<PongPayload> pongs;
  std::uint64_t messages = 0;
};

class GnutellaNetwork {
 public:
  /// Wires one servent per graph node over the shared content store.
  GnutellaNetwork(const overlay::Graph& graph, const sim::PeerStore& store,
                  const NetworkParams& params = {});

  /// Issues a query and runs the simulation to quiescence.
  [[nodiscard]] QueryOutcome query(NodeId source,
                                   std::vector<TermId> terms,
                                   std::uint8_t ttl);

  /// Issues a ping sweep (crawler discovery) and runs to quiescence.
  [[nodiscard]] PingOutcome ping(NodeId source, std::uint8_t ttl);

  [[nodiscard]] const Servent& servent(NodeId v) const {
    return servents_.at(v);
  }
  [[nodiscard]] des::Time now() const noexcept { return sim_.now(); }

 private:
  /// Latency of the (u, v) link; symmetric, deterministic per edge.
  [[nodiscard]] double link_latency(NodeId u, NodeId v) const noexcept;
  void deliver(NodeId from, NodeId to, const Descriptor& descriptor);

  const overlay::Graph* graph_;
  NetworkParams params_;
  des::Simulator sim_;
  std::vector<Servent> servents_;
  util::Rng rng_;

  // Per-query collection state (reset by query()/ping()).
  QueryOutcome* active_query_ = nullptr;
  PingOutcome* active_ping_ = nullptr;
  std::uint64_t messages_ = 0;
};

}  // namespace qcp2p::gnutella
