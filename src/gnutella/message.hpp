// Gnutella 0.6 protocol descriptors (the wire model behind the paper's
// measurements: their query trace is captured Phex QUERY descriptors).
//
// Faithful to the spec where it matters for simulation semantics:
//   * every descriptor carries a 16-byte GUID; servents drop duplicates
//     and remember which neighbor a GUID arrived from;
//   * TTL decrements per forward, hops increments; TTL 0 stops;
//   * QUERY_HIT descriptors are routed BACK along the reverse query path
//     (not flooded), using the remembered GUID origin.
#pragma once

#include <cstdint>
#include <vector>

#include "src/text/vocabulary.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::gnutella {

using NodeId = std::uint32_t;
using text::TermId;

/// 16-byte globally unique descriptor id.
struct Guid {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] static Guid make(util::Rng& rng) noexcept {
    return Guid{rng(), rng()};
  }
  friend bool operator==(const Guid&, const Guid&) = default;
};

struct GuidHash {
  [[nodiscard]] std::size_t operator()(const Guid& g) const noexcept {
    return static_cast<std::size_t>(util::mix64(g.hi ^ (g.lo * 0x9E3779B97F4A7C15ULL)));
  }
};

enum class DescriptorType : std::uint8_t {
  kPing = 0x00,
  kPong = 0x01,
  kQuery = 0x80,
  kQueryHit = 0x81,
};

struct Header {
  Guid guid;
  DescriptorType type = DescriptorType::kPing;
  std::uint8_t ttl = 7;
  std::uint8_t hops = 0;
};

/// QUERY payload: conjunctive search terms (Gnutella sends the raw
/// string; servents tokenize — we carry interned term ids).
struct QueryPayload {
  std::vector<TermId> terms;
};

/// QUERY_HIT payload: responding servent and its matching objects.
struct QueryHitPayload {
  NodeId responder = 0;
  std::vector<std::uint64_t> object_ids;
};

/// PONG payload: the responding servent and its library size (crawlers
/// use these to enumerate the network).
struct PongPayload {
  NodeId responder = 0;
  std::uint32_t shared_files = 0;
};

struct Descriptor {
  Header header;
  QueryPayload query;        // valid when type == kQuery
  QueryHitPayload hit;       // valid when type == kQueryHit
  PongPayload pong;          // valid when type == kPong
};

}  // namespace qcp2p::gnutella
