// A Gnutella servent (peer) state machine: GUID duplicate suppression,
// reverse-path routing state, local content matching, and the standard
// PING/PONG/QUERY/QUERY_HIT handling rules.
//
// The servent is transport-agnostic: it receives descriptors through
// handle() and emits sends through a caller-provided sink, so the same
// logic runs under the synchronous tests and the latency-aware
// GnutellaNetwork simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/gnutella/message.hpp"
#include "src/sim/network.hpp"

namespace qcp2p::gnutella {

class Servent {
 public:
  /// Sink invoked for each outgoing descriptor: (to, descriptor).
  using SendFn = std::function<void(NodeId, const Descriptor&)>;
  /// Callback when a QUERY_HIT reaches the query's originator.
  using HitFn = std::function<void(const Descriptor&)>;
  /// Optional content matcher overriding the store: returns the object
  /// ids node `self` answers the terms with. Lets one servent network
  /// serve both content search and holder-placement (locate) workloads.
  using MatchFn = std::function<std::vector<std::uint64_t>(
      NodeId self, const std::vector<TermId>& terms)>;

  /// @param store  shared content store; `self` indexes into it. May be
  ///               null when every query supplies a MatchFn.
  Servent(NodeId self, const sim::PeerStore* store,
          std::vector<NodeId> neighbors);

  [[nodiscard]] NodeId id() const noexcept { return self_; }
  [[nodiscard]] const std::vector<NodeId>& neighbors() const noexcept {
    return neighbors_;
  }

  /// Connection management (protocol-level churn): descriptors are only
  /// exchanged with current neighbors.
  bool add_neighbor(NodeId peer);
  bool remove_neighbor(NodeId peer);

  /// Drops routing entries beyond `max_entries`, oldest first — the
  /// bounded route table every long-running servent needs. Routes for
  /// dropped GUIDs make late hits undeliverable, exactly as in the
  /// protocol.
  void expire_routes(std::size_t max_entries);
  [[nodiscard]] std::size_t route_table_size() const noexcept {
    return route_table_.size();
  }

  /// Forgets all routing/dedup state (route table, order log, counters
  /// stay). Used between independent queries when the network rewinds
  /// its clock: a fresh query must not be suppressed by old GUIDs.
  void reset();

  /// Originates a query: floods to all neighbors with the given TTL.
  /// Returns the query's GUID (hits for it arrive via `on_hit`).
  Guid originate_query(std::vector<TermId> terms, std::uint8_t ttl,
                       util::Rng& rng, const SendFn& send);

  /// Originates a ping (crawler-style network discovery).
  Guid originate_ping(std::uint8_t ttl, util::Rng& rng, const SendFn& send);

  /// Handles a descriptor arriving from neighbor `from`. A non-empty
  /// `match` replaces the store for content matching on queries.
  void handle(NodeId from, const Descriptor& descriptor, const SendFn& send,
              const HitFn& on_hit, const MatchFn& match = {});

  // Statistics.
  [[nodiscard]] std::uint64_t descriptors_seen() const noexcept {
    return seen_count_;
  }
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return duplicates_;
  }

 private:
  void forward(const Descriptor& descriptor, NodeId except,
               const SendFn& send);
  /// Routes a hit/pong one step back toward the originator.
  void route_back(const Descriptor& descriptor, const SendFn& send,
                  const HitFn& on_hit);

  NodeId self_;
  const sim::PeerStore* store_;
  std::vector<NodeId> neighbors_;
  // GUID -> neighbor it first arrived from (kSelf for own descriptors).
  std::unordered_map<Guid, NodeId, GuidHash> route_table_;
  // Insertion order of GUIDs, for expiry (oldest first).
  std::vector<Guid> route_order_;
  std::size_t route_order_head_ = 0;
  std::uint64_t seen_count_ = 0;
  std::uint64_t duplicates_ = 0;

  static constexpr NodeId kSelf = ~NodeId{0};
};

}  // namespace qcp2p::gnutella
