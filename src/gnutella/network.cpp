#include "src/gnutella/network.hpp"

#include <algorithm>

namespace qcp2p::gnutella {

GnutellaNetwork::GnutellaNetwork(const overlay::Graph& graph,
                                 const sim::PeerStore& store,
                                 const NetworkParams& params)
    : graph_(&graph), params_(params), rng_(util::mix64(params.seed)) {
  servents_.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto nbrs = graph.neighbors(v);
    servents_.emplace_back(v, &store,
                           std::vector<NodeId>(nbrs.begin(), nbrs.end()));
  }
}

double GnutellaNetwork::link_latency(NodeId u, NodeId v) const noexcept {
  // Deterministic symmetric latency: hash the unordered edge.
  const std::uint64_t a = std::min(u, v);
  const std::uint64_t b = std::max(u, v);
  const std::uint64_t h = util::mix64(params_.seed ^ (a << 32) ^ b);
  const double frac =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0,1)
  return params_.min_link_latency_s +
         frac * (params_.max_link_latency_s - params_.min_link_latency_s);
}

void GnutellaNetwork::deliver(NodeId from, NodeId to,
                              const Descriptor& descriptor) {
  ++messages_;
  sim_.schedule(link_latency(from, to), [this, from, to, descriptor] {
    const Servent::SendFn send = [this, to](NodeId next,
                                            const Descriptor& d) {
      deliver(to, next, d);
    };
    const Servent::HitFn on_hit = [this](const Descriptor& d) {
      if (d.header.type == DescriptorType::kQueryHit &&
          active_query_ != nullptr) {
        active_query_->hits.push_back(QueryOutcome::Hit{
            sim_.now(), d.hit.responder, d.hit.object_ids.size()});
      } else if (d.header.type == DescriptorType::kPong &&
                 active_ping_ != nullptr) {
        active_ping_->pongs.push_back(d.pong);
      }
    };
    servents_[to].handle(from, descriptor, send, on_hit);
  });
}

QueryOutcome GnutellaNetwork::query(NodeId source, std::vector<TermId> terms,
                                    std::uint8_t ttl) {
  QueryOutcome outcome;
  active_query_ = &outcome;
  messages_ = 0;

  const Servent::SendFn send = [this, source](NodeId next,
                                              const Descriptor& d) {
    deliver(source, next, d);
  };
  outcome.guid = servents_[source].originate_query(std::move(terms), ttl,
                                                   rng_, send);
  sim_.run();
  outcome.messages = messages_;
  active_query_ = nullptr;
  return outcome;
}

PingOutcome GnutellaNetwork::ping(NodeId source, std::uint8_t ttl) {
  PingOutcome outcome;
  active_ping_ = &outcome;
  messages_ = 0;

  const Servent::SendFn send = [this, source](NodeId next,
                                              const Descriptor& d) {
    deliver(source, next, d);
  };
  outcome.guid = servents_[source].originate_ping(ttl, rng_, send);
  sim_.run();
  outcome.messages = messages_;
  active_ping_ = nullptr;

  // Distinct responders only (multiple PONG copies can arrive when the
  // pong is generated before the duplicate-suppressed query copies die).
  std::sort(outcome.pongs.begin(), outcome.pongs.end(),
            [](const PongPayload& a, const PongPayload& b) {
              return a.responder < b.responder;
            });
  outcome.pongs.erase(
      std::unique(outcome.pongs.begin(), outcome.pongs.end(),
                  [](const PongPayload& a, const PongPayload& b) {
                    return a.responder == b.responder;
                  }),
      outcome.pongs.end());
  return outcome;
}

}  // namespace qcp2p::gnutella
