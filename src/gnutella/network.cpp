#include "src/gnutella/network.hpp"

#include <algorithm>

namespace qcp2p::gnutella {

GnutellaNetwork::GnutellaNetwork(const overlay::Graph& graph,
                                 const sim::PeerStore& store,
                                 const NetworkParams& params)
    : GnutellaNetwork(graph, &store,
                      sim::TimingParams{params.min_link_latency_s,
                                        params.max_link_latency_s,
                                        params.seed}) {}

GnutellaNetwork::GnutellaNetwork(const overlay::Graph& graph,
                                 const sim::PeerStore* store,
                                 const sim::TimingParams& timing)
    : graph_(&graph),
      store_(store),
      timing_(timing),
      rng_(util::mix64(timing.seed)) {
  servents_.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const auto nbrs = graph.neighbors(v);
    servents_.emplace_back(v, store,
                           std::vector<NodeId>(nbrs.begin(), nbrs.end()));
  }
  touched_mark_.assign(graph.num_nodes(), 0);
}

void GnutellaNetwork::touch(NodeId v) {
  if (touched_mark_[v]) return;
  touched_mark_[v] = 1;
  touched_.push_back(v);
}

void GnutellaNetwork::rewind() {
  sim_.reset();
  for (NodeId v : touched_) {
    servents_[v].reset();
    touched_mark_[v] = 0;
  }
  touched_.clear();
}

void GnutellaNetwork::deliver(NodeId from, NodeId to,
                              const Descriptor& descriptor) {
  // Circuit breaker: the sender stops forwarding to a neighbor the
  // session has seen fail repeatedly — no send, no message charged.
  if (faults_ != nullptr && faults_->tripped(to)) return;
  ++messages_;  // the bits left the sender, delivered or not
  double latency = timing_.link_latency(from, to);
  if (faults_ != nullptr) {
    double extra_ms = 0.0;
    if (!faults_->deliver_wire(from, to, extra_ms)) return;  // lost in flight
    // Straggler receivers slow the whole incoming wire, jitter included
    // (deliver_wire already scaled the jitter component).
    latency = latency * faults_->straggler_scale(to) + extra_ms / 1000.0;
    faults_->observe_latency(latency * 1000.0);
    if (!faults_->online(to)) return;  // dead (or crashed mid-query) peer
  } else if (online_ != nullptr && !(*online_)[to]) {
    return;  // dead peer
  }
  touch(to);
  sim_.schedule(latency, [this, from, to, descriptor] {
    const Servent::SendFn send = [this, to](NodeId next,
                                            const Descriptor& d) {
      deliver(to, next, d);
    };
    const Servent::HitFn on_hit = [this](const Descriptor& d) {
      if (d.header.type == DescriptorType::kQueryHit &&
          active_query_ != nullptr) {
        active_query_->hits.push_back(QueryOutcome::Hit{
            sim_.now(), d.hit.responder, d.hit.object_ids.size(),
            d.hit.object_ids});
      } else if (d.header.type == DescriptorType::kPong &&
                 active_ping_ != nullptr) {
        active_ping_->pongs.push_back(d.pong);
      }
    };
    servents_[to].handle(from, descriptor, send, on_hit, match_);
  });
}

QueryOutcome GnutellaNetwork::query(NodeId source, std::vector<TermId> terms,
                                    std::uint8_t ttl) {
  QueryOutcome outcome;
  active_query_ = &outcome;
  messages_ = 0;

  const Servent::SendFn send = [this, source](NodeId next,
                                              const Descriptor& d) {
    deliver(source, next, d);
  };
  outcome.guid = servents_[source].originate_query(std::move(terms), ttl,
                                                   rng_, send);
  sim_.run();
  outcome.messages = messages_;
  outcome.events = sim_.executed();  // cumulative on this legacy path
  active_query_ = nullptr;
  return outcome;
}

QueryOutcome GnutellaNetwork::query(NodeId source, std::vector<TermId> terms,
                                    std::uint8_t ttl,
                                    const QueryOptions& opts) {
  rewind();
  faults_ = opts.faults;
  online_ = opts.online;
  peers_evaluated_ = 0;
  if (!opts.holders.empty()) {
    match_ = [this, holders = opts.holders](
                 NodeId self,
                 const std::vector<TermId>&) -> std::vector<std::uint64_t> {
      ++peers_evaluated_;
      if (std::binary_search(holders.begin(), holders.end(), self)) {
        return {static_cast<std::uint64_t>(self)};
      }
      return {};
    };
  } else {
    match_ = [this](NodeId self, const std::vector<TermId>& query_terms) {
      ++peers_evaluated_;
      return store_ != nullptr ? store_->match(self, query_terms)
                               : std::vector<std::uint64_t>{};
    };
  }

  QueryOutcome outcome;
  active_query_ = &outcome;
  messages_ = 0;
  touch(source);  // originate_query seeds the source's route table

  util::Rng& rng = opts.rng != nullptr ? *opts.rng : rng_;
  const Servent::SendFn send = [this, source](NodeId next,
                                              const Descriptor& d) {
    deliver(source, next, d);
  };
  outcome.guid =
      servents_[source].originate_query(std::move(terms), ttl, rng, send);
  sim_.run();
  outcome.messages = messages_;
  outcome.peers_evaluated = peers_evaluated_;
  outcome.events = sim_.executed();  // per-query: rewind() zeroed it
  active_query_ = nullptr;
  faults_ = nullptr;
  online_ = nullptr;
  match_ = {};
  return outcome;
}

PingOutcome GnutellaNetwork::ping(NodeId source, std::uint8_t ttl) {
  PingOutcome outcome;
  active_ping_ = &outcome;
  messages_ = 0;

  const Servent::SendFn send = [this, source](NodeId next,
                                              const Descriptor& d) {
    deliver(source, next, d);
  };
  outcome.guid = servents_[source].originate_ping(ttl, rng_, send);
  sim_.run();
  outcome.messages = messages_;
  active_ping_ = nullptr;

  // Distinct responders only (multiple PONG copies can arrive when the
  // pong is generated before the duplicate-suppressed query copies die).
  std::sort(outcome.pongs.begin(), outcome.pongs.end(),
            [](const PongPayload& a, const PongPayload& b) {
              return a.responder < b.responder;
            });
  outcome.pongs.erase(
      std::unique(outcome.pongs.begin(), outcome.pongs.end(),
                  [](const PongPayload& a, const PongPayload& b) {
                    return a.responder == b.responder;
                  }),
      outcome.pongs.end());
  return outcome;
}

}  // namespace qcp2p::gnutella
