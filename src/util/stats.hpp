// Descriptive statistics, CCDFs, rank-frequency curves and Zipf-exponent
// estimation. These back every analysis in src/analysis/ and the
// paper-vs-measured tables printed by the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace qcp2p::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel reduction step).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-th quantile (q in [0,1]) by linear interpolation; copies + sorts.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// One (x, y) point of an empirical curve.
struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

/// Rank-frequency curve from a multiset of per-item counts:
/// y = count of the rank-x most frequent item (both axes suited to log-log).
[[nodiscard]] std::vector<CurvePoint> rank_frequency(
    std::span<const std::uint64_t> counts);

/// Complementary CDF over item counts: for each distinct count c,
/// fraction of items whose count is >= c.
[[nodiscard]] std::vector<CurvePoint> ccdf(std::span<const std::uint64_t> counts);

/// Least-squares fit of log(y) = a - s * log(x) over a rank-frequency
/// curve; returns the Zipf exponent estimate s and R^2 of the fit.
struct ZipfFit {
  double exponent = 0.0;
  double intercept = 0.0;  // a, i.e. log(count at rank 1)
  double r_squared = 0.0;
};

/// @param max_rank  fit only ranks <= max_rank (0 = all); the long-tail
///                  plateau of singletons otherwise biases the slope.
[[nodiscard]] ZipfFit fit_zipf(std::span<const CurvePoint> rank_freq,
                               std::size_t max_rank = 0);

/// Fraction of items (by count vector) whose count is exactly 1.
[[nodiscard]] double singleton_fraction(std::span<const std::uint64_t> counts);

/// Fraction of items whose count is <= threshold.
[[nodiscard]] double fraction_at_or_below(std::span<const std::uint64_t> counts,
                                          std::uint64_t threshold);

/// Fraction of items whose count is >= threshold.
[[nodiscard]] double fraction_at_or_above(std::span<const std::uint64_t> counts,
                                          std::uint64_t threshold);

}  // namespace qcp2p::util
