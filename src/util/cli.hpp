// Tiny command-line flag parser shared by benches and examples.
// Supports --name value, --name=value and bare boolean --name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qcp2p::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace qcp2p::util
