#include "src/util/arena.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace qcp2p::util {

void Arena::align_to(std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("Arena: alignment must be a power of two");
  }
  const std::size_t rem = buf_.size() & (align - 1);
  if (rem != 0) buf_.resize(buf_.size() + (align - rem), std::byte{0});
}

std::size_t Arena::append(const void* data, std::size_t bytes,
                          std::size_t align) {
  align_to(align);
  const std::size_t offset = buf_.size();
  if (bytes != 0) {
    buf_.resize(offset + bytes);
    std::memcpy(buf_.data() + offset, data, bytes);
  }
  return offset;
}

void Arena::patch(std::size_t offset, const void* data, std::size_t bytes) {
  if (offset + bytes > buf_.size()) {
    throw std::out_of_range("Arena::patch: range outside buffer");
  }
  std::memcpy(buf_.data() + offset, data, bytes);
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    throw std::runtime_error("MappedFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("MappedFile: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw std::runtime_error("MappedFile: empty file " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    throw std::runtime_error("MappedFile: mmap failed for " + path + ": " +
                             std::strerror(errno));
  }
  MappedFile f;
  f.addr_ = addr;
  f.size_ = size;
  return f;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    throw std::runtime_error("write_file: cannot create " + path + ": " +
                             std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("write_file: write failed for " + path + ": " +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) {
    throw std::runtime_error("write_file: close failed for " + path);
  }
}

}  // namespace qcp2p::util
