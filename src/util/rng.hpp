// Deterministic, fast pseudo-random number generation.
//
// All stochastic components in qcp2p (trace generators, topology builders,
// search simulators) take an explicit Rng so that every experiment is
// reproducible from a single seed. We use xoshiro256** (Blackman & Vigna),
// seeded via splitmix64, instead of std::mt19937_64: it is ~2x faster,
// has a tiny state (32 bytes) that copies cheaply into per-thread streams,
// and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qcp2p::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash-to-u64.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a single 64-bit value (e.g. for hashing ids).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through splitmix64 so that nearby seeds
  /// yield statistically independent streams.
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  [[nodiscard]] constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply-shift; rejection keeps the result exactly uniform.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent child stream (for per-thread / per-peer use).
  [[nodiscard]] constexpr Rng split() noexcept {
    return Rng((*this)() ^ 0xA3EC647659359ACDULL);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qcp2p::util
