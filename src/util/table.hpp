// Aligned ASCII tables and CSV emission for the benchmark harnesses.
// Every fig*/exp* binary prints a "paper vs measured" table through this.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace qcp2p::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision so rows line up.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; returns the row index.
  std::size_t add_row();

  /// Appends a cell to the last row (adds a row if none exists).
  Table& cell(std::string value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  /// Percent helper: formats value*100 with a trailing '%'.
  Table& percent(double fraction, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

  /// Formats a double with fixed precision (shared helper).
  [[nodiscard]] static std::string format(double value, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner:  == title ==
void print_banner(std::ostream& os, const std::string& title);

}  // namespace qcp2p::util
