#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace qcp2p::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<CurvePoint> rank_frequency(std::span<const std::uint64_t> counts) {
  std::vector<std::uint64_t> sorted(counts.begin(), counts.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<CurvePoint> curve;
  curve.reserve(sorted.size());
  for (std::size_t rank = 0; rank < sorted.size(); ++rank) {
    curve.push_back({static_cast<double>(rank + 1),
                     static_cast<double>(sorted[rank])});
  }
  return curve;
}

std::vector<CurvePoint> ccdf(std::span<const std::uint64_t> counts) {
  if (counts.empty()) return {};
  std::map<std::uint64_t, std::size_t> freq;
  for (std::uint64_t c : counts) ++freq[c];
  std::vector<CurvePoint> curve;
  curve.reserve(freq.size());
  std::size_t at_or_above = counts.size();
  const double total = static_cast<double>(counts.size());
  for (const auto& [value, n] : freq) {
    curve.push_back({static_cast<double>(value),
                     static_cast<double>(at_or_above) / total});
    at_or_above -= n;
  }
  return curve;
}

ZipfFit fit_zipf(std::span<const CurvePoint> rank_freq, std::size_t max_rank) {
  ZipfFit fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  std::size_t n = 0;
  for (const CurvePoint& p : rank_freq) {
    if (max_rank != 0 && p.x > static_cast<double>(max_rank)) break;
    if (p.x <= 0.0 || p.y <= 0.0) continue;
    const double lx = std::log(p.x);
    const double ly = std::log(p.y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
    ++n;
  }
  if (n < 2) return fit;
  const double nd = static_cast<double>(n);
  const double denom = nd * sxx - sx * sx;
  if (denom == 0.0) return fit;
  const double slope = (nd * sxy - sx * sy) / denom;
  fit.exponent = -slope;
  fit.intercept = (sy - slope * sx) / nd;
  const double ss_tot = syy - sy * sy / nd;
  const double ss_res = ss_tot - slope * (sxy - sx * sy / nd);
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double singleton_fraction(std::span<const std::uint64_t> counts) {
  if (counts.empty()) return 0.0;
  std::size_t ones = 0;
  for (std::uint64_t c : counts) ones += (c == 1);
  return static_cast<double>(ones) / static_cast<double>(counts.size());
}

double fraction_at_or_below(std::span<const std::uint64_t> counts,
                            std::uint64_t threshold) {
  if (counts.empty()) return 0.0;
  std::size_t k = 0;
  for (std::uint64_t c : counts) k += (c <= threshold);
  return static_cast<double>(k) / static_cast<double>(counts.size());
}

double fraction_at_or_above(std::span<const std::uint64_t> counts,
                            std::uint64_t threshold) {
  if (counts.empty()) return 0.0;
  std::size_t k = 0;
  for (std::uint64_t c : counts) k += (c >= threshold);
  return static_cast<double>(k) / static_cast<double>(counts.size());
}

}  // namespace qcp2p::util
