// Log-binned histogram for long-tailed count data: the natural summary
// for replica-count and result-count distributions whose values span
// five orders of magnitude (linear bins would put everything in bin 0).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace qcp2p::util {

class LogHistogram {
 public:
  /// Bins: [0], [1], [2,3], [4,7], [8,15], ... doubling up to 2^63.
  LogHistogram();

  void add(std::uint64_t value) noexcept;
  void add_all(std::span<const std::uint64_t> values) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  struct Bin {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // inclusive
    std::uint64_t count = 0;
    double fraction = 0.0;
  };
  /// Non-empty bins in increasing value order.
  [[nodiscard]] std::vector<Bin> bins() const;

  /// "lo-hi" or "v" label for a bin, for table output.
  [[nodiscard]] static std::string label(const Bin& bin);

  /// Renders "label count fraction" rows.
  void print(std::ostream& os) const;

 private:
  [[nodiscard]] static std::size_t bin_index(std::uint64_t value) noexcept;

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace qcp2p::util
