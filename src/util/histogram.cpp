#include "src/util/histogram.hpp"

#include <bit>
#include <iomanip>
#include <ostream>

namespace qcp2p::util {

LogHistogram::LogHistogram() : counts_(66, 0) {}

std::size_t LogHistogram::bin_index(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  // Bin b >= 1 holds [2^(b-1), 2^b - 1].
  return static_cast<std::size_t>(std::bit_width(value));
}

void LogHistogram::add(std::uint64_t value) noexcept {
  ++counts_[bin_index(value)];
  ++total_;
}

void LogHistogram::add_all(std::span<const std::uint64_t> values) noexcept {
  for (std::uint64_t v : values) add(v);
}

std::vector<LogHistogram::Bin> LogHistogram::bins() const {
  std::vector<Bin> out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    Bin bin;
    if (b == 0) {
      bin.lo = bin.hi = 0;
    } else {
      bin.lo = 1ULL << (b - 1);
      bin.hi = (b >= 64) ? ~0ULL : (1ULL << b) - 1;
    }
    bin.count = counts_[b];
    bin.fraction = total_ == 0 ? 0.0
                               : static_cast<double>(counts_[b]) /
                                     static_cast<double>(total_);
    out.push_back(bin);
  }
  return out;
}

std::string LogHistogram::label(const Bin& bin) {
  if (bin.lo == bin.hi) return std::to_string(bin.lo);
  return std::to_string(bin.lo) + "-" + std::to_string(bin.hi);
}

void LogHistogram::print(std::ostream& os) const {
  for (const Bin& bin : bins()) {
    os << "  " << std::left << std::setw(16) << label(bin) << std::right
       << std::setw(12) << bin.count << "  " << std::fixed
       << std::setprecision(4) << bin.fraction * 100 << "%\n";
  }
}

}  // namespace qcp2p::util
