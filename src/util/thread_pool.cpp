#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace qcp2p::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void ThreadPool::parallel_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_blocks = std::min(n, workers_.size());
  if (num_blocks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(begin + block, n);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_blocks(std::size_t n, std::size_t num_threads,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (num_threads <= 1 || n < 2) {
    fn(0, n);
    return;
  }
  ThreadPool pool(num_threads);
  pool.parallel_blocks(n, fn);
}

}  // namespace qcp2p::util
