// Jaccard set similarity, the paper's measure for (a) stability of the
// popular-query-term set over time (Fig 6) and (b) the query-term vs
// file-term disconnect (Fig 7).
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_set>
#include <vector>

namespace qcp2p::util {

/// Jaccard(A, B) = |A ∩ B| / |A ∪ B|; 1.0 when both sets are empty
/// (identical-by-vacuity, matching the paper's "identical" endpoint).
template <typename T, typename Hash = std::hash<T>, typename Eq = std::equal_to<T>>
[[nodiscard]] double jaccard(const std::unordered_set<T, Hash, Eq>& a,
                             const std::unordered_set<T, Hash, Eq>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::size_t inter = 0;
  for (const T& x : small) inter += large.count(x);
  const std::size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Jaccard over *sorted, deduplicated* vectors — the hot-path variant used
/// when term ids are already interned and sorted.
template <typename T>
[[nodiscard]] double jaccard_sorted(const std::vector<T>& a,
                                    const std::vector<T>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Size of the intersection of two unordered sets.
template <typename T, typename Hash = std::hash<T>, typename Eq = std::equal_to<T>>
[[nodiscard]] std::size_t intersection_size(
    const std::unordered_set<T, Hash, Eq>& a,
    const std::unordered_set<T, Hash, Eq>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::size_t inter = 0;
  for (const T& x : small) inter += large.count(x);
  return inter;
}

}  // namespace qcp2p::util
