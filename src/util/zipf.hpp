// Zipf(ian) and general discrete distribution samplers.
//
// The paper's central empirical observation is that object names,
// annotation fields and query terms all follow Zipf-like long-tail
// distributions. Every trace generator in src/trace/ therefore draws
// ranks from the samplers defined here.
//
// ZipfSampler uses rejection-inversion (Hörmann & Derflinger 1996), which
// is O(1) per sample for any exponent s > 0 and any support size N --
// unlike the naive CDF table, it needs no O(N) setup and no O(N) memory,
// which matters when N is in the millions (8.1M unique Gnutella objects).
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/rng.hpp"

namespace qcp2p::util {

/// Samples ranks 1..n with P(k) proportional to 1 / k^s, s > 0, s != 1 handled.
class ZipfSampler {
 public:
  /// @param n  support size (number of distinct ranks), n >= 1.
  /// @param s  Zipf exponent; s in (0, ~5] is typical for P2P content.
  ZipfSampler(std::uint64_t n, double s);

  // The cached harmonic sum is an atomic, so copies must be spelled out;
  // they carry the cache over (it is a pure function of n and s).
  ZipfSampler(const ZipfSampler& other) noexcept;
  ZipfSampler& operator=(const ZipfSampler& other) noexcept;

  /// Draws a rank in [1, n]; rank 1 is the most popular item.
  [[nodiscard]] std::uint64_t operator()(Rng& rng) const noexcept;

  [[nodiscard]] std::uint64_t support() const noexcept { return n_; }
  [[nodiscard]] double exponent() const noexcept { return s_; }

  /// Probability mass of rank k (for tests and analytical baselines).
  [[nodiscard]] double pmf(std::uint64_t k) const noexcept;

  /// Generalized harmonic number H_{n,s} = sum_{k=1..n} k^{-s}.
  [[nodiscard]] static double harmonic(std::uint64_t n, double s) noexcept;

 private:
  [[nodiscard]] double h(double x) const noexcept;          // integral of x^-s
  [[nodiscard]] double h_inverse(double x) const noexcept;  // inverse of h

  std::uint64_t n_;
  double s_;
  double h_x1_;             // h(1.5) - 1
  double h_n_;              // h(n + 0.5)
  double threshold_;        // acceptance shortcut for rank 1
  // Harmonic sum for pmf(), cached on first use. Atomic rather than
  // eager-in-constructor: trace generators build samplers in per-track
  // inner loops and must keep O(1) setup, yet a sampler shared across
  // TrialRunner workers must allow concurrent pmf() calls. Racing
  // threads may compute it redundantly but store identical bits.
  mutable std::atomic<double> hsum_{-1.0};
};

/// Alias-method sampler over an arbitrary weight vector: O(n) build,
/// O(1) per sample. Used for empirical (measured) popularity profiles.
class DiscreteSampler {
 public:
  /// Weights need not be normalized; negatives are treated as zero.
  explicit DiscreteSampler(std::span<const double> weights);

  /// Draws an index in [0, size()).
  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;        // scaled acceptance probabilities
  std::vector<std::uint32_t> alias_;
};

/// Exact Zipf probability vector (normalized), for small n.
[[nodiscard]] std::vector<double> zipf_pmf(std::size_t n, double s);

}  // namespace qcp2p::util
