#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace qcp2p::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

std::size_t Table::add_row() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) add_row();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::percent(double fraction, int precision) {
  return cell(format(fraction * 100.0, precision) + "%");
}

std::string Table::format(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string{};
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << "  " << std::string(rule > 2 ? rule - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const std::string& v = row[c];
      if (v.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : v) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << v;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace qcp2p::util
