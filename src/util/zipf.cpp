#include "src/util/zipf.hpp"

#include <cassert>
#include <stdexcept>

namespace qcp2p::util {

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfSampler: s must be > 0");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_inverse(h(2.5) - std::pow(2.0, -s));
}

ZipfSampler::ZipfSampler(const ZipfSampler& other) noexcept
    : n_(other.n_),
      s_(other.s_),
      h_x1_(other.h_x1_),
      h_n_(other.h_n_),
      threshold_(other.threshold_),
      hsum_(other.hsum_.load(std::memory_order_relaxed)) {}

ZipfSampler& ZipfSampler::operator=(const ZipfSampler& other) noexcept {
  n_ = other.n_;
  s_ = other.s_;
  h_x1_ = other.h_x1_;
  h_n_ = other.h_n_;
  threshold_ = other.threshold_;
  hsum_.store(other.hsum_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  return *this;
}

double ZipfSampler::h(double x) const noexcept {
  // H(x) = integral of t^-s dt; log for s == 1.
  const double one_minus_s = 1.0 - s_;
  if (std::abs(one_minus_s) < 1e-12) return std::log(x);
  return std::pow(x, one_minus_s) / one_minus_s;
}

double ZipfSampler::h_inverse(double x) const noexcept {
  const double one_minus_s = 1.0 - s_;
  if (std::abs(one_minus_s) < 1e-12) return std::exp(x);
  return std::pow(one_minus_s * x, 1.0 / one_minus_s);
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const noexcept {
  if (n_ == 1) return 1;
  // Rejection-inversion over the envelope H; expected < 1.04 iterations.
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1)
      k = 1;
    else if (k > n_)
      k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= h(kd + 0.5) - std::pow(kd, -s_)) {
      return k;
    }
  }
}

double ZipfSampler::pmf(std::uint64_t k) const noexcept {
  if (k < 1 || k > n_) return 0.0;
  double sum = hsum_.load(std::memory_order_relaxed);
  if (sum < 0.0) {
    // harmonic() is a pure function of (n_, s_): concurrent first callers
    // may duplicate the work but all store the same bits.
    sum = harmonic(n_, s_);
    hsum_.store(sum, std::memory_order_relaxed);
  }
  return std::pow(static_cast<double>(k), -s_) / sum;
}

double ZipfSampler::harmonic(std::uint64_t n, double s) noexcept {
  // Sum smallest terms first to limit floating-point error.
  double sum = 0.0;
  for (std::uint64_t k = n; k >= 1; --k) {
    sum += std::pow(static_cast<double>(k), -s);
  }
  return sum;
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("DiscreteSampler: empty weights");
  prob_.resize(n);
  alias_.resize(n);

  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0)
    throw std::invalid_argument("DiscreteSampler: all weights are zero");

  // Vose's alias method.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  const double nd = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    scaled[i] = w / total * nd;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

std::size_t DiscreteSampler::operator()(Rng& rng) const noexcept {
  const std::size_t column = rng.bounded(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

std::vector<double> zipf_pmf(std::size_t n, double s) {
  std::vector<double> p(n);
  double sum = 0.0;
  for (std::size_t k = n; k >= 1; --k) {
    p[k - 1] = std::pow(static_cast<double>(k), -s);
    sum += p[k - 1];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace qcp2p::util
