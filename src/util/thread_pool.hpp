// Minimal fixed-size thread pool plus a blocked parallel_for.
//
// Used by the benches for embarrassingly parallel work: Monte-Carlo query
// trials across many source peers (Fig 8), per-interval trace analysis and
// parameter sweeps. Work is divided into contiguous blocks so each worker
// touches a disjoint cache-friendly range; per-thread Rng streams are
// derived with Rng::split() by the callers to keep results deterministic
// regardless of scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qcp2p::util {

class ThreadPool {
 public:
  /// @param num_threads 0 = hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(begin, end) over [0, n) split into roughly equal contiguous
  /// blocks, one per worker; blocks until all complete. Exceptions from
  /// workers are rethrown (first one wins).
  void parallel_blocks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience: one-shot pool-backed parallel for over index blocks.
/// fn receives (block_begin, block_end). Serial when n or threads is small.
void parallel_for_blocks(std::size_t n, std::size_t num_threads,
                         const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace qcp2p::util
