// Flat-blob building blocks for relocatable world snapshots.
//
// Arena is a bump allocator over one contiguous byte buffer: callers
// append aligned typed arrays and get back byte offsets instead of
// pointers, so the finished buffer contains no addresses and can be
// written to disk and memory-mapped anywhere (the offset-based layout
// contract WorldSnapshot relies on). MappedFile is the read side: an
// RAII read-only mmap of such a file, shareable page-cache-backed
// memory across bench processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qcp2p::util {

class Arena {
 public:
  /// Pads the buffer with zero bytes until `align` (a power of two).
  void align_to(std::size_t align);

  /// Appends `bytes` raw bytes at `align`; returns the byte offset the
  /// data starts at.
  std::size_t append(const void* data, std::size_t bytes, std::size_t align);

  /// Appends a typed array at max(alignof(T), align); returns its byte
  /// offset.
  template <typename T>
  std::size_t append_array(std::span<const T> values,
                           std::size_t align = alignof(T)) {
    return append(values.data(), values.size() * sizeof(T),
                  align < alignof(T) ? alignof(T) : align);
  }

  /// Overwrites `bytes` previously appended bytes at `offset` (header
  /// patch-up after the payload sizes are known).
  void patch(std::size_t offset, const void* data, std::size_t bytes);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::byte> buf_;
};

/// Read-only memory map of a whole file. Move-only; unmaps on
/// destruction. The mapping is MAP_SHARED page-cache memory, so many
/// processes loading the same snapshot share one physical copy.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps `path` read-only; throws std::runtime_error on any failure
  /// (missing file, empty file, mmap error).
  [[nodiscard]] static MappedFile open(const std::string& path);

  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool mapped() const noexcept { return addr_ != nullptr; }

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

/// Writes `bytes` to `path` atomically enough for bench use (truncate +
/// single write); throws std::runtime_error on failure.
void write_file(const std::string& path, std::span<const std::byte> bytes);

}  // namespace qcp2p::util
