#include "src/des/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace qcp2p::des {

void Simulator::schedule(Time delay, std::function<void()> fn) {
  if (delay < 0.0) throw std::invalid_argument("Simulator: negative delay");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Copy out before pop: the handler may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++n;
  }
  executed_ += n;
  return n;
}

std::uint64_t Simulator::run_until(Time t_end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++n;
  }
  now_ = std::max(now_, t_end);
  executed_ += n;
  return n;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

void Simulator::reset() {
  clear();
  now_ = 0.0;
  next_seq_ = 0;
  executed_ = 0;
}

}  // namespace qcp2p::des
