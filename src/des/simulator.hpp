// Minimal discrete-event simulation kernel.
//
// The sim/ module's searches are synchronous-round abstractions (hop =
// round); the des/ + gnutella/ layers re-run the same protocols with
// per-link latencies and faithful message semantics, so experiments can
// report time-to-first-result rather than just message counts.
//
// Determinism: events at equal timestamps fire in schedule order (a
// monotone sequence number breaks ties), so runs are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qcp2p::des {

using Time = double;  // seconds

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0).
  void schedule(Time delay, std::function<void()> fn);

  /// Runs events until the queue empties; returns events executed.
  std::uint64_t run();

  /// Runs events with timestamp <= t_end; the clock ends at t_end.
  std::uint64_t run_until(Time t_end);

  /// Drops all pending events. The clock, sequence counter, and executed
  /// count keep their values (the simulation timeline continues); use
  /// reset() between independent experiments.
  void clear();

  /// Full rewind for reuse between independent experiments: drops all
  /// pending events AND restores now()/executed() (and the internal
  /// tie-break sequence) to a freshly-constructed state, so per-run
  /// clocks start at 0 and event counts are per-run.
  void reset();

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace qcp2p::des
