// Overlay topology generators. Every generator freezes the finished
// graph (Graph::freeze) so search engines read contiguous CSR spans;
// mutate-after-build callers (tests, churn experiments) thaw implicitly.
//
// Fig 8 simulates "a 40,000 node Gnutella network"; modern (post-2005)
// Gnutella is a two-tier ultrapeer/leaf overlay, which is the default
// topology for that bench. Flat random and preferential-attachment
// topologies are provided for the ablation in DESIGN.md section 5, and a
// Gia-style capacity-driven topology backs the Gia baseline.
//
// Construction paths: by default generators stream edges into a
// CsrGraphBuilder and return an already-frozen graph without ever
// materializing per-node adjacency vectors (the million-node path);
// BuildOptions::legacy_adjacency selects the original Graph::add_edge +
// freeze() pipeline. Both paths run the same emission code over the same
// Rng draws, so they produce edge-for-edge identical graphs
// (tests/overlay_stream_build_test), and BuildOptions::threads only
// parallelizes the final CSR scatter — output is byte-identical at any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::overlay {

struct BuildOptions {
  /// Shards the CSR scatter of the streaming builder (0 = hardware
  /// concurrency). Never changes the output.
  std::size_t threads = 1;
  /// Use the original adjacency-list build + freeze() instead of the
  /// streaming CSR builder (kept for equivalence tests and benches).
  bool legacy_adjacency = false;
};

/// Erdos-Renyi G(n, M) with M = n * mean_degree / 2; connectivity patched.
[[nodiscard]] Graph random_graph(std::size_t n, double mean_degree,
                                 util::Rng& rng,
                                 const BuildOptions& opts = {});

/// Near-d-regular random graph via the configuration model (bad stubs
/// dropped, connectivity patched).
[[nodiscard]] Graph random_regular(std::size_t n, std::size_t degree,
                                   util::Rng& rng,
                                   const BuildOptions& opts = {});

/// Barabasi-Albert preferential attachment: each new node links to m
/// existing nodes chosen proportionally to degree.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t m,
                                    util::Rng& rng,
                                    const BuildOptions& opts = {});

/// Watts-Strogatz small world: a ring lattice where every node links to
/// its k nearest neighbors (k even), each edge rewired with probability
/// beta. beta = 0 is a high-diameter lattice; beta ~ 0.1 keeps high
/// clustering with short paths — the classic small-world regime some
/// unstructured overlays approximate.
[[nodiscard]] Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                                   util::Rng& rng,
                                   const BuildOptions& opts = {});

struct TwoTierParams {
  std::size_t num_nodes = 40'000;
  /// Fraction of nodes promoted to ultrapeers (Gnutella ~15%).
  double ultrapeer_fraction = 0.15;
  /// Degree of the ultrapeer-ultrapeer mesh.
  std::size_t up_up_degree = 10;
  /// Number of ultrapeers each leaf attaches to (Gnutella: 3).
  std::size_t leaf_up_count = 3;
};

struct TwoTierTopology {
  Graph graph;
  /// is_ultrapeer[v] — leaves never forward queries (sim honors this).
  std::vector<bool> is_ultrapeer;
};

[[nodiscard]] TwoTierTopology gnutella_two_tier(const TwoTierParams& params,
                                                util::Rng& rng,
                                                const BuildOptions& opts = {});

struct GiaParams {
  std::size_t num_nodes = 10'000;
  /// Node capacities are drawn Zipf-like over these levels (Gia paper's
  /// 1x/10x/100x/1000x mix).
  std::vector<double> capacity_levels = {1.0, 10.0, 100.0, 1000.0};
  std::vector<double> capacity_weights = {0.2, 0.45, 0.3, 0.05};
  /// Degree scales with capacity: degree ~ clamp(base * capacity^alpha).
  double base_degree = 3.0;
  double degree_alpha = 0.35;
  std::size_t max_degree = 128;
};

struct GiaTopology {
  Graph graph;
  std::vector<double> capacity;  // per node
};

/// Capacity-driven topology: high-capacity nodes get proportionally more
/// neighbors (Gia's "topology adaptation" steady state).
[[nodiscard]] GiaTopology gia_topology(const GiaParams& params, util::Rng& rng,
                                       const BuildOptions& opts = {});

/// Links all connected components to the largest one with random edges.
void patch_connectivity(Graph& graph, util::Rng& rng);

}  // namespace qcp2p::overlay
