#include "src/overlay/topology.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/zipf.hpp"

namespace qcp2p::overlay {
namespace {

/// Union-find over node ids, for connectivity patching.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(NodeId a, NodeId b) { parent_[find(a)] = find(b); }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

void patch_connectivity(Graph& graph, util::Rng& rng) {
  const std::size_t n = graph.num_nodes();
  if (n <= 1) return;
  UnionFind uf(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (u < v) uf.unite(u, v);
    }
  }
  // Attach every non-root component representative to a random node of
  // the component containing node 0.
  const NodeId root = uf.find(0);
  for (NodeId u = 0; u < n; ++u) {
    if (uf.find(u) != root) {
      NodeId anchor;
      do {
        anchor = static_cast<NodeId>(rng.bounded(n));
      } while (uf.find(anchor) != root || anchor == u);
      if (graph.add_edge(u, anchor)) uf.unite(u, root);
    }
  }
}

Graph random_graph(std::size_t n, double mean_degree, util::Rng& rng) {
  Graph g(n);
  if (n < 2) return g;
  const auto target_edges = static_cast<std::size_t>(
      static_cast<double>(n) * mean_degree / 2.0);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 20 + 100;
  while (g.num_edges() < target_edges && attempts++ < max_attempts) {
    const auto u = static_cast<NodeId>(rng.bounded(n));
    const auto v = static_cast<NodeId>(rng.bounded(n));
    g.add_edge(u, v);
  }
  patch_connectivity(g, rng);
  g.freeze();
  return g;
}

Graph random_regular(std::size_t n, std::size_t degree, util::Rng& rng) {
  Graph g(n);
  if (n < 2 || degree == 0) return g;
  if (degree >= n) throw std::invalid_argument("random_regular: degree >= n");
  // Configuration model: n*degree stubs, shuffled, paired. Self-loops and
  // duplicate edges are simply dropped, leaving a near-regular graph.
  std::vector<NodeId> stubs;
  stubs.reserve(n * degree);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < degree; ++k) stubs.push_back(u);
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.bounded(i)]);
  }
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    g.add_edge(stubs[i], stubs[i + 1]);
  }
  patch_connectivity(g, rng);
  g.freeze();
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng) {
  if (m == 0) throw std::invalid_argument("barabasi_albert: m must be >= 1");
  Graph g(n);
  if (n < 2) return g;
  const std::size_t seed_nodes = std::min(n, m + 1);
  // Seed clique over the first m+1 nodes.
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) g.add_edge(u, v);
  }
  // Endpoint list: each edge contributes both endpoints, so sampling a
  // uniform element is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * m);
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v : g.neighbors(u)) {
      (void)v;
      endpoints.push_back(u);
    }
  }
  for (NodeId u = static_cast<NodeId>(seed_nodes); u < n; ++u) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard++ < 50 * m) {
      const NodeId target = endpoints[rng.bounded(endpoints.size())];
      if (g.add_edge(u, target)) {
        endpoints.push_back(u);
        endpoints.push_back(target);
        ++added;
      }
    }
  }
  patch_connectivity(g, rng);
  g.freeze();
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     util::Rng& rng) {
  if (k % 2 != 0) throw std::invalid_argument("watts_strogatz: k must be even");
  if (k >= n && n > 1) throw std::invalid_argument("watts_strogatz: k >= n");
  Graph g(n);
  if (n < 2 || k == 0) return g;
  // Ring lattice: node v links to v+1 .. v+k/2 (mod n).
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto u = static_cast<NodeId>((v + j) % n);
      // Rewire the far endpoint with probability beta.
      if (rng.chance(beta)) {
        NodeId w;
        std::size_t guard = 0;
        do {
          w = static_cast<NodeId>(rng.bounded(n));
        } while ((w == v || g.has_edge(v, w)) && guard++ < 32);
        if (w != v && g.add_edge(v, w)) continue;
      }
      g.add_edge(v, u);
    }
  }
  patch_connectivity(g, rng);
  g.freeze();
  return g;
}

TwoTierTopology gnutella_two_tier(const TwoTierParams& params, util::Rng& rng) {
  const std::size_t n = params.num_nodes;
  TwoTierTopology topo{Graph(n), std::vector<bool>(n, false)};
  if (n < 2) return topo;

  auto num_ups = static_cast<std::size_t>(
      static_cast<double>(n) * params.ultrapeer_fraction);
  num_ups = std::clamp<std::size_t>(num_ups, 1, n);

  // Promote a random subset to ultrapeers.
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.bounded(i)]);
  }
  std::vector<NodeId> ups(ids.begin(),
                          ids.begin() + static_cast<std::ptrdiff_t>(num_ups));
  for (NodeId u : ups) topo.is_ultrapeer[u] = true;

  // Ultrapeer mesh: near-regular random graph among ultrapeers.
  if (ups.size() >= 2) {
    const std::size_t mesh_degree =
        std::min(params.up_up_degree, ups.size() - 1);
    std::vector<NodeId> stubs;
    stubs.reserve(ups.size() * mesh_degree);
    for (NodeId u : ups) {
      for (std::size_t k = 0; k < mesh_degree; ++k) stubs.push_back(u);
    }
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.bounded(i)]);
    }
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      topo.graph.add_edge(stubs[i], stubs[i + 1]);
    }
  }

  // Each leaf attaches to leaf_up_count distinct ultrapeers.
  for (NodeId v = 0; v < n; ++v) {
    if (topo.is_ultrapeer[v]) continue;
    std::size_t attached = 0;
    std::size_t guard = 0;
    const std::size_t want = std::min(params.leaf_up_count, ups.size());
    while (attached < want && guard++ < 50 * want) {
      const NodeId up = ups[rng.bounded(ups.size())];
      if (topo.graph.add_edge(v, up)) ++attached;
    }
  }

  patch_connectivity(topo.graph, rng);
  topo.graph.freeze();
  return topo;
}

GiaTopology gia_topology(const GiaParams& params, util::Rng& rng) {
  if (params.capacity_levels.empty() ||
      params.capacity_levels.size() != params.capacity_weights.size()) {
    throw std::invalid_argument("gia_topology: bad capacity spec");
  }
  const std::size_t n = params.num_nodes;
  GiaTopology topo{Graph(n), std::vector<double>(n, 1.0)};
  const util::DiscreteSampler level_sampler(params.capacity_weights);

  std::vector<std::size_t> target_degree(n);
  for (NodeId u = 0; u < n; ++u) {
    topo.capacity[u] = params.capacity_levels[level_sampler(rng)];
    const double d =
        params.base_degree * std::pow(topo.capacity[u], params.degree_alpha);
    target_degree[u] = std::min<std::size_t>(
        params.max_degree,
        std::max<std::size_t>(1, static_cast<std::size_t>(d)));
  }

  // Configuration model over capacity-derived degrees.
  std::vector<NodeId> stubs;
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < target_degree[u]; ++k) stubs.push_back(u);
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.bounded(i)]);
  }
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    topo.graph.add_edge(stubs[i], stubs[i + 1]);
  }
  patch_connectivity(topo.graph, rng);
  topo.graph.freeze();
  return topo;
}

}  // namespace qcp2p::overlay
