#include "src/overlay/topology.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/overlay/csr_builder.hpp"
#include "src/util/zipf.hpp"

namespace qcp2p::overlay {
namespace {

/// Union-find over node ids, for connectivity patching.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }
  NodeId find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns true when the union actually merged two components.
  bool unite(NodeId a, NodeId b) {
    const NodeId ra = find(a);
    const NodeId rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }
  /// Warms the first parent line for an upcoming find (the parent array
  /// is n*4 bytes — far beyond cache at 10^6 nodes).
  void prefetch(NodeId x) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&parent_[x], 1, 1);
#else
    (void)x;
#endif
  }

 private:
  std::vector<NodeId> parent_;
};

/// Fisher-Yates shuffle producing exactly the permutation of the naive
/// `for (i = v.size(); i > 1; --i) swap(v[i-1], v[rng.bounded(i)])`
/// loop: the draws are buffered a few iterations ahead IN ORDER (never
/// reordered), which lets the swap targets — uniform-random positions in
/// an array far beyond cache at 10^6 entries — be prefetched before the
/// dependent swaps read them. Prefetching only warms lines; values are
/// read at swap time, so earlier in-block swaps are observed exactly as
/// in the naive loop.
inline void shuffle_prefetched(std::vector<NodeId>& v, util::Rng& rng) {
  constexpr std::size_t kBlock = 16;
  std::array<std::size_t, kBlock> draw;
  std::size_t i = v.size();
  while (i > 1) {
    const std::size_t m = std::min(kBlock, i - 1);
    for (std::size_t k = 0; k < m; ++k) {
      draw[k] = rng.bounded(i - k);
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(&v[draw[k]], 1, 1);
#endif
    }
    for (std::size_t k = 0; k < m; ++k) {
      std::swap(v[i - 1], v[draw[k]]);
      --i;
    }
  }
}

// The generator bodies below are templated over a Sink — either Graph
// (legacy adjacency build) or CsrGraphBuilder (streaming build). Both
// expose add_edge/has_edge/degree/num_edges with identical accept/reject
// semantics, and the bodies draw from the Rng in sink-independent order,
// so the two paths emit the exact same edge sequence. Keep any
// sink-dependent branching out of RNG-consuming code.

template <typename Fn>
void for_each_edge(const Graph& g, Fn&& fn) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) fn(u, v);
    }
  }
}

template <typename Fn>
void for_each_edge(const CsrGraphBuilder& b, Fn&& fn) {
  for (const auto& [u, v] : b.edges()) fn(u, v);
}

/// Sink-generic connectivity patch. The union order differs between the
/// two sinks (adjacency scan vs emission stream) but the resulting
/// partition is identical, and every RNG decision below tests only
/// component membership — so both paths draw identically.
template <typename Sink>
void patch_connectivity_impl(Sink& sink, util::Rng& rng) {
  const std::size_t n = sink.num_nodes();
  if (n <= 1) return;
  UnionFind uf(n);
  std::size_t components = n;
  if constexpr (requires { sink.edges(); }) {
    // The emission stream is a flat array, so the union pass can warm
    // the parent lines a few edges ahead of the dependent find chains.
    const auto es = sink.edges();
    constexpr std::size_t kAhead = 16;
    for (std::size_t i = 0; i < es.size(); ++i) {
      if (i + kAhead < es.size()) {
        uf.prefetch(es[i + kAhead].first);
        uf.prefetch(es[i + kAhead].second);
      }
      if (uf.unite(es[i].first, es[i].second)) --components;
    }
  } else {
    for_each_edge(sink, [&](NodeId u, NodeId v) {
      if (uf.unite(u, v)) --components;
    });
  }
  // One component left means the stray scan below is a provable no-op
  // (every find returns root, no RNG draw, no edge added), and at
  // generator scales the graph is almost always already connected —
  // skip the n dependent finds. Both sinks take the same branch: the
  // union order differs but the component count does not.
  if (components == 1) return;
  // Attach every non-root component representative to a random node of
  // the component containing node 0.
  const NodeId root = uf.find(0);
  for (NodeId u = 0; u < n; ++u) {
    if (uf.find(u) != root) {
      NodeId anchor;
      do {
        anchor = static_cast<NodeId>(rng.bounded(n));
      } while (uf.find(anchor) != root || anchor == u);
      if (sink.add_edge(u, anchor)) uf.unite(u, root);
    }
  }
}

template <typename Sink>
void emit_random_graph(Sink& sink, std::size_t n, double mean_degree,
                       util::Rng& rng) {
  const auto target_edges =
      static_cast<std::size_t>(static_cast<double>(n) * mean_degree / 2.0);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 20 + 100;
  while (sink.num_edges() < target_edges && attempts++ < max_attempts) {
    const auto u = static_cast<NodeId>(rng.bounded(n));
    const auto v = static_cast<NodeId>(rng.bounded(n));
    sink.add_edge(u, v);
  }
  patch_connectivity_impl(sink, rng);
}

/// Pairs consecutive shuffled stubs and feeds them to the sink through
/// the batched entry point. The accept decisions of configuration-model
/// pairing never feed back into the pick sequence (duplicates and
/// self-loops are silently dropped), so batching is observationally
/// identical to the old pair-at-a-time add_edge loop on either sink.
/// Batched-emission flush threshold: big enough to amortize the call,
/// small enough that the staging vector stays cache-resident.
constexpr std::size_t kEmitChunk = std::size_t{1} << 16;

template <typename Sink>
void add_stub_pairs(Sink& sink, const std::vector<NodeId>& stubs) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(std::min(stubs.size() / 2, kEmitChunk));
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    pairs.emplace_back(stubs[i], stubs[i + 1]);
    if (pairs.size() == kEmitChunk) {
      sink.add_edges(pairs);
      pairs.clear();
    }
  }
  sink.add_edges(pairs);
}

template <typename Sink>
void emit_random_regular(Sink& sink, std::size_t n, std::size_t degree,
                         util::Rng& rng) {
  // Configuration model: n*degree stubs, shuffled, paired. Self-loops and
  // duplicate edges are simply dropped, leaving a near-regular graph.
  std::vector<NodeId> stubs;
  stubs.reserve(n * degree);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < degree; ++k) stubs.push_back(u);
  }
  shuffle_prefetched(stubs, rng);
  add_stub_pairs(sink, stubs);
  patch_connectivity_impl(sink, rng);
}

template <typename Sink>
void emit_barabasi_albert(Sink& sink, std::size_t n, std::size_t m,
                          util::Rng& rng) {
  const std::size_t seed_nodes = std::min(n, m + 1);
  // Seed clique over the first m+1 nodes.
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) sink.add_edge(u, v);
  }
  // Endpoint list: each edge contributes both endpoints, so sampling a
  // uniform element is degree-proportional sampling. Seeded with each
  // clique node repeated degree-many times (the order the adjacency scan
  // used to produce).
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * n * m);
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (std::size_t k = 0; k < sink.degree(u); ++k) endpoints.push_back(u);
  }
  for (NodeId u = static_cast<NodeId>(seed_nodes); u < n; ++u) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard++ < 50 * m) {
      const NodeId target = endpoints[rng.bounded(endpoints.size())];
      if (sink.add_edge(u, target)) {
        endpoints.push_back(u);
        endpoints.push_back(target);
        ++added;
      }
    }
  }
  patch_connectivity_impl(sink, rng);
}

template <typename Sink>
void emit_watts_strogatz(Sink& sink, std::size_t n, std::size_t k, double beta,
                         util::Rng& rng) {
  // Ring lattice: node v links to v+1 .. v+k/2 (mod n).
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto u = static_cast<NodeId>((v + j) % n);
      // Rewire the far endpoint with probability beta.
      if (rng.chance(beta)) {
        NodeId w;
        std::size_t guard = 0;
        do {
          w = static_cast<NodeId>(rng.bounded(n));
        } while ((w == v || sink.has_edge(v, w)) && guard++ < 32);
        if (w != v && sink.add_edge(v, w)) continue;
      }
      sink.add_edge(v, u);
    }
  }
  patch_connectivity_impl(sink, rng);
}

template <typename Sink>
void emit_two_tier(Sink& sink, const TwoTierParams& params, util::Rng& rng,
                   std::vector<bool>& is_ultrapeer) {
  const std::size_t n = params.num_nodes;
  auto num_ups = static_cast<std::size_t>(static_cast<double>(n) *
                                          params.ultrapeer_fraction);
  num_ups = std::clamp<std::size_t>(num_ups, 1, n);

  // Promote a random subset to ultrapeers.
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  shuffle_prefetched(ids, rng);
  std::vector<NodeId> ups(ids.begin(),
                          ids.begin() + static_cast<std::ptrdiff_t>(num_ups));
  for (NodeId u : ups) is_ultrapeer[u] = true;

  // Ultrapeer mesh: near-regular random graph among ultrapeers.
  if (ups.size() >= 2) {
    const std::size_t mesh_degree =
        std::min(params.up_up_degree, ups.size() - 1);
    std::vector<NodeId> stubs;
    stubs.reserve(ups.size() * mesh_degree);
    for (NodeId u : ups) {
      for (std::size_t k = 0; k < mesh_degree; ++k) stubs.push_back(u);
    }
    shuffle_prefetched(stubs, rng);
    add_stub_pairs(sink, stubs);
  }

  // Each leaf attaches to leaf_up_count distinct ultrapeers. A leaf has
  // no edges outside its own attach round (it is not in the mesh, and
  // earlier leaves only linked to ultrapeers), so "add_edge would
  // reject" reduces to "this ultrapeer was already picked for this
  // leaf" — a check against the few prior picks that frees the whole
  // phase to go through the batched sink path. The RNG draw sequence
  // and the emitted edge order are exactly the old attach loop's.
  //
  // Stronger still, these batches satisfy add_edges_unique's contract:
  // (valid) v != up since up is an ultrapeer and v is not, and both are
  // < n; (fresh) within a batch the in-leaf pick filter bars repeats,
  // no earlier phase touched v, and the only later edge source is
  // patch_connectivity — which joins DISTINCT components, and both
  // endpoints of any existing edge sit in one component, so a patch
  // edge can never equal an existing one nor need the duplicate set to
  // know about leaf edges to reject correctly. The legacy sink checks
  // anyway, so the stream==legacy equivalence tests would catch any
  // violation of this argument.
  const std::size_t want = std::min(params.leaf_up_count, ups.size());
  std::vector<std::pair<NodeId, NodeId>> leaf_edges;
  leaf_edges.reserve(std::min((n - ups.size()) * want, kEmitChunk + want));
  std::vector<NodeId> picks;
  for (NodeId v = 0; v < n; ++v) {
    if (is_ultrapeer[v]) continue;
    picks.clear();
    std::size_t guard = 0;
    while (picks.size() < want && guard++ < 50 * want) {
      const NodeId up = ups[rng.bounded(ups.size())];
      if (std::find(picks.begin(), picks.end(), up) == picks.end()) {
        picks.push_back(up);
        leaf_edges.emplace_back(v, up);
      }
    }
    if (leaf_edges.size() >= kEmitChunk) {
      sink.add_edges_unique(leaf_edges);
      leaf_edges.clear();
    }
  }
  sink.add_edges_unique(leaf_edges);

  patch_connectivity_impl(sink, rng);
}

template <typename Sink>
void emit_gia(Sink& sink, const GiaParams& params, util::Rng& rng,
              std::vector<double>& capacity) {
  const std::size_t n = params.num_nodes;
  const util::DiscreteSampler level_sampler(params.capacity_weights);

  std::vector<std::size_t> target_degree(n);
  for (NodeId u = 0; u < n; ++u) {
    capacity[u] = params.capacity_levels[level_sampler(rng)];
    const double d =
        params.base_degree * std::pow(capacity[u], params.degree_alpha);
    target_degree[u] = std::min<std::size_t>(
        params.max_degree,
        std::max<std::size_t>(1, static_cast<std::size_t>(d)));
  }

  // Configuration model over capacity-derived degrees.
  std::vector<NodeId> stubs;
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < target_degree[u]; ++k) stubs.push_back(u);
  }
  shuffle_prefetched(stubs, rng);
  add_stub_pairs(sink, stubs);
  patch_connectivity_impl(sink, rng);
}

/// Dispatches one emission body to the selected construction path.
/// `expected_edges` (and the optional duplicate-set subset hint) are
/// only reservation hints for the streaming builder.
template <typename Emit>
Graph build_with(std::size_t n, const BuildOptions& opts,
                 std::size_t expected_edges, Emit&& emit,
                 std::size_t expected_checked_edges = SIZE_MAX) {
  if (opts.legacy_adjacency) {
    Graph g(n);
    emit(g);
    g.freeze();
    return g;
  }
  CsrGraphBuilder b(n, expected_edges, expected_checked_edges);
  emit(b);
  return b.build(opts.threads);
}

}  // namespace

void patch_connectivity(Graph& graph, util::Rng& rng) {
  patch_connectivity_impl(graph, rng);
}

Graph random_graph(std::size_t n, double mean_degree, util::Rng& rng,
                   const BuildOptions& opts) {
  if (n < 2) return build_with(n, opts, 0, [](auto&) {});
  const auto hint =
      static_cast<std::size_t>(static_cast<double>(n) * mean_degree / 2.0);
  return build_with(n, opts, hint + n / 8, [&](auto& sink) {
    emit_random_graph(sink, n, mean_degree, rng);
  });
}

Graph random_regular(std::size_t n, std::size_t degree, util::Rng& rng,
                     const BuildOptions& opts) {
  if (n >= 2 && degree >= n) {
    throw std::invalid_argument("random_regular: degree >= n");
  }
  if (n < 2 || degree == 0) return build_with(n, opts, 0, [](auto&) {});
  return build_with(n, opts, n * degree / 2 + n / 8, [&](auto& sink) {
    emit_random_regular(sink, n, degree, rng);
  });
}

Graph barabasi_albert(std::size_t n, std::size_t m, util::Rng& rng,
                      const BuildOptions& opts) {
  if (m == 0) throw std::invalid_argument("barabasi_albert: m must be >= 1");
  if (n < 2) return build_with(n, opts, 0, [](auto&) {});
  return build_with(n, opts, n * m + n / 8, [&](auto& sink) {
    emit_barabasi_albert(sink, n, m, rng);
  });
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, util::Rng& rng,
                     const BuildOptions& opts) {
  if (k % 2 != 0) throw std::invalid_argument("watts_strogatz: k must be even");
  if (k >= n && n > 1) throw std::invalid_argument("watts_strogatz: k >= n");
  if (n < 2 || k == 0) return build_with(n, opts, 0, [](auto&) {});
  return build_with(n, opts, n * (k / 2) + n / 8, [&](auto& sink) {
    emit_watts_strogatz(sink, n, k, beta, rng);
  });
}

TwoTierTopology gnutella_two_tier(const TwoTierParams& params, util::Rng& rng,
                                  const BuildOptions& opts) {
  const std::size_t n = params.num_nodes;
  TwoTierTopology topo{Graph(n), std::vector<bool>(n, false)};
  if (n < 2) {
    topo.graph = build_with(n, opts, 0, [](auto&) {});
    return topo;
  }
  // Only the ultrapeer mesh goes through the duplicate set; leaf
  // attachments use add_edges_unique, so the set is sized to the mesh.
  const std::size_t mesh_hint =
      static_cast<std::size_t>(static_cast<double>(n) *
                               params.ultrapeer_fraction) *
      params.up_up_degree / 2;
  const std::size_t hint = mesh_hint + n * params.leaf_up_count;
  topo.graph = build_with(
      n, opts, hint,
      [&](auto& sink) { emit_two_tier(sink, params, rng, topo.is_ultrapeer); },
      mesh_hint);
  return topo;
}

GiaTopology gia_topology(const GiaParams& params, util::Rng& rng,
                         const BuildOptions& opts) {
  if (params.capacity_levels.empty() ||
      params.capacity_levels.size() != params.capacity_weights.size()) {
    throw std::invalid_argument("gia_topology: bad capacity spec");
  }
  const std::size_t n = params.num_nodes;
  GiaTopology topo{Graph(n), std::vector<double>(n, 1.0)};
  const std::size_t hint = static_cast<std::size_t>(
      static_cast<double>(n) * params.base_degree * 2.0);
  topo.graph = build_with(n, opts, hint, [&](auto& sink) {
    emit_gia(sink, params, rng, topo.capacity);
  });
  return topo;
}

}  // namespace qcp2p::overlay
