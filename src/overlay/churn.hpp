// Session-based churn: each peer alternates between online and offline
// sessions with exponentially distributed lengths. Used by the
// failure-injection tests and the churn ablation bench: the paper's
// replication problem only worsens when singleton holders go offline.
#pragma once

#include <cstdint>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::overlay {

struct ChurnParams {
  double mean_online_s = 3600.0;   // Gnutella median session ~ 1 hour
  double mean_offline_s = 7200.0;
  std::uint64_t seed = 99;
};

/// One membership transition on the serving timeline: `node` came online
/// (join) or went offline (leave) at `time_s`.
struct MembershipEvent {
  double time_s = 0.0;
  NodeId node = 0;
  bool join = false;
};

class ChurnProcess {
 public:
  ChurnProcess(std::size_t num_nodes, const ChurnParams& params);

  /// Advances simulated time by dt seconds, toggling node states.
  /// dt must be non-negative (asserted, and rejected with
  /// std::invalid_argument in release builds): time cannot run backward.
  void advance(double dt);

  /// Advances to absolute time `t_end` (>= now(), same guard as
  /// advance()) and returns every toggle in (now(), t_end] as a
  /// timestamped event stream, sorted by (time, node). End state is
  /// identical to advance(t_end - now()); the events are what a serving
  /// world interleaves with its query stream.
  [[nodiscard]] std::vector<MembershipEvent> drain_events(double t_end);

  [[nodiscard]] bool is_online(NodeId node) const noexcept {
    return online_[node];
  }
  [[nodiscard]] const std::vector<bool>& online() const noexcept {
    return online_;
  }
  [[nodiscard]] double now() const noexcept { return now_; }
  /// Fraction of nodes currently online; on an empty network, the exact
  /// steady-state online probability of the session process.
  [[nodiscard]] double online_fraction() const noexcept;

 private:
  [[nodiscard]] double draw_session(bool for_online, util::Rng& rng) const;

  ChurnParams params_;
  double now_ = 0.0;
  std::vector<bool> online_;
  std::vector<double> next_toggle_;
  std::vector<util::Rng> rngs_;
};

/// One-shot helper: marks each node online independently with probability
/// p (the steady-state of the session process); for quick failure tests.
[[nodiscard]] std::vector<bool> sample_online(std::size_t num_nodes, double p,
                                              util::Rng& rng);

}  // namespace qcp2p::overlay
