// Undirected overlay graph with adjacency-list storage.
//
// Node ids are dense [0, n). The graph is built once by a topology
// generator and then read concurrently by search simulations, so the
// mutation API is minimal and the read API is span-based.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qcp2p::overlay {

using NodeId = std::uint32_t;

class Graph {
 public:
  explicit Graph(std::size_t num_nodes) : adjacency_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are
  /// rejected (returns false) to keep degree semantics exact.
  bool add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v} if present.
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return adjacency_[u];
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return adjacency_[u].size();
  }

  [[nodiscard]] double mean_degree() const noexcept {
    return num_nodes() == 0 ? 0.0
                            : 2.0 * static_cast<double>(num_edges_) /
                                  static_cast<double>(num_nodes());
  }

  /// Nodes reachable from `start` (BFS over all nodes); used by topology
  /// generators to patch connectivity and by tests.
  [[nodiscard]] std::vector<NodeId> component_of(NodeId start) const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  [[nodiscard]] bool is_connected() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace qcp2p::overlay
