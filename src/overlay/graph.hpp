// Undirected overlay graph with two storage phases.
//
// Node ids are dense [0, n). The graph is built once by a topology
// generator (adjacency-list phase, cheap edge mutation) and then read
// concurrently by millions of Monte-Carlo search trials. Generators call
// freeze() after their last mutation, which packs the adjacency lists
// into a CSR (compressed sparse row) form — one offsets array plus one
// flat neighbor array — so neighbors() is a contiguous span and BFS
// floods stream linearly through memory instead of pointer-chasing
// per-node heap blocks. Neighbor order is preserved exactly by
// freeze()/thaw(), so RNG-driven walks draw identical neighbors in
// either phase. Mutating a frozen graph transparently thaws it back to
// adjacency lists; re-freeze after the mutation batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qcp2p::overlay {

using NodeId = std::uint32_t;

class Graph {
 public:
  explicit Graph(std::size_t num_nodes)
      : num_nodes_(num_nodes), adjacency_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are
  /// rejected (returns false) to keep degree semantics exact.
  /// Thaws a frozen graph.
  bool add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v} if present. Thaws a frozen graph.
  bool remove_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    if (frozen_) {
      return {csr_neighbors_.data() + csr_offsets_[u],
              csr_offsets_[u + 1] - csr_offsets_[u]};
    }
    return adjacency_[u];
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return frozen_ ? csr_offsets_[u + 1] - csr_offsets_[u]
                   : adjacency_[u].size();
  }

  /// Packs adjacency lists into the flat CSR arrays and releases the
  /// per-node vectors. Idempotent. Every search hot path expects a
  /// frozen graph; topology generators freeze before returning.
  void freeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  [[nodiscard]] double mean_degree() const noexcept {
    return num_nodes() == 0 ? 0.0
                            : 2.0 * static_cast<double>(num_edges_) /
                                  static_cast<double>(num_nodes());
  }

  /// Nodes reachable from `start` (BFS over all nodes); used by topology
  /// generators to patch connectivity and by tests.
  [[nodiscard]] std::vector<NodeId> component_of(NodeId start) const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  [[nodiscard]] bool is_connected() const;

 private:
  /// Restores the adjacency-list phase from the CSR arrays (exact
  /// neighbor order), enabling mutation.
  void thaw();

  std::size_t num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  /// Build phase; cleared while frozen.
  std::vector<std::vector<NodeId>> adjacency_;
  /// Frozen phase: neighbors of u are csr_neighbors_[csr_offsets_[u] ..
  /// csr_offsets_[u+1]). Empty while thawed.
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<NodeId> csr_neighbors_;
  bool frozen_ = false;
};

}  // namespace qcp2p::overlay
