// Undirected overlay graph with two storage phases.
//
// Node ids are dense [0, n). The graph is built once by a topology
// generator (adjacency-list phase, cheap edge mutation) and then read
// concurrently by millions of Monte-Carlo search trials. Generators call
// freeze() after their last mutation, which packs the adjacency lists
// into a CSR (compressed sparse row) form — one offsets array plus one
// flat neighbor array — so neighbors() is a contiguous span and BFS
// floods stream linearly through memory instead of pointer-chasing
// per-node heap blocks. Neighbor order is preserved exactly by
// freeze()/thaw(), so RNG-driven walks draw identical neighbors in
// either phase. Mutating a frozen graph transparently thaws it back to
// adjacency lists; re-freeze after the mutation batch.
//
// The frozen read path is offset-based behind (pointer, size) pairs, so
// the CSR arrays can live either in the graph's own vectors (freeze(),
// from_csr()) or in external read-only memory such as a memory-mapped
// WorldSnapshot (csr_view()). A view graph reads with zero copies;
// mutating it thaws by copying the mapped arrays into owned adjacency
// lists, and copying it materializes owned CSR storage — a Graph copy
// never aliases the source's backing memory lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace qcp2p::overlay {

using NodeId = std::uint32_t;

class Graph {
 public:
  explicit Graph(std::size_t num_nodes)
      : num_nodes_(num_nodes), adjacency_(num_nodes) {}

  /// Deep copy: a copy owns its storage even when the source is a
  /// csr_view() over mapped memory.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Adopts already-packed CSR arrays as a frozen graph (the streaming
  /// builder's exit). offsets must be [0 ..] monotone with
  /// offsets.size() == num_nodes + 1 and offsets.back() ==
  /// neighbors.size(); every neighbor entry contributes half an edge.
  [[nodiscard]] static Graph from_csr(std::vector<std::uint32_t> offsets,
                                      std::vector<NodeId> neighbors);

  /// Adopts heap arrays as a frozen graph, same contract as from_csr
  /// with offsets holding num_nodes + 1 entries and neighbors holding
  /// offsets[num_nodes] entries. Exists so the streaming builder can
  /// scatter into make_unique_for_overwrite buffers — a
  /// vector-of-26MB's value-initialization is a full extra write pass
  /// over memory whose every byte the scatter overwrites anyway.
  [[nodiscard]] static Graph from_csr_buffers(
      std::unique_ptr<std::uint32_t[]> offsets,
      std::unique_ptr<NodeId[]> neighbors, std::size_t num_nodes);

  /// Borrowing frozen view over external CSR arrays (e.g. a mapped
  /// WorldSnapshot section). The memory must outlive the view and every
  /// graph moved from it; copying materializes an owned graph.
  [[nodiscard]] static Graph csr_view(std::span<const std::uint32_t> offsets,
                                      std::span<const NodeId> neighbors);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are
  /// rejected (returns false) to keep degree semantics exact.
  /// Thaws a frozen graph.
  bool add_edge(NodeId u, NodeId v);

  /// Calls add_edge on every pair in order, discarding the results.
  /// Mirrors CsrGraphBuilder::add_edges so topology emitters can batch
  /// through either sink with identical accept/reject semantics.
  void add_edges(std::span<const std::pair<NodeId, NodeId>> batch);

  /// Same call shape as CsrGraphBuilder::add_edges_unique, but keeps
  /// full duplicate checking: the adjacency path is the semantic oracle,
  /// so an emitter that wrongly claims uniqueness diverges from the
  /// streaming build and fails the equivalence tests instead of
  /// silently corrupting both.
  void add_edges_unique(std::span<const std::pair<NodeId, NodeId>> batch);

  /// Removes the undirected edge {u, v} if present. Thaws a frozen graph.
  bool remove_edge(NodeId u, NodeId v);

  /// Batched incremental maintenance of a FROZEN graph: applies all
  /// `removes` then all `adds` in one CSR -> CSR merge pass (count /
  /// prefix-sum / scatter), never materializing per-node adjacency
  /// lists. Result is identical — including neighbor order — to calling
  /// remove_edge for every remove, add_edge for every add, then
  /// freeze(): removed neighbors are erased in place, added neighbors
  /// append at the tail of each endpoint's row in batch order. Invalid
  /// entries follow the single-edge semantics (self-loops, duplicates,
  /// and absent removals are skipped). On a thawed graph it degrades to
  /// the per-edge loop. Returns {edges removed, edges added}.
  std::pair<std::size_t, std::size_t> apply_delta(
      std::span<const std::pair<NodeId, NodeId>> removes,
      std::span<const std::pair<NodeId, NodeId>> adds);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    if (frozen_) {
      return {neighbors_ptr_ + offsets_ptr_[u],
              offsets_ptr_[u + 1] - offsets_ptr_[u]};
    }
    return adjacency_[u];
  }
  [[nodiscard]] std::size_t degree(NodeId u) const noexcept {
    return frozen_ ? offsets_ptr_[u + 1] - offsets_ptr_[u]
                   : adjacency_[u].size();
  }

  /// Packs adjacency lists into the flat CSR arrays and releases the
  /// per-node vectors. Idempotent. Every search hot path expects a
  /// frozen graph; topology generators freeze before returning.
  void freeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// True when the CSR arrays live in external memory (csr_view()).
  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }

  /// The frozen CSR arrays (snapshot serialization). Valid only while
  /// frozen; views return the mapped memory without copying.
  [[nodiscard]] std::span<const std::uint32_t> csr_offsets() const noexcept {
    return {offsets_ptr_, frozen_ ? num_nodes_ + 1 : 0};
  }
  [[nodiscard]] std::span<const NodeId> csr_neighbors() const noexcept {
    return {neighbors_ptr_, frozen_ ? 2 * num_edges_ : 0};
  }

  [[nodiscard]] double mean_degree() const noexcept {
    return num_nodes() == 0 ? 0.0
                            : 2.0 * static_cast<double>(num_edges_) /
                                  static_cast<double>(num_nodes());
  }

  /// Nodes reachable from `start` (BFS over all nodes); used by topology
  /// generators to patch connectivity and by tests.
  [[nodiscard]] std::vector<NodeId> component_of(NodeId start) const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  [[nodiscard]] bool is_connected() const;

 private:
  /// Restores the adjacency-list phase from the CSR arrays (exact
  /// neighbor order), enabling mutation. Views copy out of the mapped
  /// memory and drop the borrow.
  void thaw();

  std::size_t num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  /// Build phase; cleared while frozen.
  std::vector<std::vector<NodeId>> adjacency_;
  /// Frozen phase, owned storage: neighbors of u are
  /// csr_neighbors_[csr_offsets_[u] .. csr_offsets_[u+1]). Empty while
  /// thawed or borrowing.
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<NodeId> csr_neighbors_;
  /// Frozen phase, array-backed ownership (from_csr_buffers); null
  /// otherwise. A frozen graph is backed by exactly one of the owned
  /// vectors, these arrays, or a borrow.
  std::unique_ptr<std::uint32_t[]> owned_offsets_;
  std::unique_ptr<NodeId[]> owned_neighbors_;
  /// Frozen read path: into the owned vectors, or external mapped
  /// memory when borrowed_. Null while thawed.
  const std::uint32_t* offsets_ptr_ = nullptr;
  const NodeId* neighbors_ptr_ = nullptr;
  bool frozen_ = false;
  bool borrowed_ = false;
};

}  // namespace qcp2p::overlay
