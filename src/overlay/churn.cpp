#include "src/overlay/churn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qcp2p::overlay {

ChurnProcess::ChurnProcess(std::size_t num_nodes, const ChurnParams& params)
    : params_(params),
      online_(num_nodes, false),
      next_toggle_(num_nodes, 0.0) {
  rngs_.reserve(num_nodes);
  const double p_online = params.mean_online_s /
                          (params.mean_online_s + params.mean_offline_s);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    rngs_.emplace_back(util::mix64(params.seed ^ (0xC4u + v)));
    util::Rng& rng = rngs_.back();
    online_[v] = rng.chance(p_online);  // steady-state initialization
    next_toggle_[v] = draw_session(online_[v], rng);
  }
}

double ChurnProcess::draw_session(bool for_online, util::Rng& rng) const {
  const double mean = for_online ? params_.mean_online_s : params_.mean_offline_s;
  return -std::log(1.0 - rng.uniform()) * mean;
}

void ChurnProcess::advance(double dt) {
  // Time must not run backward: a negative (or NaN) dt would silently
  // rewind now_ past toggles that already fired and desynchronize the
  // per-node schedules. The !(dt >= 0.0) form also rejects NaN.
  assert(dt >= 0.0 && "ChurnProcess::advance: dt must be non-negative");
  if (!(dt >= 0.0)) {
    throw std::invalid_argument("ChurnProcess::advance: dt must be >= 0");
  }
  now_ += dt;
  for (std::size_t v = 0; v < online_.size(); ++v) {
    while (next_toggle_[v] <= now_) {
      online_[v] = !online_[v];
      next_toggle_[v] += draw_session(online_[v], rngs_[v]);
    }
  }
}

std::vector<MembershipEvent> ChurnProcess::drain_events(double t_end) {
  const double dt = t_end - now_;
  assert(dt >= 0.0 && "ChurnProcess::drain_events: time cannot run backward");
  if (!(dt >= 0.0)) {
    throw std::invalid_argument("ChurnProcess::drain_events: t_end < now()");
  }
  std::vector<MembershipEvent> events;
  now_ = t_end;
  for (std::size_t v = 0; v < online_.size(); ++v) {
    while (next_toggle_[v] <= now_) {
      online_[v] = !online_[v];
      events.push_back(MembershipEvent{next_toggle_[v],
                                       static_cast<NodeId>(v), online_[v]});
      next_toggle_[v] += draw_session(online_[v], rngs_[v]);
    }
  }
  // Per-node schedules are independent streams; a global timeline needs
  // one deterministic order. Ties (identical timestamps) break by node.
  std::sort(events.begin(), events.end(),
            [](const MembershipEvent& a, const MembershipEvent& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.node < b.node;
            });
  return events;
}

double ChurnProcess::online_fraction() const noexcept {
  if (online_.empty()) {
    // 0/0 peers online: report the process's exact steady-state
    // probability instead of an arbitrary 0.0, so callers scaling by the
    // fraction degrade gracefully on an empty network.
    const double total = params_.mean_online_s + params_.mean_offline_s;
    return total > 0.0 ? params_.mean_online_s / total : 0.0;
  }
  std::size_t up = 0;
  for (bool b : online_) up += b;
  return static_cast<double>(up) / static_cast<double>(online_.size());
}

std::vector<bool> sample_online(std::size_t num_nodes, double p,
                                util::Rng& rng) {
  std::vector<bool> online(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) online[v] = rng.chance(p);
  return online;
}

}  // namespace qcp2p::overlay
