#include "src/overlay/csr_builder.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>
#include <thread>

#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace qcp2p::overlay {

namespace {

constexpr std::size_t kMinSlots = 64;

[[nodiscard]] std::size_t slot_capacity_for(std::size_t entries) {
  // Keep load factor under ~0.7 so linear probes stay short.
  const std::size_t want = entries + entries / 2 + kMinSlots;
  return std::bit_ceil(want);
}

/// Zeroed slot allocation. Large tables are mapped anonymously and
/// advised into transparent hugepages: the probe sequence is
/// uniform-random over tens of MB, so 4 KB pages thrash the TLB and
/// make every probe a page walk — with hugepages the whole table needs
/// a few dozen TLB entries. The mapping is also lazily zeroed by the
/// kernel, so construction does not pay an explicit 64 MB memset.
/// Small tables fall back to calloc.
constexpr std::size_t kMmapThreshold = std::size_t{4} << 20;

struct RawSlots {
  std::uint64_t* ptr = nullptr;
  std::size_t mapped_bytes = 0;  ///< 0 when calloc'd.
};

[[nodiscard]] RawSlots alloc_slots(std::size_t count) {
  const std::size_t bytes = count * sizeof(std::uint64_t);
#if defined(__linux__)
  if (bytes >= kMmapThreshold) {
    void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem != MAP_FAILED) {
      (void)madvise(mem, bytes, MADV_HUGEPAGE);
      return {static_cast<std::uint64_t*>(mem), bytes};
    }
  }
#endif
  auto* p = static_cast<std::uint64_t*>(
      std::calloc(count, sizeof(std::uint64_t)));
  if (p == nullptr) throw std::bad_alloc();
  return {p, 0};
}

inline void prefetch_rw(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 1);
#else
  (void)p;
#endif
}

}  // namespace

void CsrGraphBuilder::SlotDeleter::operator()(
    std::uint64_t* p) const noexcept {
  if (p == nullptr) return;
#if defined(__linux__)
  if (mapped_bytes != 0) {
    (void)munmap(p, mapped_bytes);
    return;
  }
#endif
  std::free(p);
}

CsrGraphBuilder::CsrGraphBuilder(std::size_t num_nodes,
                                 std::size_t expected_edges,
                                 std::size_t expected_checked_edges)
    : num_nodes_(num_nodes), degree_(num_nodes, 0) {
  if (num_nodes > std::numeric_limits<NodeId>::max()) {
    throw std::length_error("CsrGraphBuilder: node count overflows NodeId");
  }
  if (expected_checked_edges == SIZE_MAX) {
    expected_checked_edges = expected_edges;
  }
  edges_.reserve(expected_edges);
  slot_count_ = slot_capacity_for(expected_checked_edges);
  const RawSlots raw = alloc_slots(slot_count_);
  slots_ = decltype(slots_)(raw.ptr, SlotDeleter{raw.mapped_bytes});
  slot_mask_ = slot_count_ - 1;
}

bool CsrGraphBuilder::set_contains(std::uint64_t key) const noexcept {
  std::size_t i = util::mix64(key) & slot_mask_;
  while (true) {
    const std::uint64_t s = slots_[i];
    if (s == key) return true;
    if (s == kEmptySlot) return false;
    i = (i + 1) & slot_mask_;
  }
}

bool CsrGraphBuilder::set_try_insert(std::uint64_t key) {
  std::size_t i = util::mix64(key) & slot_mask_;
  while (true) {
    const std::uint64_t s = slots_[i];
    if (s == key) return false;
    if (s == kEmptySlot) break;
    i = (i + 1) & slot_mask_;
  }
  slots_[i] = key;
  ++used_;
  return true;
}

void CsrGraphBuilder::reserve_slots(std::size_t entries) {
  if (entries * 10 <= slot_count_ * 7) return;
  std::size_t new_count = slot_count_;
  while (entries * 10 > new_count * 7) new_count *= 2;
  const auto old = std::move(slots_);
  const std::size_t old_count = slot_count_;
  const RawSlots raw = alloc_slots(new_count);
  slots_ = decltype(slots_)(raw.ptr, SlotDeleter{raw.mapped_bytes});
  slot_count_ = new_count;
  slot_mask_ = new_count - 1;
  for (std::size_t k = 0; k < old_count; ++k) {
    const std::uint64_t key = old[k];
    if (key == kEmptySlot) continue;
    std::size_t i = util::mix64(key) & slot_mask_;
    while (slots_[i] != kEmptySlot) i = (i + 1) & slot_mask_;
    slots_[i] = key;
  }
}

bool CsrGraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return false;
  reserve_slots(used_ + 1);
  const std::uint64_t key = edge_key(u, v);
  if (!set_try_insert(key)) return false;
  edges_.emplace_back(u, v);
  ++degree_[u];
  ++degree_[v];
  return true;
}

void CsrGraphBuilder::add_edges(
    std::span<const std::pair<NodeId, NodeId>> batch) {
  // Rolling prefetch: warm the probe slot and both degree counters a
  // fixed distance ahead while inserting in order. The distance paces
  // one batch of prefetches per processed edge, which keeps the miss
  // queue full without overflowing the core's fill buffers (a bursty
  // prefetch-the-whole-chunk pattern drops most of its prefetches).
  // Growth is hoisted: reserving for the accept-everything upper bound
  // keeps slot addresses stable across the whole walk.
  reserve_slots(used_ + batch.size());
  constexpr std::size_t kAhead = 16;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i + kAhead < batch.size()) {
      const auto& [pu, pv] = batch[i + kAhead];
      if (pu != pv && pu < num_nodes_ && pv < num_nodes_) {
        prefetch_rw(&slots_[util::mix64(edge_key(pu, pv)) & slot_mask_]);
        prefetch_rw(&degree_[pu]);
        prefetch_rw(&degree_[pv]);
      }
    }
    const auto& [u, v] = batch[i];
    if (u == v || u >= num_nodes_ || v >= num_nodes_) continue;
    if (!set_try_insert(edge_key(u, v))) continue;
    edges_.emplace_back(u, v);
    ++degree_[u];
    ++degree_[v];
  }
}

void CsrGraphBuilder::add_edges_unique(
    std::span<const std::pair<NodeId, NodeId>> batch) {
  // Caller-guaranteed-fresh edges: no duplicate-set probe, so the only
  // random accesses left are the two degree counters (prefetched a
  // fixed distance ahead); the stream append is sequential. Invalid
  // pairs are still skipped defensively, matching add_edge's filter.
  edges_.reserve(edges_.size() + batch.size());
  constexpr std::size_t kAhead = 16;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i + kAhead < batch.size()) {
      const auto& [pu, pv] = batch[i + kAhead];
      if (pu < num_nodes_ && pv < num_nodes_) {
        prefetch_rw(&degree_[pu]);
        prefetch_rw(&degree_[pv]);
      }
    }
    const auto& [u, v] = batch[i];
    if (u == v || u >= num_nodes_ || v >= num_nodes_) continue;
    edges_.emplace_back(u, v);
    ++degree_[u];
    ++degree_[v];
  }
}

bool CsrGraphBuilder::has_edge(NodeId u, NodeId v) const noexcept {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return false;
  return set_contains(edge_key(u, v));
}

Graph CsrGraphBuilder::build(std::size_t threads) {
  const std::size_t entries = 2 * edges_.size();
  if (entries > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("CsrGraphBuilder: edge count overflows CSR");
  }

  // Uninitialized output buffers: the scatter writes every slot exactly
  // once (the offsets are exact degree prefix sums), so value-init
  // would be a wasted full write pass over the largest array.
  auto offsets =
      std::make_unique_for_overwrite<std::uint32_t[]>(num_nodes_ + 1);
  std::uint32_t cursor = 0;
  for (std::size_t u = 0; u < num_nodes_; ++u) {
    offsets[u] = cursor;
    cursor += degree_[u];
  }
  offsets[num_nodes_] = cursor;

  auto neighbors = std::make_unique_for_overwrite<NodeId[]>(entries);

  // Scatter pass. Legacy Graph::add_edge(u, v) appends v to u's list and
  // u to v's list, so a node's CSR row is its incident edges in stream
  // order. Each shard owns a contiguous node range (split by degree
  // mass, not node count — two-tier graphs concentrate edges on a few
  // ultrapeers) and replays the whole stream writing only rows it owns;
  // no shard writes another's bytes, so the output is independent of
  // `threads` and matches the sequential order exactly.
  //
  // Two-stage rolling prefetch: the scatter has a dependent miss chain
  // (read cursors[u], then write neighbors[cursors[u]]), so a single
  // prefetch distance can only hide one level. At 2*kAhead the cursor
  // line is requested; at kAhead the (by then cached) cursor value is
  // read to request the neighbor-row line. The cursor may advance a few
  // slots before the real write, but a row's writes land consecutively,
  // so the prefetched line is almost always the one touched.
  const auto fill_range = [&](NodeId lo, NodeId hi) {
    if (lo >= hi) return;
    std::vector<std::uint32_t> cursors(offsets.get() + lo,
                                       offsets.get() + hi);
    constexpr std::size_t kAhead = 16;
    const std::size_t n_edges = edges_.size();
    for (std::size_t i = 0; i < n_edges; ++i) {
      if (i + 2 * kAhead < n_edges) {
        const auto& [pu, pv] = edges_[i + 2 * kAhead];
        if (pu >= lo && pu < hi) prefetch_rw(&cursors[pu - lo]);
        if (pv >= lo && pv < hi) prefetch_rw(&cursors[pv - lo]);
      }
      if (i + kAhead < n_edges) {
        const auto& [pu, pv] = edges_[i + kAhead];
        if (pu >= lo && pu < hi) prefetch_rw(&neighbors[cursors[pu - lo]]);
        if (pv >= lo && pv < hi) prefetch_rw(&neighbors[cursors[pv - lo]]);
      }
      const auto& [u, v] = edges_[i];
      if (u >= lo && u < hi) neighbors[cursors[u - lo]++] = v;
      if (v >= lo && v < hi) neighbors[cursors[v - lo]++] = u;
    }
  };

  std::size_t n_threads =
      threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : threads;
  if (n_threads <= 1 || num_nodes_ < 2 || entries < (std::size_t{1} << 16)) {
    fill_range(0, static_cast<NodeId>(num_nodes_));
  } else {
    if (n_threads > num_nodes_) n_threads = num_nodes_;
    // Split nodes so each shard carries ~equal degree mass.
    std::vector<NodeId> bounds(n_threads + 1, 0);
    bounds[n_threads] = static_cast<NodeId>(num_nodes_);
    NodeId u = 0;
    for (std::size_t t = 1; t < n_threads; ++t) {
      const std::uint32_t target =
          static_cast<std::uint32_t>((entries * t) / n_threads);
      while (u < num_nodes_ && offsets[u] < target) ++u;
      bounds[t] = u;
    }
    util::parallel_for_blocks(
        n_threads, n_threads, [&](std::size_t t_begin, std::size_t t_end) {
          for (std::size_t t = t_begin; t < t_end; ++t) {
            fill_range(bounds[t], bounds[t + 1]);
          }
        });
  }

  degree_.assign(num_nodes_, 0);
  edges_.clear();
  slot_count_ = slot_capacity_for(0);
  const RawSlots raw = alloc_slots(slot_count_);
  slots_ = decltype(slots_)(raw.ptr, SlotDeleter{raw.mapped_bytes});
  slot_mask_ = slot_count_ - 1;
  used_ = 0;
  return Graph::from_csr_buffers(std::move(offsets), std::move(neighbors),
                                 num_nodes_);
}

}  // namespace qcp2p::overlay
