// Streaming CSR graph construction: the topology generators' fast path.
//
// The legacy build phase (Graph::add_edge into per-node vectors, then
// freeze()) allocates one heap block per node and pays a linear
// has_edge() scan per insert; at 10^6 nodes the allocator and the
// rehash/realloc churn dominate build time. CsrGraphBuilder replaces
// that phase with three flat arrays — an emission-ordered edge stream,
// a per-node degree counter, and one open-addressing set of packed
// (min, max) edge keys for O(1) duplicate rejection — then packs the
// stream straight into frozen CSR form with a two-pass
// count/prefix-sum/scatter build, skipping the intermediate
// vector<vector> adjacency entirely.
//
// Determinism contract: build(threads) shards the scatter by node
// ranges (balanced by degree mass); every node's neighbor row is written
// by exactly one shard scanning the edge stream in emission order, so
// the output is byte-identical for any `threads` value AND identical to
// the legacy adjacency+freeze path fed the same add_edge calls
// (tests/overlay_stream_build_test pins both properties).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/overlay/graph.hpp"

namespace qcp2p::overlay {

class CsrGraphBuilder {
 public:
  /// @param expected_edges sizing hint: reserves the edge stream and the
  /// duplicate set up front so steady-state emission never rehashes.
  /// @param expected_checked_edges separate hint for the duplicate set
  /// when the emitter routes most edges through add_edges_unique (e.g.
  /// two-tier only dedups its ultrapeer mesh): the set table is faulted
  /// and zeroed by the kernel page by page, so sizing it to the checked
  /// subset instead of the full edge count avoids touching tens of MB
  /// that would stay empty. SIZE_MAX (default) means "same as
  /// expected_edges"; an undershoot only costs a rehash, never
  /// correctness.
  explicit CsrGraphBuilder(
      std::size_t num_nodes, std::size_t expected_edges = 0,
      std::size_t expected_checked_edges = SIZE_MAX);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] std::size_t degree(NodeId u) const { return degree_[u]; }

  /// Appends the undirected edge {u, v} to the stream. Self-loops,
  /// duplicates, and out-of-range endpoints are rejected (returns
  /// false), matching Graph::add_edge exactly.
  bool add_edge(NodeId u, NodeId v);

  /// Equivalent to calling add_edge on every pair in order (same
  /// accept/reject semantics, results discarded), but processed in a
  /// software-prefetched pipeline: the duplicate-set probe and the
  /// degree-counter touches are random accesses into tables far larger
  /// than cache, and batching turns a chain of dependent misses into
  /// overlapped ones. Emitters whose accept decisions do not feed back
  /// into the pick sequence (configuration-model pairing, pre-deduped
  /// attach lists) should prefer this entry point.
  void add_edges(std::span<const std::pair<NodeId, NodeId>> batch);

  /// Appends edges the CALLER guarantees are valid (in range, no
  /// self-loops) and globally fresh (not equal to any edge previously
  /// added or added later through any entry point). Skips the duplicate
  /// set entirely — the probe into the tens-of-MB key table is the one
  /// unavoidable DRAM miss of checked insertion, and emitters that
  /// dedup locally (two-tier leaf attachment: a leaf's only edges are
  /// made in its own attach round) don't need it. Consequence: edges
  /// added here are invisible to has_edge() and to add_edge()'s
  /// duplicate rejection, so the guarantee must cover every later call.
  /// Graph::add_edges_unique keeps full checking, so the equivalence
  /// tests catch any caller that violates the contract.
  void add_edges_unique(std::span<const std::pair<NodeId, NodeId>> batch);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// The accepted edges in emission order (connectivity patching reads
  /// this instead of adjacency lists).
  [[nodiscard]] std::span<const std::pair<NodeId, NodeId>> edges()
      const noexcept {
    return edges_;
  }

  /// Packs the stream into a frozen Graph and leaves the builder empty.
  /// `threads` only shards the scatter; the result is byte-identical
  /// for any value (0 = hardware concurrency).
  [[nodiscard]] Graph build(std::size_t threads = 1);

 private:
  [[nodiscard]] static std::uint64_t edge_key(NodeId u, NodeId v) noexcept {
    const NodeId lo = u < v ? u : v;
    const NodeId hi = u < v ? v : u;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  [[nodiscard]] bool set_contains(std::uint64_t key) const noexcept;
  /// Single probe walk: inserts `key` unless present. Returns true when
  /// the key was newly inserted. Caller must have reserved headroom
  /// (reserve_slots) so the walk terminates under the load cap.
  bool set_try_insert(std::uint64_t key);
  /// Grows the slot table until `entries` keys fit under the load cap.
  void reserve_slots(std::size_t entries);

  std::size_t num_nodes_ = 0;
  std::vector<std::uint32_t> degree_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  /// Open-addressing (linear probe) set of edge keys. Large tables are
  /// anonymous hugepage-advised mappings (lazily zeroed, TLB-friendly
  /// for the random probe stream); small ones calloc. kEmptySlot is 0 —
  /// never a valid key, because lo < hi forces hi >= 1 in every
  /// accepted edge key.
  struct SlotDeleter {
    constexpr SlotDeleter() noexcept = default;
    constexpr explicit SlotDeleter(std::size_t bytes) noexcept
        : mapped_bytes(bytes) {}
    void operator()(std::uint64_t* p) const noexcept;
    std::size_t mapped_bytes = 0;  ///< 0: calloc'd (free); else munmap.
  };
  std::unique_ptr<std::uint64_t[], SlotDeleter> slots_;
  std::size_t slot_count_ = 0;
  std::size_t slot_mask_ = 0;
  std::size_t used_ = 0;

  static constexpr std::uint64_t kEmptySlot = 0;
};

}  // namespace qcp2p::overlay
