#include "src/overlay/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace qcp2p::overlay {

Graph::Graph(const Graph& other)
    : num_nodes_(other.num_nodes_),
      num_edges_(other.num_edges_),
      adjacency_(other.adjacency_),
      frozen_(other.frozen_) {
  if (frozen_) {
    csr_offsets_.assign(other.offsets_ptr_,
                        other.offsets_ptr_ + num_nodes_ + 1);
    csr_neighbors_.assign(other.neighbors_ptr_,
                          other.neighbors_ptr_ + 2 * num_edges_);
    offsets_ptr_ = csr_offsets_.data();
    neighbors_ptr_ = csr_neighbors_.data();
  }
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Graph Graph::from_csr(std::vector<std::uint32_t> offsets,
                      std::vector<NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size() || neighbors.size() % 2 != 0) {
    throw std::invalid_argument("Graph::from_csr: malformed CSR arrays");
  }
  Graph g(offsets.size() - 1);
  g.adjacency_.clear();
  g.adjacency_.shrink_to_fit();
  g.num_edges_ = neighbors.size() / 2;
  g.csr_offsets_ = std::move(offsets);
  g.csr_neighbors_ = std::move(neighbors);
  g.offsets_ptr_ = g.csr_offsets_.data();
  g.neighbors_ptr_ = g.csr_neighbors_.data();
  g.frozen_ = true;
  return g;
}

Graph Graph::from_csr_buffers(std::unique_ptr<std::uint32_t[]> offsets,
                              std::unique_ptr<NodeId[]> neighbors,
                              std::size_t num_nodes) {
  const std::size_t entries = offsets[num_nodes];
  if (offsets[0] != 0 || entries % 2 != 0) {
    throw std::invalid_argument(
        "Graph::from_csr_buffers: malformed CSR arrays");
  }
  Graph g(num_nodes);
  g.adjacency_.clear();
  g.adjacency_.shrink_to_fit();
  g.num_edges_ = entries / 2;
  g.owned_offsets_ = std::move(offsets);
  g.owned_neighbors_ = std::move(neighbors);
  g.offsets_ptr_ = g.owned_offsets_.get();
  g.neighbors_ptr_ = g.owned_neighbors_.get();
  g.frozen_ = true;
  return g;
}

Graph Graph::csr_view(std::span<const std::uint32_t> offsets,
                      std::span<const NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size() || neighbors.size() % 2 != 0) {
    throw std::invalid_argument("Graph::csr_view: malformed CSR arrays");
  }
  Graph g(offsets.size() - 1);
  g.adjacency_.clear();
  g.adjacency_.shrink_to_fit();
  g.num_edges_ = neighbors.size() / 2;
  g.offsets_ptr_ = offsets.data();
  g.neighbors_ptr_ = neighbors.data();
  g.frozen_ = true;
  g.borrowed_ = true;
  return g;
}

void Graph::freeze() {
  if (frozen_) return;
  const std::size_t entries = 2 * num_edges_;
  if (entries > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("Graph::freeze: edge count overflows CSR offsets");
  }
  csr_offsets_.resize(num_nodes_ + 1);
  csr_neighbors_.resize(entries);
  std::uint32_t cursor = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    csr_offsets_[u] = cursor;
    const auto& nbrs = adjacency_[u];
    std::copy(nbrs.begin(), nbrs.end(), csr_neighbors_.begin() + cursor);
    cursor += static_cast<std::uint32_t>(nbrs.size());
  }
  csr_offsets_[num_nodes_] = cursor;
  offsets_ptr_ = csr_offsets_.data();
  neighbors_ptr_ = csr_neighbors_.data();
  adjacency_.clear();
  adjacency_.shrink_to_fit();
  frozen_ = true;
}

void Graph::thaw() {
  if (!frozen_) return;
  adjacency_.resize(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto nbrs = std::span<const NodeId>(
        neighbors_ptr_ + offsets_ptr_[u], offsets_ptr_[u + 1] - offsets_ptr_[u]);
    // Reserve the exact CSR degree so each per-node buffer is allocated
    // once at exactly the right size, whatever growth policy assign()
    // uses (BM_GraphFreezeThaw guards the cost of this loop).
    adjacency_[u].reserve(nbrs.size());
    adjacency_[u].assign(nbrs.begin(), nbrs.end());
  }
  csr_offsets_.clear();
  csr_offsets_.shrink_to_fit();
  csr_neighbors_.clear();
  csr_neighbors_.shrink_to_fit();
  owned_offsets_.reset();
  owned_neighbors_.reset();
  offsets_ptr_ = nullptr;
  neighbors_ptr_ = nullptr;
  frozen_ = false;
  borrowed_ = false;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return false;
  if (has_edge(u, v)) return false;
  thaw();
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

void Graph::add_edges(std::span<const std::pair<NodeId, NodeId>> batch) {
  for (const auto& [u, v] : batch) add_edge(u, v);
}

void Graph::add_edges_unique(
    std::span<const std::pair<NodeId, NodeId>> batch) {
  add_edges(batch);
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  if (!has_edge(u, v)) return false;
  thaw();
  auto& au = adjacency_[u];
  au.erase(std::find(au.begin(), au.end(), v));
  auto& av = adjacency_[v];
  av.erase(std::find(av.begin(), av.end(), u));
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const bool u_smaller = degree(u) <= degree(v);
  const auto smaller = neighbors(u_smaller ? u : v);
  const NodeId target = u_smaller ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<NodeId> Graph::component_of(NodeId start) const {
  std::vector<NodeId> frontier{start};
  std::vector<bool> seen(num_nodes_, false);
  seen[start] = true;
  std::vector<NodeId> component{start};
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        component.push_back(v);
        frontier.push_back(v);
      }
    }
  }
  return component;
}

bool Graph::is_connected() const {
  if (num_nodes_ == 0) return true;
  return component_of(0).size() == num_nodes_;
}

}  // namespace qcp2p::overlay
