#include "src/overlay/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace qcp2p::overlay {

Graph::Graph(const Graph& other)
    : num_nodes_(other.num_nodes_),
      num_edges_(other.num_edges_),
      adjacency_(other.adjacency_),
      frozen_(other.frozen_) {
  if (frozen_) {
    csr_offsets_.assign(other.offsets_ptr_,
                        other.offsets_ptr_ + num_nodes_ + 1);
    csr_neighbors_.assign(other.neighbors_ptr_,
                          other.neighbors_ptr_ + 2 * num_edges_);
    offsets_ptr_ = csr_offsets_.data();
    neighbors_ptr_ = csr_neighbors_.data();
  }
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Graph Graph::from_csr(std::vector<std::uint32_t> offsets,
                      std::vector<NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size() || neighbors.size() % 2 != 0) {
    throw std::invalid_argument("Graph::from_csr: malformed CSR arrays");
  }
  Graph g(offsets.size() - 1);
  g.adjacency_.clear();
  g.adjacency_.shrink_to_fit();
  g.num_edges_ = neighbors.size() / 2;
  g.csr_offsets_ = std::move(offsets);
  g.csr_neighbors_ = std::move(neighbors);
  g.offsets_ptr_ = g.csr_offsets_.data();
  g.neighbors_ptr_ = g.csr_neighbors_.data();
  g.frozen_ = true;
  return g;
}

Graph Graph::from_csr_buffers(std::unique_ptr<std::uint32_t[]> offsets,
                              std::unique_ptr<NodeId[]> neighbors,
                              std::size_t num_nodes) {
  const std::size_t entries = offsets[num_nodes];
  if (offsets[0] != 0 || entries % 2 != 0) {
    throw std::invalid_argument(
        "Graph::from_csr_buffers: malformed CSR arrays");
  }
  Graph g(num_nodes);
  g.adjacency_.clear();
  g.adjacency_.shrink_to_fit();
  g.num_edges_ = entries / 2;
  g.owned_offsets_ = std::move(offsets);
  g.owned_neighbors_ = std::move(neighbors);
  g.offsets_ptr_ = g.owned_offsets_.get();
  g.neighbors_ptr_ = g.owned_neighbors_.get();
  g.frozen_ = true;
  return g;
}

Graph Graph::csr_view(std::span<const std::uint32_t> offsets,
                      std::span<const NodeId> neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size() || neighbors.size() % 2 != 0) {
    throw std::invalid_argument("Graph::csr_view: malformed CSR arrays");
  }
  Graph g(offsets.size() - 1);
  g.adjacency_.clear();
  g.adjacency_.shrink_to_fit();
  g.num_edges_ = neighbors.size() / 2;
  g.offsets_ptr_ = offsets.data();
  g.neighbors_ptr_ = neighbors.data();
  g.frozen_ = true;
  g.borrowed_ = true;
  return g;
}

void Graph::freeze() {
  if (frozen_) return;
  const std::size_t entries = 2 * num_edges_;
  if (entries > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("Graph::freeze: edge count overflows CSR offsets");
  }
  csr_offsets_.resize(num_nodes_ + 1);
  csr_neighbors_.resize(entries);
  std::uint32_t cursor = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    csr_offsets_[u] = cursor;
    const auto& nbrs = adjacency_[u];
    std::copy(nbrs.begin(), nbrs.end(), csr_neighbors_.begin() + cursor);
    cursor += static_cast<std::uint32_t>(nbrs.size());
  }
  csr_offsets_[num_nodes_] = cursor;
  offsets_ptr_ = csr_offsets_.data();
  neighbors_ptr_ = csr_neighbors_.data();
  adjacency_.clear();
  adjacency_.shrink_to_fit();
  frozen_ = true;
}

void Graph::thaw() {
  if (!frozen_) return;
  adjacency_.resize(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto nbrs = std::span<const NodeId>(
        neighbors_ptr_ + offsets_ptr_[u], offsets_ptr_[u + 1] - offsets_ptr_[u]);
    // Reserve the exact CSR degree so each per-node buffer is allocated
    // once at exactly the right size, whatever growth policy assign()
    // uses (BM_GraphFreezeThaw guards the cost of this loop).
    adjacency_[u].reserve(nbrs.size());
    adjacency_[u].assign(nbrs.begin(), nbrs.end());
  }
  csr_offsets_.clear();
  csr_offsets_.shrink_to_fit();
  csr_neighbors_.clear();
  csr_neighbors_.shrink_to_fit();
  owned_offsets_.reset();
  owned_neighbors_.reset();
  offsets_ptr_ = nullptr;
  neighbors_ptr_ = nullptr;
  frozen_ = false;
  borrowed_ = false;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return false;
  if (has_edge(u, v)) return false;
  thaw();
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

void Graph::add_edges(std::span<const std::pair<NodeId, NodeId>> batch) {
  for (const auto& [u, v] : batch) add_edge(u, v);
}

void Graph::add_edges_unique(
    std::span<const std::pair<NodeId, NodeId>> batch) {
  add_edges(batch);
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  if (!has_edge(u, v)) return false;
  thaw();
  auto& au = adjacency_[u];
  au.erase(std::find(au.begin(), au.end(), v));
  auto& av = adjacency_[v];
  av.erase(std::find(av.begin(), av.end(), u));
  --num_edges_;
  return true;
}

std::pair<std::size_t, std::size_t> Graph::apply_delta(
    std::span<const std::pair<NodeId, NodeId>> removes,
    std::span<const std::pair<NodeId, NodeId>> adds) {
  if (!frozen_) {
    std::size_t removed = 0, added = 0;
    for (const auto& [u, v] : removes) removed += remove_edge(u, v);
    for (const auto& [u, v] : adds) added += add_edge(u, v);
    return {removed, added};
  }
  // Validate the batch against the frozen base first, building per-node
  // delta rows. Sequential semantics: every remove happens before any
  // add, so an edge may be removed and re-added in one batch.
  std::unordered_map<NodeId, std::vector<NodeId>> removed_of, added_of;
  const auto contains = [](const std::unordered_map<NodeId,
                                                    std::vector<NodeId>>& of,
                           NodeId u, NodeId v) {
    const auto it = of.find(u);
    return it != of.end() && std::find(it->second.begin(), it->second.end(),
                                       v) != it->second.end();
  };
  std::size_t removed = 0;
  for (const auto& [u, v] : removes) {
    if (u == v || u >= num_nodes_ || v >= num_nodes_) continue;
    if (!has_edge(u, v) || contains(removed_of, u, v)) continue;
    removed_of[u].push_back(v);
    removed_of[v].push_back(u);
    ++removed;
  }
  std::size_t added = 0;
  for (const auto& [u, v] : adds) {
    if (u == v || u >= num_nodes_ || v >= num_nodes_) continue;
    const bool base_present = has_edge(u, v) && !contains(removed_of, u, v);
    if (base_present || contains(added_of, u, v)) continue;
    added_of[u].push_back(v);
    added_of[v].push_back(u);
    ++added;
  }
  if (removed == 0 && added == 0) return {0, 0};

  // One count / prefix-sum / scatter pass from the old CSR to the new:
  // base neighbors stream through in order minus the removed ones, added
  // neighbors append at each row's tail.
  std::vector<std::uint32_t> new_offsets(num_nodes_ + 1, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    std::size_t d = degree(u);
    if (const auto it = removed_of.find(u); it != removed_of.end()) {
      d -= it->second.size();
    }
    if (const auto it = added_of.find(u); it != added_of.end()) {
      d += it->second.size();
    }
    new_offsets[u + 1] = new_offsets[u] + static_cast<std::uint32_t>(d);
  }
  std::vector<NodeId> new_neighbors(new_offsets[num_nodes_]);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    std::uint32_t cursor = new_offsets[u];
    const auto rem = removed_of.find(u);
    for (NodeId v : neighbors(u)) {
      if (rem != removed_of.end() &&
          std::find(rem->second.begin(), rem->second.end(), v) !=
              rem->second.end()) {
        continue;
      }
      new_neighbors[cursor++] = v;
    }
    if (const auto it = added_of.find(u); it != added_of.end()) {
      for (NodeId v : it->second) new_neighbors[cursor++] = v;
    }
  }
  csr_offsets_ = std::move(new_offsets);
  csr_neighbors_ = std::move(new_neighbors);
  owned_offsets_.reset();
  owned_neighbors_.reset();
  offsets_ptr_ = csr_offsets_.data();
  neighbors_ptr_ = csr_neighbors_.data();
  borrowed_ = false;
  num_edges_ = num_edges_ - removed + added;
  return {removed, added};
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const bool u_smaller = degree(u) <= degree(v);
  const auto smaller = neighbors(u_smaller ? u : v);
  const NodeId target = u_smaller ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<NodeId> Graph::component_of(NodeId start) const {
  std::vector<NodeId> frontier{start};
  std::vector<bool> seen(num_nodes_, false);
  seen[start] = true;
  std::vector<NodeId> component{start};
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        component.push_back(v);
        frontier.push_back(v);
      }
    }
  }
  return component;
}

bool Graph::is_connected() const {
  if (num_nodes_ == 0) return true;
  return component_of(0).size() == num_nodes_;
}

}  // namespace qcp2p::overlay
