#include "src/overlay/graph.hpp"

#include <algorithm>

namespace qcp2p::overlay {

bool Graph::add_edge(NodeId u, NodeId v) {
  if (u == v || u >= adjacency_.size() || v >= adjacency_.size()) return false;
  if (has_edge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  auto& au = adjacency_[u];
  const auto it = std::find(au.begin(), au.end(), v);
  if (it == au.end()) return false;
  au.erase(it);
  auto& av = adjacency_[v];
  av.erase(std::find(av.begin(), av.end(), u));
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= adjacency_.size()) return false;
  const auto& smaller = adjacency_[u].size() <= adjacency_[v].size()
                            ? adjacency_[u]
                            : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<NodeId> Graph::component_of(NodeId start) const {
  std::vector<NodeId> frontier{start};
  std::vector<bool> seen(adjacency_.size(), false);
  seen[start] = true;
  std::vector<NodeId> component{start};
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (NodeId v : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        component.push_back(v);
        frontier.push_back(v);
      }
    }
  }
  return component;
}

bool Graph::is_connected() const {
  if (adjacency_.empty()) return true;
  return component_of(0).size() == adjacency_.size();
}

}  // namespace qcp2p::overlay
