#include "src/overlay/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace qcp2p::overlay {

void Graph::freeze() {
  if (frozen_) return;
  const std::size_t entries = 2 * num_edges_;
  if (entries > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("Graph::freeze: edge count overflows CSR offsets");
  }
  csr_offsets_.resize(num_nodes_ + 1);
  csr_neighbors_.resize(entries);
  std::uint32_t cursor = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    csr_offsets_[u] = cursor;
    const auto& nbrs = adjacency_[u];
    std::copy(nbrs.begin(), nbrs.end(), csr_neighbors_.begin() + cursor);
    cursor += static_cast<std::uint32_t>(nbrs.size());
  }
  csr_offsets_[num_nodes_] = cursor;
  adjacency_.clear();
  adjacency_.shrink_to_fit();
  frozen_ = true;
}

void Graph::thaw() {
  if (!frozen_) return;
  adjacency_.resize(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto nbrs = std::span<const NodeId>(
        csr_neighbors_.data() + csr_offsets_[u],
        csr_offsets_[u + 1] - csr_offsets_[u]);
    adjacency_[u].assign(nbrs.begin(), nbrs.end());
  }
  csr_offsets_.clear();
  csr_offsets_.shrink_to_fit();
  csr_neighbors_.clear();
  csr_neighbors_.shrink_to_fit();
  frozen_ = false;
}

bool Graph::add_edge(NodeId u, NodeId v) {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return false;
  if (has_edge(u, v)) return false;
  thaw();
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  if (!has_edge(u, v)) return false;
  thaw();
  auto& au = adjacency_[u];
  au.erase(std::find(au.begin(), au.end(), v));
  auto& av = adjacency_[v];
  av.erase(std::find(av.begin(), av.end(), u));
  --num_edges_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const bool u_smaller = degree(u) <= degree(v);
  const auto smaller = neighbors(u_smaller ? u : v);
  const NodeId target = u_smaller ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<NodeId> Graph::component_of(NodeId start) const {
  std::vector<NodeId> frontier{start};
  std::vector<bool> seen(num_nodes_, false);
  seen[start] = true;
  std::vector<NodeId> component{start};
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        component.push_back(v);
        frontier.push_back(v);
      }
    }
  }
  return component;
}

bool Graph::is_connected() const {
  if (num_nodes_ == 0) return true;
  return component_of(0).size() == num_nodes_;
}

}  // namespace qcp2p::overlay
