// Query Routing Protocol (QRP) — the content synopsis mechanism deployed
// in real (post-2002) Gnutella, and the natural *content-centric*
// baseline for the paper's query-centric proposal.
//
// Each leaf hashes every keyword of its shared files into a fixed-size
// bit table and uploads the table to its ultrapeers. An ultrapeer
// delivers a query to a leaf only if EVERY query term hits the leaf's
// table, so leaf links are spared almost all of the flood traffic. The
// table is complete over the leaf's keywords (no false negatives) but
// hash collisions cause false positives.
//
// QRP embodies exactly the assumption the paper challenges: it describes
// what a peer HAS, not what users ASK — it cannot make rare content
// findable, it only prunes the last hop. bench/exp_qrp_filtering
// quantifies both properties.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/network.hpp"

namespace qcp2p::sim {

/// One leaf's QRP keyword table.
class QrpTable {
 public:
  /// @param bits  table size; real servents ship 64Ki slots. Must be > 0.
  explicit QrpTable(std::size_t bits = 65'536);

  void add_term(TermId term) noexcept;
  [[nodiscard]] bool may_contain(TermId term) const noexcept;
  /// True when every query term may be present (conjunctive routing).
  [[nodiscard]] bool may_match(std::span<const TermId> query) const noexcept;

  [[nodiscard]] std::size_t bit_count() const noexcept {
    return bits_.size();
  }
  [[nodiscard]] double fill_ratio() const noexcept;

 private:
  [[nodiscard]] std::size_t slot(TermId term) const noexcept;
  std::vector<bool> bits_;
};

/// Two-tier Gnutella network with QRP last-hop filtering.
class QrpNetwork {
 public:
  /// Builds per-leaf tables from the store (each leaf registers every
  /// term of every object it shares — QRP tables are complete).
  QrpNetwork(const overlay::TwoTierTopology& topology, const PeerStore& store,
             std::size_t table_bits = 65'536);

  struct SearchResult {
    std::vector<std::uint64_t> results;
    std::uint64_t up_messages = 0;     // ultrapeer-tier transmissions
    std::uint64_t leaf_messages = 0;   // query deliveries to leaves
    std::uint64_t leaf_suppressed = 0; // deliveries QRP filtered out
    std::size_t peers_probed = 0;
    FaultStats fault;

    [[nodiscard]] std::uint64_t total_messages() const noexcept {
      return up_messages + leaf_messages;
    }
  };

  /// Floods the ultrapeer tier to `ttl`, delivering to leaves only when
  /// their QRP table matches. The source's own ultrapeers also screen
  /// their leaves at hop 0. BFS state and match buffers come from
  /// `scratch` (one per worker); QrpNetwork itself is immutable after
  /// construction and shared read-only across workers. With `faults`,
  /// UP-tier relays and leaf deliveries may be dropped in flight and
  /// the plan's offline peers neither relay nor answer; an offline
  /// source issues nothing.
  ///
  /// Ranked mode (Query::k > 0 at the engine layer): pass `ranked` and
  /// every probe feeds scored matches through the shared admission
  /// collector (scratch.topk_seen dedup, `min_score` threshold) instead
  /// of filling SearchResult::results. QRP's traffic is unchanged —
  /// screening already bounds it, so there is no early termination.
  [[nodiscard]] SearchResult search(NodeId source,
                                    std::span<const TermId> query,
                                    std::uint32_t ttl, SearchScratch& scratch,
                                    FaultSession* faults = nullptr,
                                    float min_score = 0.0f,
                                    std::vector<ScoredMatch>* ranked =
                                        nullptr) const;

  /// Convenience overload with a local scratch.
  [[nodiscard]] SearchResult search(NodeId source,
                                    std::span<const TermId> query,
                                    std::uint32_t ttl) const;

  [[nodiscard]] const QrpTable& table(NodeId leaf) const {
    return tables_.at(leaf);
  }
  /// Mean false-positive probability of the leaf tables at current fill.
  [[nodiscard]] double mean_fill() const;

 private:
  const overlay::TwoTierTopology* topology_;
  const PeerStore* store_;
  std::vector<QrpTable> tables_;  // indexed by node id; UPs keep empty tables
};

}  // namespace qcp2p::sim
