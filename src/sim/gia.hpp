// Gia baseline (Chawathe et al., SIGCOMM'03): capacity-aware topology,
// one-hop (pointer) replication of indices to neighbors, and
// capacity-biased random walks.
//
// The IPPS'08 paper's related-work claim: Gia was evaluated with objects
// placed uniformly on up to 0.5% of peers, but under the measured Zipf
// distribution fewer than 1% of objects reach that replication level, so
// the published success rates do not transfer. bench/exp_gia_uniform_vs_zipf
// regenerates that comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/network.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

struct GiaSearchParams {
  std::uint32_t max_steps = 512;      // total walk budget (messages)
  std::size_t stop_after_results = 1;
  /// Bias: probability of picking the highest-capacity neighbor instead
  /// of a uniform one (Gia always prefers high capacity; we keep it
  /// stochastic to avoid walk traps).
  double capacity_bias = 0.85;
};

struct GiaSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;
  std::size_t peers_probed = 0;
  bool success = false;
  FaultStats fault;
};

/// Gia network = capacity topology + content + one-hop replicated index.
class GiaNetwork {
 public:
  GiaNetwork(overlay::GiaTopology topology, PeerStore store);

  [[nodiscard]] const Graph& graph() const noexcept { return topology_.graph; }
  [[nodiscard]] const PeerStore& store() const noexcept { return store_; }
  [[nodiscard]] double capacity(NodeId v) const {
    return topology_.capacity.at(v);
  }

  /// Match against the peer's own library AND its one-hop replicated
  /// neighbor indices (Gia's key amplification of effective coverage).
  /// With an `online` mask, dead neighbors' content is excluded: their
  /// index entry is stale — the download target is gone.
  [[nodiscard]] std::vector<std::uint64_t> match_with_one_hop(
      NodeId peer, std::span<const TermId> query,
      const std::vector<bool>* online = nullptr) const;

  /// Zero-allocation variant: appends the peer's (sorted, deduplicated)
  /// one-hop hits to `hits`, using `scratch` for the per-probe buffers.
  void match_with_one_hop(NodeId peer, std::span<const TermId> query,
                          const std::vector<bool>* online,
                          SearchScratch& scratch,
                          std::vector<std::uint64_t>& hits) const;

  /// Capacity-biased random walk with one-hop index checks.
  [[nodiscard]] GiaSearchResult search(NodeId source,
                                       std::span<const TermId> query,
                                       const GiaSearchParams& params,
                                       util::Rng& rng) const;

  /// Zero-allocation variant: per-probe match buffers come from
  /// `scratch` (one per worker); results identical for any scratch state.
  [[nodiscard]] GiaSearchResult search(NodeId source,
                                       std::span<const TermId> query,
                                       const GiaSearchParams& params,
                                       util::Rng& rng,
                                       SearchScratch& scratch) const;

  /// Object-replica lookup (Fig 8-style): walk until a node holding (or
  /// neighboring a holder of) the object is visited.
  [[nodiscard]] GiaSearchResult locate(NodeId source,
                                       std::span<const NodeId> holders,
                                       const GiaSearchParams& params,
                                       util::Rng& rng) const;

  // Single-attempt primitives: one walk under an optional fault stream
  // (dropped or dead-peer steps burn walk budget in place). These are
  // the building blocks of the registry's "gia" engine; wrap that engine
  // in with_faults() (see fault_decorator.hpp) for timeout / retry /
  // budget-escalation recovery.

  [[nodiscard]] GiaSearchResult search_once(NodeId source,
                                            std::span<const TermId> query,
                                            const GiaSearchParams& params,
                                            util::Rng& rng,
                                            FaultSession* faults,
                                            SearchScratch& scratch) const;

  /// Ranked single-attempt walk (Query::k > 0): scored one-hop probes
  /// feed the shared admission collector (scratch.topk_seen dedup,
  /// `min_score` threshold) and the walk ends early after
  /// kRankedStallProbes consecutive probes that admit nothing into the
  /// current top-k (TopKTracker stability, DESIGN.md §11) once at least
  /// one admitted result is held. Scored matches accumulate into
  /// `ranked`; GiaSearchResult::results stays empty and success means
  /// "anything admitted".
  [[nodiscard]] GiaSearchResult search_ranked_once(
      NodeId source, std::span<const TermId> query, std::uint32_t k,
      float min_score, const GiaSearchParams& params, util::Rng& rng,
      FaultSession* faults, SearchScratch& scratch,
      std::vector<ScoredMatch>& ranked) const;
  [[nodiscard]] GiaSearchResult locate_once(NodeId source,
                                            std::span<const NodeId> holders,
                                            const GiaSearchParams& params,
                                            util::Rng& rng,
                                            FaultSession* faults) const;

 private:
  [[nodiscard]] NodeId biased_step(NodeId at, double bias,
                                   util::Rng& rng) const;

  overlay::GiaTopology topology_;
  PeerStore store_;
};

}  // namespace qcp2p::sim
