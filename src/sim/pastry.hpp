// Pastry DHT (Rowstron & Druschel, Middleware 2001) — the second
// structured overlay the paper cites. Simulation-grade like ChordDht:
// the membership is materialized up front, but routing is faithful —
// prefix-based forwarding over a 2^b-ary digit space with a leaf set,
// giving O(log_{2^b} N) hops.
//
// Included as a comparator substrate: bench/exp_dht_compare contrasts
// Chord's finger routing and Pastry's prefix routing hop counts; the
// paper's Section V conclusions are DHT-agnostic, and this shows it.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/network.hpp"

namespace qcp2p::sim {

class PastryDht {
 public:
  /// @param b     digit width in bits (2^b-ary digits); default 4 (hex).
  /// @param leaf  half-size of the leaf set (|L|/2 nearest each side).
  PastryDht(std::size_t num_nodes, std::uint64_t seed = 0xBA57ULL,
            std::uint32_t b = 4, std::size_t leaf = 8);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return node_ids_.size();
  }
  [[nodiscard]] std::uint64_t node_id(NodeId node) const {
    return node_ids_.at(node);
  }

  /// Node whose id is numerically closest to `key` on the circular id
  /// space — ground truth, no routing.
  [[nodiscard]] NodeId closest_of(std::uint64_t key) const;

  struct LookupResult {
    NodeId node = 0;
    std::uint32_t hops = 0;
  };

  /// Prefix routing from `from` to the node responsible for `key`.
  [[nodiscard]] LookupResult lookup(std::uint64_t key, NodeId from) const;

  [[nodiscard]] std::uint32_t digit_bits() const noexcept { return b_; }

 private:
  [[nodiscard]] std::uint32_t digit(std::uint64_t id,
                                    std::uint32_t row) const noexcept;
  [[nodiscard]] std::uint32_t shared_prefix(std::uint64_t a,
                                            std::uint64_t b) const noexcept;
  [[nodiscard]] static std::uint64_t ring_distance(std::uint64_t a,
                                                   std::uint64_t b) noexcept;
  [[nodiscard]] bool in_leaf_range(NodeId node, std::uint64_t key) const;

  std::uint32_t b_;
  std::uint32_t rows_;
  std::size_t leaf_half_;
  std::vector<std::uint64_t> node_ids_;                 // node -> id
  std::vector<std::pair<std::uint64_t, NodeId>> ring_;  // sorted by id
  std::vector<std::size_t> ring_pos_;                   // node -> ring index
  // Routing-table entries are resolved on demand by binary search over
  // ring_ (nodes sharing a prefix occupy a contiguous range), which
  // yields the same next hops as materialized Pastry tables.
  static constexpr NodeId kNone = ~NodeId{0};
};

}  // namespace qcp2p::sim
