#include "src/sim/serving_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace qcp2p::sim {

namespace {
// Linear region: one bucket per microsecond below 2^kLinearBits.
constexpr std::size_t kLinearBits = 6;   // 64 us
constexpr std::size_t kSubBits = 5;      // 32 sub-buckets per octave
constexpr std::size_t kLinearBuckets = std::size_t{1} << kLinearBits;
constexpr std::size_t kOctaves = 64 - kLinearBits;  // up to 2^63 us
constexpr std::size_t kBuckets =
    kLinearBuckets + kOctaves * (std::size_t{1} << kSubBits);
}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_of(std::uint64_t us) noexcept {
  if (us < kLinearBuckets) return static_cast<std::size_t>(us);
  const auto msb = static_cast<std::size_t>(std::bit_width(us) - 1);
  const std::size_t sub =
      static_cast<std::size_t>(us >> (msb - kSubBits)) & ((1u << kSubBits) - 1);
  return kLinearBuckets + (msb - kLinearBits) * (std::size_t{1} << kSubBits) +
         sub;
}

std::uint64_t LatencyHistogram::bucket_floor_us(std::size_t b) noexcept {
  if (b < kLinearBuckets) return b;
  const std::size_t rel = b - kLinearBuckets;
  const std::size_t octave = kLinearBits + rel / (std::size_t{1} << kSubBits);
  const std::uint64_t sub = rel & ((1u << kSubBits) - 1);
  return (std::uint64_t{1} << octave) | (sub << (octave - kSubBits));
}

void LatencyHistogram::record(double seconds) noexcept {
  const double clamped = seconds > 0.0 ? seconds : 0.0;
  const auto us = static_cast<std::uint64_t>(std::llround(clamped * 1e6));
  ++counts_[bucket_of(us)];
  ++total_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_us_ += other.sum_us_;
  max_us_ = std::max(max_us_, other.max_us_);
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(q, 0.0));
  // Rank of the target sample, 1-based; ceil so q = 1 hits the last one.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) return static_cast<double>(bucket_floor_us(b)) * 1e-6;
  }
  return static_cast<double>(max_us_) * 1e-6;
}

double LatencyHistogram::mean() const noexcept {
  return total_ == 0
             ? 0.0
             : static_cast<double>(sum_us_) * 1e-6 / static_cast<double>(total_);
}

double LatencyHistogram::max() const noexcept {
  return static_cast<double>(max_us_) * 1e-6;
}

void WindowStats::merge(const WindowStats& other) noexcept {
  if (queries == 0 && joins == 0 && leaves == 0) {
    start_s = other.start_s;
  }
  end_s = std::max(end_s, other.end_s);
  queries += other.queries;
  successes += other.successes;
  cache_hits += other.cache_hits;
  timed += other.timed;
  messages += other.messages;
  joins += other.joins;
  leaves += other.leaves;
  latency.merge(other.latency);
}

void ServingStats::push(WindowStats window) {
  total_.merge(window);
  windows_.push_back(std::move(window));
}

}  // namespace qcp2p::sim
