#include "src/sim/shortcuts.hpp"

#include <algorithm>

namespace qcp2p::sim {

ShortcutOverlay::ShortcutOverlay(const Graph& graph, const PeerStore& store,
                                 const ShortcutParams& params)
    : graph_(&graph),
      store_(&store),
      params_(params),
      shortcuts_(graph.num_nodes()),
      engine_(graph) {}

void ShortcutOverlay::learn(NodeId source, NodeId responder) {
  if (responder == source) return;
  auto& list = shortcuts_[source];
  const auto it = std::find(list.begin(), list.end(), responder);
  if (it != list.end()) list.erase(it);  // refresh position
  list.insert(list.begin(), responder);
  if (list.size() > params_.shortcut_budget) list.pop_back();
}

ShortcutSearchResult ShortcutOverlay::search(NodeId source,
                                             std::span<const TermId> query) {
  ShortcutSearchResult out;
  if (query.empty()) return out;
  ++searches_;

  // Local check first.
  out.results = store_->match(source, query);
  if (!out.results.empty()) return out;

  // Phase 1: ask shortcuts, most-recently-useful first.
  for (NodeId shortcut : shortcuts_[source]) {
    ++out.shortcut_messages;
    auto hits = store_->match(shortcut, query);
    if (!hits.empty()) {
      out.results = std::move(hits);
      out.via_shortcut = true;
      ++shortcut_hits_;
      learn(source, shortcut);
      return out;
    }
  }

  // Phase 2: fallback flood; learn every responder.
  const FloodResult flood = engine_.run(source, params_.fallback_ttl);
  out.flood_messages = flood.messages;
  for (NodeId v : flood.reached) {
    auto hits = store_->match(v, query);
    if (!hits.empty()) {
      learn(source, v);
      out.results.insert(out.results.end(), hits.begin(), hits.end());
    }
  }
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  return out;
}

double ShortcutOverlay::shortcut_hit_rate() const noexcept {
  return searches_ == 0 ? 0.0
                        : static_cast<double>(shortcut_hits_) /
                              static_cast<double>(searches_);
}

}  // namespace qcp2p::sim
