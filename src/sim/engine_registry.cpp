#include "src/sim/engine_registry.hpp"

namespace qcp2p::sim {

const EngineEntry* find_engine(std::string_view name) {
  for (const EngineEntry& entry : kEngineRegistry) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::unique_ptr<SearchEngine> make_engine(std::string_view name,
                                          const EngineWorld& world) {
  const EngineEntry* entry = find_engine(name);
  return entry == nullptr ? nullptr : entry->make(world);
}

std::string engine_names() {
  std::string names;
  for (const EngineEntry& entry : kEngineRegistry) {
    if (!names.empty()) names += ", ";
    names += entry.name;
  }
  return names;
}

}  // namespace qcp2p::sim
