// Relocatable on-disk world snapshots.
//
// A "world" — the frozen overlay Graph plus the finalized PeerStore —
// is exactly twelve flat arrays once built. save_world_snapshot() lays
// them out in one arena blob (fixed header, section table, 64-byte
// aligned payloads, no pointers) and writes it to disk; WorldSnapshot::
// load() memory-maps the file read-only, validates the header and every
// section bound, and hands out zero-copy Graph::csr_view / PeerStore::
// flat_view objects over the mapped pages. Loading costs page-cache
// faults instead of a rebuild, and concurrent bench processes mapping
// the same file share one physical copy of the world.
//
// The format is native-endian and versioned; a magic/version/size
// mismatch or any out-of-bounds section throws std::runtime_error
// (tests cover truncated and bit-flipped headers).
#pragma once

#include <cstdint>
#include <string>

#include "src/overlay/graph.hpp"
#include "src/sim/network.hpp"
#include "src/util/arena.hpp"

namespace qcp2p::sim {

/// World identity carried inside the blob so a loaded snapshot can be
/// checked against the parameters a bench meant to run with.
struct WorldSnapshotMeta {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_peers = 0;
  std::uint64_t total_objects = 0;
  /// Free-form builder tag (e.g. the world seed); not interpreted.
  std::uint64_t seed = 0;
};

/// Serializes a frozen graph + finalized store to `path`. Throws
/// std::invalid_argument unless graph.frozen() and store.finalized(),
/// std::runtime_error on I/O failure.
void save_world_snapshot(const std::string& path, const Graph& graph,
                         const PeerStore& store, std::uint64_t seed = 0);

class WorldSnapshot {
 public:
  /// Maps and validates `path`. Throws std::runtime_error on a missing,
  /// truncated, or corrupt file.
  [[nodiscard]] static WorldSnapshot load(const std::string& path);

  WorldSnapshot(WorldSnapshot&&) noexcept = default;
  WorldSnapshot& operator=(WorldSnapshot&&) noexcept = default;
  WorldSnapshot(const WorldSnapshot&) = delete;
  WorldSnapshot& operator=(const WorldSnapshot&) = delete;

  [[nodiscard]] const WorldSnapshotMeta& meta() const noexcept {
    return meta_;
  }
  [[nodiscard]] std::size_t file_size() const noexcept {
    return file_.size();
  }

  /// Zero-copy borrowing views over the mapped arrays. Valid only while
  /// this WorldSnapshot (and anything moved from it) is alive.
  [[nodiscard]] Graph graph_view() const;
  [[nodiscard]] PeerStore store_view() const;

 private:
  WorldSnapshot() = default;

  util::MappedFile file_;
  WorldSnapshotMeta meta_;
  std::span<const std::uint32_t> graph_offsets_;
  std::span<const overlay::NodeId> graph_neighbors_;
  PeerStore::FlatLayout store_layout_;
};

}  // namespace qcp2p::sim
