// Interest-based shortcut overlay (Sripanidkulchai et al.; the semantic
// clustering the paper's related work cites via Fessant/Handurukande):
// peers remember who answered their past queries and try those
// "shortcut" peers first before falling back to flooding.
//
// Included as another classic unstructured-search improvement to test
// against the paper's workload: shortcuts exploit repeated interests, so
// they help exactly as much as query streams re-ask for co-located
// content — and the mismatch + singleton tail bounds that sharply.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/sim/flood.hpp"
#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

struct ShortcutParams {
  /// Max shortcut entries a peer keeps (LRU eviction).
  std::size_t shortcut_budget = 10;
  /// Flood TTL of the fallback phase.
  std::uint32_t fallback_ttl = 3;
};

struct ShortcutSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t shortcut_messages = 0;
  std::uint64_t flood_messages = 0;
  bool via_shortcut = false;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return shortcut_messages + flood_messages;
  }
  [[nodiscard]] bool success() const noexcept { return !results.empty(); }
};

/// Stateful overlay: learns shortcuts from successful searches.
class ShortcutOverlay {
 public:
  ShortcutOverlay(const Graph& graph, const PeerStore& store,
                  const ShortcutParams& params = {});

  /// Tries the source's shortcuts first (1 message each); on a miss,
  /// falls back to a TTL flood. Successful responders are added to the
  /// source's shortcut list (most recent first, LRU eviction).
  [[nodiscard]] ShortcutSearchResult search(NodeId source,
                                            std::span<const TermId> query);

  [[nodiscard]] const std::vector<NodeId>& shortcuts(NodeId peer) const {
    return shortcuts_.at(peer);
  }
  /// Fraction of searches answered by a shortcut so far.
  [[nodiscard]] double shortcut_hit_rate() const noexcept;

 private:
  void learn(NodeId source, NodeId responder);

  const Graph* graph_;
  const PeerStore* store_;
  ShortcutParams params_;
  std::vector<std::vector<NodeId>> shortcuts_;  // MRU-first per peer
  FloodEngine engine_;
  std::uint64_t searches_ = 0;
  std::uint64_t shortcut_hits_ = 0;
};

}  // namespace qcp2p::sim
