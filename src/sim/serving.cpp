#include "src/sim/serving.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "src/sim/timing.hpp"
#include "src/util/thread_pool.hpp"

namespace qcp2p::sim {

namespace {
/// Serving-world object ids for content churn live far above any crawl
/// id so delta objects never collide with base content.
constexpr std::uint64_t kServingIdBase = 1ULL << 62;
}  // namespace

ServingWorld::ServingWorld(overlay::Graph graph, PeerStore store,
                           std::vector<trace::Query> queries,
                           double duration_s, ServingConfig config)
    : config_(std::move(config)),
      graph_(std::move(graph)),
      store_(std::move(store)),
      queries_(std::move(queries)),
      duration_s_(duration_s),
      maintenance_rng_(util::mix64(config_.seed ^ 0x5EF1ULL)),
      next_object_id_(kServingIdBase) {
  if (!graph_.frozen()) graph_.freeze();
  if (!store_.is_finalized()) {
    throw std::invalid_argument("ServingWorld: store must be finalized");
  }
  if (graph_.num_nodes() != store_.num_peers()) {
    throw std::invalid_argument("ServingWorld: graph/store size mismatch");
  }
  if (find_engine(config_.engine) == nullptr) {
    throw std::invalid_argument("ServingWorld: unknown engine '" +
                                config_.engine + "'");
  }
  if (!(config_.window_s > 0.0)) {
    throw std::invalid_argument("ServingWorld: window_s must be positive");
  }
  n_threads_ =
      config_.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config_.threads;

  // One live world: any code path that would silently drop the flat
  // layout (and force a full finalize()) must throw instead.
  store_.set_definalize_policy(PeerStore::DefinalizePolicy::kForbid);

  // Rescale the trace timeline to the requested sustained rate,
  // preserving its shape (diurnal cycle, flash-crowd bursts).
  if (config_.qps > 0.0 && !queries_.empty() && duration_s_ > 0.0) {
    const double target_duration =
        static_cast<double>(queries_.size()) / config_.qps;
    const double f = target_duration / duration_s_;
    for (trace::Query& q : queries_) q.time_s *= f;
    duration_s_ = target_duration;
  }

  const std::size_t n = graph_.num_nodes();
  if (config_.churn_enabled) {
    churn_ = std::make_unique<overlay::ChurnProcess>(n, config_.churn);
    online_ = churn_->online();
    // The steady-state offline set starts tombstoned too, so the store,
    // the mask, and the churn process agree from t = 0.
    std::vector<NodeId> initial_leaves;
    for (NodeId v = 0; v < n; ++v) {
      if (!online_[v]) initial_leaves.push_back(v);
    }
    store_.apply_membership({}, initial_leaves);
  } else {
    online_.assign(n, true);
  }
  mask_at_refreeze_ = online_;

  dht_ = std::make_unique<ChordDht>(n, util::mix64(config_.seed ^ 0xD47ULL));
  if (config_.engine == "adaptive") {
    adaptive_ = std::make_unique<AdaptiveOverlayNetwork>(graph_, store_,
                                                         config_.adaptive);
  }
  if (config_.cache_enabled) {
    ResultCacheParams cp = config_.cache;
    cp.flood_ttl = config_.flood_ttl;
    cache_ = std::make_unique<CachingSearchNetwork>(graph_, store_, cp);
  }
  rebuild_holder_index();
  rebuild_engine();
}

void ServingWorld::rebuild_engine() {
  EngineWorld world;
  world.graph = &graph_;
  world.store = &store_;
  world.dht = dht_.get();
  world.adaptive = adaptive_.get();
  world.adaptive_params = config_.adaptive;
  world.timing = config_.timing;
  engine_ = make_engine(config_.engine, world);
  if (engine_ == nullptr) {
    throw std::invalid_argument(
        "ServingWorld: engine '" + config_.engine +
        "' is not constructible from the serving world");
  }
  // Worker states may cache world-derived structures (DES servent
  // networks); a rebuilt engine invalidates them.
  for (EngineContext& ctx : contexts_) {
    ctx.state.reset();
    ctx.state_owner = nullptr;
  }
}

void ServingWorld::rebuild_holder_index() {
  holder_index_.clear();
  const std::size_t n = store_.num_peers();
  holder_index_.reserve(static_cast<std::size_t>(store_.total_objects()));
  for (NodeId p = 0; p < n; ++p) {
    const std::size_t count = store_.object_count(p);
    for (std::size_t i = 0; i < count; ++i) {
      holder_index_.emplace_back(store_.object_id(p, i), p);
    }
  }
  std::sort(holder_index_.begin(), holder_index_.end());
  delta_holders_.clear();
}

std::vector<NodeId> ServingWorld::holders_of(
    std::span<const std::uint64_t> hits, std::size_t cap) const {
  std::vector<NodeId> holders;
  for (std::uint64_t id : hits) {
    if (holders.size() >= cap) break;
    const auto [lo, hi] = std::equal_range(
        holder_index_.begin(), holder_index_.end(),
        std::make_pair(id, NodeId{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto it = lo; it != hi && holders.size() < cap; ++it) {
      holders.push_back(it->second);
    }
    if (const auto dit = delta_holders_.find(id);
        dit != delta_holders_.end() && holders.size() < cap) {
      holders.push_back(dit->second);
    }
  }
  return holders;
}

void ServingWorld::apply_event(const overlay::MembershipEvent& event,
                               WindowStats& window, ServingReport& report) {
  const NodeId v = event.node;
  const NodeId one[1] = {v};
  if (event.join) {
    ++window.joins;
    online_[v] = true;
    store_.apply_membership(one, {});
    // Content churn: a rejoining peer may bring one new object, cloned
    // from a random base object's term list (keeps the term popularity
    // profile realistic) and landed in the delta layer — never through a
    // de-finalizing add_object().
    if (config_.content_add_prob > 0.0 &&
        maintenance_rng_.chance(config_.content_add_prob)) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto p = static_cast<NodeId>(
            maintenance_rng_.bounded(store_.num_peers()));
        const std::size_t count = store_.object_count(p);
        if (count == 0) continue;
        const auto terms = store_.object_terms(
            p, maintenance_rng_.bounded(count));
        const std::uint64_t id = next_object_id_++;
        store_.add_object_delta(v, id, {terms.begin(), terms.end()});
        delta_holders_.emplace(id, v);
        ++report.content_adds;
        break;
      }
    }
  } else {
    ++window.leaves;
    online_[v] = false;
    store_.apply_membership({}, one);
    if (cache_ != nullptr) {
      cache_->on_peer_leave(v);
      ++report.cache_invalidations;
    }
  }
  ++flips_since_refreeze_;
}

void ServingWorld::maybe_refreeze(ServingReport& report) {
  if (flips_since_refreeze_ < config_.refreeze_batch) return;
  const std::size_t n = graph_.num_nodes();
  std::vector<std::pair<NodeId, NodeId>> removes;
  std::vector<std::pair<NodeId, NodeId>> adds;
  for (NodeId v = 0; v < n; ++v) {
    if (mask_at_refreeze_[v] == online_[v]) continue;
    if (!online_[v]) {
      // Departed since the last re-freeze: detach its edges.
      for (NodeId nbr : graph_.neighbors(v)) removes.emplace_back(v, nbr);
    } else {
      // Returned: re-attach to attach_degree random live peers.
      for (std::size_t k = 0; k < config_.attach_degree; ++k) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto u =
              static_cast<NodeId>(maintenance_rng_.bounded(n));
          if (u == v || !online_[u] || graph_.has_edge(v, u)) continue;
          adds.emplace_back(v, u);
          break;
        }
      }
    }
  }
  const auto [removed, added] = graph_.apply_delta(removes, adds);
  report.edges_removed += removed;
  report.edges_added += added;
  mask_at_refreeze_ = online_;
  flips_since_refreeze_ = 0;
  ++report.refreezes;
  rebuild_engine();
}

void ServingWorld::maybe_compact(ServingReport& report) {
  if (store_.delta_postings() < config_.compact_max_delta) return;
  store_.compact(n_threads_);
  // Compacted content changes the keyword->peer mapping: republish.
  dht_ = std::make_unique<ChordDht>(store_.num_peers(),
                                    util::mix64(config_.seed ^ 0xD47ULL));
  report.dht_publish_messages += dht_->publish_store(store_);
  rebuild_holder_index();
  ++report.compactions;
  rebuild_engine();
}

ServingReport ServingWorld::run() {
  if (ran_) {
    throw std::logic_error("ServingWorld::run: stream already consumed");
  }
  ran_ = true;

  ServingReport report;
  report.dht_publish_messages += dht_->publish_store(store_);

  contexts_.resize(n_threads_);
  const std::size_t nq = queries_.size();
  std::size_t qi = 0;
  double t0 = 0.0;
  while (t0 < duration_s_ || qi < nq) {
    const double t1 = std::min(duration_s_, t0 + config_.window_s);
    const bool last_window = t1 >= duration_s_;
    WindowStats window;
    window.start_s = t0;
    window.end_s = t1;

    // --- sequential maintenance at the window boundary ---
    if (churn_ != nullptr) {
      for (const overlay::MembershipEvent& ev : churn_->drain_events(t0)) {
        apply_event(ev, window, report);
      }
    }
    maybe_refreeze(report);
    maybe_compact(report);
    if (cache_ != nullptr) cache_->advance_clock(t0);

    // --- this window's query slice ---
    std::size_t qj = qi;
    while (qj < nq && (last_window || queries_[qj].time_s < t1)) ++qj;

    std::vector<QueryRecord> records(qj - qi);
    const std::size_t n_shards =
        std::max<std::size_t>(1, std::min(n_threads_, records.size()));
    std::vector<std::size_t> bounds(n_shards + 1);
    for (std::size_t b = 0; b <= n_shards; ++b) {
      bounds[b] = records.size() * b / n_shards;
    }
    const std::size_t n_nodes = graph_.num_nodes();
    // Parallel read-only phase: the world is immutable until the next
    // boundary; each record slot is written by exactly one shard, each
    // query draws from its own rng stream keyed by global index.
    util::parallel_for_blocks(
        n_shards, n_shards, [&](std::size_t b_begin, std::size_t b_end) {
          for (std::size_t b = b_begin; b < b_end; ++b) {
            EngineContext& ctx = contexts_[b];
            for (std::size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
              const std::size_t global = qi + i;
              const trace::Query& tq = queries_[global];
              QueryRecord& rec = records[i];
              if (tq.terms.empty()) continue;
              util::Rng rng(util::mix64(config_.seed ^
                                        (0x9E1ULL + global)));
              ctx.rng = &rng;
              NodeId source = 0;
              for (int attempt = 0; attempt < 16; ++attempt) {
                source = static_cast<NodeId>(rng.bounded(n_nodes));
                if (online_[source]) break;
              }
              rec.source = source;
              const bool ranked_mode = config_.top_k != 0;
              if (cache_ != nullptr) {
                std::uint64_t probes = 0;
                NodeId hit_peer = source;
                bool served = false;
                if (ranked_mode) {
                  const auto* hit = cache_->peek_routed_ranked(
                      source, tq.terms, config_.top_k, config_.min_score,
                      probes, hit_peer);
                  rec.messages += probes;
                  if (hit != nullptr) {
                    // The entry may be wider (larger k) or more
                    // permissive (lower floor) than this request:
                    // re-apply the bounds. Canonical order is
                    // descending score, so the floor cuts a suffix.
                    for (const ScoredMatch& m : *hit) {
                      if (m.score < config_.min_score) break;
                      rec.ranked.push_back(m);
                      if (rec.ranked.size() == config_.top_k) break;
                    }
                    if (!rec.ranked.empty()) {
                      rec.hits.reserve(rec.ranked.size());
                      for (const ScoredMatch& m : rec.ranked) {
                        rec.hits.push_back(m.object);
                      }
                      std::sort(rec.hits.begin(), rec.hits.end());
                      served = true;
                    }
                    // else: every cached result fell below this
                    // request's floor — treat as a miss.
                  }
                } else {
                  const auto* hit =
                      cache_->peek_routed(source, tq.terms, probes, hit_peer);
                  rec.messages += probes;
                  if (hit != nullptr) {
                    rec.hits = *hit;
                    served = true;
                  }
                }
                if (served) {
                  rec.kind = QueryRecord::Kind::kCacheHit;
                  rec.cache_peer = hit_peer;
                  rec.timed = true;
                  // A local hit is free; a neighbor probe hit costs one
                  // round trip on the timing model's mean link.
                  rec.first_hit_s =
                      hit_peer == source
                          ? 0.0
                          : 2.0 * TimingModel(config_.timing).mean_link_s();
                  continue;
                }
              }
              Query query;
              query.source = source;
              query.terms = tq.terms;
              query.ttl = config_.flood_ttl;
              query.budget = config_.walk_budget;
              query.k = config_.top_k;
              query.min_score = config_.min_score;
              query.online = &online_;
              query.trial = global;
              SearchOutcome out = engine_->search(query, ctx);
              rec.messages = out.messages;
              if (out.success) {
                rec.kind = QueryRecord::Kind::kSuccess;
                rec.hits = std::move(out.hits);
                rec.ranked = std::move(out.top_k);
                if (out.timing.has_value() && out.timing->has_first_hit()) {
                  rec.timed = true;
                  rec.first_hit_s = out.timing->first_hit_s;
                }
              }
            }
          }
        });

    // --- sequential replay in global query order ---
    for (std::size_t i = 0; i < records.size(); ++i) {
      QueryRecord& rec = records[i];
      const trace::Query& tq = queries_[qi + i];
      ++window.queries;
      window.messages += rec.messages;
      switch (rec.kind) {
        case QueryRecord::Kind::kCacheHit:
          ++window.successes;
          ++window.cache_hits;
          ++window.timed;
          window.latency.record(rec.first_hit_s);
          cache_->touch(rec.cache_peer, tq.terms);
          if (rec.cache_peer != rec.source) {
            // search() semantics: a routed hit replicates the entry to
            // the requester (same holder registration as a fresh prime).
            std::vector<NodeId> holders = holders_of(rec.hits, 8);
            if (config_.top_k != 0) {
              cache_->prime_ranked(rec.source, tq.terms,
                                   std::move(rec.ranked), config_.top_k,
                                   config_.min_score, holders);
            } else {
              cache_->prime(rec.source, tq.terms, std::move(rec.hits),
                            holders);
            }
          }
          break;
        case QueryRecord::Kind::kSuccess:
          ++window.successes;
          if (rec.timed) {
            ++window.timed;
            window.latency.record(rec.first_hit_s);
          }
          if (cache_ != nullptr) {
            std::vector<NodeId> holders = holders_of(rec.hits, 8);
            if (config_.top_k != 0) {
              cache_->prime_ranked(rec.source, tq.terms,
                                   std::move(rec.ranked), config_.top_k,
                                   config_.min_score, holders);
            } else {
              cache_->prime(rec.source, tq.terms, std::move(rec.hits),
                            holders);
            }
          }
          break;
        case QueryRecord::Kind::kFail:
          break;
      }
      if (adaptive_ != nullptr) adaptive_->observe_query(tq.terms);
    }
    if (adaptive_ != nullptr) {
      report.adaptive_readvertisements += adaptive_->refresh_synopses();
    }

    report.stats.push(std::move(window));
    qi = qj;
    t0 = t1;
    if (last_window) break;
  }

  report.final_online_fraction =
      churn_ != nullptr ? churn_->online_fraction() : 1.0;
  return report;
}

}  // namespace qcp2p::sim
