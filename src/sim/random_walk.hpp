// k-walker random-walk search (Lv et al. / Gia style), the standard
// low-cost alternative to flooding in unstructured overlays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/network.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

struct RandomWalkParams {
  std::uint32_t walkers = 16;
  std::uint32_t max_steps = 128;  // per walker
  /// Stop all walkers once this many results were found (0 = run out).
  std::size_t stop_after_results = 1;
  /// Bias step choice toward high-degree neighbors (Gia-style) instead
  /// of uniform neighbor choice.
  bool degree_biased = false;
};

struct RandomWalkResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;  // one per walker step
  std::size_t peers_probed = 0;
  bool success = false;
  FaultStats fault;
};

/// Object lookup: walk until any holder of `holders` is stepped on.
[[nodiscard]] RandomWalkResult random_walk_locate(
    const Graph& graph, NodeId source, std::span<const NodeId> holders,
    const RandomWalkParams& params, util::Rng& rng);

/// Content search over a PeerStore (conjunctive term query).
[[nodiscard]] RandomWalkResult random_walk_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, const RandomWalkParams& params,
    util::Rng& rng);

/// Zero-allocation variant: per-probe match buffers come from `scratch`
/// (one per worker); results identical for any scratch state.
[[nodiscard]] RandomWalkResult random_walk_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, const RandomWalkParams& params,
    util::Rng& rng, SearchScratch& scratch);

// Fault-injected walks live behind the engine layer: wrap the registry's
// "random-walk" engine in with_faults() (see fault_decorator.hpp). A
// step whose message is dropped, or whose chosen next hop is offline,
// burns the step's budget and leaves the walker in place; empty attempts
// re-walk from the source with the step budget escalated.

}  // namespace qcp2p::sim
