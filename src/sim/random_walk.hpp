// k-walker random-walk search (Lv et al. / Gia style), the standard
// low-cost alternative to flooding in unstructured overlays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/network.hpp"
#include "src/sim/search_scratch.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

struct RandomWalkParams {
  std::uint32_t walkers = 16;
  std::uint32_t max_steps = 128;  // per walker
  /// Stop all walkers once this many results were found (0 = run out).
  std::size_t stop_after_results = 1;
  /// Bias step choice toward high-degree neighbors (Gia-style) instead
  /// of uniform neighbor choice.
  bool degree_biased = false;
};

struct RandomWalkResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;  // one per walker step
  std::size_t peers_probed = 0;
  bool success = false;
  FaultStats fault;
};

/// Object lookup: walk until any holder of `holders` is stepped on.
[[nodiscard]] RandomWalkResult random_walk_locate(
    const Graph& graph, NodeId source, std::span<const NodeId> holders,
    const RandomWalkParams& params, util::Rng& rng);

/// Content search over a PeerStore (conjunctive term query).
[[nodiscard]] RandomWalkResult random_walk_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, const RandomWalkParams& params,
    util::Rng& rng);

/// Zero-allocation variant: per-probe match buffers come from `scratch`
/// (one per worker); results identical for any scratch state.
[[nodiscard]] RandomWalkResult random_walk_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, const RandomWalkParams& params,
    util::Rng& rng, SearchScratch& scratch);

// Fault-injected variants: a step whose message is dropped, or whose
// chosen next hop is offline, burns the step's budget and leaves the
// walker in place (the sender times out waiting for the ack); an attempt
// that ends with no results charges policy.timeout_ms, backs off, scales
// the per-walker step budget by policy.budget_escalation, and re-walks
// from the source, up to policy.max_retries times. With an inert session
// and max_retries 0 these reproduce the fault-free variants bit-for-bit
// (identical rng draws).

[[nodiscard]] RandomWalkResult random_walk_locate(
    const Graph& graph, NodeId source, std::span<const NodeId> holders,
    const RandomWalkParams& params, util::Rng& rng, FaultSession& faults,
    const RecoveryPolicy& policy);

[[nodiscard]] RandomWalkResult random_walk_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, const RandomWalkParams& params,
    util::Rng& rng, FaultSession& faults, const RecoveryPolicy& policy);

/// Zero-allocation variant of the fault-injected search.
[[nodiscard]] RandomWalkResult random_walk_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, const RandomWalkParams& params,
    util::Rng& rng, SearchScratch& scratch, FaultSession& faults,
    const RecoveryPolicy& policy);

}  // namespace qcp2p::sim
