#include "src/sim/fault.hpp"

#include "src/overlay/churn.hpp"

namespace qcp2p::sim {

double RecoveryPolicy::backoff_after(std::uint32_t retry) const noexcept {
  double wait = backoff_ms;
  for (std::uint32_t i = 0; i < retry; ++i) wait *= backoff_factor;
  return wait;
}

FaultPlan FaultPlan::from_churn(const FaultParams& params,
                                const overlay::ChurnProcess& churn) {
  return FaultPlan(params, churn.online());
}

}  // namespace qcp2p::sim
