#include "src/sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/overlay/churn.hpp"

namespace qcp2p::sim {

namespace {

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("sim::fault: ") + what);
}

bool is_unit(double x) noexcept {
  return std::isfinite(x) && x >= 0.0 && x <= 1.0;
}

bool is_nonneg(double x) noexcept { return std::isfinite(x) && x >= 0.0; }

/// Hash of (seed, salt, trial, edge, step) mapped to [0, 1): the burst
/// channel's draw stream. Chained mixes so no operand pair aliases.
double edge_hash_unit(std::uint64_t seed, std::uint64_t salt,
                      std::uint64_t trial, std::uint64_t edge,
                      std::uint64_t step) noexcept {
  const std::uint64_t h = util::mix64(
      util::mix64(util::mix64(util::mix64(seed ^ salt) ^ trial) ^ edge) ^
      step);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kBurstInitSalt = 0x6E057ULL;
constexpr std::uint64_t kBurstDropSalt = 0x6E05DULL;
constexpr std::uint64_t kBurstFlipSalt = 0x6E05FULL;

}  // namespace

void FaultParams::validate() const {
  check(is_unit(loss_rate), "loss_rate must be finite and in [0, 1]");
  check(is_nonneg(jitter_max_ms), "jitter_max_ms must be finite and >= 0");
}

void BurstLossParams::validate() const {
  check(is_unit(loss_good), "burst loss_good must be in [0, 1]");
  check(is_unit(loss_bad), "burst loss_bad must be in [0, 1]");
  check(is_unit(p_good_to_bad), "burst p_good_to_bad must be in [0, 1]");
  check(is_unit(p_bad_to_good), "burst p_bad_to_good must be in [0, 1]");
}

void PartitionParams::validate() const {
  check(std::isfinite(minority_fraction) && minority_fraction >= 0.0 &&
            minority_fraction <= 0.5,
        "partition minority_fraction must be in [0, 0.5]");
}

void StragglerParams::validate() const {
  check(is_unit(fraction), "straggler fraction must be in [0, 1]");
  check(std::isfinite(tail_alpha) && tail_alpha > 0.0,
        "straggler tail_alpha must be > 0");
  check(std::isfinite(max_multiplier) && max_multiplier >= 1.0,
        "straggler max_multiplier must be >= 1");
}

void MidQueryChurnParams::validate() const {
  check(is_unit(crash_fraction), "mid-churn crash_fraction must be in [0, 1]");
}

void ScenarioSpec::validate() const {
  base.validate();
  burst.validate();
  partition.validate();
  straggler.validate();
  mid_churn.validate();
  check(is_unit(offline_fraction), "offline_fraction must be in [0, 1]");
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : kScenarioRegistry) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string scenario_names() {
  std::string out;
  for (const Scenario& s : kScenarioRegistry) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  return out;
}

double RecoveryPolicy::backoff_after(std::uint32_t retry) const noexcept {
  // Cap the exponent and the wait itself: backoff_factor^retry shoots
  // past any meaningful simulated wait (and eventually to inf) for large
  // retry counts.
  constexpr std::uint32_t kMaxExponent = 48;
  constexpr double kMaxWaitMs = 3.6e6;  // one simulated hour
  double wait = backoff_ms;
  const std::uint32_t steps = std::min(retry, kMaxExponent);
  for (std::uint32_t i = 0; i < steps && wait < kMaxWaitMs; ++i) {
    wait *= backoff_factor;
  }
  return std::min(wait, kMaxWaitMs);
}

void RecoveryPolicy::validate() const {
  check(is_nonneg(timeout_ms), "timeout_ms must be finite and >= 0");
  check(is_nonneg(backoff_ms), "backoff_ms must be finite and >= 0");
  check(std::isfinite(backoff_factor) && backoff_factor >= 1.0,
        "backoff_factor must be >= 1");
  check(std::isfinite(budget_escalation) && budget_escalation >= 1.0,
        "budget_escalation must be >= 1");
  check(route_around_width > 0, "route_around_width must be > 0");
  check(std::isfinite(timeout_quantile) && timeout_quantile > 0.0 &&
            timeout_quantile <= 1.0,
        "timeout_quantile must be in (0, 1]");
  check(std::isfinite(hedge_quantile) && hedge_quantile > 0.0 &&
            hedge_quantile <= 1.0,
        "hedge_quantile must be in (0, 1]");
  check(std::isfinite(timeout_multiplier) && timeout_multiplier >= 1.0,
        "timeout_multiplier must be >= 1");
  check(is_nonneg(timeout_floor_ms) && is_nonneg(timeout_ceil_ms) &&
            timeout_floor_ms <= timeout_ceil_ms,
        "timeout floor/ceil must be finite, >= 0, floor <= ceil");
}

FaultPlan FaultPlan::from_churn(const FaultParams& params,
                                const overlay::ChurnProcess& churn) {
  return FaultPlan(params, churn.online());
}

FaultPlan FaultPlan::from_scenario(const ScenarioSpec& spec,
                                   const overlay::Graph& graph,
                                   std::uint64_t seed) {
  spec.validate();
  FaultPlan plan;
  plan.params_ = spec.base;
  // Re-key with the run seed so different seeds draw independent fault
  // patterns from the same scenario (mixed, so seed 0 still perturbs).
  plan.params_.seed = util::mix64(spec.base.seed ^ util::mix64(seed));
  plan.burst_ = spec.burst;
  plan.straggler_ = spec.straggler;
  plan.mid_churn_ = spec.mid_churn;

  const std::size_t n = graph.num_nodes();
  if (spec.offline_fraction > 0.0 && n > 0) {
    util::Rng mask_rng(util::mix64(plan.params_.seed ^ 0x0FF11ULL));
    plan.online_ =
        overlay::sample_online(n, 1.0 - spec.offline_fraction, mask_rng);
    plan.has_mask_ = true;
  }
  if (spec.partition.active() && n > 1) {
    plan.partition_ = spec.partition;
    plan.side_.assign(n, 0);
    // Grow the minority side by BFS from a hashed start node: a
    // connected region splits off, exactly the graph-cut shape a
    // regional outage produces. (On a disconnected graph the side may
    // stop short of the target; the cut is still well defined.)
    const auto target = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               spec.partition.minority_fraction * static_cast<double>(n) +
               0.5));
    std::vector<NodeId> frontier;
    frontier.reserve(target);
    const auto start =
        static_cast<NodeId>(util::mix64(plan.params_.seed ^ 0x9A27ULL) % n);
    frontier.push_back(start);
    plan.side_[start] = 1;
    std::size_t taken = 1;
    for (std::size_t head = 0; head < frontier.size() && taken < target;
         ++head) {
      for (const NodeId w : graph.neighbors(frontier[head])) {
        if (plan.side_[w] != 0) continue;
        plan.side_[w] = 1;
        frontier.push_back(w);
        if (++taken >= target) break;
      }
    }
  }
  return plan;
}

bool FaultSession::deliver_edge(NodeId u, NodeId v,
                                double* jitter_out) noexcept {
  const std::uint64_t i = index_++;
  if (plan_->cut(u, v, i)) {
    ++dropped_;
    record_failure(v);
    return false;
  }
  if (plan_->drops(trial_, i)) {
    ++dropped_;
    record_failure(v);
    return false;
  }
  if (plan_->burst_active() && burst_drops(u, v)) {
    ++dropped_;
    record_failure(v);
    return false;
  }
  if (jitter_out != nullptr) {
    *jitter_out =
        plan_->jitter_ms(trial_, i) * plan_->straggler_scale(trial_, v);
  }
  return true;
}

bool FaultSession::burst_drops(NodeId u, NodeId v) {
  const BurstLossParams& b = plan_->burst_;
  const std::uint64_t lo = std::min(u, v);
  const std::uint64_t hi = std::max(u, v);
  const std::uint64_t edge = (lo << 32) | hi;
  const std::uint64_t seed = plan_->params_.seed;
  EdgeChannel& ch = channels_[edge];
  if (!ch.initialized) {
    ch.initialized = true;
    // Initial state from the chain's stationary distribution, so the
    // first transmission on an edge already sees the long-run mix.
    ch.bad = edge_hash_unit(seed, kBurstInitSalt, trial_, edge, 0) <
             b.stationary_bad();
  }
  const double drop_p = ch.bad ? b.loss_bad : b.loss_good;
  bool dropped = false;
  if (drop_p > 0.0) {
    dropped = edge_hash_unit(seed, kBurstDropSalt, trial_, edge, ch.step) <
              drop_p;
  }
  const double flip_p = ch.bad ? b.p_bad_to_good : b.p_good_to_bad;
  if (flip_p > 0.0 &&
      edge_hash_unit(seed, kBurstFlipSalt, trial_, edge, ch.step) < flip_p) {
    ch.bad = !ch.bad;
  }
  ++ch.step;
  return dropped;
}

double FaultSession::latency_quantile(double q, double fallback) const {
  if (observed_ == 0) return fallback;
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(observed_, samples_.size()));
  std::array<float, 128> tmp;
  std::copy_n(samples_.begin(), n, tmp.begin());
  const std::size_t k =
      std::min(n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(k),
                   tmp.begin() + static_cast<std::ptrdiff_t>(n));
  return static_cast<double>(tmp[k]);
}

}  // namespace qcp2p::sim
