#include "src/sim/dht.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace qcp2p::sim {

ChordDht::ChordDht(std::size_t num_nodes, std::uint64_t seed,
                   std::size_t succ_list_len)
    : seed_(seed) {
  if (num_nodes == 0) throw std::invalid_argument("ChordDht: no nodes");
  ring_.reserve(num_nodes);
  node_ids_.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    // Salted hash; collisions are vanishingly unlikely in 64 bits but we
    // keep ids unique anyway by re-salting.
    std::uint64_t id = util::mix64(seed ^ (0x1D00ULL + v));
    node_ids_[v] = id;
    ring_.emplace_back(id, v);
  }
  std::sort(ring_.begin(), ring_.end());
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    if (ring_[i].first == ring_[i - 1].first) {
      throw std::runtime_error("ChordDht: ring id collision (change seed)");
    }
  }

  successor_.resize(num_nodes);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    successor_[ring_[i].second] = ring_[(i + 1) % ring_.size()].second;
  }

  // Successor lists (replica set / route-around fallback), nearest first.
  succ_lists_.resize(num_nodes);
  const std::size_t r = std::max<std::size_t>(
      1, std::min(succ_list_len, num_nodes > 1 ? num_nodes - 1 : 1));
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    auto& list = succ_lists_[ring_[i].second];
    list.reserve(r);
    for (std::size_t k = 1; k <= r; ++k) {
      list.push_back(ring_[(i + k) % ring_.size()].second);
    }
  }

  // Finger tables: finger j of node v = successor(id(v) + 2^j).
  fingers_.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    fingers_[v].resize(64);
    for (std::uint32_t j = 0; j < 64; ++j) {
      const std::uint64_t target = node_ids_[v] + (1ULL << j);  // wraps mod 2^64
      fingers_[v][j] = successor_of(target);
    }
  }
}

NodeId ChordDht::successor_of(std::uint64_t key) const {
  // First ring entry with id >= key, wrapping to the start.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  return it == ring_.end() ? ring_.front().second : it->second;
}

bool ChordDht::in_open_closed(std::uint64_t a, std::uint64_t b,
                              std::uint64_t x) noexcept {
  // x in (a, b] on the ring; when a == b the interval is the whole ring.
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

NodeId ChordDht::closest_preceding(NodeId node, std::uint64_t key) const noexcept {
  const auto& f = fingers_[node];
  const std::uint64_t nid = node_ids_[node];
  for (std::size_t j = f.size(); j > 0; --j) {
    const NodeId cand = f[j - 1];
    const std::uint64_t cid = node_ids_[cand];
    // cand strictly inside (node, key) moves the query forward.
    if (cand != node && in_open_closed(nid, key, cid) && cid != key) {
      return cand;
    }
  }
  return successor_[node];
}

ChordDht::LookupResult ChordDht::lookup(std::uint64_t key, NodeId from,
                                        SendLog* sends) const {
  if (from >= node_ids_.size()) throw std::out_of_range("ChordDht::lookup");
  LookupResult result;
  NodeId cur = from;
  // Bounded by ring size; greedy halving makes it O(log N) in practice.
  for (std::size_t guard = 0; guard <= ring_.size(); ++guard) {
    if (node_ids_[cur] == key) {  // exact hit: cur owns the key
      result.node = cur;
      return result;
    }
    const NodeId succ = successor_[cur];
    if (in_open_closed(node_ids_[cur], node_ids_[succ], key)) {
      ++result.hops;  // final forward to the responsible node
      if (sends != nullptr) sends->emplace_back(cur, succ);
      result.node = succ;
      return result;
    }
    const NodeId next = closest_preceding(cur, key);
    if (sends != nullptr) sends->emplace_back(cur, next);
    cur = next;
    ++result.hops;
  }
  throw std::runtime_error("ChordDht::lookup failed to converge");
}

bool ChordDht::route_once(std::uint64_t key, NodeId from, FaultSession& faults,
                          const RecoveryPolicy& policy, FaultyLookup& out,
                          SendLog* sends) const {
  NodeId cur = from;
  for (std::size_t guard = 0; guard <= ring_.size(); ++guard) {
    if (node_ids_[cur] == key) {  // exact hit: cur owns the key
      out.node = cur;
      return true;
    }
    const NodeId succ = successor_[cur];
    const bool final_step =
        in_open_closed(node_ids_[cur], node_ids_[succ], key);

    // Candidate next hops, best first. Final step: the key's replica set
    // (cur's successor list, responsible node first). Otherwise: greedy
    // fingers descending — the first candidate is exactly what plain
    // lookup() forwards to — then successor-list entries that still
    // precede the key (guaranteed progress, never overshooting).
    std::array<NodeId, 16> cands{};
    std::size_t ncand = 0;
    const std::size_t width =
        std::min<std::size_t>(std::max(1u, policy.route_around_width),
                              cands.size());
    auto push = [&](NodeId c) {
      if (ncand >= width) return;
      for (std::size_t i = 0; i < ncand; ++i) {
        if (cands[i] == c) return;
      }
      cands[ncand++] = c;
    };
    if (final_step) {
      for (NodeId s : succ_lists_[cur]) push(s);
    } else {
      const auto& f = fingers_[cur];
      const std::uint64_t nid = node_ids_[cur];
      for (std::size_t j = f.size(); j > 0 && ncand < width; --j) {
        const NodeId cand = f[j - 1];
        const std::uint64_t cid = node_ids_[cand];
        if (cand != cur && in_open_closed(nid, key, cid) && cid != key) {
          push(cand);
        }
      }
      for (NodeId s : succ_lists_[cur]) {
        const std::uint64_t sid = node_ids_[s];
        if (s != cur && in_open_closed(nid, key, sid) && sid != key) push(s);
      }
    }

    bool advanced = false;
    for (std::size_t i = 0; i < ncand; ++i) {
      // Circuit breaker: a candidate the session has seen fail
      // repeatedly is detoured around without charging a send.
      if (faults.tripped(cands[i])) continue;
      ++out.hops;
      if (sends != nullptr) sends->emplace_back(cur, cands[i]);
      if (i > 0) ++out.fault.route_around_hops;
      if (!faults.deliver_timed(cur, cands[i])) {
        ++out.fault.dropped;  // forward lost in flight
        continue;
      }
      if (!faults.online(cands[i])) continue;  // dead peer: timeout, detour
      cur = cands[i];
      advanced = true;
      break;
    }
    if (!advanced) return false;  // every candidate lost or dead
    if (final_step) {
      out.node = cur;  // a live member of the key's replica set
      return true;
    }
  }
  return false;
}

ChordDht::FaultyLookup ChordDht::lookup(std::uint64_t key, NodeId from,
                                        FaultSession& faults,
                                        const RecoveryPolicy& policy,
                                        SendLog* sends) const {
  if (from >= node_ids_.size()) throw std::out_of_range("ChordDht::lookup");
  FaultyLookup out;
  if (!faults.online_peek(from)) return out;  // a crashed node issues nothing
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (route_once(key, from, faults, policy, out, sends)) {
      out.success = true;
      return out;
    }
    if (attempt >= policy.max_retries) return out;
    // Same adaptive-or-fixed timeout as the drive() loop: Chord's
    // recovery lives inside the attempt, so it prices waits itself.
    double timeout = policy.timeout_ms;
    if (policy.adaptive_timeout && faults.has_latency_samples()) {
      timeout = std::clamp(
          faults.latency_quantile(policy.timeout_quantile, policy.timeout_ms) *
              policy.timeout_multiplier,
          policy.timeout_floor_ms, policy.timeout_ceil_ms);
    }
    const double wait = timeout + policy.backoff_after(attempt);
    faults.charge_wait(wait);
    out.fault.recovery_wait_ms += wait;
    ++out.fault.retries;
  }
}

std::uint64_t ChordDht::term_key(TermId term) const noexcept {
  return util::mix64(seed_ ^ 0x7E57ULL ^ (static_cast<std::uint64_t>(term) << 16));
}

std::uint64_t ChordDht::object_key(std::uint64_t object_id) const noexcept {
  return util::mix64(seed_ ^ 0x0B7EC7ULL ^ object_id);
}

std::uint32_t ChordDht::publish_term(TermId term, std::uint64_t object_id,
                                     NodeId holder, NodeId from) {
  const LookupResult r = lookup(term_key(term), from);
  term_index_[term].push_back(Posting{object_id, holder});
  return r.hops;
}

std::uint32_t ChordDht::publish_object(std::uint64_t object_id, NodeId holder,
                                       NodeId from) {
  const LookupResult r = lookup(object_key(object_id), from);
  auto& holders = object_index_[object_id];
  if (std::find(holders.begin(), holders.end(), holder) == holders.end()) {
    holders.push_back(holder);
  }
  return r.hops;
}

std::uint64_t ChordDht::publish_store(const PeerStore& store) {
  std::uint64_t messages = 0;
  const std::size_t n = std::min(store.num_peers(), num_nodes());
  for (NodeId peer = 0; peer < n; ++peer) {
    const std::size_t count = store.object_count(peer);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t id = store.object_id(peer, i);
      messages += publish_object(id, peer, peer);
      for (TermId t : store.object_terms(peer, i)) {
        messages += publish_term(t, id, peer, peer);
      }
    }
  }
  return messages;
}

ChordDht::TermSearch ChordDht::search_term(
    TermId term, NodeId from, const std::vector<bool>* online) const {
  TermSearch out;
  const LookupResult r = lookup(term_key(term), from);
  out.hops = r.hops;
  // No recovery here: a dead index node means the postings are simply
  // unavailable this round (the fault-aware overload routes to replicas).
  if (online != nullptr && !(*online)[r.node]) return out;
  const auto it = term_index_.find(term);
  if (it == term_index_.end()) return out;
  if (online == nullptr) {
    out.postings = it->second;
  } else {
    for (const Posting& p : it->second) {
      if ((*online)[p.holder]) out.postings.push_back(p);
    }
  }
  return out;
}

ChordDht::FaultyTermSearch ChordDht::search_term(
    TermId term, NodeId from, FaultSession& faults,
    const RecoveryPolicy& policy) const {
  FaultyTermSearch out;
  const FaultyLookup r = lookup(term_key(term), from, faults, policy);
  out.hops = r.hops;
  out.fault = r.fault;
  out.success = r.success;
  if (!r.success) return out;
  const auto it = term_index_.find(term);
  if (it == term_index_.end()) return out;
  for (const Posting& p : it->second) {
    if (faults.online_peek(p.holder)) out.postings.push_back(p);
  }
  return out;
}

ChordDht::ObjectSearch ChordDht::search_object(
    std::uint64_t object_id, NodeId from,
    const std::vector<bool>* online) const {
  ObjectSearch out;
  const LookupResult r = lookup(object_key(object_id), from);
  out.hops = r.hops;
  if (online != nullptr && !(*online)[r.node]) return out;
  const auto it = object_index_.find(object_id);
  if (it == object_index_.end()) return out;
  if (online == nullptr) {
    out.holders = it->second;
  } else {
    for (NodeId holder : it->second) {
      if ((*online)[holder]) out.holders.push_back(holder);
    }
  }
  return out;
}

}  // namespace qcp2p::sim
