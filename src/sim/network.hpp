// Simulated P2P content network: an overlay graph whose peers hold
// term-annotated objects, plus object-placement helpers for the Fig 8
// replication experiments.
//
// Two granularities are supported, matching the paper's two experiment
// styles:
//   * object-replica placement (Fig 8): objects are opaque; all that
//     matters is which peers hold a replica;
//   * term-annotated content (hybrid/Gia/query-centric benches): peers
//     hold objects with term lists and queries are term conjunctions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/text/vocabulary.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

using overlay::Graph;
using overlay::NodeId;
using text::TermId;

// ---------------------------------------------------------------------------
// Object-replica placement (Fig 8)
// ---------------------------------------------------------------------------

/// holders[o] = sorted peers holding object o.
struct Placement {
  std::vector<std::vector<NodeId>> holders;

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return holders.size();
  }
};

/// Every object on exactly `copies` distinct uniform-random peers
/// (the paper's "uniformly random fashion" baseline).
[[nodiscard]] Placement place_uniform(std::size_t num_objects,
                                      std::size_t copies,
                                      std::size_t num_nodes, util::Rng& rng);

/// Object o lands on replica_counts[o] distinct uniform-random peers —
/// used with counts drawn from the crawl's empirical Zipf distribution.
[[nodiscard]] Placement place_by_counts(
    std::span<const std::uint64_t> replica_counts, std::size_t num_nodes,
    util::Rng& rng);

/// Draws `num_objects` replica counts from the crawl's empirical
/// distribution (sampling with replacement from `crawl_counts`).
[[nodiscard]] std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng);

// ---------------------------------------------------------------------------
// Term-annotated content (hybrid / Gia / query-centric benches)
// ---------------------------------------------------------------------------

/// Immutable per-peer object store with term annotations.
///
/// Two phases, like overlay::Graph. add_object() appends into per-peer
/// object vectors; finalize() packs the read path into flat arrays:
///   * a global object ordinal space (peer p owns a contiguous ordinal
///     range), with CSR-packed per-object term lists;
///   * a per-peer CSR of sorted unique terms (the may_match prefilter);
///   * an inverted index term -> sorted object-ordinal postings, whose
///     ordinal order makes every peer's postings a contiguous subrange.
/// match() then intersects the rarest query term's peer subrange against
/// the other terms' CSR term lists instead of scanning every object, and
/// may_match() binary-searches the flat per-peer term row. The store is
/// frozen after finalize(); adding another object drops back to the
/// build phase until the next finalize().
///
/// The finalized read path runs entirely over (pointer, size) spans, so
/// the nine flat arrays can live in the store's own vectors (finalize())
/// or in external read-only memory such as a memory-mapped WorldSnapshot
/// (flat_view()). Views carry no per-peer build data: add_object() and
/// objects() throw; use the flat accessors object_count()/object_id()/
/// object_terms(), which work in every phase. finalize(threads) may
/// shard its count/prefix-sum/scatter passes; the resulting arrays are
/// byte-identical at any thread count.
class PeerStore {
 public:
  struct Object {
    std::uint64_t id = 0;              // globally unique object identity
    std::vector<TermId> terms;         // sorted, unique
  };

  /// Reusable buffers for repeated match() probes (one per worker);
  /// avoids a heap allocation per probed peer in the Monte-Carlo loops.
  struct MatchScratch {
    std::vector<std::uint64_t> hits;
  };

  /// The finalized layout as spans — the serialization contract between
  /// PeerStore, WorldSnapshot, and flat_view(). All offsets arrays carry
  /// a leading 0 and a trailing total, so sizes are self-describing.
  struct FlatLayout {
    std::size_t num_peers = 0;
    std::span<const std::uint32_t> peer_term_offsets;  // num_peers + 1
    std::span<const TermId> peer_terms_flat;
    std::span<const std::uint32_t> obj_offsets;        // num_peers + 1
    std::span<const std::uint64_t> obj_ids;
    std::span<const std::uint32_t> obj_term_offsets;   // obj_ids.size() + 1
    std::span<const TermId> obj_terms_flat;
    std::span<const TermId> index_terms;
    std::span<const std::uint32_t> index_offsets;      // index_terms.size() + 1
    std::span<const std::uint32_t> postings;
  };

  explicit PeerStore(std::size_t num_peers)
      : num_peers_(num_peers), peers_(num_peers) {}

  /// Deep copy: a copy owns its storage even when the source is a
  /// flat_view() over mapped memory.
  PeerStore(const PeerStore& other);
  PeerStore& operator=(const PeerStore& other);
  PeerStore(PeerStore&&) noexcept = default;
  PeerStore& operator=(PeerStore&&) noexcept = default;

  /// Borrowing finalized view over an external flat layout (e.g. a
  /// mapped WorldSnapshot). The memory must outlive the view and every
  /// store moved from it; copying materializes an owned store.
  [[nodiscard]] static PeerStore flat_view(const FlatLayout& layout);

  /// The finalized arrays (snapshot serialization). Throws unless
  /// finalized; views return the mapped memory without copying.
  [[nodiscard]] FlatLayout flat_layout() const;

  /// Adds an object to a peer; terms are sorted/deduplicated internally.
  /// Throws std::logic_error on a view (no build data to append to).
  void add_object(NodeId peer, std::uint64_t id, std::vector<TermId> terms);

  /// Builds the flat read-path layout; call once after all adds.
  /// `threads` shards the count/prefix-sum/scatter passes (0 = hardware
  /// concurrency) and never changes the output.
  void finalize(std::size_t threads = 1);
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  /// True when the flat arrays live in external memory (flat_view()).
  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }

  /// Drops the per-peer build vectors of a finalized store, keeping only
  /// the flat read path (million-node worlds: the build data is the
  /// dominant heap cost). add_object()/objects() throw afterwards.
  void release_build_data();

  [[nodiscard]] std::size_t num_peers() const noexcept { return num_peers_; }

  /// Build-phase object list. Prefer the flat accessors below, which
  /// also work on finalized stores and views; this throws
  /// std::logic_error once the build data is gone.
  [[nodiscard]] const std::vector<Object>& objects(NodeId peer) const;

  /// Flat accessors, valid in every phase (build data before finalize,
  /// flat arrays after — including views).
  [[nodiscard]] std::size_t object_count(NodeId peer) const;
  [[nodiscard]] std::uint64_t object_id(NodeId peer, std::size_t i) const;
  [[nodiscard]] std::span<const TermId> object_terms(NodeId peer,
                                                     std::size_t i) const;

  /// Sorted unique terms appearing anywhere in the peer's library
  /// (empty before finalize()).
  [[nodiscard]] std::span<const TermId> peer_terms(NodeId peer) const;

  /// Objects on `peer` containing ALL of `query` (conjunctive match,
  /// Gnutella semantics). Returns matching object ids in the peer's
  /// object insertion order.
  [[nodiscard]] std::vector<std::uint64_t> match(
      NodeId peer, std::span<const TermId> query) const;

  /// Zero-allocation variant: fills (and returns a view of)
  /// scratch.hits, valid until the next call with the same scratch.
  [[nodiscard]] std::span<const std::uint64_t> match(
      NodeId peer, std::span<const TermId> query, MatchScratch& scratch) const;

  /// Reference implementation (linear scan over the peer's objects);
  /// the un-finalized fallback, and the oracle for property tests.
  [[nodiscard]] std::vector<std::uint64_t> match_reference(
      NodeId peer, std::span<const TermId> query) const;

  /// Cheap prefilter: does the peer hold every query term somewhere?
  [[nodiscard]] bool may_match(NodeId peer,
                               std::span<const TermId> query) const;

  [[nodiscard]] std::uint64_t total_objects() const noexcept { return total_; }

 private:
  struct PeerData {
    std::vector<Object> objects;
  };

  void finalize_sequential();
  void finalize_parallel(std::size_t threads);
  /// Points flat_ at the owned vectors (after finalize or deep copy).
  void repoint_flat();

  std::size_t num_peers_ = 0;
  /// Build phase; empty for views and after release_build_data().
  std::vector<PeerData> peers_;
  std::uint64_t total_ = 0;
  bool finalized_ = false;
  bool borrowed_ = false;
  bool has_build_data_ = true;

  // --- finalized flat layout (owned storage; empty until finalize(),
  // and empty while borrowing) ---
  /// Per-peer sorted unique terms: row p is peer_terms_flat_
  /// [peer_term_offsets_[p], peer_term_offsets_[p+1]).
  std::vector<std::uint32_t> peer_term_offsets_;
  std::vector<TermId> peer_terms_flat_;
  /// Peer p owns object ordinals [obj_offsets_[p], obj_offsets_[p+1]);
  /// obj_ids_[ordinal] is the object id, and the object's sorted terms
  /// are obj_terms_flat_[obj_term_offsets_[ordinal], ...[ordinal+1]).
  std::vector<std::uint32_t> obj_offsets_;
  std::vector<std::uint64_t> obj_ids_;
  std::vector<std::uint32_t> obj_term_offsets_;
  std::vector<TermId> obj_terms_flat_;
  /// Inverted index: index_terms_ is sorted unique; term i's postings
  /// are the ascending object ordinals postings_[index_offsets_[i],
  /// index_offsets_[i+1]). Ordinals ascend with peer id, so a peer's
  /// postings form a contiguous subrange found by binary search.
  std::vector<TermId> index_terms_;
  std::vector<std::uint32_t> index_offsets_;
  std::vector<std::uint32_t> postings_;
  /// Read path: spans into the owned vectors, or into external mapped
  /// memory when borrowed_. Default-empty until finalized.
  FlatLayout flat_;
};

/// Loads a crawl snapshot into a PeerStore over `num_nodes` simulated
/// peers. When the snapshot has more peers than the network, libraries
/// are assigned round-robin; when fewer, extra nodes stay empty (they
/// still route). Term lists come from CrawlSnapshot::object_terms.
[[nodiscard]] PeerStore peer_store_from_crawl(
    const trace::CrawlSnapshot& snapshot, std::size_t num_nodes);

}  // namespace qcp2p::sim
