// Simulated P2P content network: an overlay graph whose peers hold
// term-annotated objects, plus object-placement helpers for the Fig 8
// replication experiments.
//
// Two granularities are supported, matching the paper's two experiment
// styles:
//   * object-replica placement (Fig 8): objects are opaque; all that
//     matters is which peers hold a replica;
//   * term-annotated content (hybrid/Gia/query-centric benches): peers
//     hold objects with term lists and queries are term conjunctions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/text/vocabulary.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

using overlay::Graph;
using overlay::NodeId;
using text::TermId;

// ---------------------------------------------------------------------------
// Object-replica placement (Fig 8)
// ---------------------------------------------------------------------------

/// holders[o] = sorted peers holding object o.
struct Placement {
  std::vector<std::vector<NodeId>> holders;

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return holders.size();
  }
};

/// Every object on exactly `copies` distinct uniform-random peers
/// (the paper's "uniformly random fashion" baseline).
[[nodiscard]] Placement place_uniform(std::size_t num_objects,
                                      std::size_t copies,
                                      std::size_t num_nodes, util::Rng& rng);

/// Object o lands on replica_counts[o] distinct uniform-random peers —
/// used with counts drawn from the crawl's empirical Zipf distribution.
[[nodiscard]] Placement place_by_counts(
    std::span<const std::uint64_t> replica_counts, std::size_t num_nodes,
    util::Rng& rng);

/// Draws `num_objects` replica counts from the crawl's empirical
/// distribution (sampling with replacement from `crawl_counts`).
[[nodiscard]] std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng);

// ---------------------------------------------------------------------------
// Term-annotated content (hybrid / Gia / query-centric benches)
// ---------------------------------------------------------------------------

/// Immutable per-peer object store with term annotations.
///
/// Two phases, like overlay::Graph. add_object() appends into per-peer
/// object vectors; finalize() packs the read path into flat arrays:
///   * a global object ordinal space (peer p owns a contiguous ordinal
///     range), with CSR-packed per-object term lists;
///   * a per-peer CSR of sorted unique terms (the may_match prefilter);
///   * an inverted index term -> sorted object-ordinal postings, whose
///     ordinal order makes every peer's postings a contiguous subrange.
/// match() then intersects the rarest query term's peer subrange against
/// the other terms' CSR term lists instead of scanning every object, and
/// may_match() binary-searches the flat per-peer term row. The store is
/// frozen after finalize(); adding another object drops back to the
/// build phase until the next finalize().
class PeerStore {
 public:
  struct Object {
    std::uint64_t id = 0;              // globally unique object identity
    std::vector<TermId> terms;         // sorted, unique
  };

  /// Reusable buffers for repeated match() probes (one per worker);
  /// avoids a heap allocation per probed peer in the Monte-Carlo loops.
  struct MatchScratch {
    std::vector<std::uint64_t> hits;
  };

  explicit PeerStore(std::size_t num_peers) : peers_(num_peers) {}

  /// Adds an object to a peer; terms are sorted/deduplicated internally.
  void add_object(NodeId peer, std::uint64_t id, std::vector<TermId> terms);

  /// Builds the flat read-path layout; call once after all adds.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] std::size_t num_peers() const noexcept { return peers_.size(); }
  [[nodiscard]] const std::vector<Object>& objects(NodeId peer) const {
    return peers_.at(peer).objects;
  }
  /// Sorted unique terms appearing anywhere in the peer's library
  /// (empty before finalize()).
  [[nodiscard]] std::span<const TermId> peer_terms(NodeId peer) const;

  /// Objects on `peer` containing ALL of `query` (conjunctive match,
  /// Gnutella semantics). Returns matching object ids in the peer's
  /// object insertion order.
  [[nodiscard]] std::vector<std::uint64_t> match(
      NodeId peer, std::span<const TermId> query) const;

  /// Zero-allocation variant: fills (and returns a view of)
  /// scratch.hits, valid until the next call with the same scratch.
  [[nodiscard]] std::span<const std::uint64_t> match(
      NodeId peer, std::span<const TermId> query, MatchScratch& scratch) const;

  /// Reference implementation (linear scan over the peer's objects);
  /// the un-finalized fallback, and the oracle for property tests.
  [[nodiscard]] std::vector<std::uint64_t> match_reference(
      NodeId peer, std::span<const TermId> query) const;

  /// Cheap prefilter: does the peer hold every query term somewhere?
  [[nodiscard]] bool may_match(NodeId peer,
                               std::span<const TermId> query) const;

  [[nodiscard]] std::uint64_t total_objects() const noexcept { return total_; }

 private:
  struct PeerData {
    std::vector<Object> objects;
  };
  std::vector<PeerData> peers_;
  std::uint64_t total_ = 0;
  bool finalized_ = false;

  // --- finalized flat layout (all empty until finalize()) ---
  /// Per-peer sorted unique terms: row p is peer_terms_flat_
  /// [peer_term_offsets_[p], peer_term_offsets_[p+1]).
  std::vector<std::uint32_t> peer_term_offsets_;
  std::vector<TermId> peer_terms_flat_;
  /// Peer p owns object ordinals [obj_offsets_[p], obj_offsets_[p+1]);
  /// obj_ids_[ordinal] is the object id, and the object's sorted terms
  /// are obj_terms_flat_[obj_term_offsets_[ordinal], ...[ordinal+1]).
  std::vector<std::uint32_t> obj_offsets_;
  std::vector<std::uint64_t> obj_ids_;
  std::vector<std::uint32_t> obj_term_offsets_;
  std::vector<TermId> obj_terms_flat_;
  /// Inverted index: index_terms_ is sorted unique; term i's postings
  /// are the ascending object ordinals postings_[index_offsets_[i],
  /// index_offsets_[i+1]). Ordinals ascend with peer id, so a peer's
  /// postings form a contiguous subrange found by binary search.
  std::vector<TermId> index_terms_;
  std::vector<std::uint32_t> index_offsets_;
  std::vector<std::uint32_t> postings_;
};

/// Loads a crawl snapshot into a PeerStore over `num_nodes` simulated
/// peers. When the snapshot has more peers than the network, libraries
/// are assigned round-robin; when fewer, extra nodes stay empty (they
/// still route). Term lists come from CrawlSnapshot::object_terms.
[[nodiscard]] PeerStore peer_store_from_crawl(
    const trace::CrawlSnapshot& snapshot, std::size_t num_nodes);

}  // namespace qcp2p::sim
