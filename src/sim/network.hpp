// Simulated P2P content network: an overlay graph whose peers hold
// term-annotated objects, plus object-placement helpers for the Fig 8
// replication experiments.
//
// Two granularities are supported, matching the paper's two experiment
// styles:
//   * object-replica placement (Fig 8): objects are opaque; all that
//     matters is which peers hold a replica;
//   * term-annotated content (hybrid/Gia/query-centric benches): peers
//     hold objects with term lists and queries are term conjunctions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/text/vocabulary.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

using overlay::Graph;
using overlay::NodeId;
using text::TermId;

// ---------------------------------------------------------------------------
// Object-replica placement (Fig 8)
// ---------------------------------------------------------------------------

/// holders[o] = sorted peers holding object o.
struct Placement {
  std::vector<std::vector<NodeId>> holders;

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return holders.size();
  }
};

/// Every object on exactly `copies` distinct uniform-random peers
/// (the paper's "uniformly random fashion" baseline).
[[nodiscard]] Placement place_uniform(std::size_t num_objects,
                                      std::size_t copies,
                                      std::size_t num_nodes, util::Rng& rng);

/// Object o lands on replica_counts[o] distinct uniform-random peers —
/// used with counts drawn from the crawl's empirical Zipf distribution.
[[nodiscard]] Placement place_by_counts(
    std::span<const std::uint64_t> replica_counts, std::size_t num_nodes,
    util::Rng& rng);

/// Draws `num_objects` replica counts from the crawl's empirical
/// distribution (sampling with replacement from `crawl_counts`).
[[nodiscard]] std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng);

// ---------------------------------------------------------------------------
// Term-annotated content (hybrid / Gia / query-centric benches)
// ---------------------------------------------------------------------------

/// Immutable per-peer object store with term annotations.
class PeerStore {
 public:
  struct Object {
    std::uint64_t id = 0;              // globally unique object identity
    std::vector<TermId> terms;         // sorted, unique
  };

  explicit PeerStore(std::size_t num_peers) : peers_(num_peers) {}

  /// Adds an object to a peer; terms are sorted/deduplicated internally.
  void add_object(NodeId peer, std::uint64_t id, std::vector<TermId> terms);

  /// Builds per-peer sorted term summaries; call once after all adds.
  void finalize();

  [[nodiscard]] std::size_t num_peers() const noexcept { return peers_.size(); }
  [[nodiscard]] const std::vector<Object>& objects(NodeId peer) const {
    return peers_.at(peer).objects;
  }
  /// Sorted unique terms appearing anywhere in the peer's library.
  [[nodiscard]] const std::vector<TermId>& peer_terms(NodeId peer) const {
    return peers_.at(peer).terms;
  }

  /// Objects on `peer` containing ALL of `query` (conjunctive match,
  /// Gnutella semantics). Returns matching object ids.
  [[nodiscard]] std::vector<std::uint64_t> match(
      NodeId peer, std::span<const TermId> query) const;

  /// Cheap prefilter: does the peer hold every query term somewhere?
  [[nodiscard]] bool may_match(NodeId peer,
                               std::span<const TermId> query) const;

  [[nodiscard]] std::uint64_t total_objects() const noexcept { return total_; }

 private:
  struct PeerData {
    std::vector<Object> objects;
    std::vector<TermId> terms;
  };
  std::vector<PeerData> peers_;
  std::uint64_t total_ = 0;
  bool finalized_ = false;
};

/// Loads a crawl snapshot into a PeerStore over `num_nodes` simulated
/// peers. When the snapshot has more peers than the network, libraries
/// are assigned round-robin; when fewer, extra nodes stay empty (they
/// still route). Term lists come from CrawlSnapshot::object_terms.
[[nodiscard]] PeerStore peer_store_from_crawl(
    const trace::CrawlSnapshot& snapshot, std::size_t num_nodes);

}  // namespace qcp2p::sim
