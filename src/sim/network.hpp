// Simulated P2P content network: an overlay graph whose peers hold
// term-annotated objects, plus object-placement helpers for the Fig 8
// replication experiments.
//
// Two granularities are supported, matching the paper's two experiment
// styles:
//   * object-replica placement (Fig 8): objects are opaque; all that
//     matters is which peers hold a replica;
//   * term-annotated content (hybrid/Gia/query-centric benches): peers
//     hold objects with term lists and queries are term conjunctions.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/text/vocabulary.hpp"
#include "src/trace/gnutella.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

using overlay::Graph;
using overlay::NodeId;
using text::TermId;

/// One ranked result: an object id plus its static relevance score
/// (term rarity x inverse replica count, computed at finalize()/
/// compact() time — see PeerStore and DESIGN.md §11).
struct ScoredMatch {
  std::uint64_t object = 0;
  float score = 0.0f;

  friend bool operator==(const ScoredMatch&, const ScoredMatch&) = default;
};

// ---------------------------------------------------------------------------
// Object-replica placement (Fig 8)
// ---------------------------------------------------------------------------

/// holders[o] = sorted peers holding object o.
struct Placement {
  std::vector<std::vector<NodeId>> holders;

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return holders.size();
  }
};

/// Every object on exactly `copies` distinct uniform-random peers
/// (the paper's "uniformly random fashion" baseline).
[[nodiscard]] Placement place_uniform(std::size_t num_objects,
                                      std::size_t copies,
                                      std::size_t num_nodes, util::Rng& rng);

/// Object o lands on replica_counts[o] distinct uniform-random peers —
/// used with counts drawn from the crawl's empirical Zipf distribution.
[[nodiscard]] Placement place_by_counts(
    std::span<const std::uint64_t> replica_counts, std::size_t num_nodes,
    util::Rng& rng);

/// Draws `num_objects` replica counts from the crawl's empirical
/// distribution (sampling with replacement from `crawl_counts`).
[[nodiscard]] std::vector<std::uint64_t> sample_replica_counts(
    std::span<const std::uint64_t> crawl_counts, std::size_t num_objects,
    util::Rng& rng);

// ---------------------------------------------------------------------------
// Term-annotated content (hybrid / Gia / query-centric benches)
// ---------------------------------------------------------------------------

/// Immutable per-peer object store with term annotations.
///
/// Two phases, like overlay::Graph. add_object() appends into per-peer
/// object vectors; finalize() packs the read path into flat arrays:
///   * a global object ordinal space (peer p owns a contiguous ordinal
///     range), with CSR-packed per-object term lists;
///   * a per-peer CSR of sorted unique terms (the may_match prefilter);
///   * an inverted index term -> sorted object-ordinal postings, whose
///     ordinal order makes every peer's postings a contiguous subrange.
/// match() then intersects the rarest query term's peer subrange against
/// the other terms' CSR term lists instead of scanning every object, and
/// may_match() binary-searches the flat per-peer term row. The store is
/// frozen after finalize(); adding another object drops back to the
/// build phase until the next finalize().
///
/// The finalized read path runs entirely over (pointer, size) spans, so
/// the ten flat arrays can live in the store's own vectors (finalize())
/// or in external read-only memory such as a memory-mapped WorldSnapshot
/// (flat_view()). Views carry no per-peer build data: add_object() and
/// objects() throw; use the flat accessors object_count()/object_id()/
/// object_terms(), which work in every phase. finalize(threads) may
/// shard its count/prefix-sum/scatter passes; the resulting arrays are
/// byte-identical at any thread count.
class PeerStore {
 public:
  struct Object {
    std::uint64_t id = 0;              // globally unique object identity
    std::vector<TermId> terms;         // sorted, unique
  };

  /// Reusable buffers for repeated match() probes (one per worker);
  /// avoids a heap allocation per probed peer in the Monte-Carlo loops.
  struct MatchScratch {
    std::vector<std::uint64_t> hits;
    /// Scored-probe buffer (match_scored()); unused by plain match().
    std::vector<ScoredMatch> scored;
  };

  /// The finalized layout as spans — the serialization contract between
  /// PeerStore, WorldSnapshot, and flat_view(). All offsets arrays carry
  /// a leading 0 and a trailing total, so sizes are self-describing.
  struct FlatLayout {
    std::size_t num_peers = 0;
    std::span<const std::uint32_t> peer_term_offsets;  // num_peers + 1
    std::span<const TermId> peer_terms_flat;
    std::span<const std::uint32_t> obj_offsets;        // num_peers + 1
    std::span<const std::uint64_t> obj_ids;
    std::span<const std::uint32_t> obj_term_offsets;   // obj_ids.size() + 1
    std::span<const TermId> obj_terms_flat;
    std::span<const TermId> index_terms;
    std::span<const std::uint32_t> index_offsets;      // index_terms.size() + 1
    std::span<const std::uint32_t> postings;
    std::span<const float> obj_scores;                 // obj_ids.size()
  };

  explicit PeerStore(std::size_t num_peers)
      : num_peers_(num_peers), peers_(num_peers) {}

  /// Deep copy: a copy owns its storage even when the source is a
  /// flat_view() over mapped memory.
  PeerStore(const PeerStore& other);
  PeerStore& operator=(const PeerStore& other);
  PeerStore(PeerStore&&) noexcept = default;
  PeerStore& operator=(PeerStore&&) noexcept = default;

  /// Borrowing finalized view over an external flat layout (e.g. a
  /// mapped WorldSnapshot). The memory must outlive the view and every
  /// store moved from it; copying materializes an owned store.
  [[nodiscard]] static PeerStore flat_view(const FlatLayout& layout);

  /// The finalized arrays (snapshot serialization). Throws unless
  /// finalized; views return the mapped memory without copying.
  [[nodiscard]] FlatLayout flat_layout() const;

  /// Adds an object to a peer; terms are sorted/deduplicated internally.
  /// Throws std::logic_error on a view (no build data to append to).
  void add_object(NodeId peer, std::uint64_t id, std::vector<TermId> terms);

  /// Builds the flat read-path layout; call once after all adds.
  /// `threads` shards the count/prefix-sum/scatter passes (0 = hardware
  /// concurrency) and never changes the output.
  void finalize(std::size_t threads = 1);
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  /// True when the flat arrays live in external memory (flat_view()).
  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }

  /// Drops the per-peer build vectors of a finalized store, keeping only
  /// the flat read path (million-node worlds: the build data is the
  /// dominant heap cost). add_object()/objects() throw afterwards.
  void release_build_data();

  [[nodiscard]] std::size_t num_peers() const noexcept { return num_peers_; }

  /// Build-phase object list. Prefer the flat accessors below, which
  /// also work on finalized stores and views; this throws
  /// std::logic_error once the build data is gone.
  [[nodiscard]] const std::vector<Object>& objects(NodeId peer) const;

  /// Flat accessors, valid in every phase (build data before finalize,
  /// flat arrays after — including views).
  [[nodiscard]] std::size_t object_count(NodeId peer) const;
  [[nodiscard]] std::uint64_t object_id(NodeId peer, std::size_t i) const;
  [[nodiscard]] std::span<const TermId> object_terms(NodeId peer,
                                                     std::size_t i) const;

  /// Sorted unique terms appearing anywhere in the peer's library
  /// (empty before finalize()).
  [[nodiscard]] std::span<const TermId> peer_terms(NodeId peer) const;

  /// Objects on `peer` containing ALL of `query` (conjunctive match,
  /// Gnutella semantics). Returns matching object ids in the peer's
  /// object insertion order.
  [[nodiscard]] std::vector<std::uint64_t> match(
      NodeId peer, std::span<const TermId> query) const;

  /// Zero-allocation variant: fills (and returns a view of)
  /// scratch.hits, valid until the next call with the same scratch.
  [[nodiscard]] std::span<const std::uint64_t> match(
      NodeId peer, std::span<const TermId> query, MatchScratch& scratch) const;

  /// Scored twin of the zero-allocation match(): fills (and returns a
  /// view of) scratch.scored with the same object ids in the same order,
  /// each carrying its static relevance score. Scores exist only on a
  /// finalized store; the build-phase fallback reports every match at
  /// score 0. Delta-layer objects carry the approximate score assigned
  /// at add_object_delta() time until compact() recomputes exactly.
  [[nodiscard]] std::span<const ScoredMatch> match_scored(
      NodeId peer, std::span<const TermId> query, MatchScratch& scratch) const;

  /// Static score of base-layer object ordinal `i` of `peer` (the flat
  /// accessor twin of object_id()); 0 before finalize().
  [[nodiscard]] float object_score(NodeId peer, std::size_t i) const;

  /// Score of object `id` if `peer` holds it (base or delta layer),
  /// else 0. Linear over the peer's library — for resolving scores of
  /// id-only result lists (DHT postings, DES query hits), not for probe
  /// hot paths.
  [[nodiscard]] float object_score_at(NodeId peer, std::uint64_t id) const;

  /// Reference implementation (linear scan over the peer's objects);
  /// the un-finalized fallback, and the oracle for property tests.
  [[nodiscard]] std::vector<std::uint64_t> match_reference(
      NodeId peer, std::span<const TermId> query) const;

  /// Cheap prefilter: does the peer hold every query term somewhere?
  [[nodiscard]] bool may_match(NodeId peer,
                               std::span<const TermId> query) const;

  [[nodiscard]] std::uint64_t total_objects() const noexcept { return total_; }

  // --- serving-mode incremental maintenance --------------------------------
  //
  // A serving world keeps ONE finalized store live under churn instead of
  // rebuilding per trial. Three mechanisms keep finalize() off the steady
  // path: membership flips are O(1) tombstones (apply_membership), new
  // content lands in a bounded per-peer delta side-layer consulted by the
  // match path (add_object_delta), and compact() folds the delta into
  // fresh flat arrays at epoch boundaries — byte-identical to a
  // finalize()-from-scratch over the same content.

  /// What add_object() does to a finalized store.
  enum class DefinalizePolicy : std::uint8_t {
    /// Legacy: silently drop the flat layout back to the build phase
    /// (next finalize() is a full O(world) rebuild).
    kRebuild,
    /// Serving: throw std::logic_error — mutation of a live store must go
    /// through add_object_delta()/compact(), never a hidden rebuild.
    kForbid,
  };
  void set_definalize_policy(DefinalizePolicy policy) noexcept {
    definalize_policy_ = policy;
  }
  [[nodiscard]] DefinalizePolicy definalize_policy() const noexcept {
    return definalize_policy_;
  }
  /// Explicit finalized-state accessor (alias of finalized(); the
  /// serving path asserts on it before every incremental operation).
  [[nodiscard]] bool is_finalized() const noexcept { return finalized_; }

  /// O(1)-per-peer membership maintenance on a finalized store: peers in
  /// `leaves` are tombstoned (match()/may_match()/match_reference()
  /// treat them as empty; their postings stay in the index as dead
  /// entries), peers in `joins` come back with their library intact
  /// (session churn: content returns on rejoin). Joins apply before
  /// leaves; both are idempotent. Throws std::logic_error unless
  /// finalized, std::out_of_range on an unknown peer.
  void apply_membership(std::span<const NodeId> joins,
                        std::span<const NodeId> leaves);
  /// False only while `peer` is tombstoned. Throws on an unknown peer.
  [[nodiscard]] bool peer_live(NodeId peer) const;
  /// Base-layer postings currently owned by tombstoned peers — the
  /// inverted index's staleness debt. (Delta-layer postings of dead
  /// peers are not counted; the serving world's compaction trigger
  /// watches delta_postings() for that side.)
  [[nodiscard]] std::uint64_t dead_postings() const noexcept {
    return dead_postings_;
  }

  /// Appends an object to a FINALIZED store without touching the flat
  /// arrays: the object lands in a per-peer delta side-layer that the
  /// match path consults after the base intersection. The flat accessors
  /// (object_count()/object_id()/object_terms()/peer_terms()) and
  /// flat_layout() cover only the base layer until compact() folds the
  /// delta in. Works on views too (the delta is private side state; the
  /// mapped memory is never written). Throws unless finalized.
  void add_object_delta(NodeId peer, std::uint64_t id,
                        std::vector<TermId> terms);
  [[nodiscard]] std::uint64_t delta_objects() const noexcept {
    return delta_objects_;
  }
  [[nodiscard]] std::uint64_t delta_postings() const noexcept {
    return delta_postings_;
  }

  /// Epoch compaction: folds the delta layer into fresh flat arrays —
  /// byte-identical to finalize(threads)-from-scratch over the same
  /// content (per peer: base objects in ordinal order, then delta
  /// objects in insertion order). Tombstones survive; a borrowed view
  /// becomes an owned store; any retained build data is dropped (it no
  /// longer describes the full content). No-op when the delta is empty.
  void compact(std::size_t threads = 1);

 private:
  struct PeerData {
    std::vector<Object> objects;
  };

  void finalize_sequential();
  void finalize_parallel(std::size_t threads);
  /// Rebuilds the inverted index (index_terms_/index_offsets_/postings_)
  /// from the flat object/term arrays; shared by finalize_parallel() and
  /// compact(). Output is byte-identical at any thread count.
  void rebuild_index(std::size_t threads);
  /// Fills obj_scores_ from the freshly built flat arrays: score(ord) =
  /// sum of idf over the object's terms, divided by the object id's
  /// replica count. Runs after the inverted index exists (finalize and
  /// compact paths); deterministic, byte-identical at any thread count.
  void compute_scores(std::size_t threads);
  /// Points flat_ at the owned vectors (after finalize or deep copy).
  void repoint_flat();
  /// Tombstone check without the range guard (hot path).
  [[nodiscard]] bool live_unchecked(NodeId peer) const noexcept {
    return dead_.empty() || !dead_[peer];
  }
  /// Finalized base-layer intersection, appending to `hits`; match()
  /// handles liveness and the delta tail. A non-null `scored` receives
  /// one ScoredMatch per appended hit (the scored-probe path; the plain
  /// path passes nullptr and never touches it).
  void match_base(NodeId peer, std::span<const TermId> query,
                  std::vector<std::uint64_t>& hits,
                  std::vector<ScoredMatch>* scored = nullptr) const;
  /// Base-layer postings owned by `peer` (== its obj_terms_flat span).
  [[nodiscard]] std::uint64_t base_postings(NodeId peer) const noexcept;

  std::size_t num_peers_ = 0;
  /// Build phase; empty for views and after release_build_data().
  std::vector<PeerData> peers_;
  std::uint64_t total_ = 0;
  bool finalized_ = false;
  bool borrowed_ = false;
  bool has_build_data_ = true;
  DefinalizePolicy definalize_policy_ = DefinalizePolicy::kRebuild;

  // --- serving-mode side state (never part of the flat layout) ---
  /// Tombstones; empty means "all live" (the common non-serving case).
  std::vector<std::uint8_t> dead_;
  std::uint64_t dead_postings_ = 0;
  /// Post-finalize objects, folded in by compact(). std::map so every
  /// pass over the delta runs in peer order (determinism).
  struct DeltaPeer {
    std::vector<Object> objects;      // insertion order
    std::vector<TermId> terms;        // sorted unique union
    /// Approximate score per delta object (base-layer idf at add time,
    /// replica count 1 — delta ids are fresh); compact() recomputes.
    std::vector<float> scores;        // parallel to objects
  };
  std::map<NodeId, DeltaPeer> delta_;
  std::uint64_t delta_objects_ = 0;
  std::uint64_t delta_postings_ = 0;

  // --- finalized flat layout (owned storage; empty until finalize(),
  // and empty while borrowing) ---
  /// Per-peer sorted unique terms: row p is peer_terms_flat_
  /// [peer_term_offsets_[p], peer_term_offsets_[p+1]).
  std::vector<std::uint32_t> peer_term_offsets_;
  std::vector<TermId> peer_terms_flat_;
  /// Peer p owns object ordinals [obj_offsets_[p], obj_offsets_[p+1]);
  /// obj_ids_[ordinal] is the object id, and the object's sorted terms
  /// are obj_terms_flat_[obj_term_offsets_[ordinal], ...[ordinal+1]).
  std::vector<std::uint32_t> obj_offsets_;
  std::vector<std::uint64_t> obj_ids_;
  std::vector<std::uint32_t> obj_term_offsets_;
  std::vector<TermId> obj_terms_flat_;
  /// Inverted index: index_terms_ is sorted unique; term i's postings
  /// are the ascending object ordinals postings_[index_offsets_[i],
  /// index_offsets_[i+1]). Ordinals ascend with peer id, so a peer's
  /// postings form a contiguous subrange found by binary search.
  std::vector<TermId> index_terms_;
  std::vector<std::uint32_t> index_offsets_;
  std::vector<std::uint32_t> postings_;
  /// Static relevance score per object ordinal (see compute_scores()).
  std::vector<float> obj_scores_;
  /// Read path: spans into the owned vectors, or into external mapped
  /// memory when borrowed_. Default-empty until finalized.
  FlatLayout flat_;
};

/// Loads a crawl snapshot into a PeerStore over `num_nodes` simulated
/// peers. When the snapshot has more peers than the network, libraries
/// are assigned round-robin; when fewer, extra nodes stay empty (they
/// still route). Term lists come from CrawlSnapshot::object_terms.
[[nodiscard]] PeerStore peer_store_from_crawl(
    const trace::CrawlSnapshot& snapshot, std::size_t num_nodes);

}  // namespace qcp2p::sim
