#include "src/sim/replication.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qcp2p::sim {
namespace {

/// Largest-remainder rounding of weights to integer copies summing to
/// `total`, each in [1, max_copies].
std::vector<std::uint64_t> round_allocation(std::span<const double> weights,
                                            std::uint64_t total,
                                            std::uint64_t max_copies) {
  const std::size_t n = weights.size();
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  if (weight_sum <= 0.0) weight_sum = 1.0;

  std::vector<std::uint64_t> copies(n, 1);  // owner copy floor
  std::uint64_t assigned = n;
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(n);
  const double spare =
      static_cast<double>(total > assigned ? total - assigned : 0);
  for (std::size_t i = 0; i < n; ++i) {
    const double ideal = spare * weights[i] / weight_sum;
    const auto whole = static_cast<std::uint64_t>(ideal);
    const std::uint64_t grant =
        std::min<std::uint64_t>(whole, max_copies - copies[i]);
    copies[i] += grant;
    assigned += grant;
    remainders.emplace_back(ideal - static_cast<double>(whole), i);
  }
  std::sort(remainders.begin(), remainders.end(), std::greater<>());
  for (const auto& [frac, i] : remainders) {
    if (assigned >= total) break;
    if (copies[i] < max_copies) {
      ++copies[i];
      ++assigned;
    }
  }
  return copies;
}

}  // namespace

std::vector<std::uint64_t> allocate_replicas(std::span<const double> query_rates,
                                             std::uint64_t total_copies,
                                             ReplicationPolicy policy,
                                             std::uint64_t max_copies) {
  if (query_rates.empty()) return {};
  if (max_copies == 0) throw std::invalid_argument("max_copies must be >= 1");
  if (total_copies < query_rates.size()) {
    throw std::invalid_argument(
        "total_copies must cover one owner copy per object");
  }
  std::vector<double> weights(query_rates.size());
  for (std::size_t i = 0; i < query_rates.size(); ++i) {
    const double q = std::max(0.0, query_rates[i]);
    switch (policy) {
      case ReplicationPolicy::kUniform:
        weights[i] = 1.0;
        break;
      case ReplicationPolicy::kProportional:
        weights[i] = q;
        break;
      case ReplicationPolicy::kSquareRoot:
        weights[i] = std::sqrt(q);
        break;
    }
  }
  return round_allocation(weights, total_copies, max_copies);
}

double expected_search_size(std::span<const double> query_rates,
                            std::span<const std::uint64_t> replicas,
                            std::uint64_t num_peers) {
  if (query_rates.size() != replicas.size()) {
    throw std::invalid_argument("expected_search_size: size mismatch");
  }
  double q_sum = 0.0;
  for (double q : query_rates) q_sum += std::max(0.0, q);
  if (q_sum <= 0.0) return 0.0;
  double expectation = 0.0;
  for (std::size_t i = 0; i < query_rates.size(); ++i) {
    const double q = std::max(0.0, query_rates[i]) / q_sum;
    if (replicas[i] == 0) continue;  // unreachable object: excluded
    expectation += q * static_cast<double>(num_peers) /
                   static_cast<double>(replicas[i]);
  }
  return expectation;
}

double optimal_search_size(std::span<const double> query_rates,
                           std::uint64_t total_copies,
                           std::uint64_t num_peers) {
  // With r_i ∝ sqrt(q_i) and sum r_i = R:
  //   E = n/R * (sum sqrt(q_i))^2  (q normalized).
  double q_sum = 0.0;
  for (double q : query_rates) q_sum += std::max(0.0, q);
  if (q_sum <= 0.0 || total_copies == 0) return 0.0;
  double sqrt_sum = 0.0;
  for (double q : query_rates) sqrt_sum += std::sqrt(std::max(0.0, q) / q_sum);
  return static_cast<double>(num_peers) / static_cast<double>(total_copies) *
         sqrt_sum * sqrt_sum;
}

}  // namespace qcp2p::sim
