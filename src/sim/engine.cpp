#include "src/sim/engine.hpp"

#include <algorithm>

namespace qcp2p::sim {

void sort_unique_hits(std::vector<std::uint64_t>& hits) {
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
}

void probe_peers(const PeerStore& store, std::span<const TermId> terms,
                 std::span<const NodeId> peers, SearchScratch& scratch,
                 std::vector<std::uint64_t>& hits, std::size_t& peers_probed) {
  for (NodeId v : peers) {
    ++peers_probed;
    const auto matched = store.match(v, terms, scratch.match);
    hits.insert(hits.end(), matched.begin(), matched.end());
  }
}

bool SearchEngine::preflight(const Query&, const FaultSession*) const {
  return true;
}

void SearchEngine::begin(const Query&, EngineContext&, SearchOutcome&) const {}

bool SearchEngine::satisfied(const SearchOutcome& out) const {
  return out.success || !out.hits.empty();
}

void SearchEngine::escalate(Query& query, const RecoveryPolicy& policy) const {
  query.ttl += policy.ttl_escalation;
}

void SearchEngine::finish(const Query&, SearchOutcome& out) const {
  sort_unique_hits(out.hits);
  if (!out.hits.empty()) out.success = true;
}

SearchOutcome SearchEngine::drive(const SearchEngine& engine, Query query,
                                  EngineContext& ctx, FaultSession* faults,
                                  const RecoveryPolicy* policy) {
  // Under faults the plan's crash schedule is the single source of
  // liveness truth; the decorator path must not mix in a caller mask.
  if (faults != nullptr) query.online = faults->plan().online_mask();
  SearchOutcome out;
  if (!engine.preflight(query, faults)) return out;
  engine.begin(query, ctx, out);
  for (std::uint32_t attempt = 0;; ++attempt) {
    engine.attempt(query, ctx, faults, policy, out);
    const bool can_retry = faults != nullptr && policy != nullptr &&
                           engine.retryable() && attempt < policy->max_retries;
    if (engine.satisfied(out) || !can_retry) break;
    // Nothing came back: wait out the timeout, back off, widen the query.
    const double wait = policy->timeout_ms + policy->backoff_after(attempt);
    faults->charge_wait(wait);
    out.fault.recovery_wait_ms += wait;
    ++out.fault.retries;
    engine.escalate(query, *policy);
  }
  engine.finish(query, out);
  return out;
}

}  // namespace qcp2p::sim
