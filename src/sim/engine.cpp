#include "src/sim/engine.hpp"

#include <algorithm>

namespace qcp2p::sim {

void sort_unique_hits(std::vector<std::uint64_t>& hits) {
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
}

void probe_peers(const PeerStore& store, std::span<const TermId> terms,
                 std::span<const NodeId> peers, SearchScratch& scratch,
                 std::vector<std::uint64_t>& hits, std::size_t& peers_probed) {
  for (NodeId v : peers) {
    ++peers_probed;
    const auto matched = store.match(v, terms, scratch.match);
    hits.insert(hits.end(), matched.begin(), matched.end());
  }
}

std::size_t admit_ranked(const ScoredMatch& m, float min_score,
                         SearchScratch& scratch,
                         std::vector<ScoredMatch>& ranked) {
  if (m.score < min_score) return 0;
  auto& seen = scratch.topk_seen;
  const auto it = std::lower_bound(seen.begin(), seen.end(), m.object);
  if (it != seen.end() && *it == m.object) {
    // Replica: keeps the accumulator small but contributes no new
    // object, so it never resets the early-termination dry counter.
    return 0;
  }
  seen.insert(it, m.object);
  ranked.push_back(m);
  return 1;
}

std::size_t probe_peers_ranked(const PeerStore& store,
                               std::span<const TermId> terms,
                               std::span<const NodeId> peers, float min_score,
                               SearchScratch& scratch,
                               std::vector<ScoredMatch>& ranked,
                               std::size_t& peers_probed) {
  std::size_t fresh = 0;
  for (NodeId v : peers) {
    ++peers_probed;
    const auto matched = store.match_scored(v, terms, scratch.match);
    for (const ScoredMatch& m : matched) {
      fresh += admit_ranked(m, min_score, scratch, ranked);
    }
  }
  return fresh;
}

void finish_ranked(const Query& query, SearchOutcome& out) {
  auto& ranked = out.top_k;
  // Dedup by object id keeping the max score. Scores are static per
  // object in the base store, but delta objects may carry approximate
  // scores — max is the deterministic merge either way.
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredMatch& a, const ScoredMatch& b) {
              if (a.object != b.object) return a.object < b.object;
              return a.score > b.score;
            });
  ranked.erase(std::unique(ranked.begin(), ranked.end(),
                           [](const ScoredMatch& a, const ScoredMatch& b) {
                             return a.object == b.object;
                           }),
               ranked.end());
  std::erase_if(ranked,
                [&](const ScoredMatch& m) { return m.score < query.min_score; });
  // Canonical order: best score first, ascending id on ties (ties are
  // common — equal term sets with equal replication score identically).
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredMatch& a, const ScoredMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.object < b.object;
            });
  if (ranked.size() > query.k) ranked.resize(query.k);
  out.hits.clear();
  out.hits.reserve(ranked.size());
  for (const ScoredMatch& m : ranked) out.hits.push_back(m.object);
  std::sort(out.hits.begin(), out.hits.end());
  if (!out.hits.empty()) out.success = true;
}

bool SearchEngine::preflight(const Query&, const FaultSession*) const {
  return true;
}

void SearchEngine::begin(const Query&, EngineContext&, SearchOutcome&) const {}

bool SearchEngine::satisfied(const SearchOutcome& out) const {
  return out.success || !out.hits.empty() || !out.top_k.empty();
}

void SearchEngine::escalate(Query& query, const RecoveryPolicy& policy) const {
  query.ttl += policy.ttl_escalation;
}

void SearchEngine::finish(const Query& query, SearchOutcome& out) const {
  if (query.ranked()) {
    finish_ranked(query, out);
    return;
  }
  sort_unique_hits(out.hits);
  if (!out.hits.empty()) out.success = true;
}

namespace {

/// The wait before declaring an attempt dead: the fixed timeout, or —
/// under an adaptive policy with latency observations — the session's
/// online quantile estimate scaled and clamped. No observations (inert
/// plans never produce any) falls back to the fixed timeout, which
/// keeps adaptive policies bit-for-bit transparent on inert plans.
double attempt_timeout_ms(const RecoveryPolicy& policy,
                          const FaultSession& faults, double quantile) {
  if (!policy.adaptive_timeout || !faults.has_latency_samples()) {
    return policy.timeout_ms;
  }
  const double est =
      faults.latency_quantile(quantile, policy.timeout_ms) *
      policy.timeout_multiplier;
  return std::clamp(est, policy.timeout_floor_ms, policy.timeout_ceil_ms);
}

}  // namespace

SearchOutcome SearchEngine::drive(const SearchEngine& engine, Query query,
                                  EngineContext& ctx, FaultSession* faults,
                                  const RecoveryPolicy* policy) {
  // Under faults the plan's crash schedule is the single source of
  // liveness truth; the decorator path must not mix in a caller mask.
  if (faults != nullptr) query.online = faults->plan().online_mask();
  SearchOutcome out;
  if (!engine.preflight(query, faults)) return out;
  // Ranked collector state is per-query: the dedup set must start empty
  // so admission (and the dry-round termination signal) sees only this
  // query's objects.
  if (query.ranked()) ctx.scratch.topk_seen.clear();
  engine.begin(query, ctx, out);
  std::uint32_t retries_used = 0;
  std::uint32_t hedges_used = 0;
  for (;;) {
    engine.attempt(query, ctx, faults, policy, out);
    if (engine.satisfied(out)) break;
    const bool recoverable =
        faults != nullptr && policy != nullptr && engine.retryable();
    if (!recoverable) break;
    // Hedged re-issue fires first: when the session has EVIDENCE of
    // faults (drops or dead peers — without evidence a failed attempt is
    // a true negative), re-issue a backup after only the estimated
    // quantile deadline, with no backoff and no escalation.
    if (hedges_used < policy->max_hedges && faults->suspects_faults()) {
      const double wait =
          attempt_timeout_ms(*policy, *faults, policy->hedge_quantile);
      faults->charge_wait(wait);
      out.fault.recovery_wait_ms += wait;
      ++out.fault.hedges;
      ++hedges_used;
      continue;
    }
    if (retries_used >= policy->max_retries) break;
    // Nothing came back: wait out the timeout, back off, widen the query.
    const double wait =
        attempt_timeout_ms(*policy, *faults, policy->timeout_quantile) +
        policy->backoff_after(retries_used);
    faults->charge_wait(wait);
    out.fault.recovery_wait_ms += wait;
    ++out.fault.retries;
    ++retries_used;
    engine.escalate(query, *policy);
  }
  engine.finish(query, out);
  return out;
}

}  // namespace qcp2p::sim
