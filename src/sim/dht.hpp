// Chord distributed hash table (Stoica et al.), the structured-lookup
// substrate used by the hybrid-search baseline (Loo et al., IPTPS'04)
// and by the Section V/VII "hybrid vs DHT" comparison.
//
// This is a simulation-grade Chord: the whole ring is materialized at
// once (no join/stabilize protocol), but routing is faithful — greedy
// finger-table forwarding with O(log N) hops — and hop counts are the
// message cost reported by the benches. A keyword layer maps terms to
// postings stored at the term's successor node, which is how keyword
// search is layered over exact-match DHTs.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/sim/fault.hpp"
#include "src/sim/network.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

class ChordDht {
 public:
  /// Builds a ring of `num_nodes` with ids drawn from a keyed hash.
  /// `succ_list_len` is the length of each node's successor list — the
  /// replica set and route-around fallback used under fault injection.
  ChordDht(std::size_t num_nodes, std::uint64_t seed = 0xC0DEULL,
           std::size_t succ_list_len = 4);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return ring_.size(); }

  /// Ring identifier of a node.
  [[nodiscard]] std::uint64_t node_id(NodeId node) const {
    return node_ids_.at(node);
  }

  /// Node responsible for `key` (its successor on the ring) — ground
  /// truth, O(log N) binary search, no routing.
  [[nodiscard]] NodeId successor_of(std::uint64_t key) const;

  struct LookupResult {
    NodeId node = 0;       // responsible node
    std::uint32_t hops = 0;  // routing messages spent
  };

  /// Every transmission a lookup charges, in order, as (sender, next
  /// hop) pairs — the per-link trace the DES-timed engines price through
  /// a TimingModel. One entry per hop charged (detour sends included).
  using SendLog = std::vector<std::pair<NodeId, NodeId>>;

  /// Greedy finger routing from `from` to the node responsible for key.
  /// A non-null `sends` records one (sender, receiver) pair per hop.
  [[nodiscard]] LookupResult lookup(std::uint64_t key, NodeId from,
                                    SendLog* sends = nullptr) const;

  /// The node's successor list (the next `succ_list_len` live-or-dead
  /// nodes clockwise on the ring, nearest first). Keys a node is
  /// responsible for are replicated across its successor list.
  [[nodiscard]] std::span<const NodeId> successor_list(NodeId node) const {
    return succ_lists_.at(node);
  }

  struct FaultyLookup {
    NodeId node = 0;         // live node answering for the key
    std::uint32_t hops = 0;  // every send, detours included
    bool success = false;
    FaultStats fault;
  };

  /// Fault-injected greedy routing. Each forward is charged and may be
  /// dropped in flight or addressed to a crashed peer; the router then
  /// detours to the next-best candidate (lower fingers, then
  /// successor-list entries), trying at most policy.route_around_width
  /// next hops per step — the extra sends are counted as
  /// route_around_hops. A key whose responsible node is dead is answered
  /// by the first live successor-list replica. When a whole attempt dies,
  /// the query times out, backs off, and re-routes from `from`, up to
  /// policy.max_retries times. With an inert session this follows (and
  /// charges) exactly the hops of plain lookup(). A non-null `sends`
  /// records every charged transmission, lost/dead candidates included.
  [[nodiscard]] FaultyLookup lookup(std::uint64_t key, NodeId from,
                                    FaultSession& faults,
                                    const RecoveryPolicy& policy,
                                    SendLog* sends = nullptr) const;

  // --- keyword / object layer -------------------------------------------

  struct Posting {
    std::uint64_t object_id = 0;
    NodeId holder = 0;
  };

  /// Hash of a term into ring-key space.
  [[nodiscard]] std::uint64_t term_key(TermId term) const noexcept;
  /// Hash of an object id into ring-key space.
  [[nodiscard]] std::uint64_t object_key(std::uint64_t object_id) const noexcept;

  /// Publishes a (term -> object@holder) posting; returns publish hops.
  std::uint32_t publish_term(TermId term, std::uint64_t object_id,
                             NodeId holder, NodeId from);

  /// Publishes an object's location; returns publish hops.
  std::uint32_t publish_object(std::uint64_t object_id, NodeId holder,
                               NodeId from);

  /// Publishes every object of a PeerStore under all its terms, routing
  /// each publication from its holder. Returns total publish messages.
  std::uint64_t publish_store(const PeerStore& store);

  /// Postings stored at the term's index node — the raw index content,
  /// no routing charged. The DES-timed engine routes with lookup() and
  /// reads the index through this.
  [[nodiscard]] std::span<const Posting> term_postings(TermId term) const {
    const auto it = term_index_.find(term);
    if (it == term_index_.end()) return {};
    return it->second;
  }

  struct TermSearch {
    std::vector<Posting> postings;
    std::uint32_t hops = 0;
  };
  /// Routes to the term's index node and returns its postings. With an
  /// `online` mask, an offline index node withholds its postings (routing
  /// hops are still charged); offline holders are filtered from the
  /// postings — their copies cannot be fetched.
  [[nodiscard]] TermSearch search_term(
      TermId term, NodeId from,
      const std::vector<bool>* online = nullptr) const;

  struct FaultyTermSearch {
    std::vector<Posting> postings;  // live holders only
    std::uint32_t hops = 0;
    bool success = false;
    FaultStats fault;
  };
  /// Fault-injected keyword lookup: routes with the fault-aware lookup()
  /// (successor-list replicas stand in for a dead index node) and filters
  /// postings down to live holders.
  [[nodiscard]] FaultyTermSearch search_term(TermId term, NodeId from,
                                             FaultSession& faults,
                                             const RecoveryPolicy& policy) const;

  struct ObjectSearch {
    std::vector<NodeId> holders;
    std::uint32_t hops = 0;
  };
  [[nodiscard]] ObjectSearch search_object(
      std::uint64_t object_id, NodeId from,
      const std::vector<bool>* online = nullptr) const;

 private:
  /// One routing attempt of the fault-injected lookup; false = attempt
  /// died (every candidate next hop at some step was lost or dead).
  bool route_once(std::uint64_t key, NodeId from, FaultSession& faults,
                  const RecoveryPolicy& policy, FaultyLookup& out,
                  SendLog* sends) const;
  [[nodiscard]] static bool in_open_closed(std::uint64_t a, std::uint64_t b,
                                           std::uint64_t x) noexcept;
  /// Closest finger of `node` strictly preceding `key`.
  [[nodiscard]] NodeId closest_preceding(NodeId node,
                                         std::uint64_t key) const noexcept;

  std::uint64_t seed_;
  std::vector<std::pair<std::uint64_t, NodeId>> ring_;  // sorted by id
  std::vector<std::uint64_t> node_ids_;                 // node -> ring id
  std::vector<NodeId> successor_;                       // node -> next node
  std::vector<std::vector<NodeId>> succ_lists_;         // node -> next r nodes
  std::vector<std::vector<NodeId>> fingers_;            // node -> 64 fingers
  std::unordered_map<TermId, std::vector<Posting>> term_index_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> object_index_;
};

}  // namespace qcp2p::sim
