// Hybrid flood-then-DHT search (Loo et al., "The case for a hybrid P2P
// search infrastructure", IPTPS'04): a query first floods the
// unstructured overlay with a small TTL; if it returns fewer than
// `rare_cutoff` results (the paper's rare-query test: < 20 results), it
// is re-issued through the structured (Chord) keyword index.
//
// The IPPS'08 paper's Section V/VII claim is that under the *measured*
// Zipf replica distribution the flood phase almost always fails, so the
// hybrid pays flood + DHT cost and performs worse than going straight to
// the DHT. bench/exp_hybrid_vs_dht regenerates that comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/dht.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/flood.hpp"

namespace qcp2p::sim {

struct HybridParams {
  std::uint32_t flood_ttl = 3;
  /// Fewer results than this marks the query "rare" -> fall back to DHT.
  std::size_t rare_cutoff = 20;
};

struct HybridResult {
  std::vector<std::uint64_t> results;
  std::uint64_t flood_messages = 0;
  std::uint64_t dht_messages = 0;
  bool used_dht = false;
  FaultStats fault;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return flood_messages + dht_messages;
  }
  [[nodiscard]] bool success() const noexcept { return !results.empty(); }
};

/// Conjunctive term query through the hybrid pipeline. The DHT phase
/// looks up every query term, intersects the posting lists by object id,
/// and counts routing hops as messages.
/// @param online  optional liveness mask applied to BOTH phases: offline
///                peers neither relay the flood nor answer it, a dead
///                term-index node withholds its postings, and dead
///                holders drop out of the result set. An offline source
///                issues nothing.
[[nodiscard]] HybridResult hybrid_search(
    const Graph& graph, const PeerStore& store, const ChordDht& dht,
    NodeId source, std::span<const TermId> query, const HybridParams& params,
    const std::vector<bool>* forwards = nullptr,
    const std::vector<bool>* online = nullptr);

/// Zero-allocation flood phase: BFS and match buffers come from
/// `scratch` (one per worker); results identical for any scratch state.
[[nodiscard]] HybridResult hybrid_search(
    const Graph& graph, const PeerStore& store, const ChordDht& dht,
    NodeId source, std::span<const TermId> query, const HybridParams& params,
    SearchScratch& scratch, const std::vector<bool>* forwards = nullptr,
    const std::vector<bool>* online = nullptr);

/// Pure-DHT baseline: same keyword lookup, no flood phase. The optional
/// liveness mask has the same semantics as hybrid_search's DHT phase.
[[nodiscard]] HybridResult dht_only_search(
    const ChordDht& dht, NodeId source, std::span<const TermId> query,
    const std::vector<bool>* online = nullptr);

// Fault-injected hybrid/DHT-only searches live behind the engine layer:
// wrap the registry's "hybrid" or "dht-only" engine in with_faults()
// (see fault_decorator.hpp). The flood phase runs single-shot (the DHT
// fallback IS its recovery); the DHT phase's per-term lookups use the
// policy's bounded retries and successor-list route-around.

}  // namespace qcp2p::sim
