// Per-worker scratch buffers for the Monte-Carlo search hot paths.
//
// Every engine entry point that runs millions of times (flood,
// random-walk, Gia, hybrid) has an overload taking a SearchScratch so a
// trial performs no heap allocation: BFS state, frontier queues, and
// per-probe match buffers are reused across queries. One scratch per
// worker thread, never shared concurrently. Scratch state cannot leak
// into results: visited marks are epoch-stamped, so a scratch may be
// reused across queries, graphs, and stores freely and every engine
// produces bit-identical output with a fresh or a reused scratch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/sim/network.hpp"

namespace qcp2p::sim {

struct SearchScratch {
  // BFS traversal state (flood engines). visit_mark[v] == the low byte
  // of epoch marks v as seen in the current traversal; other values are
  // stale and inert. One byte per node keeps the whole mark array
  // cache-resident on the 40k-node benches (the BFS inner loop is bound
  // by these random loads).
  std::vector<std::uint8_t> visit_mark;
  std::uint32_t epoch = 0;
  std::vector<NodeId> frontier;
  std::vector<NodeId> next;
  /// Nodes reached by the last flood_core run (excluding the source).
  std::vector<NodeId> reached;

  // Per-probe content-match buffers (all engines).
  PeerStore::MatchScratch match;
  /// Gia one-hop accumulation buffer (per-probe sort/dedup workspace).
  std::vector<std::uint64_t> hop_hits;
  /// Ranked-mode collector: sorted-unique object ids admitted so far in
  /// the current query (drive() clears it per ranked query); the "did
  /// this round discover anything new" signal behind early termination.
  std::vector<std::uint64_t> topk_seen;

  /// Grows visit_mark to cover `num_nodes`. Never shrinks; stale marks
  /// from other graphs are defused by the epoch stamp.
  void bind(std::size_t num_nodes) {
    if (visit_mark.size() < num_nodes) visit_mark.resize(num_nodes, 0);
  }

  /// Starts a new traversal epoch and returns its mark byte (never 0;
  /// 0 always means "unvisited"). Whenever the low byte wraps (every 255
  /// runs) the marks are cleared, as stale bytes from the previous cycle
  /// would alias the restarted counter and silently skip nodes. The
  /// clear is a 1-byte-per-node memset amortized over 255 traversals.
  [[nodiscard]] std::uint8_t begin_epoch() {
    ++epoch;
    if ((epoch & 0xFFu) == 0) {
      std::fill(visit_mark.begin(), visit_mark.end(), std::uint8_t{0});
      ++epoch;
    }
    return static_cast<std::uint8_t>(epoch);
  }
};

}  // namespace qcp2p::sim
