// Parallel Monte-Carlo trial engine for the query benches.
//
// Every experiment in bench/ boils down to "run N independent query
// trials and aggregate success / message / hop counters". TrialRunner
// shards those N trials over a util::ThreadPool, giving each worker its
// own scratch state (e.g. a FloodEngine) and each *trial* its own
// Rng::split()-derived stream keyed by the trial index — never by the
// worker or the schedule. Outcomes accumulate into per-shard
// TrialAggregates (no locks, no sharing) that are merged after the
// barrier.
//
// Determinism contract: because the per-trial rng depends only on
// (seed, trial index) and every TrialAggregate field is an integer sum
// (exactly associative and commutative), the merged aggregate is
// bit-identical for any --threads value and any scheduling. The trial
// function must depend only on its (index, rng, ctx) arguments, and may
// use ctx solely as reusable scratch whose prior contents do not affect
// results (SearchScratch and FloodEngine's epoch-stamped marks satisfy
// this).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

/// What one query trial reports back. `extra` carries bench-specific
/// integer counters (e.g. flood vs DHT message split, fallback count).
struct TrialOutcome {
  bool success = false;
  std::uint64_t messages = 0;
  std::uint64_t hops = 0;
  std::uint64_t peers_probed = 0;
  std::array<std::uint64_t, 4> extra{};
};

/// Integer-sum reduction over trials. All fields are exact sums so that
/// merging partial aggregates in any order yields identical bits.
struct TrialAggregate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t messages = 0;
  std::uint64_t hops = 0;
  std::uint64_t peers_probed = 0;
  std::array<std::uint64_t, 4> extra{};

  void add(const TrialOutcome& outcome) noexcept;
  void merge(const TrialAggregate& other) noexcept;

  [[nodiscard]] double success_rate() const noexcept;
  [[nodiscard]] double mean_messages() const noexcept;
  [[nodiscard]] double mean_hops() const noexcept;
  [[nodiscard]] double mean_peers_probed() const noexcept;
  [[nodiscard]] double mean_extra(std::size_t i) const noexcept;
};

class TrialRunner {
 public:
  struct Options {
    /// Worker count; 0 = hardware concurrency.
    std::size_t threads = 0;
    std::uint64_t seed = 42;
  };

  explicit TrialRunner(Options options) noexcept : options_(options) {}

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The independent stream trial `t` sees. Public so a test (or a
  /// debugging session) can replay any single trial exactly.
  [[nodiscard]] util::Rng trial_rng(std::size_t trial) const noexcept;

  /// Runs `trials` trials of `trial(index, rng, ctx)` where each worker
  /// shard owns a fresh `ctx = make_ctx()` (engines, buffers, ...).
  template <typename MakeCtx, typename TrialFn>
  TrialAggregate run(std::size_t trials, MakeCtx&& make_ctx,
                     TrialFn&& trial) const {
    using Ctx = std::decay_t<std::invoke_result_t<MakeCtx&>>;
    return run_shards(trials, [&](std::size_t begin, std::size_t end,
                                  TrialAggregate& acc) {
      Ctx ctx = make_ctx();
      for (std::size_t t = begin; t < end; ++t) {
        util::Rng rng = trial_rng(t);
        acc.add(trial(t, rng, ctx));
      }
    });
  }

  /// Context-free overload: `trial(index, rng)`.
  template <typename TrialFn>
  TrialAggregate run(std::size_t trials, TrialFn&& trial) const {
    return run_shards(trials, [&](std::size_t begin, std::size_t end,
                                  TrialAggregate& acc) {
      for (std::size_t t = begin; t < end; ++t) {
        util::Rng rng = trial_rng(t);
        acc.add(trial(t, rng));
      }
    });
  }

 private:
  using ShardFn =
      std::function<void(std::size_t begin, std::size_t end, TrialAggregate&)>;

  TrialAggregate run_shards(std::size_t trials, const ShardFn& shard) const;

  Options options_;
};

}  // namespace qcp2p::sim
