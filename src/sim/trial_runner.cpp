#include "src/sim/trial_runner.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>
#include <vector>

#include "src/util/thread_pool.hpp"

namespace qcp2p::sim {

void TrialAggregate::add(const TrialOutcome& outcome) noexcept {
  ++trials;
  successes += outcome.success ? 1 : 0;
  messages += outcome.messages;
  hops += outcome.hops;
  peers_probed += outcome.peers_probed;
  for (std::size_t i = 0; i < extra.size(); ++i) extra[i] += outcome.extra[i];
}

void TrialAggregate::merge(const TrialAggregate& other) noexcept {
  trials += other.trials;
  successes += other.successes;
  messages += other.messages;
  hops += other.hops;
  peers_probed += other.peers_probed;
  for (std::size_t i = 0; i < extra.size(); ++i) extra[i] += other.extra[i];
}

namespace {

double per_trial(std::uint64_t sum, std::uint64_t trials) noexcept {
  return trials == 0
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(trials);
}

}  // namespace

double TrialAggregate::success_rate() const noexcept {
  return per_trial(successes, trials);
}
double TrialAggregate::mean_messages() const noexcept {
  return per_trial(messages, trials);
}
double TrialAggregate::mean_hops() const noexcept {
  return per_trial(hops, trials);
}
double TrialAggregate::mean_peers_probed() const noexcept {
  return per_trial(peers_probed, trials);
}
double TrialAggregate::mean_extra(std::size_t i) const noexcept {
  return i < extra.size() ? per_trial(extra[i], trials) : 0.0;
}

util::Rng TrialRunner::trial_rng(std::size_t trial) const noexcept {
  // Key the child stream off (seed, trial index) only. mix64 decorrelates
  // adjacent indices before split() derives the stream, so trial t draws
  // the same numbers no matter which worker runs it.
  util::Rng base(options_.seed ^ util::mix64(0x7C15EA5EULL + trial));
  return base.split();
}

TrialAggregate TrialRunner::run_shards(std::size_t trials,
                                       const ShardFn& shard) const {
  TrialAggregate total;
  if (trials == 0) return total;

  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t num_shards = std::min(trials, threads);
  if (num_shards <= 1) {
    shard(0, trials, total);
    return total;
  }

  // One contiguous block and one private accumulator per shard; workers
  // never touch shared state between the fork and the merge barrier.
  const std::size_t block = (trials + num_shards - 1) / num_shards;
  std::vector<TrialAggregate> partial(num_shards);
  util::ThreadPool pool(num_shards);
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards);
  for (std::size_t b = 0; b < num_shards; ++b) {
    const std::size_t begin = b * block;
    const std::size_t end = std::min(begin + block, trials);
    if (begin >= end) break;
    futures.push_back(pool.submit(
        [&shard, &acc = partial[b], begin, end] { shard(begin, end, acc); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  for (const TrialAggregate& p : partial) total.merge(p);
  return total;
}

}  // namespace qcp2p::sim
