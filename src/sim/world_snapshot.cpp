#include "src/sim/world_snapshot.hpp"

#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace qcp2p::sim {
namespace {

// "QCPWSNAP" little-endian.
constexpr std::uint64_t kMagic = 0x50414E5357504351ULL;
/// v2 added the kObjScores section (per-ordinal static relevance
/// scores). v1 blobs predate scoring and are rejected with a rebuild
/// hint — recomputing scores would need the full index statistics pass
/// on every load, defeating the zero-copy mapping contract.
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kSectionAlign = 64;

/// Section kinds, in the order they are written. The loader requires
/// exactly this set, so kind doubles as the table index.
enum SectionKind : std::uint32_t {
  kGraphOffsets = 0,    // uint32, num_nodes + 1
  kGraphNeighbors = 1,  // uint32 NodeId, 2 * num_edges
  kPeerTermOffsets = 2, // uint32, num_peers + 1
  kPeerTermsFlat = 3,   // uint32 TermId
  kObjOffsets = 4,      // uint32, num_peers + 1
  kObjIds = 5,          // uint64, total_objects
  kObjTermOffsets = 6,  // uint32, total_objects + 1
  kObjTermsFlat = 7,    // uint32 TermId
  kIndexTerms = 8,      // uint32 TermId
  kIndexOffsets = 9,    // uint32, index_terms + 1
  kPostings = 10,       // uint32 ordinals
  kObjScores = 11,      // float, total_objects (v2+)
  kSectionCount = 12,
};

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t section_count = kSectionCount;
  std::uint64_t file_size = 0;  // patched after layout; truncation check
  WorldSnapshotMeta meta;
};

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t element_size = 0;
  std::uint64_t offset = 0;  // bytes from file start
  std::uint64_t count = 0;   // elements
};

static_assert(std::is_trivially_copyable_v<Header>);
static_assert(std::is_trivially_copyable_v<SectionEntry>);
static_assert(std::is_trivially_copyable_v<WorldSnapshotMeta>);

template <typename T>
std::span<const T> section_span(const util::MappedFile& file,
                                const SectionEntry& entry) {
  return {reinterpret_cast<const T*>(file.data() + entry.offset),
          static_cast<std::size_t>(entry.count)};
}

}  // namespace

void save_world_snapshot(const std::string& path, const Graph& graph,
                         const PeerStore& store, std::uint64_t seed) {
  if (!graph.frozen()) {
    throw std::invalid_argument("save_world_snapshot: graph must be frozen");
  }
  if (!store.finalized()) {
    throw std::invalid_argument(
        "save_world_snapshot: store must be finalized");
  }
  const PeerStore::FlatLayout flat = store.flat_layout();

  Header header;
  header.meta.num_nodes = graph.num_nodes();
  header.meta.num_edges = graph.num_edges();
  header.meta.num_peers = flat.num_peers;
  header.meta.total_objects = store.total_objects();
  header.meta.seed = seed;

  util::Arena arena;
  const std::size_t header_off = arena.append(&header, sizeof(header), 8);
  SectionEntry table[kSectionCount] = {};
  const std::size_t table_off = arena.append(table, sizeof(table), 8);

  const auto put = [&arena, &table](SectionKind kind, const auto& span) {
    using T = typename std::remove_cvref_t<decltype(span)>::value_type;
    table[kind] = SectionEntry{
        kind, sizeof(T),
        static_cast<std::uint64_t>(arena.append_array(span, kSectionAlign)),
        span.size()};
  };
  put(kGraphOffsets, graph.csr_offsets());
  put(kGraphNeighbors, graph.csr_neighbors());
  put(kPeerTermOffsets, flat.peer_term_offsets);
  put(kPeerTermsFlat, flat.peer_terms_flat);
  put(kObjOffsets, flat.obj_offsets);
  put(kObjIds, flat.obj_ids);
  put(kObjTermOffsets, flat.obj_term_offsets);
  put(kObjTermsFlat, flat.obj_terms_flat);
  put(kIndexTerms, flat.index_terms);
  put(kIndexOffsets, flat.index_offsets);
  put(kPostings, flat.postings);
  put(kObjScores, flat.obj_scores);

  header.file_size = arena.size();
  arena.patch(header_off, &header, sizeof(header));
  arena.patch(table_off, table, sizeof(table));
  util::write_file(path, arena.bytes());
}

WorldSnapshot WorldSnapshot::load(const std::string& path) {
  WorldSnapshot snap;
  snap.file_ = util::MappedFile::open(path);
  const util::MappedFile& file = snap.file_;
  const auto fail = [&path](const char* what) {
    throw std::runtime_error("WorldSnapshot::load: " + path + ": " + what);
  };

  if (file.size() < sizeof(Header) + sizeof(SectionEntry) * kSectionCount) {
    fail("file smaller than header");
  }
  Header header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (header.magic != kMagic) fail("bad magic");
  if (header.version == 1) {
    fail(
        "version 1 snapshot predates object scores; rebuild the snapshot "
        "with this binary (need version 2)");
  }
  if (header.version != kVersion) fail("unsupported version");
  if (header.section_count != kSectionCount) fail("bad section count");
  if (header.file_size != file.size()) fail("size mismatch (truncated?)");

  SectionEntry table[kSectionCount];
  std::memcpy(table, file.data() + sizeof(Header), sizeof(table));
  for (std::uint32_t k = 0; k < kSectionCount; ++k) {
    const SectionEntry& e = table[k];
    if (e.kind != k) fail("section table out of order");
    if (e.element_size == 0) fail("zero element size");
    if (e.offset % kSectionAlign != 0) fail("misaligned section");
    const std::uint64_t bytes = e.count * e.element_size;
    if (e.offset > file.size() || bytes > file.size() - e.offset) {
      fail("section outside file");
    }
  }
  const auto expect_count = [&fail](const SectionEntry& e,
                                    std::uint64_t count) {
    if (e.count != count) fail("section count mismatch");
  };
  const WorldSnapshotMeta& m = header.meta;
  expect_count(table[kGraphOffsets], m.num_nodes + 1);
  expect_count(table[kGraphNeighbors], 2 * m.num_edges);
  expect_count(table[kPeerTermOffsets], m.num_peers + 1);
  expect_count(table[kObjOffsets], m.num_peers + 1);
  expect_count(table[kObjIds], m.total_objects);
  expect_count(table[kObjTermOffsets], m.total_objects + 1);
  expect_count(table[kIndexOffsets], table[kIndexTerms].count + 1);
  expect_count(table[kObjScores], m.total_objects);

  snap.meta_ = m;
  snap.graph_offsets_ =
      section_span<std::uint32_t>(file, table[kGraphOffsets]);
  snap.graph_neighbors_ =
      section_span<overlay::NodeId>(file, table[kGraphNeighbors]);
  PeerStore::FlatLayout& layout = snap.store_layout_;
  layout.num_peers = static_cast<std::size_t>(m.num_peers);
  layout.peer_term_offsets =
      section_span<std::uint32_t>(file, table[kPeerTermOffsets]);
  layout.peer_terms_flat = section_span<TermId>(file, table[kPeerTermsFlat]);
  layout.obj_offsets = section_span<std::uint32_t>(file, table[kObjOffsets]);
  layout.obj_ids = section_span<std::uint64_t>(file, table[kObjIds]);
  layout.obj_term_offsets =
      section_span<std::uint32_t>(file, table[kObjTermOffsets]);
  layout.obj_terms_flat = section_span<TermId>(file, table[kObjTermsFlat]);
  layout.index_terms = section_span<TermId>(file, table[kIndexTerms]);
  layout.index_offsets =
      section_span<std::uint32_t>(file, table[kIndexOffsets]);
  layout.postings = section_span<std::uint32_t>(file, table[kPostings]);
  layout.obj_scores = section_span<float>(file, table[kObjScores]);

  // Exercise the deeper shape validation (offset front/back invariants)
  // once at load so later view construction cannot throw.
  try {
    (void)Graph::csr_view(snap.graph_offsets_, snap.graph_neighbors_);
    (void)PeerStore::flat_view(layout);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  return snap;
}

Graph WorldSnapshot::graph_view() const {
  return Graph::csr_view(graph_offsets_, graph_neighbors_);
}

PeerStore WorldSnapshot::store_view() const {
  return PeerStore::flat_view(store_layout_);
}

}  // namespace qcp2p::sim
