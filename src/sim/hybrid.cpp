#include "src/sim/hybrid.hpp"

#include <algorithm>
#include <unordered_map>

namespace qcp2p::sim {
namespace {

/// Looks up every query term in the DHT and intersects postings by
/// object id; hops of all lookups are charged as messages.
void dht_phase(const ChordDht& dht, NodeId source,
               std::span<const TermId> query, HybridResult& out) {
  out.used_dht = true;
  std::unordered_map<std::uint64_t, std::size_t> object_term_hits;
  for (TermId t : query) {
    const ChordDht::TermSearch ts = dht.search_term(t, source);
    out.dht_messages += ts.hops;
    // Deduplicate postings of the same object under one term (an object
    // replicated on several holders appears once per holder).
    std::vector<std::uint64_t> ids;
    ids.reserve(ts.postings.size());
    for (const ChordDht::Posting& p : ts.postings) ids.push_back(p.object_id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::uint64_t id : ids) ++object_term_hits[id];
  }
  for (const auto& [id, hits] : object_term_hits) {
    if (hits == query.size()) out.results.push_back(id);
  }
  std::sort(out.results.begin(), out.results.end());
}

}  // namespace

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params,
                           const std::vector<bool>* forwards) {
  HybridResult out;
  if (query.empty()) return out;

  const FloodSearchResult fr =
      flood_search(graph, store, source, query, params.flood_ttl, forwards);
  out.flood_messages = fr.messages;
  out.results = fr.results;

  if (out.results.size() < params.rare_cutoff) {
    // Rare query: re-issue through the structured index (keep any flood
    // results; the DHT adds the rest).
    HybridResult dht_out;
    dht_phase(dht, source, query, dht_out);
    out.dht_messages = dht_out.dht_messages;
    out.used_dht = true;
    out.results.insert(out.results.end(), dht_out.results.begin(),
                       dht_out.results.end());
    std::sort(out.results.begin(), out.results.end());
    out.results.erase(std::unique(out.results.begin(), out.results.end()),
                      out.results.end());
  }
  return out;
}

HybridResult dht_only_search(const ChordDht& dht, NodeId source,
                             std::span<const TermId> query) {
  HybridResult out;
  if (query.empty()) return out;
  dht_phase(dht, source, query, out);
  return out;
}

}  // namespace qcp2p::sim
