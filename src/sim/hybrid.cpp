#include "src/sim/hybrid.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "src/sim/engine_registry.hpp"

namespace qcp2p::sim {
namespace {

/// Optional ranked-mode side channel of dht_phase: one live holder per
/// result object id (the smallest seen, for determinism), so the engine
/// can resolve the object's static score through
/// PeerStore::object_score_at — the DHT returns ids, not ordinals.
using HolderOf = std::unordered_map<std::uint64_t, NodeId>;

void record_holder(HolderOf* holder_of, const ChordDht::Posting& p) {
  if (holder_of == nullptr) return;
  const auto [it, inserted] = holder_of->try_emplace(p.object_id, p.holder);
  if (!inserted && p.holder < it->second) it->second = p.holder;
}

/// Looks up every query term in the DHT and intersects postings by
/// object id; hops of all lookups are charged as messages.
void dht_phase(const ChordDht& dht, NodeId source,
               std::span<const TermId> query, HybridResult& out,
               const std::vector<bool>* online,
               HolderOf* holder_of = nullptr) {
  out.used_dht = true;
  std::unordered_map<std::uint64_t, std::size_t> object_term_hits;
  for (TermId t : query) {
    const ChordDht::TermSearch ts = dht.search_term(t, source, online);
    out.dht_messages += ts.hops;
    // Deduplicate postings of the same object under one term (an object
    // replicated on several holders appears once per holder).
    std::vector<std::uint64_t> ids;
    ids.reserve(ts.postings.size());
    for (const ChordDht::Posting& p : ts.postings) {
      ids.push_back(p.object_id);
      record_holder(holder_of, p);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::uint64_t id : ids) ++object_term_hits[id];
  }
  for (const auto& [id, hits] : object_term_hits) {
    if (hits == query.size()) out.results.push_back(id);
  }
  std::sort(out.results.begin(), out.results.end());
}

/// Fault-injected twin of dht_phase: per-term lookups retry and
/// route around dead fingers per the policy; a term whose index (and
/// every successor-list replica) is unreachable contributes nothing.
void dht_phase(const ChordDht& dht, NodeId source,
               std::span<const TermId> query, HybridResult& out,
               FaultSession& faults, const RecoveryPolicy& policy,
               HolderOf* holder_of = nullptr) {
  out.used_dht = true;
  std::unordered_map<std::uint64_t, std::size_t> object_term_hits;
  for (TermId t : query) {
    const ChordDht::FaultyTermSearch ts =
        dht.search_term(t, source, faults, policy);
    out.dht_messages += ts.hops;
    out.fault.merge(ts.fault);
    std::vector<std::uint64_t> ids;
    ids.reserve(ts.postings.size());
    for (const ChordDht::Posting& p : ts.postings) {
      ids.push_back(p.object_id);
      record_holder(holder_of, p);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::uint64_t id : ids) ++object_term_hits[id];
  }
  for (const auto& [id, hits] : object_term_hits) {
    if (hits == query.size()) out.results.push_back(id);
  }
  std::sort(out.results.begin(), out.results.end());
}

/// Ranked-mode scoring of a DHT result list: each conjunctive result is
/// priced at its holder's stored score and fed through the shared
/// admission collector. Without a store (bare dht-only worlds) every
/// score is 0 and the ranking degrades to ascending object id.
void admit_dht_ranked(const PeerStore* store, const HybridResult& dht_out,
                      const HolderOf& holder_of, float min_score,
                      SearchScratch& scratch, std::vector<ScoredMatch>& ranked) {
  for (std::uint64_t id : dht_out.results) {
    const auto it = holder_of.find(id);
    const float score = (store != nullptr && it != holder_of.end())
                            ? store->object_score_at(it->second, id)
                            : 0.0f;
    admit_ranked({id, score}, min_score, scratch, ranked);
  }
}

void merge_flood_then_dht(HybridResult& out) {
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
}

}  // namespace

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params,
                           const std::vector<bool>* forwards,
                           const std::vector<bool>* online) {
  SearchScratch scratch;
  return hybrid_search(graph, store, dht, source, query, params, scratch,
                       forwards, online);
}

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params, SearchScratch& scratch,
                           const std::vector<bool>* forwards,
                           const std::vector<bool>* online) {
  HybridResult out;
  if (query.empty()) return out;
  if (online != nullptr && !(*online)[source]) return out;

  const FloodSearchResult fr =
      flood_search(graph, store, source, query, params.flood_ttl, scratch,
                   forwards, online);
  out.flood_messages = fr.messages;
  out.results = fr.results;

  if (out.results.size() < params.rare_cutoff) {
    // Rare query: re-issue through the structured index (keep any flood
    // results; the DHT adds the rest).
    HybridResult dht_out;
    dht_phase(dht, source, query, dht_out, online);
    out.dht_messages = dht_out.dht_messages;
    out.used_dht = true;
    out.results.insert(out.results.end(), dht_out.results.begin(),
                       dht_out.results.end());
    merge_flood_then_dht(out);
  }
  return out;
}

HybridResult dht_only_search(const ChordDht& dht, NodeId source,
                             std::span<const TermId> query,
                             const std::vector<bool>* online) {
  HybridResult out;
  if (query.empty()) return out;
  if (online != nullptr && !(*online)[source]) return out;
  dht_phase(dht, source, query, out, online);
  return out;
}

namespace {

/// Registry adapter for the hybrid pipeline. The flood phase is the
/// registry's flood engine driven as a sub-engine (single-shot under
/// faults: the DHT fallback IS its recovery), so hybrid itself opts out
/// of decorator-level retries via retryable() = false — its recovery is
/// structural, not attempt-based.
class HybridEngine final : public SearchEngine {
 public:
  HybridEngine(const Graph& graph, const PeerStore& store, const ChordDht& dht,
               const HybridParams& params, const std::vector<bool>* forwards,
               const TimingParams& timing)
      : graph_(&graph), store_(&store), dht_(&dht), params_(params),
        timing_(timing) {
    EngineWorld flood_world;
    flood_world.graph = &graph;
    flood_world.store = &store;
    flood_world.forwards = forwards;
    flood_world.timing = timing;
    flood_ = detail::make_flood_engine(flood_world);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hybrid";
  }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (graph_->num_nodes() == 0 || query.terms.empty()) return false;
    return query.online == nullptr || (*query.online)[query.source];
  }

  bool retryable() const noexcept override { return false; }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy* policy, SearchOutcome& out) const override {
    // Single-shot flood: a thin flood result falls through to the DHT
    // anyway, so the structured phase is this phase's recovery path.
    RecoveryPolicy flood_policy;
    if (policy != nullptr) {
      flood_policy = *policy;
      flood_policy.max_retries = 0;
    }
    SearchOutcome fr = drive(*flood_, query, ctx, faults,
                             policy != nullptr ? &flood_policy : nullptr);
    out.hits = std::move(fr.hits);
    out.top_k = std::move(fr.top_k);
    out.messages += fr.messages;
    out.per_hop = std::move(fr.per_hop);
    out.peers_probed += fr.peers_probed;
    out.fault.merge(fr.fault);
    out.timing = fr.timing;  // flood phase's estimated clock/first-hit
    HybridExtras extras{fr.messages, 0, false};

    // Rare-query detector. In ranked mode the flood sub-drive truncated
    // its answer to k, so "how many distinct objects did the flood see"
    // lives in the admission collector, not the hit list. (Dropping the
    // truncated tail is safe: an object below the flood's k-th rank
    // cannot enter the final top-k of the flood/DHT union either.)
    const std::size_t flood_found =
        query.ranked() ? ctx.scratch.topk_seen.size() : out.hits.size();
    if (flood_found < params_.rare_cutoff) {
      // Rare query: re-issue through the structured index (keep any
      // flood results; the DHT adds the rest).
      HybridResult dht_out;
      HolderOf holder_of;
      HolderOf* holders = query.ranked() ? &holder_of : nullptr;
      if (faults != nullptr && policy != nullptr) {
        dht_phase(*dht_, query.source, query.terms, dht_out, *faults, *policy,
                  holders);
      } else {
        dht_phase(*dht_, query.source, query.terms, dht_out, query.online,
                  holders);
      }
      out.messages += dht_out.dht_messages;
      out.fault.merge(dht_out.fault);
      if (query.ranked()) {
        // finish_ranked rebuilds `hits` from the merged ranking.
        admit_dht_ranked(store_, dht_out, holder_of, query.min_score,
                         ctx.scratch, out.top_k);
      } else {
        out.hits.insert(out.hits.end(), dht_out.results.begin(),
                        dht_out.results.end());
        sort_unique_hits(out.hits);
      }
      extras.dht_messages = dht_out.dht_messages;
      extras.used_dht = true;
      // Serial structured phase, priced like dht-only's estimate; the
      // flood phase's clock is the base. A query the flood already
      // answered keeps its flood first-hit.
      if (!out.timing.has_value()) out.timing.emplace();
      out.timing->clock_s +=
          static_cast<double>(dht_out.dht_messages + query.terms.size()) *
          TimingModel(timing_).mean_link_s();
      if (!out.timing->has_first_hit() &&
          (!out.hits.empty() || !out.top_k.empty())) {
        out.timing->first_hit_s = out.timing->clock_s;
      }
    }
    out.extras = extras;
  }

 private:
  const Graph* graph_;
  const PeerStore* store_;
  const ChordDht* dht_;
  HybridParams params_;
  TimingParams timing_;
  std::unique_ptr<SearchEngine> flood_;
};

/// Registry adapter for the pure-DHT baseline: same keyword lookup, no
/// flood phase. Recovery is Chord's own (per-term retries + successor
/// route-around inside search_term), so no decorator-level retries.
///
/// Carries an ESTIMATED TimingRecord: Chord routing is serial, so the
/// clock is every charged hop plus one response per term, priced at the
/// TimingModel's mean, plus in-lookup recovery waits. The conjunctive
/// result exists only once all terms resolve, so first-hit = clock.
class DhtOnlyEngine final : public SearchEngine {
 public:
  /// `store` is optional and only read in ranked mode (scores by
  /// holder); bare DHT worlds pass nullptr and rank at score 0.
  DhtOnlyEngine(const ChordDht& dht, const PeerStore* store,
                const TimingParams& timing) noexcept
      : dht_(&dht), store_(store), timing_(timing) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "dht-only";
  }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (query.terms.empty()) return false;
    return query.online == nullptr || (*query.online)[query.source];
  }

  bool retryable() const noexcept override { return false; }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy* policy, SearchOutcome& out) const override {
    HybridResult dht_out;
    HolderOf holder_of;
    HolderOf* holders = query.ranked() ? &holder_of : nullptr;
    if (faults != nullptr && policy != nullptr) {
      dht_phase(*dht_, query.source, query.terms, dht_out, *faults, *policy,
                holders);
    } else {
      dht_phase(*dht_, query.source, query.terms, dht_out, query.online,
                holders);
    }
    out.messages += dht_out.dht_messages;
    out.fault.merge(dht_out.fault);
    if (query.ranked()) {
      admit_dht_ranked(store_, dht_out, holder_of, query.min_score,
                       ctx.scratch, out.top_k);
    } else {
      out.hits.insert(out.hits.end(), dht_out.results.begin(),
                      dht_out.results.end());
    }
    out.extras = HybridExtras{0, dht_out.dht_messages, true};

    out.timing.emplace();  // estimated (exact twin: the dht-des engine)
    const double mean = TimingModel(timing_).mean_link_s();
    out.timing->clock_s =
        static_cast<double>(dht_out.dht_messages + query.terms.size()) *
            mean +
        out.fault.recovery_wait_ms / 1000.0;
    if (!out.hits.empty() || !out.top_k.empty()) {
      out.timing->first_hit_s = out.timing->clock_s;
    }
  }

 private:
  const ChordDht* dht_;
  const PeerStore* store_;
  TimingParams timing_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchEngine> make_hybrid_engine(const EngineWorld& world) {
  if (world.graph == nullptr || world.store == nullptr ||
      world.dht == nullptr) {
    return nullptr;
  }
  return std::make_unique<HybridEngine>(*world.graph, *world.store, *world.dht,
                                        world.hybrid, world.forwards,
                                        world.timing);
}

std::unique_ptr<SearchEngine> make_dht_only_engine(const EngineWorld& world) {
  if (world.dht == nullptr) return nullptr;
  return std::make_unique<DhtOnlyEngine>(*world.dht, world.store,
                                         world.timing);
}

}  // namespace detail

}  // namespace qcp2p::sim
