#include "src/sim/hybrid.hpp"

#include <algorithm>
#include <unordered_map>

namespace qcp2p::sim {
namespace {

/// Looks up every query term in the DHT and intersects postings by
/// object id; hops of all lookups are charged as messages.
void dht_phase(const ChordDht& dht, NodeId source,
               std::span<const TermId> query, HybridResult& out,
               const std::vector<bool>* online) {
  out.used_dht = true;
  std::unordered_map<std::uint64_t, std::size_t> object_term_hits;
  for (TermId t : query) {
    const ChordDht::TermSearch ts = dht.search_term(t, source, online);
    out.dht_messages += ts.hops;
    // Deduplicate postings of the same object under one term (an object
    // replicated on several holders appears once per holder).
    std::vector<std::uint64_t> ids;
    ids.reserve(ts.postings.size());
    for (const ChordDht::Posting& p : ts.postings) ids.push_back(p.object_id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::uint64_t id : ids) ++object_term_hits[id];
  }
  for (const auto& [id, hits] : object_term_hits) {
    if (hits == query.size()) out.results.push_back(id);
  }
  std::sort(out.results.begin(), out.results.end());
}

/// Fault-injected twin of dht_phase: per-term lookups retry and
/// route around dead fingers per the policy; a term whose index (and
/// every successor-list replica) is unreachable contributes nothing.
void dht_phase(const ChordDht& dht, NodeId source,
               std::span<const TermId> query, HybridResult& out,
               FaultSession& faults, const RecoveryPolicy& policy) {
  out.used_dht = true;
  std::unordered_map<std::uint64_t, std::size_t> object_term_hits;
  for (TermId t : query) {
    const ChordDht::FaultyTermSearch ts =
        dht.search_term(t, source, faults, policy);
    out.dht_messages += ts.hops;
    out.fault.merge(ts.fault);
    std::vector<std::uint64_t> ids;
    ids.reserve(ts.postings.size());
    for (const ChordDht::Posting& p : ts.postings) ids.push_back(p.object_id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::uint64_t id : ids) ++object_term_hits[id];
  }
  for (const auto& [id, hits] : object_term_hits) {
    if (hits == query.size()) out.results.push_back(id);
  }
  std::sort(out.results.begin(), out.results.end());
}

void merge_flood_then_dht(HybridResult& out) {
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
}

}  // namespace

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params,
                           const std::vector<bool>* forwards,
                           const std::vector<bool>* online) {
  SearchScratch scratch;
  return hybrid_search(graph, store, dht, source, query, params, scratch,
                       forwards, online);
}

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params, SearchScratch& scratch,
                           const std::vector<bool>* forwards,
                           const std::vector<bool>* online) {
  HybridResult out;
  if (query.empty()) return out;
  if (online != nullptr && !(*online)[source]) return out;

  const FloodSearchResult fr =
      flood_search(graph, store, source, query, params.flood_ttl, scratch,
                   forwards, online);
  out.flood_messages = fr.messages;
  out.results = fr.results;

  if (out.results.size() < params.rare_cutoff) {
    // Rare query: re-issue through the structured index (keep any flood
    // results; the DHT adds the rest).
    HybridResult dht_out;
    dht_phase(dht, source, query, dht_out, online);
    out.dht_messages = dht_out.dht_messages;
    out.used_dht = true;
    out.results.insert(out.results.end(), dht_out.results.begin(),
                       dht_out.results.end());
    merge_flood_then_dht(out);
  }
  return out;
}

HybridResult dht_only_search(const ChordDht& dht, NodeId source,
                             std::span<const TermId> query,
                             const std::vector<bool>* online) {
  HybridResult out;
  if (query.empty()) return out;
  if (online != nullptr && !(*online)[source]) return out;
  dht_phase(dht, source, query, out, online);
  return out;
}

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params, FaultSession& faults,
                           const RecoveryPolicy& policy,
                           const std::vector<bool>* forwards) {
  SearchScratch scratch;
  return hybrid_search(graph, store, dht, source, query, params, scratch,
                       faults, policy, forwards);
}

HybridResult hybrid_search(const Graph& graph, const PeerStore& store,
                           const ChordDht& dht, NodeId source,
                           std::span<const TermId> query,
                           const HybridParams& params, SearchScratch& scratch,
                           FaultSession& faults, const RecoveryPolicy& policy,
                           const std::vector<bool>* forwards) {
  HybridResult out;
  if (query.empty()) return out;
  if (!faults.online(source)) return out;

  // Single-shot flood: a thin flood result falls through to the DHT
  // anyway, so the structured phase is this phase's recovery path.
  RecoveryPolicy flood_policy = policy;
  flood_policy.max_retries = 0;
  const FloodSearchResult fr =
      flood_search(graph, store, source, query, params.flood_ttl, scratch,
                   faults, flood_policy, forwards);
  out.flood_messages = fr.messages;
  out.results = fr.results;
  out.fault.merge(fr.fault);

  if (out.results.size() < params.rare_cutoff) {
    HybridResult dht_out;
    dht_phase(dht, source, query, dht_out, faults, policy);
    out.dht_messages = dht_out.dht_messages;
    out.used_dht = true;
    out.fault.merge(dht_out.fault);
    out.results.insert(out.results.end(), dht_out.results.begin(),
                       dht_out.results.end());
    merge_flood_then_dht(out);
  }
  return out;
}

HybridResult dht_only_search(const ChordDht& dht, NodeId source,
                             std::span<const TermId> query,
                             FaultSession& faults,
                             const RecoveryPolicy& policy) {
  HybridResult out;
  if (query.empty()) return out;
  if (!faults.online(source)) return out;
  dht_phase(dht, source, query, out, faults, policy);
  return out;
}

}  // namespace qcp2p::sim
