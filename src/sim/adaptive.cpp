#include "src/sim/adaptive.hpp"

#include <algorithm>
#include <utility>

#include "src/sim/engine_registry.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

AdaptiveOverlayNetwork::AdaptiveOverlayNetwork(
    const overlay::Graph& graph, const PeerStore& store,
    const AdaptiveParams& params, const std::vector<bool>* forwards)
    : graph_(&graph),
      store_(&store),
      params_(params),
      forwards_(forwards),
      tracker_(params.tracker) {
  synopses_.reserve(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    synopses_.emplace_back(params_.synopsis,
                           core::SynopsisPolicy::kQueryCentric);
    const std::size_t count = store.object_count(v);
    for (std::size_t i = 0; i < count; ++i) {
      synopses_.back().add_object(store.object_terms(v, i));
    }
  }
  refresh_synopses();  // initial (cold) advertisement
}

void AdaptiveOverlayNetwork::observe_query(std::span<const TermId> terms) {
  for (TermId t : terms) tracker_.observe_term(t);
  tracker_.tick(1.0);
}

std::size_t AdaptiveOverlayNetwork::refresh_synopses() {
  std::size_t changed = 0;
  for (NodeId v = 0; v < synopses_.size(); ++v) {
    if (!synopses_[v].refresh(&tracker_)) continue;
    ++changed;
    ++readvertisements_;
    advertisement_bytes_ += static_cast<std::uint64_t>(graph_->degree(v)) *
                            (params_.synopsis.bloom_bits / 8);
  }
  return changed;
}

namespace {

/// Registry adapter: synopsis-guided bounded flood over the adaptive
/// network. Retries reuse the default expanding-ring TTL escalation;
/// the guided/fallback traffic split accumulates in AdaptiveExtras.
/// Content queries carry an ESTIMATED TimingRecord priced like flood's:
/// a peer first probed at hop h answers after a 2h-link round trip at
/// the TimingModel's mean.
class AdaptiveSearchEngine final : public SearchEngine {
 public:
  AdaptiveSearchEngine(const AdaptiveOverlayNetwork& net,
                       const TimingParams& timing,
                       std::unique_ptr<AdaptiveOverlayNetwork> owned = nullptr)
      : net_(&net), owned_(std::move(owned)), timing_(timing) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adaptive";
  }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (query.is_locate() || query.terms.empty()) return false;
    if (net_->graph().num_nodes() == 0) return false;
    return query.online == nullptr || (*query.online)[query.source];
  }

  void begin(const Query& query, EngineContext& ctx,
             SearchOutcome& out) const override {
    out.timing.emplace();  // estimated (rounds x mean link latency)
    out.extras = AdaptiveExtras{};
    const NodeId self[1] = {query.source};
    if (query.ranked()) {
      if (probe_peers_ranked(net_->store(), query.terms, self, query.min_score,
                             ctx.scratch, out.top_k, out.peers_probed) != 0) {
        out.timing->first_hit_s = 0.0;
      }
      return;
    }
    probe_peers(net_->store(), query.terms, self, ctx.scratch, out.hits,
                out.peers_probed);
    if (!out.hits.empty()) out.timing->first_hit_s = 0.0;
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy*, SearchOutcome& out) const override {
    const overlay::Graph& graph = net_->graph();
    const AdaptiveParams& params = net_->params();
    const std::vector<bool>* online = query.online;
    const std::vector<bool>* forwards = net_->forwards();
    auto* extras = std::get_if<AdaptiveExtras>(&out.extras);

    SearchScratch& scratch = ctx.scratch;
    scratch.bind(graph.num_nodes());
    const std::uint8_t epoch = scratch.begin_epoch();
    std::uint8_t* const mark = scratch.visit_mark.data();
    mark[query.source] = epoch;
    scratch.frontier.clear();
    scratch.frontier.push_back(query.source);

    const double base =
        out.timing->clock_s + out.fault.recovery_wait_ms / 1000.0;
    const double mean = TimingModel(timing_).mean_link_s();
    const bool ranked = query.ranked();
    std::uint32_t rounds = 0;
    std::vector<NodeId> matching;
    std::uint32_t stall = 0;  // ranked: rounds without a top-k improvement
    TopKTracker tracker(query.k);
    if (ranked) tracker.note_from(out.top_k, 0);  // begin() + retries

    for (std::uint32_t hop = 1; hop <= query.ttl && !scratch.frontier.empty();
         ++hop) {
      rounds = hop;
      const std::size_t round_before = out.top_k.size();
      scratch.next.clear();
      for (NodeId u : scratch.frontier) {
        // The source always transmits; relays only if allowed to forward
        // (two-tier leaves receive but never relay).
        if (u != query.source && forwards != nullptr && !(*forwards)[u]) {
          continue;
        }
        const auto nbrs = graph.neighbors(u);
        matching.clear();
        for (NodeId v : nbrs) {
          if (mark[v] == epoch) continue;
          if (net_->may_route(v, query.terms)) {
            matching.push_back(v);
          } else {
            ++extras->synopsis_filtered;
          }
        }
        auto forward = [&](NodeId v, bool guided) {
          // Circuit breaker: skip known-unresponsive neighbors entirely.
          if (faults != nullptr && faults->tripped(v)) return;
          ++out.messages;
          if (guided) {
            ++extras->guided_forwards;
          } else {
            ++extras->fallback_forwards;
          }
          if (faults != nullptr && !faults->deliver(u, v)) {
            ++out.fault.dropped;  // lost in flight: never arrives
            return;
          }
          const bool alive = faults != nullptr
                                 ? faults->online(v)
                                 : (online == nullptr || (*online)[v]);
          if (!alive) return;
          if (mark[v] == epoch) return;  // duplicate delivery
          mark[v] = epoch;
          const NodeId peer[1] = {v};
          bool hit_here = false;
          if (ranked) {
            const std::size_t fresh = probe_peers_ranked(
                net_->store(), query.terms, peer, query.min_score, scratch,
                out.top_k, out.peers_probed);
            hit_here = fresh != 0;
          } else {
            const std::size_t had_hits = out.hits.size();
            probe_peers(net_->store(), query.terms, peer, scratch, out.hits,
                        out.peers_probed);
            hit_here = out.hits.size() > had_hits;
          }
          if (hit_here && !out.timing->has_first_hit()) {
            out.timing->first_hit_s =
                base + 2.0 * static_cast<double>(hop) * mean;
          }
          scratch.next.push_back(v);
        };
        if (!matching.empty()) {
          // Forward to up to match_fanout synopsis matches, randomized
          // for load spreading across equally-promising neighbors.
          for (std::size_t i = matching.size(); i > 1; --i) {
            std::swap(matching[i - 1], matching[ctx.rng->bounded(i)]);
          }
          const std::size_t k = std::min(params.match_fanout, matching.size());
          for (std::size_t i = 0; i < k; ++i) forward(matching[i], true);
        } else if (!nbrs.empty()) {
          // Blind fallback keeps rare (never-advertised) queries alive.
          for (std::size_t i = 0; i < params.fallback_fanout; ++i) {
            forward(nbrs[ctx.rng->bounded(nbrs.size())], false);
          }
        }
      }
      scratch.frontier.swap(scratch.next);
      // Ranked early termination (DESIGN.md §11): kRankedStallRounds
      // consecutive rounds that admitted nothing into the current top-k
      // (TopKTracker stability) end the expansion once at least one
      // result is held.
      if (ranked) {
        stall = tracker.note_from(out.top_k, round_before) ? 0 : stall + 1;
        if (stall >= kRankedStallRounds && !out.top_k.empty()) break;
      }
    }
    out.timing->clock_s += 2.0 * static_cast<double>(rounds) * mean;
  }

  void finish(const Query& query, SearchOutcome& out) const override {
    if (out.timing.has_value()) {
      out.timing->clock_s += out.fault.recovery_wait_ms / 1000.0;
    }
    SearchEngine::finish(query, out);
  }

 private:
  const AdaptiveOverlayNetwork* net_;
  /// Registry cold-start path: the engine owns the network it built.
  std::unique_ptr<AdaptiveOverlayNetwork> owned_;
  TimingParams timing_;
};

}  // namespace

std::unique_ptr<SearchEngine> make_adaptive_engine(
    const AdaptiveOverlayNetwork& net, const TimingParams& timing) {
  return std::make_unique<AdaptiveSearchEngine>(net, timing);
}

namespace detail {

std::unique_ptr<SearchEngine> make_adaptive_engine(const EngineWorld& world) {
  if (world.adaptive != nullptr) {
    return std::make_unique<AdaptiveSearchEngine>(*world.adaptive,
                                                  world.timing);
  }
  // Cold start from graph + store alone: no queries observed yet, so the
  // query-centric ranking degenerates to content frequency until the
  // bench (or serving loop) observes traffic and refreshes.
  if (world.graph == nullptr || world.store == nullptr) return nullptr;
  auto owned = std::make_unique<AdaptiveOverlayNetwork>(
      *world.graph, *world.store, world.adaptive_params, world.forwards);
  const AdaptiveOverlayNetwork& net = *owned;
  return std::make_unique<AdaptiveSearchEngine>(net, world.timing,
                                                std::move(owned));
}

}  // namespace detail

}  // namespace qcp2p::sim
