#include "src/sim/pastry.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

PastryDht::PastryDht(std::size_t num_nodes, std::uint64_t seed,
                     std::uint32_t b, std::size_t leaf)
    : b_(b), rows_(b == 0 ? 0 : 64 / b), leaf_half_(leaf) {
  if (num_nodes == 0) throw std::invalid_argument("PastryDht: no nodes");
  if (b == 0 || b > 32 || 64 % b != 0) {
    throw std::invalid_argument("PastryDht: b must divide 64");
  }
  node_ids_.resize(num_nodes);
  ring_.reserve(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    node_ids_[v] = util::mix64(seed ^ (0x9A57ULL + v));
    ring_.emplace_back(node_ids_[v], v);
  }
  std::sort(ring_.begin(), ring_.end());
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    if (ring_[i].first == ring_[i - 1].first) {
      throw std::runtime_error("PastryDht: id collision (change seed)");
    }
  }
  ring_pos_.resize(num_nodes);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ring_pos_[ring_[i].second] = i;
  }
}

std::uint32_t PastryDht::digit(std::uint64_t id, std::uint32_t row) const noexcept {
  const std::uint32_t shift = 64 - (row + 1) * b_;
  return static_cast<std::uint32_t>((id >> shift) & ((1ULL << b_) - 1));
}

std::uint32_t PastryDht::shared_prefix(std::uint64_t a,
                                       std::uint64_t bb) const noexcept {
  std::uint32_t row = 0;
  while (row < rows_ && digit(a, row) == digit(bb, row)) ++row;
  return row;
}

std::uint64_t PastryDht::ring_distance(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t d = a - b;
  const std::uint64_t e = b - a;
  return std::min(d, e);
}

NodeId PastryDht::closest_of(std::uint64_t key) const {
  // Numerically closest on the circular id space: check the neighbors of
  // the insertion point.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const auto& entry, std::uint64_t k) { return entry.first < k; });
  const std::size_t hi = static_cast<std::size_t>(it - ring_.begin()) % ring_.size();
  const std::size_t lo = (hi + ring_.size() - 1) % ring_.size();
  return ring_distance(ring_[lo].first, key) <= ring_distance(ring_[hi].first, key)
             ? ring_[lo].second
             : ring_[hi].second;
}

bool PastryDht::in_leaf_range(NodeId node, std::uint64_t key) const {
  const std::size_t n = ring_.size();
  const std::size_t half = std::min(leaf_half_, (n - 1) / 2);
  if (half == 0) return false;
  const std::size_t pos = ring_pos_[node];
  const std::uint64_t left = ring_[(pos + n - half) % n].first;
  const std::uint64_t right = ring_[(pos + half) % n].first;
  // key in [left, right] on the circle.
  if (left <= right) return key >= left && key <= right;
  return key >= left || key <= right;
}

PastryDht::LookupResult PastryDht::lookup(std::uint64_t key, NodeId from) const {
  if (from >= node_ids_.size()) throw std::out_of_range("PastryDht::lookup");
  LookupResult result;
  const NodeId destination = closest_of(key);
  NodeId cur = from;
  const std::size_t n = ring_.size();

  for (std::size_t guard = 0; guard <= n; ++guard) {
    if (cur == destination) {
      result.node = cur;
      return result;
    }
    // Rule 1: key within the leaf set -> deliver directly to the
    // numerically closest node (one hop).
    if (in_leaf_range(cur, key)) {
      ++result.hops;
      result.node = destination;
      return result;
    }
    // Rule 2: prefix routing — forward to the routing-table entry for
    // the key's next digit, i.e. SOME fixed node sharing one more digit
    // with the key. The first node of the key's depth-(l+1) bucket plays
    // the role of the table entry (a materialized table would hold an
    // arbitrary bucket member; the hop count is identical).
    const std::uint32_t l = shared_prefix(node_ids_[cur], key);
    NodeId next = kNone;
    if (l < rows_) {
      const std::uint32_t span_shift = 64 - (l + 1) * b_;
      const std::uint64_t range_begin = (key >> span_shift) << span_shift;
      const auto lo_it = std::lower_bound(
          ring_.begin(), ring_.end(), range_begin,
          [](const auto& e, std::uint64_t k) { return e.first < k; });
      if (lo_it != ring_.end() &&
          (lo_it->first >> span_shift) == (key >> span_shift)) {
        next = lo_it->second;
      }
    }
    if (next == kNone || next == cur) {
      // Rule 3 (rare): no node is digit-closer. In Pastry the current
      // node falls back to its leaf set / neighborhood for a node
      // numerically closer to the key; with |L| = 16 that reaches the
      // destination's vicinity in one forward, so charge one hop to the
      // destination.
      next = destination;
    }
    cur = next;
    ++result.hops;
  }
  throw std::runtime_error("PastryDht::lookup failed to converge");
}

}  // namespace qcp2p::sim
