// Adaptive query-centric engine — the system the paper argues FOR,
// closed into the unified engine layer (ROADMAP: "Close the paper's
// loop").
//
// Each peer maintains a core::DynamicSynopsis under
// SynopsisPolicy::kQueryCentric: a budgeted, incrementally-maintained
// advertisement of the peer's terms ranked by *observed query
// popularity* from a shared core::TermPopularityTracker. As popularity
// drifts (or a flash crowd erupts), refresh_synopses() re-ranks every
// peer's term budget and re-advertises only the peers whose wire bits
// actually changed — the adaptation traffic the benches charge against
// search savings.
//
// Routing is QRP-style but network-wide instead of last-hop-only: a node
// forwards a query to neighbors whose synopses maybe_contains_all() the
// query (up to match_fanout per hop, randomized for load spreading),
// falling back to a small blind fanout when no synopsis matches so rare
// queries stay alive. The engine plugs into the standard contract —
// kEngineRegistry row "adaptive", with_faults() composition, estimated
// TimingRecord — so every sweep and the conformance matrix run it
// unchanged.
//
// Mutability split: AdaptiveOverlayNetwork owns the adaptation state and
// is mutated only BETWEEN measurement sweeps (observe_query / refresh_
// synopses are not thread-safe); the SearchEngine facade reads it
// const, so one engine is shared read-only across TrialRunner workers
// and every sweep stays byte-identical for any --threads value.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/dynamic_synopsis.hpp"
#include "src/core/synopsis.hpp"
#include "src/core/term_tracker.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/network.hpp"
#include "src/sim/timing.hpp"

namespace qcp2p::sim {

struct AdaptiveParams {
  /// Per-peer advertisement budget and wire format.
  core::SynopsisParams synopsis{};
  /// Tracker decay windows (slow/fast EWMA half-lives, burst detector).
  core::TrackerParams tracker{};
  /// Max synopsis-matching neighbors a node forwards to per hop.
  std::size_t match_fanout = 4;
  /// Blind neighbors tried when no synopsis on the hop matches.
  std::size_t fallback_fanout = 1;
};

/// The live adaptation state: per-peer dynamic synopses plus the query
/// stream tracker feeding their term ranking. Searches read it const
/// through the engine facade; observe/refresh mutate it between sweeps.
class AdaptiveOverlayNetwork {
 public:
  /// Builds every peer's synopsis cold (no observed queries yet: the
  /// query-centric ranking degenerates to content frequency). `graph`,
  /// `store`, and the optional `forwards` relay mask (two-tier worlds:
  /// leaves never relay) are borrowed and must outlive the network.
  AdaptiveOverlayNetwork(const overlay::Graph& graph, const PeerStore& store,
                         const AdaptiveParams& params = {},
                         const std::vector<bool>* forwards = nullptr);

  /// Feeds one observed query into the popularity tracker (advances the
  /// decay clock by one query).
  void observe_query(std::span<const TermId> terms);

  /// Re-ranks every peer's term budget against the tracker's current
  /// scores and re-advertises the peers whose wire bits changed.
  /// Returns the number of peers that re-advertised this epoch.
  std::size_t refresh_synopses();

  [[nodiscard]] const overlay::Graph& graph() const noexcept {
    return *graph_;
  }
  [[nodiscard]] const PeerStore& store() const noexcept { return *store_; }
  [[nodiscard]] const AdaptiveParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const std::vector<bool>* forwards() const noexcept {
    return forwards_;
  }
  [[nodiscard]] const core::TermPopularityTracker& tracker() const noexcept {
    return tracker_;
  }
  [[nodiscard]] const core::DynamicSynopsis& synopsis(NodeId peer) const {
    return synopses_.at(peer);
  }

  /// True when `peer`'s advertised synopsis may match every query term —
  /// the per-neighbor routing predicate.
  [[nodiscard]] bool may_route(NodeId peer,
                               std::span<const TermId> query) const noexcept {
    return synopses_[peer].maybe_contains_all(query);
  }

  // --- adaptation cost accounting ---------------------------------------
  /// Total per-peer re-advertisements (initial build included).
  [[nodiscard]] std::uint64_t readvertisements() const noexcept {
    return readvertisements_;
  }
  /// Advertisement bytes pushed to neighbors (bloom_bits/8 per push, one
  /// push per neighbor of each re-advertising peer).
  [[nodiscard]] std::uint64_t advertisement_bytes() const noexcept {
    return advertisement_bytes_;
  }

 private:
  const overlay::Graph* graph_;
  const PeerStore* store_;
  AdaptiveParams params_;
  const std::vector<bool>* forwards_;
  core::TermPopularityTracker tracker_;
  std::vector<core::DynamicSynopsis> synopses_;
  std::uint64_t readvertisements_ = 0;
  std::uint64_t advertisement_bytes_ = 0;
};

/// Engine facade over a caller-owned network (the adaptive benches own
/// the network so they can observe/refresh between sweeps). The network
/// must outlive the engine and must not be mutated during a sweep.
[[nodiscard]] std::unique_ptr<SearchEngine> make_adaptive_engine(
    const AdaptiveOverlayNetwork& net, const TimingParams& timing = {});

}  // namespace qcp2p::sim
