// DES-backed registry engines: the descriptor-level Gnutella path and a
// message-timed Chord lookup, folded into the unified SearchEngine
// contract. Where the round-based engines ESTIMATE latency (hops x mean
// link latency), these run the discrete-event kernel and report exact
// per-link times — the two ends of the accuracy/cost spectrum sharing
// one TimingModel, one Query, one SearchOutcome.
//
// Lives in qcp2p_sim (not qcp2p_gnutella) because the registry factory
// table is closed here; qcp2p_sim <-> qcp2p_gnutella is a declared
// static-library cycle.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/des/simulator.hpp"
#include "src/gnutella/network.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/engine_registry.hpp"

namespace qcp2p::sim {
namespace {

/// Descriptor-level flood: per worker, a GnutellaNetwork over the
/// world's graph (store nullable: locate workloads match holders per
/// query). Every attempt rewinds the network and replays the query
/// through the DES kernel, so outcomes are a pure function of
/// (world, query, faults) — deterministic under TrialRunner sharding.
///
/// Semantics beyond the round-based flood engine: reverse-path
/// QUERY_HIT delivery (a hit must also survive the trip home), exact
/// first-hit latency, and loss/jitter applied per transmission on the
/// wire rather than per logical edge visit.
class FloodDesEngine final : public SearchEngine {
 public:
  FloodDesEngine(const Graph& graph, const PeerStore* store,
                 const TimingParams& timing) noexcept
      : graph_(&graph), store_(store), timing_(timing) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flood-des";
  }
  [[nodiscard]] bool can_locate() const noexcept override { return true; }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (graph_->num_nodes() == 0) return false;
    if (!query.is_locate() && store_ == nullptr) return false;
    // An offline source issues nothing (and is not probed locally).
    return query.online == nullptr || (*query.online)[query.source];
  }

  void begin(const Query& query, EngineContext& ctx,
             SearchOutcome& out) const override {
    out.timing.emplace();
    out.timing->exact = true;
    if (query.is_locate()) {
      // A node already holding the object needs no search at all.
      if (std::binary_search(query.holders.begin(), query.holders.end(),
                             query.source)) {
        out.success = true;
        out.timing->first_hit_s = 0.0;
      }
      return;
    }
    // Real servents check local content before flooding; that probe is
    // fault-free and attempt-independent.
    const NodeId self[1] = {query.source};
    if (query.ranked()) {
      if (probe_peers_ranked(*store_, query.terms, self, query.min_score,
                             ctx.scratch, out.top_k, out.peers_probed) != 0) {
        out.timing->first_hit_s = 0.0;
      }
      return;
    }
    probe_peers(*store_, query.terms, self, ctx.scratch, out.hits,
                out.peers_probed);
    if (!out.hits.empty()) out.timing->first_hit_s = 0.0;
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy*, SearchOutcome& out) const override {
    if (out.success) return;  // locate satisfied by the source's own copy
    auto& net = worker_state<gnutella::GnutellaNetwork>(this, ctx, [&] {
      return std::make_shared<gnutella::GnutellaNetwork>(*graph_, store_,
                                                         timing_);
    });
    // This attempt starts after all prior attempts' simulated time plus
    // every recovery wait charged so far.
    const double base =
        out.timing->clock_s + out.fault.recovery_wait_ms / 1000.0;
    const std::uint64_t dropped_before =
        faults != nullptr ? faults->dropped() : 0;

    gnutella::GnutellaNetwork::QueryOptions opts;
    opts.faults = faults;
    opts.online = query.online;
    opts.holders = query.holders;
    opts.rng = ctx.rng;
    const auto qo = net.query(
        query.source, std::vector<TermId>(query.terms.begin(),
                                          query.terms.end()),
        static_cast<std::uint8_t>(std::min<std::uint32_t>(query.ttl, 255u)),
        opts);

    out.messages += qo.messages;
    out.peers_probed += qo.peers_evaluated;
    if (faults != nullptr) {
      out.fault.dropped += faults->dropped() - dropped_before;
    }
    if (query.is_locate()) {
      if (!qo.hits.empty()) out.success = true;
    } else if (query.ranked()) {
      // Each QUERY_HIT names its responder, which holds the objects it
      // reports — exactly what object_score_at needs to price them.
      for (const auto& hit : qo.hits) {
        for (std::uint64_t id : hit.object_ids) {
          admit_ranked({id, store_->object_score_at(hit.responder, id)},
                       query.min_score, ctx.scratch, out.top_k);
        }
      }
    } else {
      for (const auto& hit : qo.hits) {
        out.hits.insert(out.hits.end(), hit.object_ids.begin(),
                        hit.object_ids.end());
      }
    }
    if (!out.timing->has_first_hit() && qo.first_hit().has_value()) {
      out.timing->first_hit_s = base + *qo.first_hit();
    }
    out.timing->clock_s += net.now();  // rewound per query: now() = elapsed
    out.timing->events += qo.events;
  }

  void finish(const Query& query, SearchOutcome& out) const override {
    // Recovery waits are simulated time the querier sat through.
    out.timing->clock_s += out.fault.recovery_wait_ms / 1000.0;
    SearchEngine::finish(query, out);
  }

 private:
  const Graph* graph_;
  const PeerStore* store_;
  TimingParams timing_;
};

/// Message-timed Chord keyword search: same lookups and hop charges as
/// dht-only, but every transmission the router charges is replayed as a
/// DES event at its link's latency, per-term lookups running in
/// parallel from t=0 (they are independent). A routed term costs one
/// additional (droppable) response transmission back to the querier.
/// The conjunctive result exists only once every term's response is in,
/// so first-hit equals total clock. Jitter and in-lookup recovery waits
/// accrue serially to the querier's clock.
class DhtDesEngine final : public SearchEngine {
 public:
  /// `store` is optional and only read in ranked mode (scores by
  /// holder); bare DHT worlds pass nullptr and rank at score 0.
  DhtDesEngine(const ChordDht& dht, const PeerStore* store,
               const TimingParams& timing) noexcept
      : dht_(&dht), store_(store), timing_(timing) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "dht-des";
  }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (query.terms.empty()) return false;
    return query.online == nullptr || (*query.online)[query.source];
  }

  bool retryable() const noexcept override { return false; }

  void begin(const Query&, EngineContext&, SearchOutcome& out) const override {
    out.timing.emplace();
    out.timing->exact = true;
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy* policy,
               SearchOutcome& out) const override {
    auto& sim = worker_state<des::Simulator>(
        this, ctx, [] { return std::make_shared<des::Simulator>(); });
    sim.reset();
    const TimingModel timing(timing_);

    double extra_s = 0.0;  // serial jitter + in-lookup recovery waits
    std::unordered_map<std::uint64_t, std::size_t> object_term_hits;
    // Ranked mode: one live holder per object (smallest for
    // determinism) so the conjunctive results can be scored below.
    std::unordered_map<std::uint64_t, NodeId> holder_of;
    ChordDht::SendLog sends;
    for (TermId t : query.terms) {
      sends.clear();
      const std::uint64_t key = dht_->term_key(t);
      NodeId index_node = 0;
      bool routed = false;
      if (faults != nullptr && policy != nullptr) {
        const double lat_before = faults->latency_ms();
        const ChordDht::FaultyLookup fl =
            dht_->lookup(key, query.source, *faults, *policy, &sends);
        out.messages += fl.hops;
        out.fault.merge(fl.fault);
        extra_s += (faults->latency_ms() - lat_before) / 1000.0;
        index_node = fl.node;
        routed = fl.success;
      } else {
        const ChordDht::LookupResult lr =
            dht_->lookup(key, query.source, &sends);
        out.messages += lr.hops;
        index_node = lr.node;
        routed = true;
      }
      // Replay the charged transmissions as events on this term's chain.
      // Straggler receivers slow their incoming wire, exactly as in the
      // descriptor-level network.
      double at = 0.0;
      for (const auto& [u, v] : sends) {
        at += timing.link_latency(
            u, v, faults != nullptr ? faults->straggler_scale(v) : 1.0);
        sim.schedule(at, [] {});
      }
      if (!routed) continue;

      // One response transmission straight back to the querier (DHT
      // responses ride the IP shortcut, not the reverse overlay path).
      ++out.messages;
      bool delivered = true;
      if (faults != nullptr) {
        const double lat_before = faults->latency_ms();
        if (!faults->deliver_timed(index_node, query.source)) {
          ++out.fault.dropped;
          delivered = false;
        }
        extra_s += (faults->latency_ms() - lat_before) / 1000.0;
      }
      if (!delivered) continue;
      sim.schedule(
          at + timing.link_latency(
                   index_node, query.source,
                   faults != nullptr ? faults->straggler_scale(query.source)
                                     : 1.0),
          [] {});

      // Postings from the term's index, mirroring search_term: a dead
      // plain-path index node withholds everything; offline holders'
      // copies cannot be fetched either way.
      if (faults == nullptr && query.online != nullptr &&
          !(*query.online)[index_node]) {
        continue;
      }
      std::vector<std::uint64_t> ids;
      for (const ChordDht::Posting& p : dht_->term_postings(t)) {
        if (faults != nullptr ? !faults->online_peek(p.holder)
                              : (query.online != nullptr &&
                                 !(*query.online)[p.holder])) {
          continue;
        }
        ids.push_back(p.object_id);
        if (query.ranked()) {
          const auto [it, inserted] =
              holder_of.try_emplace(p.object_id, p.holder);
          if (!inserted && p.holder < it->second) it->second = p.holder;
        }
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      for (std::uint64_t id : ids) ++object_term_hits[id];
    }
    for (const auto& [id, hits] : object_term_hits) {
      if (hits != query.terms.size()) continue;
      if (query.ranked()) {
        const auto it = holder_of.find(id);
        const float score = (store_ != nullptr && it != holder_of.end())
                                ? store_->object_score_at(it->second, id)
                                : 0.0f;
        admit_ranked({id, score}, query.min_score, ctx.scratch, out.top_k);
      } else {
        out.hits.push_back(id);
      }
    }
    sim.run();
    out.timing->events += sim.executed();
    out.timing->clock_s += sim.now() + extra_s;
    if ((!out.hits.empty() || !out.top_k.empty()) &&
        !out.timing->has_first_hit()) {
      out.timing->first_hit_s = out.timing->clock_s;
    }
    out.extras = HybridExtras{0, out.messages, true};
  }

 private:
  const ChordDht* dht_;
  const PeerStore* store_;
  TimingParams timing_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchEngine> make_flood_des_engine(const EngineWorld& world) {
  if (world.graph == nullptr) return nullptr;
  return std::make_unique<FloodDesEngine>(*world.graph, world.store,
                                          world.timing);
}

std::unique_ptr<SearchEngine> make_dht_des_engine(const EngineWorld& world) {
  if (world.dht == nullptr) return nullptr;
  return std::make_unique<DhtDesEngine>(*world.dht, world.store,
                                        world.timing);
}

}  // namespace detail

}  // namespace qcp2p::sim
