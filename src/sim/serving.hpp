// Overlay-as-a-service: ONE live world absorbing a continuous
// timestamped event stream instead of the rewind-per-trial harness the
// figure benches use.
//
// A ServingWorld owns a frozen overlay::Graph, a finalized PeerStore
// (de-finalize policy kForbid: the flat layout is never silently
// dropped), a ChordDht, an optional result cache, and one registry
// engine. It consumes two merged timestamped streams on the DES clock —
// trace::QueryTrace queries (flash crowds included) and
// overlay::ChurnProcess membership events — and maintains the world
// incrementally:
//   * membership flips are O(1) PeerStore tombstones plus a liveness
//     mask the engines already honor (Query::online) — the "edge-delta
//     overlay" covering the gap until the next re-freeze;
//   * after refreeze_batch flips, the topology is repaired in ONE
//     Graph::apply_delta CSR merge (departed nodes detached, returned
//     nodes re-attached to random live peers) — never a full thaw;
//   * rejoining peers may bring new content through add_object_delta;
//     once the delta debt passes compact_max_delta the store folds it in
//     with compact() — byte-identical to finalize()-from-scratch — and
//     the DHT republishes. finalize() itself never runs again.
//
// Determinism contract (same as TrialRunner): the serving timeline is a
// sequence of maintenance windows. All mutation — membership, graph
// repair, compaction, cache insert/LRU, adaptive observe/refresh — runs
// sequentially at window boundaries in global event order; the window's
// queries execute in parallel shards against the then-immutable world,
// each with its own rng stream keyed by global query index. Every
// aggregate is an integer (or a merge of integer histograms), so the
// report is byte-identical for any `threads` value.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/overlay/churn.hpp"
#include "src/overlay/graph.hpp"
#include "src/sim/adaptive.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/engine_registry.hpp"
#include "src/sim/network.hpp"
#include "src/sim/result_cache.hpp"
#include "src/sim/serving_stats.hpp"
#include "src/trace/query_trace.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::sim {

struct ServingConfig {
  /// Registry engine name. Engines whose world pieces the serving
  /// harness builds (graph, store, DHT, adaptive network) all work:
  /// flood, random-walk, hybrid, dht-only, flood-des, dht-des, adaptive.
  std::string engine = "flood";
  /// Query shards per window (0 = hardware concurrency). Never changes
  /// the report.
  std::size_t threads = 1;
  /// Maintenance-window length (DES seconds): membership/graph/cache
  /// mutation granularity, and the stats-window width.
  double window_s = 60.0;
  std::uint32_t flood_ttl = 3;
  /// Walk-family step budget (0 = engine default).
  std::uint32_t walk_budget = 0;
  /// Ranked serving: 0 keeps exact set semantics; k > 0 asks every
  /// engine query for its top-k scored results (DESIGN.md §11) and
  /// switches the cache to ranked entries.
  std::uint32_t top_k = 0;
  /// Score floor for ranked serving (ignored when top_k == 0).
  float min_score = 0.0f;
  /// Rescales the trace's arrival timeline to a sustained query rate
  /// (queries/s), preserving its shape (diurnal cycle, flash crowds).
  /// 0 keeps the trace's own timestamps.
  double qps = 0.0;

  bool churn_enabled = true;
  overlay::ChurnParams churn{};
  /// Membership flips accumulated before the topology is repaired with
  /// one Graph::apply_delta batch.
  std::size_t refreeze_batch = 512;
  /// Re-attachment degree for peers that rejoined since the last
  /// re-freeze.
  std::size_t attach_degree = 4;
  /// Probability a rejoining peer brings one new object (content churn
  /// through the PeerStore delta layer).
  double content_add_prob = 0.25;
  /// Delta postings tolerated before compact() folds the layer in and
  /// the DHT republishes.
  std::uint64_t compact_max_delta = 20'000;

  bool cache_enabled = true;
  ResultCacheParams cache = [] {
    ResultCacheParams p;
    p.max_age_s = 300.0;  // serving default: entries expire on DES time
    return p;
  }();

  AdaptiveParams adaptive{};
  TimingParams timing{};
  std::uint64_t seed = 42;
};

struct ServingReport {
  ServingStats stats;
  std::uint64_t refreezes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t edges_added = 0;
  std::uint64_t content_adds = 0;
  /// Leave events that triggered cache holder invalidation.
  std::uint64_t cache_invalidations = 0;
  std::uint64_t adaptive_readvertisements = 0;
  std::uint64_t dht_publish_messages = 0;
  double final_online_fraction = 1.0;
};

/// One live world serving a timestamped query stream under churn. The
/// graph/store are taken by value (the serving world owns and mutates
/// them); `queries` must be sorted by time_s (QueryTrace order).
class ServingWorld {
 public:
  ServingWorld(overlay::Graph graph, PeerStore store,
               std::vector<trace::Query> queries, double duration_s,
               ServingConfig config);

  /// Consumes the whole stream; callable once.
  [[nodiscard]] ServingReport run();

  [[nodiscard]] const overlay::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const PeerStore& store() const noexcept { return store_; }
  [[nodiscard]] const ServingConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Per-query measurement produced in the parallel phase, folded into
  /// window stats (and replayed into the cache/adaptive state) in global
  /// query order afterwards.
  struct QueryRecord {
    enum class Kind : std::uint8_t { kFail, kSuccess, kCacheHit };
    Kind kind = Kind::kFail;
    bool timed = false;
    double first_hit_s = 0.0;
    std::uint64_t messages = 0;
    NodeId source = 0;
    /// Whose cache answered a kCacheHit (== source for a local hit;
    /// a neighbor for a routed probe hit).
    NodeId cache_peer = 0;
    std::vector<std::uint64_t> hits;
    /// Ranked payload (top_k != 0): canonical finish_ranked order.
    /// `hits` mirrors its ids ascending so holder lookup and cache
    /// invalidation reuse the set-mode machinery unchanged.
    std::vector<ScoredMatch> ranked;
  };

  void apply_event(const overlay::MembershipEvent& event, WindowStats& window,
                   ServingReport& report);
  void maybe_refreeze(ServingReport& report);
  void maybe_compact(ServingReport& report);
  void rebuild_engine();
  void rebuild_holder_index();
  /// Up to `cap` distinct peers holding the leading hit objects.
  [[nodiscard]] std::vector<NodeId> holders_of(
      std::span<const std::uint64_t> hits, std::size_t cap) const;

  ServingConfig config_;
  std::size_t n_threads_ = 1;
  overlay::Graph graph_;
  PeerStore store_;
  std::vector<trace::Query> queries_;
  double duration_s_ = 0.0;

  std::unique_ptr<ChordDht> dht_;
  std::unique_ptr<AdaptiveOverlayNetwork> adaptive_;
  std::unique_ptr<SearchEngine> engine_;
  std::unique_ptr<CachingSearchNetwork> cache_;
  std::unique_ptr<overlay::ChurnProcess> churn_;

  std::vector<bool> online_;
  std::vector<bool> mask_at_refreeze_;
  std::size_t flips_since_refreeze_ = 0;
  /// Sequential maintenance stream (graph repair targets, content
  /// churn); never touched by the parallel query phase.
  util::Rng maintenance_rng_;
  std::uint64_t next_object_id_ = 0;

  /// (object id, holder) over the compacted base layer, sorted by id;
  /// delta objects live in delta_holders_ until the next compaction.
  std::vector<std::pair<std::uint64_t, NodeId>> holder_index_;
  std::unordered_map<std::uint64_t, NodeId> delta_holders_;

  std::vector<EngineContext> contexts_;
  bool ran_ = false;
};

}  // namespace qcp2p::sim
