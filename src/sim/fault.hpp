// Deterministic fault injection for the search engines (flood, random
// walk, Gia, hybrid, Chord, DES): structured failure scenarios — i.i.d.
// per-message loss, correlated/bursty loss (a two-state Gilbert–Elliott
// channel per edge), network partitions with a heal schedule, heavy-
// tailed per-peer stragglers, static crash snapshots AND mid-query
// crashes — plus the recovery policy (fixed or adaptive timeouts,
// bounded retries, hedged re-issue, exponential escalation/backoff, a
// per-neighbor circuit breaker) the engines use to route around them.
//
// Determinism contract: every per-message decision (drop, jitter, burst
// transition, crash time, straggler draw) is a stateless hash of
// (plan seed, trial index, message/edge index) — never of wall clock,
// thread id, or shared mutable state — so a fault-injected run under
// sim::TrialRunner is byte-identical for any --threads value. The only
// stateful piece, the per-edge Gilbert–Elliott chain, lives in the
// per-trial FaultSession and advances in the trial's deterministic send
// order, so it preserves the same guarantee. With every scenario
// parameter null a FaultSession is inert: engines take exactly the code
// path (and draw exactly the rng stream) they take without fault
// injection, reproducing fault-free results bit-for-bit.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::overlay {
class ChurnProcess;
}

namespace qcp2p::sim {

using overlay::NodeId;

struct FaultParams {
  /// Probability that any single message transmission is lost.
  double loss_rate = 0.0;
  /// Max extra link latency per delivered message (uniform in [0, max)),
  /// accumulated into FaultSession::latency_ms by the serial engines.
  double jitter_max_ms = 0.0;
  /// Keys the per-message drop/jitter hashes (independent of trial rng).
  std::uint64_t seed = 0xFA017ULL;

  /// Throws std::invalid_argument on NaN or out-of-range values
  /// (loss_rate outside [0, 1], negative jitter).
  void validate() const;
};

/// Correlated loss: a deterministic two-state Gilbert–Elliott channel
/// per (trial, undirected edge). Each transmission is dropped with the
/// current state's loss probability, then the chain transitions. Inert
/// when p_good_to_bad or loss_bad is 0.
struct BurstLossParams {
  /// Drop probability while the edge is in the Good state.
  double loss_good = 0.0;
  /// Drop probability while the edge is in the Bad (burst) state.
  double loss_bad = 0.0;
  /// Per-transmission transition probabilities.
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.25;

  [[nodiscard]] bool active() const noexcept {
    return p_good_to_bad > 0.0 && loss_bad > 0.0;
  }
  /// Stationary probability of the Bad state (initial state draw).
  [[nodiscard]] double stationary_bad() const noexcept {
    const double denom = p_good_to_bad + p_bad_to_good;
    return denom > 0.0 ? p_good_to_bad / denom : 0.0;
  }
  void validate() const;
};

/// Sentinel: the partition never heals.
inline constexpr std::uint64_t kNeverHeals =
    std::numeric_limits<std::uint64_t>::max();

/// Network partition: a BFS-grown minority component is cut off from
/// the rest of the graph. Messages crossing the cut are lost while the
/// session's message index is below heal_after_index (kNeverHeals = a
/// permanent split). Inert when minority_fraction is 0.
struct PartitionParams {
  /// Fraction of nodes on the minority side of the cut.
  double minority_fraction = 0.0;
  /// Message index (per session) at which the cut heals.
  std::uint64_t heal_after_index = kNeverHeals;

  [[nodiscard]] bool active() const noexcept {
    return minority_fraction > 0.0;
  }
  void validate() const;
};

/// Heavy-tailed per-peer responsiveness: a `fraction` of peers are
/// stragglers whose incoming-link latency (jitter and, in the DES
/// engines, the wire itself) is scaled by a Pareto(tail_alpha) draw
/// capped at max_multiplier. Inert when fraction is 0.
struct StragglerParams {
  double fraction = 0.0;
  /// Pareto shape: smaller = heavier tail (1.1 is very heavy).
  double tail_alpha = 1.5;
  /// Cap on the latency multiplier (keeps waits finite).
  double max_multiplier = 50.0;

  [[nodiscard]] bool active() const noexcept {
    return fraction > 0.0 && max_multiplier > 1.0;
  }
  void validate() const;
};

/// Mid-query churn: a `crash_fraction` of peers crash DURING the query,
/// at a hashed message index in [1, horizon_index]. Replaces the static
/// snapshot's "dead before the query starts" with "dies between
/// sweeps": a peer can relay the first attempt and be gone for the
/// retry. Inert when crash_fraction or horizon_index is 0.
struct MidQueryChurnParams {
  double crash_fraction = 0.0;
  /// Crash times are uniform over (0, horizon_index]; sessions past the
  /// horizon see every victim down.
  std::uint64_t horizon_index = 0;

  [[nodiscard]] bool active() const noexcept {
    return crash_fraction > 0.0 && horizon_index > 0;
  }
  void validate() const;
};

/// A named failure scenario: base i.i.d. knobs plus the structured
/// failure shapes. FaultPlan::from_scenario() compiles one against a
/// concrete graph.
struct ScenarioSpec {
  FaultParams base{};
  BurstLossParams burst{};
  PartitionParams partition{};
  StragglerParams straggler{};
  MidQueryChurnParams mid_churn{};
  /// Fraction of peers crashed before the query starts (static mask,
  /// sampled per plan).
  double offline_fraction = 0.0;

  void validate() const;
};

struct Scenario {
  std::string_view name;
  std::string_view summary;
  ScenarioSpec spec;
};

/// Named-scenario registry: `--scenario=<name>` in bench_common resolves
/// here, exp_chaos sweeps every row, and the conformance suite asserts
/// each entry with nulled parameters is bit-for-bit transparent.
inline constexpr Scenario kScenarioRegistry[] = {
    {"bursty-loss",
     "correlated link loss: Gilbert-Elliott bursts on every edge",
     {.base = {.loss_rate = 0.02, .jitter_max_ms = 30.0},
      .burst = {.loss_bad = 0.90, .p_good_to_bad = 0.08, .p_bad_to_good = 0.30}}},
    {"flash-partition",
     "a quarter of the overlay splits off, heals mid-query",
     {.base = {.jitter_max_ms = 30.0},
      .partition = {.minority_fraction = 0.25, .heal_after_index = 500}}},
    {"straggler-tail",
     "heavy-tailed peer responsiveness: Pareto latency multipliers",
     {.base = {.loss_rate = 0.05, .jitter_max_ms = 30.0},
      .straggler = {.fraction = 0.20, .tail_alpha = 1.1,
                    .max_multiplier = 40.0}}},
    {"mass-churn",
     "10% down at launch, another 25% crash mid-query",
     {.base = {.loss_rate = 0.02, .jitter_max_ms = 30.0},
      .mid_churn = {.crash_fraction = 0.25, .horizon_index = 300},
      .offline_fraction = 0.10}},
    {"perfect-storm",
     "bursts + a healing partition + stragglers + mid-query crashes",
     {.base = {.loss_rate = 0.02, .jitter_max_ms = 30.0},
      .burst = {.loss_bad = 0.85, .p_good_to_bad = 0.05, .p_bad_to_good = 0.30},
      .partition = {.minority_fraction = 0.15, .heal_after_index = 700},
      .straggler = {.fraction = 0.10, .tail_alpha = 1.3,
                    .max_multiplier = 25.0},
      .mid_churn = {.crash_fraction = 0.15, .horizon_index = 400},
      .offline_fraction = 0.05}},
};

[[nodiscard]] constexpr std::span<const Scenario> scenario_registry() {
  return kScenarioRegistry;
}

/// nullptr when no scenario is registered under `name`.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// "bursty-loss, flash-partition, ..." — for --scenario errors and docs.
[[nodiscard]] std::string scenario_names();

/// How an engine recovers from faults. Attempt-level fields (max_retries,
/// timeout_ms, backoff) apply to every engine; ttl_escalation is used by
/// the flood-based engines, budget_escalation by the walk-based ones, and
/// route_around_width by Chord's per-step dead-finger detours. The
/// adaptive block (adaptive_timeout, hedging, breaker) turns on the
/// drive() loop's online recovery — all three are inert at their
/// defaults and provably no-ops under an inert plan.
struct RecoveryPolicy {
  /// Re-issues allowed after a failed attempt (0 = single shot).
  std::uint32_t max_retries = 0;
  /// Flood/hybrid: TTL added per retry (expanding-ring escalation).
  std::uint32_t ttl_escalation = 1;
  /// Walk engines: step-budget multiplier per retry.
  double budget_escalation = 2.0;
  /// Wait charged when an attempt comes back empty (the querier cannot
  /// distinguish "no results" from "answers lost in flight").
  double timeout_ms = 400.0;
  /// Exponential inter-retry backoff: backoff_ms * backoff_factor^retry.
  double backoff_ms = 100.0;
  double backoff_factor = 2.0;
  /// Chord: max alternative next hops (lower fingers, then successor-list
  /// entries) tried per routing step before the attempt is declared dead.
  std::uint32_t route_around_width = 4;

  // --- Adaptive recovery (PR 7) ---
  /// Replace the fixed timeout_ms with an online estimate: the session's
  /// observed per-hop latency quantile x timeout_multiplier, clamped to
  /// [timeout_floor_ms, timeout_ceil_ms]. Falls back to timeout_ms until
  /// the session has latency observations (so it is inert-transparent).
  bool adaptive_timeout = false;
  double timeout_quantile = 0.9;
  double timeout_multiplier = 8.0;
  double timeout_floor_ms = 25.0;
  double timeout_ceil_ms = 2000.0;
  /// Hedged re-issue: when an attempt fails AND the session has seen
  /// faults (drops or dead peers — a failed attempt with neither is a
  /// true negative), re-issue up to max_hedges backups after only the
  /// estimated hedge_quantile latency deadline — no backoff, no
  /// escalation. Hedges spend before the retry schedule starts.
  std::uint32_t max_hedges = 0;
  double hedge_quantile = 0.95;
  /// Per-neighbor circuit breaker: after this many observed failures
  /// (drops on the edge to it, or finding it dead) a peer is skipped by
  /// the engines for the rest of the session. 0 = disabled.
  std::uint32_t breaker_failures = 0;

  [[nodiscard]] double backoff_after(std::uint32_t retry) const noexcept;

  /// Throws std::invalid_argument on non-finite or out-of-range fields
  /// (backoff_factor < 1, route_around_width == 0, negative times,
  /// quantiles outside (0, 1], timeout_multiplier < 1, floor > ceil).
  void validate() const;
};

/// Per-query fault accounting, embedded in every engine's result struct.
struct FaultStats {
  /// Attempts beyond the first (timed retries; hedges counted apart).
  std::uint32_t retries = 0;
  /// Hedged re-issues (backup attempts fired at the estimated quantile
  /// deadline instead of the full timeout).
  std::uint32_t hedges = 0;
  /// Messages lost to the loss process — i.i.d. drops, burst drops, and
  /// partition-cut crossings (dead-peer sends are charged as ordinary
  /// messages but are not "dropped": the bits left the sender).
  std::uint64_t dropped = 0;
  /// Chord: extra sends spent detouring around dead/lossy next hops.
  std::uint64_t route_around_hops = 0;
  /// Simulated waiting on recovery: per-attempt timeouts plus backoff.
  double recovery_wait_ms = 0.0;

  void merge(const FaultStats& other) noexcept {
    retries += other.retries;
    hedges += other.hedges;
    dropped += other.dropped;
    route_around_hops += other.route_around_hops;
    recovery_wait_ms += other.recovery_wait_ms;
  }
};

/// Graceful-degradation record: what a failed (or partial) search COULD
/// have found, estimated from the plan's liveness at launch. Splits
/// "failed" into "nothing was reachable" vs "gave up early".
struct DegradationRecord {
  /// Holders of the sought content known to the measurement harness
  /// (locate: the query's holder set; content: Query::audit_holders).
  std::uint64_t holders_known = 0;
  /// Holders estimated reachable at launch: online under the static
  /// mask and not on the far side of a permanent partition.
  std::uint64_t holders_reachable = 0;
  /// Hits the search actually returned.
  std::uint64_t results_found = 0;

  /// A failure with nothing reachable is graceful degradation, not an
  /// engine shortfall.
  [[nodiscard]] bool nothing_reachable() const noexcept {
    return holders_reachable == 0;
  }
  /// True when the search failed even though holders were reachable.
  [[nodiscard]] bool gave_up_early(bool success) const noexcept {
    return !success && holders_reachable > 0;
  }
};

/// Immutable description of the faults a whole experiment runs under:
/// loss/jitter parameters, structured scenario shapes, plus an optional
/// liveness snapshot. Shared read-only across worker threads.
class FaultPlan {
 public:
  /// The null plan: no loss, no jitter, everyone online.
  FaultPlan() = default;

  /// Validates params (throws std::invalid_argument on bad values).
  explicit FaultPlan(const FaultParams& params) : params_(params) {
    params_.validate();
  }

  /// Plan with a crash/offline snapshot: offline peers neither receive
  /// nor relay for the duration of the plan.
  FaultPlan(const FaultParams& params, std::vector<bool> online)
      : params_(params), online_(std::move(online)), has_mask_(true) {
    params_.validate();
  }

  /// Snapshot the current liveness of a session-churn process (advance
  /// the process between plans to model an evolving crash schedule).
  [[nodiscard]] static FaultPlan from_churn(const FaultParams& params,
                                            const overlay::ChurnProcess& churn);

  /// Compiles a named scenario against a concrete graph: samples the
  /// static offline mask, grows the partition's minority side by BFS,
  /// and re-keys the hash streams with `seed` so different runs of the
  /// same scenario draw independent fault patterns. Validates the spec.
  [[nodiscard]] static FaultPlan from_scenario(const ScenarioSpec& spec,
                                               const overlay::Graph& graph,
                                               std::uint64_t seed);

  [[nodiscard]] double loss_rate() const noexcept { return params_.loss_rate; }

  /// True when the plan can actually perturb a run.
  [[nodiscard]] bool active() const noexcept {
    return params_.loss_rate > 0.0 || params_.jitter_max_ms > 0.0 ||
           has_mask_ || burst_.active() || partition_active() ||
           straggler_.active() || mid_churn_.active();
  }

  /// Static liveness snapshot (the hop-0 truth engines index before any
  /// message flows). Mid-query crashes are on top of this — see the
  /// time-indexed overload.
  [[nodiscard]] bool online(NodeId v) const noexcept {
    return !has_mask_ || online_[v];
  }

  /// Time-indexed liveness: the static snapshot AND mid-query crashes
  /// that have already happened by message `index` of `trial`.
  [[nodiscard]] bool online(NodeId v, std::uint64_t trial,
                            std::uint64_t index) const noexcept {
    if (has_mask_ && !online_[v]) return false;
    if (!mid_churn_.active() || index == 0) return true;
    return index < crash_index(trial, v);
  }

  /// Message index at which `v` crashes in `trial` (kNeverHeals when it
  /// survives the whole horizon). Stateless hash of (seed, trial, v).
  [[nodiscard]] std::uint64_t crash_index(std::uint64_t trial,
                                          NodeId v) const noexcept {
    if (!mid_churn_.active()) return kNeverHeals;
    if (hash_unit(trial, v, 0xC4A54ULL) >= mid_churn_.crash_fraction) {
      return kNeverHeals;
    }
    const double u = hash_unit(trial, v, 0xC4A55ULL);
    return 1 + static_cast<std::uint64_t>(
                   u * static_cast<double>(mid_churn_.horizon_index - 1) + 0.5);
  }

  /// nullptr when the plan has no crash schedule (everyone online).
  [[nodiscard]] const std::vector<bool>* online_mask() const noexcept {
    return has_mask_ ? &online_ : nullptr;
  }

  /// Stateless: is message `index` of trial `trial` lost? (i.i.d. loss
  /// only — the burst channel and partition cut live in FaultSession's
  /// edge-aware delivery.)
  [[nodiscard]] bool drops(std::uint64_t trial,
                           std::uint64_t index) const noexcept {
    if (params_.loss_rate <= 0.0) return false;
    if (params_.loss_rate >= 1.0) return true;
    return hash_unit(trial, index, 0x10551ULL) < params_.loss_rate;
  }

  /// Stateless: link jitter of message `index` of trial `trial`, ms.
  [[nodiscard]] double jitter_ms(std::uint64_t trial,
                                 std::uint64_t index) const noexcept {
    if (params_.jitter_max_ms <= 0.0) return 0.0;
    return hash_unit(trial, index, 0x717E4ULL) * params_.jitter_max_ms;
  }

  // --- Structured scenario shapes ---

  [[nodiscard]] const BurstLossParams& burst() const noexcept {
    return burst_;
  }
  [[nodiscard]] bool burst_active() const noexcept { return burst_.active(); }

  [[nodiscard]] bool partition_active() const noexcept {
    return partition_.active() && !side_.empty();
  }
  /// True when the (u, v) link crosses a still-unhealed partition cut at
  /// message `index`.
  [[nodiscard]] bool cut(NodeId u, NodeId v,
                         std::uint64_t index) const noexcept {
    if (!partition_active()) return false;
    if (index >= partition_.heal_after_index) return false;
    return side_[u] != side_[v];
  }
  /// True when u and v can NEVER exchange messages under this plan
  /// (opposite sides of a permanent cut) — the degradation estimate.
  [[nodiscard]] bool severed(NodeId u, NodeId v) const noexcept {
    return partition_active() &&
           partition_.heal_after_index == kNeverHeals && side_[u] != side_[v];
  }
  /// 1 for minority-side nodes, 0 otherwise (empty when no partition).
  [[nodiscard]] const std::vector<std::uint8_t>& partition_side()
      const noexcept {
    return side_;
  }

  [[nodiscard]] bool straggler_active() const noexcept {
    return straggler_.active();
  }
  /// Per-peer latency multiplier (>= 1): Pareto(tail_alpha) capped at
  /// max_multiplier for stragglers, 1.0 for everyone else. Stateless
  /// hash of (seed, trial, v) — receiver-keyed, so every link INTO a
  /// straggler is slow.
  [[nodiscard]] double straggler_scale(std::uint64_t trial,
                                       NodeId v) const noexcept {
    if (!straggler_.active()) return 1.0;
    if (hash_unit(trial, v, 0x57A66ULL) >= straggler_.fraction) return 1.0;
    const double u = hash_unit(trial, v, 0x57A67ULL);
    const double scale = std::pow(1.0 - u, -1.0 / straggler_.tail_alpha);
    return std::min(scale, straggler_.max_multiplier);
  }

  [[nodiscard]] bool mid_churn_active() const noexcept {
    return mid_churn_.active();
  }
  /// True when the plan produces nonzero per-message latency — gates the
  /// session's latency observations (and thus adaptive timeouts).
  [[nodiscard]] bool has_latency_signal() const noexcept {
    return params_.jitter_max_ms > 0.0;
  }

  /// Degradation estimate: could `holder` answer a query from `source`
  /// at launch? Online under the static snapshot and not permanently
  /// severed from the source. (Mid-query crashes are deliberately NOT
  /// counted: the holder was reachable when the query launched.)
  [[nodiscard]] bool reachable_at_launch(NodeId source,
                                         NodeId holder) const noexcept {
    return online(holder) && !severed(source, holder);
  }

 private:
  /// Hash of (seed, a, b, salt) mapped to [0, 1). Chained mixes
  /// (not xors of mixes) so (a, b) never aliases (b, a).
  [[nodiscard]] double hash_unit(std::uint64_t a, std::uint64_t b,
                                 std::uint64_t salt) const noexcept {
    const std::uint64_t h =
        util::mix64(util::mix64(util::mix64(params_.seed ^ salt) ^ a) ^ b);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  friend class FaultSession;

  FaultParams params_{};
  std::vector<bool> online_;
  bool has_mask_ = false;
  BurstLossParams burst_{};
  PartitionParams partition_{};
  StragglerParams straggler_{};
  MidQueryChurnParams mid_churn_{};
  /// Partition side per node (1 = minority). Empty = no partition.
  std::vector<std::uint8_t> side_;
};

/// Per-trial cursor over the plan's message-indexed fault stream. One
/// session per (trial, query); engines charge one index per message they
/// send, so a trial's fault pattern depends only on (plan, trial index)
/// and the deterministic order of sends within the trial.
///
/// The edge-aware deliver(u, v) overloads add the structured shapes
/// (burst channel, partition cut, straggler-scaled jitter); they consume
/// exactly the same hash stream as the legacy edgeless overloads when
/// those shapes are inactive, so i.i.d. plans are bit-for-bit unchanged.
class FaultSession {
 public:
  FaultSession(const FaultPlan& plan, std::uint64_t trial) noexcept
      : plan_(&plan), trial_(trial) {}

  /// Charges one message index; false when this transmission is lost.
  /// Legacy edgeless form: i.i.d. loss only (no burst/cut/straggler).
  bool deliver() noexcept {
    const std::uint64_t i = index_++;
    if (plan_->drops(trial_, i)) {
      ++dropped_;
      return false;
    }
    return true;
  }

  /// deliver() plus link-jitter accounting — for the serial engines
  /// (walks, Chord routing) where per-hop latency is additive. Flood
  /// fan-out uses plain deliver(): its sends are concurrent.
  bool deliver_timed() noexcept {
    const std::uint64_t i = index_;
    if (!deliver()) return false;
    const double jit = plan_->jitter_ms(trial_, i);
    latency_ms_ += jit;
    observe_latency(jit);
    return true;
  }

  /// Edge-aware delivery on link u -> v: i.i.d. loss, the edge's burst
  /// channel, and the partition cut. No latency accounting (flood-style
  /// concurrent fan-out).
  bool deliver(NodeId u, NodeId v) noexcept {
    return deliver_edge(u, v, nullptr);
  }

  /// Edge-aware deliver() plus straggler-scaled jitter accounting (the
  /// serial engines).
  bool deliver_timed(NodeId u, NodeId v) noexcept {
    double jit = 0.0;
    if (!deliver_edge(u, v, &jit)) return false;
    latency_ms_ += jit;
    observe_latency(jit);
    return true;
  }

  /// Edge-aware delivery for the DES engines: drop decision plus the
  /// extra per-message delay (jitter x straggler scale, ms) written to
  /// `extra_ms` — the caller owns the clock, so nothing is accumulated
  /// here. The caller should observe_latency() the full wire time.
  bool deliver_wire(NodeId u, NodeId v, double& extra_ms) noexcept {
    extra_ms = 0.0;
    return deliver_edge(u, v, &extra_ms);
  }

  /// Time-indexed liveness at the session's current message index:
  /// static snapshot plus mid-query crashes that already happened. Also
  /// feeds the circuit breaker (finding a peer dead is a failure).
  [[nodiscard]] bool online(NodeId v) noexcept {
    const bool up = plan_->online(v, trial_, index_);
    if (!up) {
      offline_seen_ = true;
      record_failure(v);
    }
    return up;
  }

  /// Liveness without breaker/suspicion side effects (preflight checks,
  /// result accounting).
  [[nodiscard]] bool online_peek(NodeId v) const noexcept {
    return plan_->online(v, trial_, index_);
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::uint64_t trial() const noexcept { return trial_; }

  /// This trial's straggler multiplier for links INTO v (>= 1).
  [[nodiscard]] double straggler_scale(NodeId v) const noexcept {
    return plan_->straggler_scale(trial_, v);
  }

  /// Adds recovery waiting (timeouts, backoff) to the trial's latency.
  void charge_wait(double ms) noexcept { latency_ms_ += ms; }

  [[nodiscard]] std::uint64_t sent() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Accumulated simulated waiting: jitter plus recovery waits.
  [[nodiscard]] double latency_ms() const noexcept { return latency_ms_; }

  // --- Adaptive recovery state ---

  /// Arms the per-neighbor circuit breaker: after `failures_to_trip`
  /// observed failures (dropped sends to it, or finding it dead) a peer
  /// is reported tripped(). 0 disarms.
  void arm_breaker(std::uint32_t failures_to_trip) noexcept {
    breaker_limit_ = failures_to_trip;
  }

  /// True when the breaker is open for v: engines skip the send (and do
  /// not charge a message) — the neighbor is persistently unresponsive.
  [[nodiscard]] bool tripped(NodeId v) const noexcept {
    if (breaker_limit_ == 0 || failures_.empty()) return false;
    const auto it = failures_.find(v);
    return it != failures_.end() && it->second >= breaker_limit_;
  }

  /// True when this session has evidence of faults (drops or dead
  /// peers): gates hedged re-issue — a failed attempt with no evidence
  /// is a true negative, and re-issuing it is pointless.
  [[nodiscard]] bool suspects_faults() const noexcept {
    return dropped_ > 0 || offline_seen_;
  }

  /// Records one observed per-message latency (ms) into the estimator.
  /// Zero-latency plans contribute nothing, so the adaptive timeout
  /// falls back to the fixed one under inert plans.
  void observe_latency(double ms) noexcept {
    if (!plan_->has_latency_signal() && !plan_->straggler_active()) return;
    samples_[observed_ % samples_.size()] = static_cast<float>(ms);
    ++observed_;
  }

  [[nodiscard]] bool has_latency_samples() const noexcept {
    return observed_ > 0;
  }

  /// Online latency-quantile estimate over the observation window;
  /// `fallback` when the session has no observations yet.
  [[nodiscard]] double latency_quantile(double q, double fallback) const;

 private:
  bool deliver_edge(NodeId u, NodeId v, double* jitter_out) noexcept;
  /// Advances the (trial, edge) Gilbert–Elliott chain one transmission;
  /// true when this transmission is lost to a burst.
  bool burst_drops(NodeId u, NodeId v);
  void record_failure(NodeId v) {
    if (breaker_limit_ == 0) return;
    ++failures_[v];
  }

  const FaultPlan* plan_;
  std::uint64_t trial_;
  std::uint64_t index_ = 0;
  std::uint64_t dropped_ = 0;
  double latency_ms_ = 0.0;
  bool offline_seen_ = false;

  /// Gilbert–Elliott chain per undirected edge (bad-state flag + step
  /// count). Only touched when the plan's burst channel is active; keys
  /// are looked up, never iterated, so determinism is preserved.
  struct EdgeChannel {
    bool initialized = false;
    bool bad = false;
    std::uint64_t step = 0;
  };
  std::unordered_map<std::uint64_t, EdgeChannel> channels_;

  /// Circuit-breaker failure counts per destination (armed only).
  std::uint32_t breaker_limit_ = 0;
  std::unordered_map<NodeId, std::uint32_t> failures_;

  /// Ring buffer of observed per-message latencies (ms).
  std::array<float, 128> samples_{};
  std::uint64_t observed_ = 0;
};

}  // namespace qcp2p::sim
