// Deterministic fault injection for the search engines (flood, random
// walk, Gia, hybrid, Chord): per-message loss, per-peer crash/offline
// masks, and optional link-latency jitter, plus the recovery policy
// (timeouts, bounded retries, exponential escalation/backoff) the
// engines use to route around those faults.
//
// Determinism contract: every per-message decision (drop, jitter) is a
// stateless hash of (plan seed, trial index, message index) — never of
// wall clock, thread id, or shared state — so a fault-injected run under
// sim::TrialRunner is byte-identical for any --threads value. With
// loss_rate 0, no jitter, and no offline mask, a FaultSession is inert:
// engines take exactly the code path (and draw exactly the rng stream)
// they take without fault injection, reproducing fault-free results
// bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/util/rng.hpp"

namespace qcp2p::overlay {
class ChurnProcess;
}

namespace qcp2p::sim {

using overlay::NodeId;

struct FaultParams {
  /// Probability that any single message transmission is lost.
  double loss_rate = 0.0;
  /// Max extra link latency per delivered message (uniform in [0, max)),
  /// accumulated into FaultSession::latency_ms by the serial engines.
  double jitter_max_ms = 0.0;
  /// Keys the per-message drop/jitter hashes (independent of trial rng).
  std::uint64_t seed = 0xFA017ULL;
};

/// How an engine recovers from faults. Attempt-level fields (max_retries,
/// timeout_ms, backoff) apply to every engine; ttl_escalation is used by
/// the flood-based engines, budget_escalation by the walk-based ones, and
/// route_around_width by Chord's per-step dead-finger detours.
struct RecoveryPolicy {
  /// Re-issues allowed after a failed attempt (0 = single shot).
  std::uint32_t max_retries = 0;
  /// Flood/hybrid: TTL added per retry (expanding-ring escalation).
  std::uint32_t ttl_escalation = 1;
  /// Walk engines: step-budget multiplier per retry.
  double budget_escalation = 2.0;
  /// Wait charged when an attempt comes back empty (the querier cannot
  /// distinguish "no results" from "answers lost in flight").
  double timeout_ms = 400.0;
  /// Exponential inter-retry backoff: backoff_ms * backoff_factor^retry.
  double backoff_ms = 100.0;
  double backoff_factor = 2.0;
  /// Chord: max alternative next hops (lower fingers, then successor-list
  /// entries) tried per routing step before the attempt is declared dead.
  std::uint32_t route_around_width = 4;

  [[nodiscard]] double backoff_after(std::uint32_t retry) const noexcept;
};

/// Per-query fault accounting, embedded in every engine's result struct.
struct FaultStats {
  /// Attempts beyond the first.
  std::uint32_t retries = 0;
  /// Messages lost to the loss process (dead-peer sends are charged as
  /// ordinary messages but are not "dropped": the bits left the sender).
  std::uint64_t dropped = 0;
  /// Chord: extra sends spent detouring around dead/lossy next hops.
  std::uint64_t route_around_hops = 0;
  /// Simulated waiting on recovery: per-attempt timeouts plus backoff.
  double recovery_wait_ms = 0.0;

  void merge(const FaultStats& other) noexcept {
    retries += other.retries;
    dropped += other.dropped;
    route_around_hops += other.route_around_hops;
    recovery_wait_ms += other.recovery_wait_ms;
  }
};

/// Immutable description of the faults a whole experiment runs under:
/// loss/jitter parameters plus an optional liveness snapshot. Shared
/// read-only across worker threads.
class FaultPlan {
 public:
  /// The null plan: no loss, no jitter, everyone online.
  FaultPlan() = default;

  explicit FaultPlan(const FaultParams& params) : params_(params) {}

  /// Plan with a crash/offline snapshot: offline peers neither receive
  /// nor relay for the duration of the plan.
  FaultPlan(const FaultParams& params, std::vector<bool> online)
      : params_(params), online_(std::move(online)), has_mask_(true) {}

  /// Snapshot the current liveness of a session-churn process (advance
  /// the process between plans to model an evolving crash schedule).
  [[nodiscard]] static FaultPlan from_churn(const FaultParams& params,
                                            const overlay::ChurnProcess& churn);

  [[nodiscard]] double loss_rate() const noexcept { return params_.loss_rate; }

  /// True when the plan can actually perturb a run.
  [[nodiscard]] bool active() const noexcept {
    return params_.loss_rate > 0.0 || params_.jitter_max_ms > 0.0 || has_mask_;
  }

  [[nodiscard]] bool online(NodeId v) const noexcept {
    return !has_mask_ || online_[v];
  }

  /// nullptr when the plan has no crash schedule (everyone online).
  [[nodiscard]] const std::vector<bool>* online_mask() const noexcept {
    return has_mask_ ? &online_ : nullptr;
  }

  /// Stateless: is message `index` of trial `trial` lost?
  [[nodiscard]] bool drops(std::uint64_t trial,
                           std::uint64_t index) const noexcept {
    if (params_.loss_rate <= 0.0) return false;
    if (params_.loss_rate >= 1.0) return true;
    return hash_unit(trial, index, 0x10551ULL) < params_.loss_rate;
  }

  /// Stateless: link jitter of message `index` of trial `trial`, ms.
  [[nodiscard]] double jitter_ms(std::uint64_t trial,
                                 std::uint64_t index) const noexcept {
    if (params_.jitter_max_ms <= 0.0) return 0.0;
    return hash_unit(trial, index, 0x717E4ULL) * params_.jitter_max_ms;
  }

 private:
  /// Hash of (seed, trial, index, salt) mapped to [0, 1). Chained mixes
  /// (not xors of mixes) so (trial, index) never aliases (index, trial).
  [[nodiscard]] double hash_unit(std::uint64_t trial, std::uint64_t index,
                                 std::uint64_t salt) const noexcept {
    const std::uint64_t h = util::mix64(
        util::mix64(util::mix64(params_.seed ^ salt) ^ trial) ^ index);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  FaultParams params_{};
  std::vector<bool> online_;
  bool has_mask_ = false;
};

/// Per-trial cursor over the plan's message-indexed fault stream. One
/// session per (trial, query); engines charge one index per message they
/// send, so a trial's fault pattern depends only on (plan, trial index)
/// and the deterministic order of sends within the trial.
class FaultSession {
 public:
  FaultSession(const FaultPlan& plan, std::uint64_t trial) noexcept
      : plan_(&plan), trial_(trial) {}

  /// Charges one message index; false when this transmission is lost.
  bool deliver() noexcept {
    const std::uint64_t i = index_++;
    if (plan_->drops(trial_, i)) {
      ++dropped_;
      return false;
    }
    return true;
  }

  /// deliver() plus link-jitter accounting — for the serial engines
  /// (walks, Chord routing) where per-hop latency is additive. Flood
  /// fan-out uses plain deliver(): its sends are concurrent.
  bool deliver_timed() noexcept {
    const std::uint64_t i = index_;
    if (!deliver()) return false;
    latency_ms_ += plan_->jitter_ms(trial_, i);
    return true;
  }

  [[nodiscard]] bool online(NodeId v) const noexcept {
    return plan_->online(v);
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::uint64_t trial() const noexcept { return trial_; }

  /// Adds recovery waiting (timeouts, backoff) to the trial's latency.
  void charge_wait(double ms) noexcept { latency_ms_ += ms; }

  [[nodiscard]] std::uint64_t sent() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Accumulated simulated waiting: jitter plus recovery waits.
  [[nodiscard]] double latency_ms() const noexcept { return latency_ms_; }

 private:
  const FaultPlan* plan_;
  std::uint64_t trial_;
  std::uint64_t index_ = 0;
  std::uint64_t dropped_ = 0;
  double latency_ms_ = 0.0;
};

}  // namespace qcp2p::sim
