#include "src/sim/flood.hpp"

#include <algorithm>
#include <memory>

#include "src/sim/engine_registry.hpp"

namespace qcp2p::sim {

namespace {

/// One BFS relay round — the body of flood_into's hop loop: expands the
/// current frontier into `next`, stamping newly reached nodes into
/// scratch.reached, then swaps the frontiers. Returns how many nodes
/// were first reached this hop. Factored out so the ranked flood path,
/// which decides AFTER every hop whether to keep expanding, charges
/// exactly the messages of the hops it actually ran.
std::uint64_t flood_hop(const Graph& graph, NodeId source,
                        const std::vector<bool>* forwards,
                        const std::vector<bool>* online, FaultSession* faults,
                        SearchScratch& scratch, std::uint8_t epoch,
                        std::uint64_t& messages, std::uint64_t& dropped) {
  scratch.next.clear();
  std::uint64_t newly = 0;
  std::uint8_t* const mark = scratch.visit_mark.data();
  const bool plain = faults == nullptr && online == nullptr;
  for (NodeId u : scratch.frontier) {
    // The source always transmits; relays only if allowed to forward.
    if (u != source && forwards != nullptr && !(*forwards)[u]) continue;
    const auto nbrs = graph.neighbors(u);
    if (plain) {
      // Fast path (no loss, no liveness mask): every send is charged
      // and delivered, so the per-edge work is just the visit check.
      // Nodes that cannot forward are filtered out of `next` at
      // discovery time, so later frontiers hold only relays.
      messages += nbrs.size();
      for (NodeId v : nbrs) {
        if (mark[v] != epoch) {
          mark[v] = epoch;
          scratch.reached.push_back(v);
          ++newly;
          if (forwards == nullptr || (*forwards)[v]) {
            scratch.next.push_back(v);
          }
        }
      }
      continue;
    }
    for (NodeId v : nbrs) {
      // Circuit breaker: a persistently unresponsive neighbor is
      // skipped entirely — no send, no message charged.
      if (faults != nullptr && faults->tripped(v)) continue;
      ++messages;  // duplicates and dead peers still cost a send
      if (faults != nullptr && !faults->deliver(u, v)) {
        ++dropped;  // lost in flight: never arrives anywhere
        continue;
      }
      // Under faults liveness is time-indexed (mid-query crashes);
      // the plain masked path keeps the static snapshot.
      const bool alive = faults != nullptr
                             ? faults->online(v)
                             : (online == nullptr || (*online)[v]);
      if (!alive) continue;
      if (mark[v] != epoch) {
        mark[v] = epoch;
        scratch.reached.push_back(v);
        scratch.next.push_back(v);
        ++newly;
      }
    }
  }
  scratch.frontier.swap(scratch.next);
  return newly;
}

/// Seeds the BFS state for a flood from `source`. Returns false when the
/// flood is empty by definition (TTL 0, empty graph, offline source).
bool flood_begin(const Graph& graph, NodeId source, std::uint32_t ttl,
                 const std::vector<bool>* online, SearchScratch& scratch,
                 std::uint8_t& epoch) {
  scratch.reached.clear();
  if (ttl == 0 || graph.num_nodes() == 0) return false;
  if (online != nullptr && !(*online)[source]) return false;
  scratch.bind(graph.num_nodes());
  epoch = scratch.begin_epoch();
  scratch.visit_mark[source] = epoch;
  scratch.frontier.clear();
  scratch.frontier.push_back(source);
  return true;
}

}  // namespace

void flood_into(const Graph& graph, NodeId source, std::uint32_t ttl,
                const std::vector<bool>* forwards,
                const std::vector<bool>* online, FaultSession* faults,
                SearchScratch& scratch, std::uint64_t& messages,
                std::uint64_t& dropped, std::vector<std::uint64_t>* per_hop) {
  std::uint8_t epoch = 0;
  if (!flood_begin(graph, source, ttl, online, scratch, epoch)) return;
  for (std::uint32_t hop = 1; hop <= ttl && !scratch.frontier.empty(); ++hop) {
    const std::uint64_t newly = flood_hop(graph, source, forwards, online,
                                          faults, scratch, epoch, messages,
                                          dropped);
    if (per_hop != nullptr) per_hop->push_back(newly);
  }
}

FloodResult flood(const Graph& graph, NodeId source, std::uint32_t ttl,
                  const std::vector<bool>* forwards,
                  const std::vector<bool>* online) {
  FloodEngine engine(graph);
  return engine.run(source, ttl, forwards, online);
}

FloodEngine::FloodEngine(const Graph& graph) : graph_(&graph) {
  scratch_.bind(graph.num_nodes());
}

FloodResult FloodEngine::run(NodeId source, std::uint32_t ttl,
                             const std::vector<bool>* forwards,
                             const std::vector<bool>* online,
                             FaultSession* faults) {
  FloodResult result;
  flood_into(*graph_, source, ttl, forwards, online, faults, scratch_,
             result.messages, result.dropped, &result.per_hop);
  result.reached.assign(scratch_.reached.begin(), scratch_.reached.end());
  return result;
}

bool FloodEngine::reaches_any(NodeId source, std::uint32_t ttl,
                              std::span<const NodeId> holders,
                              const std::vector<bool>* forwards,
                              std::uint64_t* messages_out,
                              const std::vector<bool>* online) {
  const auto holder_alive = [&](NodeId v) {
    return online == nullptr || (*online)[v];
  };
  // A node already holding the object needs no search at all.
  if (std::binary_search(holders.begin(), holders.end(), source) &&
      holder_alive(source)) {
    if (messages_out) *messages_out = 0;
    return true;
  }
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  flood_into(*graph_, source, ttl, forwards, online, nullptr, scratch_,
             messages, dropped, nullptr);
  if (messages_out) *messages_out = messages;
  for (NodeId v : scratch_.reached) {
    if (std::binary_search(holders.begin(), holders.end(), v)) return true;
  }
  return false;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl, SearchScratch& scratch,
                               const std::vector<bool>* forwards,
                               const std::vector<bool>* online) {
  FloodSearchResult out;
  flood_into(graph, source, ttl, forwards, online, nullptr, scratch,
             out.messages, out.fault.dropped, nullptr);
  // Local check first, as real servents do — unless the source itself is
  // offline (then nothing is probed; the flood was already empty).
  if (online == nullptr || (*online)[source]) {
    const NodeId self[1] = {source};
    probe_peers(store, query, self, scratch, out.results, out.peers_probed);
  }
  probe_peers(store, query, scratch.reached, scratch, out.results,
              out.peers_probed);
  sort_unique_hits(out.results);
  return out;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl,
                               const std::vector<bool>* forwards,
                               const std::vector<bool>* online) {
  SearchScratch scratch;
  return flood_search(graph, store, source, query, ttl, scratch, forwards,
                      online);
}

namespace {

/// Registry adapter over flood_into: locate queries mirror
/// FloodEngine::reaches_any, content queries mirror flood_search. The
/// source's local check is fault-free and attempt-independent, so begin()
/// handles it exactly once; each attempt floods and harvests the ring.
///
/// Content queries also carry an ESTIMATED TimingRecord: a flood round
/// is synchronous, so a peer first reached at hop h answers after a
/// 2h-link round trip priced at the TimingModel's mean. The per-hop
/// histogram already partitions scratch.reached by hop, so probing it
/// segment by segment pins first-hit to a hop without changing the
/// probe order (hits/messages stay bit-identical to flood_search).
class FloodSearchEngine final : public SearchEngine {
 public:
  FloodSearchEngine(const Graph& graph, const PeerStore* store,
                    const std::vector<bool>* forwards,
                    const TimingParams& timing) noexcept
      : graph_(&graph), store_(store), forwards_(forwards), timing_(timing) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flood";
  }
  [[nodiscard]] bool can_locate() const noexcept override { return true; }

 protected:
  bool preflight(const Query& query, const FaultSession*) const override {
    if (graph_->num_nodes() == 0) return false;
    if (!query.is_locate() && store_ == nullptr) return false;
    // An offline source issues nothing (and is not probed locally).
    return query.online == nullptr || (*query.online)[query.source];
  }

  void begin(const Query& query, EngineContext& ctx,
             SearchOutcome& out) const override {
    if (query.is_locate()) {
      // A node already holding the object needs no search at all.
      if (std::binary_search(query.holders.begin(), query.holders.end(),
                             query.source)) {
        out.success = true;
      }
      return;
    }
    out.timing.emplace();  // estimated; locate mode has no per-hop data
    const NodeId self[1] = {query.source};
    if (query.ranked()) {
      if (probe_peers_ranked(*store_, query.terms, self, query.min_score,
                             ctx.scratch, out.top_k, out.peers_probed) != 0) {
        out.timing->first_hit_s = 0.0;
      }
      return;
    }
    probe_peers(*store_, query.terms, self, ctx.scratch, out.hits,
                out.peers_probed);
    if (!out.hits.empty()) out.timing->first_hit_s = 0.0;
  }

  void attempt(const Query& query, EngineContext& ctx, FaultSession* faults,
               const RecoveryPolicy*, SearchOutcome& out) const override {
    if (out.success) return;  // locate satisfied by the source's own copy
    if (query.ranked()) {
      attempt_ranked(query, ctx, faults, out);
      return;
    }
    const std::size_t hop_base = out.per_hop.size();
    flood_into(*graph_, query.source, query.ttl, forwards_, query.online,
               faults, ctx.scratch, out.messages, out.fault.dropped,
               query.is_locate() ? nullptr : &out.per_hop);
    if (query.is_locate()) {
      for (NodeId v : ctx.scratch.reached) {
        if (std::binary_search(query.holders.begin(), query.holders.end(),
                               v)) {
          out.success = true;
          break;
        }
      }
      return;
    }
    // Probe hop by hop: per_hop partitions reached in discovery order,
    // so the concatenated probes are exactly flood_search's one pass.
    const double base =
        out.timing->clock_s + out.fault.recovery_wait_ms / 1000.0;
    const double mean = TimingModel(timing_).mean_link_s();
    std::size_t offset = 0;
    for (std::size_t h = hop_base; h < out.per_hop.size(); ++h) {
      const std::size_t n = static_cast<std::size_t>(out.per_hop[h]);
      const std::size_t had_hits = out.hits.size();
      probe_peers(*store_, query.terms,
                  std::span<const NodeId>(ctx.scratch.reached)
                      .subspan(offset, n),
                  ctx.scratch, out.hits, out.peers_probed);
      offset += n;
      if (out.hits.size() > had_hits && !out.timing->has_first_hit()) {
        out.timing->first_hit_s =
            base + 2.0 * static_cast<double>(h - hop_base + 1) * mean;
      }
    }
    out.timing->clock_s +=
        2.0 * static_cast<double>(out.per_hop.size() - hop_base) * mean;
  }

  void finish(const Query& query, SearchOutcome& out) const override {
    if (out.timing.has_value()) {
      out.timing->clock_s += out.fault.recovery_wait_ms / 1000.0;
    }
    SearchEngine::finish(query, out);
  }

 private:
  /// Ranked content flood: the BFS is stepped one hop at a time and each
  /// hop's newly reached peers are probed scored before the next round
  /// launches. Two stops (DESIGN.md §11):
  ///   * coverage — every live peer has been probed, so later rounds can
  ///     only re-traverse edges; stopping is free of recall cost;
  ///   * stability — kRankedStallRounds consecutive rounds admitted
  ///     nothing into the current top-k (TopKTracker) while at least one
  ///     result is in hand. Until k candidates exist any admission
  ///     counts as an improvement, so under-filled queries only stop on
  ///     fully dry rounds.
  /// The stability stop consults k, so a smaller k stops no later than a
  /// larger one (the cost/recall trade the exp_topk sweep measures);
  /// zero-result queries run the full TTL unless coverage completes.
  /// Messages are charged per hop actually run.
  void attempt_ranked(const Query& query, EngineContext& ctx,
                      FaultSession* faults, SearchOutcome& out) const {
    SearchScratch& s = ctx.scratch;
    std::uint8_t epoch = 0;
    if (!flood_begin(*graph_, query.source, query.ttl, query.online, s,
                     epoch)) {
      return;
    }
    const std::size_t live =
        query.online == nullptr
            ? graph_->num_nodes()
            : static_cast<std::size_t>(std::count(
                  query.online->begin(), query.online->end(), true));
    const double base =
        out.timing->clock_s + out.fault.recovery_wait_ms / 1000.0;
    const double mean = TimingModel(timing_).mean_link_s();
    std::size_t offset = 0;  // start of this hop's segment in s.reached
    std::uint32_t hops_run = 0;
    std::uint32_t stall = 0;
    TopKTracker tracker(query.k);
    tracker.note_from(out.top_k, 0);  // begin()'s local probe + retries
    for (std::uint32_t hop = 1; hop <= query.ttl && !s.frontier.empty();
         ++hop) {
      const std::uint64_t newly =
          flood_hop(*graph_, query.source, forwards_, query.online, faults, s,
                    epoch, out.messages, out.fault.dropped);
      out.per_hop.push_back(newly);
      ++hops_run;
      const std::size_t before = out.top_k.size();
      const std::size_t fresh = probe_peers_ranked(
          *store_, query.terms,
          std::span<const NodeId>(s.reached)
              .subspan(offset, static_cast<std::size_t>(newly)),
          query.min_score, s, out.top_k, out.peers_probed);
      offset += static_cast<std::size_t>(newly);
      if (fresh != 0 && !out.timing->has_first_hit()) {
        out.timing->first_hit_s =
            base + 2.0 * static_cast<double>(hop) * mean;
      }
      // Coverage stop: reached plus the source is every live peer.
      // (Under faults live is the static mask's count, which the
      // time-indexed liveness can only shrink — the check simply never
      // fires then, which is the conservative direction.)
      if (s.reached.size() + 1 >= live) break;
      stall = tracker.note_from(out.top_k, before) ? 0 : stall + 1;
      if (stall >= kRankedStallRounds && !out.top_k.empty()) break;
    }
    out.timing->clock_s += 2.0 * static_cast<double>(hops_run) * mean;
  }

  const Graph* graph_;
  const PeerStore* store_;
  const std::vector<bool>* forwards_;
  TimingParams timing_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchEngine> make_flood_engine(const EngineWorld& world) {
  if (world.graph == nullptr) return nullptr;
  return std::make_unique<FloodSearchEngine>(*world.graph, world.store,
                                             world.forwards, world.timing);
}

}  // namespace detail

}  // namespace qcp2p::sim
