#include "src/sim/flood.hpp"

#include <algorithm>

namespace qcp2p::sim {
namespace {

/// BFS core shared by every flood entry point. Fills scratch.reached
/// (nodes that received the query, excluding the source) and charges
/// `messages`/`dropped`; the per-hop histogram is materialized only when
/// a caller asks for it.
void flood_core(const Graph& graph, NodeId source, std::uint32_t ttl,
                const std::vector<bool>* forwards,
                const std::vector<bool>* online, FaultSession* faults,
                SearchScratch& scratch, std::uint64_t& messages,
                std::uint64_t& dropped, std::vector<std::uint64_t>* per_hop) {
  scratch.reached.clear();
  if (ttl == 0 || graph.num_nodes() == 0) return;
  if (online != nullptr && !(*online)[source]) return;

  scratch.bind(graph.num_nodes());
  const std::uint8_t epoch = scratch.begin_epoch();
  scratch.visit_mark[source] = epoch;
  scratch.frontier.clear();
  scratch.frontier.push_back(source);

  std::uint8_t* const mark = scratch.visit_mark.data();
  const bool plain = faults == nullptr && online == nullptr;
  for (std::uint32_t hop = 1; hop <= ttl && !scratch.frontier.empty(); ++hop) {
    scratch.next.clear();
    std::uint64_t newly = 0;
    for (NodeId u : scratch.frontier) {
      // The source always transmits; relays only if allowed to forward.
      if (u != source && forwards != nullptr && !(*forwards)[u]) continue;
      const auto nbrs = graph.neighbors(u);
      if (plain) {
        // Fast path (no loss, no liveness mask): every send is charged
        // and delivered, so the per-edge work is just the visit check.
        // Nodes that cannot forward are filtered out of `next` at
        // discovery time, so later frontiers hold only relays.
        messages += nbrs.size();
        for (NodeId v : nbrs) {
          if (mark[v] != epoch) {
            mark[v] = epoch;
            scratch.reached.push_back(v);
            ++newly;
            if (forwards == nullptr || (*forwards)[v]) {
              scratch.next.push_back(v);
            }
          }
        }
        continue;
      }
      for (NodeId v : nbrs) {
        ++messages;  // duplicates and dead peers still cost a send
        if (faults != nullptr && !faults->deliver()) {
          ++dropped;  // lost in flight: never arrives anywhere
          continue;
        }
        if (online != nullptr && !(*online)[v]) continue;
        if (mark[v] != epoch) {
          mark[v] = epoch;
          scratch.reached.push_back(v);
          scratch.next.push_back(v);
          ++newly;
        }
      }
    }
    if (per_hop != nullptr) per_hop->push_back(newly);
    scratch.frontier.swap(scratch.next);
  }
}

/// Shared probe stage of the flood_search overloads: match every peer
/// and append its hits.
void probe_peers(const PeerStore& store, std::span<const TermId> query,
                 std::span<const NodeId> peers, SearchScratch& scratch,
                 FloodSearchResult& out) {
  for (NodeId v : peers) {
    ++out.peers_probed;
    const auto hits = store.match(v, query, scratch.match);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  }
}

/// Shared result tail: deduplicate hits collected across peers (and
/// across retry attempts).
void finish_results(FloodSearchResult& out) {
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
}

}  // namespace

FloodResult flood(const Graph& graph, NodeId source, std::uint32_t ttl,
                  const std::vector<bool>* forwards,
                  const std::vector<bool>* online) {
  FloodEngine engine(graph);
  return engine.run(source, ttl, forwards, online);
}

FloodEngine::FloodEngine(const Graph& graph) : graph_(&graph) {
  scratch_.bind(graph.num_nodes());
}

FloodResult FloodEngine::run(NodeId source, std::uint32_t ttl,
                             const std::vector<bool>* forwards,
                             const std::vector<bool>* online,
                             FaultSession* faults) {
  FloodResult result;
  flood_core(*graph_, source, ttl, forwards, online, faults, scratch_,
             result.messages, result.dropped, &result.per_hop);
  result.reached.assign(scratch_.reached.begin(), scratch_.reached.end());
  return result;
}

bool FloodEngine::reaches_any(NodeId source, std::uint32_t ttl,
                              std::span<const NodeId> holders,
                              const std::vector<bool>* forwards,
                              std::uint64_t* messages_out,
                              const std::vector<bool>* online) {
  const auto holder_alive = [&](NodeId v) {
    return online == nullptr || (*online)[v];
  };
  // A node already holding the object needs no search at all.
  if (std::binary_search(holders.begin(), holders.end(), source) &&
      holder_alive(source)) {
    if (messages_out) *messages_out = 0;
    return true;
  }
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  flood_core(*graph_, source, ttl, forwards, online, nullptr, scratch_,
             messages, dropped, nullptr);
  if (messages_out) *messages_out = messages;
  for (NodeId v : scratch_.reached) {
    if (std::binary_search(holders.begin(), holders.end(), v)) return true;
  }
  return false;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl, SearchScratch& scratch,
                               const std::vector<bool>* forwards,
                               const std::vector<bool>* online) {
  FloodSearchResult out;
  flood_core(graph, source, ttl, forwards, online, nullptr, scratch,
             out.messages, out.fault.dropped, nullptr);
  // Local check first, as real servents do — unless the source itself is
  // offline (then nothing is probed; the flood was already empty).
  if (online == nullptr || (*online)[source]) {
    const NodeId self[1] = {source};
    probe_peers(store, query, self, scratch, out);
  }
  probe_peers(store, query, scratch.reached, scratch, out);
  finish_results(out);
  return out;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl,
                               const std::vector<bool>* forwards,
                               const std::vector<bool>* online) {
  SearchScratch scratch;
  return flood_search(graph, store, source, query, ttl, scratch, forwards,
                      online);
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl, SearchScratch& scratch,
                               FaultSession& faults,
                               const RecoveryPolicy& policy,
                               const std::vector<bool>* forwards) {
  FloodSearchResult out;
  const std::vector<bool>* online = faults.plan().online_mask();
  if (online != nullptr && !(*online)[source]) return out;

  // The local check is free, fault-free, and yields the same hits on
  // every attempt: probe (and count) the source exactly once.
  const NodeId self[1] = {source};
  probe_peers(store, query, self, scratch, out);

  std::uint32_t attempt_ttl = ttl;
  for (std::uint32_t attempt = 0;; ++attempt) {
    flood_core(graph, source, attempt_ttl, forwards, online, &faults, scratch,
               out.messages, out.fault.dropped, nullptr);
    probe_peers(store, query, scratch.reached, scratch, out);
    if (!out.results.empty() || attempt >= policy.max_retries) break;
    // Nothing came back: wait out the timeout, back off, widen the ring.
    const double wait = policy.timeout_ms + policy.backoff_after(attempt);
    faults.charge_wait(wait);
    out.fault.recovery_wait_ms += wait;
    ++out.fault.retries;
    attempt_ttl += policy.ttl_escalation;
  }

  finish_results(out);
  return out;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl, FaultSession& faults,
                               const RecoveryPolicy& policy,
                               const std::vector<bool>* forwards) {
  SearchScratch scratch;
  return flood_search(graph, store, source, query, ttl, scratch, faults,
                      policy, forwards);
}

}  // namespace qcp2p::sim
