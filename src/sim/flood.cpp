#include "src/sim/flood.hpp"

#include <algorithm>

namespace qcp2p::sim {

FloodResult flood(const Graph& graph, NodeId source, std::uint32_t ttl,
                  const std::vector<bool>* forwards,
                  const std::vector<bool>* online) {
  FloodEngine engine(graph);
  return engine.run(source, ttl, forwards, online);
}

FloodEngine::FloodEngine(const Graph& graph)
    : graph_(&graph), visit_mark_(graph.num_nodes(), 0) {}

FloodResult FloodEngine::run(NodeId source, std::uint32_t ttl,
                             const std::vector<bool>* forwards,
                             const std::vector<bool>* online,
                             FaultSession* faults) {
  FloodResult result;
  if (ttl == 0 || graph_->num_nodes() == 0) return result;
  if (online != nullptr && !(*online)[source]) return result;

  if (++epoch_ == 0) {
    // Wrapped after 2^32 runs: stale marks from the previous cycle would
    // alias the fresh-constructed value and silently skip nodes.
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    epoch_ = 1;
  }
  visit_mark_[source] = epoch_;
  frontier_.clear();
  frontier_.push_back(source);

  for (std::uint32_t hop = 1; hop <= ttl && !frontier_.empty(); ++hop) {
    next_.clear();
    std::uint64_t newly = 0;
    for (NodeId u : frontier_) {
      // The source always transmits; relays only if allowed to forward.
      if (u != source && forwards != nullptr && !(*forwards)[u]) continue;
      for (NodeId v : graph_->neighbors(u)) {
        ++result.messages;  // duplicates and dead peers still cost a send
        if (faults != nullptr && !faults->deliver()) {
          ++result.dropped;  // lost in flight: never arrives anywhere
          continue;
        }
        if (online != nullptr && !(*online)[v]) continue;
        if (visit_mark_[v] != epoch_) {
          visit_mark_[v] = epoch_;
          result.reached.push_back(v);
          next_.push_back(v);
          ++newly;
        }
      }
    }
    result.per_hop.push_back(newly);
    frontier_.swap(next_);
  }
  return result;
}

bool FloodEngine::reaches_any(NodeId source, std::uint32_t ttl,
                              std::span<const NodeId> holders,
                              const std::vector<bool>* forwards,
                              std::uint64_t* messages_out,
                              const std::vector<bool>* online) {
  const auto holder_alive = [&](NodeId v) {
    return online == nullptr || (*online)[v];
  };
  // A node already holding the object needs no search at all.
  if (std::binary_search(holders.begin(), holders.end(), source) &&
      holder_alive(source)) {
    if (messages_out) *messages_out = 0;
    return true;
  }
  const FloodResult r = run(source, ttl, forwards, online);
  if (messages_out) *messages_out = r.messages;
  for (NodeId v : r.reached) {
    if (std::binary_search(holders.begin(), holders.end(), v)) return true;
  }
  return false;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl,
                               const std::vector<bool>* forwards,
                               const std::vector<bool>* online) {
  FloodSearchResult out;
  FloodEngine engine(graph);
  const FloodResult r = engine.run(source, ttl, forwards, online);
  out.messages = r.messages;

  auto probe = [&](NodeId peer) {
    ++out.peers_probed;
    for (std::uint64_t id : store.match(peer, query)) out.results.push_back(id);
  };
  // Local check first, as real servents do — unless the source itself is
  // offline (then nothing is probed; run() already returned empty).
  if (online == nullptr || (*online)[source]) probe(source);
  for (NodeId v : r.reached) probe(v);

  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  return out;
}

FloodSearchResult flood_search(const Graph& graph, const PeerStore& store,
                               NodeId source, std::span<const TermId> query,
                               std::uint32_t ttl, FaultSession& faults,
                               const RecoveryPolicy& policy,
                               const std::vector<bool>* forwards) {
  FloodSearchResult out;
  const std::vector<bool>* online = faults.plan().online_mask();
  if (online != nullptr && !(*online)[source]) return out;

  FloodEngine engine(graph);
  auto probe = [&](NodeId peer) {
    ++out.peers_probed;
    for (std::uint64_t id : store.match(peer, query)) out.results.push_back(id);
  };

  std::uint32_t attempt_ttl = ttl;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const FloodResult r = engine.run(source, attempt_ttl, forwards, online,
                                     &faults);
    out.messages += r.messages;
    out.fault.dropped += r.dropped;
    probe(source);  // the local check is free and repeats per attempt
    for (NodeId v : r.reached) probe(v);
    if (!out.results.empty() || attempt >= policy.max_retries) break;
    // Nothing came back: wait out the timeout, back off, widen the ring.
    const double wait = policy.timeout_ms + policy.backoff_after(attempt);
    faults.charge_wait(wait);
    out.fault.recovery_wait_ms += wait;
    ++out.fault.retries;
    attempt_ttl += policy.ttl_escalation;
  }

  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  return out;
}

}  // namespace qcp2p::sim
