// Composable fault injection: with_faults(engine, plan, policy) wraps ANY
// SearchEngine so the wrapped search runs under the plan's loss / jitter /
// crash schedule with the policy's timeout / retry / backoff / escalation
// recovery. This decorator is the only fault-aware search path: engines
// implement per-attempt hooks once and never see retry logic.
//
// Inert plans (no loss, no jitter, no crash mask) reproduce the plain
// path bit-for-bit — same hits, messages, probes, and rng stream — which
// the conformance suite asserts for every registered engine.
#pragma once

#include <memory>

#include "src/sim/engine.hpp"
#include "src/sim/fault.hpp"

namespace qcp2p::sim {

/// Decorates an engine with a fault plan + recovery policy. Holds the
/// inner engine and plan by reference: both must outlive the decorator.
/// Stateless per query (a fresh FaultSession is keyed off query.trial),
/// so one decorator is shared read-only across TrialRunner workers.
/// Validates the policy at construction (throws std::invalid_argument).
class FaultInjectedEngine final : public SearchEngine {
 public:
  FaultInjectedEngine(const SearchEngine& inner, const FaultPlan& plan,
                      RecoveryPolicy policy)
      : inner_(&inner), plan_(&plan), policy_(policy) {
    policy_.validate();
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] bool can_locate() const noexcept override {
    return inner_->can_locate();
  }

  [[nodiscard]] SearchOutcome search(const Query& query,
                                     EngineContext& ctx) const override {
    FaultSession faults(*plan_, query.trial);
    faults.arm_breaker(policy_.breaker_failures);
    SearchOutcome out = drive(*inner_, query, ctx, &faults, &policy_);
    if (plan_->active()) {
      fill_degradation(query, out);
      // Engines without a time model still have a fault-layer time
      // axis: accumulated jitter plus recovery waits. Estimated, and
      // only under an active plan, so inert runs stay bit-identical.
      if (!out.timing.has_value()) {
        TimingRecord t;
        t.clock_s = faults.latency_ms() / 1000.0;
        t.exact = false;
        out.timing = t;
      }
    }
    return out;
  }

 protected:
  // Never reached: search() drives the INNER engine's hooks.
  void attempt(const Query&, EngineContext&, FaultSession*,
               const RecoveryPolicy*, SearchOutcome&) const override {}

 private:
  /// Splits "failed" into "nothing was reachable" vs "gave up early":
  /// counts the holders the plan says could have answered at launch.
  /// Needs holder knowledge — locate queries carry it; content queries
  /// opt in through Query::audit_holders.
  void fill_degradation(const Query& query, SearchOutcome& out) const {
    const std::span<const NodeId> holders =
        query.is_locate() ? query.holders : query.audit_holders;
    if (holders.empty()) return;
    DegradationRecord d;
    d.holders_known = holders.size();
    for (const NodeId h : holders) {
      if (plan_->reachable_at_launch(query.source, h)) ++d.holders_reachable;
    }
    d.results_found = out.hits.size();
    out.degradation = d;
  }

  const SearchEngine* inner_;
  const FaultPlan* plan_;
  RecoveryPolicy policy_;
};

/// Convenience factory mirroring the ISSUE's decorator spelling.
[[nodiscard]] inline FaultInjectedEngine with_faults(const SearchEngine& engine,
                                                     const FaultPlan& plan,
                                                     RecoveryPolicy policy) {
  return FaultInjectedEngine(engine, plan, policy);
}

}  // namespace qcp2p::sim
