// Composable fault injection: with_faults(engine, plan, policy) wraps ANY
// SearchEngine so the wrapped search runs under the plan's loss / jitter /
// crash schedule with the policy's timeout / retry / backoff / escalation
// recovery. This decorator is the only fault-aware search path: engines
// implement per-attempt hooks once and never see retry logic.
//
// Inert plans (no loss, no jitter, no crash mask) reproduce the plain
// path bit-for-bit — same hits, messages, probes, and rng stream — which
// the conformance suite asserts for every registered engine.
#pragma once

#include <memory>

#include "src/sim/engine.hpp"
#include "src/sim/fault.hpp"

namespace qcp2p::sim {

/// Decorates an engine with a fault plan + recovery policy. Holds the
/// inner engine and plan by reference: both must outlive the decorator.
/// Stateless per query (a fresh FaultSession is keyed off query.trial),
/// so one decorator is shared read-only across TrialRunner workers.
class FaultInjectedEngine final : public SearchEngine {
 public:
  FaultInjectedEngine(const SearchEngine& inner, const FaultPlan& plan,
                      RecoveryPolicy policy) noexcept
      : inner_(&inner), plan_(&plan), policy_(policy) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return inner_->name();
  }
  [[nodiscard]] bool can_locate() const noexcept override {
    return inner_->can_locate();
  }

  [[nodiscard]] SearchOutcome search(const Query& query,
                                     EngineContext& ctx) const override {
    FaultSession faults(*plan_, query.trial);
    return drive(*inner_, query, ctx, &faults, &policy_);
  }

 protected:
  // Never reached: search() drives the INNER engine's hooks.
  void attempt(const Query&, EngineContext&, FaultSession*,
               const RecoveryPolicy*, SearchOutcome&) const override {}

 private:
  const SearchEngine* inner_;
  const FaultPlan* plan_;
  RecoveryPolicy policy_;
};

/// Convenience factory mirroring the ISSUE's decorator spelling.
[[nodiscard]] inline FaultInjectedEngine with_faults(const SearchEngine& engine,
                                                     const FaultPlan& plan,
                                                     RecoveryPolicy policy) {
  return FaultInjectedEngine(engine, plan, policy);
}

}  // namespace qcp2p::sim
