#include "src/sim/result_cache.hpp"

#include <algorithm>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

CachingSearchNetwork::CachingSearchNetwork(const Graph& graph,
                                           const PeerStore& store,
                                           const ResultCacheParams& params)
    : graph_(&graph),
      store_(&store),
      params_(params),
      caches_(graph.num_nodes()),
      engine_(graph) {}

CachingSearchNetwork::QueryKey CachingSearchNetwork::key_from(
    std::span<const TermId> query, std::vector<TermId>& scratch) {
  // Order-independent hash over the (sorted, deduplicated) term set:
  // {a,b}, {b,a}, and {a,a,b} are the same conjunctive query and must
  // share one cache entry. Sort + unique into reusable scratch, then
  // chain-mix the canonical sequence.
  scratch.assign(query.begin(), query.end());
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (TermId t : scratch) h = util::mix64(h ^ (t + 0x1234ULL));
  return QueryKey{h};
}

CachingSearchNetwork::QueryKey CachingSearchNetwork::key_of(
    std::span<const TermId> query) {
  return key_from(query, key_scratch_);
}

void CachingSearchNetwork::erase_entry(
    PeerCache& cache,
    std::unordered_map<QueryKey, Entry, KeyHash>::iterator it) {
  cache.order.erase(it->second.pos);
  cache.entries.erase(it);
}

const std::vector<std::uint64_t>* CachingSearchNetwork::lookup(
    NodeId peer, const QueryKey& key) {
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it == cache.entries.end()) return nullptr;
  // A ranked entry cannot serve a set lookup: its payload is truncated
  // to k, not the full result set.
  if (it->second.k != 0) return nullptr;
  if (expired(it->second)) {
    // Lazy age eviction: the entry has outlived max_age_s of DES time
    // and may name objects whose every holder is gone.
    erase_entry(cache, it);
    return nullptr;
  }
  // Refresh LRU position.
  cache.order.erase(it->second.pos);
  cache.order.push_front(key);
  it->second.pos = cache.order.begin();
  return &it->second.results;
}

void CachingSearchNetwork::insert(NodeId peer, const QueryKey& key,
                                  std::vector<std::uint64_t> results) {
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it != cache.entries.end()) {
    // Re-inserted hot entry: refresh its LRU position (a stale recency
    // slot would get it evicted as if cold) and keep the fresher results.
    // A replaced ranked entry becomes a set entry.
    cache.order.splice(cache.order.begin(), cache.order, it->second.pos);
    it->second.pos = cache.order.begin();
    it->second.results = std::move(results);
    it->second.inserted_at = now_s_;
    it->second.ranked.clear();
    it->second.k = 0;
    it->second.min_score = 0.0f;
    return;
  }
  cache.order.push_front(key);
  cache.entries.emplace(
      key, Entry{cache.order.begin(), std::move(results), now_s_});
  if (cache.entries.size() > params_.capacity) {
    cache.entries.erase(cache.order.back());
    cache.order.pop_back();
  }
}

void CachingSearchNetwork::insert_ranked(NodeId peer, const QueryKey& key,
                                         std::vector<ScoredMatch> ranked,
                                         std::uint32_t k, float min_score) {
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it != cache.entries.end()) {
    cache.order.splice(cache.order.begin(), cache.order, it->second.pos);
    it->second.pos = cache.order.begin();
    it->second.results.clear();
    it->second.ranked = std::move(ranked);
    it->second.k = k;
    it->second.min_score = min_score;
    it->second.inserted_at = now_s_;
    return;
  }
  cache.order.push_front(key);
  Entry entry{cache.order.begin(), {}, now_s_};
  entry.ranked = std::move(ranked);
  entry.k = k;
  entry.min_score = min_score;
  cache.entries.emplace(key, std::move(entry));
  if (cache.entries.size() > params_.capacity) {
    cache.entries.erase(cache.order.back());
    cache.order.pop_back();
  }
}

void CachingSearchNetwork::prime(NodeId peer, std::span<const TermId> query,
                                 std::vector<std::uint64_t> results) {
  if (query.empty() || results.empty()) return;
  insert(peer, key_of(query), std::move(results));
}

void CachingSearchNetwork::prime(NodeId peer, std::span<const TermId> query,
                                 std::vector<std::uint64_t> results,
                                 std::span<const NodeId> holders) {
  if (query.empty() || results.empty()) return;
  const QueryKey key = key_of(query);
  insert(peer, key, std::move(results));
  for (NodeId h : holders) holder_index_[h].emplace_back(peer, key);
}

void CachingSearchNetwork::prime_ranked(NodeId peer,
                                        std::span<const TermId> query,
                                        std::vector<ScoredMatch> ranked,
                                        std::uint32_t k, float min_score,
                                        std::span<const NodeId> holders) {
  if (query.empty() || ranked.empty() || k == 0) return;
  const QueryKey key = key_of(query);
  insert_ranked(peer, key, std::move(ranked), k, min_score);
  for (NodeId h : holders) holder_index_[h].emplace_back(peer, key);
}

void CachingSearchNetwork::advance_clock(double now_s) noexcept {
  if (now_s > now_s_) now_s_ = now_s;
}

const std::vector<std::uint64_t>* CachingSearchNetwork::peek(
    NodeId peer, std::span<const TermId> query) const {
  if (query.empty()) return nullptr;
  // Local scratch: peek runs concurrently from query shards, so it must
  // not share key_scratch_.
  std::vector<TermId> scratch;
  const QueryKey key = key_from(query, scratch);
  const PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it == cache.entries.end() || it->second.k != 0 ||
      expired(it->second)) {
    return nullptr;
  }
  return &it->second.results;
}

const std::vector<std::uint64_t>* CachingSearchNetwork::peek_routed(
    NodeId peer, std::span<const TermId> query, std::uint64_t& probe_messages,
    NodeId& hit_peer) const {
  probe_messages = 0;
  hit_peer = peer;
  if (query.empty()) return nullptr;
  std::vector<TermId> scratch;
  const QueryKey key = key_from(query, scratch);
  auto find_in = [&](NodeId p) -> const std::vector<std::uint64_t>* {
    const PeerCache& cache = caches_[p];
    const auto it = cache.entries.find(key);
    if (it == cache.entries.end() || it->second.k != 0 ||
        expired(it->second)) {
      return nullptr;
    }
    return &it->second.results;
  };
  if (const auto* cached = find_in(peer)) return cached;
  for (NodeId nbr : graph_->neighbors(peer)) {
    ++probe_messages;
    if (const auto* cached = find_in(nbr)) {
      hit_peer = nbr;
      return cached;
    }
  }
  return nullptr;
}

const std::vector<ScoredMatch>* CachingSearchNetwork::peek_ranked(
    NodeId peer, std::span<const TermId> query, std::uint32_t k,
    float min_score) const {
  if (query.empty() || k == 0) return nullptr;
  std::vector<TermId> scratch;
  const QueryKey key = key_from(query, scratch);
  const PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it == cache.entries.end() || expired(it->second)) return nullptr;
  const Entry& e = it->second;
  // Compatibility: the cached ranking must be at least as wide (k) and
  // at least as permissive (min_score) as the request.
  if (e.k == 0 || e.k < k || e.min_score > min_score) return nullptr;
  return &e.ranked;
}

const std::vector<ScoredMatch>* CachingSearchNetwork::peek_routed_ranked(
    NodeId peer, std::span<const TermId> query, std::uint32_t k,
    float min_score, std::uint64_t& probe_messages, NodeId& hit_peer) const {
  probe_messages = 0;
  hit_peer = peer;
  if (query.empty() || k == 0) return nullptr;
  std::vector<TermId> scratch;
  const QueryKey key = key_from(query, scratch);
  auto find_in = [&](NodeId p) -> const std::vector<ScoredMatch>* {
    const PeerCache& cache = caches_[p];
    const auto it = cache.entries.find(key);
    if (it == cache.entries.end() || expired(it->second)) return nullptr;
    const Entry& e = it->second;
    if (e.k == 0 || e.k < k || e.min_score > min_score) return nullptr;
    return &e.ranked;
  };
  if (const auto* cached = find_in(peer)) return cached;
  for (NodeId nbr : graph_->neighbors(peer)) {
    ++probe_messages;
    if (const auto* cached = find_in(nbr)) {
      hit_peer = nbr;
      return cached;
    }
  }
  return nullptr;
}

void CachingSearchNetwork::touch(NodeId peer, std::span<const TermId> query) {
  if (query.empty()) return;
  const QueryKey key = key_of(query);
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it == cache.entries.end()) return;
  if (expired(it->second)) {
    erase_entry(cache, it);
    return;
  }
  cache.order.splice(cache.order.begin(), cache.order, it->second.pos);
  it->second.pos = cache.order.begin();
}

void CachingSearchNetwork::on_peer_leave(NodeId peer) {
  const auto hit = holder_index_.find(peer);
  if (hit == holder_index_.end()) return;
  for (const auto& [cache_peer, key] : hit->second) {
    PeerCache& cache = caches_[cache_peer];
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) erase_entry(cache, it);
  }
  holder_index_.erase(hit);
}

CachedSearchResult CachingSearchNetwork::search(NodeId source,
                                                std::span<const TermId> query) {
  CachedSearchResult out;
  if (query.empty()) return out;
  ++searches_;
  const QueryKey key = key_of(query);

  // Own cache and own content are free.
  if (const auto* cached = lookup(source, key)) {
    out.results = *cached;
    out.cache_hit = true;
    ++hits_;
    return out;
  }
  out.results = store_->match(source, query);
  if (!out.results.empty()) {
    insert(source, key, out.results);
    return out;
  }

  // Neighbor cache probes: one message each.
  for (NodeId nbr : graph_->neighbors(source)) {
    ++out.messages;
    if (const auto* cached = lookup(nbr, key)) {
      if (!cached->empty()) {
        out.results = *cached;
        out.cache_hit = true;
        ++hits_;
        insert(source, key, out.results);
        return out;
      }
    }
  }

  // Full flood fallback.
  const FloodResult flood = engine_.run(source, params_.flood_ttl);
  out.messages += flood.messages;
  for (NodeId v : flood.reached) {
    const auto hits = store_->match(v, query);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  }
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  if (!out.results.empty()) insert(source, key, out.results);
  return out;
}

}  // namespace qcp2p::sim
