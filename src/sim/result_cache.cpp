#include "src/sim/result_cache.hpp"

#include <algorithm>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

CachingSearchNetwork::CachingSearchNetwork(const Graph& graph,
                                           const PeerStore& store,
                                           const ResultCacheParams& params)
    : graph_(&graph),
      store_(&store),
      params_(params),
      caches_(graph.num_nodes()),
      engine_(graph) {}

CachingSearchNetwork::QueryKey CachingSearchNetwork::key_of(
    std::span<const TermId> query) {
  // Order-independent hash over the (sorted, deduplicated) term set:
  // {a,b}, {b,a}, and {a,a,b} are the same conjunctive query and must
  // share one cache entry. Sort + unique into reusable scratch, then
  // chain-mix the canonical sequence.
  key_scratch_.assign(query.begin(), query.end());
  std::sort(key_scratch_.begin(), key_scratch_.end());
  key_scratch_.erase(std::unique(key_scratch_.begin(), key_scratch_.end()),
                     key_scratch_.end());
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (TermId t : key_scratch_) h = util::mix64(h ^ (t + 0x1234ULL));
  return QueryKey{h};
}

const std::vector<std::uint64_t>* CachingSearchNetwork::lookup(
    NodeId peer, const QueryKey& key) {
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it == cache.entries.end()) return nullptr;
  // Refresh LRU position.
  cache.order.erase(it->second.first);
  cache.order.push_front(key);
  it->second.first = cache.order.begin();
  return &it->second.second;
}

void CachingSearchNetwork::insert(NodeId peer, const QueryKey& key,
                                  std::vector<std::uint64_t> results) {
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it != cache.entries.end()) {
    // Re-inserted hot entry: refresh its LRU position (a stale recency
    // slot would get it evicted as if cold) and keep the fresher results.
    cache.order.splice(cache.order.begin(), cache.order, it->second.first);
    it->second.first = cache.order.begin();
    it->second.second = std::move(results);
    return;
  }
  cache.order.push_front(key);
  cache.entries.emplace(key,
                        std::make_pair(cache.order.begin(), std::move(results)));
  if (cache.entries.size() > params_.capacity) {
    cache.entries.erase(cache.order.back());
    cache.order.pop_back();
  }
}

void CachingSearchNetwork::prime(NodeId peer, std::span<const TermId> query,
                                 std::vector<std::uint64_t> results) {
  if (query.empty() || results.empty()) return;
  insert(peer, key_of(query), std::move(results));
}

CachedSearchResult CachingSearchNetwork::search(NodeId source,
                                                std::span<const TermId> query) {
  CachedSearchResult out;
  if (query.empty()) return out;
  ++searches_;
  const QueryKey key = key_of(query);

  // Own cache and own content are free.
  if (const auto* cached = lookup(source, key)) {
    out.results = *cached;
    out.cache_hit = true;
    ++hits_;
    return out;
  }
  out.results = store_->match(source, query);
  if (!out.results.empty()) {
    insert(source, key, out.results);
    return out;
  }

  // Neighbor cache probes: one message each.
  for (NodeId nbr : graph_->neighbors(source)) {
    ++out.messages;
    if (const auto* cached = lookup(nbr, key)) {
      if (!cached->empty()) {
        out.results = *cached;
        out.cache_hit = true;
        ++hits_;
        insert(source, key, out.results);
        return out;
      }
    }
  }

  // Full flood fallback.
  const FloodResult flood = engine_.run(source, params_.flood_ttl);
  out.messages += flood.messages;
  for (NodeId v : flood.reached) {
    const auto hits = store_->match(v, query);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  }
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  if (!out.results.empty()) insert(source, key, out.results);
  return out;
}

}  // namespace qcp2p::sim
