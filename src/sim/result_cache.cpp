#include "src/sim/result_cache.hpp"

#include <algorithm>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

CachingSearchNetwork::CachingSearchNetwork(const Graph& graph,
                                           const PeerStore& store,
                                           const ResultCacheParams& params)
    : graph_(&graph),
      store_(&store),
      params_(params),
      caches_(graph.num_nodes()),
      engine_(graph) {}

CachingSearchNetwork::QueryKey CachingSearchNetwork::key_of(
    std::span<const TermId> query) noexcept {
  // Order-independent hash over the (sorted, deduplicated) term set.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (TermId t : query) h = util::mix64(h ^ (t + 0x1234ULL));
  return QueryKey{h};
}

const std::vector<std::uint64_t>* CachingSearchNetwork::lookup(
    NodeId peer, const QueryKey& key) {
  PeerCache& cache = caches_[peer];
  const auto it = cache.entries.find(key);
  if (it == cache.entries.end()) return nullptr;
  // Refresh LRU position.
  cache.order.erase(it->second.first);
  cache.order.push_front(key);
  it->second.first = cache.order.begin();
  return &it->second.second;
}

void CachingSearchNetwork::insert(NodeId peer, const QueryKey& key,
                                  std::vector<std::uint64_t> results) {
  PeerCache& cache = caches_[peer];
  if (cache.entries.count(key)) return;
  cache.order.push_front(key);
  cache.entries.emplace(key,
                        std::make_pair(cache.order.begin(), std::move(results)));
  if (cache.entries.size() > params_.capacity) {
    cache.entries.erase(cache.order.back());
    cache.order.pop_back();
  }
}

CachedSearchResult CachingSearchNetwork::search(NodeId source,
                                                std::span<const TermId> query) {
  CachedSearchResult out;
  if (query.empty()) return out;
  ++searches_;
  const QueryKey key = key_of(query);

  // Own cache and own content are free.
  if (const auto* cached = lookup(source, key)) {
    out.results = *cached;
    out.cache_hit = true;
    ++hits_;
    return out;
  }
  out.results = store_->match(source, query);
  if (!out.results.empty()) {
    insert(source, key, out.results);
    return out;
  }

  // Neighbor cache probes: one message each.
  for (NodeId nbr : graph_->neighbors(source)) {
    ++out.messages;
    if (const auto* cached = lookup(nbr, key)) {
      if (!cached->empty()) {
        out.results = *cached;
        out.cache_hit = true;
        ++hits_;
        insert(source, key, out.results);
        return out;
      }
    }
  }

  // Full flood fallback.
  const FloodResult flood = engine_.run(source, params_.flood_ttl);
  out.messages += flood.messages;
  for (NodeId v : flood.reached) {
    const auto hits = store_->match(v, query);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  }
  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  if (!out.results.empty()) insert(source, key, out.results);
  return out;
}

}  // namespace qcp2p::sim
