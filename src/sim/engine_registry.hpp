// Compile-time engine registry: the one place a search strategy is
// named. Benches resolve `--engine=<name>` here, exp_fault_tolerance
// sweeps every constructible engine from here, and the conformance suite
// iterates the same table — so registering an engine (one kEngineRegistry
// row + a detail:: factory) is the only step needed for it to appear in
// every sweep and every conformance case.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/sim/adaptive.hpp"
#include "src/sim/dht.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/gia.hpp"
#include "src/sim/hybrid.hpp"
#include "src/sim/qrp.hpp"
#include "src/sim/random_walk.hpp"

namespace qcp2p::sim {

/// Everything a factory may wire an engine to. Pointers are borrowed
/// (the bench owns the world) and may be null: a factory whose pieces
/// are missing returns nullptr, and the sweeps simply skip that engine.
struct EngineWorld {
  const Graph* graph = nullptr;
  const PeerStore* store = nullptr;
  /// Forwarding mask for the flood family (ultrapeers relay, leaves
  /// don't). Null = everyone forwards.
  const std::vector<bool>* forwards = nullptr;
  const ChordDht* dht = nullptr;
  const GiaNetwork* gia = nullptr;
  const QrpNetwork* qrp = nullptr;
  /// Pre-warmed adaptive network (benches that observe/refresh between
  /// sweeps). Null = the factory cold-starts its own from graph+store.
  const AdaptiveOverlayNetwork* adaptive = nullptr;
  RandomWalkParams walk{};
  GiaSearchParams gia_search{};
  HybridParams hybrid{};
  /// Cold-start knobs for the adaptive factory (ignored when `adaptive`
  /// is set — a pre-warmed network carries its own params).
  AdaptiveParams adaptive_params{};
  /// Link-latency model shared by every time-aware engine (exact for the
  /// DES-backed ones, per-hop mean for the round-based estimates).
  TimingParams timing{};
};

namespace detail {
// Defined in each engine's .cpp next to the primitives they adapt.
std::unique_ptr<SearchEngine> make_flood_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_walk_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_gia_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_hybrid_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_dht_only_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_qrp_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_flood_des_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_dht_des_engine(const EngineWorld& world);
std::unique_ptr<SearchEngine> make_adaptive_engine(const EngineWorld& world);
}  // namespace detail

using EngineFactory = std::unique_ptr<SearchEngine> (*)(const EngineWorld&);

struct EngineEntry {
  std::string_view name;
  /// Whether the engine answers locate (holder-placement) queries; the
  /// placement benches reject engines that don't.
  bool can_locate;
  EngineFactory make;
};

/// Row order is presentation order: the engine sweeps print rows in
/// registry order, so appending here appends to every table.
inline constexpr EngineEntry kEngineRegistry[] = {
    {"flood", true, &detail::make_flood_engine},
    {"random-walk", true, &detail::make_walk_engine},
    {"gia", true, &detail::make_gia_engine},
    {"hybrid", false, &detail::make_hybrid_engine},
    {"dht-only", false, &detail::make_dht_only_engine},
    {"qrp", false, &detail::make_qrp_engine},
    {"flood-des", true, &detail::make_flood_des_engine},
    {"dht-des", false, &detail::make_dht_des_engine},
    {"adaptive", false, &detail::make_adaptive_engine},
};

[[nodiscard]] constexpr std::span<const EngineEntry> engine_registry() {
  return kEngineRegistry;
}

/// nullptr when no engine is registered under `name`.
[[nodiscard]] const EngineEntry* find_engine(std::string_view name);

/// Builds the named engine against `world`; nullptr when the name is
/// unknown or the world lacks the pieces the engine needs.
[[nodiscard]] std::unique_ptr<SearchEngine> make_engine(
    std::string_view name, const EngineWorld& world);

/// "flood, random-walk, ..." — for --engine error messages and docs.
[[nodiscard]] std::string engine_names();

}  // namespace qcp2p::sim
