// TTL-limited flooding, the unstructured search primitive of Gnutella and
// of the first phase of hybrid P2P systems (Fig 8, Section V).
//
// Semantics follow the Gnutella 0.6 protocol: the source sends the query
// to every neighbor with the given TTL; each *forwarding* node decrements
// the TTL and relays to all neighbors except the one it came from;
// duplicate receptions are dropped but still cost a message. In two-tier
// mode, leaves receive queries but never forward them.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/overlay/graph.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/network.hpp"
#include "src/sim/search_scratch.hpp"

namespace qcp2p::sim {

struct FloodResult {
  /// Nodes that received the query (excluding the source).
  std::vector<NodeId> reached;
  /// Total query transmissions (including duplicate deliveries).
  std::uint64_t messages = 0;
  /// reached-per-hop histogram: per_hop[h] = nodes first reached at hop h+1.
  std::vector<std::uint64_t> per_hop;
  /// Transmissions lost to the fault plan's loss process (charged above).
  std::uint64_t dropped = 0;

  [[nodiscard]] double coverage(std::size_t num_nodes) const noexcept {
    return num_nodes == 0 ? 0.0
                          : static_cast<double>(reached.size()) /
                                static_cast<double>(num_nodes);
  }
};

/// BFS core shared by every flood entry point (and by QRP's relay tier):
/// fills scratch.reached with the nodes that received the query
/// (excluding the source) and charges `messages`/`dropped`; the per-hop
/// histogram is materialized only when a caller asks for it. Offline
/// sources and TTL 0 reach nothing.
void flood_into(const Graph& graph, NodeId source, std::uint32_t ttl,
                const std::vector<bool>* forwards,
                const std::vector<bool>* online, FaultSession* faults,
                SearchScratch& scratch, std::uint64_t& messages,
                std::uint64_t& dropped, std::vector<std::uint64_t>* per_hop);

/// Pure coverage flood (no content): BFS to `ttl` hops.
/// @param forwards  optional predicate "node may forward" (two-tier
///                  leaves return false); the source always sends.
/// @param online    optional liveness mask (churn): offline nodes
///                  neither receive nor relay; messages sent to them are
///                  still charged (the sender cannot know).
[[nodiscard]] FloodResult flood(const Graph& graph, NodeId source,
                                std::uint32_t ttl,
                                const std::vector<bool>* forwards = nullptr,
                                const std::vector<bool>* online = nullptr);

/// Owns a SearchScratch for repeated floods over one graph (avoids an
/// O(n) allocation per query in the Monte-Carlo benches).
class FloodEngine {
 public:
  explicit FloodEngine(const Graph& graph);

  /// @param faults  optional per-message fault stream: each transmission
  ///                is charged, then may be dropped in flight (counted in
  ///                FloodResult::dropped) before the liveness check. With
  ///                an inert session (loss 0) the traversal is identical
  ///                to the fault-free one.
  [[nodiscard]] FloodResult run(NodeId source, std::uint32_t ttl,
                                const std::vector<bool>* forwards = nullptr,
                                const std::vector<bool>* online = nullptr,
                                FaultSession* faults = nullptr);

  /// Success check against a placement: does the flood from `source`
  /// reach any holder of `object`? The source's own copy counts, as a
  /// node trivially "finds" content it already stores. With an `online`
  /// mask, only online holders satisfy the query.
  [[nodiscard]] bool reaches_any(NodeId source, std::uint32_t ttl,
                                 std::span<const NodeId> holders,
                                 const std::vector<bool>* forwards,
                                 std::uint64_t* messages_out = nullptr,
                                 const std::vector<bool>* online = nullptr);

  /// Forces the epoch counter (tests inject a value near wraparound).
  void set_epoch(std::uint32_t epoch) noexcept { scratch_.epoch = epoch; }

 private:
  const Graph* graph_;
  SearchScratch scratch_;
};

/// Content search by flooding over a PeerStore: every reached peer
/// evaluates the query; returns matching object ids (deduplicated)
/// plus the transport cost.
struct FloodSearchResult {
  std::vector<std::uint64_t> results;
  std::uint64_t messages = 0;
  std::size_t peers_probed = 0;
  FaultStats fault;
};

/// @param online  optional liveness mask, same semantics as flood(): an
///                offline source issues nothing and offline peers are
///                neither probed nor relay.
[[nodiscard]] FloodSearchResult flood_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, std::uint32_t ttl,
    const std::vector<bool>* forwards = nullptr,
    const std::vector<bool>* online = nullptr);

/// Zero-allocation variant: BFS state and match buffers come from
/// `scratch` (one per worker). Results are identical to the overload
/// above for any scratch state.
[[nodiscard]] FloodSearchResult flood_search(
    const Graph& graph, const PeerStore& store, NodeId source,
    std::span<const TermId> query, std::uint32_t ttl, SearchScratch& scratch,
    const std::vector<bool>* forwards = nullptr,
    const std::vector<bool>* online = nullptr);

// Fault-injected flood search lives behind the engine layer: wrap the
// registry's "flood" engine in with_faults() (see fault_decorator.hpp)
// for expanding-ring recovery under loss/churn.

}  // namespace qcp2p::sim
