#include "src/sim/qrp.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace qcp2p::sim {

QrpTable::QrpTable(std::size_t bits) : bits_(bits, false) {
  if (bits == 0) throw std::invalid_argument("QrpTable: zero-size table");
}

std::size_t QrpTable::slot(TermId term) const noexcept {
  // Real QRP hashes the keyword string; hashing the interned id is
  // equivalent for collision statistics.
  return static_cast<std::size_t>(util::mix64(0x515250ULL ^ term) %
                                  bits_.size());
}

void QrpTable::add_term(TermId term) noexcept { bits_[slot(term)] = true; }

bool QrpTable::may_contain(TermId term) const noexcept {
  return bits_[slot(term)];
}

bool QrpTable::may_match(std::span<const TermId> query) const noexcept {
  for (TermId t : query) {
    if (!may_contain(t)) return false;
  }
  return true;
}

double QrpTable::fill_ratio() const noexcept {
  std::size_t set = 0;
  for (bool b : bits_) set += b;
  return static_cast<double>(set) / static_cast<double>(bits_.size());
}

QrpNetwork::QrpNetwork(const overlay::TwoTierTopology& topology,
                       const PeerStore& store, std::size_t table_bits)
    : topology_(&topology),
      store_(&store),
      engine_(topology.graph),
      mark_(topology.graph.num_nodes(), 0) {
  const std::size_t n = topology.graph.num_nodes();
  if (store.num_peers() != n) {
    throw std::invalid_argument("QrpNetwork: store/topology size mismatch");
  }
  tables_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    tables_.emplace_back(table_bits);
    if (topology.is_ultrapeer[v]) continue;  // leaves only
    for (TermId t : store.peer_terms(v)) tables_[v].add_term(t);
  }
}

QrpNetwork::SearchResult QrpNetwork::search(NodeId source,
                                            std::span<const TermId> query,
                                            std::uint32_t ttl) {
  SearchResult out;
  if (query.empty()) return out;

  if (++mark_epoch_ == 0) {
    // Wrapped: stale marks from the previous cycle would alias.
    std::fill(mark_.begin(), mark_.end(), 0);
    mark_epoch_ = 1;
  }

  auto probe = [&](NodeId peer) {
    ++out.peers_probed;
    const auto hits = store_->match(peer, query, match_scratch_);
    out.results.insert(out.results.end(), hits.begin(), hits.end());
  };
  probe(source);

  // Flood the ultrapeer tier (leaves never forward in two-tier Gnutella).
  const FloodResult flood_result =
      engine_.run(source, ttl, &topology_->is_ultrapeer);
  out.up_messages = 0;

  // Partition reached nodes: ultrapeers were reached by the UP-tier
  // flood; each reached ultrapeer then screens its leaves through QRP.
  // Leaves reached directly by the flood (the source's ultrapeers
  // forwarding blindly) are re-screened here instead: we charge UP-tier
  // messages only for UP->UP edges and account leaf deliveries via QRP.
  for (NodeId v : flood_result.reached) {
    if (topology_->is_ultrapeer[v]) {
      mark_[v] = mark_epoch_;  // reached-UP set
      probe(v);  // ultrapeers index their own shared files too
    }
  }
  // Count UP-tier transmissions: every edge out of a forwarding UP (or
  // the source) toward another UP.
  auto count_up_edges = [&](NodeId u) {
    std::uint64_t c = 0;
    for (NodeId v : topology_->graph.neighbors(u)) {
      c += topology_->is_ultrapeer[v];
    }
    return c;
  };
  out.up_messages += count_up_edges(source);
  for (NodeId v : flood_result.reached) {
    if (topology_->is_ultrapeer[v]) out.up_messages += count_up_edges(v);
  }

  // QRP last hop: each reached ultrapeer delivers to matching leaves.
  // mark_ doubles as the leaf-screened set (leaves are never in the
  // reached-UP set above).
  auto screen_leaves = [&](NodeId up) {
    for (NodeId leaf : topology_->graph.neighbors(up)) {
      if (topology_->is_ultrapeer[leaf] || mark_[leaf] == mark_epoch_ ||
          leaf == source) {
        continue;
      }
      mark_[leaf] = mark_epoch_;
      if (tables_[leaf].may_match(query)) {
        ++out.leaf_messages;
        probe(leaf);
      } else {
        ++out.leaf_suppressed;
      }
    }
  };
  if (topology_->is_ultrapeer[source]) screen_leaves(source);
  for (NodeId v = 0; v < topology_->graph.num_nodes(); ++v) {
    if (topology_->is_ultrapeer[v] && mark_[v] == mark_epoch_) {
      screen_leaves(v);
    }
  }

  std::sort(out.results.begin(), out.results.end());
  out.results.erase(std::unique(out.results.begin(), out.results.end()),
                    out.results.end());
  return out;
}

double QrpNetwork::mean_fill() const {
  double sum = 0.0;
  std::size_t leaves = 0;
  for (NodeId v = 0; v < tables_.size(); ++v) {
    if (topology_->is_ultrapeer[v]) continue;
    sum += tables_[v].fill_ratio();
    ++leaves;
  }
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

}  // namespace qcp2p::sim
